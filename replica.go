package prefcqa

import (
	"context"
	"errors"
	"fmt"

	"prefcqa/internal/wal"
)

// ErrReadOnly is returned by every public mutation on a database that
// serves as a replication follower (SetReadOnly). Writes belong on the
// primary until the follower is promoted.
var ErrReadOnly = errors.New("prefcqa: database is a read-only replica")

// ReadOnly reports whether public mutations are refused (the database
// is a replication follower).
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// SetReadOnly marks the database as a replication follower: public
// mutations fail with ErrReadOnly while ReplApply keeps feeding the
// replicated history in. Promote clears the mark and fences the old
// primary by bumping the epoch.
func (db *DB) SetReadOnly(on bool) { db.readOnly.Store(on) }

// Epoch returns the database's replication epoch (≥ 1). Epochs advance
// only on Promote; every replica refuses records from an older epoch,
// so a resurrected pre-failover primary cannot feed stale history to
// the promoted lineage.
func (db *DB) Epoch() uint64 {
	if db.log != nil {
		return db.log.Epoch()
	}
	return db.epoch.Load()
}

// WALStats reports the write-ahead log's position, checkpoint
// coverage, epoch and on-disk footprint. ok is false on a non-durable
// database.
func (db *DB) WALStats() (wal.Stats, bool) {
	if db.log == nil {
		return wal.Stats{}, false
	}
	return db.log.Stats(), true
}

// CaptureCheckpoint builds a checkpoint image of the whole database at
// its current write-version without touching the log — the bootstrap
// image a replication primary serves to a new follower. It holds the
// snapshot gate, so the image is one consistent cut and its Seq covers
// exactly the applied history.
func (db *DB) CaptureCheckpoint() (*wal.Checkpoint, error) {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	return db.captureCheckpointLocked(), nil
}

// captureCheckpointLocked captures every relation's writer-side state.
// Caller holds db.snapMu.
func (db *DB) captureCheckpointLocked() *wal.Checkpoint {
	c := &wal.Checkpoint{Seq: db.WriteVersion(), Epoch: db.Epoch()}
	for _, name := range db.order {
		r := db.rels[name]
		r.mu.Lock()
		c.Relations = append(c.Relations, checkpointRelation(name, r))
		r.mu.Unlock()
	}
	return c
}

// ReplBootstrap seeds an empty database from a primary's checkpoint
// image: the state is rebuilt through the same strict loader recovery
// uses, and on a durable database the image is installed into the
// local log so a restart recovers to the same position. The database
// must be empty — a follower that has diverged must be wiped and
// re-seeded, never merged.
func (db *DB) ReplBootstrap(c *wal.Checkpoint) error {
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	if len(db.rels) != 0 || db.WriteVersion() != 0 {
		return fmt.Errorf("prefcqa: bootstrap requires an empty database (version %d, %d relations)", db.WriteVersion(), len(db.rels))
	}
	epoch := c.Epoch
	if epoch == 0 {
		epoch = 1
	}
	if c.Seq == 0 {
		// An empty primary: nothing to load, just adopt the epoch.
		if db.log == nil && epoch > db.epoch.Load() {
			db.epoch.Store(epoch)
		}
		return nil
	}
	if db.log != nil {
		if err := db.log.InstallCheckpoint(c); err != nil {
			return err
		}
	}
	if err := db.loadCheckpoint(c); err != nil {
		return fmt.Errorf("prefcqa: bootstrap checkpoint at seq %d: %w", c.Seq, err)
	}
	if db.log == nil {
		db.ver.Store(c.Seq)
		if epoch > db.epoch.Load() {
			db.epoch.Store(epoch)
		}
	}
	return nil
}

// ReplApply applies one replicated record: the follower side of the
// stream. The record must carry exactly the next sequence and an epoch
// no older than the local one (fencing). On a durable database the
// record is appended to the local log first — logged history and
// applied state advance together, and a restart recovers to the same
// position. Replay is strict: a record that does not apply exactly as
// logged means the replica diverged, which is a loud error, never a
// silent skip.
//
// Calls must be serialized (the replication follower applies from one
// goroutine); concurrent readers are safe — applies run under the
// snapshot gate's read side and fork published versions exactly like
// local mutations do.
func (db *DB) ReplApply(rec wal.Record) error {
	// Relation creation changes the registry itself, which Snapshot and
	// CreateRelation guard with the gate's write side.
	if rec.Op == wal.OpCreate {
		db.snapMu.Lock()
		defer db.snapMu.Unlock()
	} else {
		db.snapMu.RLock()
		defer db.snapMu.RUnlock()
	}
	if want := db.WriteVersion() + 1; rec.Seq != want {
		return fmt.Errorf("prefcqa: replicated record has seq %d, want %d", rec.Seq, want)
	}
	epoch := rec.Epoch
	if epoch == 0 {
		epoch = 1
	}
	if cur := db.Epoch(); epoch < cur {
		return fmt.Errorf("prefcqa: fenced: record epoch %d behind local epoch %d", epoch, cur)
	}
	if db.log != nil {
		if err := db.log.AppendExact(rec); err != nil {
			return err
		}
	}
	if err := db.applyRecord(rec); err != nil {
		return fmt.Errorf("prefcqa: replicated record %d does not replay: %w", rec.Seq, err)
	}
	if db.log == nil {
		db.ver.Store(rec.Seq)
		db.epoch.Store(epoch)
	}
	return nil
}

// ReplCommit applies the durability barrier for replicated records up
// to seq and compacts the local log when it has outgrown its
// checkpoint threshold. The follower calls it once per applied batch
// rather than per record, so a fast stream costs one fsync per batch.
func (db *DB) ReplCommit(seq uint64) error { return db.commit(seq) }

// ReplReadFrom returns up to max log records starting at exactly
// fromSeq — the primary side of the stream. It returns
// wal.ErrCompacted when the position has been checkpointed away (the
// follower must re-bootstrap) and an empty slice when fromSeq is past
// the head.
func (db *DB) ReplReadFrom(fromSeq uint64, max int) ([]wal.Record, error) {
	if db.log == nil {
		return nil, fmt.Errorf("prefcqa: replication requires a durable database")
	}
	return db.log.ReadFrom(fromSeq, max)
}

// ReplWaitAppend blocks until the logged history extends past after or
// the context is done — the long-poll primitive behind the stream
// endpoint.
func (db *DB) ReplWaitAppend(ctx context.Context, after uint64) error {
	if db.log == nil {
		return fmt.Errorf("prefcqa: replication requires a durable database")
	}
	return db.log.WaitAppend(ctx, after)
}

// Promote turns a follower into a primary: public mutations are
// accepted again, continuing the sequence exactly where the replicated
// history ends, and the epoch advances so the old primary's lineage is
// fenced — a replica at the new epoch refuses its records. On a
// durable database the bump is made durable immediately (a
// checkpoint), so a restarted promoted follower cannot regress behind
// the fence. Promoting a non-follower just advances the epoch.
func (db *DB) Promote() (uint64, error) {
	db.snapMu.Lock()
	var epoch uint64
	if db.log != nil {
		epoch = db.log.Epoch() + 1
		if err := db.log.AdvanceEpoch(epoch); err != nil {
			db.snapMu.Unlock()
			return 0, err
		}
	} else {
		epoch = db.epoch.Add(1)
	}
	db.readOnly.Store(false)
	db.snapMu.Unlock()
	if db.log != nil && db.WriteVersion() > 0 {
		if err := db.Checkpoint(); err != nil {
			return epoch, fmt.Errorf("prefcqa: promoted to epoch %d but the fence is not durable: %w", epoch, err)
		}
	}
	return epoch, nil
}
