// Benchmarks regenerating the paper's figures and tables; see
// DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded shapes. Naming: BenchmarkFigN... covers figure N;
// Fig. 5 (the complexity table) is split per row and column.
package prefcqa

import (
	"fmt"
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/cqa"
	"prefcqa/internal/denial"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
	"prefcqa/internal/workload"
)

// --- Figure 1 / Example 4: conflict graph construction ---

func BenchmarkFig1ConflictGraphBuild(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sc := workload.Pairs(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conflict.Build(sc.Inst, sc.FDs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig1RepairCount(b *testing.B) {
	sc := workload.Pairs(60) // 2^60 repairs, counted componentwise
	g := sc.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := repair.Count(g)
		if err != nil || c != 1<<60 {
			b.Fatalf("count = %d, %v", c, err)
		}
	}
}

// --- Figures 2-4 / Examples 7-9: family selection ---

func benchFamilies(b *testing.B, sc *workload.Scenario) {
	b.Helper()
	for _, f := range core.Families {
		b.Run(f.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n := 0
				core.Enumerate(f, sc.Pri, func(*bitset.Set) bool { n++; return true }) //nolint:errcheck
				if n == 0 {
					b.Fatal("empty family")
				}
			}
		})
	}
}

func BenchmarkFig2Example7(b *testing.B) { benchFamilies(b, workload.Example7()) }
func BenchmarkFig3Example8(b *testing.B) { benchFamilies(b, workload.Example8()) }
func BenchmarkFig4Example9(b *testing.B) { benchFamilies(b, workload.Example9Mutual()) }

// --- Figure 5, column "repair check" ---

// The checked repair is Algorithm 1's output on Chain(n): a member of
// every family. Rep, L-Rep, S-Rep and C-Rep checking is polynomial;
// G-Rep checking enumerates the component's repairs (co-NP-complete
// problem) and blows up with n.
func benchRepairCheck(b *testing.B, f core.Family, n int) {
	sc := workload.Chain(n)
	rp := clean.Deterministic(sc.Pri)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.Check(f, sc.Pri, rp) {
			b.Fatal("check failed")
		}
	}
}

func BenchmarkFig5RepairCheckRep(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRepairCheck(b, core.Rep, n) })
	}
}

func BenchmarkFig5RepairCheckLocal(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRepairCheck(b, core.Local, n) })
	}
}

func BenchmarkFig5RepairCheckSemiGlobal(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRepairCheck(b, core.SemiGlobal, n) })
	}
}

func BenchmarkFig5RepairCheckCommon(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRepairCheck(b, core.Common, n) })
	}
}

func BenchmarkFig5RepairCheckGlobal(b *testing.B) {
	// Same sizes as the polynomial families would be infeasible: the
	// component's repair count grows like Fibonacci(n).
	for _, n := range []int{8, 16, 24} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchRepairCheck(b, core.Global, n) })
	}
}

// --- Figure 5, column "consistent answers", row Rep ---

func pairsInput(n int) cqa.Input {
	sc := workload.Pairs(n)
	in, err := cqa.NewInput(&cqa.Relation{Inst: sc.Inst, FDs: sc.FDs, Pri: sc.Pri})
	if err != nil {
		panic(err)
	}
	return in
}

// groundAllPairsQuery: (R(0,0) OR R(0,1)) AND ... — certainly true,
// touches every component.
func groundAllPairsQuery(n int) query.Expr {
	atom := func(a, bb int64) query.Expr {
		return query.Atom{Rel: "R", Args: []query.Term{
			query.Const{Value: relation.Int(a)}, query.Const{Value: relation.Int(bb)},
		}}
	}
	var q query.Expr
	for i := 0; i < n; i++ {
		or := query.Or{L: atom(int64(i), 0), R: atom(int64(i), 1)}
		if q == nil {
			q = or
		} else {
			q = query.And{L: q, R: or}
		}
	}
	return q
}

// The {∀,∃}-free PTIME cell: the witness-cover algorithm scales
// polynomially even though the instance has 2^n repairs.
func BenchmarkFig5GroundCQARep(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := pairsInput(n)
			q := groundAllPairsQuery(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := cqa.GroundQFEvaluate(in, q)
				if err != nil || a != cqa.CertainlyTrue {
					b.Fatalf("%v %v", a, err)
				}
			}
		})
	}
}

// The conjunctive-query co-NP cell: a certainly-true EXISTS query
// forces enumeration of all 2^n repairs.
func BenchmarkFig5ConjunctiveCQARep(b *testing.B) {
	for _, n := range []int{6, 9, 12} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			in := pairsInput(n)
			q := query.MustParse("EXISTS x, y . R(x, y)")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := cqa.Evaluate(core.Rep, in, q)
				if err != nil || a != cqa.CertainlyTrue {
					b.Fatalf("%v %v", a, err)
				}
			}
		})
	}
}

// --- Figure 5, rows L/S/G/C: preferred CQA vs priority density ---

func benchPreferredCQA(b *testing.B, f core.Family, density float64) {
	sc := workload.Pairs(9)
	rng := rand.New(rand.NewSource(1))
	sc.Pri = priority.Random(sc.Graph(), density, rng)
	in, err := cqa.NewInput(&cqa.Relation{Inst: sc.Inst, FDs: sc.FDs, Pri: sc.Pri})
	if err != nil {
		b.Fatal(err)
	}
	q := query.MustParse("EXISTS x, y . R(x, y)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := cqa.Evaluate(f, in, q)
		if err != nil || a != cqa.CertainlyTrue {
			b.Fatalf("%v %v", a, err)
		}
	}
}

func BenchmarkFig5CQALocal(b *testing.B) {
	for _, d := range []float64{0, 1} {
		b.Run(fmt.Sprintf("density=%.0f", d), func(b *testing.B) { benchPreferredCQA(b, core.Local, d) })
	}
}

func BenchmarkFig5CQASemiGlobal(b *testing.B) {
	for _, d := range []float64{0, 1} {
		b.Run(fmt.Sprintf("density=%.0f", d), func(b *testing.B) { benchPreferredCQA(b, core.SemiGlobal, d) })
	}
}

func BenchmarkFig5CQAGlobal(b *testing.B) {
	for _, d := range []float64{0, 1} {
		b.Run(fmt.Sprintf("density=%.0f", d), func(b *testing.B) { benchPreferredCQA(b, core.Global, d) })
	}
}

func BenchmarkFig5CQACommon(b *testing.B) {
	for _, d := range []float64{0, 1} {
		b.Run(fmt.Sprintf("density=%.0f", d), func(b *testing.B) { benchPreferredCQA(b, core.Common, d) })
	}
}

// --- Algorithm 1 / Proposition 1 ---

func BenchmarkAlgorithm1Clean(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{100, 400, 1600} {
		b.Run(fmt.Sprintf("clusters=%d", m), func(b *testing.B) {
			sc := workload.Clusters(m, 3)
			total := sc.Pri.TotalExtension(rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := clean.Deterministic(total)
				if out.Len() != m {
					b.Fatalf("cleaned size %d", out.Len())
				}
			}
		})
	}
}

// --- §6 denial-constraint extension ---

func BenchmarkDenialHypergraph(b *testing.B) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	cons := denial.MustParse(schema, `R(x1,y1) AND R(x2,y2) AND R(x3,y3)
		AND x1 = x2 AND x2 = x3 AND y1 < y2 AND y2 < y3`)
	for _, groups := range []int{4, 16} {
		b.Run(fmt.Sprintf("groups=%d", groups), func(b *testing.B) {
			inst := relation.NewInstance(schema)
			for g := 0; g < groups; g++ {
				for j := 0; j < 3; j++ {
					inst.MustInsert(g, j)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, err := denial.Build(inst, []denial.Constraint{cons})
				if err != nil || h.NumEdges() != groups {
					b.Fatalf("%v edges=%d", err, h.NumEdges())
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// Ground-query component pruning: on Pairs(16) with a query touching
// one component, pruned evaluation is constant-ish while full
// enumeration pays 2^16.
func BenchmarkAblationPruningOn(b *testing.B) {
	in := pairsInput(16)
	q := query.MustParse("R(0,0) OR R(0,1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := cqa.Evaluate(core.Rep, in, q)
		if err != nil || a != cqa.CertainlyTrue {
			b.Fatalf("%v %v", a, err)
		}
	}
}

func BenchmarkAblationPruningOff(b *testing.B) {
	in := pairsInput(12) // smaller: full enumeration of 2^n repairs
	q := query.MustParse("R(0,0) OR R(0,1)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := cqa.EvaluateFull(core.Rep, in, q)
		if err != nil || a != cqa.CertainlyTrue {
			b.Fatalf("%v %v", a, err)
		}
	}
}

// Componentwise repair counting vs full enumeration.
func BenchmarkAblationComponentCount(b *testing.B) {
	sc := workload.Pairs(16)
	g := sc.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c, err := repair.Count(g); err != nil || c != 1<<16 {
			b.Fatalf("%d %v", c, err)
		}
	}
}

func BenchmarkAblationFullEnumerationCount(b *testing.B) {
	sc := workload.Pairs(12)
	g := sc.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		repair.Enumerate(g, func(*bitset.Set) bool { n++; return true }) //nolint:errcheck
		if n != 1<<12 {
			b.Fatalf("n=%d", n)
		}
	}
}

// --- Parallel component-sharded engine (docs/ARCHITECTURE.md) ---

// engineConfigs are the two headline configurations: the sequential
// reference path and the parallel memoizing engine.
func engineConfigs() []struct {
	name string
	eng  *core.Engine
} {
	return []struct {
		name string
		eng  *core.Engine
	}{
		{"sequential", core.Sequential()},
		{"parallel", core.NewEngine()},
	}
}

// multiChains builds m disjoint conflict chains of n tuples each
// (Chain(n) repeated with disjoint attribute groups), every edge
// oriented along the chain. G-Rep choice computation on a chain is
// quadratic in its Fibonacci-many repairs, so per-component work
// dominates — the shape the component-sharded engine targets.
func multiChains(m, n int) *priority.Priority {
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
	inst := relation.NewInstance(s)
	for j := 0; j < m; j++ {
		off := int64(j+1) * 1_000_000
		for i := 0; i < n; i++ {
			a := int64((i+1)/2) + off
			c := int64(i/2) + 1000 + off
			inst.MustInsert(a, int64(i%2), c, int64((i+1)%2))
		}
	}
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "C -> D"))
	p := priority.New(g)
	for j := 0; j < m; j++ {
		for i := 0; i+1 < n; i++ {
			p.MustAdd(j*n+i, j*n+i+1)
		}
	}
	return p
}

// Counting G-Rep over 8 disjoint conflict chains (an 8-component
// conflict graph with expensive components): the engine shards the
// components across workers and serves the structurally identical
// chains from its cache, so the parallel configuration computes one
// chain where the sequential path computes eight — every iteration.
func BenchmarkEngineCountSequentialVsParallel(b *testing.B) {
	for _, cfg := range engineConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			p := multiChains(8, 10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := cfg.eng.Count(core.Global, p)
				if err != nil || c == 0 {
					b.Fatalf("count = %d, %v", c, err)
				}
			}
		})
	}
}

// Full enumeration of L-Rep over a multi-component instance: the
// cross-product walk streams while later components are computed.
func BenchmarkEngineEnumerateSequentialVsParallel(b *testing.B) {
	for _, cfg := range engineConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			sc := workload.Clusters(10, 3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				cfg.eng.Enumerate(core.Local, sc.Pri, func(*bitset.Set) bool { n++; return true }) //nolint:errcheck
				if n == 0 {
					b.Fatal("empty family")
				}
			}
		})
	}
}

// End-to-end CQA on the parallel engine: a ground G-Rep query against
// a multi-chain instance. The pruned path recomputes the touched
// chain's G-Rep choices on every evaluation; the memoizing engine
// computes them once and serves every later query from the cache —
// the "repeated queries against the same instance" scenario.
func BenchmarkEngineCQASequentialVsParallel(b *testing.B) {
	for _, cfg := range engineConfigs() {
		b.Run(cfg.name, func(b *testing.B) {
			p := multiChains(8, 10)
			in, err := cqa.NewInput(&cqa.Relation{
				Inst: p.Graph().Instance(), FDs: p.Graph().FDs(), Pri: p,
			})
			if err != nil {
				b.Fatal(err)
			}
			in = in.WithEngine(cfg.eng)
			// Chain 0's first tuple: in the unique G-Rep outcome.
			q := query.MustParse("R(1000000, 0, 1001000, 1)")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := cqa.Evaluate(core.Global, in, q)
				if err != nil || a != cqa.CertainlyTrue {
					b.Fatalf("%v %v", a, err)
				}
			}
		})
	}
}

// --- facade end-to-end ---

func BenchmarkFacadeQueryGlobal(b *testing.B) {
	db := New()
	mgr, err := db.CreateRelation("Mgr",
		NameAttr("Name"), NameAttr("Dept"), IntAttr("Salary"), IntAttr("Reports"))
	if err != nil {
		b.Fatal(err)
	}
	mary := mgr.MustInsert("Mary", "R&D", 40, 3)
	john := mgr.MustInsert("John", "R&D", 10, 2)
	maryIT := mgr.MustInsert("Mary", "IT", 20, 1)
	johnPR := mgr.MustInsert("John", "PR", 30, 4)
	if err := mgr.AddFD("Dept -> Name,Salary,Reports"); err != nil {
		b.Fatal(err)
	}
	if err := mgr.AddFD("Name -> Dept,Salary,Reports"); err != nil {
		b.Fatal(err)
	}
	mgr.Prefer(mary, maryIT) //nolint:errcheck
	mgr.Prefer(john, johnPR) //nolint:errcheck
	q := `EXISTS x1, y1, z1, x2, y2, z2 .
		Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := db.Query(Global, q)
		if err != nil || a != True {
			b.Fatalf("%v %v", a, err)
		}
	}
}
