package client

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"prefcqa"
)

// ReplicaSet is a follower-aware client over one primary and its
// replicas: reads fan out across the replicas round-robin (falling
// back to the primary when none answer) and writes route to the
// primary. Read-your-writes holds through any replica — the set
// remembers the highest write-version it produced per database and
// injects it as MinVersion on every read, which a follower holds
// until its replicated watermark catches up.
//
// Failover is automatic: a write refused with HTTP 421 re-points the
// set at the URL the follower names, and a write failing at an
// unreachable primary is offered to each replica — a promoted one
// accepts it and becomes the new primary.
//
// A ReplicaSet is safe for concurrent use.
type ReplicaSet struct {
	opts []Option
	rr   atomic.Uint64 // read rotation cursor

	mu       sync.Mutex
	primary  *Client
	replicas []*Client
	marks    map[string]uint64 // db → highest write-version produced here
}

// NewReplicaSet returns a set over the primary and its replicas.
// Options (WithRetry, WithHTTPClient, ...) apply to every member.
func NewReplicaSet(primaryURL string, replicaURLs []string, opts ...Option) *ReplicaSet {
	rs := &ReplicaSet{
		opts:    opts,
		primary: New(primaryURL, opts...),
		marks:   make(map[string]uint64),
	}
	for _, u := range replicaURLs {
		rs.replicas = append(rs.replicas, New(u, opts...))
	}
	return rs
}

// Primary returns the member currently treated as the primary.
func (rs *ReplicaSet) Primary() *Client {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.primary
}

// Replicas returns the read replicas.
func (rs *ReplicaSet) Replicas() []*Client {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]*Client(nil), rs.replicas...)
}

// Watermark returns the highest write-version this set has produced
// for the database — the MinVersion its reads demand.
func (rs *ReplicaSet) Watermark(db string) uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.marks[db]
}

func (rs *ReplicaSet) mark(db string, version uint64) {
	if version == 0 {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if version > rs.marks[db] {
		rs.marks[db] = version
	}
}

// readTargets returns this read's rotation: the replicas starting at
// the round-robin cursor, then the primary as the last resort.
func (rs *ReplicaSet) readTargets() []*Client {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := len(rs.replicas)
	out := make([]*Client, 0, n+1)
	if n > 0 {
		start := int(rs.rr.Add(1)-1) % n
		for i := 0; i < n; i++ {
			out = append(out, rs.replicas[(start+i)%n])
		}
	}
	return append(out, rs.primary)
}

// readOpts prepends the database's watermark so caller-supplied
// options (an explicit MinVersion in particular) still win.
func (rs *ReplicaSet) readOpts(db string, opts []ReadOption) []ReadOption {
	if v := rs.Watermark(db); v > 0 {
		return append([]ReadOption{MinVersion(v)}, opts...)
	}
	return opts
}

// read tries each target until one answers. Transport failures and
// overload statuses (503 shed, 504 deadline) move to the next target;
// any other server response is definitive.
func (rs *ReplicaSet) read(fn func(*Client) error) error {
	var last error
	for _, t := range rs.readTargets() {
		err := fn(t)
		if err == nil {
			return nil
		}
		var ae *APIError
		if errors.As(err, &ae) && ae.Status != http.StatusServiceUnavailable && ae.Status != http.StatusGatewayTimeout {
			return err
		}
		last = err
	}
	return last
}

// Query evaluates a closed query on any replica at least as new as
// the set's write watermark.
func (rs *ReplicaSet) Query(ctx context.Context, db string, f prefcqa.Family, query string, opts ...ReadOption) (prefcqa.Answer, error) {
	var ans prefcqa.Answer
	err := rs.read(func(c *Client) error {
		a, err := c.Query(ctx, db, f, query, rs.readOpts(db, opts)...)
		if err == nil {
			ans = a
		}
		return err
	})
	return ans, err
}

// QueryOpen returns the certain answers of an open query from any
// replica at least as new as the set's write watermark.
func (rs *ReplicaSet) QueryOpen(ctx context.Context, db string, f prefcqa.Family, query string, opts ...ReadOption) ([]map[string]string, error) {
	var out []map[string]string
	err := rs.read(func(c *Client) error {
		b, err := c.QueryOpen(ctx, db, f, query, rs.readOpts(db, opts)...)
		if err == nil {
			out = b
		}
		return err
	})
	return out, err
}

// CountRepairs counts preferred repairs on any replica at least as
// new as the set's write watermark.
func (rs *ReplicaSet) CountRepairs(ctx context.Context, db string, f prefcqa.Family, rel string, opts ...ReadOption) (int64, error) {
	var n int64
	err := rs.read(func(c *Client) error {
		v, err := c.CountRepairs(ctx, db, f, rel, rs.readOpts(db, opts)...)
		if err == nil {
			n = v
		}
		return err
	})
	return n, err
}

// adopt re-points the set's primary at the given URL, reusing the
// member that already speaks to it when there is one.
func (rs *ReplicaSet) adopt(url string) *Client {
	url = strings.TrimRight(url, "/")
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.primary.BaseURL() == url {
		return rs.primary
	}
	for _, r := range rs.replicas {
		if r.BaseURL() == url {
			rs.primary = r
			return r
		}
	}
	rs.primary = New(url, rs.opts...)
	return rs.primary
}

// write routes a mutation to the primary, following one 421 redirect
// and — when the primary is unreachable — offering the write to each
// replica so a promoted follower picks it up and becomes the new
// primary.
func (rs *ReplicaSet) write(db string, fn func(*Client) (uint64, error)) (uint64, error) {
	primary := rs.Primary()
	v, err := fn(primary)
	if err == nil {
		rs.mark(db, v)
		return v, nil
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Status == http.StatusMisdirectedRequest && ae.Primary != "" {
			v, err = fn(rs.adopt(ae.Primary))
			if err == nil {
				rs.mark(db, v)
			}
			return v, err
		}
		return 0, err // a definitive server answer, not a routing problem
	}
	for _, r := range rs.Replicas() {
		rv, rerr := fn(r)
		if rerr == nil {
			rs.adopt(r.BaseURL())
			rs.mark(db, rv)
			return rv, nil
		}
		if errors.As(rerr, &ae) && ae.Status == http.StatusMisdirectedRequest &&
			ae.Primary != "" && ae.Primary != primary.BaseURL() {
			// The follower points somewhere new: the topology moved.
			rv, rerr = fn(rs.adopt(ae.Primary))
			if rerr == nil {
				rs.mark(db, rv)
				return rv, nil
			}
		}
	}
	return 0, err
}

// CreateDB registers a database through the primary.
func (rs *ReplicaSet) CreateDB(ctx context.Context, db string) error {
	_, err := rs.write(db, func(c *Client) (uint64, error) {
		return 0, c.CreateDB(ctx, db)
	})
	return err
}

// CreateRelation creates a relation through the primary.
func (rs *ReplicaSet) CreateRelation(ctx context.Context, db, rel string, attrs ...prefcqa.WireAttr) (uint64, error) {
	return rs.write(db, func(c *Client) (uint64, error) {
		return c.CreateRelation(ctx, db, rel, attrs...)
	})
}

// AddFD declares a functional dependency through the primary.
func (rs *ReplicaSet) AddFD(ctx context.Context, db, rel, fd string) (uint64, error) {
	return rs.write(db, func(c *Client) (uint64, error) {
		return c.AddFD(ctx, db, rel, fd)
	})
}

// Insert adds tuples through the primary.
func (rs *ReplicaSet) Insert(ctx context.Context, db, rel string, rows ...prefcqa.Tuple) ([]int, uint64, error) {
	var ids []int
	v, err := rs.write(db, func(c *Client) (uint64, error) {
		i, v, err := c.Insert(ctx, db, rel, rows...)
		if err == nil {
			ids = i
		}
		return v, err
	})
	return ids, v, err
}

// Delete tombstones tuples through the primary.
func (rs *ReplicaSet) Delete(ctx context.Context, db, rel string, idList ...int) (int, uint64, error) {
	var deleted int
	v, err := rs.write(db, func(c *Client) (uint64, error) {
		d, v, err := c.Delete(ctx, db, rel, idList...)
		if err == nil {
			deleted = d
		}
		return v, err
	})
	return deleted, v, err
}

// Prefer records preference pairs through the primary.
func (rs *ReplicaSet) Prefer(ctx context.Context, db, rel string, pairs ...[2]int) (uint64, error) {
	return rs.write(db, func(c *Client) (uint64, error) {
		return c.Prefer(ctx, db, rel, pairs...)
	})
}
