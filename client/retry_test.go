package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"prefcqa"
)

// flakyHandler sheds the first fail requests to path with 503, then
// answers normally via next.
type flakyHandler struct {
	fail  int32
	calls atomic.Int32
	next  http.Handler
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := f.calls.Add(1)
	if n <= atomic.LoadInt32(&f.fail) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "shedding load"}) //nolint:errcheck // test stub
		return
	}
	f.next.ServeHTTP(w, r)
}

func TestRetryOnOverload(t *testing.T) {
	fh := &flakyHandler{fail: 2, next: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(QueryResponse{Answer: "true", Version: 7}) //nolint:errcheck // test stub
	})}
	srv := httptest.NewServer(fh)
	defer srv.Close()

	// Without WithRetry, 503 surfaces immediately: the default client
	// never hides overload.
	c := New(srv.URL)
	_, err := c.Query(context.Background(), "db", prefcqa.Global, "R(1)")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("without retry: err = %v, want 503 APIError", err)
	}
	if got := fh.calls.Load(); got != 1 {
		t.Fatalf("without retry the client called %d times, want 1", got)
	}

	// With retry, the two sheds are absorbed and the third attempt
	// answers.
	fh.calls.Store(0)
	rc := New(srv.URL, WithRetry(3, time.Millisecond))
	ans, err := rc.Query(context.Background(), "db", prefcqa.Global, "R(1)")
	if err != nil {
		t.Fatal(err)
	}
	if ans != prefcqa.True {
		t.Fatalf("answer = %v, want true", ans)
	}
	if got := fh.calls.Load(); got != 3 {
		t.Fatalf("with retry the client called %d times, want 3", got)
	}
}

func TestRetryGivesUpAndSkipsNonRetryable(t *testing.T) {
	fh := &flakyHandler{fail: 100, next: http.NotFoundHandler()}
	srv := httptest.NewServer(fh)
	defer srv.Close()
	c := New(srv.URL, WithRetry(2, time.Millisecond))

	// Budget exhausted: 1 attempt + 2 retries, then the 503 surfaces.
	_, err := c.Query(context.Background(), "db", prefcqa.Global, "R(1)")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if got := fh.calls.Load(); got != 3 {
		t.Fatalf("client called %d times, want 3 (1 + 2 retries)", got)
	}

	// A definitive status is never retried.
	atomic.StoreInt32(&fh.fail, 0)
	fh.calls.Store(0)
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "bad query"}) //nolint:errcheck // test stub
	}))
	defer srv2.Close()
	var calls atomic.Int32
	counted := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "bad query"}) //nolint:errcheck // test stub
	}))
	defer counted.Close()
	c400 := New(counted.URL, WithRetry(3, time.Millisecond))
	if _, err := c400.Query(context.Background(), "db", prefcqa.Global, "R(1)"); err == nil {
		t.Fatal("400 did not surface")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("400 was retried: %d calls, want 1", got)
	}
}

// TestWritesAreNeverRetried: a mutation observed by the server may
// have applied even when the response was lost or shed — blind
// re-sending would double-apply. Only idempotent reads retry.
func TestWritesAreNeverRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "shedding load"}) //nolint:errcheck // test stub
	}))
	defer srv.Close()
	c := New(srv.URL, WithRetry(5, time.Millisecond))
	tup, _ := prefcqa.MakeTuple(1, 2)
	if _, _, err := c.Insert(context.Background(), "db", "R", tup); err == nil {
		t.Fatal("insert against a 503 server did not fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("write was sent %d times, want exactly 1", got)
	}
}

func TestReplicaSetWriteRedirectAndReadRotation(t *testing.T) {
	// A fake primary that accepts writes and counts reads.
	var primaryWrites, primaryReads atomic.Int32
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathInsert:
			primaryWrites.Add(1)
			json.NewEncoder(w).Encode(InsertResponse{IDs: []int{0}, Version: 5}) //nolint:errcheck // test stub
		case PathQuery:
			primaryReads.Add(1)
			json.NewEncoder(w).Encode(QueryResponse{Answer: "true", Version: 5}) //nolint:errcheck // test stub
		default:
			http.NotFound(w, r)
		}
	}))
	defer primary.Close()

	// A follower that refuses writes with 421 naming the primary and
	// answers reads, verifying the ReplicaSet injected the write
	// watermark as min_version.
	var replicaReads atomic.Int32
	var sawMinVersion atomic.Int32
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case PathInsert:
			w.WriteHeader(http.StatusMisdirectedRequest)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "read-only replica", Primary: primary.URL}) //nolint:errcheck // test stub
		case PathQuery:
			var req QueryRequest
			json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck // test stub
			if req.MinVersion == 5 {
				sawMinVersion.Add(1)
			}
			replicaReads.Add(1)
			json.NewEncoder(w).Encode(QueryResponse{Answer: "true", Version: 5}) //nolint:errcheck // test stub
		default:
			http.NotFound(w, r)
		}
	}))
	defer replica.Close()

	// Point the set's "primary" at the replica: the first write is
	// refused with 421 and transparently re-routed.
	rs := NewReplicaSet(replica.URL, []string{replica.URL})
	tup, _ := prefcqa.MakeTuple(1, 2)
	_, v, err := rs.Insert(context.Background(), "db", "R", tup)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("write version = %d, want 5", v)
	}
	if got := primaryWrites.Load(); got != 1 {
		t.Fatalf("primary received %d writes, want 1 (redirected)", got)
	}
	if got := rs.Primary().BaseURL(); got != primary.URL {
		t.Fatalf("set primary after redirect = %q, want %q", got, primary.URL)
	}
	if got := rs.Watermark("db"); got != 5 {
		t.Fatalf("watermark = %d, want 5", got)
	}

	// Reads go to the replica and carry the watermark.
	for i := 0; i < 4; i++ {
		if _, err := rs.Query(context.Background(), "db", prefcqa.Global, "R(1)"); err != nil {
			t.Fatal(err)
		}
	}
	if got := replicaReads.Load(); got != 4 {
		t.Fatalf("replica served %d reads, want 4", got)
	}
	if got := sawMinVersion.Load(); got != 4 {
		t.Fatalf("%d of 4 reads carried min_version 5", got)
	}
	if got := primaryReads.Load(); got != 0 {
		t.Fatalf("primary served %d reads, want 0 (replica healthy)", got)
	}
}
