package client_test

import (
	"context"
	"fmt"
	"net"

	"prefcqa"
	"prefcqa/client"
	"prefcqa/internal/server"
)

// ExampleClient drives a prefserve server end to end: schema and data
// definition, a preference, and snapshot-isolated preferred-repair
// reads — the paper's §1 example served over HTTP.
func ExampleClient() {
	// Boot an in-process server on a loopback socket. In production
	// this is `prefserve -addr :7171`.
	srv := server.New(server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	go srv.Serve(l) //nolint:errcheck // ends via Shutdown
	defer srv.Shutdown(context.Background())

	ctx := context.Background()
	c := client.New("http://" + l.Addr().String())

	// Define a database, a relation, and its dependency.
	c.CreateDB(ctx, "mgmt")
	c.CreateRelation(ctx, "mgmt", "Mgr",
		client.NameAttr("Name"), client.NameAttr("Dept"), client.IntAttr("Salary"))
	mary, _ := prefcqa.MakeTuple("Mary", "R&D", 40)
	john, _ := prefcqa.MakeTuple("John", "R&D", 10)
	ids, _, err := c.Insert(ctx, "mgmt", "Mgr", mary, john)
	if err != nil {
		panic(err)
	}
	c.AddFD(ctx, "mgmt", "Mgr", "Dept -> Name, Salary")

	// Mary and John conflict on R&D: without preferences the query is
	// undetermined.
	q := "EXISTS d, s . Mgr('Mary', d, s) AND s > 30"
	a, _ := c.Query(ctx, "mgmt", prefcqa.Global, q)
	fmt.Println("before preference:", a)

	// Trust Mary's source; the returned write-version makes the next
	// read observe the preference (read-your-writes).
	wv, _ := c.Prefer(ctx, "mgmt", "Mgr", [2]int{ids[0], ids[1]})
	a, _ = c.Query(ctx, "mgmt", prefcqa.Global, q, client.MinVersion(wv))
	fmt.Println("after preference: ", a)

	n, _ := c.CountRepairs(ctx, "mgmt", prefcqa.Global, "Mgr")
	fmt.Println("G-repairs:", n)

	// Output:
	// before preference: undetermined
	// after preference:  true
	// G-repairs: 1
}
