package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"prefcqa"
)

// Client drives a prefserve server. It is safe for concurrent use;
// all methods honor the passed context.
type Client struct {
	base      string
	http      *http.Client
	retries   int
	retryBase time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (for custom
// transports, timeouts, or test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.http = hc }
}

// WithRetry makes idempotent read requests (Query, QueryOpen,
// CountRepairs, Repairs, Explain, Stats, Health) retry up to max
// times when the server sheds them with HTTP 503 (admission control),
// sleeping an exponentially growing, jittered backoff between
// attempts (base, 2·base, 4·base, ... ±50%; base <= 0 selects 10ms).
// Off by default; writes are never retried — a shed write's fate is
// the caller's decision.
func WithRetry(max int, base time.Duration) Option {
	return func(c *Client) {
		c.retries = max
		c.retryBase = base
	}
}

// New returns a client for the server at base, e.g.
// "http://127.0.0.1:7171".
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// BaseURL returns the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// Do POSTs a JSON request body to an endpoint path and decodes the
// JSON response into out (skipped when nil) — the raw-protocol escape
// hatch behind the typed methods.
func (c *Client) Do(ctx context.Context, path string, in, out any) error {
	return c.do(ctx, path, in, out)
}

// ReadOption tunes a read request.
type ReadOption func(*ReadOptions)

// MinVersion makes the read observe a state at least as new as the
// given write-version (see VersionResponse) — read-your-writes across
// connections and processes.
func MinVersion(v uint64) ReadOption {
	return func(o *ReadOptions) { o.MinVersion = v }
}

// Timeout caps the server-side evaluation time of this read. A
// positive duration under one millisecond is sent as 1ms — the wire
// granularity — never as 0, which would select the server default.
func Timeout(d time.Duration) ReadOption {
	return func(o *ReadOptions) {
		ms := d.Milliseconds()
		if ms == 0 && d > 0 {
			ms = 1
		}
		o.TimeoutMS = ms
	}
}

func readOptions(opts []ReadOption) ReadOptions {
	var o ReadOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// do POSTs a JSON request and decodes a JSON response into out
// (skipped when out is nil).
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	resp, err := c.send(ctx, http.MethodPost, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := responseError(resp); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil
}

// doRead is do with the WithRetry policy applied: a 503 admission
// shed is retried after a jittered backoff, up to the configured cap.
// Only used for idempotent reads — re-sending one is always safe.
func (c *Client) doRead(ctx context.Context, path string, in, out any) error {
	for attempt := 0; ; attempt++ {
		err := c.do(ctx, path, in, out)
		if !c.shouldRetry(err, attempt) {
			return err
		}
		if err := c.backoff(ctx, attempt); err != nil {
			return err
		}
	}
}

// sendRead is send + status check with the WithRetry policy applied;
// it returns an open response the caller must close. Used by the
// streaming and GET reads.
func (c *Client) sendRead(ctx context.Context, method, path string, in any) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		resp, err := c.send(ctx, method, path, in)
		if err == nil {
			if err = responseError(resp); err == nil {
				return resp, nil
			}
			resp.Body.Close()
		}
		if !c.shouldRetry(err, attempt) {
			return nil, err
		}
		if err := c.backoff(ctx, attempt); err != nil {
			return nil, err
		}
	}
}

func (c *Client) shouldRetry(err error, attempt int) bool {
	if c.retries <= 0 || attempt >= c.retries {
		return false
	}
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusServiceUnavailable
}

func (c *Client) backoff(ctx context.Context, attempt int) error {
	base := c.retryBase
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	d := base << attempt
	// Jitter to ±50% so shed clients do not re-arrive in lockstep.
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: encoding %s request: %w", path, err)
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	return resp, nil
}

// responseError maps a non-2xx response to an error carrying the
// server's message and status code.
func responseError(resp *http.Response) error {
	if resp.StatusCode/100 == 2 {
		return nil
	}
	var e ErrorResponse
	blob, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(blob, &e) != nil || e.Error == "" {
		e.Error = strings.TrimSpace(string(blob))
	}
	return &APIError{Status: resp.StatusCode, Message: e.Error, Primary: e.Primary}
}

// APIError is a non-2xx server response.
type APIError struct {
	Status  int
	Message string
	// Primary is set on HTTP 421 (write sent to a replication
	// follower): the primary's URL to retry against.
	Primary string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.Status)
}

// CreateDB registers a new named database on the server.
func (c *Client) CreateDB(ctx context.Context, db string) error {
	return c.do(ctx, PathCreateDB, CreateDBRequest{DB: db}, nil)
}

// CreateRelation creates a relation with the given typed attributes
// (kinds "name" or "int") and returns the published write-version.
func (c *Client) CreateRelation(ctx context.Context, db, rel string, attrs ...prefcqa.WireAttr) (uint64, error) {
	var out VersionResponse
	err := c.do(ctx, PathRelation, RelationRequest{DB: db, Relation: rel, Attrs: attrs}, &out)
	return out.Version, err
}

// NameAttr declares a name-typed wire attribute.
func NameAttr(name string) prefcqa.WireAttr { return prefcqa.WireAttr{Name: name, Kind: "name"} }

// IntAttr declares an integer-typed wire attribute.
func IntAttr(name string) prefcqa.WireAttr { return prefcqa.WireAttr{Name: name, Kind: "int"} }

// AddFD declares a functional dependency, e.g. "Dept -> Name, Salary".
func (c *Client) AddFD(ctx context.Context, db, rel, fd string) (uint64, error) {
	var out VersionResponse
	err := c.do(ctx, PathFD, FDRequest{DB: db, Relation: rel, FD: fd}, &out)
	return out.Version, err
}

// Insert adds a batch of tuples and returns their IDs (row order) and
// the published write-version. Build rows with prefcqa.MakeTuple.
func (c *Client) Insert(ctx context.Context, db, rel string, rows ...prefcqa.Tuple) ([]int, uint64, error) {
	req := InsertRequest{DB: db, Relation: rel, Rows: make([][]string, len(rows))}
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = prefcqa.EncodeValue(v)
		}
		req.Rows[i] = cells
	}
	var out InsertResponse
	err := c.do(ctx, PathInsert, req, &out)
	return out.IDs, out.Version, err
}

// Delete tombstones tuples by ID; it returns how many were live and
// the published write-version.
func (c *Client) Delete(ctx context.Context, db, rel string, ids ...int) (int, uint64, error) {
	var out DeleteResponse
	err := c.do(ctx, PathDelete, DeleteRequest{DB: db, Relation: rel, IDs: ids}, &out)
	return out.Deleted, out.Version, err
}

// Prefer records preference pairs (each pair's first tuple wins its
// conflict against the second) and returns the published
// write-version.
func (c *Client) Prefer(ctx context.Context, db, rel string, pairs ...[2]int) (uint64, error) {
	var out VersionResponse
	err := c.do(ctx, PathPrefer, PreferRequest{DB: db, Relation: rel, Pairs: pairs}, &out)
	return out.Version, err
}

// Query evaluates a closed query under the family's preferred-repair
// semantics on a pinned snapshot and returns the three-valued answer.
func (c *Client) Query(ctx context.Context, db string, f prefcqa.Family, query string, opts ...ReadOption) (prefcqa.Answer, error) {
	var out QueryResponse
	req := QueryRequest{DB: db, Family: f.String(), Query: query, ReadOptions: readOptions(opts)}
	if err := c.doRead(ctx, PathQuery, req, &out); err != nil {
		return 0, err
	}
	return parseAnswer(out.Answer)
}

func parseAnswer(s string) (prefcqa.Answer, error) {
	switch s {
	case prefcqa.True.String():
		return prefcqa.True, nil
	case prefcqa.False.String():
		return prefcqa.False, nil
	case prefcqa.Undetermined.String():
		return prefcqa.Undetermined, nil
	default:
		return 0, fmt.Errorf("client: unknown answer %q", s)
	}
}

// QueryOpen returns the certain answers of an open query as bindings
// of its free variables (values in wire syntax; decode with
// prefcqa.DecodeValue if typed values are needed).
func (c *Client) QueryOpen(ctx context.Context, db string, f prefcqa.Family, query string, opts ...ReadOption) ([]map[string]string, error) {
	var out QueryOpenResponse
	req := QueryRequest{DB: db, Family: f.String(), Query: query, ReadOptions: readOptions(opts)}
	if err := c.doRead(ctx, PathQueryOpen, req, &out); err != nil {
		return nil, err
	}
	return out.Bindings, nil
}

// CountRepairs returns the number of preferred repairs of a relation
// at a pinned snapshot.
func (c *Client) CountRepairs(ctx context.Context, db string, f prefcqa.Family, rel string, opts ...ReadOption) (int64, error) {
	var out CountResponse
	req := CountRequest{DB: db, Family: f.String(), Relation: rel, ReadOptions: readOptions(opts)}
	if err := c.doRead(ctx, PathCount, req, &out); err != nil {
		return 0, err
	}
	return out.Count, nil
}

// Repairs streams the preferred repairs of a relation (at most max;
// max <= 0 selects the server default) and calls yield for each.
// yield returns false to stop early. It reports whether the server
// truncated the enumeration at the cap.
func (c *Client) Repairs(ctx context.Context, db string, f prefcqa.Family, rel string, max int, yield func(*prefcqa.Instance) bool, opts ...ReadOption) (truncated bool, err error) {
	req := RepairsRequest{DB: db, Family: f.String(), Relation: rel, Max: max, ReadOptions: readOptions(opts)}
	resp, err := c.sendRead(ctx, http.MethodPost, PathRepairs, req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		var line RepairsLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return false, fmt.Errorf("client: bad repairs stream line: %w", err)
		}
		switch {
		case line.Error != "":
			return false, fmt.Errorf("client: repairs stream: %s", line.Error)
		case line.Done:
			return line.Truncated, nil
		case line.Repair != nil:
			inst, err := prefcqa.DecodeWire(*line.Repair)
			if err != nil {
				return false, fmt.Errorf("client: decoding streamed repair: %w", err)
			}
			if !yield(inst) {
				return false, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return false, fmt.Errorf("client: repairs stream ended without a terminal line")
}

// Explain reports the physical query plans the planner chose for a
// closed query against the pinned full instances.
func (c *Client) Explain(ctx context.Context, db, query string, opts ...ReadOption) (ExplainResponse, error) {
	var out ExplainResponse
	req := ExplainRequest{DB: db, Query: query, ReadOptions: readOptions(opts)}
	err := c.doRead(ctx, PathExplain, req, &out)
	return out, err
}

// Stats samples the server's observability counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	resp, err := c.sendRead(ctx, http.MethodGet, PathStats, nil)
	if err != nil {
		return StatsResponse{}, err
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return StatsResponse{}, fmt.Errorf("client: decoding stats: %w", err)
	}
	return out, nil
}

// Health probes the server's liveness endpoint.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.sendRead(ctx, http.MethodGet, PathHealth, nil)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// Promote asks a follower server to start accepting writes at the
// exact sequence where its primary stopped, bumping the fencing epoch
// (see PathPromote). It fails with HTTP 409 on a server that is not a
// follower.
func (c *Client) Promote(ctx context.Context) (PromoteResponse, error) {
	var out PromoteResponse
	err := c.do(ctx, PathPromote, nil, &out)
	return out, err
}
