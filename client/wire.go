// Package client is the Go client of the prefserve serving layer and
// the definition of its HTTP/JSON wire protocol. The request and
// response types in this file ARE the protocol: internal/server
// decodes and encodes exactly these shapes, so any HTTP client that
// speaks them (curl included) interoperates.
//
// Values cross the wire in the textual constant syntax of the
// library's query language — integers bare ("42"), names
// single-quoted with ” escaping ("'R&D'", "'it”s'") — so every
// value round-trips exactly; see prefcqa.EncodeValue. Instances
// (repair and clean results) cross as prefcqa.WireInstance.
package client

import (
	"encoding/json"

	"prefcqa"
)

// The endpoint paths of the v1 protocol. All bodies are JSON; every
// endpoint is POST except PathStats and PathHealth (GET). PathRepairs
// responds with an NDJSON stream of RepairsLine values.
const (
	PathCreateDB  = "/v1/db"
	PathRelation  = "/v1/relation"
	PathFD        = "/v1/fd"
	PathInsert    = "/v1/insert"
	PathDelete    = "/v1/delete"
	PathPrefer    = "/v1/prefer"
	PathQuery     = "/v1/query"
	PathQueryOpen = "/v1/query-open"
	PathCount     = "/v1/repairs/count"
	PathRepairs   = "/v1/repairs"
	PathExplain   = "/v1/explain"
	PathStats     = "/v1/stats"
	PathHealth    = "/healthz"
)

// The replication endpoints. A primary serves its checkpoint image
// (PathReplSnapshot, GET ?db=NAME), its database list (PathReplDBs,
// GET) and a long-polled NDJSON tail of WAL records (PathReplStream,
// GET ?db=NAME&from_seq=N&epoch=E). A follower accepts PathPromote
// (POST, no body) to start taking writes where the primary stopped.
const (
	PathReplSnapshot = "/v1/repl/snapshot"
	PathReplStream   = "/v1/repl/stream"
	PathReplDBs      = "/v1/repl/dbs"
	PathPromote      = "/v1/promote"
)

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Primary carries the primary's URL on a write rejected by a
	// follower (HTTP 421): the client should retry there.
	Primary string `json:"primary,omitempty"`
}

// ReadOptions are the common knobs of every read endpoint.
type ReadOptions struct {
	// MinVersion makes the read see a state at least as new as the
	// given database write-version — pass a write response's Version
	// for read-your-writes across connections. Zero means "latest
	// completed write", which this server always satisfies anyway.
	// A MinVersion beyond the database's current write-version (a
	// version from another database or server) is rejected with
	// HTTP 412 rather than silently served stale.
	MinVersion uint64 `json:"min_version,omitempty"`
	// TimeoutMS caps this request's evaluation time in milliseconds;
	// zero selects the server's default. The server clamps it to its
	// configured maximum. A deadline hit returns HTTP 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CreateDBRequest registers a new named database (tenant).
type CreateDBRequest struct {
	DB string `json:"db"`
}

// RelationRequest creates a relation with the given typed schema.
type RelationRequest struct {
	DB       string             `json:"db"`
	Relation string             `json:"relation"`
	Attrs    []prefcqa.WireAttr `json:"attrs"`
}

// FDRequest declares a functional dependency, e.g. "Dept -> Name".
type FDRequest struct {
	DB       string `json:"db"`
	Relation string `json:"relation"`
	FD       string `json:"fd"`
}

// VersionResponse is the body of every successful write: the
// database's write-version after the mutation published. Pass it as
// ReadOptions.MinVersion to guarantee a later read observes it.
type VersionResponse struct {
	Version uint64 `json:"version"`
}

// InsertRequest inserts a batch of rows (cells in wire value syntax,
// one per attribute). Duplicate rows return their existing IDs (set
// semantics). The batch is validated whole before any row is
// applied: a malformed batch inserts nothing.
type InsertRequest struct {
	DB       string     `json:"db"`
	Relation string     `json:"relation"`
	Rows     [][]string `json:"rows"`
}

// InsertResponse returns the tuple ID of every inserted row, in row
// order, and the published write-version.
type InsertResponse struct {
	IDs     []int  `json:"ids"`
	Version uint64 `json:"version"`
}

// DeleteRequest tombstones tuples by ID.
type DeleteRequest struct {
	DB       string `json:"db"`
	Relation string `json:"relation"`
	IDs      []int  `json:"ids"`
}

// DeleteResponse reports how many of the IDs were live and the
// published write-version.
type DeleteResponse struct {
	Deleted int    `json:"deleted"`
	Version uint64 `json:"version"`
}

// PreferRequest records preference pairs: in each pair the first
// tuple wins its conflict against the second. Pairs apply in order;
// if one fails (unknown tuple ID), the earlier pairs stay applied
// and versioned, and the error response identifies the failing pair.
type PreferRequest struct {
	DB       string   `json:"db"`
	Relation string   `json:"relation"`
	Pairs    [][2]int `json:"pairs"`
}

// QueryRequest evaluates a closed first-order query under a
// preferred-repair family ("rep", "local", "semiglobal", "global",
// "common").
type QueryRequest struct {
	DB     string `json:"db"`
	Family string `json:"family"`
	Query  string `json:"query"`
	ReadOptions
}

// QueryResponse carries the three-valued answer ("true", "false",
// "undetermined"), the write-version the pinned snapshot reflects (at
// least), and the per-relation instance versions it pinned.
type QueryResponse struct {
	Answer   string            `json:"answer"`
	Version  uint64            `json:"version"`
	Versions map[string]uint64 `json:"versions,omitempty"`
}

// QueryOpenResponse carries the certain answers of an open query:
// one binding per answer, free variable → wire-encoded value.
type QueryOpenResponse struct {
	Bindings []map[string]string `json:"bindings"`
	Version  uint64              `json:"version"`
}

// CountRequest counts the preferred repairs of one relation.
type CountRequest struct {
	DB       string `json:"db"`
	Family   string `json:"family"`
	Relation string `json:"relation"`
	ReadOptions
}

// CountResponse is the repair count at the pinned snapshot.
type CountResponse struct {
	Count   int64  `json:"count"`
	Version uint64 `json:"version"`
}

// RepairsRequest enumerates the preferred repairs of one relation as
// an NDJSON stream of RepairsLine values — one line per repair, then
// one terminal line (Done or Error set).
type RepairsRequest struct {
	DB       string `json:"db"`
	Family   string `json:"family"`
	Relation string `json:"relation"`
	// Max caps the number of streamed repairs; zero selects the
	// server default. The terminal line reports truncation.
	Max int `json:"max,omitempty"`
	ReadOptions
}

// RepairsLine is one line of the repair stream. Exactly one of
// Repair, Done or Error is set; a Done line closes a successful
// stream, an Error line closes a failed one.
type RepairsLine struct {
	Repair *prefcqa.WireInstance `json:"repair,omitempty"`
	// Done closes the stream: Count repairs were streamed, Truncated
	// reports whether Max cut the enumeration short.
	Done      bool   `json:"done,omitempty"`
	Count     int    `json:"count,omitempty"`
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// ExplainRequest reports the physical query plans of a closed query
// against the pinned full instances (index access paths, join order,
// estimated vs actual rows).
type ExplainRequest struct {
	DB    string `json:"db"`
	Query string `json:"query"`
	ReadOptions
}

// ExplainResponse mirrors prefcqa.PlanReport over the wire.
type ExplainResponse struct {
	Query   string   `json:"query"`
	Indexed bool     `json:"indexed"`
	Holds   bool     `json:"holds"`
	Plans   []string `json:"plans,omitempty"`
	Version uint64   `json:"version"`
}

// StatsResponse is the server's observability surface.
type StatsResponse struct {
	DBs    map[string]DBStats `json:"dbs"`
	Server ServerStats        `json:"server"`
}

// DBStats describes one named database.
type DBStats struct {
	WriteVersion uint64 `json:"write_version"`
	CacheHits    int64  `json:"cache_hits"`
	CacheMisses  int64  `json:"cache_misses"`
	// Open-query path counters: direct spine enumeration vs
	// active-domain substitution, and which vectorized executor ran
	// the direct spines (worst-case-optimal generic join, Yannakakis
	// reduction, or greedy nested loop).
	OpenDirect   int64 `json:"open_direct"`
	OpenFallback int64 `json:"open_fallback"`
	WcojSpines   int64 `json:"wcoj_spines"`
	YanSpines    int64 `json:"yannakakis_spines"`
	GreedySpines int64 `json:"greedy_spines"`
	// Closed-query verification path counters: component-pruned
	// repair walks (ground or quantified with a sound support
	// analysis) vs full whole-database repair enumerations.
	ClosedPruned int64                    `json:"closed_pruned"`
	ClosedFull   int64                    `json:"closed_full"`
	Relations    map[string]RelationStats `json:"relations"`
	// WAL describes the durability layer; absent on in-memory
	// databases. Replication describes this database's role in a
	// primary/follower topology; absent when the server neither follows
	// nor persists.
	WAL         *WALStats         `json:"wal,omitempty"`
	Replication *ReplicationStats `json:"replication,omitempty"`
}

// WALStats is the write-ahead log's observability surface: enough to
// monitor durability and replication lag from the outside.
type WALStats struct {
	// Seq is the last logged sequence (== the write-version),
	// CheckpointSeq the coverage of the newest durable checkpoint.
	Seq           uint64 `json:"seq"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// Epoch is the replication epoch; it advances on promotion.
	Epoch uint64 `json:"epoch"`
	// Segments and SegmentBytes describe the live log files on disk.
	Segments     int   `json:"segments"`
	SegmentBytes int64 `json:"segment_bytes"`
	// Fsync is the configured durability barrier: "always", "group" or
	// "never".
	Fsync string `json:"fsync"`
}

// ReplicationStats describes one database's replication state.
type ReplicationStats struct {
	// Role is "primary" (accepts writes, serves the stream) or
	// "follower" (applies the stream, refuses writes). A promoted
	// follower reports "primary" with Status "promoted".
	Role string `json:"role"`
	// Primary is the upstream URL a follower replicates from.
	Primary string `json:"primary,omitempty"`
	// AppliedSeq is the follower's replicated watermark: every record
	// up to it is applied and readable. On a primary it equals the
	// write-version.
	AppliedSeq uint64 `json:"applied_seq"`
	// Epoch is the database's replication epoch.
	Epoch uint64 `json:"epoch"`
	// Status is the follower's lifecycle: "bootstrapping", "streaming",
	// "disconnected", "promoted" or "failed: <reason>".
	Status string `json:"status,omitempty"`
	// LastContactMS is the time since the follower last heard from the
	// primary (a record or a heartbeat); -1 before first contact.
	LastContactMS int64 `json:"last_contact_ms,omitempty"`
}

// ReplSnapshotResponse is a primary's bootstrap image of one database:
// the checkpoint covering records 1..Seq, captured consistently at
// request time. Checkpoint is the wal.Checkpoint JSON; followers feed
// it to the same strict loader crash recovery uses.
type ReplSnapshotResponse struct {
	DB         string          `json:"db"`
	Seq        uint64          `json:"seq"`
	Epoch      uint64          `json:"epoch"`
	Checkpoint json.RawMessage `json:"checkpoint"`
}

// ReplFrame is one line of the NDJSON replication stream. Exactly one
// of Record, Heartbeat or Error is set. Record frames carry one
// wal.Record JSON payload, in strictly increasing seq order.
// Heartbeat frames report the primary's position while the tail is
// idle — the follower's liveness signal. An Error frame closes the
// stream; Error "compacted" means the requested position has been
// checkpointed away and the follower must re-bootstrap.
type ReplFrame struct {
	Record    json.RawMessage `json:"record,omitempty"`
	Heartbeat bool            `json:"heartbeat,omitempty"`
	// Seq/Epoch/CheckpointSeq describe the primary's log position on a
	// heartbeat or error frame.
	Seq           uint64 `json:"seq,omitempty"`
	Epoch         uint64 `json:"epoch,omitempty"`
	CheckpointSeq uint64 `json:"checkpoint_seq,omitempty"`
	Error         string `json:"error,omitempty"`
}

// ReplDBsResponse lists the databases a primary replicates.
type ReplDBsResponse struct {
	DBs []string `json:"dbs"`
}

// PromoteResponse reports a follower's promotion: the databases now
// accepting writes and the new (fencing) epoch.
type PromoteResponse struct {
	Promoted []string `json:"promoted"`
	Epoch    uint64   `json:"epoch"`
}

// RelationStats describes one relation at the latest snapshot.
type RelationStats struct {
	Version    uint64 `json:"version"`
	Tuples     int    `json:"tuples"`
	Conflicts  int    `json:"conflicts"`
	Components int    `json:"components"`
}

// ServerStats describes the serving process.
type ServerStats struct {
	// Inflight and MaxInflight describe the admission-control
	// semaphore at sampling time.
	Inflight    int `json:"inflight"`
	MaxInflight int `json:"max_inflight"`
	// Served counts completed requests, Rejected admission-control
	// 503s, Timeouts per-request deadline hits.
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected"`
	Timeouts uint64 `json:"timeouts"`
}
