// Package client is the Go client of the prefserve serving layer and
// the definition of its HTTP/JSON wire protocol. The request and
// response types in this file ARE the protocol: internal/server
// decodes and encodes exactly these shapes, so any HTTP client that
// speaks them (curl included) interoperates.
//
// Values cross the wire in the textual constant syntax of the
// library's query language — integers bare ("42"), names
// single-quoted with ” escaping ("'R&D'", "'it”s'") — so every
// value round-trips exactly; see prefcqa.EncodeValue. Instances
// (repair and clean results) cross as prefcqa.WireInstance.
package client

import "prefcqa"

// The endpoint paths of the v1 protocol. All bodies are JSON; every
// endpoint is POST except PathStats and PathHealth (GET). PathRepairs
// responds with an NDJSON stream of RepairsLine values.
const (
	PathCreateDB  = "/v1/db"
	PathRelation  = "/v1/relation"
	PathFD        = "/v1/fd"
	PathInsert    = "/v1/insert"
	PathDelete    = "/v1/delete"
	PathPrefer    = "/v1/prefer"
	PathQuery     = "/v1/query"
	PathQueryOpen = "/v1/query-open"
	PathCount     = "/v1/repairs/count"
	PathRepairs   = "/v1/repairs"
	PathExplain   = "/v1/explain"
	PathStats     = "/v1/stats"
	PathHealth    = "/healthz"
)

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ReadOptions are the common knobs of every read endpoint.
type ReadOptions struct {
	// MinVersion makes the read see a state at least as new as the
	// given database write-version — pass a write response's Version
	// for read-your-writes across connections. Zero means "latest
	// completed write", which this server always satisfies anyway.
	// A MinVersion beyond the database's current write-version (a
	// version from another database or server) is rejected with
	// HTTP 412 rather than silently served stale.
	MinVersion uint64 `json:"min_version,omitempty"`
	// TimeoutMS caps this request's evaluation time in milliseconds;
	// zero selects the server's default. The server clamps it to its
	// configured maximum. A deadline hit returns HTTP 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// CreateDBRequest registers a new named database (tenant).
type CreateDBRequest struct {
	DB string `json:"db"`
}

// RelationRequest creates a relation with the given typed schema.
type RelationRequest struct {
	DB       string             `json:"db"`
	Relation string             `json:"relation"`
	Attrs    []prefcqa.WireAttr `json:"attrs"`
}

// FDRequest declares a functional dependency, e.g. "Dept -> Name".
type FDRequest struct {
	DB       string `json:"db"`
	Relation string `json:"relation"`
	FD       string `json:"fd"`
}

// VersionResponse is the body of every successful write: the
// database's write-version after the mutation published. Pass it as
// ReadOptions.MinVersion to guarantee a later read observes it.
type VersionResponse struct {
	Version uint64 `json:"version"`
}

// InsertRequest inserts a batch of rows (cells in wire value syntax,
// one per attribute). Duplicate rows return their existing IDs (set
// semantics). The batch is validated whole before any row is
// applied: a malformed batch inserts nothing.
type InsertRequest struct {
	DB       string     `json:"db"`
	Relation string     `json:"relation"`
	Rows     [][]string `json:"rows"`
}

// InsertResponse returns the tuple ID of every inserted row, in row
// order, and the published write-version.
type InsertResponse struct {
	IDs     []int  `json:"ids"`
	Version uint64 `json:"version"`
}

// DeleteRequest tombstones tuples by ID.
type DeleteRequest struct {
	DB       string `json:"db"`
	Relation string `json:"relation"`
	IDs      []int  `json:"ids"`
}

// DeleteResponse reports how many of the IDs were live and the
// published write-version.
type DeleteResponse struct {
	Deleted int    `json:"deleted"`
	Version uint64 `json:"version"`
}

// PreferRequest records preference pairs: in each pair the first
// tuple wins its conflict against the second. Pairs apply in order;
// if one fails (unknown tuple ID), the earlier pairs stay applied
// and versioned, and the error response identifies the failing pair.
type PreferRequest struct {
	DB       string   `json:"db"`
	Relation string   `json:"relation"`
	Pairs    [][2]int `json:"pairs"`
}

// QueryRequest evaluates a closed first-order query under a
// preferred-repair family ("rep", "local", "semiglobal", "global",
// "common").
type QueryRequest struct {
	DB     string `json:"db"`
	Family string `json:"family"`
	Query  string `json:"query"`
	ReadOptions
}

// QueryResponse carries the three-valued answer ("true", "false",
// "undetermined"), the write-version the pinned snapshot reflects (at
// least), and the per-relation instance versions it pinned.
type QueryResponse struct {
	Answer   string            `json:"answer"`
	Version  uint64            `json:"version"`
	Versions map[string]uint64 `json:"versions,omitempty"`
}

// QueryOpenResponse carries the certain answers of an open query:
// one binding per answer, free variable → wire-encoded value.
type QueryOpenResponse struct {
	Bindings []map[string]string `json:"bindings"`
	Version  uint64              `json:"version"`
}

// CountRequest counts the preferred repairs of one relation.
type CountRequest struct {
	DB       string `json:"db"`
	Family   string `json:"family"`
	Relation string `json:"relation"`
	ReadOptions
}

// CountResponse is the repair count at the pinned snapshot.
type CountResponse struct {
	Count   int64  `json:"count"`
	Version uint64 `json:"version"`
}

// RepairsRequest enumerates the preferred repairs of one relation as
// an NDJSON stream of RepairsLine values — one line per repair, then
// one terminal line (Done or Error set).
type RepairsRequest struct {
	DB       string `json:"db"`
	Family   string `json:"family"`
	Relation string `json:"relation"`
	// Max caps the number of streamed repairs; zero selects the
	// server default. The terminal line reports truncation.
	Max int `json:"max,omitempty"`
	ReadOptions
}

// RepairsLine is one line of the repair stream. Exactly one of
// Repair, Done or Error is set; a Done line closes a successful
// stream, an Error line closes a failed one.
type RepairsLine struct {
	Repair *prefcqa.WireInstance `json:"repair,omitempty"`
	// Done closes the stream: Count repairs were streamed, Truncated
	// reports whether Max cut the enumeration short.
	Done      bool   `json:"done,omitempty"`
	Count     int    `json:"count,omitempty"`
	Truncated bool   `json:"truncated,omitempty"`
	Error     string `json:"error,omitempty"`
}

// ExplainRequest reports the physical query plans of a closed query
// against the pinned full instances (index access paths, join order,
// estimated vs actual rows).
type ExplainRequest struct {
	DB    string `json:"db"`
	Query string `json:"query"`
	ReadOptions
}

// ExplainResponse mirrors prefcqa.PlanReport over the wire.
type ExplainResponse struct {
	Query   string   `json:"query"`
	Indexed bool     `json:"indexed"`
	Holds   bool     `json:"holds"`
	Plans   []string `json:"plans,omitempty"`
	Version uint64   `json:"version"`
}

// StatsResponse is the server's observability surface.
type StatsResponse struct {
	DBs    map[string]DBStats `json:"dbs"`
	Server ServerStats        `json:"server"`
}

// DBStats describes one named database.
type DBStats struct {
	WriteVersion uint64 `json:"write_version"`
	CacheHits    int64  `json:"cache_hits"`
	CacheMisses  int64  `json:"cache_misses"`
	// Open-query path counters: direct spine enumeration vs
	// active-domain substitution, and which vectorized executor ran
	// the direct spines (worst-case-optimal generic join, Yannakakis
	// reduction, or greedy nested loop).
	OpenDirect   int64 `json:"open_direct"`
	OpenFallback int64 `json:"open_fallback"`
	WcojSpines   int64 `json:"wcoj_spines"`
	YanSpines    int64 `json:"yannakakis_spines"`
	GreedySpines int64 `json:"greedy_spines"`
	// Closed-query verification path counters: component-pruned
	// repair walks (ground or quantified with a sound support
	// analysis) vs full whole-database repair enumerations.
	ClosedPruned int64                    `json:"closed_pruned"`
	ClosedFull   int64                    `json:"closed_full"`
	Relations    map[string]RelationStats `json:"relations"`
}

// RelationStats describes one relation at the latest snapshot.
type RelationStats struct {
	Version    uint64 `json:"version"`
	Tuples     int    `json:"tuples"`
	Conflicts  int    `json:"conflicts"`
	Components int    `json:"components"`
}

// ServerStats describes the serving process.
type ServerStats struct {
	// Inflight and MaxInflight describe the admission-control
	// semaphore at sampling time.
	Inflight    int `json:"inflight"`
	MaxInflight int `json:"max_inflight"`
	// Served counts completed requests, Rejected admission-control
	// 503s, Timeouts per-request deadline hits.
	Served   uint64 `json:"served"`
	Rejected uint64 `json:"rejected"`
	Timeouts uint64 `json:"timeouts"`
}
