package prefcqa

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrashChild is not a test: it is the victim process of
// TestCrashRecoveryKillRestart, re-executing this test binary. It
// opens a durable DB under fsync=always and streams mutations,
// appending one line per *acknowledged* write to an ack file — a line
// is only written after the facade call returned, i.e. after the WAL
// record was fsynced. The parent SIGKILLs it mid-stream.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("PREFCQA_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-test helper process; run via TestCrashRecoveryKillRestart")
	}
	db, err := Open(dir, WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	r, err := db.CreateRelation("R", IntAttr("K"), IntAttr("V"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddFD("K -> V"); err != nil {
		t.Fatal(err)
	}
	ack, err := os.OpenFile(os.Getenv("PREFCQA_CRASH_ACK"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}

	// Small keyspace so conflicts (and preferences over them) are
	// common; the deadline only matters if the parent dies without
	// killing us.
	deadline := time.Now().Add(60 * time.Second)
	var lastTwo [2]TupleID
	for i := 0; time.Now().Before(deadline); i++ {
		k, v := int64(i%8), int64(i%3)
		id, err := r.Insert(k, v)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(ack, "insert %d %d %d %d\n", k, v, id, db.WriteVersion())
		lastTwo[i%2] = id
		if i%7 == 6 && lastTwo[0] != lastTwo[1] {
			x, y := lastTwo[0], lastTwo[1]
			if x > y {
				x, y = y, x // low ≻ high keeps the preference set acyclic
			}
			if inst := r.Instance(); inst.Live(x) && inst.Live(y) {
				if err := r.Prefer(x, y); err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(ack, "prefer %d %d %d\n", x, y, db.WriteVersion())
			}
		}
		if i%23 == 22 {
			if ok, err := r.Delete(id); err != nil {
				t.Fatal(err)
			} else if ok {
				fmt.Fprintf(ack, "delete %d %d\n", id, db.WriteVersion())
			}
		}
	}
}

// TestCrashRecoveryKillRestart is the crash-injection harness of
// ISSUE 6: it SIGKILLs a child process that is streaming durable
// writes under fsync=always, recovers the directory the corpse left
// behind, and demands that (a) the recovered write version is at
// least the last acknowledged one, (b) every acknowledged mutation is
// present with its exact tuple ID, and (c) the recovered database
// answers counts and repair enumerations bit-for-bit identically to
// an independent in-memory reconstruction.
func TestCrashRecoveryKillRestart(t *testing.T) {
	if os.Getenv("PREFCQA_CRASH_DIR") != "" {
		t.Skip("already inside the helper process")
	}
	base := t.TempDir()
	dir := filepath.Join(base, "db")
	ackPath := filepath.Join(base, "acked.log")

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$")
	cmd.Env = append(os.Environ(),
		"PREFCQA_CRASH_DIR="+dir, "PREFCQA_CRASH_ACK="+ackPath)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Let the child make progress, then kill it mid-stream — SIGKILL,
	// no cleanup handler runs, the WAL is whatever hit the disk.
	want := 150
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(ackPath); err == nil &&
			strings.Count(string(data), "\n") >= want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	db, err := Open(dir, WithSyncPolicy(SyncAlways))
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer db.Close()
	r, ok := db.Relation("R")
	if !ok {
		t.Fatal("relation R not recovered")
	}
	inst := r.Instance()
	r.mu.Lock()
	prefSet := make(map[[2]TupleID]bool, len(r.prefs))
	for _, p := range r.prefs {
		prefSet[p] = true
	}
	r.mu.Unlock()

	// Replay the ack stream. The final line may itself be torn (the
	// kill can land mid-write of the ack file); a complete line,
	// however, is a write the child saw acknowledged and must have
	// survived.
	ackData, err := os.ReadFile(ackPath)
	if err != nil {
		t.Fatal(err)
	}
	var acked, lastVersion uint64
	deleted := make(map[TupleID]bool)
	sc := bufio.NewScanner(strings.NewReader(string(ackData)))
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) > 0 && !strings.HasSuffix(string(ackData), "\n") {
		lines = lines[:len(lines)-1]
	}
	for _, line := range lines {
		switch f := strings.Fields(line); f[0] {
		case "delete":
			var id TupleID
			fmt.Sscan(f[1], &id)
			fmt.Sscan(f[2], &lastVersion)
			deleted[id] = true
		case "insert":
			var k, v int64
			var id TupleID
			fmt.Sscan(f[1], &k)
			fmt.Sscan(f[2], &v)
			fmt.Sscan(f[3], &id)
			fmt.Sscan(f[4], &lastVersion)
			tup, err := MakeTuple(k, v)
			if err != nil {
				t.Fatal(err)
			}
			if id >= inst.NumIDs() {
				t.Fatalf("acked insert id %d lost (only %d IDs recovered)", id, inst.NumIDs())
			}
			if got := inst.Tuple(id).String(); got != tup.String() {
				t.Fatalf("acked tuple %d = %s, want %s", id, got, tup)
			}
		case "prefer":
			var x, y TupleID
			fmt.Sscan(f[1], &x)
			fmt.Sscan(f[2], &y)
			fmt.Sscan(f[3], &lastVersion)
			if !prefSet[[2]TupleID{x, y}] {
				t.Fatalf("acked preference (%d, %d) lost", x, y)
			}
		}
		acked++
	}
	if acked == 0 {
		t.Fatal("no acknowledged writes to verify")
	}
	for id := range deleted {
		if inst.Live(id) {
			t.Fatalf("acked delete of %d lost: tuple live after recovery", id)
		}
	}
	if got := db.WriteVersion(); got < lastVersion {
		t.Fatalf("recovered write version %d < last acked %d", got, lastVersion)
	}
	t.Logf("verified %d acked writes; recovered version %d (last acked %d)",
		acked, db.WriteVersion(), lastVersion)

	// Bit-for-bit: the recovered DB must answer every family exactly
	// like an independent in-memory reconstruction of its state.
	assertSameResults(t, "kill-restart", db, mirrorDB(t, db))
}
