package prefcqa_test

import (
	"testing"

	"prefcqa/internal/bench"
)

// The mutation-workload benchmarks reuse bench.MutationWorkload — the
// exact op the prefbench -json suite snapshots into BENCH_*.json
// (single-tuple update + ground G-Rep query / repair count) — at a
// size small enough for CI's 1x smoke run. This file is an external
// test package because internal/bench imports the facade.

func BenchmarkMutationUpdateQueryIncremental(b *testing.B) {
	bench.MutationWorkload(2000, true, "query")(b)
}

func BenchmarkMutationUpdateQueryRebuild(b *testing.B) {
	bench.MutationWorkload(2000, false, "query")(b)
}

func BenchmarkMutationUpdateCountIncremental(b *testing.B) {
	bench.MutationWorkload(2000, true, "count")(b)
}

// The selective-query benchmarks reuse bench.SelectiveWorkload the
// same way: the planner's index access paths vs forced scans, on the
// point/join/lowsel queries the BENCH_*.json selective rows measure.

func BenchmarkSelectivePointQueryIndexed(b *testing.B) {
	bench.SelectiveWorkload(20_000, true, "point")(b)
}

func BenchmarkSelectivePointQueryScan(b *testing.B) {
	bench.SelectiveWorkload(20_000, false, "point")(b)
}

func BenchmarkSelectiveJoinQueryIndexed(b *testing.B) {
	bench.SelectiveWorkload(20_000, true, "join")(b)
}
