package prefcqa_test

import (
	"testing"

	"prefcqa/internal/bench"
)

// The mutation-workload benchmarks reuse bench.MutationWorkload — the
// exact op the prefbench -json suite snapshots into BENCH_*.json
// (single-tuple update + ground G-Rep query / repair count) — at a
// size small enough for CI's 1x smoke run. This file is an external
// test package because internal/bench imports the facade.

func BenchmarkMutationUpdateQueryIncremental(b *testing.B) {
	bench.MutationWorkload(2000, true, "query")(b)
}

func BenchmarkMutationUpdateQueryRebuild(b *testing.B) {
	bench.MutationWorkload(2000, false, "query")(b)
}

func BenchmarkMutationUpdateCountIncremental(b *testing.B) {
	bench.MutationWorkload(2000, true, "count")(b)
}

// The selective-query benchmarks reuse bench.SelectiveWorkload the
// same way: the planner's index access paths vs forced scans, on the
// point/join/lowsel queries the BENCH_*.json selective rows measure.

func BenchmarkSelectivePointQueryIndexed(b *testing.B) {
	bench.SelectiveWorkload(20_000, true, "point")(b)
}

func BenchmarkSelectivePointQueryScan(b *testing.B) {
	bench.SelectiveWorkload(20_000, false, "point")(b)
}

func BenchmarkSelectiveJoinQueryIndexed(b *testing.B) {
	bench.SelectiveWorkload(20_000, true, "join")(b)
}

func BenchmarkSelectiveLowselQueryIndexed(b *testing.B) {
	bench.SelectiveWorkload(20_000, true, "lowsel")(b)
}

// The acyclic-join benchmarks reuse bench.AcyclicWorkload: a
// three-atom chain with an empty join, answered by the Yannakakis
// semijoin executor (the cost-based default, asserted inside the
// workload) vs the vectorized greedy executor.

func BenchmarkAcyclicChainYannakakis(b *testing.B) {
	bench.AcyclicWorkload(20_000, "yannakakis")(b)
}

func BenchmarkAcyclicChainGreedy(b *testing.B) {
	bench.AcyclicWorkload(20_000, "greedy")(b)
}

// The open-query benchmarks reuse bench.OpenQueryWorkload: certain
// answers of an open query by direct spine enumeration (asserted
// inside the workload) vs the active-domain substitution baseline.

func BenchmarkOpenQueryDirect(b *testing.B) {
	bench.OpenQueryWorkload(2_000, "direct")(b)
}

func BenchmarkOpenQuerySubst(b *testing.B) {
	bench.OpenQueryWorkload(2_000, "subst")(b)
}

// The verification benchmarks reuse bench.VerifyWorkload: one
// quantified closed certain-answer check over a multi-component
// instance, answered by the component-pruned vectorized repair walk
// (asserted inside the workload) vs the pinned full whole-database
// enumeration.

func BenchmarkVerifyQueryPruned(b *testing.B) {
	bench.VerifyWorkload(2_000, "pruned")(b)
}

func BenchmarkVerifyQueryFull(b *testing.B) {
	bench.VerifyWorkload(2_000, "full")(b)
}

// The cyclic-join benchmarks reuse bench.CyclicWorkload: an empty
// triangle join, answered by the worst-case-optimal generic join (the
// cost-based default, asserted inside the workload) vs the vectorized
// greedy executor.

func BenchmarkCyclicTriangleWcoj(b *testing.B) {
	bench.CyclicWorkload(20_000, "wcoj")(b)
}

func BenchmarkCyclicTriangleGreedy(b *testing.B) {
	bench.CyclicWorkload(20_000, "greedy")(b)
}
