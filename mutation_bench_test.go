package prefcqa_test

import (
	"testing"

	"prefcqa/internal/bench"
)

// The mutation-workload benchmarks reuse bench.MutationWorkload — the
// exact op the prefbench -json suite snapshots into BENCH_*.json
// (single-tuple update + ground G-Rep query / repair count) — at a
// size small enough for CI's 1x smoke run. This file is an external
// test package because internal/bench imports the facade.

func BenchmarkMutationUpdateQueryIncremental(b *testing.B) {
	bench.MutationWorkload(2000, true, "query")(b)
}

func BenchmarkMutationUpdateQueryRebuild(b *testing.B) {
	bench.MutationWorkload(2000, false, "query")(b)
}

func BenchmarkMutationUpdateCountIncremental(b *testing.B) {
	bench.MutationWorkload(2000, true, "count")(b)
}
