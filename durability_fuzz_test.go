package prefcqa

import (
	"os"
	"path/filepath"
	"testing"

	"prefcqa/internal/wal"
)

// FuzzWALReplay feeds arbitrary bytes to recovery as a WAL segment.
// The invariants under fuzzing: recovery never panics, and whenever
// it accepts a log, the recovered database state equals the state
// obtained by decoding the same segment and applying its records
// directly — recovery adds nothing and loses nothing beyond the torn
// tail the decoder itself reports.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a realistic segment (create, FD, inserts, prefer,
	// delete), plus its truncations and single-byte corruptions.
	var seed []byte
	for i, rec := range []wal.Record{
		{Op: wal.OpCreate, Rel: "R", Attrs: []WireAttr{{Name: "K", Kind: "int"}, {Name: "V", Kind: "int"}}},
		{Op: wal.OpFD, Rel: "R", FD: "K -> V"},
		{Op: wal.OpInsert, Rel: "R", Rows: [][]string{{"1", "0"}, {"1", "1"}}},
		{Op: wal.OpPrefer, Rel: "R", Pairs: [][2]int{{0, 1}}},
		{Op: wal.OpInsert, Rel: "R", Rows: [][]string{{"2", "5"}}},
		{Op: wal.OpDelete, Rel: "R", IDs: []int{2}},
	} {
		rec.Seq = uint64(i + 1)
		frame, err := wal.EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		seed = append(seed, frame...)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add(seed[:1])
	f.Add([]byte{})
	flipped := append([]byte(nil), seed...)
	flipped[11] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "wal-0000000000000001.log")
		if err := os.WriteFile(seg, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir, WithSyncPolicy(SyncNever))
		if err != nil {
			return // rejected loudly: fine, as long as it did not panic
		}
		defer db.Close()

		// Recovery accepted the log, so decoding must agree (Open uses
		// the same decoder) and direct application of the decoded
		// records must build the identical state.
		recs, _, _, err := wal.DecodeSegment(raw)
		if err != nil {
			t.Fatalf("recovery accepted a segment the decoder rejects: %v", err)
		}
		if len(recs) > 0 && recs[0].Seq != 1 {
			t.Fatalf("recovery accepted a segment starting at seq %d", recs[0].Seq)
		}
		ref := New()
		for _, rec := range recs {
			if err := ref.applyRecord(rec); err != nil {
				t.Fatalf("recovery accepted a log direct application rejects: %v", err)
			}
		}
		if got, want := db.WriteVersion(), uint64(len(recs)); got != want {
			t.Fatalf("recovered write version %d, want %d records", got, want)
		}
		gotRels, wantRels := db.Relations(), ref.Relations()
		if len(gotRels) != len(wantRels) {
			t.Fatalf("recovered relations %v, want %v", gotRels, wantRels)
		}
		for i, name := range wantRels {
			if gotRels[i] != name {
				t.Fatalf("recovered relations %v, want %v", gotRels, wantRels)
			}
			gr, _ := db.Relation(name)
			rr, _ := ref.Relation(name)
			gi, ri := gr.Instance(), rr.Instance()
			if gi.NumIDs() != ri.NumIDs() || gi.Len() != ri.Len() {
				t.Fatalf("%s: %d IDs %d live, want %d IDs %d live",
					name, gi.NumIDs(), gi.Len(), ri.NumIDs(), ri.Len())
			}
			for id := 0; id < ri.NumIDs(); id++ {
				if gi.Live(id) != ri.Live(id) || gi.Tuple(id).String() != ri.Tuple(id).String() {
					t.Fatalf("%s: tuple %d differs after recovery", name, id)
				}
			}
			if gr.FDs() != rr.FDs() {
				t.Fatalf("%s: FDs %q, want %q", name, gr.FDs(), rr.FDs())
			}
			gr.mu.Lock()
			gp := append([][2]TupleID(nil), gr.prefs...)
			gr.mu.Unlock()
			rr.mu.Lock()
			rp := append([][2]TupleID(nil), rr.prefs...)
			rr.mu.Unlock()
			if len(gp) != len(rp) {
				t.Fatalf("%s: %d preference pairs, want %d", name, len(gp), len(rp))
			}
			for i := range rp {
				if gp[i] != rp[i] {
					t.Fatalf("%s: preference %d is %v, want %v", name, i, gp[i], rp[i])
				}
			}
		}
	})
}
