package prefcqa

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestIntegrationRandomScenario exercises the full stack end-to-end
// on randomized key-violation workloads: facade answers must agree
// with first principles (per-cluster reasoning).
func TestIntegrationRandomScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 15; iter++ {
		db := New()
		r, err := db.CreateRelation("Acct", NameAttr("Owner"), IntAttr("Balance"))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.AddFD("Owner -> Balance"); err != nil {
			t.Fatal(err)
		}
		// Build clusters: each owner has 1-3 candidate balances; the
		// first inserted candidate of each multi-candidate owner is
		// marked trusted with probability 1/2.
		type cluster struct {
			ids     []TupleID
			vals    []int64
			trusted bool // ids[0] dominates the others
		}
		var clusters []cluster
		owners := 3 + rng.Intn(4)
		for o := 0; o < owners; o++ {
			name := fmt.Sprintf("owner%d", o)
			k := 1 + rng.Intn(3)
			var c cluster
			for j := 0; j < k; j++ {
				v := int64(100*o + 10*j)
				id := r.MustInsert(name, int(v))
				c.ids = append(c.ids, id)
				c.vals = append(c.vals, v)
			}
			if k > 1 && rng.Intn(2) == 0 {
				c.trusted = true
				for _, other := range c.ids[1:] {
					if err := r.Prefer(c.ids[0], other); err != nil {
						t.Fatal(err)
					}
				}
			}
			clusters = append(clusters, c)
		}

		// Expected repair count over G-Rep: product over clusters of
		// (1 if trusted else k).
		want := int64(1)
		for _, c := range clusters {
			if c.trusted {
				continue
			}
			want *= int64(len(c.ids))
		}
		got, err := db.CountRepairs(Global, "Acct")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("iter %d: G-repairs = %d, want %d", iter, got, want)
		}

		// Per-owner certainty: the balance is certain iff the cluster
		// is a singleton or trusted.
		for o, c := range clusters {
			name := fmt.Sprintf("owner%d", o)
			q := fmt.Sprintf("Acct('%s', %d)", name, c.vals[0])
			a, err := db.Query(Global, q)
			if err != nil {
				t.Fatal(err)
			}
			certain := len(c.ids) == 1 || c.trusted
			switch {
			case certain && a != True:
				t.Fatalf("iter %d: %s should be certainly true, got %v", iter, q, a)
			case !certain && a != Undetermined:
				t.Fatalf("iter %d: %s should be undetermined, got %v", iter, q, a)
			}
			// Everyone certainly has SOME balance.
			some := fmt.Sprintf("EXISTS b . Acct('%s', b)", name)
			a, err = db.Query(Global, some)
			if err != nil {
				t.Fatal(err)
			}
			if a != True {
				t.Fatalf("iter %d: %s = %v", iter, some, a)
			}
			// Explanation statuses line up.
			rep, err := db.ExplainTuple(Global, "Acct", c.ids[0])
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case len(c.ids) == 1 && rep.Status() != "clean":
				t.Fatalf("singleton status = %s", rep.Status())
			case len(c.ids) > 1 && c.trusted && rep.Status() != "kept":
				t.Fatalf("trusted status = %s", rep.Status())
			case len(c.ids) > 1 && !c.trusted && rep.Status() != "disputed":
				t.Fatalf("untrusted status = %s", rep.Status())
			}
		}

		// Cleaning always yields a repair with exactly one row per
		// owner.
		cleaned, err := db.Clean("Acct")
		if err != nil {
			t.Fatal(err)
		}
		if cleaned.Len() != owners {
			t.Fatalf("iter %d: cleaned size = %d, want %d", iter, cleaned.Len(), owners)
		}
		// Trusted clusters keep their preferred row.
		for o, c := range clusters {
			if !c.trusted {
				continue
			}
			name := fmt.Sprintf("owner%d", o)
			if !cleaned.Contains(Tuple{Name(name), Int(c.vals[0])}) {
				t.Fatalf("iter %d: cleaning dropped the trusted row of %s", iter, name)
			}
		}
	}
}

// TestIntegrationFamilyAgreementOnKeys: with a single key dependency,
// L-Rep and S-Rep coincide (Prop. 3) — verified through the facade.
func TestIntegrationFamilyAgreementOnKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	for iter := 0; iter < 10; iter++ {
		db := New()
		r, _ := db.CreateRelation("R", IntAttr("K"), IntAttr("V"))
		if err := r.AddFD("K -> V"); err != nil {
			t.Fatal(err)
		}
		var ids []TupleID
		for i := 0; i < 8; i++ {
			ids = append(ids, r.MustInsert(rng.Intn(3), rng.Intn(4)))
		}
		// Random preferences.
		for trial := 0; trial < 5; trial++ {
			x, y := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			_ = r.Prefer(x, y) // non-conflicting pairs are ignored; cycles error later
		}
		l, err1 := db.CountRepairs(Local, "R")
		s, err2 := db.CountRepairs(SemiGlobal, "R")
		if err1 != nil || err2 != nil {
			// A preference cycle was recorded; acceptable, retry.
			continue
		}
		if l != s {
			t.Fatalf("iter %d: |L|=%d |S|=%d on a key dependency", iter, l, s)
		}
	}
}
