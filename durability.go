package prefcqa

import (
	"fmt"
	"time"

	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
	"prefcqa/internal/wal"
)

// SyncPolicy selects the durability barrier of a durable DB: how much
// must be on disk before a mutation call returns.
type SyncPolicy = wal.SyncPolicy

// The durability policies (see WithSyncPolicy).
const (
	// SyncAlways fsyncs before acknowledging every mutation;
	// concurrent writers share fsyncs (group commit). An acknowledged
	// write survives SIGKILL and power loss.
	SyncAlways = wal.SyncAlways
	// SyncGroup acknowledges once the record reaches the OS and fsyncs
	// on a bounded background interval: a power failure loses at most
	// the last interval, process death loses nothing.
	SyncGroup = wal.SyncGroup
	// SyncNever never fsyncs while serving (a clean Close still does).
	SyncNever = wal.SyncNever
)

// ParseSyncPolicy parses "always", "group" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// WithSyncPolicy sets the durability barrier of a DB opened with Open
// (default SyncAlways). Ignored by New.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(db *DB) { db.walOpts.Policy = p }
}

// WithFlushInterval bounds how long a SyncGroup write may sit
// unsynced (default 2ms). Ignored by New.
func WithFlushInterval(d time.Duration) Option {
	return func(db *DB) { db.walOpts.FlushInterval = d }
}

// WithCheckpointBytes sets the log growth after which a mutation
// triggers an automatic compacting checkpoint (default 8 MiB;
// negative disables automatic checkpoints). Ignored by New.
func WithCheckpointBytes(n int64) Option {
	return func(db *DB) { db.walOpts.CheckpointBytes = n }
}

// Open opens a durable database rooted at dir, creating the directory
// on first use. Every mutation is written ahead to an append-only,
// CRC-framed log and acknowledged under the configured SyncPolicy;
// periodic checkpoints compact the log. Reopening the directory
// recovers the database: the newest checkpoint is loaded, the log
// tail is replayed (a torn final record — a crash mid-append — is
// truncated; any other corruption is a loud error), and the recovered
// write-version is republished so version-pinned reads survive the
// restart.
//
// A recovered database is bit-for-bit equivalent to the acknowledged
// history: same tuple IDs, same instance versions, same preferences,
// same answers under every repair family.
func Open(dir string, opts ...Option) (*DB, error) {
	db := New(opts...)
	log, ckpt, tail, err := wal.Open(dir, db.walOpts)
	if err != nil {
		return nil, err
	}
	if ckpt != nil {
		if err := db.loadCheckpoint(ckpt); err != nil {
			log.Close()
			return nil, fmt.Errorf("prefcqa: recovering %s: checkpoint: %w", dir, err)
		}
	}
	for _, rec := range tail {
		if err := db.applyRecord(rec); err != nil {
			log.Close()
			return nil, fmt.Errorf("prefcqa: recovering %s: record %d: %w", dir, rec.Seq, err)
		}
	}
	db.ver.Store(log.Seq())
	db.log = log
	return db, nil
}

// Durable reports whether the database is backed by a write-ahead log
// (created with Open rather than New).
func (db *DB) Durable() bool { return db.log != nil }

// WriteVersion returns the database's current write-version: a
// monotone counter bumped exactly once per applied mutation batch. On
// a durable DB it equals the sequence of the last logged record, so
// it survives restart — a reader holding a version from before a
// crash can still demand at-least-that-new data after recovery.
func (db *DB) WriteVersion() uint64 {
	if db.log != nil {
		return db.log.Seq()
	}
	return db.ver.Load()
}

// Close flushes and closes the write-ahead log after waiting for
// in-flight mutations to finish. Reads remain possible; further
// mutations fail. On a non-durable DB it is a no-op.
func (db *DB) Close() error {
	if db.log == nil {
		return nil
	}
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	return db.log.Close()
}

// Checkpoint writes a compacted snapshot of the whole database to the
// log directory and truncates the log. It runs under the snapshot
// gate, so it waits for in-flight mutations and captures one
// consistent cut; recovery afterwards loads the checkpoint instead of
// replaying history. Mutations trigger checkpoints automatically once
// the log outgrows WithCheckpointBytes; call Checkpoint directly to
// force one (e.g. before a backup).
func (db *DB) Checkpoint() error {
	if db.log == nil {
		return fmt.Errorf("prefcqa: Checkpoint on a non-durable database")
	}
	db.snapMu.Lock()
	defer db.snapMu.Unlock()
	return db.log.WriteCheckpoint(db.captureCheckpointLocked())
}

// checkpointRelation captures one relation's writer-side state.
// Caller holds db.snapMu and r.mu. Every tuple is stored in ID order,
// tombstoned ones included: the TupleID universe must survive the
// checkpoint bit-for-bit, because tail records and recorded
// preferences address tuples by ID.
func checkpointRelation(name string, r *Relation) wal.CheckpointRelation {
	cr := wal.CheckpointRelation{
		Name:  name,
		Attrs: wireAttrs(r.inst.Schema()),
		Rows:  make([][]string, r.inst.NumIDs()),
		Prefs: append([][2]TupleID(nil), r.prefs...),
	}
	for id := 0; id < r.inst.NumIDs(); id++ {
		cr.Rows[id] = encodeRow(r.inst.Tuple(id))
		if !r.inst.Live(id) {
			cr.Dead = append(cr.Dead, id)
		}
	}
	for _, f := range r.fds.All() {
		cr.FDs = append(cr.FDs, f.String())
	}
	return cr
}

// logAppend assigns the mutation its write-version: on a durable DB
// it appends the record (built lazily — mk runs only when a log is
// attached) and returns its sequence; in memory it just bumps the
// version counter. Callers hold the relation lock (and the snapshot
// gate), so log order matches apply order. Call commit with the
// returned sequence after releasing the locks.
func (db *DB) logAppend(mk func() wal.Record) (uint64, error) {
	if db.readOnly.Load() {
		return 0, ErrReadOnly
	}
	if db.log == nil {
		return db.ver.Add(1), nil
	}
	return db.log.Append(mk())
}

// commit applies the durability barrier for a mutation logged at seq
// (0 = nothing was logged) and, when the log has outgrown its
// checkpoint threshold, compacts it. Must be called after the
// mutation's locks are released: the barrier may block on an fsync
// and the checkpoint needs the snapshot gate.
func (db *DB) commit(seq uint64) error {
	if db.log == nil || seq == 0 {
		return nil
	}
	if err := db.log.Sync(seq); err != nil {
		return err
	}
	if db.log.NeedCheckpoint() && db.ckptBusy.CompareAndSwap(false, true) {
		defer db.ckptBusy.Store(false)
		// Best effort: a failed automatic checkpoint surfaces on the
		// next mutation through the log's sticky error.
		db.Checkpoint() //nolint:errcheck
	}
	return nil
}

// --- recovery ---------------------------------------------------------

// loadCheckpoint rebuilds every relation from a checkpoint. Strict:
// any mismatch between the declared and reproduced state (a row that
// replays to the wrong ID, an unknown kind, an undeclared dead ID) is
// a loud error — a checkpoint that cannot be reproduced exactly must
// never be served.
func (db *DB) loadCheckpoint(c *wal.Checkpoint) error {
	for _, cr := range c.Relations {
		r, err := db.replayCreate(cr.Name, cr.Attrs, cr.Rows, cr.Dead)
		if err != nil {
			return fmt.Errorf("relation %s: %w", cr.Name, err)
		}
		for _, spec := range cr.FDs {
			if err := r.replayFD(spec); err != nil {
				return fmt.Errorf("relation %s: %w", cr.Name, err)
			}
		}
		// Checkpoint preferences are the recorded history: pairs may
		// reference tombstoned tuples (they are pruned lazily), so
		// liveness is not required — only freshness.
		if err := r.replayPrefs(cr.Prefs, false); err != nil {
			return fmt.Errorf("relation %s: %w", cr.Name, err)
		}
	}
	return nil
}

// applyRecord replays one log record. Strict where the public API is
// lenient: the log only holds records for mutations that actually
// applied, so a duplicate insert, a dead delete or a duplicate
// preference during replay means the log does not match the state it
// claims to rebuild — fail loudly rather than serve silently wrong
// answers.
func (db *DB) applyRecord(rec wal.Record) error {
	switch rec.Op {
	case wal.OpCreate:
		_, err := db.replayCreate(rec.Rel, rec.Attrs, rec.Rows, rec.IDs)
		return err
	case wal.OpFD:
		r, err := db.replayRel(rec.Rel)
		if err != nil {
			return err
		}
		return r.replayFD(rec.FD)
	case wal.OpInsert:
		r, err := db.replayRel(rec.Rel)
		if err != nil {
			return err
		}
		return r.replayInserts(rec.Rows)
	case wal.OpDelete:
		r, err := db.replayRel(rec.Rel)
		if err != nil {
			return err
		}
		return r.replayDeletes(rec.IDs)
	case wal.OpPrefer:
		r, err := db.replayRel(rec.Rel)
		if err != nil {
			return err
		}
		return r.replayPrefs(rec.Pairs, true)
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
}

func (db *DB) replayRel(name string) (*Relation, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("unknown relation %q", name)
	}
	return r, nil
}

// replayCreate registers a relation and reloads its tuple universe:
// every row is inserted in ID order, with tombstoned IDs deleted
// immediately after insertion so set-semantics deduplication — which
// only considers live tuples — reproduces the exact original IDs.
func (db *DB) replayCreate(name string, wattrs []relation.WireAttr, rows [][]string, dead []int) (*Relation, error) {
	if _, dup := db.rels[name]; dup {
		return nil, fmt.Errorf("relation already exists")
	}
	attrs, err := parseWireAttrs(wattrs)
	if err != nil {
		return nil, err
	}
	schema, err := relation.NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	fds, err := fd.NewSet(schema)
	if err != nil {
		return nil, err
	}
	deadSet := make(map[int]bool, len(dead))
	for _, id := range dead {
		if id < 0 || id >= len(rows) || deadSet[id] {
			return nil, fmt.Errorf("dead ID %d out of range or duplicated", id)
		}
		deadSet[id] = true
	}
	inst := relation.NewInstance(schema)
	for i, cells := range rows {
		tup, err := decodeRow(schema, cells)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		id, fresh, err := inst.Insert(tup)
		if err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
		if !fresh || id != i {
			return nil, fmt.Errorf("row %d replayed to ID %d (fresh=%v): duplicate row", i, id, fresh)
		}
		if deadSet[i] {
			inst.Delete(i)
		}
	}
	r := db.newRelation(name, inst, fds)
	db.rels[name] = r
	db.order = append(db.order, name)
	return r, nil
}

func (r *Relation) replayFD(spec string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, err := fd.Parse(r.inst.Schema(), spec)
	if err != nil {
		return err
	}
	nfds, err := fd.NewSet(r.inst.Schema(), append(r.fds.All(), f)...)
	if err != nil {
		return err
	}
	r.fds = nfds
	r.pend.rebuild = true
	r.dirty.Store(true)
	return nil
}

// replayInserts and replayDeletes serve two callers: crash recovery
// (no published version exists yet, so beginMutate and the pending
// delta are no-ops) and live replication on a follower, where readers
// hold published versions that must stay immutable — hence the same
// fork-and-track discipline as the public mutation paths.
func (r *Relation) replayInserts(rows [][]string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.beginMutate()
	for i, cells := range rows {
		tup, err := decodeRow(r.inst.Schema(), cells)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		id, fresh, err := r.inst.Insert(tup)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		if !fresh {
			return fmt.Errorf("row %d replayed as a duplicate of tuple %d", i, id)
		}
		if r.cur.Load() != nil {
			r.pend.inserts = append(r.pend.inserts, id)
		}
	}
	r.dirty.Store(true)
	return nil
}

func (r *Relation) replayDeletes(ids []int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.beginMutate()
	for _, id := range ids {
		if !r.inst.Live(id) {
			return fmt.Errorf("delete of non-live tuple %d", id)
		}
		r.inst.Delete(id)
		if r.cur.Load() != nil {
			r.pend.deletes = append(r.pend.deletes, id)
		}
	}
	r.dirty.Store(true)
	return nil
}

func (r *Relation) replayPrefs(pairs [][2]TupleID, requireLive bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range pairs {
		if requireLive && (!r.inst.Live(p[0]) || !r.inst.Live(p[1])) {
			return fmt.Errorf("preference (%d, %d) on non-live tuples", p[0], p[1])
		}
		if r.prefSeen[p] {
			return fmt.Errorf("duplicate preference (%d, %d)", p[0], p[1])
		}
		r.preferLocked(p[0], p[1])
	}
	return nil
}

// --- wire helpers -----------------------------------------------------

func encodeRow(t Tuple) []string {
	cells := make([]string, len(t))
	for i, v := range t {
		cells[i] = relation.EncodeValue(v)
	}
	return cells
}

func decodeRow(schema *Schema, cells []string) (Tuple, error) {
	if len(cells) != schema.Arity() {
		return nil, fmt.Errorf("%d cells for arity-%d schema", len(cells), schema.Arity())
	}
	tup := make(Tuple, len(cells))
	for i, cell := range cells {
		v, err := relation.DecodeValue(schema.Attr(i).Kind, cell)
		if err != nil {
			return nil, err
		}
		tup[i] = v
	}
	return tup, nil
}

func wireAttrs(schema *Schema) []relation.WireAttr {
	attrs := schema.Attrs()
	out := make([]relation.WireAttr, len(attrs))
	for i, a := range attrs {
		out[i] = relation.WireAttr{Name: a.Name, Kind: a.Kind.String()}
	}
	return out
}

func parseWireAttrs(wattrs []relation.WireAttr) ([]Attribute, error) {
	out := make([]Attribute, len(wattrs))
	for i, w := range wattrs {
		k, err := relation.ParseKind(w.Kind)
		if err != nil {
			return nil, err
		}
		out[i] = Attribute{Name: w.Name, Kind: k}
	}
	return out, nil
}
