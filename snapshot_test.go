package prefcqa

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotPinsVersion verifies snapshot isolation: results read
// through a snapshot are unaffected by any amount of later mutation.
func TestSnapshotPinsVersion(t *testing.T) {
	db, r := newMutDB(t)
	a := r.MustInsert(1, 0)
	b := r.MustInsert(1, 1)
	if err := r.Prefer(a, b); err != nil {
		t.Fatal(err)
	}
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	wantCount, err := snap.CountRepairs(Global, "R")
	if err != nil {
		t.Fatal(err)
	}
	if wantCount != 1 {
		t.Fatalf("G-Rep count = %d, want 1", wantCount)
	}
	wantAns, err := snap.Query(Global, "R(1, 0)")
	if err != nil {
		t.Fatal(err)
	}
	wantVer := snap.Versions()["R"]

	// Mutate heavily: delete both pinned tuples, add new conflicts.
	r.Delete(a)
	r.Delete(b)
	for i := 0; i < 50; i++ {
		r.MustInsert(int64(10+i/2), int64(i%2))
	}
	if _, err := db.Query(Rep, "R(1, 0)"); err != nil {
		t.Fatal(err)
	}

	// The snapshot still answers from its pinned version.
	gotCount, err := snap.CountRepairs(Global, "R")
	if err != nil {
		t.Fatal(err)
	}
	gotAns, err := snap.Query(Global, "R(1, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if gotCount != wantCount || gotAns != wantAns {
		t.Fatalf("snapshot drifted: count %d→%d, answer %v→%v", wantCount, gotCount, wantAns, gotAns)
	}
	if got := snap.Versions()["R"]; got != wantVer {
		t.Fatalf("snapshot version drifted: %d → %d", wantVer, got)
	}
	inst, ok := snap.Instance("R")
	if !ok || !inst.Live(a) || !inst.Live(b) {
		t.Fatal("snapshot instance lost its pinned tuples")
	}
	// The live DB, by contrast, has moved on.
	liveAns, err := db.Query(Global, "R(1, 0)")
	if err != nil {
		t.Fatal(err)
	}
	if liveAns != False {
		t.Fatalf("live DB still answers %v for a deleted tuple", liveAns)
	}
}

// TestConcurrentQueriesAndMutations is the -race exercise for the
// snapshot-isolated mutation model: one writer streams point
// mutations while reader goroutines continuously query the live DB
// and pinned snapshots. Correctness of individual answers is covered
// by the property tests; this test asserts freedom from data races
// and that every read observes an internally consistent version
// (counts from a snapshot never change).
func TestConcurrentQueriesAndMutations(t *testing.T) {
	db, r := newMutDB(t)
	for i := 0; i < 40; i++ {
		r.MustInsert(int64(i/2), int64(i%2))
	}
	if _, err := db.Query(Rep, "R(0, 0)"); err != nil {
		t.Fatal(err) // publish the first version before racing
	}

	const (
		readers   = 4
		mutations = 300
		reads     = 150
	)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer stop.Store(true)
		nextKey := int64(1000)
		for i := 0; i < mutations; i++ {
			switch i % 3 {
			case 0:
				r.MustInsert(nextKey, 0)
				r.MustInsert(nextKey, 1)
				nextKey++
			case 1:
				inst := r.Instance()
				// Delete the smallest live tuple.
				if ids := inst.AllIDs(); !ids.Empty() {
					r.Delete(ids.Min())
				}
			default:
				g, err := r.Graph()
				if err != nil {
					errs <- err
					return
				}
				if es := g.Edges(); len(es) > 0 {
					e := es[i%len(es)]
					// Smaller ID dominates: acyclic by construction.
					if err := r.Prefer(e.A, e.B); err != nil {
						errs <- err
						return
					}
				}
			}
		}
	}()

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < reads && !stop.Load(); i++ {
				if i%4 == 0 {
					snap, err := db.Snapshot()
					if err != nil {
						errs <- fmt.Errorf("reader %d: snapshot: %w", w, err)
						return
					}
					c1, err := snap.CountRepairs(Local, "R")
					if err != nil {
						errs <- err
						return
					}
					if _, err := snap.Query(Global, "R(0, 0)"); err != nil {
						errs <- err
						return
					}
					// Quantified: the component-pruned vectorized
					// verification must be race-free on snapshots too.
					if _, err := snap.Query(Global, "EXISTS v . R(0, v) AND v >= 0"); err != nil {
						errs <- err
						return
					}
					c2, err := snap.CountRepairs(Local, "R")
					if err != nil {
						errs <- err
						return
					}
					if c1 != c2 {
						errs <- fmt.Errorf("reader %d: snapshot count moved %d → %d", w, c1, c2)
						return
					}
				} else {
					if _, err := db.Query(Rep, "R(0, 1)"); err != nil {
						errs <- fmt.Errorf("reader %d: query: %w", w, err)
						return
					}
					if _, err := db.CountRepairs(Common, "R"); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
