package priority

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// graphFromSeed builds a deterministic random conflict graph from a
// seed, for quick-check properties.
func graphFromSeed(seed int64, n int) *conflict.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(4), rng.Intn(4))
	}
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
}

// Property: FromRanks is acyclic and orients exactly the edges whose
// endpoints have different ranks.
func TestQuickFromRanksOrientation(t *testing.T) {
	f := func(seed int64, rankSeed int64) bool {
		g := graphFromSeed(seed, 8)
		rrng := rand.New(rand.NewSource(rankSeed))
		ranks := make([]int, g.Len())
		for i := range ranks {
			ranks[i] = rrng.Intn(3)
		}
		p := FromRanks(g, func(t relation.TupleID) int { return ranks[t] })
		for _, e := range g.Edges() {
			oriented := p.Oriented(e.A, e.B)
			if (ranks[e.A] != ranks[e.B]) != oriented {
				return false
			}
			if oriented {
				winner := e.A
				if ranks[e.B] < ranks[e.A] {
					winner = e.B
				}
				loser := e.A + e.B - winner
				if !p.Dominates(winner, loser) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the winnow of a nonempty set under an acyclic priority is
// nonempty, contained in the set, and contains every ≻-maximal
// element of the set.
func TestQuickWinnowProperties(t *testing.T) {
	f := func(seed int64, density float64, subsetSeed int64) bool {
		if density < 0 {
			density = -density
		}
		for density > 1 {
			density /= 2
		}
		g := graphFromSeed(seed, 8)
		prng := rand.New(rand.NewSource(seed + 1))
		p := Random(g, density, prng)
		srng := rand.New(rand.NewSource(subsetSeed))
		rest := bitset.New(g.Len())
		for v := 0; v < g.Len(); v++ {
			if srng.Intn(2) == 0 {
				rest.Add(v)
			}
		}
		if rest.Empty() {
			rest.Add(0)
		}
		w := p.Winnow(rest)
		if !w.SubsetOf(rest) {
			return false
		}
		if w.Empty() {
			return false // acyclicity guarantees a maximal element
		}
		// Every member of w is undominated within rest.
		ok := true
		w.Range(func(x int) bool {
			for _, d := range p.Dominators(x) {
				if rest.Has(int(d)) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: TotalExtension extends, totalizes, and preserves
// acyclicity for arbitrary base densities.
func TestQuickTotalExtension(t *testing.T) {
	f := func(seed int64, density float64) bool {
		if density < 0 {
			density = -density
		}
		for density > 1 {
			density /= 2
		}
		g := graphFromSeed(seed, 8)
		rng := rand.New(rand.NewSource(seed + 7))
		p := Random(g, density, rng)
		q := p.TotalExtension(rng)
		if !q.IsTotal() || !q.Extends(p) {
			return false
		}
		// Acyclic: no vertex reaches itself via a successor.
		for v := 0; v < g.Len(); v++ {
			cyclic := false
			for _, w := range q.Dominated(v) {
				if q.reaches(int(w), v) {
					cyclic = true
					break
				}
			}
			if cyclic {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
