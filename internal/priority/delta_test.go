package priority

import (
	"fmt"
	"math/rand"
	"testing"

	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// prioritiesEqual compares two priorities edge-for-edge.
func prioritiesEqual(p, q *Priority) bool {
	if p.Len() != q.Len() {
		return false
	}
	return fmt.Sprint(p.Edges()) == fmt.Sprint(q.Edges())
}

// TestDeltaMatchesRegeneration drives random interleavings of tuple
// inserts/deletes and preference additions through the incremental
// path (Rebase + DropVertex + Add) and checks after every step that
// the result matches priority.FromRelation regenerated on a freshly
// built graph.
func TestDeltaMatchesRegeneration(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := relation.NewInstance(schema)
		fds := fd.MustParseSet(schema, "A -> B")
		for i := 0; i < 10; i++ {
			inst.MustInsert(rng.Intn(4), rng.Intn(4))
		}
		g := conflict.MustBuild(inst, fds)
		p := New(g)
		var pairs [][2]relation.TupleID // accepted preference history

		for step := 0; step < 50; step++ {
			switch rng.Intn(4) {
			case 0: // insert
				inst = inst.Fork()
				before := inst.NumIDs()
				id, _ := inst.InsertValues(rng.Intn(4), rng.Intn(4))
				var d conflict.Delta
				if inst.NumIDs() > before {
					d.Inserts = append(d.Inserts, id)
				}
				ng, _, err := g.ApplyDelta(inst, d)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				g, p = ng, p.Rebase(ng)
			case 1: // delete
				if inst.Len() == 0 {
					continue
				}
				live := inst.AllIDs().Slice()
				v := live[rng.Intn(len(live))]
				inst = inst.Fork()
				inst.Delete(v)
				ng, _, err := g.ApplyDelta(inst, conflict.Delta{Deletes: []int{v}})
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				g, p = ng, p.Rebase(ng)
				p.DropVertex(v)
				// Drop the historical pairs touching v so regeneration
				// sees the same inputs the incremental path keeps.
				kept := pairs[:0]
				for _, pr := range pairs {
					if pr[0] != v && pr[1] != v {
						kept = append(kept, pr)
					}
				}
				pairs = kept
			default: // prefer a random conflicting pair
				es := g.Edges()
				if len(es) == 0 {
					continue
				}
				e := es[rng.Intn(len(es))]
				x, y := e.A, e.B
				if rng.Intn(2) == 0 {
					x, y = y, x
				}
				if p.Oriented(x, y) {
					continue
				}
				q := p.Rebase(g) // apply on a fork, as the facade does
				if err := q.Add(x, y); err != nil {
					continue // would create a cycle: rejected on both paths
				}
				p = q
				pairs = append(pairs, [2]relation.TupleID{x, y})
			}
			// Reference: regenerate from scratch on a fresh graph.
			h := conflict.MustBuild(inst, fds)
			ref, err := FromRelation(h, pairs)
			if err != nil {
				t.Fatalf("seed %d step %d: FromRelation: %v", seed, step, err)
			}
			if !prioritiesEqual(p, ref) {
				t.Fatalf("seed %d step %d: incremental %v != regenerated %v", seed, step, p.Edges(), ref.Edges())
			}
			// Winnow over the live set must agree too (exercises preds
			// through the overlay).
			if got, want := p.Winnow(g.LiveSet()).String(), ref.Winnow(h.LiveSet()).String(); got != want {
				t.Fatalf("seed %d step %d: winnow %s != %s", seed, step, got, want)
			}
		}
	}
}

// TestRebaseIsolation checks that Add/DropVertex on a rebased child
// leave the parent untouched.
func TestRebaseIsolation(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	a := inst.MustInsert(1, 0)
	b := inst.MustInsert(1, 1)
	c := inst.MustInsert(1, 2)
	g := conflict.MustBuild(inst, fds)
	p := New(g)
	p.MustAdd(a, b)

	q := p.Rebase(g)
	q.MustAdd(b, c)
	q.DropVertex(a)

	if p.Len() != 1 || !p.Dominates(a, b) || p.Dominates(b, c) {
		t.Fatalf("parent mutated: %v", p.Edges())
	}
	if q.Len() != 1 || q.Dominates(a, b) || !q.Dominates(b, c) {
		t.Fatalf("child wrong: %v", q.Edges())
	}
}

// TestRebasedCycleDetection makes sure the component-bounded cycle
// check still works through the overlay rows.
func TestRebasedCycleDetection(t *testing.T) {
	sc := chain3(t)
	p := sc.p.Rebase(sc.g)
	p.MustAdd(0, 1)
	p = p.Rebase(sc.g)
	p.MustAdd(1, 2)
	p = p.Rebase(sc.g)
	if err := p.Add(2, 0); err == nil {
		t.Fatal("cycle 0>1>2>0 not detected through overlay rows")
	}
}

type chainScenario struct {
	g *conflict.Graph
	p *Priority
}

// chain3 builds a 3-cycle-capable conflict triangle (one key group,
// three values).
func chain3(t *testing.T) chainScenario {
	t.Helper()
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	inst.MustInsert(1, 0)
	inst.MustInsert(1, 1)
	inst.MustInsert(1, 2)
	g := conflict.MustBuild(inst, fds)
	return chainScenario{g: g, p: New(g)}
}
