// Package priority implements the preference input of the paper
// (§2.2): a priority ≻ is an acyclic binary relation defined only on
// conflicting tuples — equivalently, an acyclic orientation of part of
// the conflict graph. The package provides incremental acyclicity
// checking, the extension order on priorities, total extensions, the
// winnow operator ω≻ used by Algorithm 1, and priority generators for
// the motivating scenarios (source reliability, timestamps, ranking).
//
// Because ≻ only orients conflict edges, each tuple's successor and
// predecessor lists are bounded by its conflict degree: the relation
// is stored as per-vertex sorted slices, O(n + m) memory in total,
// mirroring the conflict graph's CSR representation.
//
// Priorities participate in the delta-maintenance version model of
// the conflict package: Rebase forks a priority onto a new graph
// version as a copy-on-write child (base rows shared, touched rows in
// a small overlay), so point mutations — DropVertex on a delete, Add
// on a new preference — cost O(touched rows) instead of regenerating
// the priority from scratch.
package priority

import (
	"fmt"
	"math/rand"
	"sort"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/relation"
)

// Priority is an acyclic orientation of a subset of the conflict
// edges. x ≻ y ("x dominates y") means the user prefers to resolve
// the conflict {x, y} by keeping x.
type Priority struct {
	g *conflict.Graph
	// Base rows: succ[x] = {y : x ≻ y}, pred[y] = {x : x ≻ y}, sorted
	// ascending. On a copy-on-write child (cow == true) the base is
	// shared with the parent and must not be written; over holds this
	// version's replacement rows, including rows of vertices beyond
	// the base arrays (post-fork inserts).
	succ [][]int32
	pred [][]int32
	over map[int32]prow
	cow  bool
	n    int // number of oriented edges
}

// prow is one vertex's replacement successor/predecessor rows. Either
// slice may be shared with the base or with an earlier version; rows
// are never mutated in place, only replaced by fresh copies.
type prow struct {
	succ, pred []int32
}

// New returns the empty priority over the graph (no edge oriented).
func New(g *conflict.Graph) *Priority {
	n := g.Len()
	return &Priority{g: g, succ: make([][]int32, n), pred: make([][]int32, n)}
}

// Graph returns the conflict graph the priority orients.
func (p *Priority) Graph() *conflict.Graph { return p.g }

// Len returns the number of oriented conflict edges.
func (p *Priority) Len() int { return p.n }

// row resolves a vertex's successor/predecessor rows through the
// overlay.
func (p *Priority) row(v relation.TupleID) prow {
	if p.over != nil {
		if r, ok := p.over[int32(v)]; ok {
			return r
		}
	}
	if v >= 0 && v < len(p.succ) {
		return prow{succ: p.succ[v], pred: p.pred[v]}
	}
	return prow{}
}

// succs returns {y : v ≻ y} as a sorted read-only view.
func (p *Priority) succs(v relation.TupleID) []int32 { return p.row(v).succ }

// preds returns {x : x ≻ v} as a sorted read-only view.
func (p *Priority) preds(v relation.TupleID) []int32 { return p.row(v).pred }

// Rebase forks p onto a (newer) graph version as a copy-on-write
// child: base rows are shared, the overlay is copied, and subsequent
// Add/DropVertex calls patch only the touched rows. The receiver is
// left untouched and remains the consistent view of the old version.
// Once the overlay outgrows its bound, the fork instead flattens into
// fresh private base arrays (O(n), amortized O(1) per mutation), so a
// long mutation stream never pays more than the bound per fork.
func (p *Priority) Rebase(g *conflict.Graph) *Priority {
	if len(p.over) > 64+g.Len()/64 {
		return p.flatten(g)
	}
	q := &Priority{g: g, succ: p.succ, pred: p.pred, cow: true, n: p.n}
	q.over = make(map[int32]prow, len(p.over)+4)
	for k, v := range p.over {
		q.over[k] = v
	}
	return q
}

// flatten materializes the overlay into fresh base arrays sized for
// the (possibly larger) new graph. The result owns its rows, so it
// runs in non-cow mode until it is itself rebased.
func (p *Priority) flatten(g *conflict.Graph) *Priority {
	n := g.Len()
	q := &Priority{g: g, succ: make([][]int32, n), pred: make([][]int32, n), n: p.n}
	for v := 0; v < n; v++ {
		r := p.row(v)
		if len(r.succ) > 0 {
			q.succ[v] = append([]int32(nil), r.succ...)
		}
		if len(r.pred) > 0 {
			q.pred[v] = append([]int32(nil), r.pred...)
		}
	}
	return q
}

// contains reports membership of v in the sorted slice s.
func contains(s []int32, v int32) bool {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	return i < len(s) && s[i] == v
}

// insert adds v to the sorted slice s in place, keeping order. Only
// used on rows this version exclusively owns (non-cow mode).
func insert(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// insertCopy returns a fresh sorted slice = s ∪ {v}.
func insertCopy(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	out := make([]int32, len(s)+1)
	copy(out, s[:i])
	out[i] = v
	copy(out[i+1:], s[i:])
	return out
}

// removeCopy returns a fresh sorted slice = s \ {v}.
func removeCopy(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	if i >= len(s) || s[i] != v {
		return s
	}
	out := make([]int32, len(s)-1)
	copy(out, s[:i])
	copy(out[i:], s[i+1:])
	return out
}

// addEdge records x ≻ y without any validity checking.
func (p *Priority) addEdge(x, y relation.TupleID) {
	if p.cow {
		rx := p.row(x)
		p.over[int32(x)] = prow{succ: insertCopy(rx.succ, int32(y)), pred: rx.pred}
		ry := p.row(y)
		p.over[int32(y)] = prow{succ: ry.succ, pred: insertCopy(ry.pred, int32(x))}
	} else {
		p.succ[x] = insert(p.succ[x], int32(y))
		p.pred[y] = insert(p.pred[y], int32(x))
	}
	p.n++
}

// removeEdge erases x ≻ y (which must be present).
func (p *Priority) removeEdge(x, y relation.TupleID) {
	if p.cow {
		rx := p.row(x)
		p.over[int32(x)] = prow{succ: removeCopy(rx.succ, int32(y)), pred: rx.pred}
		ry := p.row(y)
		p.over[int32(y)] = prow{succ: ry.succ, pred: removeCopy(ry.pred, int32(x))}
	} else {
		p.succ[x] = remove(p.succ[x], int32(y))
		p.pred[y] = remove(p.pred[y], int32(x))
	}
	p.n--
}

// remove deletes v from the sorted slice s in place.
func remove(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

// DropVertex erases every orientation incident to v — the priority
// half of deleting tuple v. Cost is O(Σ degree of the affected rows).
func (p *Priority) DropVertex(v relation.TupleID) {
	r := p.row(v)
	if len(r.succ) == 0 && len(r.pred) == 0 {
		return
	}
	if !p.cow {
		for _, y := range r.succ {
			p.pred[y] = remove(p.pred[y], int32(v))
		}
		for _, x := range r.pred {
			p.succ[x] = remove(p.succ[x], int32(v))
		}
		p.n -= len(r.succ) + len(r.pred)
		p.succ[v] = nil
		p.pred[v] = nil
		return
	}
	for _, y := range r.succ {
		ry := p.row(int(y))
		p.over[y] = prow{succ: ry.succ, pred: removeCopy(ry.pred, int32(v))}
	}
	for _, x := range r.pred {
		rx := p.row(int(x))
		p.over[x] = prow{succ: removeCopy(rx.succ, int32(v)), pred: rx.pred}
	}
	p.n -= len(r.succ) + len(r.pred)
	p.over[int32(v)] = prow{}
}

// Dominates reports whether x ≻ y.
func (p *Priority) Dominates(x, y relation.TupleID) bool {
	return x >= 0 && contains(p.succs(x), int32(y))
}

// Oriented reports whether the conflict {x, y} is oriented either way.
func (p *Priority) Oriented(x, y relation.TupleID) bool {
	return p.Dominates(x, y) || p.Dominates(y, x)
}

// Add orients the conflict {x, y} as x ≻ y. It fails if x and y do
// not conflict (Definition 2 restricts priorities to conflicting
// tuples), if the edge is already oriented the other way, or if the
// orientation would create a cycle in ≻. Re-adding an existing
// orientation is a no-op.
func (p *Priority) Add(x, y relation.TupleID) error {
	if x == y {
		return fmt.Errorf("priority: tuple %d cannot dominate itself", x)
	}
	if !p.g.Adjacent(x, y) {
		return fmt.Errorf("priority: tuples %d and %d do not conflict", x, y)
	}
	if p.Dominates(x, y) {
		return nil
	}
	if p.Dominates(y, x) {
		return fmt.Errorf("priority: conflict {%d,%d} already oriented %d ≻ %d", x, y, y, x)
	}
	if p.reaches(y, x) {
		return fmt.Errorf("priority: orienting %d ≻ %d would create a cycle", x, y)
	}
	p.addEdge(x, y)
	return nil
}

// MustAdd is Add that panics on error, for fixtures.
func (p *Priority) MustAdd(x, y relation.TupleID) {
	if err := p.Add(x, y); err != nil {
		panic(err)
	}
}

// reaches reports whether there is a ≻-path from x to y. Since ≻
// only orients conflict edges, any such path stays inside x's
// connected component: the search is bounded by the component size,
// with a component-local visited set, so bulk priority construction
// over a large instance costs near-linear total work instead of an
// O(n)-sized scan per inserted edge.
func (p *Priority) reaches(x, y relation.TupleID) bool {
	if x == y {
		return true
	}
	g := p.g
	comp := g.Component(g.ComponentOf(x))
	seen := make(bitset.Words, bitset.WordsLen(len(comp)))
	stack := []int32{int32(x)}
	seen.Add(g.LocalIndexOf(x))
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range p.succs(int(v)) {
			if int(w) == y {
				return true
			}
			li := g.LocalIndexOf(int(w))
			if !seen.Has(li) {
				seen.Add(li)
				stack = append(stack, w)
			}
		}
	}
	return false
}

// FromRelation builds a priority from an arbitrary acyclic binary
// relation on tuples by keeping only the pairs that conflict (§2.2
// notes the two approaches are equivalent). Pairs on non-conflicting
// tuples are silently dropped; an orientation conflict or a cycle
// among the kept pairs is an error.
func FromRelation(g *conflict.Graph, pairs [][2]relation.TupleID) (*Priority, error) {
	p := New(g)
	for _, pr := range pairs {
		if !g.Adjacent(pr[0], pr[1]) {
			continue
		}
		if err := p.Add(pr[0], pr[1]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Clone returns an independent, flat (non-cow) copy.
func (p *Priority) Clone() *Priority {
	n := p.g.Len()
	q := &Priority{g: p.g, succ: make([][]int32, n), pred: make([][]int32, n), n: p.n}
	for v := 0; v < n; v++ {
		r := p.row(v)
		if len(r.succ) > 0 {
			q.succ[v] = append([]int32(nil), r.succ...)
		}
		if len(r.pred) > 0 {
			q.pred[v] = append([]int32(nil), r.pred...)
		}
	}
	return q
}

// Extends reports whether p extends q: same graph and q's orientations
// are a subset of p's (≻q ⊆ ≻p).
func (p *Priority) Extends(q *Priority) bool {
	if p.g != q.g {
		return false
	}
	for x := 0; x < q.g.Len(); x++ {
		for _, y := range q.succs(x) {
			if !contains(p.succs(x), y) {
				return false
			}
		}
	}
	return true
}

// IsTotal reports whether every conflict edge is oriented — a total
// priority cannot be extended further.
func (p *Priority) IsTotal() bool {
	return p.n == p.g.NumEdges()
}

// Dominators returns {x : x ≻ t} as a sorted slice view. The caller
// must not mutate the result.
func (p *Priority) Dominators(t relation.TupleID) []int32 { return p.preds(t) }

// Dominated returns {y : t ≻ y} as a sorted slice view. The caller
// must not mutate the result.
func (p *Priority) Dominated(t relation.TupleID) []int32 { return p.succs(t) }

// Winnow computes ω≻ restricted to the sub-instance rest: the tuples
// of rest not dominated by any other tuple of rest [5].
func (p *Priority) Winnow(rest *bitset.Set) *bitset.Set {
	out := bitset.New(p.g.Len())
	rest.Range(func(t int) bool {
		if t < p.g.Len() && p.UndominatedIn(t, rest) {
			out.Add(t)
		}
		return true
	})
	return out
}

// UndominatedIn reports whether tuple t has no dominator inside rest.
func (p *Priority) UndominatedIn(t relation.TupleID, rest *bitset.Set) bool {
	for _, x := range p.preds(t) {
		if rest.Has(int(x)) {
			return false
		}
	}
	return true
}

// TotalExtension returns a total priority extending p. The remaining
// edges are oriented by a topological order of the current ≻ digraph
// (ties broken by rng if non-nil, else by tuple ID), which keeps the
// result acyclic. Every priority extends to a total one this way.
func (p *Priority) TotalExtension(rng *rand.Rand) *Priority {
	order := p.topoOrder(rng)
	rank := make([]int, len(order))
	for i, v := range order {
		rank[v] = i
	}
	q := p.Clone()
	for _, e := range p.g.Edges() {
		if q.Oriented(e.A, e.B) {
			continue
		}
		x, y := e.A, e.B
		if rank[x] > rank[y] {
			x, y = y, x
		}
		// rank[x] < rank[y]: orienting x ≻ y follows the linear order,
		// so no cycle can arise.
		q.addEdge(x, y)
	}
	return q
}

// topoOrder returns a topological order of the ≻ digraph (which is
// acyclic by construction), with tie-breaking randomized by rng when
// non-nil.
func (p *Priority) topoOrder(rng *rand.Rand) []int {
	n := p.g.Len()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(p.preds(v))
	}
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		i := 0
		if rng != nil {
			i = rng.Intn(len(ready))
		}
		v := ready[i]
		ready = append(ready[:i], ready[i+1:]...)
		order = append(order, v)
		for _, w := range p.succs(v) {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, int(w))
			}
		}
	}
	return order
}

// Edges returns the oriented pairs (x ≻ y) in deterministic
// (lexicographic) order.
func (p *Priority) Edges() [][2]relation.TupleID {
	out := make([][2]relation.TupleID, 0, p.n)
	for x := 0; x < p.g.Len(); x++ {
		for _, y := range p.succs(x) {
			out = append(out, [2]relation.TupleID{x, int(y)})
		}
	}
	return out
}

// String renders the oriented pairs as "{t0 > t1, t2 > t3}".
func (p *Priority) String() string {
	s := "{"
	for i, e := range p.Edges() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("t%d > t%d", e[0], e[1])
	}
	return s + "}"
}
