// Package priority implements the preference input of the paper
// (§2.2): a priority ≻ is an acyclic binary relation defined only on
// conflicting tuples — equivalently, an acyclic orientation of part of
// the conflict graph. The package provides incremental acyclicity
// checking, the extension order on priorities, total extensions, the
// winnow operator ω≻ used by Algorithm 1, and priority generators for
// the motivating scenarios (source reliability, timestamps, ranking).
package priority

import (
	"fmt"
	"math/rand"
	"sort"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/relation"
)

// Priority is an acyclic orientation of a subset of the conflict
// edges. x ≻ y ("x dominates y") means the user prefers to resolve
// the conflict {x, y} by keeping x.
type Priority struct {
	g    *conflict.Graph
	succ []*bitset.Set // succ[x] = {y : x ≻ y}
	pred []*bitset.Set // pred[y] = {x : x ≻ y}
	n    int           // number of oriented edges
}

// New returns the empty priority over the graph (no edge oriented).
func New(g *conflict.Graph) *Priority {
	n := g.Len()
	p := &Priority{g: g, succ: make([]*bitset.Set, n), pred: make([]*bitset.Set, n)}
	for i := 0; i < n; i++ {
		p.succ[i] = bitset.New(n)
		p.pred[i] = bitset.New(n)
	}
	return p
}

// Graph returns the conflict graph the priority orients.
func (p *Priority) Graph() *conflict.Graph { return p.g }

// Len returns the number of oriented conflict edges.
func (p *Priority) Len() int { return p.n }

// Dominates reports whether x ≻ y.
func (p *Priority) Dominates(x, y relation.TupleID) bool {
	return x >= 0 && x < len(p.succ) && p.succ[x].Has(y)
}

// Oriented reports whether the conflict {x, y} is oriented either way.
func (p *Priority) Oriented(x, y relation.TupleID) bool {
	return p.Dominates(x, y) || p.Dominates(y, x)
}

// Add orients the conflict {x, y} as x ≻ y. It fails if x and y do
// not conflict (Definition 2 restricts priorities to conflicting
// tuples), if the edge is already oriented the other way, or if the
// orientation would create a cycle in ≻. Re-adding an existing
// orientation is a no-op.
func (p *Priority) Add(x, y relation.TupleID) error {
	if x == y {
		return fmt.Errorf("priority: tuple %d cannot dominate itself", x)
	}
	if !p.g.Adjacent(x, y) {
		return fmt.Errorf("priority: tuples %d and %d do not conflict", x, y)
	}
	if p.succ[x].Has(y) {
		return nil
	}
	if p.succ[y].Has(x) {
		return fmt.Errorf("priority: conflict {%d,%d} already oriented %d ≻ %d", x, y, y, x)
	}
	if p.reaches(y, x) {
		return fmt.Errorf("priority: orienting %d ≻ %d would create a cycle", x, y)
	}
	p.succ[x].Add(y)
	p.pred[y].Add(x)
	p.n++
	return nil
}

// MustAdd is Add that panics on error, for fixtures.
func (p *Priority) MustAdd(x, y relation.TupleID) {
	if err := p.Add(x, y); err != nil {
		panic(err)
	}
}

// reaches reports whether there is a ≻-path from x to y.
func (p *Priority) reaches(x, y relation.TupleID) bool {
	if x == y {
		return true
	}
	seen := bitset.New(len(p.succ))
	stack := []int{x}
	seen.Add(x)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		found := false
		p.succ[v].Range(func(w int) bool {
			if w == y {
				found = true
				return false
			}
			if !seen.Has(w) {
				seen.Add(w)
				stack = append(stack, w)
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// FromRelation builds a priority from an arbitrary acyclic binary
// relation on tuples by keeping only the pairs that conflict (§2.2
// notes the two approaches are equivalent). Pairs on non-conflicting
// tuples are silently dropped; an orientation conflict or a cycle
// among the kept pairs is an error.
func FromRelation(g *conflict.Graph, pairs [][2]relation.TupleID) (*Priority, error) {
	p := New(g)
	for _, pr := range pairs {
		if !g.Adjacent(pr[0], pr[1]) {
			continue
		}
		if err := p.Add(pr[0], pr[1]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Clone returns an independent copy.
func (p *Priority) Clone() *Priority {
	q := &Priority{g: p.g, succ: make([]*bitset.Set, len(p.succ)), pred: make([]*bitset.Set, len(p.pred)), n: p.n}
	for i := range p.succ {
		q.succ[i] = p.succ[i].Clone()
		q.pred[i] = p.pred[i].Clone()
	}
	return q
}

// Extends reports whether p extends q: same graph and q's orientations
// are a subset of p's (≻q ⊆ ≻p).
func (p *Priority) Extends(q *Priority) bool {
	if p.g != q.g {
		return false
	}
	for x := range q.succ {
		if !q.succ[x].SubsetOf(p.succ[x]) {
			return false
		}
	}
	return true
}

// IsTotal reports whether every conflict edge is oriented — a total
// priority cannot be extended further.
func (p *Priority) IsTotal() bool {
	return p.n == p.g.NumEdges()
}

// Dominators returns {x : x ≻ t}. The caller must not mutate the
// result.
func (p *Priority) Dominators(t relation.TupleID) *bitset.Set { return p.pred[t] }

// Dominated returns {y : t ≻ y}. The caller must not mutate the
// result.
func (p *Priority) Dominated(t relation.TupleID) *bitset.Set { return p.succ[t] }

// Winnow computes ω≻ restricted to the sub-instance rest: the tuples
// of rest not dominated by any other tuple of rest [5].
func (p *Priority) Winnow(rest *bitset.Set) *bitset.Set {
	out := bitset.New(len(p.succ))
	rest.Range(func(t int) bool {
		if t < len(p.pred) && !p.pred[t].Intersects(rest) {
			out.Add(t)
		}
		return true
	})
	return out
}

// UndominatedIn reports whether tuple t has no dominator inside rest.
func (p *Priority) UndominatedIn(t relation.TupleID, rest *bitset.Set) bool {
	return !p.pred[t].Intersects(rest)
}

// TotalExtension returns a total priority extending p. The remaining
// edges are oriented by a topological order of the current ≻ digraph
// (ties broken by rng if non-nil, else by tuple ID), which keeps the
// result acyclic. Every priority extends to a total one this way.
func (p *Priority) TotalExtension(rng *rand.Rand) *Priority {
	order := p.topoOrder(rng)
	rank := make([]int, len(order))
	for i, v := range order {
		rank[v] = i
	}
	q := p.Clone()
	for _, e := range p.g.Edges() {
		if q.Oriented(e.A, e.B) {
			continue
		}
		x, y := e.A, e.B
		if rank[x] > rank[y] {
			x, y = y, x
		}
		// rank[x] < rank[y]: orienting x ≻ y follows the linear order,
		// so no cycle can arise.
		q.succ[x].Add(y)
		q.pred[y].Add(x)
		q.n++
	}
	return q
}

// topoOrder returns a topological order of the ≻ digraph (which is
// acyclic by construction), with tie-breaking randomized by rng when
// non-nil.
func (p *Priority) topoOrder(rng *rand.Rand) []int {
	n := len(p.succ)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = p.pred[v].Len()
	}
	ready := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		i := 0
		if rng != nil {
			i = rng.Intn(len(ready))
		}
		v := ready[i]
		ready = append(ready[:i], ready[i+1:]...)
		order = append(order, v)
		p.succ[v].Range(func(w int) bool {
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
			}
			return true
		})
	}
	return order
}

// Edges returns the oriented pairs (x ≻ y) in deterministic order.
func (p *Priority) Edges() [][2]relation.TupleID {
	var out [][2]relation.TupleID
	for x := range p.succ {
		p.succ[x].Range(func(y int) bool {
			out = append(out, [2]relation.TupleID{x, y})
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// String renders the oriented pairs as "{t0 > t1, t2 > t3}".
func (p *Priority) String() string {
	s := "{"
	for i, e := range p.Edges() {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("t%d > t%d", e[0], e[1])
	}
	return s + "}"
}
