package priority

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// triangle builds three mutually conflicting tuples (one key, three
// values): a clique of size 3.
func triangle(t *testing.T) *conflict.Graph {
	t.Helper()
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1) // t0
	inst.MustInsert(1, 2) // t1
	inst.MustInsert(1, 3) // t2
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
}

// path5 builds the Example 9 instance: a conflict path ta-tb-tc-td-te.
func path5(t *testing.T) *conflict.Graph {
	t.Helper()
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1, 0, 0) // ta = 0
	inst.MustInsert(1, 2, 1, 1) // tb = 1
	inst.MustInsert(2, 1, 1, 2) // tc = 2
	inst.MustInsert(2, 2, 2, 1) // td = 3
	inst.MustInsert(0, 0, 2, 2) // te = 4
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "C -> D"))
}

func TestPath5Shape(t *testing.T) {
	g := path5(t)
	if g.NumEdges() != 4 {
		t.Fatalf("Example 9 graph should be a path with 4 edges, got %d", g.NumEdges())
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		if !g.Adjacent(e[0], e[1]) {
			t.Fatalf("missing path edge %v", e)
		}
	}
}

func TestAddBasics(t *testing.T) {
	g := triangle(t)
	p := New(g)
	if err := p.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	if !p.Dominates(0, 1) || p.Dominates(1, 0) {
		t.Fatal("Dominates wrong after Add")
	}
	if !p.Oriented(0, 1) || !p.Oriented(1, 0) {
		t.Fatal("Oriented should be symmetric in its arguments")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	// Re-adding is a no-op.
	if err := p.Add(0, 1); err != nil || p.Len() != 1 {
		t.Fatal("re-add should be a no-op")
	}
	// Opposite direction is an error.
	if err := p.Add(1, 0); err == nil {
		t.Fatal("conflicting orientation should fail")
	}
}

func TestAddRejectsNonConflicting(t *testing.T) {
	g := path5(t)
	p := New(g)
	if err := p.Add(0, 2); err == nil {
		t.Fatal("ta and tc do not conflict; Add should fail")
	}
	if err := p.Add(0, 0); err == nil {
		t.Fatal("self-domination should fail")
	}
}

func TestAddRejectsCycles(t *testing.T) {
	g := triangle(t)
	p := New(g)
	p.MustAdd(0, 1)
	p.MustAdd(1, 2)
	if err := p.Add(2, 0); err == nil {
		t.Fatal("0 ≻ 1 ≻ 2 ≻ 0 is a cycle; Add must fail")
	}
	// The non-cyclic direction is fine.
	if err := p.Add(0, 2); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveCycleRejected(t *testing.T) {
	// Cycle through a longer ≻-path, not just a triangle.
	g := path5(t)
	p := New(g)
	p.MustAdd(0, 1)
	p.MustAdd(1, 2)
	p.MustAdd(2, 3)
	if err := p.Add(3, 4); err != nil {
		t.Fatal(err)
	}
	// No cycle possible on a path at all: 4 edges oriented, total.
	if !p.IsTotal() {
		t.Fatal("path with all edges oriented should be total")
	}
}

func TestFromRelationFiltersNonConflicting(t *testing.T) {
	g := path5(t)
	p, err := FromRelation(g, [][2]relation.TupleID{
		{0, 1}, // conflict edge: kept
		{0, 4}, // not a conflict: dropped (Def. 2 discussion)
		{2, 1}, // conflict edge: kept
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || !p.Dominates(0, 1) || !p.Dominates(2, 1) {
		t.Fatalf("FromRelation = %v", p)
	}
	// Cycle among kept pairs must error.
	if _, err := FromRelation(g, [][2]relation.TupleID{{0, 1}, {1, 0}}); err == nil {
		t.Fatal("contradictory orientations should fail")
	}
}

func TestExtends(t *testing.T) {
	g := triangle(t)
	p := New(g)
	p.MustAdd(0, 1)
	q := p.Clone()
	q.MustAdd(1, 2)
	if !q.Extends(p) {
		t.Fatal("q should extend p")
	}
	if p.Extends(q) {
		t.Fatal("p should not extend q")
	}
	if !p.Extends(p) {
		t.Fatal("Extends should be reflexive")
	}
	other := New(triangle(t))
	if other.Extends(p) {
		t.Fatal("priorities over different graphs are unrelated")
	}
}

func TestIsTotalAndTotalExtension(t *testing.T) {
	g := triangle(t)
	p := New(g)
	if p.IsTotal() {
		t.Fatal("empty priority on a triangle is not total")
	}
	q := p.TotalExtension(nil)
	if !q.IsTotal() {
		t.Fatal("TotalExtension should be total")
	}
	if !q.Extends(p) {
		t.Fatal("TotalExtension should extend the original")
	}
	// Must stay acyclic: verify no vertex reaches itself.
	for v := 0; v < g.Len(); v++ {
		if q.reaches(v, v) && q.Dominates(v, v) {
			t.Fatal("total extension has a self-loop")
		}
	}
	// Randomized extensions of a partial priority stay acyclic & total.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 50; i++ {
		p2 := New(g)
		p2.MustAdd(1, 0)
		q2 := p2.TotalExtension(rng)
		if !q2.IsTotal() || !q2.Extends(p2) {
			t.Fatal("randomized TotalExtension broken")
		}
		assertAcyclic(t, q2)
	}
}

func assertAcyclic(t *testing.T, p *Priority) {
	t.Helper()
	g := p.Graph()
	for v := 0; v < g.Len(); v++ {
		ok := true
		for _, w := range p.Dominated(v) {
			if p.reaches(int(w), v) {
				ok = false
				break
			}
		}
		if !ok {
			t.Fatalf("priority %v has a cycle through %d", p, v)
		}
	}
}

func TestWinnow(t *testing.T) {
	// Example 7: ta ≻ tb, ta ≻ tc on a triangle.
	g := triangle(t)
	p := New(g)
	p.MustAdd(0, 1)
	p.MustAdd(0, 2)
	all := bitset.Full(3)
	w := p.Winnow(all)
	if !w.Equal(bitset.FromSlice([]int{0})) {
		t.Fatalf("winnow = %v, want {0}", w)
	}
	// Restricted to {1,2}, neither is dominated inside the subset.
	w = p.Winnow(bitset.FromSlice([]int{1, 2}))
	if !w.Equal(bitset.FromSlice([]int{1, 2})) {
		t.Fatalf("winnow = %v, want {1 2}", w)
	}
	if !p.UndominatedIn(1, bitset.FromSlice([]int{1, 2})) {
		t.Fatal("t1 is undominated within {1,2}")
	}
	if p.UndominatedIn(1, all) {
		t.Fatal("t1 is dominated by t0 within the full set")
	}
}

func TestWinnowEmptyPriority(t *testing.T) {
	g := triangle(t)
	p := New(g)
	all := bitset.Full(3)
	if !p.Winnow(all).Equal(all) {
		t.Fatal("winnow with empty priority should keep everything")
	}
}

func TestFromRanks(t *testing.T) {
	// Example 3: s3 less reliable than s1 and s2; s1 vs s2 unknown.
	// Model: rank(s1)=0, rank(s2)=0, rank(s3)=1.
	s := relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
	inst := relation.NewInstance(s)
	mary := inst.MustInsert("Mary", "R&D", 40, 3)  // from s1
	john := inst.MustInsert("John", "R&D", 10, 2)  // from s2
	maryIT := inst.MustInsert("Mary", "IT", 20, 1) // from s3
	johnPR := inst.MustInsert("John", "PR", 30, 4) // from s3
	g := conflict.MustBuild(inst, fd.MustParseSet(s,
		"Dept -> Name,Salary,Reports", "Name -> Dept,Salary,Reports"))

	ranks := map[relation.TupleID]int{mary: 0, john: 0, maryIT: 1, johnPR: 1}
	p := FromRanks(g, func(t relation.TupleID) int { return ranks[t] })

	if !p.Dominates(mary, maryIT) || !p.Dominates(john, johnPR) {
		t.Fatal("reliable sources should dominate s3 tuples")
	}
	if p.Oriented(mary, john) {
		t.Fatal("conflict between equally reliable sources must stay unoriented")
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	assertAcyclic(t, p)
}

func TestFromScores(t *testing.T) {
	g := triangle(t)
	p := FromScores(g, func(t relation.TupleID) float64 { return float64(t) })
	// Higher ID = higher score here, so 2 dominates 1 and 0, etc.
	if !p.Dominates(2, 1) || !p.Dominates(2, 0) || !p.Dominates(1, 0) {
		t.Fatalf("FromScores = %v", p)
	}
	// Equal scores leave edges unoriented.
	q := FromScores(g, func(relation.TupleID) float64 { return 1 })
	if q.Len() != 0 {
		t.Fatal("equal scores should orient nothing")
	}
}

func TestRandomDensity(t *testing.T) {
	g := triangle(t)
	rng := rand.New(rand.NewSource(3))
	p0 := Random(g, 0, rng)
	if p0.Len() != 0 {
		t.Fatal("density 0 should orient nothing")
	}
	p1 := Random(g, 1, rng)
	if !p1.IsTotal() {
		t.Fatal("density 1 should orient everything")
	}
	assertAcyclic(t, p1)
	for i := 0; i < 30; i++ {
		assertAcyclic(t, Random(g, 0.5, rng))
	}
}

func TestAllTotalExtensions(t *testing.T) {
	g := triangle(t)
	p := New(g)
	exts, err := AllTotalExtensions(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	// A triangle has 2^3 = 8 orientations, 2 of which are cyclic.
	if len(exts) != 6 {
		t.Fatalf("acyclic total orientations of a triangle = %d, want 6", len(exts))
	}
	for _, q := range exts {
		if !q.IsTotal() || !q.Extends(p) {
			t.Fatal("extension not total or not an extension")
		}
		assertAcyclic(t, q)
	}
	// With 0 budget it errors.
	if _, err := AllTotalExtensions(p, 2); err == nil {
		t.Fatal("limit should be enforced")
	}
	// Extending an already partially oriented triangle.
	p.MustAdd(0, 1)
	exts, err = AllTotalExtensions(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != 3 {
		t.Fatalf("extensions of one oriented edge on a triangle = %d, want 3", len(exts))
	}
}

func TestExtendableToCyclic(t *testing.T) {
	// A path can never orient into a cycle.
	gp := path5(t)
	if ExtendableToCyclic(New(gp)) {
		t.Fatal("a tree-shaped conflict graph cannot have a cyclic orientation")
	}
	// An unoriented triangle can.
	gt := triangle(t)
	if !ExtendableToCyclic(New(gt)) {
		t.Fatal("an unoriented triangle extends to a cyclic orientation")
	}
	// a ≻ b, a ≻ c pins the triangle acyclic: any cycle would need to
	// enter a, but both a-edges point away from... b->c or c->b plus
	// a->b, a->c: cycles need an edge into a; none can exist.
	p := New(gt)
	p.MustAdd(0, 1)
	p.MustAdd(0, 2)
	if ExtendableToCyclic(p) {
		t.Fatal("dominating vertex pins the triangle acyclic")
	}
	// a ≻ b and c unconstrained: b->c and c->a would... c->a is the
	// free edge {0,2}: orientation 2≻0 plus 1≻2 gives 0≻1≻2≻0: cyclic.
	q := New(gt)
	q.MustAdd(0, 1)
	if !ExtendableToCyclic(q) {
		t.Fatal("single oriented edge on a triangle still extends to a cycle")
	}
}

func TestExtendableToCyclicAgreesWithBruteForce(t *testing.T) {
	// Cross-check the mixed-graph search against enumerating all total
	// orientations (including cyclic ones) on small random graphs.
	rng := rand.New(rand.NewSource(11))
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	for iter := 0; iter < 40; iter++ {
		inst := relation.NewInstance(s)
		for i := 0; i < 6; i++ {
			inst.MustInsert(rng.Intn(3), rng.Intn(3))
		}
		g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
		p := Random(g, 0.3, rng)

		want := bruteForceCyclicExtendable(p)
		if got := ExtendableToCyclic(p); got != want {
			t.Fatalf("ExtendableToCyclic = %v, brute force = %v for %v on %s",
				got, want, p, g.ASCII())
		}
	}
}

// bruteForceCyclicExtendable tries all 2^k orientations of the
// unoriented edges and reports whether any completed orientation has a
// directed cycle.
func bruteForceCyclicExtendable(p *Priority) bool {
	g := p.Graph()
	var free [][2]int
	for _, e := range g.Edges() {
		if !p.Oriented(e.A, e.B) {
			free = append(free, [2]int{e.A, e.B})
		}
	}
	n := g.Len()
	for mask := 0; mask < 1<<uint(len(free)); mask++ {
		succ := make([][]int, n)
		for x := 0; x < n; x++ {
			for _, y := range p.Dominated(x) {
				succ[x] = append(succ[x], int(y))
			}
		}
		for i, e := range free {
			if mask&(1<<uint(i)) != 0 {
				succ[e[0]] = append(succ[e[0]], e[1])
			} else {
				succ[e[1]] = append(succ[e[1]], e[0])
			}
		}
		if hasCycle(succ) {
			return true
		}
	}
	return false
}

func hasCycle(succ [][]int) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(succ))
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = grey
		for _, w := range succ[v] {
			if color[w] == grey {
				return true
			}
			if color[w] == white && visit(w) {
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := range succ {
		if color[v] == white && visit(v) {
			return true
		}
	}
	return false
}

func TestEdgesAndString(t *testing.T) {
	g := triangle(t)
	p := New(g)
	p.MustAdd(1, 0)
	p.MustAdd(1, 2)
	edges := p.Edges()
	if len(edges) != 2 || edges[0] != [2]relation.TupleID{1, 0} || edges[1] != [2]relation.TupleID{1, 2} {
		t.Fatalf("Edges = %v", edges)
	}
	if got := p.String(); got != "{t1 > t0, t1 > t2}" {
		t.Fatalf("String = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle(t)
	p := New(g)
	p.MustAdd(0, 1)
	q := p.Clone()
	q.MustAdd(1, 2)
	if p.Dominates(1, 2) {
		t.Fatal("Clone should be independent")
	}
	if p.Len() != 1 || q.Len() != 2 {
		t.Fatalf("Len after clone: p=%d q=%d", p.Len(), q.Len())
	}
}
