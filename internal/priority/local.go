package priority

import (
	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
)

// Local is a priority projected onto a component-local view of the
// conflict graph (conflict.Local): for every directed CSR adjacency
// entry i→j of the view, Orient records whether the underlying
// conflict is oriented i ≻ j, j ≻ i, or not at all. Since priorities
// only orient conflict edges, this one byte per adjacency entry is
// the complete projection — the per-component evaluation hot paths
// (optimality conditions, Algorithm 1 simulation) read it with no
// global lookups and no allocation.
type Local struct {
	l      *conflict.Local
	orient []int8 // parallel to the view's CSR entries
}

const (
	// orientOut marks an entry i→j with i ≻ j.
	orientOut int8 = 1
	// orientIn marks an entry i→j with j ≻ i.
	orientIn int8 = -1
)

// Localize projects p onto the local view l. Cost is linear in the
// view's adjacency (each row is merged against the vertex's sorted
// successor and predecessor lists).
func (p *Priority) Localize(l *conflict.Local) *Local {
	pl := &Local{l: l}
	total := 0
	for i := 0; i < l.Len(); i++ {
		total += l.Degree(i)
	}
	pl.orient = make([]int8, total)
	e := 0
	for i := 0; i < l.Len(); i++ {
		v := l.Global(i)
		row := p.row(v)
		succ, pred := row.succ, row.pred
		si, pi := 0, 0
		for _, j := range l.Neighbors(i) {
			u := int32(l.Global(int(j)))
			// Rows and succ/pred lists are both ascending: advance the
			// two cursors to u.
			for si < len(succ) && succ[si] < u {
				si++
			}
			for pi < len(pred) && pred[pi] < u {
				pi++
			}
			switch {
			case si < len(succ) && succ[si] == u:
				pl.orient[e] = orientOut
			case pi < len(pred) && pred[pi] == u:
				pl.orient[e] = orientIn
			}
			e++
		}
	}
	return pl
}

// View returns the conflict-graph view the priority is projected on.
func (pl *Local) View() *conflict.Local { return pl.l }

// Dominates reports whether local vertex x ≻ local vertex y.
func (pl *Local) Dominates(x, y int) bool {
	base := pl.entryBase(x)
	for k, j := range pl.l.Neighbors(x) {
		if int(j) == y {
			return pl.orient[base+k] == orientOut
		}
	}
	return false
}

// entryBase returns the CSR entry index of x's first neighbor.
func (pl *Local) entryBase(x int) int { return pl.l.Offset(x) }

// RangeNeighbors calls yield(j, o) for every neighbor j of local
// vertex x in ascending order, with o the orientation of the entry
// (+1: x ≻ j, -1: j ≻ x, 0: unoriented). Iteration stops early if
// yield returns false.
func (pl *Local) RangeNeighbors(x int, yield func(j int, o int8) bool) {
	base := pl.entryBase(x)
	for k, j := range pl.l.Neighbors(x) {
		if !yield(int(j), pl.orient[base+k]) {
			return
		}
	}
}

// UndominatedIn reports whether local vertex x has no dominator
// inside rest.
func (pl *Local) UndominatedIn(x int, rest *bitset.Set) bool {
	ok := true
	pl.RangeNeighbors(x, func(j int, o int8) bool {
		if o == orientIn && rest.Has(j) {
			ok = false
			return false
		}
		return true
	})
	return ok
}
