package priority

import (
	"fmt"
	"math/rand"

	"prefcqa/internal/conflict"
	"prefcqa/internal/relation"
)

// FromRanks orients every conflict edge whose endpoints have strictly
// different ranks, preferring the tuple with the *smaller* rank (rank
// 0 = most reliable). Edges between equally ranked tuples stay
// unoriented. This models the data-cleaning inputs of §1: source
// reliability and tuple timestamps both induce rank functions.
// The result is always acyclic because every ≻-edge strictly
// decreases rank along its direction.
func FromRanks(g *conflict.Graph, rank func(relation.TupleID) int) *Priority {
	p := New(g)
	for _, e := range g.Edges() {
		ra, rb := rank(e.A), rank(e.B)
		switch {
		case ra < rb:
			p.addEdge(e.A, e.B)
		case rb < ra:
			p.addEdge(e.B, e.A)
		}
	}
	return p
}

// FromScores is FromRanks with the opposite convention: higher score
// wins (e.g. utility-based resolution in the style of [17]).
func FromScores(g *conflict.Graph, score func(relation.TupleID) float64) *Priority {
	p := New(g)
	for _, e := range g.Edges() {
		sa, sb := score(e.A), score(e.B)
		switch {
		case sa > sb:
			p.addEdge(e.A, e.B)
		case sb > sa:
			p.addEdge(e.B, e.A)
		}
	}
	return p
}

// Random orients each conflict edge independently with probability
// density, directions drawn from a random linear order on tuples so
// the result is acyclic. density 0 gives the empty priority, 1 a
// total one.
func Random(g *conflict.Graph, density float64, rng *rand.Rand) *Priority {
	perm := rng.Perm(g.Len())
	rank := make([]int, g.Len())
	for i, v := range perm {
		rank[v] = i
	}
	p := New(g)
	for _, e := range g.Edges() {
		if rng.Float64() >= density {
			continue
		}
		x, y := e.A, e.B
		if rank[x] > rank[y] {
			x, y = y, x
		}
		p.addEdge(x, y)
	}
	return p
}

// AllTotalExtensions enumerates every total priority extending p, by
// trying both orientations of each unoriented edge and keeping the
// acyclic outcomes. Exponential in the number of unoriented edges;
// intended for exhaustive verification on small instances (it guards
// against graphs with more than maxEdges unoriented edges).
func AllTotalExtensions(p *Priority, maxEdges int) ([]*Priority, error) {
	var free [][2]relation.TupleID
	for _, e := range p.g.Edges() {
		if !p.Oriented(e.A, e.B) {
			free = append(free, [2]relation.TupleID{e.A, e.B})
		}
	}
	if len(free) > maxEdges {
		return nil, fmt.Errorf("priority: %d unoriented edges exceed limit %d", len(free), maxEdges)
	}
	var out []*Priority
	var rec func(q *Priority, i int)
	rec = func(q *Priority, i int) {
		if i == len(free) {
			out = append(out, q.Clone())
			return
		}
		x, y := free[i][0], free[i][1]
		for _, dir := range [][2]relation.TupleID{{x, y}, {y, x}} {
			if err := q.Add(dir[0], dir[1]); err != nil {
				continue // would create a cycle
			}
			rec(q, i+1)
			q.removeEdge(dir[0], dir[1])
		}
	}
	rec(p.Clone(), 0)
	return out, nil
}

// ExtendableToCyclic reports whether p can be extended to a *cyclic*
// orientation of the conflict graph — the side condition of Theorem 2
// (C-Rep and G-Rep coincide when it is false). It searches for a
// directed cycle in the mixed graph whose directed edges are the
// oriented conflicts and whose undirected edges are the unoriented
// ones, traversable either way but at most once each. Exponential in
// the worst case; intended for analysis and tests.
func ExtendableToCyclic(p *Priority) bool {
	g := p.g
	n := g.Len()
	// DFS over simple paths; a cycle exists iff from some start vertex
	// we can return to it using each undirected edge at most once and
	// directed edges only forward. Path length is bounded by n, so for
	// test-scale graphs this is fine.
	edgeID := make(map[[2]int]int)
	for i, e := range g.Edges() {
		edgeID[[2]int{e.A, e.B}] = i
		edgeID[[2]int{e.B, e.A}] = i
	}
	usedEdge := make([]bool, g.NumEdges())
	var dfs func(start, v int, depth int) bool
	dfs = func(start, v, depth int) bool {
		if depth > 0 && v == start {
			// Closed directed walk with pairwise distinct edges: the
			// traversed undirected edges, oriented along the walk,
			// extend p to a cyclic orientation.
			return true
		}
		if depth >= n+1 {
			return false
		}
		found := false
		for _, w32 := range g.Neighbors(v) {
			w := int(w32)
			// Can we traverse v -> w?
			if p.Dominates(w, v) {
				continue // oriented against us
			}
			id := edgeID[[2]int{v, w}]
			if usedEdge[id] {
				continue
			}
			usedEdge[id] = true
			if dfs(start, w, depth+1) {
				found = true
			}
			usedEdge[id] = false
			if found {
				break
			}
		}
		return found
	}
	for v := 0; v < n; v++ {
		if dfs(v, v, 0) {
			return true
		}
	}
	return false
}
