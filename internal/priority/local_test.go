package priority

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
)

// TestLocalizeOrientation checks the projected orientation against the
// global Dominates relation on every induced edge.
func TestLocalizeOrientation(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := graphFromSeed(seed, 10)
		rng := rand.New(rand.NewSource(seed + 99))
		p := Random(g, 0.6, rng)
		for _, comp := range g.Components() {
			l := g.Project(comp)
			pl := p.Localize(l)
			for i := 0; i < l.Len(); i++ {
				gi := l.Global(i)
				pl.RangeNeighbors(i, func(j int, o int8) bool {
					gj := l.Global(j)
					switch {
					case p.Dominates(gi, gj):
						if o != 1 {
							t.Fatalf("seed %d: orient(%d,%d) = %d, want 1", seed, i, j, o)
						}
					case p.Dominates(gj, gi):
						if o != -1 {
							t.Fatalf("seed %d: orient(%d,%d) = %d, want -1", seed, i, j, o)
						}
					default:
						if o != 0 {
							t.Fatalf("seed %d: orient(%d,%d) = %d, want 0", seed, i, j, o)
						}
					}
					if pl.Dominates(i, j) != p.Dominates(gi, gj) {
						t.Fatalf("seed %d: local Dominates(%d,%d) disagrees", seed, i, j)
					}
					return true
				})
			}
		}
	}
}

// TestLocalUndominatedIn cross-checks the local winnow membership test
// against the global one on random subsets.
func TestLocalUndominatedIn(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := graphFromSeed(seed, 10)
		rng := rand.New(rand.NewSource(seed + 7))
		p := Random(g, 0.7, rng)
		for _, comp := range g.Components() {
			l := g.Project(comp)
			pl := p.Localize(l)
			for trial := 0; trial < 10; trial++ {
				localRest := bitset.New(l.Len())
				globalRest := bitset.New(g.Len())
				for i := 0; i < l.Len(); i++ {
					if rng.Intn(2) == 0 {
						localRest.Add(i)
						globalRest.Add(l.Global(i))
					}
				}
				for i := 0; i < l.Len(); i++ {
					want := p.UndominatedIn(l.Global(i), globalRest)
					if got := pl.UndominatedIn(i, localRest); got != want {
						t.Fatalf("seed %d: UndominatedIn(%d) = %v, want %v", seed, i, got, want)
					}
				}
			}
		}
	}
}
