package clean

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
)

func triangleGraph(t *testing.T) *conflict.Graph {
	t.Helper()
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1)
	inst.MustInsert(1, 2)
	inst.MustInsert(1, 3)
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
}

func example9Priority(t *testing.T) *priority.Priority {
	t.Helper()
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1, 0, 0) // ta = 0
	inst.MustInsert(1, 2, 1, 1) // tb = 1
	inst.MustInsert(2, 1, 1, 2) // tc = 2
	inst.MustInsert(2, 2, 2, 1) // td = 3
	inst.MustInsert(0, 0, 2, 2) // te = 4
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "C -> D"))
	p := priority.New(g)
	p.MustAdd(0, 1) // ta ≻ tb
	p.MustAdd(1, 2) // tb ≻ tc
	p.MustAdd(2, 3) // tc ≻ td
	p.MustAdd(3, 4) // td ≻ te
	return p
}

func TestCleanProducesRepair(t *testing.T) {
	p := example9Priority(t)
	out := Deterministic(p)
	if !p.Graph().IsMaximalIndependent(out) {
		t.Fatalf("Clean output %v is not a repair", out)
	}
	// Example 9 + §3.5: Algorithm 1 yields r1 = {ta, tc, te}.
	if !out.Equal(bitset.FromSlice([]int{0, 2, 4})) {
		t.Fatalf("Clean = %v, want {0 2 4}", out)
	}
}

func TestProposition1TotalPriorityUnique(t *testing.T) {
	// For a total priority Algorithm 1 computes a unique repair for
	// ANY sequence of choices.
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 40; iter++ {
		g := randomGraph(rng)
		total := priority.Random(g, 1, rng)
		if !total.IsTotal() {
			t.Fatal("Random(1) should be total")
		}
		want := Deterministic(total)
		for trial := 0; trial < 20; trial++ {
			got, err := Clean(total, func(c *bitset.Set) int {
				elems := c.Slice()
				return elems[rng.Intn(len(elems))]
			})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("total priority gave different outcomes %v vs %v", got, want)
			}
		}
		outs := AllOutcomes(total)
		if len(outs) != 1 || !outs[0].Equal(want) {
			t.Fatalf("AllOutcomes of total priority = %v, want exactly {%v}", outs, want)
		}
	}
}

func randomGraph(rng *rand.Rand) *conflict.Graph {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	n := 4 + rng.Intn(6)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(2))
	}
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "B -> C"))
}

func TestCleanEmptyPriorityYieldsAllRepairs(t *testing.T) {
	// With no priorities the winnow keeps everything, so the outcomes
	// over all choice orders are exactly all repairs (C-Rep satisfies
	// P3 here).
	g := triangleGraph(t)
	p := priority.New(g)
	outs := AllOutcomes(p)
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d, want 3 (all repairs of a triangle)", len(outs))
	}
	for _, o := range outs {
		if !g.IsMaximalIndependent(o) {
			t.Fatalf("outcome %v is not a repair", o)
		}
	}
}

func TestAllOutcomesMatchesChoiceBruteForce(t *testing.T) {
	// AllOutcomes must agree with simulating every choice sequence
	// explicitly (no memoization, factorial search) on small inputs.
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 30; iter++ {
		g := randomGraph(rng)
		p := priority.Random(g, 0.5, rng)

		got := map[string]bool{}
		for _, o := range AllOutcomes(p) {
			got[o.Key()] = true
		}
		want := map[string]bool{}
		var rec func(rest, acc *bitset.Set)
		rec = func(rest, acc *bitset.Set) {
			if rest.Empty() {
				want[acc.Key()] = true
				return
			}
			p.Winnow(rest).Range(func(x int) bool {
				nrest := rest.Clone()
				nrest.Remove(x)
				for _, u := range g.Neighbors(x) {
					nrest.Remove(int(u))
				}
				nacc := acc.Clone()
				nacc.Add(x)
				rec(nrest, nacc)
				return true
			})
		}
		rec(bitset.Full(g.Len()), bitset.New(g.Len()))

		if len(got) != len(want) {
			t.Fatalf("iter %d: AllOutcomes = %d, brute force = %d", iter, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("iter %d: missing outcome", iter)
			}
		}
	}
}

func TestCleanBadChoice(t *testing.T) {
	g := triangleGraph(t)
	p := priority.New(g)
	p.MustAdd(0, 1)
	if _, err := Clean(p, func(*bitset.Set) int { return 1 }); err != ErrBadChoice {
		t.Fatalf("err = %v, want ErrBadChoice", err)
	}
}

func TestNaiveCleaningLosesInformation(t *testing.T) {
	// Example 3's scenario: cleaning with partial information leaves
	// unresolved conflicts; the naive cleaner drops both sides.
	p := example9Priority(t)
	// Restrict to priorities on the first edge only.
	g := p.Graph()
	q := priority.New(g)
	q.MustAdd(0, 1) // ta ≻ tb only
	out := Naive(q)
	// ta survives (its only conflict is resolved in its favor); tb,
	// tc, td, te all participate in unresolved conflicts.
	if !out.Equal(bitset.FromSlice([]int{0})) {
		t.Fatalf("Naive = %v, want {0}", out)
	}
	if g.IsMaximalIndependent(out) {
		t.Fatal("naive cleaning should NOT be maximal here (information loss)")
	}
	if !g.IsIndependent(out) {
		t.Fatal("naive cleaning must still be consistent")
	}
}

func TestNaiveWithTotalPriorityStillConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for iter := 0; iter < 20; iter++ {
		g := randomGraph(rng)
		p := priority.Random(g, 1, rng)
		out := Naive(p)
		if !g.IsIndependent(out) {
			t.Fatal("naive output must be consistent")
		}
		// With a total priority, naive keeps exactly the tuples that
		// dominate all their neighbors — a subset of the Algorithm 1
		// result? Not in general; but consistency is the contract.
	}
}

func TestCleanOutcomesAreRepairs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 30; iter++ {
		g := randomGraph(rng)
		p := priority.Random(g, 0.4, rng)
		for _, o := range AllOutcomes(p) {
			if !g.IsMaximalIndependent(o) {
				t.Fatalf("outcome %v is not a repair", o)
			}
		}
	}
}

func TestDeterministicStable(t *testing.T) {
	p := example9Priority(t)
	a := Deterministic(p)
	b := Deterministic(p)
	if !a.Equal(b) {
		t.Fatal("Deterministic should be reproducible")
	}
}
