// Package clean implements Algorithm 1 of the paper: cleaning a
// database with a priority by iteratively selecting winnow-optimal
// tuples (tuples not dominated by any remaining tuple) and discarding
// their neighborhoods. For a total priority the result is a unique
// repair (Proposition 1); for partial priorities the set of outcomes
// over all choice sequences is exactly C-Rep (Proposition 7).
//
// The package also provides the naive cleaning baseline the
// introduction argues against ([14]-style): resolve a conflict when
// the priority says how, otherwise drop both tuples. Its output is
// consistent but generally not maximal — disjunctive information is
// lost — which examples/cleaning demonstrates.
package clean

import (
	"errors"
	"sort"

	"prefcqa/internal/bitset"
	"prefcqa/internal/priority"
)

// Choice selects the next tuple from the non-empty winnow set ω≻(rest)
// during Algorithm 1. Returning a tuple outside the candidate set is
// reported as an error by Clean.
type Choice func(candidates *bitset.Set) int

// MinChoice picks the smallest tuple ID — the deterministic default.
func MinChoice(candidates *bitset.Set) int { return candidates.Min() }

// ErrBadChoice is returned when a Choice selects a tuple outside the
// winnow set.
var ErrBadChoice = errors.New("clean: choice outside the winnow set")

// Clean runs Algorithm 1: repeatedly pick x ∈ ω≻(rest), move x to the
// result, and remove v(x) = {x} ∪ n(x) from rest. The result is
// always a repair. With a total priority the result is independent of
// the choices (Proposition 1).
func Clean(p *priority.Priority, choose Choice) (*bitset.Set, error) {
	g := p.Graph()
	rest := g.LiveSet()
	out := bitset.New(g.Len())
	for !rest.Empty() {
		w := p.Winnow(rest)
		// ω≻ of a non-empty set under an acyclic priority is
		// non-empty: a ≻-maximal element of rest is undominated.
		x := choose(w)
		if !w.Has(x) {
			return nil, ErrBadChoice
		}
		out.Add(x)
		rest.Remove(x)
		for _, u := range g.Neighbors(x) {
			rest.Remove(int(u))
		}
	}
	return out, nil
}

// Deterministic runs Algorithm 1 with MinChoice. It processes one
// connected component at a time, which yields exactly the global
// MinChoice outcome — whenever the global minimum of the winnow lies
// in a component, it is also that component's local minimum, and
// choices in different components do not interact — while keeping
// each winnow recomputation proportional to the component.
func Deterministic(p *priority.Priority) *bitset.Set {
	g := p.Graph()
	out := bitset.New(g.Len())
	for _, comp := range g.Components() {
		rest := bitset.FromSlice(comp)
		for !rest.Empty() {
			w := p.Winnow(rest)
			x := w.Min()
			out.Add(x)
			rest.Remove(x)
			for _, u := range g.Neighbors(x) {
				rest.Remove(int(u))
			}
		}
	}
	return out
}

// AllOutcomes returns every distinct result of Algorithm 1 over all
// choice sequences — by Proposition 7 this is exactly C-Rep. The
// search memoizes on the remaining-tuple set, and independent
// components are explored separately and recombined, so the cost is
// exponential only in individual component size.
func AllOutcomes(p *priority.Priority) []*bitset.Set {
	g := p.Graph()
	comps := g.Components()
	choices := make([][]*bitset.Set, len(comps))
	for i, comp := range comps {
		choices[i] = ComponentOutcomes(p, comp)
	}
	var out []*bitset.Set
	cur := bitset.New(g.Len())
	var rec func(i int)
	rec = func(i int) {
		if i == len(choices) {
			out = append(out, cur.Clone())
			return
		}
		for _, c := range choices[i] {
			cur.UnionWith(c)
			rec(i + 1)
			cur.DifferenceWith(c)
		}
	}
	rec(0)
	return out
}

// ComponentOutcomes returns every distinct result of Algorithm 1
// restricted to the subgraph induced by comp (a sorted vertex list),
// as sets of global TupleIDs. Because choices in different components
// commute, C-Rep is the componentwise product of these outcome lists.
func ComponentOutcomes(p *priority.Priority, comp []int) []*bitset.Set {
	l := p.Graph().Project(comp)
	local := LocalOutcomes(p.Localize(l))
	out := make([]*bitset.Set, len(local))
	for i, s := range local {
		gs := bitset.New(0)
		s.Range(func(j int) bool {
			gs.Add(l.Global(j))
			return true
		})
		out[i] = gs
	}
	return out
}

// LocalOutcomes explores all choice sequences of Algorithm 1 on one
// component-local view, returning the distinct outcomes as sets over
// local indices [0, k). Outcomes are deduplicated; the search
// memoizes visited (rest, acc) states. All scratch state is k-sized.
func LocalOutcomes(pl *priority.Local) []*bitset.Set {
	l := pl.View()
	k := l.Len()
	seenRest := map[string]bool{}
	outcomes := map[string]*bitset.Set{}
	var rec func(rest, acc *bitset.Set)
	rec = func(rest, acc *bitset.Set) {
		if rest.Empty() {
			key := acc.Key()
			if _, ok := outcomes[key]; !ok {
				outcomes[key] = acc.Clone()
			}
			return
		}
		// Memoization on rest alone is sound within a component run:
		// acc is determined by the removed vicinities, but different
		// accs can reach the same rest; key on both.
		key := rest.Key() + "|" + acc.Key()
		if seenRest[key] {
			return
		}
		seenRest[key] = true
		rest.Range(func(x int) bool {
			if !pl.UndominatedIn(x, rest) {
				return true // x ∉ ω≻(rest)
			}
			nrest := rest.Clone()
			nrest.Remove(x)
			for _, u := range l.Neighbors(x) {
				nrest.Remove(int(u))
			}
			nacc := acc.Clone()
			nacc.Add(x)
			rec(nrest, nacc)
			return true
		})
	}
	rec(bitset.Full(k), bitset.New(k))
	// Deterministic order: lexicographic on the sorted element lists.
	// This order is preserved by any order-preserving renumbering of
	// the component's vertices, so structurally identical components
	// enumerate their outcomes in corresponding order — a property the
	// memoizing evaluation engine relies on to stay bit-for-bit
	// identical to the sequential path.
	out := make([]*bitset.Set, 0, len(outcomes))
	elems := make([][]int, 0, len(outcomes))
	for _, s := range outcomes {
		out = append(out, s)
		elems = append(elems, s.Slice())
	}
	sort.Sort(&byElems{sets: out, elems: elems})
	return out
}

// byElems sorts sets lexicographically on their precomputed element
// lists (one Slice() per set instead of two per comparison).
type byElems struct {
	sets  []*bitset.Set
	elems [][]int
}

func (b *byElems) Len() int { return len(b.sets) }

func (b *byElems) Swap(i, j int) {
	b.sets[i], b.sets[j] = b.sets[j], b.sets[i]
	b.elems[i], b.elems[j] = b.elems[j], b.elems[i]
}

func (b *byElems) Less(i, j int) bool {
	as, bs := b.elems[i], b.elems[j]
	for k := 0; k < len(as) && k < len(bs); k++ {
		if as[k] != bs[k] {
			return as[k] < bs[k]
		}
	}
	return len(as) < len(bs)
}

// Naive performs the [14]-style cleaning the paper contrasts with
// (§5): for every conflict {x, y}, if the priority orients it, the
// dominated tuple is dropped; if it does not, *both* tuples are
// dropped. Undominated tuples whose every conflict is resolved in
// their favor survive. The result is consistent but not maximal in
// general (not a repair), losing disjunctive information.
func Naive(p *priority.Priority) *bitset.Set {
	g := p.Graph()
	out := bitset.New(g.Len())
	for t := 0; t < g.Len(); t++ {
		if !g.Live(t) {
			continue
		}
		keep := true
		for _, u := range g.Neighbors(t) {
			if !p.Dominates(t, int(u)) {
				keep = false // either dominated or unresolved
				break
			}
		}
		if keep {
			out.Add(t)
		}
	}
	return out
}
