// Package cqa computes preferred consistent query answers
// (Definition 3): true is the X-consistent answer to a closed query Q
// iff Q holds in every preferred repair of the family X. Evaluation
// treats repairs as views, enumerates preferred repairs with early
// exit, prunes to the components a ground query actually touches, and
// implements the polynomial-time ground quantifier-free algorithm for
// the plain Rep family (first row of Fig. 5, after Chomicki &
// Marcinkowski [6]).
//
// Per-component repair choices come from a core.Engine (Input.Engine;
// sequential by default): both the ground pruned path and the
// quantified full-enumeration path consume the engine's sharded,
// optionally memoized per-component results, so repeated evaluation
// against the same instance skips recomputation.
package cqa

import (
	"context"
	"fmt"
	"sort"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
)

// Relation bundles one relation's inconsistency context: the
// instance, its dependencies, the conflict graph, and the priority.
type Relation struct {
	Inst *relation.Instance
	FDs  *fd.Set
	Pri  *priority.Priority
}

// NewRelation builds the conflict graph of inst w.r.t. fds and wraps
// it with an empty priority.
func NewRelation(inst *relation.Instance, fds *fd.Set) (*Relation, error) {
	g, err := conflict.Build(inst, fds)
	if err != nil {
		return nil, err
	}
	return &Relation{Inst: inst, FDs: fds, Pri: priority.New(g)}, nil
}

// Input is the full CQA input: one entry per relation plus the
// database the query is evaluated against. Single-relation problems
// use a one-entry input.
type Input struct {
	DB   *relation.Database
	Rels []*Relation
	// Engine evaluates the per-component repair choices. Nil selects
	// the sequential reference engine; set it (or use WithEngine) to
	// shard components across workers and memoize choice sets.
	Engine *core.Engine
	// ScanOnly disables index access paths in query evaluation: the
	// planner still orders joins but every atom scans the visible
	// tuples. Results are identical; this is the ablation/back-out
	// switch behind the facade's WithIndexes(false).
	ScanOnly bool
	// Ctx, when non-nil, cancels evaluation: the engine checks it per
	// conflict-graph component and the repair walks check it per
	// enumerated combination, so a server deadline aborts a long
	// evaluation with ctx.Err() instead of running to completion.
	Ctx context.Context
	// Stats, when non-nil, receives open-query path and spine-executor
	// counters (see EvalStats). Shared across inputs by the facade.
	Stats *EvalStats
}

// WithEngine returns a copy of the input evaluating on the given
// engine.
func (in Input) WithEngine(e *core.Engine) Input {
	in.Engine = e
	return in
}

// WithScanOnly returns a copy of the input with index access paths
// disabled (or re-enabled).
func (in Input) WithScanOnly(on bool) Input {
	in.ScanOnly = on
	return in
}

// WithContext returns a copy of the input whose evaluation is
// cancelled when ctx is — the plumbing behind per-request deadlines
// in the serving layer.
func (in Input) WithContext(ctx context.Context) Input {
	in.Ctx = ctx
	return in
}

// WithStats returns a copy of the input recording open-query path
// counters into s.
func (in Input) WithStats(s *EvalStats) Input {
	in.Stats = s
	return in
}

// ctx resolves the cancellation context, defaulting to Background.
func (in Input) ctx() context.Context {
	if in.Ctx != nil {
		return in.Ctx
	}
	return context.Background()
}

// engine resolves the evaluation engine, defaulting to the sequential
// reference engine.
func (in Input) engine() *core.Engine {
	if in.Engine != nil {
		return in.Engine
	}
	return core.Sequential()
}

// NewInput assembles an Input (and the underlying Database) from
// per-relation contexts.
func NewInput(rels ...*Relation) (Input, error) {
	db := relation.NewDatabase()
	for _, r := range rels {
		if err := db.AddInstance(r.Inst); err != nil {
			return Input{}, err
		}
	}
	return Input{DB: db, Rels: rels}, nil
}

// Answer is the three-valued outcome of evaluating a closed query
// over a family of preferred repairs.
type Answer int

const (
	// CertainlyTrue: the query holds in every preferred repair —
	// "true is the X-consistent query answer".
	CertainlyTrue Answer = iota
	// CertainlyFalse: the query fails in every preferred repair —
	// "false is the X-consistent query answer".
	CertainlyFalse
	// Undetermined: the query holds in some preferred repairs and
	// fails in others.
	Undetermined
)

// String renders "true", "false" or "undetermined".
func (a Answer) String() string {
	switch a {
	case CertainlyTrue:
		return "true"
	case CertainlyFalse:
		return "false"
	case Undetermined:
		return "undetermined"
	default:
		return fmt.Sprintf("answer(%d)", int(a))
	}
}

// schemas returns the schema map for validation.
func (in Input) schemas() map[string]*relation.Schema {
	m := make(map[string]*relation.Schema, len(in.Rels))
	for _, r := range in.Rels {
		m[r.Inst.Schema().Name()] = r.Inst.Schema()
	}
	return m
}

// model builds the evaluation view for one preferred repair
// combination (one tuple subset per relation). The view serves index
// lookups from the relations' secondary indexes unless the input is
// ScanOnly.
func (in Input) model(subsets map[string]*bitset.Set) query.Model {
	var m query.Model = query.DBModel{DB: in.DB, Subsets: subsets}
	if in.ScanOnly {
		m = query.ScanOnly(m)
	}
	return m
}

// forEachPreferredRepair enumerates the preferred repairs of the
// whole database — the product of per-relation preferred repairs —
// and calls visit with one subset per relation. visit returns false
// to stop. Per-relation repairs come from the input's engine, so the
// inner re-enumerations hit the engine's choice-set cache when
// memoization is on. A non-nil error is the input context's
// cancellation (an early visit stop is not an error).
func (in Input) forEachPreferredRepair(f core.Family, visit func(map[string]*bitset.Set) bool) error {
	ctx := in.ctx()
	eng := in.engine()
	subsets := make(map[string]*bitset.Set, len(in.Rels))
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(in.Rels) {
			return visit(subsets), nil
		}
		r := in.Rels[i]
		name := r.Inst.Schema().Name()
		cont := true
		var inner error
		err := eng.EnumerateCtx(ctx, f, r.Pri, func(s *bitset.Set) bool {
			subsets[name] = s
			cont, inner = rec(i + 1)
			return cont && inner == nil
		})
		if inner != nil {
			return false, inner
		}
		if err != nil && err != repair.ErrStopped {
			return false, err // context cancellation
		}
		return cont, nil
	}
	_, err := rec(0)
	return err
}

// Certain reports whether true is the X-consistent answer to the
// closed query q: q must hold in every preferred repair of family f.
func Certain(f core.Family, in Input, q query.Expr) (bool, error) {
	a, err := Evaluate(f, in, q)
	if err != nil {
		return false, err
	}
	return a == CertainlyTrue, nil
}

// Possible reports whether q holds in at least one preferred repair
// of family f — the "brave" companion of Certain (presence of an atom
// in some repair is the Σ₂ᵖ-flavored problem §5 compares prioritized
// logic programming against). Possible(q) = ¬Certain(¬q).
func Possible(f core.Family, in Input, q query.Expr) (bool, error) {
	a, err := Evaluate(f, in, q)
	if err != nil {
		return false, err
	}
	return a != CertainlyFalse, nil
}

// Evaluate computes the three-valued answer to the closed query q
// over family f, stopping as soon as both a satisfying and a
// falsifying preferred repair have been seen. Ground queries are
// pruned to the conflict-graph components they touch.
func Evaluate(f core.Family, in Input, q query.Expr) (Answer, error) {
	if err := query.Validate(q, in.schemas()); err != nil {
		return 0, err
	}
	if !query.IsClosed(q) {
		return 0, fmt.Errorf("cqa: query has free variables %v; use FreeAnswers", query.FreeVars(q))
	}
	return evaluateClosed(f, in, q)
}

// EvaluateFull is Evaluate with the ground-query component pruning
// disabled: every preferred repair of the whole database is
// enumerated. Exposed for the pruning-ablation benchmarks; prefer
// Evaluate.
func EvaluateFull(f core.Family, in Input, q query.Expr) (Answer, error) {
	if err := query.Validate(q, in.schemas()); err != nil {
		return 0, err
	}
	if !query.IsClosed(q) {
		return 0, fmt.Errorf("cqa: query has free variables %v; use FreeAnswers", query.FreeVars(q))
	}
	return evaluateFull(f, in, q)
}

// evaluateClosed dispatches evaluation of an already-validated closed
// query. Kind-mismatched constants inside atoms (which arise when
// open queries are instantiated over the mixed active domain) simply
// make the atom false. Ground queries take the ground pruned walk;
// quantified queries take the quantified pruned walk when the support
// analysis proves it sound (no quantifier falls back to active-domain
// iteration); everything else enumerates the full repair product.
func evaluateClosed(f core.Family, in Input, q query.Expr) (Answer, error) {
	if err := in.ctx().Err(); err != nil {
		return 0, err
	}
	if query.IsGround(q) {
		return evaluateGroundPruned(f, in, q)
	}
	if ans, handled, err := evaluateQuantPruned(f, in, q); handled {
		return ans, err
	}
	return evaluateFull(f, in, q)
}

func evaluateFull(f core.Family, in Input, q query.Expr) (Answer, error) {
	in.Stats.noteClosed(false)
	seenTrue, seenFalse := false, false
	var evalErr error
	walkErr := in.forEachPreferredRepair(f, func(subsets map[string]*bitset.Set) bool {
		holds, err := query.EvalCtx(in.Ctx, q, in.model(subsets))
		if err != nil {
			evalErr = err
			return false
		}
		if holds {
			seenTrue = true
		} else {
			seenFalse = true
		}
		return !(seenTrue && seenFalse)
	})
	if evalErr != nil {
		return 0, evalErr
	}
	if walkErr != nil {
		return 0, walkErr
	}
	return verdict(seenTrue, seenFalse)
}

func verdict(seenTrue, seenFalse bool) (Answer, error) {
	switch {
	case seenTrue && !seenFalse:
		return CertainlyTrue, nil
	case seenFalse && !seenTrue:
		return CertainlyFalse, nil
	case seenTrue && seenFalse:
		return Undetermined, nil
	default:
		return 0, fmt.Errorf("cqa: no preferred repairs enumerated (P1 violated?)")
	}
}

// evaluateGroundPruned exploits that a ground query's truth in a
// repair depends only on the membership of the tuples its atoms
// mention. Only the conflict-graph components containing those
// tuples vary the answer; all other components are fixed to an
// arbitrary preferred choice (every family is componentwise
// non-empty). The enumeration is then exponential only in the
// touched components.
func evaluateGroundPruned(f core.Family, in Input, q query.Expr) (Answer, error) {
	in.Stats.noteClosed(true)
	// Identify the touched tuple IDs per relation. The query mentions
	// O(|Q|) tuples, so the touched sets are small slices, not
	// instance-sized bitsets.
	touched := make(map[string][]relation.TupleID)
	for _, a := range query.Atoms(q) {
		tup := make(relation.Tuple, len(a.Args))
		for i, t := range a.Args {
			c, ok := t.(query.Const)
			if !ok {
				return 0, fmt.Errorf("cqa: internal: non-ground atom %s", a)
			}
			tup[i] = c.Value
		}
		for _, r := range in.Rels {
			name := r.Inst.Schema().Name()
			if name != a.Rel {
				continue
			}
			if len(tup) != r.Inst.Schema().Arity() {
				return 0, fmt.Errorf("cqa: %s arity mismatch", a.Rel)
			}
			ok := true
			for i, v := range tup {
				if v.Kind() != r.Inst.Schema().Attr(i).Kind {
					ok = false
					break
				}
			}
			if !ok {
				continue // wrong kinds: tuple cannot exist
			}
			if id, found := r.Inst.Lookup(tup); found {
				touched[name] = append(touched[name], id)
			}
		}
	}
	// Per relation, collect the choices of the touched components
	// only — located directly via the graph's component index. The
	// engine shards the touched components across its workers and
	// serves repeated structures from its cache.
	eng := in.engine()
	type relChoices struct {
		name    string
		choices [][]*bitset.Set
	}
	var work []relChoices
	for _, r := range in.Rels {
		name := r.Inst.Schema().Name()
		tch := touched[name]
		if len(tch) == 0 {
			continue
		}
		g := r.Pri.Graph()
		compIDs := make([]int, 0, len(tch))
		for _, id := range tch {
			compIDs = append(compIDs, g.ComponentOf(id))
		}
		sort.Ints(compIDs)
		var comps [][]int
		for i, cid := range compIDs {
			if i > 0 && cid == compIDs[i-1] {
				continue
			}
			comps = append(comps, g.Component(cid))
		}
		lists, err := eng.ChoicesForCtx(in.ctx(), f, r.Pri, comps)
		if err != nil {
			return 0, err
		}
		for _, cs := range lists {
			if len(cs) == 0 {
				return 0, fmt.Errorf("cqa: component with no preferred choice (P1 violated?)")
			}
		}
		work = append(work, relChoices{name: name, choices: lists})
	}
	// Enumerate combinations of touched-component choices; evaluate on
	// the union per relation (untouched components are invisible —
	// the ground query never consults them).
	seenTrue, seenFalse := false, false
	ctx := in.ctx()
	var evalErr error
	subsets := make(map[string]*bitset.Set, len(work))
	var rec func(wi, ci int) bool
	rec = func(wi, ci int) bool {
		if wi == len(work) {
			if err := ctx.Err(); err != nil {
				evalErr = err
				return false
			}
			holds, err := query.EvalCtx(in.Ctx, q, in.model(subsets))
			if err != nil {
				evalErr = err
				return false
			}
			if holds {
				seenTrue = true
			} else {
				seenFalse = true
			}
			return !(seenTrue && seenFalse)
		}
		w := work[wi]
		if ci == len(w.choices) {
			return rec(wi+1, 0)
		}
		for _, choice := range w.choices[ci] {
			prev := subsets[w.name]
			if prev == nil {
				subsets[w.name] = choice.Clone()
			} else {
				subsets[w.name] = bitset.Union(prev, choice)
			}
			if !rec(wi, ci+1) {
				return false
			}
			subsets[w.name] = prev
		}
		return true
	}
	rec(0, 0)
	if evalErr != nil {
		return 0, evalErr
	}
	if !seenTrue && !seenFalse {
		// No touched components anywhere: every atom references an
		// absent tuple, so the answer is fixed and visibility is
		// irrelevant. Evaluate once.
		holds, err := query.EvalCtx(in.Ctx, q, in.model(map[string]*bitset.Set{}))
		if err != nil {
			return 0, err
		}
		if holds {
			return CertainlyTrue, nil
		}
		return CertainlyFalse, nil
	}
	return verdict(seenTrue, seenFalse)
}

// evaluateQuantPruned extends the ground pruning to quantified closed
// queries. The support analysis (query.AnalyzeSupport) computes,
// per relation, every live tuple ID any atom of the query could bind
// — the posting intersection of each atom's constant positions, or
// the whole relation for constant-free atoms — and proves the verdict
// a function of the visible touched tuples alone (no quantifier falls
// back to active-domain iteration). Only the conflict components
// containing touched tuples can then vary the answer: the walk
// enumerates their choice product (single-choice components are fixed
// into a per-relation base once, multi-choice ones are swapped in
// place), leaving untouched components invisible — observationally
// identical to fixing them to an arbitrary preferred choice. The
// query itself is compiled once (query.PrepareClosed) and re-run per
// combination by swapping visibility subsets; ScanOnly inputs keep
// the pruned walk but evaluate tuple-at-a-time per combination.
//
// handled=false means the support analysis declined (the verdict may
// depend on tuples outside the atoms' reach) and the caller must fall
// back to the full enumeration.
func evaluateQuantPruned(f core.Family, in Input, q query.Expr) (ans Answer, handled bool, err error) {
	sup, ok := query.AnalyzeSupport(q, query.DBModel{DB: in.DB})
	if !ok {
		return 0, false, nil
	}
	in.Stats.noteClosed(true)
	eng := in.engine()
	ctx := in.ctx()
	// Per touched relation: resolve the touched components' choice
	// sets, fix single-choice components into the relation's base
	// subset, and queue multi-choice components for the walk.
	type multiComp struct {
		set     *bitset.Set // the relation's visible subset, mutated in place
		choices []*bitset.Set
	}
	subsets := make(map[string]*bitset.Set)
	var multi []multiComp
	for _, r := range in.Rels {
		name := r.Inst.Schema().Name()
		ids, all := sup.TouchedIDs(name)
		if !all && (ids == nil || ids.Empty()) {
			// Untouched relation: left fully visible, like the ground
			// path — no atom can bind any of its tuples anyway.
			continue
		}
		g := r.Pri.Graph()
		var lists [][]*bitset.Set
		if all {
			lists, err = eng.ComponentChoicesCtx(ctx, f, r.Pri)
		} else {
			compIDs := make([]int, 0, ids.Len())
			ids.Range(func(id int) bool {
				compIDs = append(compIDs, g.ComponentOf(id))
				return true
			})
			sort.Ints(compIDs)
			var comps [][]int
			for i, cid := range compIDs {
				if i > 0 && cid == compIDs[i-1] {
					continue
				}
				comps = append(comps, g.Component(cid))
			}
			lists, err = eng.ChoicesForCtx(ctx, f, r.Pri, comps)
		}
		if err != nil {
			return 0, true, err
		}
		set := bitset.New(g.Len())
		for _, cs := range lists {
			switch {
			case len(cs) == 0:
				return 0, true, fmt.Errorf("cqa: component with no preferred choice (P1 violated?)")
			case len(cs) == 1:
				set.UnionWith(cs[0])
			default:
				multi = append(multi, multiComp{set: set, choices: cs})
			}
		}
		subsets[name] = set
	}
	// Compile once, swap visibility per combination. ScanOnly keeps
	// the ablation honest: the pruned walk still applies (it is a
	// repair-enumeration optimization, not an access path), but each
	// combination evaluates through the tuple-at-a-time interpreter.
	model := in.model(subsets)
	var prep *query.Prepared
	if !in.ScanOnly {
		if cm, columnar := model.(query.ColumnarModel); columnar {
			prep, _ = query.PrepareClosed(cm, q)
		}
	}
	evalOnce := func() (bool, error) {
		if prep != nil {
			return prep.Eval(ctx)
		}
		return query.EvalCtx(in.Ctx, q, model)
	}
	seenTrue, seenFalse := false, false
	var evalErr error
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(multi) {
			if err := ctx.Err(); err != nil {
				evalErr = err
				return false
			}
			holds, err := evalOnce()
			if err != nil {
				evalErr = err
				return false
			}
			if holds {
				seenTrue = true
			} else {
				seenFalse = true
			}
			return !(seenTrue && seenFalse)
		}
		mc := multi[i]
		for _, c := range mc.choices {
			// Components are disjoint, so the in-place union/difference
			// swap is exact (the same walk EnumerateCtx performs).
			mc.set.UnionWith(c)
			cont := rec(i + 1)
			mc.set.DifferenceWith(c)
			if !cont {
				return false
			}
		}
		return true
	}
	rec(0)
	if evalErr != nil {
		return 0, true, evalErr
	}
	// len(multi) == 0 evaluates exactly once: every touched component
	// is single-choice (or nothing is touched at all), so all
	// preferred repairs agree and the single verdict is certain.
	ans, err = verdict(seenTrue, seenFalse)
	return ans, true, err
}
