package cqa

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/core"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// Binding is one certain answer to an open query: an assignment of
// its free variables.
type Binding map[string]relation.Value

// String renders the binding deterministically, e.g. "{x=1, y='a'}".
func (b Binding) String() string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + b[n].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MaxOpenVariables bounds the active-domain exponent of the
// SUBSTITUTION fallback for open-query answering, which enumerates up
// to |domain|^k closed instantiations. The direct-enumeration path
// (the default for positive conjunctive spines over indexed inputs)
// never enumerates the domain product and is not subject to the
// bound.
const MaxOpenVariables = 4

// OpenLimitError reports an open query the substitution fallback
// refuses: more free variables than MaxOpenVariables, together with
// why the direct-enumeration path did not apply.
type OpenLimitError struct {
	Variables int    // free variables in the query
	Limit     int    // MaxOpenVariables
	Reason    string // why direct enumeration fell back to substitution
}

func (e *OpenLimitError) Error() string {
	return fmt.Sprintf("cqa: open query has %d free variables, substitution limit %d (direct enumeration unavailable: %s)",
		e.Variables, e.Limit, e.Reason)
}

// FreeAnswers computes the certain answers to an open query over the
// family f: the substitutions of the free variables (drawn from the
// active domain of the database plus the query constants) for which
// the instantiated query holds in every preferred repair. This
// extends Definition 3 to open queries along the lines of [1, 7].
//
// Two strategies implement the same answer set. The direct path
// compiles the query once and enumerates candidate bindings off the
// columnar data (query.EnumerateOpen): a certain answer must hold in
// some preferred repair, every repair is a subset of the database,
// and the positive spine is monotone — so the spine's matches over
// the full database are a superset of the answers, and only the
// surviving candidates pay a certain-answer check. When the query has
// no such spine (free variables under negation or disjunction only)
// or the input is scan-only, the substitution fallback instantiates
// the query over the kind-pruned active domain per variable, bounded
// by MaxOpenVariables. Both paths return identical slices, pinned by
// differential tests; FreeAnswersSubst forces the fallback.
func FreeAnswers(f core.Family, in Input, q query.Expr) ([]Binding, error) {
	if err := query.Validate(q, in.schemas()); err != nil {
		return nil, err
	}
	vars := query.FreeVars(q)
	if len(vars) == 0 {
		return nil, fmt.Errorf("cqa: query is closed; use Evaluate")
	}
	answers, reason, ok, err := freeAnswersDirect(f, in, q, vars)
	if err != nil {
		return nil, err
	}
	if ok {
		return answers, nil
	}
	return freeAnswersSubst(f, in, q, vars, reason)
}

// FreeAnswersSubst is FreeAnswers with the direct-enumeration path
// disabled: every kind-compatible active-domain combination is
// substituted and evaluated. Exposed for differential testing and the
// open-query ablation benchmarks; results are identical to
// FreeAnswers (when within MaxOpenVariables).
func FreeAnswersSubst(f core.Family, in Input, q query.Expr) ([]Binding, error) {
	if err := query.Validate(q, in.schemas()); err != nil {
		return nil, err
	}
	vars := query.FreeVars(q)
	if len(vars) == 0 {
		return nil, fmt.Errorf("cqa: query is closed; use Evaluate")
	}
	return freeAnswersSubst(f, in, q, vars, "forced")
}

// freeAnswersDirect answers the open query by spine enumeration.
// ok=false (with a reason) means the path does not apply and nothing
// was evaluated; the caller falls back to substitution.
func freeAnswersDirect(f core.Family, in Input, q query.Expr, vars []string) (answers []Binding, reason string, ok bool, err error) {
	// The candidate spine runs over the FULL database (nil subsets):
	// every preferred repair is a subset of it, so spine matches over
	// it form a superset of the certain answers.
	m := in.model(nil)
	var (
		cands  [][]relation.Value
		seen   = map[string]bool{}
		keyBuf []byte
	)
	spine, enumErr := query.EnumerateOpen(in.Ctx, m, q, func(vals []relation.Value) bool {
		keyBuf = keyBuf[:0]
		for _, v := range vals {
			keyBuf = v.AppendKey(keyBuf)
		}
		if seen[string(keyBuf)] {
			return true
		}
		seen[string(keyBuf)] = true
		cands = append(cands, append([]relation.Value(nil), vals...))
		return true
	})
	if enumErr != nil {
		var unsup *query.OpenUnsupportedError
		if errors.As(enumErr, &unsup) {
			return nil, unsup.Reason, false, nil
		}
		return nil, "", false, enumErr
	}
	// Candidates in ascending lexicographic order of the binding tuple:
	// the same order the substitution fallback's nested sorted-domain
	// loops produce, so the two paths return identical slices.
	sort.Slice(cands, func(i, j int) bool {
		for k := range cands[i] {
			if c := cands[i][k].Order(cands[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
	env := make(map[string]relation.Value, len(vars))
	for _, vals := range cands {
		for i, name := range spine.Vars {
			env[name] = vals[i]
		}
		a, err := evaluateClosed(f, in, query.Substitute(q, env))
		if err != nil {
			return nil, "", false, err
		}
		if a == CertainlyTrue {
			b := make(Binding, len(env))
			for k, v := range env {
				b[k] = v
			}
			answers = append(answers, b)
		}
	}
	in.Stats.noteOpen(spine.Executor, true)
	return answers, "", true, nil
}

// freeAnswersSubst answers the open query by active-domain
// substitution: one closed evaluation per kind-compatible combination
// of per-variable domains, bounded by MaxOpenVariables. reason names
// why the direct path did not apply (it surfaces in OpenLimitError).
func freeAnswersSubst(f core.Family, in Input, q query.Expr, vars []string, reason string) ([]Binding, error) {
	if len(vars) > MaxOpenVariables {
		return nil, &OpenLimitError{Variables: len(vars), Limit: MaxOpenVariables, Reason: reason}
	}
	domains := in.varDomains(q, vars)
	var answers []Binding
	env := make(map[string]relation.Value, len(vars))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			a, err := evaluateClosed(f, in, query.Substitute(q, env))
			if err != nil {
				return err
			}
			if a == CertainlyTrue {
				b := make(Binding, len(env))
				for k, v := range env {
					b[k] = v
				}
				answers = append(answers, b)
			}
			return nil
		}
		for _, v := range domains[i] {
			env[vars[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(env, vars[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	in.Stats.noteOpen("", false)
	return answers, nil
}

// varDomains collects the per-variable substitution domains: the
// distinct live values of the database plus the query constants,
// pooled per kind with native dedup (no re-stringifying), sorted
// ascending, and pruned per variable by kindVerdict — a variable the
// query can only satisfy at int positions never tries names, and vice
// versa. Ints precede names, matching Value.Order.
func (in Input) varDomains(q query.Expr, vars []string) [][]relation.Value {
	intSet := map[int64]struct{}{}
	nameSet := map[string]struct{}{}
	add := func(v relation.Value) {
		switch v.Kind() {
		case relation.KindInt:
			intSet[v.AsInt()] = struct{}{}
		case relation.KindName:
			nameSet[v.AsName()] = struct{}{}
		}
	}
	var scratch []relation.Value
	for _, r := range in.Rels {
		for attr := 0; attr < r.Inst.Schema().Arity(); attr++ {
			scratch = r.Inst.DistinctValuesLive(attr, scratch[:0])
			for _, v := range scratch {
				add(v)
			}
		}
	}
	for _, v := range query.Constants(q) {
		add(v)
	}
	ints := make([]int64, 0, len(intSet))
	for i := range intSet {
		ints = append(ints, i)
	}
	sort.Slice(ints, func(i, j int) bool { return ints[i] < ints[j] })
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)

	schemas := in.schemas()
	domains := make([][]relation.Value, len(vars))
	for i, name := range vars {
		intOK := kindVerdict(q, schemas, name, relation.KindInt) != kindFalse
		nameOK := kindVerdict(q, schemas, name, relation.KindName) != kindFalse
		d := make([]relation.Value, 0, len(ints)+len(names))
		if intOK {
			for _, v := range ints {
				d = append(d, relation.Int(v))
			}
		}
		if nameOK {
			for _, v := range names {
				d = append(d, relation.Name(v))
			}
		}
		domains[i] = d
	}
	return domains
}

// kv is the three-valued result of kindVerdict.
type kv int

const (
	kindUnknown kv = iota // truth may depend on the value (or the data)
	kindTrue              // the formula is true for EVERY value of the kind
	kindFalse             // the formula is false for EVERY value of the kind
)

// kindVerdict conservatively evaluates e under "x is some value of
// kind k, everything else unknown". kindFalse licenses pruning kind k
// from x's substitution domain: no value of that kind can be an
// answer. The fold mirrors the evaluator's semantics exactly — a
// kind-mismatched atom position is false, order comparisons are false
// on names — and treats quantifiers with care: an empty active domain
// makes FORALL true and EXISTS false whatever the body, so only the
// verdicts unaffected by emptiness propagate.
func kindVerdict(e query.Expr, schemas map[string]*relation.Schema, x string, k relation.Kind) kv {
	switch n := e.(type) {
	case query.Bool:
		if n.Value {
			return kindTrue
		}
		return kindFalse
	case query.Atom:
		s, ok := schemas[n.Rel]
		if !ok || s.Arity() != len(n.Args) {
			return kindUnknown // Validate already rejected these shapes
		}
		for i, t := range n.Args {
			if v, isVar := t.(query.Var); isVar && v.Name == x && s.Attr(i).Kind != k {
				return kindFalse
			}
		}
		return kindUnknown
	case query.Cmp:
		lx := isVarNamed(n.L, x)
		rx := isVarNamed(n.R, x)
		if !lx && !rx {
			return kindUnknown
		}
		order := n.Op != query.EQ && n.Op != query.NE
		if order && k == relation.KindName {
			// Order comparisons are false whenever an operand is a name.
			return kindFalse
		}
		if lx && rx {
			switch n.Op {
			case query.EQ, query.LE, query.GE:
				return kindTrue // x = x; x <= x on ints (names handled above)
			default:
				return kindFalse // x != x; x < x; x > x
			}
		}
		// x against the other operand.
		other := n.R
		if rx {
			other = n.L
		}
		c, isConst := other.(query.Const)
		if !isConst {
			return kindUnknown
		}
		if order && c.Value.Kind() != relation.KindInt {
			return kindFalse
		}
		if c.Value.Kind() != k {
			// Cross-kind: equality is false, inequality true; order
			// comparisons with k = int against a name constant are false.
			switch n.Op {
			case query.EQ:
				return kindFalse
			case query.NE:
				return kindTrue
			default:
				return kindFalse
			}
		}
		return kindUnknown // same kind: depends on the value
	case query.Not:
		switch kindVerdict(n.Body, schemas, x, k) {
		case kindTrue:
			return kindFalse
		case kindFalse:
			return kindTrue
		}
		return kindUnknown
	case query.And:
		l := kindVerdict(n.L, schemas, x, k)
		r := kindVerdict(n.R, schemas, x, k)
		if l == kindFalse || r == kindFalse {
			return kindFalse
		}
		if l == kindTrue && r == kindTrue {
			return kindTrue
		}
		return kindUnknown
	case query.Or:
		l := kindVerdict(n.L, schemas, x, k)
		r := kindVerdict(n.R, schemas, x, k)
		if l == kindTrue || r == kindTrue {
			return kindTrue
		}
		if l == kindFalse && r == kindFalse {
			return kindFalse
		}
		return kindUnknown
	case query.Quant:
		for _, v := range n.Vars {
			if v == x {
				return kindUnknown // x is shadowed: e does not depend on it
			}
		}
		sub := kindVerdict(n.Body, schemas, x, k)
		if n.All {
			if sub == kindTrue {
				return kindTrue // vacuous truth agrees on an empty domain
			}
		} else {
			if sub == kindFalse {
				return kindFalse // no witness; empty domain agrees
			}
		}
		return kindUnknown
	}
	return kindUnknown
}

// isVarNamed reports whether the term is the variable x.
func isVarNamed(t query.Term, x string) bool {
	v, ok := t.(query.Var)
	return ok && v.Name == x
}
