package cqa

import (
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/core"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// Binding is one certain answer to an open query: an assignment of
// its free variables.
type Binding map[string]relation.Value

// String renders the binding deterministically, e.g. "{x=1, y='a'}".
func (b Binding) String() string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + b[n].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// MaxOpenVariables bounds the active-domain exponent of open-query
// answering; |domain|^k substitutions are enumerated.
const MaxOpenVariables = 4

// FreeAnswers computes the certain answers to an open query over the
// family f: the substitutions of the free variables (drawn from the
// active domain of the database plus the query constants) for which
// the instantiated query holds in every preferred repair. This
// extends Definition 3 to open queries along the lines of [1, 7].
func FreeAnswers(f core.Family, in Input, q query.Expr) ([]Binding, error) {
	if err := query.Validate(q, in.schemas()); err != nil {
		return nil, err
	}
	vars := query.FreeVars(q)
	if len(vars) == 0 {
		return nil, fmt.Errorf("cqa: query is closed; use Evaluate")
	}
	if len(vars) > MaxOpenVariables {
		return nil, fmt.Errorf("cqa: open query has %d free variables, limit %d", len(vars), MaxOpenVariables)
	}
	domain := in.activeDomain(q)
	var answers []Binding
	env := make(map[string]relation.Value, len(vars))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(vars) {
			a, err := evaluateClosed(f, in, query.Substitute(q, env))
			if err != nil {
				return err
			}
			if a == CertainlyTrue {
				b := make(Binding, len(env))
				for k, v := range env {
					b[k] = v
				}
				answers = append(answers, b)
			}
			return nil
		}
		for _, v := range domain {
			env[vars[i]] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(env, vars[i])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return answers, nil
}

// activeDomain collects the distinct values of the whole database
// (a superset of every repair's domain) plus the query constants.
//
// The distinct values come from the secondary index postings —
// O(distinct values) per attribute once the postings exist, instead
// of an O(n) tuple scan per call. Tombstoned values must not appear
// (a dead value is not in the database, so it is not a candidate
// binding), so DistinctValuesLive walks each posting only far enough
// to find one live tuple carrying the value.
func (in Input) activeDomain(q query.Expr) []relation.Value {
	seen := map[string]bool{}
	var out []relation.Value
	add := func(v relation.Value) {
		k := v.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	var scratch []relation.Value
	for _, r := range in.Rels {
		for attr := 0; attr < r.Inst.Schema().Arity(); attr++ {
			scratch = r.Inst.DistinctValuesLive(attr, scratch[:0])
			for _, v := range scratch {
				add(v)
			}
		}
	}
	for _, v := range query.Constants(q) {
		add(v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Order(out[j]) < 0 })
	return out
}
