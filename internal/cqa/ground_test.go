package cqa

import (
	"fmt"
	"math/rand"
	"testing"

	"prefcqa/internal/core"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// randomGroundInput builds a random single-relation input over
// R(A,B,C) with two FDs.
func randomGroundInput(t testing.TB, rng *rand.Rand, n int) Input {
	t.Helper()
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(3))
	}
	rel, err := NewRelation(inst, fd.MustParseSet(s, "A -> B", "B -> C"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInput(rel)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// randomGroundQuery builds a random ground Boolean combination of
// atoms over the instance's tuples (present and absent) plus ground
// comparisons — including order comparisons on names, which exercise
// the partial-order literal handling.
func randomGroundQuery(rng *rand.Rand, inst *relation.Instance, depth int) query.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		if rng.Intn(5) == 0 {
			ops := []query.CmpOp{query.EQ, query.NE, query.LT, query.LE, query.GT, query.GE}
			op := ops[rng.Intn(len(ops))]
			mk := func() query.Term {
				// Name constants are only well-typed under equality
				// (Validate rejects order comparisons on names).
				if (op == query.EQ || op == query.NE) && rng.Intn(4) == 0 {
					return query.Const{Value: relation.Name("n")}
				}
				return query.Const{Value: relation.Int(int64(rng.Intn(3)))}
			}
			var c query.Expr = query.Cmp{Op: op, L: mk(), R: mk()}
			if rng.Intn(2) == 0 {
				c = query.Not{Body: c}
			}
			return c
		}
		var tup relation.Tuple
		if inst.Len() > 0 && rng.Intn(4) != 0 {
			tup = inst.Tuple(rng.Intn(inst.Len()))
		} else {
			tup = relation.Tuple{
				relation.Int(int64(rng.Intn(4))),
				relation.Int(int64(rng.Intn(4))),
				relation.Int(int64(rng.Intn(4))),
			}
		}
		args := make([]query.Term, len(tup))
		for i, v := range tup {
			args[i] = query.Const{Value: v}
		}
		a := query.Atom{Rel: inst.Schema().Name(), Args: args}
		if rng.Intn(2) == 0 {
			return query.Not{Body: a}
		}
		return a
	}
	l := randomGroundQuery(rng, inst, depth-1)
	r := randomGroundQuery(rng, inst, depth-1)
	switch rng.Intn(3) {
	case 0:
		return query.And{L: l, R: r}
	case 1:
		return query.Or{L: l, R: r}
	default:
		return query.Not{Body: query.And{L: l, R: r}}
	}
}

// TestGroundQFAgainstNaive cross-validates the PTIME ground CQA
// algorithm against exhaustive repair enumeration on random inputs
// and random ground queries.
func TestGroundQFAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2027))
	for iter := 0; iter < 150; iter++ {
		in := randomGroundInput(t, rng, 5+rng.Intn(5))
		q := randomGroundQuery(rng, in.Rels[0].Inst, 2)

		naive, err := evaluateFull(core.Rep, in, q)
		if err != nil {
			t.Fatalf("naive: %v on %s", err, q)
		}
		fast, err := GroundQFEvaluate(in, q)
		if err != nil {
			t.Fatalf("fast: %v on %s", err, q)
		}
		if naive != fast {
			t.Fatalf("iter %d: naive=%v fast=%v for %s\n%s",
				iter, naive, fast, q, in.Rels[0].Pri.Graph().ASCII())
		}
	}
}

// TestGroundPrunedAgainstFull cross-validates the component-pruned
// evaluation against full enumeration for all families.
func TestGroundPrunedAgainstFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2029))
	for iter := 0; iter < 60; iter++ {
		in := randomGroundInput(t, rng, 5+rng.Intn(4))
		// Randomize priorities too.
		in.Rels[0].Pri = priority.Random(in.Rels[0].Pri.Graph(), 0.5, rng)
		q := randomGroundQuery(rng, in.Rels[0].Inst, 2)
		for _, f := range core.Families {
			full, err := evaluateFull(f, in, q)
			if err != nil {
				t.Fatal(err)
			}
			pruned, err := evaluateGroundPruned(f, in, q)
			if err != nil {
				t.Fatal(err)
			}
			if full != pruned {
				t.Fatalf("iter %d %v: full=%v pruned=%v for %s", iter, f, full, pruned, q)
			}
		}
	}
}

func TestGroundWitnessCoverage(t *testing.T) {
	// A case exercising the witness search: query NOT t for a tuple t
	// whose exclusion requires picking a conflicting witness that
	// itself conflicts other witnesses.
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1) // 0
	inst.MustInsert(1, 2) // 1
	inst.MustInsert(1, 3) // 2 — triangle on key A
	rel, err := NewRelation(inst, fd.MustParseSet(s, "A -> B"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInput(rel)
	if err != nil {
		t.Fatal(err)
	}
	// "NOT R(1,1) AND NOT R(1,2)" — excluded together iff some repair
	// avoids both: repair {(1,3)} does.
	ok, err := GroundQFCertain(in, query.MustParse("R(1,1) OR R(1,2)"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("R(1,1) OR R(1,2) is not certain (repair {(1,3)} avoids both)")
	}
	// "R(1,1) OR R(1,2) OR R(1,3)" — every repair keeps exactly one.
	ok, err = GroundQFCertain(in, query.MustParse("R(1,1) OR R(1,2) OR R(1,3)"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("one of the three must be in every repair")
	}
}

func TestGroundComparisonOnly(t *testing.T) {
	in := randomGroundInput(t, rand.New(rand.NewSource(1)), 4)
	for _, c := range []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 < 1", false},
		{"'a' = 'a'", true},
		{"1 = 1 AND 2 >= 2", true},
	} {
		got, err := GroundQFCertain(in, query.MustParse(c.src))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("GroundQFCertain(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestGroundUnknownRelation(t *testing.T) {
	in := randomGroundInput(t, rand.New(rand.NewSource(2)), 3)
	if _, err := GroundQFCertain(in, query.MustParse("Nope(1)")); err == nil {
		t.Fatal("unknown relation should error")
	}
}

func ExampleGroundQFEvaluate() {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1)
	inst.MustInsert(1, 2)
	rel, _ := NewRelation(inst, fd.MustParseSet(s, "A -> B"))
	in, _ := NewInput(rel)
	a, _ := GroundQFEvaluate(in, query.MustParse("R(1,1) OR R(1,2)"))
	fmt.Println(a)
	// Output: true
}
