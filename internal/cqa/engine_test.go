package cqa

import (
	"fmt"
	"math/rand"
	"testing"

	"prefcqa/internal/conflict"
	"prefcqa/internal/core"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// randomInput builds a random single-relation CQA input over R(A,B,C)
// with two FDs and a random priority.
func randomInput(t testing.TB, rng *rand.Rand, n int) Input {
	t.Helper()
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(3))
	}
	fds := fd.MustParseSet(s, "A -> B", "B -> C")
	g := conflict.MustBuild(inst, fds)
	in, err := NewInput(&Relation{Inst: inst, FDs: fds, Pri: priority.Random(g, 0.5, rng)})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestEvaluateEngineEquivalence: closed-query answers (ground and
// quantified, so both the pruned and the full evaluation paths) are
// identical between the sequential reference engine and parallel
// memoizing engines, for every family.
func TestEvaluateEngineEquivalence(t *testing.T) {
	queries := []string{
		"EXISTS x, y, z . R(x, y, z)",
		"FORALL x, y, z . NOT R(x, y, z) OR y < 3",
		"R(0, 0, 0)",
		"R(1, 2, 0) OR R(2, 1, 1)",
		"R(0, 1, 2) AND NOT R(1, 1, 1)",
	}
	engines := []*core.Engine{
		core.NewEngine(core.WithWorkers(4), core.WithMemo(false)),
		core.NewEngine(core.WithWorkers(8), core.WithMemo(true)),
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 6; iter++ {
		in := randomInput(t, rng, 7+rng.Intn(4))
		for _, f := range core.Families {
			for _, src := range queries {
				q := query.MustParse(src)
				want, wantErr := Evaluate(f, in, q)
				for ei, eng := range engines {
					got, gotErr := Evaluate(f, in.WithEngine(eng), q)
					if got != want || (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("iter %d, %s, engine %d, %q: answer = %v (%v), want %v (%v)",
							iter, f, ei, src, got, gotErr, want, wantErr)
					}
				}
			}
		}
	}
}

// TestFreeAnswersEngineEquivalence: open-query certain answers agree
// between sequential and parallel engines.
func TestFreeAnswersEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	eng := core.NewEngine(core.WithWorkers(8), core.WithMemo(true))
	q := query.MustParse("EXISTS y . R(x, y, z)")
	for iter := 0; iter < 4; iter++ {
		in := randomInput(t, rng, 6+rng.Intn(4))
		for _, f := range core.Families {
			want, err := FreeAnswers(f, in, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FreeAnswers(f, in.WithEngine(eng), q)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("iter %d, %s: answers differ:\nseq: %v\npar: %v", iter, f, want, got)
			}
		}
	}
}
