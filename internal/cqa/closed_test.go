package cqa

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"prefcqa/internal/core"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// quantDiffInput builds the two-relation multi-component fixture the
// quantified differential tests run on:
//
//   - R(K, V) under K → V: six clusters (k, 0)/(k, 1) for k = 0..5,
//     clusters 0–2 oriented toward the 0-tuple, 3–4 unoriented,
//     cluster 5 a key triangle with a partial orientation, plus a
//     tombstoned tuple (inserted and deleted before the conflict
//     graph is built) and a conflict-free singleton (9, 9).
//   - S(K, W) under K → W: one oriented cluster at K = 0, one
//     unoriented at K = 1, singletons elsewhere.
//
// Distinct families disagree on the partially-oriented triangle, so
// the corpus exercises family-specific choice sets, not just Rep.
func quantDiffInput(t testing.TB) Input {
	t.Helper()
	sr := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
	r := relation.NewInstance(sr)
	var ids [6][2]relation.TupleID
	for k := 0; k < 6; k++ {
		ids[k][0] = r.MustInsert(k, 0)
		ids[k][1] = r.MustInsert(k, 1)
	}
	tomb := r.MustInsert(0, 7) // conflicts cluster 0, then dies
	r.Delete(tomb)
	tri := r.MustInsert(5, 2) // cluster 5 becomes a key triangle
	r.MustInsert(9, 9)        // conflict-free singleton
	relR, err := NewRelation(r, fd.MustParseSet(sr, "K -> V"))
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		relR.Pri.MustAdd(ids[k][0], ids[k][1])
	}
	relR.Pri.MustAdd(ids[5][0], tri) // partial orientation on the triangle

	ss := relation.MustSchema("S", relation.IntAttr("K"), relation.IntAttr("W"))
	s := relation.NewInstance(ss)
	s00 := s.MustInsert(0, 0)
	s05 := s.MustInsert(0, 5)
	s.MustInsert(1, 1)
	s.MustInsert(1, 6)
	s.MustInsert(2, 2)
	relS, err := NewRelation(s, fd.MustParseSet(ss, "K -> W"))
	if err != nil {
		t.Fatal(err)
	}
	relS.Pri.MustAdd(s00, s05)

	in, err := NewInput(relR, relS)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// closedDiffCorpus is the quantified closed-query mix the
// differential test pins: oriented, unoriented and triangle
// components, whole-relation supports, empty supports, negated-atom
// residuals, cross-relation joins, boolean combinations of
// quantifiers, mixed ground/quantified skeletons, and uncoverable
// shapes that must take the full-enumeration path.
var closedDiffCorpus = []string{
	"EXISTS v . R(0, v) AND v < 2",                                // single oriented component
	"EXISTS v . R(3, v) AND v = 0",                                // unoriented: undetermined
	"FORALL v . NOT R(3, v) OR v <= 1",                            // universal over one component
	"EXISTS v . R(5, v) AND v = 2",                                // the triangle: families disagree
	"EXISTS k, v . R(k, v) AND v = 7",                             // whole-relation support, false
	"FORALL k, v . NOT R(k, v) OR v >= 0",                         // whole-relation universal, true
	"EXISTS v . R(0, v) AND NOT R(3, v)",                          // negated atom residual
	"EXISTS v, w . R(0, v) AND S(0, w) AND v <= w",                // join across relations
	"(EXISTS v . R(4, v) AND v = 1) AND NOT (EXISTS w . S(9, w))", // empty S support
	"EXISTS v . R(7, v)",                                          // empty R support: false everywhere
	"R(9, 9) AND EXISTS v . R(4, v) AND v = 1",                    // mixed ground + quantified
	"(EXISTS v . R(1, v) AND v = 1) OR (EXISTS w . S(1, w) AND w = 6)",
	"NOT (EXISTS v . R(2, v) AND v = 1)", // negated quantifier
	// Uncoverable shapes: the inner quantifier has no positive atom,
	// so support analysis declines and the full enumeration answers.
	"EXISTS v . R(0, v) AND (EXISTS u . u = v)",
	"FORALL v . NOT R(3, v) OR (EXISTS u . u = v AND u < 2)",
}

// TestClosedQuantPrunedMatchesFull pins the component-pruned
// vectorized verification bit-for-bit against the full
// whole-database repair enumeration and against the scan-only
// interpreter, across all five families, and asserts via the stats
// counters that both the pruned and the full path fired on the
// corpus.
func TestClosedQuantPrunedMatchesFull(t *testing.T) {
	in := quantDiffInput(t)
	stats := &EvalStats{}
	in = in.WithEngine(core.NewEngine()).WithStats(stats)
	for _, f := range core.Families {
		for _, src := range closedDiffCorpus {
			q := query.MustParse(src)
			tag := fmt.Sprintf("%v %q", f, src)
			pruned, err := Evaluate(f, in, q)
			if err != nil {
				t.Fatalf("%s: Evaluate: %v", tag, err)
			}
			full, err := EvaluateFull(f, in, q)
			if err != nil {
				t.Fatalf("%s: EvaluateFull: %v", tag, err)
			}
			if pruned != full {
				t.Fatalf("%s: pruned=%v full=%v", tag, pruned, full)
			}
			// Scan-only keeps the pruned walk but interprets each
			// combination tuple-at-a-time; answers must not move.
			scan, err := Evaluate(f, in.WithScanOnly(true), q)
			if err != nil {
				t.Fatalf("%s: scan-only Evaluate: %v", tag, err)
			}
			if scan != pruned {
				t.Fatalf("%s: scan-only=%v pruned=%v", tag, scan, pruned)
			}
		}
	}
	snap := stats.Snapshot()
	if snap.ClosedPruned == 0 {
		t.Fatal("the pruned verification path never fired on the corpus")
	}
	if snap.ClosedFull == 0 {
		t.Fatal("the full enumeration path never fired on the corpus")
	}
}

// randomQuantQuery draws a closed quantified query over R(A,B,C) from
// a shape pool mixing coverable spines (single-atom, join, universal,
// negated residual) with uncoverable ones (atomless inner
// quantifiers) so random rounds exercise both evaluation paths.
func randomQuantQuery(rng *rand.Rand) query.Expr {
	c := func() int { return rng.Intn(3) }
	shapes := []func() string{
		func() string { return fmt.Sprintf("EXISTS x . R(%d, x, %d)", c(), c()) },
		func() string { return fmt.Sprintf("EXISTS x, y . R(%d, x, y) AND x <= y", c()) },
		func() string { return fmt.Sprintf("FORALL x . NOT R(%d, %d, x) OR x >= %d", c(), c(), c()) },
		func() string { return fmt.Sprintf("EXISTS x . R(x, %d, %d) AND NOT R(%d, x, x)", c(), c(), c()) },
		func() string { return fmt.Sprintf("EXISTS x, y, z . R(x, y, z) AND x = %d", c()) },
		func() string {
			return fmt.Sprintf("(EXISTS x . R(%d, %d, x)) AND NOT (EXISTS y . R(y, %d, %d))", c(), c(), c(), c())
		},
		func() string { return fmt.Sprintf("R(%d, %d, %d) OR (EXISTS v . R(%d, v, v))", c(), c(), c(), c()) },
		// Uncoverable: the inner quantifier falls back to
		// active-domain iteration, forcing the full path.
		func() string { return fmt.Sprintf("EXISTS x . R(%d, x, x) AND (EXISTS u . u = x)", c()) },
	}
	return query.MustParse(shapes[rng.Intn(len(shapes))]())
}

// TestClosedQuantRandomMutations cross-validates pruned, full and
// scan-only evaluation on randomly grown instances: each round
// applies a mutation batch (inserts plus a tombstoning delete) to a
// persistent instance, rebuilds the conflict context, randomizes the
// priority, and requires all three answers to agree for every family
// on a fresh random quantified query.
func TestClosedQuantRandomMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	fds := fd.MustParseSet(s, "A -> B", "B -> C")
	for round := 0; round < 40; round++ {
		// Mutation batch: a few inserts, then delete one live tuple so
		// postings keep crossing tombstones.
		for i := 0; i < 2+rng.Intn(3); i++ {
			inst.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(3))
		}
		if ids := inst.AllIDs(); ids.Len() > 6 {
			alive := ids.Slice()
			inst.Delete(alive[rng.Intn(len(alive))])
		}
		rel, err := NewRelation(inst, fds)
		if err != nil {
			t.Fatal(err)
		}
		rel.Pri = priority.Random(rel.Pri.Graph(), 0.5, rng)
		in, err := NewInput(rel)
		if err != nil {
			t.Fatal(err)
		}
		q := randomQuantQuery(rng)
		for _, f := range core.Families {
			full, err := evaluateFull(f, in, q)
			if err != nil {
				t.Fatalf("round %d %v: full: %v on %s", round, f, err, q)
			}
			pruned, err := Evaluate(f, in, q)
			if err != nil {
				t.Fatalf("round %d %v: pruned: %v on %s", round, f, err, q)
			}
			scan, err := Evaluate(f, in.WithScanOnly(true), q)
			if err != nil {
				t.Fatalf("round %d %v: scan: %v on %s", round, f, err, q)
			}
			if full != pruned || full != scan {
				t.Fatalf("round %d %v: full=%v pruned=%v scan=%v for %s\n%s",
					round, f, full, pruned, scan, q, rel.Pri.Graph().ASCII())
			}
		}
	}
}

// TestClosedQuantForkedVersions pins snapshot isolation across the
// pruned path: answers computed against a frozen parent version must
// not move after the child fork is mutated, and the child's own
// answers must agree with its full enumeration.
func TestClosedQuantForkedVersions(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
	parent := relation.NewInstance(s)
	a := parent.MustInsert(0, 0)
	b := parent.MustInsert(0, 1)
	parent.MustInsert(1, 1)
	fds := fd.MustParseSet(s, "K -> V")
	q := query.MustParse("EXISTS v . R(0, v) AND v < 1")

	mkInput := func(inst *relation.Instance, orient bool) Input {
		rel, err := NewRelation(inst, fds)
		if err != nil {
			t.Fatal(err)
		}
		if orient {
			rel.Pri.MustAdd(a, b)
		}
		in, err := NewInput(rel)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	parentIn := mkInput(parent, true)
	before, err := Evaluate(core.Global, parentIn, q)
	if err != nil {
		t.Fatal(err)
	}
	if before != CertainlyTrue {
		t.Fatalf("parent answer = %v, want true", before)
	}

	// Mutate the fork: kill the preferred tuple and add a new cluster.
	child := parent.Fork()
	child.Delete(a)
	child.MustInsert(2, 0)
	child.MustInsert(2, 1)

	after, err := Evaluate(core.Global, parentIn, q)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("parent answer moved %v → %v after child mutation", before, after)
	}
	// The child (unoriented: the orienting edge died with a) must
	// answer false — R(0,1) survives alone — and agree with full.
	childIn := mkInput(child, false)
	got, err := Evaluate(core.Global, childIn, q)
	if err != nil {
		t.Fatal(err)
	}
	full, err := EvaluateFull(core.Global, childIn, q)
	if err != nil {
		t.Fatal(err)
	}
	if got != CertainlyFalse || got != full {
		t.Fatalf("child: pruned=%v full=%v, want false", got, full)
	}
}

// TestClosedQuantConcurrent is the -race exercise for the pruned
// path: reader goroutines share one input, one memoizing engine and
// one stats sink, repeatedly evaluating the corpus (pruned, full and
// scan-only) against precomputed expected answers while the engine's
// choice-set cache and the stats atomics are hammered concurrently.
func TestClosedQuantConcurrent(t *testing.T) {
	in := quantDiffInput(t)
	stats := &EvalStats{}
	in = in.WithEngine(core.NewEngine()).WithStats(stats)

	want := make(map[string]Answer, len(closedDiffCorpus))
	for _, src := range closedDiffCorpus {
		ans, err := Evaluate(core.Global, in, query.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		want[src] = ans
	}

	const readers = 6
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				src := closedDiffCorpus[(w+i)%len(closedDiffCorpus)]
				q := query.MustParse(src)
				ans, err := Evaluate(core.Global, in, q)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", w, err)
					return
				}
				if ans != want[src] {
					errs <- fmt.Errorf("reader %d: %q = %v, want %v", w, src, ans, want[src])
					return
				}
				if i%3 == 0 {
					full, err := EvaluateFull(core.Global, in, q)
					if err != nil || full != want[src] {
						errs <- fmt.Errorf("reader %d: full %q = %v, %v", w, src, full, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// FuzzClosedEquivalence parses arbitrary query text and, for every
// accepted closed formula over the fixture's schemas, requires the
// dispatching evaluator (ground-pruned, quantified-pruned or full,
// whichever fires), the pinned full enumeration and the scan-only
// interpreter to agree for every family. Run with
// `go test -fuzz=FuzzClosedEquivalence ./internal/cqa` to explore.
func FuzzClosedEquivalence(f *testing.F) {
	for _, s := range closedDiffCorpus {
		f.Add(s)
	}
	f.Add("R(0, 0)")
	f.Add("EXISTS k, v . R(k, v) AND S(k, v)")
	f.Add("FORALL k, v . NOT S(k, v) OR k < v OR k = 0")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := query.Parse(src)
		if err != nil {
			return
		}
		in := quantDiffInput(t)
		if query.Validate(q, in.schemas()) != nil || !query.IsClosed(q) {
			return
		}
		for _, fam := range core.Families {
			pruned, errP := Evaluate(fam, in, q)
			full, errF := EvaluateFull(fam, in, q)
			scan, errS := Evaluate(fam, in.WithScanOnly(true), q)
			if (errP == nil) != (errF == nil) || (errS == nil) != (errF == nil) {
				t.Fatalf("%v: error mismatch pruned=%v full=%v scan=%v for %s", fam, errP, errF, errS, q)
			}
			if errF == nil && (pruned != full || scan != full) {
				t.Fatalf("%v: pruned=%v full=%v scan=%v for %s", fam, pruned, full, scan, q)
			}
		}
	})
}
