package cqa

import (
	"fmt"
	"testing"

	"prefcqa/internal/core"
	"prefcqa/internal/fd"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// openDiffInput builds a two-relation conflicted scenario for the
// open-query differential tests: Emp(Name, Sal) with key conflicts on
// Name, Dept(DName, Bud) with key conflicts on DName, and priorities
// orienting some (not all) conflicts so the five families genuinely
// differ.
func openDiffInput(t testing.TB) Input {
	t.Helper()
	se := relation.MustSchema("Emp", relation.NameAttr("Name"), relation.IntAttr("Sal"))
	e := relation.NewInstance(se)
	mary40 := e.MustInsert("Mary", 40)
	e.MustInsert("Mary", 50)
	john30 := e.MustInsert("John", 30)
	john35 := e.MustInsert("John", 35)
	e.MustInsert("Ann", 45) // no conflict
	rel1, err := NewRelation(e, fd.MustParseSet(se, "Name -> Sal"))
	if err != nil {
		t.Fatal(err)
	}
	rel1.Pri.MustAdd(john35, john30) // prefer John's 35; Mary unoriented
	_ = mary40

	sd := relation.MustSchema("Dept", relation.NameAttr("DName"), relation.IntAttr("Bud"))
	d := relation.NewInstance(sd)
	rd100 := d.MustInsert("R&D", 100)
	rd90 := d.MustInsert("R&D", 90)
	d.MustInsert("IT", 35)
	rel2, err := NewRelation(d, fd.MustParseSet(sd, "DName -> Bud"))
	if err != nil {
		t.Fatal(err)
	}
	rel2.Pri.MustAdd(rd100, rd90)

	in, err := NewInput(rel1, rel2)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// openDiffCorpus is the open-query mix the differential test pins:
// single and multi free variables, joins across relations, residual
// comparisons, negation residuals (dropped during candidate
// generation, restored by verification), spineless shapes that force
// the substitution fallback, and kind-constrained variables.
var openDiffCorpus = []string{
	"EXISTS s . Emp(n, s)",
	"Emp(n, s)",
	"EXISTS s . Emp(n, s) AND s >= 35",
	"Emp(n, s) AND s > 30",
	"EXISTS b . Emp(n, s) AND Dept(d, b) AND s < b",
	"Emp(n, s) AND Dept(d, b) AND s < b",
	"EXISTS s . Emp(n, s) AND NOT Dept(n, 35)",
	"EXISTS s, b . Emp(n, s) AND Dept(d, b) AND NOT Emp('Ann', b)",
	// t occurs only in a comparison: no positive spine, fallback.
	"EXISTS s . Emp(n, s) AND s = t",
	// x constrained to both kinds at once: domain pruning must still
	// agree with the unpruned fallback semantics.
	"EXISTS s . Emp(x, s) AND Dept(x, 35)",
	"Emp(n, 35)",
	// The inner quantifier has no positive atom, so the closed checks
	// behind candidate verification cannot be support-pruned: this
	// entry keeps the full-enumeration path alive in the corpus.
	"Emp(n, s) AND (EXISTS u . u = s)",
}

// TestFreeAnswersDirectMatchesSubstitution pins the direct
// open-enumeration path bit-for-bit against the substitution baseline
// across all five repair families, on indexed and scan-only inputs.
func TestFreeAnswersDirectMatchesSubstitution(t *testing.T) {
	in := openDiffInput(t)
	stats := &EvalStats{}
	in = in.WithStats(stats)
	for _, f := range core.Families {
		for _, src := range openDiffCorpus {
			q := query.MustParse(src)
			tag := fmt.Sprintf("%v %q", f, src)
			direct, err := FreeAnswers(f, in, q)
			if err != nil {
				t.Fatalf("%s: FreeAnswers: %v", tag, err)
			}
			subst, err := FreeAnswersSubst(f, in, q)
			if err != nil {
				t.Fatalf("%s: FreeAnswersSubst: %v", tag, err)
			}
			if len(direct) != len(subst) {
				t.Fatalf("%s: direct %v vs subst %v", tag, direct, subst)
			}
			for i := range direct {
				if direct[i].String() != subst[i].String() {
					t.Fatalf("%s: answer %d: direct %v vs subst %v", tag, i, direct[i], subst[i])
				}
			}
			// Scan-only inputs always fall back; answers must not move.
			scan, err := FreeAnswers(f, in.WithScanOnly(true), q)
			if err != nil {
				t.Fatalf("%s: scan-only FreeAnswers: %v", tag, err)
			}
			if len(scan) != len(direct) {
				t.Fatalf("%s: scan-only %v vs direct %v", tag, scan, direct)
			}
			for i := range scan {
				if scan[i].String() != direct[i].String() {
					t.Fatalf("%s: answer %d: scan-only %v vs direct %v", tag, i, scan[i], direct[i])
				}
			}
		}
	}
	snap := stats.Snapshot()
	if snap.OpenDirect == 0 {
		t.Fatal("direct open enumeration never fired on the corpus")
	}
	if snap.OpenFallback == 0 {
		t.Fatal("substitution fallback never fired on the corpus")
	}
	// Candidate verification runs closed checks underneath: both the
	// pruned (ground / support-covered quantified) path and the full
	// enumeration (uncoverable quantifiers) must have fired.
	if snap.ClosedPruned == 0 {
		t.Fatal("pruned closed verification never fired on the corpus")
	}
	if snap.ClosedFull == 0 {
		t.Fatal("full closed verification never fired on the corpus")
	}
}

// TestFreeAnswersKindPruning pins the kind-aware substitution domains:
// a variable the query binds only at int positions must not try
// names, and the pruned domains must not change the answer set.
func TestFreeAnswersKindPruning(t *testing.T) {
	in := openDiffInput(t)
	q := query.MustParse("Emp(n, s) AND s > 30")
	doms := in.varDomains(q, query.FreeVars(q)) // vars sorted: n, s
	for _, v := range doms[0] {
		if v.Kind() != relation.KindName {
			t.Fatalf("n should only try names, domain has %v", v)
		}
	}
	for _, v := range doms[1] {
		if v.Kind() != relation.KindInt {
			t.Fatalf("s should only try ints, domain has %v", v)
		}
	}
	// A variable whose kind the query leaves open keeps both pools.
	qOpen := query.MustParse("EXISTS s . Emp(n, s) AND NOT Dept(n, 35) AND x = x")
	domsOpen := in.varDomains(qOpen, []string{"x"})
	kinds := map[relation.Kind]bool{}
	for _, v := range domsOpen[0] {
		kinds[v.Kind()] = true
	}
	if !kinds[relation.KindInt] || !kinds[relation.KindName] {
		t.Fatalf("x should try both kinds, domain %v", domsOpen[0])
	}
}
