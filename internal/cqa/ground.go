package cqa

import (
	"fmt"

	"prefcqa/internal/conflict"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// GroundQFCertain decides, in polynomial time in the database size,
// whether true is the (plain Rep) consistent answer to a ground
// quantifier-free query — the PTIME cell of Fig. 5's first row,
// following the conflict-graph technique of Chomicki & Marcinkowski
// [6]. The method: true is NOT certain iff some repair satisfies ¬Q;
// put ¬Q in DNF and look for a disjunct D and a repair containing all
// positive facts of D while avoiding all negated ones. Such a repair
// exists iff the positive facts are present and conflict-free and
// every present negated fact can be "covered" by a witness tuple that
// conflicts it, avoids the negated facts, and stays consistent with
// the positive facts and the other witnesses. The witness search
// branches only over the negated facts — bounded by query size — so
// data complexity stays polynomial.
func GroundQFCertain(in Input, q query.Expr) (bool, error) {
	if err := query.Validate(q, in.schemas()); err != nil {
		return false, err
	}
	if !query.IsGround(q) {
		return false, fmt.Errorf("cqa: GroundQFCertain needs a ground quantifier-free query, got %s", q)
	}
	neg := query.Negate(q)
	dnf, err := query.ToDNF(neg)
	if err != nil {
		return false, err
	}
	for _, disj := range dnf {
		sat, err := in.disjunctSatisfiableInSomeRepair(disj)
		if err != nil {
			return false, err
		}
		if sat {
			return false, nil // a repair falsifies Q
		}
	}
	return true, nil
}

// GroundQFEvaluate computes the three-valued Rep answer to a ground
// quantifier-free query in polynomial time.
func GroundQFEvaluate(in Input, q query.Expr) (Answer, error) {
	t, err := GroundQFCertain(in, q)
	if err != nil {
		return 0, err
	}
	if t {
		return CertainlyTrue, nil
	}
	f, err := GroundQFCertain(in, query.Negate(q))
	if err != nil {
		return 0, err
	}
	if f {
		return CertainlyFalse, nil
	}
	return Undetermined, nil
}

// fact identifies a tuple of one relation in the input.
type fact struct {
	rel int // index into in.Rels
	id  relation.TupleID
}

// tupleSet is a tiny unsorted set of tuple IDs. The witness search
// only ever holds O(|Q|) tuples per relation — the query's literals
// plus one witness per negated fact — so linear membership beats any
// instance-sized structure: these sets replace the bitsets that were
// previously allocated at instance size per disjunct.
type tupleSet []relation.TupleID

func (s tupleSet) has(id relation.TupleID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

// conflictsAny reports whether tuple id conflicts (in graph g) with
// any member of the set.
func (s tupleSet) conflictsAny(g *conflict.Graph, id relation.TupleID) bool {
	for _, x := range s {
		if g.Adjacent(id, x) {
			return true
		}
	}
	return false
}

// disjunctSatisfiableInSomeRepair decides whether some repair
// contains every positive fact of the disjunct and none of the
// negated ones (and the ground comparisons hold).
func (in Input) disjunctSatisfiableInSomeRepair(disj []query.Literal) (bool, error) {
	var pos, negPresent []fact
	for _, lit := range disj {
		if lit.IsCmp {
			holds, err := evalGroundCmp(lit.Cmp)
			if err != nil {
				return false, err
			}
			if lit.Negated {
				holds = !holds
			}
			if !holds {
				return false, nil // comparison fixed false: disjunct unsatisfiable
			}
			continue
		}
		ri, id, present, err := in.lookupAtom(lit.Atom)
		if err != nil {
			return false, err
		}
		if lit.Negated {
			if present {
				negPresent = append(negPresent, fact{rel: ri, id: id})
			}
			// Absent negated fact: no repair contains it — satisfied.
			continue
		}
		if !present {
			return false, nil // positive fact not in r: no repair has it
		}
		pos = append(pos, fact{rel: ri, id: id})
	}
	// Positive facts must be mutually consistent and disjoint from the
	// negated ones. Both working sets are sized by the query's literal
	// count, never the instance.
	chosen := make([]tupleSet, len(in.Rels))
	negSet := make([]tupleSet, len(in.Rels))
	for _, f := range negPresent {
		negSet[f.rel] = append(negSet[f.rel], f.id)
	}
	for _, f := range pos {
		if negSet[f.rel].has(f.id) {
			return false, nil // same fact both required and forbidden
		}
		if chosen[f.rel].conflictsAny(in.Rels[f.rel].Pri.Graph(), f.id) {
			return false, nil // positive facts conflict each other
		}
		chosen[f.rel] = append(chosen[f.rel], f.id)
	}
	// Every present negated fact must conflict something chosen; the
	// witness search branches over the |N| facts only.
	return in.coverNegated(negPresent, chosen, negSet), nil
}

// coverNegated tries to extend the chosen sets so that every negated
// fact conflicts a chosen tuple, keeping the chosen sets independent
// and disjoint from the negated facts. Any such family extends to a
// repair avoiding all negated facts.
func (in Input) coverNegated(negPresent []fact, chosen, negSet []tupleSet) bool {
	if len(negPresent) == 0 {
		return true
	}
	f := negPresent[0]
	g := in.Rels[f.rel].Pri.Graph()
	if chosen[f.rel].conflictsAny(g, f.id) {
		// Already excluded by a chosen tuple.
		return in.coverNegated(negPresent[1:], chosen, negSet)
	}
	for _, w32 := range g.Neighbors(f.id) {
		w := relation.TupleID(w32)
		if negSet[f.rel].has(w) {
			continue // witnesses must avoid the negated facts
		}
		if chosen[f.rel].conflictsAny(g, w) {
			continue // witness must stay consistent with choices
		}
		chosen[f.rel] = append(chosen[f.rel], w)
		ok := in.coverNegated(negPresent[1:], chosen, negSet)
		chosen[f.rel] = chosen[f.rel][:len(chosen[f.rel])-1]
		if ok {
			return true
		}
	}
	return false
}

// lookupAtom resolves a ground atom to (relation index, tuple ID,
// present).
func (in Input) lookupAtom(a query.Atom) (int, relation.TupleID, bool, error) {
	for ri, r := range in.Rels {
		if r.Inst.Schema().Name() != a.Rel {
			continue
		}
		if len(a.Args) != r.Inst.Schema().Arity() {
			return 0, 0, false, fmt.Errorf("cqa: %s arity mismatch", a.Rel)
		}
		tup := make(relation.Tuple, len(a.Args))
		for i, t := range a.Args {
			c, ok := t.(query.Const)
			if !ok {
				return 0, 0, false, fmt.Errorf("cqa: atom %s is not ground", a)
			}
			if c.Value.Kind() != r.Inst.Schema().Attr(i).Kind {
				return ri, 0, false, nil // wrong kind: never present
			}
			tup[i] = c.Value
		}
		id, present := r.Inst.Lookup(tup)
		return ri, id, present, nil
	}
	return 0, 0, false, fmt.Errorf("cqa: unknown relation %q", a.Rel)
}

func evalGroundCmp(c query.Cmp) (bool, error) {
	lc, ok1 := c.L.(query.Const)
	rc, ok2 := c.R.(query.Const)
	if !ok1 || !ok2 {
		return false, fmt.Errorf("cqa: comparison %s is not ground", c)
	}
	l, r := lc.Value, rc.Value
	switch c.Op {
	case query.EQ:
		return l.Equal(r), nil
	case query.NE:
		return !l.Equal(r), nil
	}
	if l.Kind() != relation.KindInt || r.Kind() != relation.KindInt {
		return false, nil
	}
	cv, err := l.Compare(r)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case query.LT:
		return cv < 0, nil
	case query.LE:
		return cv <= 0, nil
	case query.GT:
		return cv > 0, nil
	case query.GE:
		return cv >= 0, nil
	}
	return false, fmt.Errorf("cqa: unknown operator %v", c.Op)
}
