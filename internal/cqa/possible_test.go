package cqa

import (
	"math/rand"
	"testing"

	"prefcqa/internal/core"
	"prefcqa/internal/priority"
	"prefcqa/internal/query"
)

// TestPossibleDuality verifies Possible(q) = ¬Certain(¬q) on random
// inputs and queries, for every family.
func TestPossibleDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for iter := 0; iter < 40; iter++ {
		in := randomGroundInput(t, rng, 5+rng.Intn(4))
		in.Rels[0].Pri = priority.Random(in.Rels[0].Pri.Graph(), 0.5, rng)
		q := randomGroundQuery(rng, in.Rels[0].Inst, 2)
		for _, f := range core.Families {
			pos, err := Possible(f, in, q)
			if err != nil {
				t.Fatal(err)
			}
			certNeg, err := Certain(f, in, query.Negate(q))
			if err != nil {
				t.Fatal(err)
			}
			if pos == certNeg {
				t.Fatalf("iter %d %v: Possible=%v but Certain(¬q)=%v for %s",
					iter, f, pos, certNeg, q)
			}
		}
	}
}

// TestPossibleMgr checks brave answers on the paper example: each
// conflicting tuple is possible but not certain.
func TestPossibleMgr(t *testing.T) {
	in := mgrInput(t, false)
	for _, atom := range []string{
		"Mgr('Mary','R&D',40,3)",
		"Mgr('John','R&D',10,2)",
		"Mgr('Mary','IT',20,1)",
		"Mgr('John','PR',30,4)",
	} {
		pos, err := Possible(core.Rep, in, query.MustParse(atom))
		if err != nil {
			t.Fatal(err)
		}
		if !pos {
			t.Errorf("%s should be possible", atom)
		}
		cert, err := Certain(core.Rep, in, query.MustParse(atom))
		if err != nil {
			t.Fatal(err)
		}
		if cert {
			t.Errorf("%s should not be certain", atom)
		}
	}
	// Absent tuples are not even possible.
	pos, err := Possible(core.Rep, in, query.MustParse("Mgr('Bob','IT',1,1)"))
	if err != nil {
		t.Fatal(err)
	}
	if pos {
		t.Error("absent tuple should be impossible")
	}
}
