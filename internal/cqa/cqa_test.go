package cqa

import (
	"errors"
	"testing"

	"prefcqa/internal/core"
	"prefcqa/internal/fd"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// mgrInput builds the Example 1 integration scenario with the
// Example 3 reliability priority (s3 less reliable than s1 and s2).
func mgrInput(t testing.TB, withPriority bool) Input {
	t.Helper()
	s := relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
	inst := relation.NewInstance(s)
	mary := inst.MustInsert("Mary", "R&D", 40, 3)  // s1
	john := inst.MustInsert("John", "R&D", 10, 2)  // s2
	maryIT := inst.MustInsert("Mary", "IT", 20, 1) // s3
	johnPR := inst.MustInsert("John", "PR", 30, 4) // s3
	fds := fd.MustParseSet(s, "Dept -> Name,Salary,Reports", "Name -> Dept,Salary,Reports")
	rel, err := NewRelation(inst, fds)
	if err != nil {
		t.Fatal(err)
	}
	if withPriority {
		rel.Pri.MustAdd(mary, maryIT)
		rel.Pri.MustAdd(john, johnPR)
	}
	in, err := NewInput(rel)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

const q1 = `EXISTS x1, y1, z1, x2, y2, z2 .
	Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`

const q2 = `EXISTS x1, y1, z1, x2, y2, z2 .
	Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`

func TestExample2Q1NotCertain(t *testing.T) {
	// Q1 is false in r1 and r2 and true in r3: true is not the
	// consistent answer (and neither is false).
	in := mgrInput(t, false)
	a, err := Evaluate(core.Rep, in, query.MustParse(q1))
	if err != nil {
		t.Fatal(err)
	}
	if a != Undetermined {
		t.Fatalf("Q1 over Rep = %v, want undetermined", a)
	}
}

func TestExample3PreferredAnswers(t *testing.T) {
	// Without preferences, neither true nor false is the consistent
	// answer to Q2 in r.
	in := mgrInput(t, false)
	a, err := Evaluate(core.Rep, in, query.MustParse(q2))
	if err != nil {
		t.Fatal(err)
	}
	if a != Undetermined {
		t.Fatalf("Q2 over Rep = %v, want undetermined", a)
	}
	// With the reliability priority, the preferred repairs are r1 and
	// r2 (r3 is dominated), and Q2 is true in both: true is the
	// preferred consistent answer. This holds for every preference
	// family.
	inP := mgrInput(t, true)
	for _, f := range []core.Family{core.Local, core.SemiGlobal, core.Global, core.Common} {
		a, err := Evaluate(f, inP, query.MustParse(q2))
		if err != nil {
			t.Fatal(err)
		}
		if a != CertainlyTrue {
			t.Fatalf("Q2 over %v = %v, want true", f, a)
		}
	}
	// Plain Rep still cannot decide.
	a, err = Evaluate(core.Rep, inP, query.MustParse(q2))
	if err != nil {
		t.Fatal(err)
	}
	if a != Undetermined {
		t.Fatalf("Q2 over Rep = %v, want undetermined", a)
	}
}

func TestExample3PreferredRepairSets(t *testing.T) {
	in := mgrInput(t, true)
	rel := in.Rels[0]
	// The preferred repairs are exactly r1 = {mary, johnPR} and
	// r2 = {john, maryIT} for G (and for L, S, C).
	for _, f := range []core.Family{core.Local, core.SemiGlobal, core.Global, core.Common} {
		reps := core.All(f, rel.Pri)
		if len(reps) != 2 {
			t.Fatalf("%v has %d preferred repairs, want 2", f, len(reps))
		}
	}
}

func TestCertainGroundQueries(t *testing.T) {
	in := mgrInput(t, false)
	cases := []struct {
		src  string
		want Answer
	}{
		// maryIT is in r2 and r3 but not r1.
		{"Mgr('Mary', 'IT', 20, 1)", Undetermined},
		// An absent tuple is certainly false.
		{"Mgr('Bob', 'IT', 1, 1)", CertainlyFalse},
		{"NOT Mgr('Bob', 'IT', 1, 1)", CertainlyTrue},
		// mary OR john: every repair contains at least one of them?
		// r1={mary,johnPR}: yes (mary); r2={john,maryIT}: yes (john);
		// r3={maryIT,johnPR}: NO. So undetermined... careful: r3 has
		// neither mary nor john.
		{"Mgr('Mary','R&D',40,3) OR Mgr('John','R&D',10,2)", Undetermined},
		// maryIT OR johnPR: r1 has johnPR, r2 has maryIT, r3 both.
		{"Mgr('Mary','IT',20,1) OR Mgr('John','PR',30,4)", CertainlyTrue},
		// mary AND john conflict: never both.
		{"Mgr('Mary','R&D',40,3) AND Mgr('John','R&D',10,2)", CertainlyFalse},
		{"TRUE", CertainlyTrue},
		{"FALSE", CertainlyFalse},
		{"1 < 2", CertainlyTrue},
	}
	for _, c := range cases {
		got, err := Evaluate(core.Rep, in, query.MustParse(c.src))
		if err != nil {
			t.Fatalf("Evaluate(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Evaluate(%q) = %v, want %v", c.src, got, c.want)
		}
		// The PTIME ground algorithm must agree.
		fast, err := GroundQFEvaluate(in, query.MustParse(c.src))
		if err != nil {
			t.Fatalf("GroundQFEvaluate(%q): %v", c.src, err)
		}
		if fast != c.want {
			t.Errorf("GroundQFEvaluate(%q) = %v, want %v", c.src, fast, c.want)
		}
	}
}

func TestCertainHelper(t *testing.T) {
	in := mgrInput(t, false)
	ok, err := Certain(core.Rep, in, query.MustParse("NOT Mgr('Bob','IT',1,1)"))
	if err != nil || !ok {
		t.Fatalf("Certain = %v, %v", ok, err)
	}
	ok, err = Certain(core.Rep, in, query.MustParse("Mgr('Mary','IT',20,1)"))
	if err != nil || ok {
		t.Fatalf("Certain = %v, %v", ok, err)
	}
}

func TestEvaluateRejectsOpenQueries(t *testing.T) {
	in := mgrInput(t, false)
	if _, err := Evaluate(core.Rep, in, query.MustParse("EXISTS d, s . Mgr('Mary', d, s, r)")); err == nil {
		t.Fatal("open query should be rejected by Evaluate")
	}
}

func TestEvaluateValidates(t *testing.T) {
	in := mgrInput(t, false)
	if _, err := Evaluate(core.Rep, in, query.MustParse("Nope(1)")); err == nil {
		t.Fatal("unknown relation should fail validation")
	}
	if _, err := GroundQFCertain(in, query.MustParse("EXISTS x . Mgr(x, 'IT', 20, 1)")); err == nil {
		t.Fatal("GroundQFCertain should reject quantified queries")
	}
}

func TestAnswerString(t *testing.T) {
	if CertainlyTrue.String() != "true" || CertainlyFalse.String() != "false" || Undetermined.String() != "undetermined" {
		t.Fatal("Answer.String broken")
	}
	if Answer(9).String() == "" {
		t.Fatal("unknown answer should render")
	}
}

func TestMultiRelationCQA(t *testing.T) {
	// Two relations, each with its own conflicts and priorities.
	s1 := relation.MustSchema("Emp", relation.NameAttr("Name"), relation.IntAttr("Salary"))
	e := relation.NewInstance(s1)
	e.MustInsert("Mary", 40) // 0
	e.MustInsert("Mary", 50) // 1 — conflict on key Name
	rel1, err := NewRelation(e, fd.MustParseSet(s1, "Name -> Salary"))
	if err != nil {
		t.Fatal(err)
	}
	s2 := relation.MustSchema("Dept", relation.NameAttr("DName"), relation.IntAttr("Budget"))
	d := relation.NewInstance(s2)
	d.MustInsert("R&D", 100) // 0
	d.MustInsert("R&D", 90)  // 1 — conflict on key DName
	rel2, err := NewRelation(d, fd.MustParseSet(s2, "DName -> Budget"))
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInput(rel1, rel2)
	if err != nil {
		t.Fatal(err)
	}
	// Without priorities: 2×2 repairs; Mary's salary varies.
	q := "EXISTS s . Emp('Mary', s) AND s >= 40"
	a, err := Evaluate(core.Rep, in, query.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if a != CertainlyTrue {
		t.Fatalf("salary >= 40 should be certain, got %v", a)
	}
	a, _ = Evaluate(core.Rep, in, query.MustParse("EXISTS s . Emp('Mary', s) AND s = 50"))
	if a != Undetermined {
		t.Fatalf("salary = 50 should be undetermined, got %v", a)
	}
	// Orient both conflicts; G-Rep pins a single database repair.
	rel1.Pri.MustAdd(1, 0) // prefer salary 50
	rel2.Pri.MustAdd(0, 1) // prefer budget 100
	a, _ = Evaluate(core.Global, in, query.MustParse("EXISTS s . Emp('Mary', s) AND s = 50"))
	if a != CertainlyTrue {
		t.Fatalf("preferred salary = 50 should be certain, got %v", a)
	}
	// Join query across relations.
	join := "EXISTS s, b . Emp('Mary', s) AND Dept('R&D', b) AND s < b"
	a, _ = Evaluate(core.Global, in, query.MustParse(join))
	if a != CertainlyTrue {
		t.Fatalf("join should be certainly true over G, got %v", a)
	}
}

func TestFreeAnswers(t *testing.T) {
	in := mgrInput(t, true)
	// Who is certainly a manager of some department, over G-Rep?
	// Preferred repairs: r1={mary,johnPR}, r2={john,maryIT}. Both
	// Mary and John appear (with some dept) in both.
	ans, err := FreeAnswers(core.Global, in, query.MustParse("EXISTS d, s, r . Mgr(n, d, s, r)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("FreeAnswers = %v, want Mary and John", ans)
	}
	seen := map[string]bool{}
	for _, b := range ans {
		seen[b["n"].String()] = true
	}
	if !seen["'Mary'"] || !seen["'John'"] {
		t.Fatalf("FreeAnswers = %v", ans)
	}
	// Over plain Rep, r3 = {maryIT, johnPR} also matters but both
	// names still appear in every repair.
	ans, err = FreeAnswers(core.Rep, in, query.MustParse("EXISTS d, s, r . Mgr(n, d, s, r)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("FreeAnswers over Rep = %v", ans)
	}
	// Certain departments of Mary over G: r1 says R&D, r2 says IT —
	// no certain department.
	ans, err = FreeAnswers(core.Global, in, query.MustParse("EXISTS s, r . Mgr('Mary', d, s, r)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("no certain department expected, got %v", ans)
	}
}

func TestFreeAnswersGuards(t *testing.T) {
	in := mgrInput(t, false)
	if _, err := FreeAnswers(core.Rep, in, query.MustParse("Mgr('Mary','IT',20,1)")); err == nil {
		t.Fatal("closed query should be rejected by FreeAnswers")
	}
	// Eight free variables exceed the substitution bound, but the
	// positive conjunctive spine gives the direct-enumeration path,
	// which is not subject to MaxOpenVariables.
	wide := query.MustParse("Mgr(a, b, c, d) AND Mgr(e, f, g, h)")
	if _, err := FreeAnswers(core.Rep, in, wide); err != nil {
		t.Fatalf("wide query should take the direct path, got %v", err)
	}
	// Scan-only inputs have no columnar backing: the direct path bows
	// out and the substitution fallback enforces the bound with a
	// structured error naming the limit and the fallback reason.
	_, err := FreeAnswers(core.Rep, in.WithScanOnly(true), wide)
	var limitErr *OpenLimitError
	if !errors.As(err, &limitErr) {
		t.Fatalf("scan-only wide query: got %v, want *OpenLimitError", err)
	}
	if limitErr.Variables != 8 || limitErr.Limit != MaxOpenVariables || limitErr.Reason == "" {
		t.Fatalf("OpenLimitError = %+v", limitErr)
	}
	// A free variable occurring only under negation has no positive
	// spine: direct enumeration bows out even on indexed inputs.
	if _, err := FreeAnswers(core.Rep, in, query.MustParse("NOT Mgr(a, b, c, d) AND NOT Mgr(e, f, g, h)")); err == nil {
		t.Fatal("spineless wide query should be rejected")
	}
}

func TestBindingString(t *testing.T) {
	b := Binding{"y": relation.Int(2), "x": relation.Name("a")}
	if got := b.String(); got != "{x='a', y=2}" {
		t.Fatalf("Binding.String = %q", got)
	}
}
