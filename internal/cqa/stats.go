package cqa

import (
	"sync/atomic"

	"prefcqa/internal/query"
)

// EvalStats is an optional, concurrency-safe counter block the facade
// attaches to its inputs (Input.Stats): it records which open-query
// path answered each FreeAnswers call and which vectorized executor
// ran the candidate spine, so the serving layer can expose the
// planner's choices (/v1/stats) without tracing individual queries.
// A nil *EvalStats disables collection everywhere.
type EvalStats struct {
	openDirect   atomic.Int64
	openFallback atomic.Int64
	spineWcoj    atomic.Int64
	spineYan     atomic.Int64
	spineGreedy  atomic.Int64
	closedPruned atomic.Int64
	closedFull   atomic.Int64
}

// EvalStatsSnapshot is a point-in-time copy of the counters.
type EvalStatsSnapshot struct {
	// OpenDirect / OpenFallback count FreeAnswers calls answered by
	// direct spine enumeration vs active-domain substitution.
	OpenDirect   int64
	OpenFallback int64
	// Spine executor choices observed by direct open enumerations.
	SpineWcoj       int64
	SpineYannakakis int64
	SpineGreedy     int64
	// ClosedPruned / ClosedFull count closed-query evaluations (both
	// direct Evaluate calls and per-candidate open-query verifies)
	// answered by the component-pruned repair walk (ground or
	// quantified with a sound support analysis) vs the full
	// whole-database repair enumeration.
	ClosedPruned int64
	ClosedFull   int64
}

// Snapshot copies the counters; safe on a nil receiver (all zero).
func (s *EvalStats) Snapshot() EvalStatsSnapshot {
	if s == nil {
		return EvalStatsSnapshot{}
	}
	return EvalStatsSnapshot{
		OpenDirect:      s.openDirect.Load(),
		OpenFallback:    s.openFallback.Load(),
		SpineWcoj:       s.spineWcoj.Load(),
		SpineYannakakis: s.spineYan.Load(),
		SpineGreedy:     s.spineGreedy.Load(),
		ClosedPruned:    s.closedPruned.Load(),
		ClosedFull:      s.closedFull.Load(),
	}
}

// noteClosed records one closed-query evaluation: pruned says whether
// the component-pruned walk answered it (vs the full whole-database
// repair enumeration).
func (s *EvalStats) noteClosed(pruned bool) {
	if s == nil {
		return
	}
	if pruned {
		s.closedPruned.Add(1)
	} else {
		s.closedFull.Add(1)
	}
}

// noteOpen records one FreeAnswers call: direct says which path
// answered it, executor (meaningful only when direct) is the
// vectorized executor that ran the spine.
func (s *EvalStats) noteOpen(executor string, direct bool) {
	if s == nil {
		return
	}
	if !direct {
		s.openFallback.Add(1)
		return
	}
	s.openDirect.Add(1)
	switch executor {
	case query.ExecWCOJ:
		s.spineWcoj.Add(1)
	case query.ExecYannakakis:
		s.spineYan.Add(1)
	case query.ExecGreedyVec:
		s.spineGreedy.Add(1)
	}
}
