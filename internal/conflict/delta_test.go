package conflict

import (
	"fmt"
	"math/rand"
	"testing"

	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// checkGraphsEquivalent asserts that the incrementally maintained
// graph g matches the freshly built reference h in every observable:
// universe, liveness, adjacency, edges, and the component index.
func checkGraphsEquivalent(t *testing.T, step int, g, h *Graph) {
	t.Helper()
	if g.Len() != h.Len() {
		t.Fatalf("step %d: Len %d != %d", step, g.Len(), h.Len())
	}
	if g.NumEdges() != h.NumEdges() {
		t.Fatalf("step %d: NumEdges %d != %d", step, g.NumEdges(), h.NumEdges())
	}
	ge, he := g.Edges(), h.Edges()
	if len(ge) != len(he) {
		t.Fatalf("step %d: edge lists %d != %d", step, len(ge), len(he))
	}
	for i := range ge {
		if ge[i] != he[i] {
			t.Fatalf("step %d: edge %d: %+v != %+v", step, i, ge[i], he[i])
		}
	}
	for v := 0; v < g.Len(); v++ {
		if g.Live(v) != h.Live(v) {
			t.Fatalf("step %d: Live(%d) %v != %v", step, v, g.Live(v), h.Live(v))
		}
		gn, hn := g.Neighbors(v), h.Neighbors(v)
		if len(gn) != len(hn) {
			t.Fatalf("step %d: degree(%d) %d != %d", step, v, len(gn), len(hn))
		}
		for i := range gn {
			if gn[i] != hn[i] {
				t.Fatalf("step %d: neighbors(%d) %v != %v", step, v, gn, hn)
			}
		}
	}
	gc, hc := g.Components(), h.Components()
	if len(gc) != len(hc) {
		t.Fatalf("step %d: %d components != %d", step, len(gc), len(hc))
	}
	for i := range gc {
		if len(gc[i]) != len(hc[i]) {
			t.Fatalf("step %d: component %d size %d != %d\n%v\n%v", step, i, len(gc[i]), len(hc[i]), gc, hc)
		}
		for j := range gc[i] {
			if gc[i][j] != hc[i][j] {
				t.Fatalf("step %d: component %d: %v != %v", step, i, gc[i], hc[i])
			}
		}
		if g.ComponentSignature(gc[i]) != h.ComponentSignature(hc[i]) {
			t.Fatalf("step %d: component %d signature mismatch", step, i)
		}
	}
	// Per-vertex component index: IDs may differ between the two
	// graphs, but membership and local position must agree.
	for v := 0; v < g.Len(); v++ {
		if !g.Live(v) {
			if g.ComponentOf(v) != -1 {
				t.Fatalf("step %d: dead vertex %d has component %d", step, v, g.ComponentOf(v))
			}
			continue
		}
		gm := g.Component(g.ComponentOf(v))
		hm := h.Component(h.ComponentOf(v))
		if fmt.Sprint(gm) != fmt.Sprint(hm) {
			t.Fatalf("step %d: Component(ComponentOf(%d)) %v != %v", step, v, gm, hm)
		}
		if g.LocalIndexOf(v) != h.LocalIndexOf(v) {
			t.Fatalf("step %d: LocalIndexOf(%d) %d != %d", step, v, g.LocalIndexOf(v), h.LocalIndexOf(v))
		}
	}
}

// TestApplyDeltaMatchesRebuild drives random insert/delete streams
// through ApplyDelta and checks after every batch that the maintained
// graph is indistinguishable from a fresh Build of the mutated
// instance — including through compactions.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := relation.NewInstance(schema)
		fds := fd.MustParseSet(schema, "A -> B")
		for i := 0; i < 12; i++ {
			inst.MustInsert(rng.Intn(6), rng.Intn(4))
		}
		g := MustBuild(inst, fds)
		for step := 0; step < 60; step++ {
			prev := inst
			inst = inst.Fork()
			var d Delta
			batch := 1 + rng.Intn(3)
			for b := 0; b < batch; b++ {
				if rng.Intn(3) == 0 && inst.Len() > 0 {
					// Delete a random live tuple.
					live := inst.AllIDs().Slice()
					v := live[rng.Intn(len(live))]
					inst.Delete(v)
					d.Deletes = append(d.Deletes, v)
				} else {
					before := inst.NumIDs()
					id, _ := inst.InsertValues(rng.Intn(6), rng.Intn(4))
					if inst.NumIDs() > before {
						d.Inserts = append(d.Inserts, id)
					}
				}
			}
			_ = prev
			ng, rep, err := g.ApplyDelta(inst, d)
			if err != nil {
				t.Fatalf("seed %d step %d: ApplyDelta: %v", seed, step, err)
			}
			if len(d.Inserts)+len(d.Deletes) > 0 && len(rep.Retired)+len(rep.Fresh) == 0 {
				t.Fatalf("seed %d step %d: non-empty delta retired/created no components", seed, step)
			}
			g = ng
			h := MustBuild(inst, fds)
			checkGraphsEquivalent(t, step, g, h)
		}
	}
}

// TestApplyDeltaInsertThenDeleteSameBatch exercises the documented
// in-batch insert+delete protocol: the ID appears in both lists,
// inserts first.
func TestApplyDeltaInsertThenDeleteSameBatch(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	inst.MustInsert(1, 0)
	inst.MustInsert(1, 1)
	g := MustBuild(inst, fds)

	inst = inst.Fork()
	id := inst.MustInsert(1, 2) // conflicts both existing tuples
	inst.Delete(id)
	ng, _, err := g.ApplyDelta(inst, Delta{Inserts: []int{id}, Deletes: []int{id}})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	checkGraphsEquivalent(t, 0, ng, MustBuild(inst, fds))
	if ng.Live(id) {
		t.Fatalf("tuple %d should be dead", id)
	}
}

// TestTouchRetiresComponent checks that Touch retires a component ID
// and re-registers the same members under a fresh one.
func TestTouchRetiresComponent(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	a := inst.MustInsert(1, 0)
	inst.MustInsert(1, 1)
	g := MustBuild(inst, fds)

	// Work on a writable fork, as the facade does.
	inst2 := inst.Fork()
	g2, _, err := g.ApplyDelta(inst2, Delta{})
	if err != nil {
		t.Fatal(err)
	}
	before := g2.ComponentOf(a)
	old, fresh := g2.Touch(a)
	if int(old) != before || old == fresh {
		t.Fatalf("Touch = (%d, %d), want old %d and a fresh ID", old, fresh, before)
	}
	if got := g2.ComponentOf(a); got != int(fresh) {
		t.Fatalf("ComponentOf after Touch = %d, want %d", got, fresh)
	}
	if fmt.Sprint(g2.Component(int(fresh))) != fmt.Sprint(g.Component(before)) {
		t.Fatalf("Touch changed membership: %v != %v", g2.Component(int(fresh)), g.Component(before))
	}
	if g2.Component(int(old)) != nil {
		t.Fatalf("retired component %d still resolves", old)
	}
	// The parent version is untouched.
	if g.ComponentOf(a) != before {
		t.Fatalf("Touch leaked into the parent version")
	}
}

// TestApplyDeltaVersionIsolation verifies the copy-on-write contract:
// the parent graph answers from its own version after the child is
// patched.
func TestApplyDeltaVersionIsolation(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	a := inst.MustInsert(1, 0)
	b := inst.MustInsert(1, 1)
	g := MustBuild(inst, fds)
	if !g.Adjacent(a, b) {
		t.Fatal("setup: a and b must conflict")
	}

	inst2 := inst.Fork()
	inst2.Delete(b)
	c := inst2.MustInsert(1, 2)
	g2, _, err := g.ApplyDelta(inst2, Delta{Inserts: []int{c}, Deletes: []int{b}})
	if err != nil {
		t.Fatal(err)
	}
	// New version: b gone, c conflicts a.
	if g2.Live(b) || !g2.Adjacent(a, c) || g2.Adjacent(a, b) {
		t.Fatalf("child version wrong: Live(b)=%v Adjacent(a,c)=%v", g2.Live(b), g2.Adjacent(a, c))
	}
	// Old version: exactly as before.
	if !g.Live(b) || !g.Adjacent(a, b) || g.Adjacent(a, c) {
		t.Fatalf("parent version mutated: Live(b)=%v Adjacent(a,b)=%v Adjacent(a,c)=%v",
			g.Live(b), g.Adjacent(a, b), g.Adjacent(a, c))
	}
	if len(g.Components()) != 1 || len(g.Components()[0]) != 2 {
		t.Fatalf("parent components changed: %v", g.Components())
	}
}

// TestCompactionPreservesState forces compaction through a long
// mutation stream on a small instance and confirms equivalence and a
// fresh era afterwards.
func TestCompactionPreservesState(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	rng := rand.New(rand.NewSource(7))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	for i := 0; i < 8; i++ {
		inst.MustInsert(rng.Intn(4), rng.Intn(3))
	}
	g := MustBuild(inst, fds)
	firstEra := g.Era()
	compacted := false
	for step := 0; step < 400; step++ {
		inst = inst.Fork()
		var d Delta
		if rng.Intn(2) == 0 && inst.Len() > 4 {
			live := inst.AllIDs().Slice()
			v := live[rng.Intn(len(live))]
			inst.Delete(v)
			d.Deletes = append(d.Deletes, v)
		} else {
			before := inst.NumIDs()
			id, _ := inst.InsertValues(rng.Intn(4), rng.Intn(3))
			if inst.NumIDs() > before {
				d.Inserts = append(d.Inserts, id)
			}
		}
		ng, rep, err := g.ApplyDelta(inst, d)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g = ng
		if rep.Compacted {
			compacted = true
		}
	}
	if !compacted {
		t.Fatal("400 mutations never triggered compaction")
	}
	if g.Era() == firstEra {
		t.Fatal("compaction did not advance the era")
	}
	checkGraphsEquivalent(t, 400, g, MustBuild(inst, fds))
}
