package conflict

import (
	"fmt"
	"sort"

	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// This file implements delta maintenance of conflict graphs: instead
// of rebuilding the graph (and its components) after every Insert or
// Delete, ApplyDelta patches a copy-on-write overlay over the
// immutable CSR base — O(touched neighborhood + touched components)
// per mutation — and folds the overlay back into a fresh base once it
// grows past a threshold (amortized O(1) per mutation).
//
// Version model: a Graph is immutable once published. ApplyDelta
// forks the receiver — sharing the base arrays, copying the small
// overlay maps — patches the fork, and returns it. Readers holding
// the old version keep a consistent view; the writer publishes the
// new one. Component IDs are immutable value identities: any change
// to a component (membership via insert/delete, or orientation via
// Touch) retires its ID and assigns fresh IDs to the results, which
// is what lets per-component caches skip explicit invalidation — a
// retired ID is simply never asked for again by new versions.

// Delta is one batch of instance mutations to apply to a graph.
// Inserts lists tuple IDs appended to the instance since the graph's
// version; Deletes lists IDs that are now tombstoned. A tuple both
// inserted and deleted within the batch appears in both lists: all
// inserts are applied before all deletes, so the delta wires it in
// and back out (TestApplyDeltaInsertThenDeleteSameBatch pins this).
type Delta struct {
	Inserts []relation.TupleID
	Deletes []relation.TupleID
}

// DeltaReport describes what a delta changed: the component IDs it
// retired and created, edge-count movement, and whether the overlay
// was compacted into a fresh base (which renumbers every component
// under a fresh Era).
type DeltaReport struct {
	Retired      []int32
	Fresh        []int32
	AddedEdges   int
	RemovedEdges int
	Compacted    bool
}

// lhsIndex buckets live tuple IDs by their LHS projection, one map
// per dependency — the partner index that makes insert-time conflict
// discovery O(partners) instead of O(n). It is owned by the writer
// (the newest graph version) and shared along the version chain:
// older versions never touch it.
type lhsIndex struct {
	fds     []fd.FD
	buckets []map[string][]int32
}

func newLHSIndex(inst *relation.Instance, fds *fd.Set) *lhsIndex {
	idx := &lhsIndex{fds: fds.All(), buckets: make([]map[string][]int32, fds.Len())}
	for i := range idx.buckets {
		idx.buckets[i] = make(map[string][]int32)
	}
	inst.RangeIDs(func(id relation.TupleID) bool {
		idx.add(inst, id)
		return true
	})
	return idx
}

// add buckets tuple id under its LHS key for every dependency, reading
// the instance columns directly.
func (idx *lhsIndex) add(inst *relation.Instance, id relation.TupleID) {
	var buf [48]byte
	for i, f := range idx.fds {
		k := f.AppendLHSKeyAt(buf[:0], inst, id)
		idx.buckets[i][string(k)] = append(idx.buckets[i][string(k)], int32(id))
	}
}

func (idx *lhsIndex) remove(inst *relation.Instance, id relation.TupleID) {
	var buf [48]byte
	for i, f := range idx.fds {
		k := string(f.AppendLHSKeyAt(buf[:0], inst, id))
		b := idx.buckets[i][k]
		for j, x := range b {
			if x == int32(id) {
				b[j] = b[len(b)-1]
				b = b[:len(b)-1]
				break
			}
		}
		if len(b) == 0 {
			delete(idx.buckets[i], k)
		} else {
			idx.buckets[i][k] = b
		}
	}
}

// overlay size thresholds: compaction triggers when either map
// outgrows its bound. The bound trades the per-mutation fork cost
// (copying the overlay) against compaction frequency (amortized
// O(n + m) / threshold per mutation): n/64 keeps forks tens of
// microseconds at 100k tuples while compaction amortizes to a few
// microseconds per mutation.
func (g *Graph) overlayTooBig() bool {
	return len(g.rows) > 64+g.numVerts/64 || len(g.vertComp) > 64+g.numVerts/32
}

// fork returns a writable copy-on-write child of g bound to the given
// (newer) instance version. The base arrays are shared; overlay maps
// are copied. Cost is O(overlay size), bounded by the compaction
// thresholds.
func (g *Graph) fork(inst *relation.Instance) *Graph {
	g.ensureComps()
	ng := &Graph{
		inst: inst, fds: g.fds,
		off: g.off, nbrs: g.nbrs, edges: g.edges,
		numVerts: inst.NumIDs(), m: g.m, era: g.era,
		deadBase: g.deadBase,
		comps:    g.comps, compID: g.compID, localIdx: g.localIdx,
		nextCompID: g.nextCompID,
		lhs:        g.lhs,
	}
	ng.compsOnce.Do(func() {}) // base arrays inherited, never recompute
	ng.rows = make(map[int32][]int32, len(g.rows)+8)
	for k, v := range g.rows {
		ng.rows[k] = v
	}
	ng.extraEdges = append([]Edge(nil), g.extraEdges...)
	ng.compOver = make(map[int32][]int, len(g.compOver)+8)
	for k, v := range g.compOver {
		ng.compOver[k] = v
	}
	ng.vertComp = make(map[int32]int32, len(g.vertComp)+8)
	for k, v := range g.vertComp {
		ng.vertComp[k] = v
	}
	return ng
}

// ApplyDelta returns a new graph version reflecting the batch of
// instance mutations, leaving the receiver untouched, together with a
// report of the component churn. inst must be the instance version
// the delta produced (a descendant of the receiver's instance):
// inserted IDs are appended IDs, deleted IDs must have been live.
//
// Cost is O(Σ touched neighborhoods + Σ touched component sizes),
// plus an amortized O(n + m) share of the periodic compaction —
// versus O(n + m) for every full rebuild.
func (g *Graph) ApplyDelta(inst *relation.Instance, d Delta) (*Graph, *DeltaReport, error) {
	if !inst.Schema().Equal(g.inst.Schema()) {
		return nil, nil, fmt.Errorf("conflict: delta instance schema %s does not match graph schema %s",
			inst.Schema(), g.inst.Schema())
	}
	if inst.NumIDs() < g.numVerts {
		return nil, nil, fmt.Errorf("conflict: delta instance has %d IDs, graph has %d", inst.NumIDs(), g.numVerts)
	}
	if g.lhs == nil {
		g.lhs = newLHSIndex(g.inst, g.fds)
	}
	ng := g.fork(inst)
	rep := &DeltaReport{}
	for _, t := range d.Inserts {
		if t < g.numVerts {
			return nil, nil, fmt.Errorf("conflict: inserted ID %d is not new (universe was %d)", t, g.numVerts)
		}
		ng.insertVertex(t, rep)
	}
	if rep.AddedEdges > 0 {
		// One sort per batch: insertVertex appends its partner edges
		// unsorted; Edges()/compact expect (A, B) order.
		sortEdges(ng.extraEdges)
	}
	for _, v := range d.Deletes {
		if !ng.Live(v) {
			return nil, nil, fmt.Errorf("conflict: deleted ID %d is not live", v)
		}
		ng.deleteVertex(v, rep)
	}
	if ng.overlayTooBig() {
		ng.compact()
		rep.Compacted = true
	}
	return ng, rep, nil
}

// retireComp marks a component ID as no longer current.
func (g *Graph) retireComp(id int32, rep *DeltaReport) {
	if int(id) < len(g.comps) {
		g.compOver[id] = nil // tombstone a base ID
	} else {
		delete(g.compOver, id)
	}
	rep.Retired = append(rep.Retired, id)
}

// newComp registers a fresh component with the given sorted members
// and reassigns them to it.
func (g *Graph) newComp(members []int, rep *DeltaReport) int32 {
	id := g.nextCompID
	g.nextCompID++
	g.compOver[id] = members
	for _, m := range members {
		g.vertComp[int32(m)] = id
	}
	rep.Fresh = append(rep.Fresh, id)
	return id
}

// insertVertex wires a newly inserted tuple into the graph: partners
// are found through the LHS index, adjacency rows are patched, and
// the partner components (if any) merge with t into one fresh
// component.
func (g *Graph) insertVertex(t relation.TupleID, rep *DeltaReport) {
	// Discover conflict partners per dependency; the first dependency
	// witnessing a pair labels the edge, matching Build. Partner probes
	// compare column cells by ID — no tuple materialization.
	var partners []int32
	var buf [48]byte
	fdOf := make(map[int32]int)
	for fi, f := range g.lhs.fds {
		k := f.AppendLHSKeyAt(buf[:0], g.inst, t)
		for _, c := range g.lhs.buckets[fi][string(k)] {
			if _, seen := fdOf[c]; seen {
				continue
			}
			if f.ConflictsAt(g.inst, t, int(c)) {
				fdOf[c] = fi
				partners = append(partners, c)
			}
		}
	}
	g.lhs.add(g.inst, t)
	g.compList.Store((*componentListing)(nil))
	if len(partners) == 0 {
		g.newComp([]int{t}, rep)
		return
	}
	sort.Slice(partners, func(i, j int) bool { return partners[i] < partners[j] })
	g.rows[int32(t)] = partners
	for _, c := range partners {
		g.rows[c] = insertSorted(g.Neighbors(int(c)), int32(t))
		g.extraEdges = append(g.extraEdges, Edge{A: int(c), B: t, FD: fdOf[c]})
	}
	g.m += len(partners)
	rep.AddedEdges += len(partners)
	// Merge the partner components and t into one fresh component.
	var members []int
	seen := make(map[int32]bool)
	for _, c := range partners {
		cid := int32(g.ComponentOf(int(c)))
		if seen[cid] {
			continue
		}
		seen[cid] = true
		members = append(members, g.Component(int(cid))...)
		g.retireComp(cid, rep)
	}
	members = append(members, t)
	sort.Ints(members)
	g.newComp(members, rep)
}

// deleteVertex unwires a tombstoned tuple: its neighbors' rows are
// patched, incident edges leave the live set, and its component is
// re-split by a walk bounded by the component size.
func (g *Graph) deleteVertex(v relation.TupleID, rep *DeltaReport) {
	g.lhs.remove(g.inst, v)
	g.compList.Store((*componentListing)(nil))
	nbrs := append([]int32(nil), g.Neighbors(v)...)
	for _, u := range nbrs {
		g.rows[u] = removeSorted(g.Neighbors(int(u)), int32(v))
	}
	g.rows[int32(v)] = nil
	if len(g.extraEdges) > 0 {
		kept := g.extraEdges[:0]
		for _, e := range g.extraEdges {
			if e.A != v && e.B != v {
				kept = append(kept, e)
			}
		}
		g.extraEdges = kept
	}
	g.m -= len(nbrs)
	rep.RemovedEdges += len(nbrs)

	cid := int32(g.ComponentOf(v))
	old := g.Component(int(cid))
	g.retireComp(cid, rep)
	g.vertComp[int32(v)] = -1
	if len(old) == 1 {
		return // v was a singleton
	}
	// Re-split the remaining members by BFS over the patched rows.
	visited := make(map[int]bool, len(old))
	for _, s := range old {
		if s == v || visited[s] {
			continue
		}
		frag := []int{s}
		visited[s] = true
		for q := 0; q < len(frag); q++ {
			for _, u := range g.Neighbors(frag[q]) {
				if !visited[int(u)] {
					visited[int(u)] = true
					frag = append(frag, int(u))
				}
			}
		}
		sort.Ints(frag)
		g.newComp(frag, rep)
	}
}

// Touch retires the component containing v and re-registers the same
// members under a fresh ID, returning (retired, fresh). It marks the
// component dirty for (era, component ID)-keyed caches when something
// the graph cannot see changed — a preference orientation on one of
// its edges. Touch is a writer-side operation: call it only on a
// version produced by ApplyDelta that has not been published yet.
func (g *Graph) Touch(v relation.TupleID) (int32, int32) {
	g.ensureComps()
	if g.compOver == nil {
		g.compOver = make(map[int32][]int)
	}
	if g.vertComp == nil {
		g.vertComp = make(map[int32]int32)
	}
	cid := int32(g.ComponentOf(v))
	if cid < 0 {
		return -1, -1
	}
	members := g.Component(int(cid))
	var rep DeltaReport
	g.retireComp(cid, &rep)
	fresh := g.newComp(members, &rep)
	g.compList.Store((*componentListing)(nil))
	return cid, fresh
}

// compact folds the overlay into a fresh immutable base: new CSR
// arrays and edge list from the live adjacency, freshly numbered
// components, and a new Era. O(n + m); amortized over the mutations
// that grew the overlay.
func (g *Graph) compact() {
	g.edges = g.Edges()
	g.m = len(g.edges)
	g.rebuildCSR()
	g.rows = make(map[int32][]int32)
	g.extraEdges = nil
	g.deadBase = g.inst.DeadIDs()
	g.compOver = make(map[int32][]int)
	g.vertComp = make(map[int32]int32)
	g.computeComponents()
	g.era = eraCounter.Add(1)
	g.compList.Store((*componentListing)(nil))
}

// insertSorted returns a fresh sorted slice = row ∪ {v}.
func insertSorted(row []int32, v int32) []int32 {
	i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	if i < len(row) && row[i] == v {
		return row
	}
	out := make([]int32, len(row)+1)
	copy(out, row[:i])
	out[i] = v
	copy(out[i+1:], row[i:])
	return out
}

// removeSorted returns a fresh sorted slice = row \ {v}.
func removeSorted(row []int32, v int32) []int32 {
	i := sort.Search(len(row), func(k int) bool { return row[k] >= v })
	if i >= len(row) || row[i] != v {
		return row
	}
	out := make([]int32, len(row)-1)
	copy(out, row[:i])
	copy(out[i:], row[i+1:])
	return out
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].A != es[j].A {
			return es[i].A < es[j].A
		}
		return es[i].B < es[j].B
	})
}
