package conflict

import "sort"

// Local is the projection of the conflict graph onto one connected
// component (or, generally, any sorted vertex subset): vertices are
// renumbered to the dense local range [0, k) in sorted order, and the
// induced adjacency is stored in CSR form over local indices.
//
// All per-component evaluation — Bron–Kerbosch enumeration, the
// optimality conditions, Algorithm 1's outcome search — runs in this
// local index space, so scratch state costs O(k) bits instead of O(n):
// the renumbering is order-preserving, which keeps every local
// computation bit-for-bit equivalent (after lifting) to the same
// computation on global IDs.
type Local struct {
	g     *Graph
	verts []int   // sorted global TupleIDs; local i ↔ verts[i]
	off   []int32 // CSR offsets, len k+1
	nbrs  []int32 // local neighbor indices, ascending per row
}

// Project builds the local view of the subgraph induced by comp, a
// sorted vertex list. When comp is a full connected component (the
// common case — Components() output), every global neighbor is a
// member and projection is a single linear renumbering pass; arbitrary
// subsets filter non-members out.
func (g *Graph) Project(comp []int) *Local {
	k := len(comp)
	l := &Local{g: g, verts: comp, off: make([]int32, k+1)}
	// A sorted vertex list is a full component iff it is non-empty and
	// equals the registered component of its first vertex.
	full := false
	if k > 0 {
		c := g.Component(g.ComponentOf(comp[0]))
		if len(c) == k {
			full = true
			for i := range c {
				if c[i] != comp[i] {
					full = false
					break
				}
			}
		}
	}
	if full {
		size := 0
		for _, v := range comp {
			size += g.Degree(v)
		}
		l.nbrs = make([]int32, 0, size)
		for i, v := range comp {
			for _, u := range g.Neighbors(v) {
				l.nbrs = append(l.nbrs, int32(g.LocalIndexOf(int(u))))
			}
			l.off[i+1] = int32(len(l.nbrs))
		}
		return l
	}
	for i, v := range comp {
		for _, u := range g.Neighbors(v) {
			j := sort.SearchInts(comp, int(u))
			if j < k && comp[j] == int(u) {
				l.nbrs = append(l.nbrs, int32(j))
			}
		}
		l.off[i+1] = int32(len(l.nbrs))
	}
	return l
}

// Graph returns the underlying global graph.
func (l *Local) Graph() *Graph { return l.g }

// Len returns the number of local vertices k.
func (l *Local) Len() int { return len(l.verts) }

// Global returns the global TupleID of local vertex i.
func (l *Local) Global(i int) int { return l.verts[i] }

// Verts returns the sorted global vertex list. Callers must not
// mutate it.
func (l *Local) Verts() []int { return l.verts }

// Neighbors returns the local indices adjacent to local vertex i,
// ascending. The caller must not mutate the result.
func (l *Local) Neighbors(i int) []int32 { return l.nbrs[l.off[i]:l.off[i+1]] }

// Offset returns the index of vertex i's first adjacency entry in the
// flat CSR array — the base for per-entry parallel annotations (the
// priority projection stores one orientation byte per entry).
func (l *Local) Offset(i int) int { return int(l.off[i]) }

// Degree returns the induced degree of local vertex i.
func (l *Local) Degree(i int) int { return int(l.off[i+1] - l.off[i]) }
