package conflict

import (
	"math/rand"
	"testing"

	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// randomGraph builds a random two-FD conflict graph for projection
// round-trip properties.
func randomGraph(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(4), rng.Intn(4), rng.Intn(4))
	}
	return MustBuild(inst, fd.MustParseSet(s, "A -> B", "B -> C"))
}

// TestProjectComponent checks that the component projection is the
// order-preserving renumbering of the induced subgraph.
func TestProjectComponent(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := randomGraph(seed, 12)
		for _, comp := range g.Components() {
			l := g.Project(comp)
			if l.Len() != len(comp) {
				t.Fatalf("seed %d: Len = %d, want %d", seed, l.Len(), len(comp))
			}
			for i, v := range comp {
				if l.Global(i) != v {
					t.Fatalf("seed %d: Global(%d) = %d, want %d", seed, i, l.Global(i), v)
				}
				row := l.Neighbors(i)
				if len(row) != g.Degree(v) {
					t.Fatalf("seed %d: degree mismatch at %d", seed, v)
				}
				for x := 1; x < len(row); x++ {
					if row[x-1] >= row[x] {
						t.Fatalf("seed %d: local row %d not sorted: %v", seed, i, row)
					}
				}
				for _, j := range row {
					if !g.Adjacent(v, comp[j]) {
						t.Fatalf("seed %d: spurious local edge %d-%d", seed, i, j)
					}
				}
			}
		}
	}
}

// TestProjectSubset checks the general (non-component) projection
// filters out non-members.
func TestProjectSubset(t *testing.T) {
	g := randomGraph(3, 12)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var sub []int
		for v := 0; v < g.Len(); v++ {
			if rng.Intn(2) == 0 {
				sub = append(sub, v)
			}
		}
		l := g.Project(sub)
		for i, v := range sub {
			// Local row must be exactly the members of n(v) ∩ sub.
			want := 0
			for _, u := range g.Neighbors(v) {
				for _, w := range sub {
					if int(u) == w {
						want++
					}
				}
			}
			row := l.Neighbors(i)
			if len(row) != want {
				t.Fatalf("trial %d: row %d has %d entries, want %d", trial, i, len(row), want)
			}
			for _, j := range row {
				if !g.Adjacent(v, sub[j]) {
					t.Fatalf("trial %d: spurious edge", trial)
				}
			}
		}
	}
}

func TestComponentIndex(t *testing.T) {
	g := randomGraph(5, 16)
	comps := g.Components()
	for ci, comp := range comps {
		for li, v := range comp {
			if g.ComponentOf(v) != ci {
				t.Fatalf("ComponentOf(%d) = %d, want %d", v, g.ComponentOf(v), ci)
			}
			if g.LocalIndexOf(v) != li {
				t.Fatalf("LocalIndexOf(%d) = %d, want %d", v, g.LocalIndexOf(v), li)
			}
		}
	}
}
