// Package conflict implements conflict graphs (§2.1): vertices are the
// tuples of an instance, and two tuples are adjacent iff they conflict
// with respect to some functional dependency. Conflict graphs are the
// compact representation of repairs — the set of all repairs equals
// the set of all maximal independent sets of the graph.
//
// The graph is stored in CSR (compressed sparse row) form: one flat
// sorted neighbor array indexed by per-vertex offsets. Memory is
// O(n + m) — n tuples, m conflicts — rather than the O(n²) of a dense
// per-vertex bit matrix, which is what the paper's tractability story
// (sparse conflicts, small components) demands at scale.
package conflict

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"prefcqa/internal/bitset"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// Graph is the conflict graph of an instance with respect to a set of
// functional dependencies. The vertex set is the dense TupleID range
// [0, N). Edges are labelled with the (first) dependency that creates
// the conflict, for explanation output.
type Graph struct {
	inst *relation.Instance
	fds  *fd.Set

	// CSR adjacency: the neighbors of vertex v are
	// nbrs[off[v]:off[v+1]], sorted ascending.
	off  []int32
	nbrs []int32

	edges []Edge

	compsOnce sync.Once
	comps     [][]int // connected components, computed lazily
	compID    []int32 // vertex -> component index
	localIdx  []int32 // vertex -> position in its (sorted) component
}

// Edge is one conflict: tuples A < B violating dependency FD (index
// into the dependency set).
type Edge struct {
	A, B relation.TupleID
	FD   int
}

// Build computes the conflict graph of the instance. Conflicting pairs
// are discovered per dependency by hashing on the LHS projection, and
// streamed straight into CSR form, so both time and memory are linear
// in |r| plus the number of conflicts.
func Build(inst *relation.Instance, fds *fd.Set) (*Graph, error) {
	if !inst.Schema().Equal(fds.Schema()) {
		return nil, fmt.Errorf("conflict: instance schema %s does not match dependency schema %s",
			inst.Schema(), fds.Schema())
	}
	n := inst.Len()
	g := &Graph{inst: inst, fds: fds}
	// Violations are sorted by (T1, T2, FD); consecutive duplicates are
	// the same pair under a second dependency, which adds no edge.
	viols := fds.Violations(inst)
	for _, v := range viols {
		if k := len(g.edges); k > 0 && g.edges[k-1].A == v.T1 && g.edges[k-1].B == v.T2 {
			continue
		}
		g.edges = append(g.edges, Edge{A: v.T1, B: v.T2, FD: v.FD})
	}
	// Counting pass: degree per vertex, then prefix sums into offsets.
	g.off = make([]int32, n+1)
	for _, e := range g.edges {
		g.off[e.A+1]++
		g.off[e.B+1]++
	}
	for v := 0; v < n; v++ {
		g.off[v+1] += g.off[v]
	}
	// Fill pass. Edges are sorted by (A, B) with A < B, so each row
	// receives first its smaller neighbors (ascending) and then its
	// larger ones (ascending): rows come out sorted with no extra sort.
	g.nbrs = make([]int32, g.off[n])
	cursor := make([]int32, n)
	copy(cursor, g.off[:n])
	for _, e := range g.edges {
		g.nbrs[cursor[e.A]] = int32(e.B)
		cursor[e.A]++
		g.nbrs[cursor[e.B]] = int32(e.A)
		cursor[e.B]++
	}
	return g, nil
}

// MustBuild is Build that panics on error, for fixtures.
func MustBuild(inst *relation.Instance, fds *fd.Set) *Graph {
	g, err := Build(inst, fds)
	if err != nil {
		panic(err)
	}
	return g
}

// Instance returns the underlying instance.
func (g *Graph) Instance() *relation.Instance { return g.inst }

// FDs returns the dependency set the graph was built from.
func (g *Graph) FDs() *fd.Set { return g.fds }

// Len returns the number of vertices (= tuples).
func (g *Graph) Len() int { return len(g.off) - 1 }

// NumEdges returns the number of conflicts.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns a copy of the conflict list (A < B, sorted by (A, B)).
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// Adjacent reports whether tuples a and b conflict, by binary search
// in a's neighbor row.
func (g *Graph) Adjacent(a, b relation.TupleID) bool {
	if a < 0 || a >= g.Len() {
		return false
	}
	row := g.nbrs[g.off[a]:g.off[a+1]]
	t := int32(b)
	i := sort.Search(len(row), func(k int) bool { return row[k] >= t })
	return i < len(row) && row[i] == t
}

// Neighbors returns n(t): the tuples conflicting with t, as a sorted
// slice view into the CSR array. The caller must not mutate it.
func (g *Graph) Neighbors(t relation.TupleID) []int32 {
	return g.nbrs[g.off[t]:g.off[t+1]]
}

// Degree returns |n(t)|.
func (g *Graph) Degree(t relation.TupleID) int { return int(g.off[t+1] - g.off[t]) }

// IsIndependent reports whether no two tuples in the set conflict,
// i.e. the selected sub-instance is consistent.
func (g *Graph) IsIndependent(s *bitset.Set) bool {
	ok := true
	s.Range(func(t int) bool {
		if t >= g.Len() {
			return true
		}
		for _, u := range g.Neighbors(t) {
			if s.Has(int(u)) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// IsMaximalIndependent reports whether s is a repair: independent and
// not extendable — every tuple outside s conflicts with some tuple
// in s (Definition 1).
func (g *Graph) IsMaximalIndependent(s *bitset.Set) bool {
	if !g.IsIndependent(s) {
		return false
	}
	for t := 0; t < g.Len(); t++ {
		if s.Has(t) {
			continue
		}
		blocked := false
		for _, u := range g.Neighbors(t) {
			if s.Has(int(u)) {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}

// ConflictClosure extends s with every tuple reachable through
// conflict edges — the union of the components touching s.
func (g *Graph) ConflictClosure(s *bitset.Set) *bitset.Set {
	out := bitset.New(g.Len())
	var stack []int
	s.Range(func(t int) bool {
		if t < g.Len() && !out.Has(t) {
			out.Add(t)
			stack = append(stack, t)
		}
		return true
	})
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(t) {
			if !out.Has(int(u)) {
				out.Add(int(u))
				stack = append(stack, int(u))
			}
		}
	}
	return out
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest vertex. Isolated vertices (tuples in no
// conflict) form singleton components. The result is memoized and
// safe for concurrent use; callers must not mutate it.
func (g *Graph) Components() [][]int {
	g.compsOnce.Do(g.computeComponents)
	return g.comps
}

// ComponentOf returns the index (into Components()) of the component
// containing vertex v.
func (g *Graph) ComponentOf(v relation.TupleID) int {
	g.compsOnce.Do(g.computeComponents)
	return int(g.compID[v])
}

// LocalIndexOf returns v's position within its sorted component — the
// component-local index used by the projection machinery.
func (g *Graph) LocalIndexOf(v relation.TupleID) int {
	g.compsOnce.Do(g.computeComponents)
	return int(g.localIdx[v])
}

func (g *Graph) computeComponents() {
	n := g.Len()
	g.compID = make([]int32, n)
	g.localIdx = make([]int32, n)
	for i := range g.compID {
		g.compID[i] = -1
	}
	var comps [][]int
	for v := 0; v < n; v++ {
		if g.compID[v] >= 0 {
			continue
		}
		id := int32(len(comps))
		var members []int
		stack := []int{v}
		g.compID[v] = id
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, t)
			for _, u := range g.Neighbors(t) {
				if g.compID[u] < 0 {
					g.compID[u] = id
					stack = append(stack, int(u))
				}
			}
		}
		sort.Ints(members)
		for i, m := range members {
			g.localIdx[m] = int32(i)
		}
		comps = append(comps, members)
	}
	g.comps = comps
}

// ComponentSignature returns a canonical encoding of the subgraph
// induced by comp (a sorted vertex list, as produced by Components):
// vertices are renumbered to local indices 0..k-1 in sorted order and
// the induced edges are listed in lexicographic order. Two components
// — of the same graph or of different graphs — have equal signatures
// iff the order-preserving renumbering of their vertex lists is a
// graph isomorphism between them. Signatures are therefore stable
// across instances and are the cache key of the memoizing evaluation
// engine.
func (g *Graph) ComponentSignature(comp []int) string {
	var b strings.Builder
	b.Grow(4 + 6*len(comp))
	b.WriteString(strconv.Itoa(len(comp)))
	b.WriteByte(';')
	for i, v := range comp {
		for _, u := range g.Neighbors(v) {
			j := sort.SearchInts(comp, int(u))
			if j < len(comp) && comp[j] == int(u) && j > i {
				b.WriteString(strconv.Itoa(i))
				b.WriteByte('-')
				b.WriteString(strconv.Itoa(j))
				b.WriteByte(';')
			}
		}
	}
	return b.String()
}

// ConflictingVertices returns the set of tuples involved in at least
// one conflict.
func (g *Graph) ConflictingVertices() *bitset.Set {
	s := bitset.New(g.Len())
	for t := 0; t < g.Len(); t++ {
		if g.Degree(t) > 0 {
			s.Add(t)
		}
	}
	return s
}

// DOT renders the graph in Graphviz format with tuple labels, matching
// the paper's figures.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", g.inst.Schema().Name())
	for t := 0; t < g.Len(); t++ {
		fmt.Fprintf(&b, "  t%d [label=%q];\n", t, g.inst.Tuple(t).String())
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  t%d -- t%d [label=%q];\n", e.A, e.B, g.fds.FD(e.FD).String())
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a deterministic textual adjacency listing, used by the
// experiment harness to reproduce Figures 1–4.
func (g *Graph) ASCII() string {
	var b strings.Builder
	for t := 0; t < g.Len(); t++ {
		fmt.Fprintf(&b, "%-28s --", g.inst.Tuple(t).String())
		if g.Degree(t) == 0 {
			b.WriteString(" (no conflicts)")
		}
		for _, u := range g.Neighbors(t) {
			b.WriteByte(' ')
			b.WriteString(g.inst.Tuple(int(u)).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
