// Package conflict implements conflict graphs (§2.1): vertices are the
// tuples of an instance, and two tuples are adjacent iff they conflict
// with respect to some functional dependency. Conflict graphs are the
// compact representation of repairs — the set of all repairs equals
// the set of all maximal independent sets of the graph.
package conflict

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"prefcqa/internal/bitset"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// Graph is the conflict graph of an instance with respect to a set of
// functional dependencies. The vertex set is the dense TupleID range
// [0, N). Edges are labelled with the (first) dependency that creates
// the conflict, for explanation output.
type Graph struct {
	inst      *relation.Instance
	fds       *fd.Set
	adj       []*bitset.Set
	edges     []Edge
	compsOnce sync.Once
	comps     [][]int // connected components, computed lazily
}

// Edge is one conflict: tuples A < B violating dependency FD (index
// into the dependency set).
type Edge struct {
	A, B relation.TupleID
	FD   int
}

// Build computes the conflict graph of the instance. Conflicting pairs
// are discovered per dependency by hashing on the LHS projection, so
// construction is linear in |r| plus the number of conflicts.
func Build(inst *relation.Instance, fds *fd.Set) (*Graph, error) {
	if !inst.Schema().Equal(fds.Schema()) {
		return nil, fmt.Errorf("conflict: instance schema %s does not match dependency schema %s",
			inst.Schema(), fds.Schema())
	}
	n := inst.Len()
	g := &Graph{inst: inst, fds: fds, adj: make([]*bitset.Set, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	seen := make(map[[2]int]bool)
	for _, v := range fds.Violations(inst) {
		p := [2]int{v.T1, v.T2}
		g.adj[v.T1].Add(v.T2)
		g.adj[v.T2].Add(v.T1)
		if !seen[p] {
			seen[p] = true
			g.edges = append(g.edges, Edge{A: v.T1, B: v.T2, FD: v.FD})
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error, for fixtures.
func MustBuild(inst *relation.Instance, fds *fd.Set) *Graph {
	g, err := Build(inst, fds)
	if err != nil {
		panic(err)
	}
	return g
}

// Instance returns the underlying instance.
func (g *Graph) Instance() *relation.Instance { return g.inst }

// FDs returns the dependency set the graph was built from.
func (g *Graph) FDs() *fd.Set { return g.fds }

// Len returns the number of vertices (= tuples).
func (g *Graph) Len() int { return len(g.adj) }

// NumEdges returns the number of conflicts.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns a copy of the conflict list (A < B, deterministic
// order).
func (g *Graph) Edges() []Edge {
	out := append([]Edge(nil), g.edges...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// Adjacent reports whether tuples a and b conflict.
func (g *Graph) Adjacent(a, b relation.TupleID) bool {
	return a >= 0 && a < len(g.adj) && g.adj[a].Has(b)
}

// Neighbors returns n(t): the set of tuples conflicting with t. The
// caller must not mutate the result.
func (g *Graph) Neighbors(t relation.TupleID) *bitset.Set { return g.adj[t] }

// Vicinity returns v(t) = {t} ∪ n(t).
func (g *Graph) Vicinity(t relation.TupleID) *bitset.Set {
	v := g.adj[t].Clone()
	v.Add(t)
	return v
}

// Degree returns |n(t)|.
func (g *Graph) Degree(t relation.TupleID) int { return g.adj[t].Len() }

// IsIndependent reports whether no two tuples in the set conflict,
// i.e. the selected sub-instance is consistent.
func (g *Graph) IsIndependent(s *bitset.Set) bool {
	ok := true
	s.Range(func(t int) bool {
		if g.adj[t].Intersects(s) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsMaximalIndependent reports whether s is a repair: independent and
// not extendable — every tuple outside s conflicts with some tuple
// in s (Definition 1).
func (g *Graph) IsMaximalIndependent(s *bitset.Set) bool {
	if !g.IsIndependent(s) {
		return false
	}
	for t := 0; t < len(g.adj); t++ {
		if !s.Has(t) && !g.adj[t].Intersects(s) {
			return false
		}
	}
	return true
}

// ConflictClosure extends s with every tuple reachable through
// conflict edges — the union of the components touching s.
func (g *Graph) ConflictClosure(s *bitset.Set) *bitset.Set {
	out := bitset.New(len(g.adj))
	var stack []int
	s.Range(func(t int) bool {
		if t < len(g.adj) && !out.Has(t) {
			out.Add(t)
			stack = append(stack, t)
		}
		return true
	})
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.adj[t].Range(func(u int) bool {
			if !out.Has(u) {
				out.Add(u)
				stack = append(stack, u)
			}
			return true
		})
	}
	return out
}

// Components returns the connected components as sorted vertex lists,
// ordered by smallest vertex. Isolated vertices (tuples in no
// conflict) form singleton components. The result is memoized and
// safe for concurrent use; callers must not mutate it.
func (g *Graph) Components() [][]int {
	g.compsOnce.Do(g.computeComponents)
	return g.comps
}

func (g *Graph) computeComponents() {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := len(comps)
		var members []int
		stack := []int{v}
		comp[v] = id
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, t)
			g.adj[t].Range(func(u int) bool {
				if comp[u] < 0 {
					comp[u] = id
					stack = append(stack, u)
				}
				return true
			})
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	g.comps = comps
}

// ComponentSignature returns a canonical encoding of the subgraph
// induced by comp (a sorted vertex list, as produced by Components):
// vertices are renumbered to local indices 0..k-1 in sorted order and
// the induced edges are listed in lexicographic order. Two components
// — of the same graph or of different graphs — have equal signatures
// iff the order-preserving renumbering of their vertex lists is a
// graph isomorphism between them. Signatures are therefore stable
// across instances and are the cache key of the memoizing evaluation
// engine.
func (g *Graph) ComponentSignature(comp []int) string {
	local := make(map[int]int, len(comp))
	for i, v := range comp {
		local[v] = i
	}
	var b strings.Builder
	b.Grow(4 + 6*len(comp))
	b.WriteString(strconv.Itoa(len(comp)))
	b.WriteByte(';')
	for i, v := range comp {
		g.adj[v].Range(func(u int) bool {
			j, in := local[u]
			if in && j > i {
				b.WriteString(strconv.Itoa(i))
				b.WriteByte('-')
				b.WriteString(strconv.Itoa(j))
				b.WriteByte(';')
			}
			return true
		})
	}
	return b.String()
}

// ConflictingVertices returns the set of tuples involved in at least
// one conflict.
func (g *Graph) ConflictingVertices() *bitset.Set {
	s := bitset.New(len(g.adj))
	for t, a := range g.adj {
		if !a.Empty() {
			s.Add(t)
		}
	}
	return s
}

// DOT renders the graph in Graphviz format with tuple labels, matching
// the paper's figures.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", g.inst.Schema().Name())
	for t := 0; t < len(g.adj); t++ {
		fmt.Fprintf(&b, "  t%d [label=%q];\n", t, g.inst.Tuple(t).String())
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  t%d -- t%d [label=%q];\n", e.A, e.B, g.fds.FD(e.FD).String())
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a deterministic textual adjacency listing, used by the
// experiment harness to reproduce Figures 1–4.
func (g *Graph) ASCII() string {
	var b strings.Builder
	for t := 0; t < len(g.adj); t++ {
		fmt.Fprintf(&b, "%-28s --", g.inst.Tuple(t).String())
		if g.adj[t].Empty() {
			b.WriteString(" (no conflicts)")
		}
		g.adj[t].Range(func(u int) bool {
			b.WriteByte(' ')
			b.WriteString(g.inst.Tuple(u).String())
			return true
		})
		b.WriteByte('\n')
	}
	return b.String()
}
