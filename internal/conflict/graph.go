// Package conflict implements conflict graphs (§2.1): vertices are the
// tuples of an instance, and two tuples are adjacent iff they conflict
// with respect to some functional dependency. Conflict graphs are the
// compact representation of repairs — the set of all repairs equals
// the set of all maximal independent sets of the graph.
//
// The graph is stored in CSR (compressed sparse row) form: one flat
// sorted neighbor array indexed by per-vertex offsets. Memory is
// O(n + m) — n tuples, m conflicts — rather than the O(n²) of a dense
// per-vertex bit matrix, which is what the paper's tractability story
// (sparse conflicts, small components) demands at scale.
//
// Graphs support delta maintenance (ApplyDelta, delta.go): a mutation
// produces a new Graph version that shares the immutable CSR base
// arrays with its parent and carries the differences in small overlay
// maps, compacted back into a fresh base once they grow. Connected
// components are maintained incrementally and identified by IDs that
// are immutable value identities: any change to a component retires
// its ID and assigns fresh IDs to the results, so caches keyed by
// (era, component ID) never need explicit invalidation.
package conflict

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"prefcqa/internal/bitset"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// eraCounter issues globally unique base-generation numbers: every
// Build and every compaction gets a fresh era, so (era, component ID)
// pairs never collide across graphs or across compactions.
var eraCounter atomic.Uint64

// Graph is the conflict graph of an instance with respect to a set of
// functional dependencies. The vertex set is the dense TupleID range
// [0, Len()); tombstoned tuples are isolated, component-less vertices.
// Edges are labelled with the (first) dependency that creates the
// conflict, for explanation output.
//
// A Graph value is immutable once published: ApplyDelta returns a new
// version instead of mutating the receiver, and all versions share
// the immutable base arrays. Reads are safe for concurrent use.
type Graph struct {
	inst *relation.Instance
	fds  *fd.Set

	// Immutable base CSR: the neighbors of vertex v are
	// nbrs[off[v]:off[v+1]], sorted ascending. Rebuilt on compaction.
	off  []int32
	nbrs []int32

	// Immutable base edge list, sorted by (A, B) with A < B. Entries
	// whose endpoint has been deleted since the base was built are
	// filtered on read.
	edges []Edge

	numVerts int    // vertex universe size (live + dead + post-base inserts)
	m        int    // live conflict count
	era      uint64 // base generation; fresh after Build and after compaction

	// deadBase are the vertices that were already tombstoned when the
	// base was built (nil when none); vertices deleted since then are
	// recorded in vertComp as -1.
	deadBase *bitset.Set

	// Delta overlay (nil maps on a statically built graph). rows holds
	// full replacement adjacency rows for vertices whose neighborhood
	// changed since the base; extraEdges lists edges absent from the
	// base, sorted by (A, B).
	rows       map[int32][]int32
	extraEdges []Edge

	// Component bookkeeping. The base arrays are computed lazily once
	// and never change; overlay maps carry reassignments. comps[i] has
	// component ID i; overlay components take IDs from nextCompID.
	compsOnce  sync.Once
	comps      [][]int         // base components, sorted members, min-vertex order
	compID     []int32         // base vertex -> component ID (-1: dead at base)
	localIdx   []int32         // base vertex -> position in its sorted component
	compOver   map[int32][]int // component ID -> members; nil members = retired base ID
	vertComp   map[int32]int32 // vertex -> current component ID (-1: deleted)
	nextCompID int32
	compList   atomic.Pointer[componentListing] // cached live listing

	lhs *lhsIndex // writer-side FD partner index, shared along the version chain
}

// componentListing is the materialized list of live components in
// min-vertex order, with the parallel component IDs.
type componentListing struct {
	comps [][]int
	ids   []int32
}

// Edge is one conflict: tuples A < B violating dependency FD (index
// into the dependency set).
type Edge struct {
	A, B relation.TupleID
	FD   int
}

// Build computes the conflict graph of the instance. Conflicting pairs
// are discovered per dependency by hashing on the LHS projection, and
// streamed straight into CSR form, so both time and memory are linear
// in |r| plus the number of conflicts. Tombstoned tuples become
// isolated vertices outside every component.
func Build(inst *relation.Instance, fds *fd.Set) (*Graph, error) {
	if !inst.Schema().Equal(fds.Schema()) {
		return nil, fmt.Errorf("conflict: instance schema %s does not match dependency schema %s",
			inst.Schema(), fds.Schema())
	}
	n := inst.NumIDs()
	g := &Graph{inst: inst, fds: fds, numVerts: n, era: eraCounter.Add(1), deadBase: inst.DeadIDs()}
	// Violations are sorted by (T1, T2, FD); consecutive duplicates are
	// the same pair under a second dependency, which adds no edge.
	viols := fds.Violations(inst)
	for _, v := range viols {
		if k := len(g.edges); k > 0 && g.edges[k-1].A == v.T1 && g.edges[k-1].B == v.T2 {
			continue
		}
		g.edges = append(g.edges, Edge{A: v.T1, B: v.T2, FD: v.FD})
	}
	g.m = len(g.edges)
	g.rebuildCSR()
	return g, nil
}

// rebuildCSR recomputes the base CSR arrays from g.edges (sorted by
// (A, B)) over the current vertex universe.
func (g *Graph) rebuildCSR() {
	n := g.numVerts
	// Counting pass: degree per vertex, then prefix sums into offsets.
	g.off = make([]int32, n+1)
	for _, e := range g.edges {
		g.off[e.A+1]++
		g.off[e.B+1]++
	}
	for v := 0; v < n; v++ {
		g.off[v+1] += g.off[v]
	}
	// Fill pass. Edges are sorted by (A, B) with A < B, so each row
	// receives first its smaller neighbors (ascending) and then its
	// larger ones (ascending): rows come out sorted with no extra sort.
	g.nbrs = make([]int32, g.off[n])
	cursor := make([]int32, n)
	copy(cursor, g.off[:n])
	for _, e := range g.edges {
		g.nbrs[cursor[e.A]] = int32(e.B)
		cursor[e.A]++
		g.nbrs[cursor[e.B]] = int32(e.A)
		cursor[e.B]++
	}
}

// MustBuild is Build that panics on error, for fixtures.
func MustBuild(inst *relation.Instance, fds *fd.Set) *Graph {
	g, err := Build(inst, fds)
	if err != nil {
		panic(err)
	}
	return g
}

// Instance returns the underlying instance (the version the graph was
// built against).
func (g *Graph) Instance() *relation.Instance { return g.inst }

// FDs returns the dependency set the graph was built from.
func (g *Graph) FDs() *fd.Set { return g.fds }

// Len returns the size of the vertex universe (live tuples plus
// tombstones).
func (g *Graph) Len() int { return g.numVerts }

// NumEdges returns the number of live conflicts.
func (g *Graph) NumEdges() int { return g.m }

// Era returns the base-generation number: globally unique per Build
// and per compaction. Together with component IDs it forms a stable
// cache identity for per-component results.
func (g *Graph) Era() uint64 { return g.era }

// Live reports whether v is a live (non-deleted) vertex.
func (g *Graph) Live(v relation.TupleID) bool {
	if v < 0 || v >= g.numVerts {
		return false
	}
	if g.vertComp != nil {
		if c, ok := g.vertComp[int32(v)]; ok {
			return c >= 0
		}
	}
	return g.deadBase == nil || !g.deadBase.Has(v)
}

// LiveSet returns the set of live vertices.
func (g *Graph) LiveSet() *bitset.Set {
	s := bitset.Full(g.numVerts)
	if g.deadBase != nil {
		s.DifferenceWith(g.deadBase)
	}
	for v, c := range g.vertComp {
		if c < 0 {
			s.Remove(int(v))
		}
	}
	return s
}

// Edges returns the live conflicts (A < B, sorted by (A, B)).
func (g *Graph) Edges() []Edge {
	if len(g.extraEdges) == 0 && g.m == len(g.edges) {
		return append([]Edge(nil), g.edges...)
	}
	out := make([]Edge, 0, g.m)
	for _, e := range g.edges {
		if g.Live(e.A) && g.Live(e.B) {
			out = append(out, e)
		}
	}
	out = append(out, g.extraEdges...)
	sortEdges(out)
	return out
}

// Adjacent reports whether tuples a and b conflict, by binary search
// in a's neighbor row.
func (g *Graph) Adjacent(a, b relation.TupleID) bool {
	if a < 0 || a >= g.numVerts {
		return false
	}
	row := g.Neighbors(a)
	t := int32(b)
	i := sort.Search(len(row), func(k int) bool { return row[k] >= t })
	return i < len(row) && row[i] == t
}

// Neighbors returns n(t): the tuples conflicting with t, as a sorted
// slice view. The caller must not mutate it.
func (g *Graph) Neighbors(t relation.TupleID) []int32 {
	if g.rows != nil {
		if r, ok := g.rows[int32(t)]; ok {
			return r
		}
	}
	if t >= len(g.off)-1 {
		return nil // post-base vertex with no conflicts
	}
	return g.nbrs[g.off[t]:g.off[t+1]]
}

// Degree returns |n(t)|.
func (g *Graph) Degree(t relation.TupleID) int { return len(g.Neighbors(t)) }

// IsIndependent reports whether no two tuples in the set conflict,
// i.e. the selected sub-instance is consistent.
func (g *Graph) IsIndependent(s *bitset.Set) bool {
	ok := true
	s.Range(func(t int) bool {
		if t >= g.numVerts {
			return true
		}
		for _, u := range g.Neighbors(t) {
			if s.Has(int(u)) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// IsMaximalIndependent reports whether s is a repair: a subset of the
// live instance, independent, and not extendable — every live tuple
// outside s conflicts with some tuple in s (Definition 1). Sets
// containing tombstoned tuples are never repairs.
func (g *Graph) IsMaximalIndependent(s *bitset.Set) bool {
	live := true
	s.Range(func(v int) bool {
		live = g.Live(v)
		return live
	})
	if !live || !g.IsIndependent(s) {
		return false
	}
	for t := 0; t < g.numVerts; t++ {
		if s.Has(t) || !g.Live(t) {
			continue
		}
		blocked := false
		for _, u := range g.Neighbors(t) {
			if s.Has(int(u)) {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}

// ConflictClosure extends s with every tuple reachable through
// conflict edges — the union of the components touching s.
func (g *Graph) ConflictClosure(s *bitset.Set) *bitset.Set {
	out := bitset.New(g.numVerts)
	var stack []int
	s.Range(func(t int) bool {
		if t < g.numVerts && !out.Has(t) {
			out.Add(t)
			stack = append(stack, t)
		}
		return true
	})
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.Neighbors(t) {
			if !out.Has(int(u)) {
				out.Add(int(u))
				stack = append(stack, int(u))
			}
		}
	}
	return out
}

// ensureComps computes the base component arrays once. On graphs that
// undergo deltas the base is always computed before the first fork,
// so overlay maps never exist while the base is missing.
func (g *Graph) ensureComps() {
	g.compsOnce.Do(g.computeComponents)
}

// Components returns the live connected components as sorted vertex
// lists, ordered by smallest vertex. Isolated live vertices (tuples in
// no conflict) form singleton components; tombstoned tuples belong to
// no component. The result is memoized per graph version and safe for
// concurrent use; callers must not mutate it.
func (g *Graph) Components() [][]int {
	return g.listing().comps
}

// ComponentsWithIDs returns the live components in min-vertex order
// together with their component IDs. Callers must not mutate either
// slice.
func (g *Graph) ComponentsWithIDs() ([][]int, []int32) {
	l := g.listing()
	return l.comps, l.ids
}

// NumComponents returns the number of live components.
func (g *Graph) NumComponents() int { return len(g.listing().comps) }

func (g *Graph) listing() *componentListing {
	if l := g.compList.Load(); l != nil {
		return l
	}
	g.ensureComps()
	var l *componentListing
	if len(g.compOver) == 0 {
		ids := make([]int32, len(g.comps))
		for i := range ids {
			ids[i] = int32(i)
		}
		l = &componentListing{comps: g.comps, ids: ids}
	} else {
		// The base listing is already in min-vertex order; only the
		// (small) overlay needs sorting. A linear merge of the two
		// keeps the rebuild O(C + overlay log overlay) — this runs
		// once per published version on its first full evaluation.
		type entry struct {
			members []int
			id      int32
		}
		over := make([]entry, 0, len(g.compOver))
		for id, c := range g.compOver {
			if c != nil {
				over = append(over, entry{members: c, id: id})
			}
		}
		sort.Slice(over, func(i, j int) bool { return over[i].members[0] < over[j].members[0] })
		n := 0
		for i := range g.comps {
			if _, retired := g.compOver[int32(i)]; !retired {
				n++
			}
		}
		l = &componentListing{comps: make([][]int, 0, n+len(over)), ids: make([]int32, 0, n+len(over))}
		oi := 0
		for i, c := range g.comps {
			if _, retired := g.compOver[int32(i)]; retired {
				continue
			}
			for oi < len(over) && over[oi].members[0] < c[0] {
				l.comps = append(l.comps, over[oi].members)
				l.ids = append(l.ids, over[oi].id)
				oi++
			}
			l.comps = append(l.comps, c)
			l.ids = append(l.ids, int32(i))
		}
		for ; oi < len(over); oi++ {
			l.comps = append(l.comps, over[oi].members)
			l.ids = append(l.ids, over[oi].id)
		}
	}
	g.compList.Store(l)
	return l
}

// ComponentOf returns the ID of the component containing vertex v, or
// -1 if v is tombstoned. IDs are immutable value identities: any
// change to a component retires its ID (see ApplyDelta). On a
// statically built graph IDs coincide with positions in Components().
func (g *Graph) ComponentOf(v relation.TupleID) int {
	g.ensureComps()
	if g.vertComp != nil {
		if c, ok := g.vertComp[int32(v)]; ok {
			return int(c)
		}
	}
	if v < 0 || v >= len(g.compID) {
		return -1
	}
	return int(g.compID[v])
}

// Component returns the sorted member list of the component with the
// given ID, or nil if the ID is retired or unknown. Callers must not
// mutate the result.
func (g *Graph) Component(id int) []int {
	g.ensureComps()
	if g.compOver != nil {
		if m, ok := g.compOver[int32(id)]; ok {
			return m
		}
	}
	if id >= 0 && id < len(g.comps) {
		return g.comps[id]
	}
	return nil
}

// LocalIndexOf returns v's position within its sorted component — the
// component-local index used by the projection machinery — or -1 for
// tombstoned vertices.
func (g *Graph) LocalIndexOf(v relation.TupleID) int {
	g.ensureComps()
	if g.vertComp != nil {
		if cid, ok := g.vertComp[int32(v)]; ok {
			if cid < 0 {
				return -1
			}
			// Reassigned vertices always live in overlay components.
			return sort.SearchInts(g.compOver[cid], v)
		}
	}
	if v < 0 || v >= len(g.localIdx) {
		return -1
	}
	return int(g.localIdx[v])
}

func (g *Graph) computeComponents() {
	n := g.numVerts
	g.compID = make([]int32, n)
	g.localIdx = make([]int32, n)
	for i := range g.compID {
		g.compID[i] = -1
	}
	var comps [][]int
	for v := 0; v < n; v++ {
		if g.compID[v] >= 0 || (g.deadBase != nil && g.deadBase.Has(v)) {
			continue
		}
		id := int32(len(comps))
		var members []int
		stack := []int{v}
		g.compID[v] = id
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, t)
			for _, u := range g.Neighbors(t) {
				if g.compID[u] < 0 {
					g.compID[u] = id
					stack = append(stack, int(u))
				}
			}
		}
		sort.Ints(members)
		for i, m := range members {
			g.localIdx[m] = int32(i)
		}
		comps = append(comps, members)
	}
	g.comps = comps
	g.nextCompID = int32(len(comps))
}

// ComponentSignature returns a canonical encoding of the subgraph
// induced by comp (a sorted vertex list, as produced by Components):
// vertices are renumbered to local indices 0..k-1 in sorted order and
// the induced edges are listed in lexicographic order. Two components
// — of the same graph or of different graphs — have equal signatures
// iff the order-preserving renumbering of their vertex lists is a
// graph isomorphism between them. Signatures are therefore stable
// across instances and are the cache key of the memoizing evaluation
// engine.
func (g *Graph) ComponentSignature(comp []int) string {
	var b strings.Builder
	b.Grow(4 + 6*len(comp))
	b.WriteString(strconv.Itoa(len(comp)))
	b.WriteByte(';')
	for i, v := range comp {
		for _, u := range g.Neighbors(v) {
			j := sort.SearchInts(comp, int(u))
			if j < len(comp) && comp[j] == int(u) && j > i {
				b.WriteString(strconv.Itoa(i))
				b.WriteByte('-')
				b.WriteString(strconv.Itoa(j))
				b.WriteByte(';')
			}
		}
	}
	return b.String()
}

// ConflictingVertices returns the set of live tuples involved in at
// least one conflict.
func (g *Graph) ConflictingVertices() *bitset.Set {
	s := bitset.New(g.numVerts)
	for t := 0; t < g.numVerts; t++ {
		if g.Degree(t) > 0 {
			s.Add(t)
		}
	}
	return s
}

// DOT renders the graph in Graphviz format with tuple labels, matching
// the paper's figures.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n", g.inst.Schema().Name())
	for t := 0; t < g.numVerts; t++ {
		if !g.Live(t) {
			continue
		}
		fmt.Fprintf(&b, "  t%d [label=%q];\n", t, g.inst.Tuple(t).String())
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  t%d -- t%d [label=%q];\n", e.A, e.B, g.fds.FD(e.FD).String())
	}
	b.WriteString("}\n")
	return b.String()
}

// ASCII renders a deterministic textual adjacency listing, used by the
// experiment harness to reproduce Figures 1–4.
func (g *Graph) ASCII() string {
	var b strings.Builder
	for t := 0; t < g.numVerts; t++ {
		if !g.Live(t) {
			continue
		}
		fmt.Fprintf(&b, "%-28s --", g.inst.Tuple(t).String())
		if g.Degree(t) == 0 {
			b.WriteString(" (no conflicts)")
		}
		for _, u := range g.Neighbors(t) {
			b.WriteByte(' ')
			b.WriteString(g.inst.Tuple(int(u)).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
