package conflict

import (
	"strings"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// pairsInstance builds the instance r_n of Example 4:
// {(0,0),(0,1),...,(n-1,0),(n-1,1)} with A -> B.
func pairsInstance(n int) (*relation.Instance, *fd.Set) {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(i, 0)
		inst.MustInsert(i, 1)
	}
	return inst, fd.MustParseSet(s, "A -> B")
}

func TestBuildSchemaMismatch(t *testing.T) {
	inst, _ := pairsInstance(1)
	other := relation.MustSchema("S", relation.IntAttr("X"), relation.IntAttr("Y"))
	if _, err := Build(inst, fd.MustParseSet(other, "X -> Y")); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}

func TestFigure1PairsGraph(t *testing.T) {
	// Figure 1: r_4 under A -> B is a perfect matching of 4 edges.
	inst, fds := pairsInstance(4)
	g := MustBuild(inst, fds)
	if g.Len() != 8 {
		t.Fatalf("Len = %d, want 8", g.Len())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	for _, c := range comps {
		if len(c) != 2 {
			t.Fatalf("component %v should be an edge", c)
		}
		if !g.Adjacent(c[0], c[1]) {
			t.Fatalf("component %v not connected", c)
		}
	}
	// Each vertex has degree 1.
	for v := 0; v < g.Len(); v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("degree(%d) = %d, want 1", v, g.Degree(v))
		}
	}
}

func TestExample1MgrGraph(t *testing.T) {
	s := relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
	fds := fd.MustParseSet(s, "Dept -> Name,Salary,Reports", "Name -> Dept,Salary,Reports")
	r := relation.NewInstance(s)
	mary := r.MustInsert("Mary", "R&D", 40, 3)
	john := r.MustInsert("John", "R&D", 10, 2)
	maryIT := r.MustInsert("Mary", "IT", 20, 1)
	johnPR := r.MustInsert("John", "PR", 30, 4)

	g := MustBuild(r, fds)
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	wantAdj := [][2]relation.TupleID{{mary, john}, {mary, maryIT}, {john, johnPR}}
	for _, p := range wantAdj {
		if !g.Adjacent(p[0], p[1]) || !g.Adjacent(p[1], p[0]) {
			t.Errorf("expected conflict %v", p)
		}
	}
	if g.Adjacent(maryIT, johnPR) {
		t.Error("maryIT and johnPR should not conflict")
	}
	// One component: the conflict path maryIT - mary - john - johnPR.
	if comps := g.Components(); len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("components = %v", comps)
	}
}

func TestEdgeLabels(t *testing.T) {
	inst, fds := pairsInstance(2)
	g := MustBuild(inst, fds)
	for _, e := range g.Edges() {
		if e.FD != 0 {
			t.Fatalf("edge %+v should be labelled with FD 0", e)
		}
		if e.A >= e.B {
			t.Fatalf("edge %+v not normalized", e)
		}
	}
}

func TestNeighbors(t *testing.T) {
	// Star: tc conflicts ta and tb (Example 8 shape).
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	ta := inst.MustInsert(1, 1, 1)
	tb := inst.MustInsert(1, 1, 2)
	tc := inst.MustInsert(1, 2, 3)
	g := MustBuild(inst, fd.MustParseSet(s, "A -> B"))

	got := g.Neighbors(tc)
	if len(got) != 2 || int(got[0]) != ta || int(got[1]) != tb {
		t.Fatalf("n(tc) = %v, want sorted [%d %d]", got, ta, tb)
	}
	if g.Adjacent(ta, tb) {
		t.Fatal("duplicates w.r.t. the FD must not be adjacent")
	}
	// Neighbor rows are sorted — Adjacent's binary-search invariant.
	for v := 0; v < g.Len(); v++ {
		row := g.Neighbors(v)
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("row %d not strictly sorted: %v", v, row)
			}
		}
	}
}

func TestIndependence(t *testing.T) {
	inst, fds := pairsInstance(2)
	g := MustBuild(inst, fds)
	// IDs: 0=(0,0), 1=(0,1), 2=(1,0), 3=(1,1).
	if !g.IsIndependent(bitset.FromSlice([]int{0, 2})) {
		t.Error("{(0,0),(1,0)} should be independent")
	}
	if g.IsIndependent(bitset.FromSlice([]int{0, 1})) {
		t.Error("{(0,0),(0,1)} conflicts")
	}
	if !g.IsMaximalIndependent(bitset.FromSlice([]int{0, 2})) {
		t.Error("{0,2} should be maximal")
	}
	if g.IsMaximalIndependent(bitset.FromSlice([]int{0})) {
		t.Error("{0} is not maximal (2 and 3 can be added)")
	}
	var empty bitset.Set
	if g.IsMaximalIndependent(&empty) {
		t.Error("empty set is not maximal in a nonempty graph")
	}
}

func TestConsistentInstanceGraph(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1)
	inst.MustInsert(2, 2)
	g := MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	if g.NumEdges() != 0 {
		t.Fatal("consistent instance should have no conflicts")
	}
	// The only repair of a consistent relation is the relation itself.
	if !g.IsMaximalIndependent(inst.AllIDs()) {
		t.Fatal("full instance should be the unique repair")
	}
	if got := g.ConflictingVertices(); !got.Empty() {
		t.Fatalf("ConflictingVertices = %v", got)
	}
}

func TestConflictClosure(t *testing.T) {
	inst, fds := pairsInstance(3)
	g := MustBuild(inst, fds)
	// Closure of {(0,0)} is its pair component {0,1}.
	got := g.ConflictClosure(bitset.FromSlice([]int{0}))
	if !got.Equal(bitset.FromSlice([]int{0, 1})) {
		t.Fatalf("closure = %v", got)
	}
	got = g.ConflictClosure(bitset.FromSlice([]int{0, 4}))
	if !got.Equal(bitset.FromSlice([]int{0, 1, 4, 5})) {
		t.Fatalf("closure = %v", got)
	}
}

func TestIsolatedVertexComponent(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1)
	inst.MustInsert(1, 2)
	inst.MustInsert(9, 9) // isolated
	g := MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
}

func TestRendering(t *testing.T) {
	inst, fds := pairsInstance(2)
	g := MustBuild(inst, fds)
	dot := g.DOT()
	if !strings.Contains(dot, "graph R {") || !strings.Contains(dot, "t0 -- t1") {
		t.Fatalf("DOT = %s", dot)
	}
	if !strings.Contains(dot, "A -> B") {
		t.Fatal("DOT should label edges with the FD")
	}
	ascii := g.ASCII()
	if !strings.Contains(ascii, "(0, 0)") {
		t.Fatalf("ASCII = %s", ascii)
	}
	// Isolated vertices are marked.
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	lone := relation.NewInstance(s)
	lone.MustInsert(1, 1)
	lg := MustBuild(lone, fd.MustParseSet(s, "A -> B"))
	if !strings.Contains(lg.ASCII(), "(no conflicts)") {
		t.Fatal("ASCII should mark isolated tuples")
	}
}

func TestComponentsCached(t *testing.T) {
	inst, fds := pairsInstance(4)
	g := MustBuild(inst, fds)
	c1 := g.Components()
	c2 := g.Components()
	if &c1[0] != &c2[0] {
		t.Fatal("Components should be cached")
	}
}

func BenchmarkBuildPairs(b *testing.B) {
	inst, fds := pairsInstance(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(inst, fds); err != nil {
			b.Fatal(err)
		}
	}
}
