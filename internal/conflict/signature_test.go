package conflict

import (
	"testing"

	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// TestComponentSignatureStable: structurally identical components get
// equal signatures regardless of their global tuple IDs, and
// different structures get different signatures.
func TestComponentSignatureStable(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
	inst := relation.NewInstance(s)
	// Component 0: a 3-clique (IDs 0-2); component 1: a single edge
	// (IDs 3-4); component 2: another 3-clique (IDs 5-7); component 3:
	// an isolated tuple (ID 8).
	for j := 0; j < 3; j++ {
		inst.MustInsert(1, j)
	}
	inst.MustInsert(2, 0)
	inst.MustInsert(2, 1)
	for j := 0; j < 3; j++ {
		inst.MustInsert(3, j)
	}
	inst.MustInsert(4, 0)
	g := MustBuild(inst, fd.MustParseSet(s, "K -> V"))
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	sig := make([]string, len(comps))
	for i, c := range comps {
		sig[i] = g.ComponentSignature(c)
	}
	if sig[0] != sig[2] {
		t.Errorf("isomorphic 3-cliques: %q != %q", sig[0], sig[2])
	}
	if sig[0] == sig[1] || sig[1] == sig[3] || sig[0] == sig[3] {
		t.Errorf("distinct structures share a signature: %q %q %q", sig[0], sig[1], sig[3])
	}
	// The signature must be expressed in local indices: the 2nd clique
	// (global IDs 5-7) encodes the same "0-1;0-2;1-2" edge list.
	if want := "3;0-1;0-2;1-2;"; sig[2] != want {
		t.Errorf("signature = %q, want %q", sig[2], want)
	}
}

// TestComponentsConcurrent: the lazy component memoization is safe
// under concurrent first use (run with -race).
func TestComponentsConcurrent(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
	inst := relation.NewInstance(s)
	for i := 0; i < 50; i++ {
		inst.MustInsert(i, 0)
		inst.MustInsert(i, 1)
	}
	g := MustBuild(inst, fd.MustParseSet(s, "K -> V"))
	done := make(chan [][]int, 8)
	for w := 0; w < 8; w++ {
		go func() { done <- g.Components() }()
	}
	first := <-done
	for w := 1; w < 8; w++ {
		got := <-done
		if len(got) != len(first) {
			t.Fatalf("racy Components(): %d vs %d components", len(got), len(first))
		}
	}
}
