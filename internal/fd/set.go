package fd

import (
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/relation"
)

// Set is a set of functional dependencies over one schema.
type Set struct {
	schema *relation.Schema
	fds    []FD
}

// NewSet builds a set over the schema; all FDs must share it.
func NewSet(schema *relation.Schema, fds ...FD) (*Set, error) {
	s := &Set{schema: schema}
	for _, f := range fds {
		if err := s.Add(f); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ParseSet parses a list of "X -> Y" strings over the schema.
func ParseSet(schema *relation.Schema, specs ...string) (*Set, error) {
	s := &Set{schema: schema}
	for _, spec := range specs {
		f, err := Parse(schema, spec)
		if err != nil {
			return nil, err
		}
		if err := s.Add(f); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustParseSet is ParseSet that panics on error, for fixtures.
func MustParseSet(schema *relation.Schema, specs ...string) *Set {
	s, err := ParseSet(schema, specs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Add appends an FD; duplicates are ignored.
func (s *Set) Add(f FD) error {
	if !f.schema.Equal(s.schema) {
		return fmt.Errorf("fd: dependency %s is over schema %s, set is over %s", f, f.schema, s.schema)
	}
	for _, g := range s.fds {
		if f.Equal(g) {
			return nil
		}
	}
	s.fds = append(s.fds, f)
	return nil
}

// Schema returns the common schema.
func (s *Set) Schema() *relation.Schema { return s.schema }

// Len returns the number of dependencies.
func (s *Set) Len() int { return len(s.fds) }

// FD returns the i-th dependency.
func (s *Set) FD(i int) FD { return s.fds[i] }

// All returns a copy of the dependency list.
func (s *Set) All() []FD { return append([]FD(nil), s.fds...) }

// Conflicts reports whether two tuples conflict with respect to some
// dependency in the set, and returns the index of the first witness.
func (s *Set) Conflicts(t, u relation.Tuple) (int, bool) {
	for i, f := range s.fds {
		if f.Conflicts(t, u) {
			return i, true
		}
	}
	return -1, false
}

// Consistent reports whether the instance satisfies every dependency.
func (s *Set) Consistent(r *relation.Instance) bool {
	return len(s.Violations(r)) == 0
}

// Violation is a pair of conflicting tuples and the dependency they
// violate.
type Violation struct {
	T1, T2 relation.TupleID
	FD     int // index into the set
}

// Violations lists all conflicting tuple pairs (T1 < T2) in the
// instance, one entry per violated dependency. Pairs are found by
// hashing on the LHS projection, so the cost is proportional to the
// number of conflicts rather than all tuple pairs.
func (s *Set) Violations(r *relation.Instance) []Violation {
	var out []Violation
	var buf []byte
	for fi, f := range s.fds {
		groups := make(map[string][]relation.TupleID)
		r.RangeIDs(func(id relation.TupleID) bool {
			buf = r.AppendProjectionKey(buf[:0], id, f.lhs)
			groups[string(buf)] = append(groups[string(buf)], id)
			return true
		})
		for _, ids := range groups {
			if len(ids) < 2 {
				continue
			}
			// Within an LHS group, tuples conflict iff they differ on
			// the RHS projection; partition by RHS value.
			byRHS := make(map[string][]relation.TupleID)
			var order []string
			for _, id := range ids {
				buf = r.AppendProjectionKey(buf[:0], id, f.rhs)
				k := string(buf)
				if _, seen := byRHS[k]; !seen {
					order = append(order, k)
				}
				byRHS[k] = append(byRHS[k], id)
			}
			for i := 0; i < len(order); i++ {
				for j := i + 1; j < len(order); j++ {
					for _, a := range byRHS[order[i]] {
						for _, b := range byRHS[order[j]] {
							t1, t2 := a, b
							if t1 > t2 {
								t1, t2 = t2, t1
							}
							out = append(out, Violation{T1: t1, T2: t2, FD: fi})
						}
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.T1 != b.T1 {
			return a.T1 < b.T1
		}
		if a.T2 != b.T2 {
			return a.T2 < b.T2
		}
		return a.FD < b.FD
	})
	return out
}

// Closure computes the attribute closure of attrs under the set
// (Armstrong axioms fixpoint).
func (s *Set) Closure(attrs []int) []int {
	in := make([]bool, s.schema.Arity())
	for _, a := range attrs {
		if a >= 0 && a < len(in) {
			in[a] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			all := true
			for _, a := range f.lhs {
				if !in[a] {
					all = false
					break
				}
			}
			if !all {
				continue
			}
			for _, b := range f.rhs {
				if !in[b] {
					in[b] = true
					changed = true
				}
			}
		}
	}
	var out []int
	for a, ok := range in {
		if ok {
			out = append(out, a)
		}
	}
	return out
}

// IsSuperkey reports whether the attribute set determines the whole
// schema.
func (s *Set) IsSuperkey(attrs []int) bool {
	return len(s.Closure(attrs)) == s.schema.Arity()
}

// Keys enumerates all minimal keys of the schema under the set.
// Exponential in arity; arities here are small.
func (s *Set) Keys() [][]int {
	n := s.schema.Arity()
	var keys [][]int
	// Enumerate candidate subsets in order of increasing size so that
	// minimality can be checked against previously found keys.
	subsets := make([][]int, 0, 1<<uint(n))
	for mask := 1; mask < 1<<uint(n); mask++ {
		var sub []int
		for a := 0; a < n; a++ {
			if mask&(1<<uint(a)) != 0 {
				sub = append(sub, a)
			}
		}
		subsets = append(subsets, sub)
	}
	sort.Slice(subsets, func(i, j int) bool { return len(subsets[i]) < len(subsets[j]) })
	for _, sub := range subsets {
		if !s.IsSuperkey(sub) {
			continue
		}
		minimal := true
		for _, k := range keys {
			if subsetOf(k, sub) {
				minimal = false
				break
			}
		}
		if minimal {
			keys = append(keys, sub)
		}
	}
	return keys
}

func subsetOf(a, b []int) bool {
	in := make(map[int]bool, len(b))
	for _, x := range b {
		in[x] = true
	}
	for _, x := range a {
		if !in[x] {
			return false
		}
	}
	return true
}

// IsBCNF reports whether every dependency's LHS is a superkey — the
// normal-form condition the paper's future-work section singles out
// (after [2]).
func (s *Set) IsBCNF() bool {
	for _, f := range s.fds {
		if !s.IsSuperkey(f.lhs) {
			return false
		}
	}
	return true
}

// Implies reports whether the set logically implies f (via closure).
func (s *Set) Implies(f FD) bool {
	cl := s.Closure(f.lhs)
	in := make(map[int]bool, len(cl))
	for _, a := range cl {
		in[a] = true
	}
	for _, b := range f.rhs {
		if !in[b] {
			return false
		}
	}
	return true
}

// Equivalent reports whether two sets over the same schema imply each
// other.
func (s *Set) Equivalent(t *Set) bool {
	if !s.schema.Equal(t.schema) {
		return false
	}
	for _, f := range s.fds {
		if !t.Implies(f) {
			return false
		}
	}
	for _, f := range t.fds {
		if !s.Implies(f) {
			return false
		}
	}
	return true
}

// MinimalCover returns an equivalent set with singleton RHSs, no
// redundant dependencies, and no redundant LHS attributes.
func (s *Set) MinimalCover() *Set {
	// Split RHSs.
	work := &Set{schema: s.schema}
	for _, f := range s.fds {
		for _, b := range f.rhs {
			g, err := New(s.schema, f.lhs, []int{b})
			if err == nil {
				work.Add(g) //nolint:errcheck // same schema
			}
		}
	}
	// Remove extraneous LHS attributes.
	for i := 0; i < len(work.fds); i++ {
		f := work.fds[i]
		for len(f.lhs) > 1 {
			reduced := false
			for k := range f.lhs {
				trial := append(append([]int(nil), f.lhs[:k]...), f.lhs[k+1:]...)
				g, err := New(s.schema, trial, f.rhs)
				if err == nil && work.Implies(g) {
					f = g
					work.fds[i] = g
					reduced = true
					break
				}
			}
			if !reduced {
				break
			}
		}
	}
	// Remove redundant dependencies.
	for i := 0; i < len(work.fds); {
		rest := &Set{schema: s.schema}
		for j, g := range work.fds {
			if j != i {
				rest.Add(g) //nolint:errcheck // same schema
			}
		}
		if rest.Implies(work.fds[i]) {
			work.fds = append(work.fds[:i], work.fds[i+1:]...)
		} else {
			i++
		}
	}
	return work
}

// String lists the dependencies separated by "; ".
func (s *Set) String() string {
	parts := make([]string, len(s.fds))
	for i, f := range s.fds {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}
