// Package fd implements functional dependencies over a relation
// schema: representation, parsing, violation detection (the conflicts
// of §2.1), and the classical dependency-theory toolbox (attribute
// closure, keys, BCNF test, minimal cover) used to classify workloads
// (one key vs one FD vs many FDs with mutual conflicts — the
// "possible applications" column of Fig. 5).
package fd

import (
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/relation"
)

// FD is a functional dependency X → Y with X, Y given as attribute
// positions of a fixed schema. Both sides are kept sorted and
// duplicate-free; Y is stored with X removed (trivial parts carry no
// conflict information).
type FD struct {
	schema *relation.Schema
	lhs    []int
	rhs    []int
}

// New builds an FD from attribute positions. The right-hand side is
// normalized by removing attributes that also appear on the left;
// a dependency whose normalized RHS is empty is rejected as trivial.
func New(schema *relation.Schema, lhs, rhs []int) (FD, error) {
	if schema == nil {
		return FD{}, fmt.Errorf("fd: nil schema")
	}
	check := func(side string, idx []int) error {
		for _, i := range idx {
			if i < 0 || i >= schema.Arity() {
				return fmt.Errorf("fd: %s attribute index %d out of range for %s", side, i, schema)
			}
		}
		return nil
	}
	if err := check("lhs", lhs); err != nil {
		return FD{}, err
	}
	if err := check("rhs", rhs); err != nil {
		return FD{}, err
	}
	l := normalize(lhs)
	inL := make(map[int]bool, len(l))
	for _, i := range l {
		inL[i] = true
	}
	var r []int
	for _, i := range normalize(rhs) {
		if !inL[i] {
			r = append(r, i)
		}
	}
	if len(r) == 0 {
		return FD{}, fmt.Errorf("fd: trivial dependency (RHS ⊆ LHS)")
	}
	return FD{schema: schema, lhs: l, rhs: r}, nil
}

// NewByName builds an FD from attribute names.
func NewByName(schema *relation.Schema, lhs, rhs []string) (FD, error) {
	l, err := schema.Indexes(lhs)
	if err != nil {
		return FD{}, err
	}
	r, err := schema.Indexes(rhs)
	if err != nil {
		return FD{}, err
	}
	return New(schema, l, r)
}

func normalize(idx []int) []int {
	out := append([]int(nil), idx...)
	sort.Ints(out)
	dedup := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

// Parse reads "A, B -> C D" (commas and/or spaces separate attribute
// names; "→" is accepted for "->").
func Parse(schema *relation.Schema, s string) (FD, error) {
	norm := strings.ReplaceAll(s, "→", "->")
	left, right, ok := strings.Cut(norm, "->")
	if !ok {
		return FD{}, fmt.Errorf("fd: %q: missing '->'", s)
	}
	lhs := splitNames(left)
	rhs := splitNames(right)
	if len(lhs) == 0 {
		return FD{}, fmt.Errorf("fd: %q: empty left-hand side", s)
	}
	if len(rhs) == 0 {
		return FD{}, fmt.Errorf("fd: %q: empty right-hand side", s)
	}
	return NewByName(schema, lhs, rhs)
}

// MustParse is Parse that panics on error, for fixtures.
func MustParse(schema *relation.Schema, s string) FD {
	f, err := Parse(schema, s)
	if err != nil {
		panic(err)
	}
	return f
}

func splitNames(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	})
}

// Schema returns the schema the FD is defined over.
func (f FD) Schema() *relation.Schema { return f.schema }

// LHS returns the left-hand side attribute positions (sorted copy).
func (f FD) LHS() []int { return append([]int(nil), f.lhs...) }

// RHS returns the right-hand side attribute positions (sorted copy).
func (f FD) RHS() []int { return append([]int(nil), f.rhs...) }

// LHSKey returns the canonical key of t's LHS projection — the hash
// bucket two tuples must share to possibly conflict under f. Used by
// the incremental conflict-partner index.
func (f FD) LHSKey(t relation.Tuple) string {
	b := make([]byte, 0, 16*len(f.lhs))
	for _, i := range f.lhs {
		b = t[i].AppendKey(b)
	}
	return string(b)
}

// AppendLHSKeyAt appends the LHS projection key of tuple id of r to b,
// reading the columns directly — LHSKey without materializing the
// tuple, for the bulk conflict-build and delta paths.
func (f FD) AppendLHSKeyAt(b []byte, r *relation.Instance, id relation.TupleID) []byte {
	return r.AppendProjectionKey(b, id, f.lhs)
}

// IsKeyDependency reports whether the FD is a key dependency: X → U
// where U is all attributes outside X (so conflicting tuples can never
// be duplicates with respect to it).
func (f FD) IsKeyDependency() bool {
	return len(f.lhs)+len(f.rhs) == f.schema.Arity()
}

// Conflicts reports whether tuples t and u conflict with respect to f:
// they agree on X and differ on some attribute of Y (§2.1).
func (f FD) Conflicts(t, u relation.Tuple) bool {
	for _, i := range f.lhs {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	for _, i := range f.rhs {
		if !t[i].Equal(u[i]) {
			return true
		}
	}
	return false
}

// ConflictsAt is Conflicts over two tuples of r addressed by ID,
// comparing column cells directly without materializing either tuple.
func (f FD) ConflictsAt(r *relation.Instance, a, b relation.TupleID) bool {
	for _, i := range f.lhs {
		if !r.ValueAt(a, i).Equal(r.ValueAt(b, i)) {
			return false
		}
	}
	for _, i := range f.rhs {
		if !r.ValueAt(a, i).Equal(r.ValueAt(b, i)) {
			return true
		}
	}
	return false
}

// Equal reports whether two FDs have the same sides over the same
// schema.
func (f FD) Equal(g FD) bool {
	if !f.schema.Equal(g.schema) || len(f.lhs) != len(g.lhs) || len(f.rhs) != len(g.rhs) {
		return false
	}
	for i := range f.lhs {
		if f.lhs[i] != g.lhs[i] {
			return false
		}
	}
	for i := range f.rhs {
		if f.rhs[i] != g.rhs[i] {
			return false
		}
	}
	return true
}

// String renders "A,B -> C,D" using attribute names.
func (f FD) String() string {
	name := func(idx []int) string {
		parts := make([]string, len(idx))
		for i, j := range idx {
			parts[i] = f.schema.Attr(j).Name
		}
		return strings.Join(parts, ",")
	}
	return name(f.lhs) + " -> " + name(f.rhs)
}
