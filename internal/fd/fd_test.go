package fd

import (
	"testing"

	"prefcqa/internal/relation"
)

func mgrSchema() *relation.Schema {
	return relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
}

func TestParse(t *testing.T) {
	s := mgrSchema()
	f, err := Parse(s, "Dept -> Name, Salary Reports")
	if err != nil {
		t.Fatal(err)
	}
	if got := f.String(); got != "Dept -> Name,Salary,Reports" {
		t.Fatalf("String = %q", got)
	}
	if got, _ := Parse(s, "Name → Dept"); got.String() != "Name -> Dept" {
		t.Fatalf("unicode arrow: %q", got.String())
	}
}

func TestParseErrors(t *testing.T) {
	s := mgrSchema()
	for _, bad := range []string{
		"Dept Name",         // no arrow
		"-> Name",           // empty LHS
		"Dept ->",           // empty RHS
		"Nope -> Name",      // unknown attribute
		"Dept -> Dept",      // trivial
		"Dept,Name -> Name", // trivial after normalization
	} {
		if _, err := Parse(s, bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestNewNormalization(t *testing.T) {
	s := mgrSchema()
	f, err := New(s, []int{1, 1, 0}, []int{0, 2}) // Name,Dept -> Name,Salary
	if err != nil {
		t.Fatal(err)
	}
	if got := f.LHS(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("LHS = %v", got)
	}
	// Name is in the LHS so it is dropped from the RHS.
	if got := f.RHS(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("RHS = %v", got)
	}
	if _, err := New(s, []int{0}, []int{7}); err == nil {
		t.Fatal("out-of-range RHS should fail")
	}
	if _, err := New(s, []int{-1}, []int{1}); err == nil {
		t.Fatal("negative LHS should fail")
	}
	if _, err := New(nil, []int{0}, []int{1}); err == nil {
		t.Fatal("nil schema should fail")
	}
}

func TestIsKeyDependency(t *testing.T) {
	s := mgrSchema()
	if !MustParse(s, "Name -> Dept,Salary,Reports").IsKeyDependency() {
		t.Error("full-RHS FD should be a key dependency")
	}
	if MustParse(s, "Name -> Dept").IsKeyDependency() {
		t.Error("partial FD should not be a key dependency")
	}
}

func TestConflicts(t *testing.T) {
	s := mgrSchema()
	fd1 := MustParse(s, "Dept -> Name,Salary,Reports")
	fd2 := MustParse(s, "Name -> Dept,Salary,Reports")

	mary := relation.Tuple{relation.Name("Mary"), relation.Name("R&D"), relation.Int(40), relation.Int(3)}
	john := relation.Tuple{relation.Name("John"), relation.Name("R&D"), relation.Int(10), relation.Int(2)}
	maryIT := relation.Tuple{relation.Name("Mary"), relation.Name("IT"), relation.Int(20), relation.Int(1)}

	if !fd1.Conflicts(mary, john) {
		t.Error("Mary/John should conflict on fd1 (same Dept)")
	}
	if fd2.Conflicts(mary, john) {
		t.Error("Mary/John should not conflict on fd2 (different Name)")
	}
	if !fd2.Conflicts(mary, maryIT) {
		t.Error("Mary/MaryIT should conflict on fd2 (same Name)")
	}
	if fd1.Conflicts(mary, maryIT) {
		t.Error("Mary/MaryIT should not conflict on fd1 (different Dept)")
	}
	if fd1.Conflicts(mary, mary) {
		t.Error("a tuple never conflicts with itself")
	}
}

func TestDuplicatesDoNotConflict(t *testing.T) {
	// Example 8: ta=(1,1,1), tb=(1,1,2) agree on A and B, so they are
	// duplicates w.r.t. A->B and must not conflict.
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	f := MustParse(s, "A -> B")
	ta := relation.Tuple{relation.Int(1), relation.Int(1), relation.Int(1)}
	tb := relation.Tuple{relation.Int(1), relation.Int(1), relation.Int(2)}
	tc := relation.Tuple{relation.Int(1), relation.Int(2), relation.Int(3)}
	if f.Conflicts(ta, tb) {
		t.Error("duplicates w.r.t. A->B must not conflict")
	}
	if !f.Conflicts(ta, tc) || !f.Conflicts(tb, tc) {
		t.Error("ta,tc and tb,tc should conflict")
	}
}

func TestViolationsExample1(t *testing.T) {
	// Example 1: the integrated Mgr instance has exactly 3 conflicts.
	s := mgrSchema()
	set := MustParseSet(s,
		"Dept -> Name,Salary,Reports",
		"Name -> Dept,Salary,Reports")
	r := relation.NewInstance(s)
	mary := r.MustInsert("Mary", "R&D", 40, 3)
	john := r.MustInsert("John", "R&D", 10, 2)
	maryIT := r.MustInsert("Mary", "IT", 20, 1)
	johnPR := r.MustInsert("John", "PR", 30, 4)

	vs := set.Violations(r)
	if len(vs) != 3 {
		t.Fatalf("violations = %d, want 3: %+v", len(vs), vs)
	}
	type pair struct{ a, b relation.TupleID }
	want := map[pair]bool{
		{mary, john}:   true, // fd1
		{mary, maryIT}: true, // fd2
		{john, johnPR}: true, // fd2
	}
	for _, v := range vs {
		if !want[pair{v.T1, v.T2}] {
			t.Errorf("unexpected violation %+v", v)
		}
	}
	if set.Consistent(r) {
		t.Error("instance should be inconsistent")
	}
}

func TestViolationsBruteForceAgreement(t *testing.T) {
	// Hash-join violation detection must agree with the O(n²) check.
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	set := MustParseSet(s, "A -> B", "B -> C")
	r := relation.NewInstance(s)
	// Deterministic pseudo-random instance with many collisions.
	x := int64(1)
	for i := 0; i < 60; i++ {
		x = (x*1103515245 + 12345) % (1 << 31)
		r.MustInsert(int(x%4), int((x/7)%3), int((x/11)%3))
	}
	got := map[[2]int]bool{}
	for _, v := range set.Violations(r) {
		got[[2]int{v.T1, v.T2}] = true
	}
	want := map[[2]int]bool{}
	r.Range(func(i relation.TupleID, ti relation.Tuple) bool {
		r.Range(func(j relation.TupleID, tj relation.Tuple) bool {
			if i < j {
				if _, ok := set.Conflicts(ti, tj); ok {
					want[[2]int{i, j}] = true
				}
			}
			return true
		})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("hash-join found %d pairs, brute force %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair %v", p)
		}
	}
}

func TestConsistentInstance(t *testing.T) {
	s := mgrSchema()
	set := MustParseSet(s, "Name -> Dept,Salary,Reports")
	r := relation.NewInstance(s)
	r.MustInsert("Mary", "R&D", 40, 3)
	r.MustInsert("John", "PR", 30, 4)
	if !set.Consistent(r) {
		t.Fatal("instance should be consistent")
	}
	if vs := set.Violations(r); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestSetAddDeduplicates(t *testing.T) {
	s := mgrSchema()
	set, err := NewSet(s, MustParse(s, "Name -> Dept"), MustParse(s, "Name -> Dept"))
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("Len = %d, want 1", set.Len())
	}
	other := relation.MustSchema("Other", relation.NameAttr("X"), relation.NameAttr("Y"))
	if err := set.Add(MustParse(other, "X -> Y")); err == nil {
		t.Fatal("adding FD over a different schema should fail")
	}
}
