package fd

import (
	"math/rand"
	"testing"

	"prefcqa/internal/relation"
)

func abcdSchema() *relation.Schema {
	return relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
}

func TestClosure(t *testing.T) {
	s := abcdSchema()
	set := MustParseSet(s, "A -> B", "B -> C")
	got := set.Closure([]int{0})
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("closure(A) = %v, want [0 1 2]", got)
	}
	if set.IsSuperkey([]int{0}) {
		t.Error("A is not a superkey (D not determined)")
	}
	if !set.IsSuperkey([]int{0, 3}) {
		t.Error("AD should be a superkey")
	}
	// Closure ignores out-of-range attributes defensively.
	if got := set.Closure([]int{99}); len(got) != 0 {
		t.Errorf("closure of out-of-range = %v", got)
	}
}

func TestClosureProperties(t *testing.T) {
	// Extensivity, monotonicity, idempotence on random FD sets.
	rng := rand.New(rand.NewSource(7))
	s := abcdSchema()
	for iter := 0; iter < 100; iter++ {
		set := randomFDSet(rng, s)
		attrs := randomAttrSubset(rng, s.Arity())
		cl := set.Closure(attrs)
		in := map[int]bool{}
		for _, a := range cl {
			in[a] = true
		}
		for _, a := range attrs {
			if !in[a] {
				t.Fatalf("closure not extensive: %v not in closure(%v)=%v of %s", a, attrs, cl, set)
			}
		}
		cl2 := set.Closure(cl)
		if len(cl2) != len(cl) {
			t.Fatalf("closure not idempotent for %s", set)
		}
		// Monotone: closure of a superset contains closure of the set.
		super := append(append([]int(nil), attrs...), rng.Intn(s.Arity()))
		clSuper := set.Closure(super)
		inSuper := map[int]bool{}
		for _, a := range clSuper {
			inSuper[a] = true
		}
		for _, a := range cl {
			if !inSuper[a] {
				t.Fatalf("closure not monotone for %s", set)
			}
		}
	}
}

func randomFDSet(rng *rand.Rand, s *relation.Schema) *Set {
	set := &Set{schema: s}
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		lhs := randomAttrSubset(rng, s.Arity())
		rhs := randomAttrSubset(rng, s.Arity())
		if len(lhs) == 0 || len(rhs) == 0 {
			continue
		}
		if f, err := New(s, lhs, rhs); err == nil {
			set.Add(f) //nolint:errcheck
		}
	}
	return set
}

func randomAttrSubset(rng *rand.Rand, n int) []int {
	var out []int
	for a := 0; a < n; a++ {
		if rng.Intn(2) == 0 {
			out = append(out, a)
		}
	}
	return out
}

func TestKeys(t *testing.T) {
	s := abcdSchema()
	set := MustParseSet(s, "A -> B,C,D")
	keys := set.Keys()
	if len(keys) != 1 || len(keys[0]) != 1 || keys[0][0] != 0 {
		t.Fatalf("Keys = %v, want [[0]]", keys)
	}

	// Cyclic determination: A->B, B->A; keys are AC.. hmm with D free:
	// closure(A)= {A,B}, so keys must include C and D.
	set2 := MustParseSet(s, "A -> B", "B -> A")
	keys2 := set2.Keys()
	if len(keys2) != 2 {
		t.Fatalf("Keys = %v, want two keys {A,C,D} and {B,C,D}", keys2)
	}
	for _, k := range keys2 {
		if len(k) != 3 {
			t.Fatalf("key %v should have 3 attributes", k)
		}
	}
}

func TestIsBCNF(t *testing.T) {
	s := abcdSchema()
	if !MustParseSet(s, "A -> B,C,D").IsBCNF() {
		t.Error("single key dependency should be BCNF")
	}
	if MustParseSet(s, "A -> B").IsBCNF() {
		t.Error("A -> B alone is not BCNF (A is not a superkey)")
	}
	empty, _ := NewSet(s)
	if !empty.IsBCNF() {
		t.Error("empty set is vacuously BCNF")
	}
}

func TestImpliesAndEquivalent(t *testing.T) {
	s := abcdSchema()
	set := MustParseSet(s, "A -> B", "B -> C")
	if !set.Implies(MustParse(s, "A -> C")) {
		t.Error("transitivity: A->B, B->C should imply A->C")
	}
	if set.Implies(MustParse(s, "C -> A")) {
		t.Error("C -> A should not be implied")
	}
	eq := MustParseSet(s, "A -> B,C", "B -> C")
	if !set.Equivalent(eq) {
		t.Error("sets should be equivalent")
	}
	neq := MustParseSet(s, "A -> B")
	if set.Equivalent(neq) {
		t.Error("sets should not be equivalent")
	}
	other := relation.MustSchema("S", relation.IntAttr("A"), relation.IntAttr("B"))
	otherSet := MustParseSet(other, "A -> B")
	if set.Equivalent(otherSet) {
		t.Error("different schemas cannot be equivalent")
	}
}

func TestMinimalCover(t *testing.T) {
	s := abcdSchema()
	// A->B with a redundant extra attribute on the LHS and a redundant
	// transitive dependency.
	set := MustParseSet(s, "A,B -> C", "A -> B", "A -> C")
	mc := set.MinimalCover()
	if !mc.Equivalent(set) {
		t.Fatalf("minimal cover %s not equivalent to %s", mc, set)
	}
	for _, f := range mc.All() {
		if len(f.RHS()) != 1 {
			t.Errorf("cover FD %s has non-singleton RHS", f)
		}
	}
	// A->B, A->C suffice: at most 2 dependencies.
	if mc.Len() > 2 {
		t.Errorf("cover %s should have at most 2 FDs", mc)
	}
}

func TestMinimalCoverRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := abcdSchema()
	for iter := 0; iter < 100; iter++ {
		set := randomFDSet(rng, s)
		mc := set.MinimalCover()
		if !mc.Equivalent(set) {
			t.Fatalf("minimal cover %q not equivalent to %q", mc, set)
		}
	}
}

func TestSetString(t *testing.T) {
	s := abcdSchema()
	set := MustParseSet(s, "A -> B", "C -> D")
	if got := set.String(); got != "A -> B; C -> D" {
		t.Fatalf("String = %q", got)
	}
}
