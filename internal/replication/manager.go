package replication

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"prefcqa"
	"prefcqa/client"
)

// Host is the serving layer's side of replication: it owns the local
// databases a Manager replicates into.
type Host interface {
	// Replica returns the local database that replicates name —
	// creating it read-only when it does not exist yet — together with
	// the lock guarding its relation registry against concurrent
	// readers (creation records apply under its write side).
	Replica(name string) (*prefcqa.DB, *sync.RWMutex, error)
}

// Options tunes a Manager.
type Options struct {
	// Primary is the primary server's base URL (required).
	Primary string
	// HTTPClient performs discovery, snapshot and stream requests; it
	// must not set a client-wide timeout. Nil selects a default.
	HTTPClient *http.Client
	// DiscoverInterval is how often the primary's database list is
	// re-polled for databases created after the follower attached
	// (default 2s).
	DiscoverInterval time.Duration
	// HeartbeatTimeout is how long without a frame before a follower
	// reports "disconnected" (default 3s).
	HeartbeatTimeout time.Duration
	// AutoPromote, when positive, promotes the whole follower after
	// that long without any contact with the primary — but only once
	// contact has been made at least once, so a follower booted
	// against a dead URL never seizes a lineage it has not seen.
	// Zero means promotion is manual only.
	AutoPromote time.Duration
}

func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.DiscoverInterval <= 0 {
		o.DiscoverInterval = 2 * time.Second
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 3 * time.Second
	}
	return o
}

// Manager runs a server's follower role: it discovers the primary's
// databases, keeps one Follower tailing each, and turns the whole
// server into a primary on Promote (explicit or heartbeat-triggered).
type Manager struct {
	host   Host
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	// wg counts the follower goroutines; loop counts the discovery
	// loop. They are separate because Promote — which may run FROM the
	// discovery loop on the auto-promote path — must wait for every
	// stream to stop before bumping epochs, but must not wait for the
	// loop itself.
	wg   sync.WaitGroup
	loop sync.WaitGroup

	mu        sync.Mutex
	followers map[string]*Follower
	contacted bool // ever reached the primary
	promoted  bool
}

// NewManager builds a follower-role manager replicating from
// opts.Primary into host.
func NewManager(host Host, opts Options) *Manager {
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		host:      host,
		opts:      opts.withDefaults(),
		ctx:       ctx,
		cancel:    cancel,
		followers: make(map[string]*Follower),
	}
}

// PrimaryURL returns the primary this manager replicates from.
func (m *Manager) PrimaryURL() string { return m.opts.Primary }

// Promoted reports whether Promote has run.
func (m *Manager) Promoted() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted
}

// Follower returns the follower replicating the named database, or
// nil when the database is not (yet) replicated here.
func (m *Manager) Follower(name string) *Follower {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.followers[name]
}

// Followers returns every follower, sorted by database name.
func (m *Manager) Followers() []*Follower {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Follower, 0, len(m.followers))
	for _, f := range m.followers {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Start launches the discovery loop. It returns immediately; the
// followers it spawns run until Stop or Promote.
func (m *Manager) Start() {
	m.loop.Add(1)
	go m.discoverLoop()
}

// Stop cancels every follower and waits for them to exit. The local
// databases stay read-only; use Promote to open them for writes.
func (m *Manager) Stop() {
	m.cancel()
	m.loop.Wait()
	m.wg.Wait()
}

// discoverLoop polls the primary's database list, attaching a
// follower to every database it has not seen, and drives the
// auto-promotion timer.
func (m *Manager) discoverLoop() {
	defer m.loop.Done()
	t := time.NewTicker(m.opts.DiscoverInterval)
	defer t.Stop()
	for {
		m.discoverOnce()
		if m.maybeAutoPromote() {
			return
		}
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
		}
	}
}

// discoverOnce fetches the primary's database list and attaches any
// new databases. Errors are transient by definition here — the stream
// loops surface persistent trouble through follower status.
func (m *Manager) discoverOnce() {
	ctx, cancel := context.WithTimeout(m.ctx, m.opts.DiscoverInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.opts.Primary+client.PathReplDBs, nil)
	if err != nil {
		return
	}
	resp, err := m.opts.HTTPClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var list client.ReplDBsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return
	}
	m.mu.Lock()
	m.contacted = true
	m.mu.Unlock()
	for _, name := range list.DBs {
		if err := m.attach(name); err != nil {
			return
		}
	}
}

// attach starts a follower for the named database if none runs yet.
func (m *Manager) attach(name string) error {
	m.mu.Lock()
	if m.promoted || m.followers[name] != nil {
		m.mu.Unlock()
		return nil
	}
	m.mu.Unlock()
	db, schemaMu, err := m.host.Replica(name)
	if err != nil {
		return fmt.Errorf("replication: attaching %s: %w", name, err)
	}
	f := NewFollower(name, db, schemaMu, Config{
		Primary:          m.opts.Primary,
		HTTPClient:       m.opts.HTTPClient,
		HeartbeatTimeout: m.opts.HeartbeatTimeout,
	})
	m.mu.Lock()
	if m.promoted || m.followers[name] != nil {
		m.mu.Unlock()
		return nil
	}
	m.followers[name] = f
	// Add under the registry lock: Promote sets promoted before its
	// Wait, so an attach racing it either bails above or has its Add
	// observed by that Wait.
	m.wg.Add(1)
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		_ = f.Run(m.ctx)
	}()
	return nil
}

// maybeAutoPromote promotes after opts.AutoPromote of silence from a
// primary that was reachable at least once. Returns true when it
// promoted (the discovery loop then exits).
func (m *Manager) maybeAutoPromote() bool {
	if m.opts.AutoPromote <= 0 {
		return false
	}
	m.mu.Lock()
	contacted, promoted := m.contacted, m.promoted
	followers := make([]*Follower, 0, len(m.followers))
	for _, f := range m.followers {
		followers = append(followers, f)
	}
	m.mu.Unlock()
	if promoted || !contacted || len(followers) == 0 {
		return false
	}
	var last time.Time
	for _, f := range followers {
		if t := f.LastContact(); t.After(last) {
			last = t
		}
	}
	if last.IsZero() || time.Since(last) < m.opts.AutoPromote {
		return false
	}
	if _, err := m.Promote(); err != nil {
		return false
	}
	return true
}

// Promote stops replication and opens every replicated database for
// writes at the exact sequence where its stream stopped, bumping the
// fencing epoch so a resurrected old primary's history is refused.
// It is idempotent; the response lists the promoted databases and the
// highest epoch now in force.
func (m *Manager) Promote() (client.PromoteResponse, error) {
	m.mu.Lock()
	if m.promoted {
		resp := client.PromoteResponse{}
		for name, f := range m.followers {
			resp.Promoted = append(resp.Promoted, name)
			if e := f.DB().Epoch(); e > resp.Epoch {
				resp.Epoch = e
			}
		}
		sort.Strings(resp.Promoted)
		m.mu.Unlock()
		return resp, nil
	}
	m.promoted = true
	m.mu.Unlock()

	// Stop the discovery loop and every stream, then wait: no record
	// may apply after the epoch advances.
	m.cancel()
	m.wg.Wait()

	resp := client.PromoteResponse{}
	var firstErr error
	for _, f := range m.Followers() {
		epoch, err := f.DB().Promote()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("replication: promoting %s: %w", f.Name(), err)
		}
		f.markStopped("promoted")
		resp.Promoted = append(resp.Promoted, f.Name())
		if epoch > resp.Epoch {
			resp.Epoch = epoch
		}
	}
	return resp, firstErr
}
