// Package replication implements WAL-shipping primary/follower
// replication over the prefserve HTTP layer.
//
// A primary is any durable prefserve: its write-ahead log is
// position-addressed and strictly replayable by construction, so
// replication is exactly "ship the checkpoint, then tail the log". A
// follower bootstraps each database from the primary's checkpoint
// image (client.PathReplSnapshot), tails the record stream
// (client.PathReplStream, long-polled NDJSON) and applies every
// record through the same strict-replay path crash recovery uses —
// logged history and applied state advance together, bit for bit.
//
// Reads on a follower are snapshot-isolated at its replicated
// watermark; a read demanding min_version waits (Follower.WaitVersion)
// until the watermark catches up, so read-your-writes holds through
// any replica. Promotion (Manager.Promote) stops the tails, bumps the
// fencing epoch and re-opens the databases for writes at the exact
// sequence where the primary stopped.
package replication

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"prefcqa"
	"prefcqa/client"
	"prefcqa/internal/wal"
)

// ErrStopped reports that a follower no longer advances its watermark
// (it was stopped or promoted), so a WaitVersion beyond it can never
// be satisfied by replication.
var ErrStopped = errors.New("replication: follower stopped")

// Config tunes a Follower.
type Config struct {
	// Primary is the primary server's base URL.
	Primary string
	// HTTPClient performs the snapshot and stream requests. It must
	// not set a client-wide timeout (the stream is long-lived); nil
	// selects a default.
	HTTPClient *http.Client
	// HeartbeatTimeout is how long without a frame before the follower
	// reports "disconnected" (default 3s).
	HeartbeatTimeout time.Duration
	// CommitEvery bounds how many applied records may sit above the
	// local durability barrier before the follower commits the batch
	// (default 64). The stream also commits whenever it idles.
	CommitEvery int
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * time.Second
	}
	if c.CommitEvery <= 0 {
		c.CommitEvery = 64
	}
	return c
}

// Follower replicates one database from a primary into a local
// prefcqa.DB. Run drives it; WaitVersion parks readers until the
// replicated watermark reaches their min_version.
type Follower struct {
	name     string
	local    *prefcqa.DB
	schemaMu *sync.RWMutex // host lock guarding relation creation vs readers
	cfg      Config

	mu          sync.Mutex
	waitCh      chan struct{} // closed+replaced on every apply (watermark signal)
	status      string
	lastContact time.Time
	primarySeq  uint64 // primary's head seq, from the last heartbeat
	stopped     bool
}

// NewFollower builds a follower for the named database. local must be
// marked read-only by the caller; schemaMu is the host's per-database
// lock — relation-creating records apply under its write side, every
// other record under its read side, mirroring how the serving layer
// locks its own mutations.
func NewFollower(name string, local *prefcqa.DB, schemaMu *sync.RWMutex, cfg Config) *Follower {
	return &Follower{
		name:     name,
		local:    local,
		schemaMu: schemaMu,
		cfg:      cfg.withDefaults(),
		waitCh:   make(chan struct{}),
		status:   "bootstrapping",
	}
}

// Name returns the database name.
func (f *Follower) Name() string { return f.name }

// DB returns the local database the follower applies into.
func (f *Follower) DB() *prefcqa.DB { return f.local }

// AppliedSeq returns the replicated watermark: every record up to it
// is applied and readable.
func (f *Follower) AppliedSeq() uint64 { return f.local.WriteVersion() }

// setStatus records the lifecycle state shown in /v1/stats.
func (f *Follower) setStatus(s string) {
	f.mu.Lock()
	f.status = s
	f.mu.Unlock()
}

// touch records contact with the primary.
func (f *Follower) touch(primarySeq uint64) {
	f.mu.Lock()
	f.lastContact = time.Now()
	if primarySeq > f.primarySeq {
		f.primarySeq = primarySeq
	}
	f.mu.Unlock()
}

// LastContact returns when the follower last heard from the primary
// (zero before first contact).
func (f *Follower) LastContact() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastContact
}

// signal wakes every WaitVersion waiter.
func (f *Follower) signal() {
	f.mu.Lock()
	close(f.waitCh)
	f.waitCh = make(chan struct{})
	f.mu.Unlock()
}

// markStopped flips the follower to its terminal state and wakes all
// waiters so they can fall back.
func (f *Follower) markStopped(status string) {
	f.mu.Lock()
	f.stopped = true
	f.status = status
	close(f.waitCh)
	f.waitCh = make(chan struct{})
	f.mu.Unlock()
}

// WaitVersion blocks until the replicated watermark reaches v, the
// context is done, or the follower stops (ErrStopped — the caller
// falls back to its not-a-follower behavior, e.g. a 412).
func (f *Follower) WaitVersion(ctx context.Context, v uint64) error {
	for {
		if f.local.WriteVersion() >= v {
			return nil
		}
		f.mu.Lock()
		if f.stopped {
			f.mu.Unlock()
			return ErrStopped
		}
		ch := f.waitCh
		f.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Stats reports the follower's replication state for /v1/stats.
func (f *Follower) Stats() *client.ReplicationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &client.ReplicationStats{
		Role:          "follower",
		Primary:       f.cfg.Primary,
		AppliedSeq:    f.local.WriteVersion(),
		Epoch:         f.local.Epoch(),
		Status:        f.status,
		LastContactMS: -1,
	}
	if !f.lastContact.IsZero() {
		st.LastContactMS = time.Since(f.lastContact).Milliseconds()
		if st.Status == "streaming" && st.LastContactMS > f.cfg.HeartbeatTimeout.Milliseconds() {
			st.Status = "disconnected"
		}
	}
	if st.Status == "promoted" {
		st.Role = "primary"
	}
	return st
}

// Run bootstraps (when the local database is empty) and tails the
// primary's stream until the context is canceled or the follower hits
// a terminal condition (fenced, diverged, resync required). Errors
// along the way back off and retry — a primary restart must not kill
// its followers.
func (f *Follower) Run(ctx context.Context) error {
	backoff := 50 * time.Millisecond
	for {
		if err := ctx.Err(); err != nil {
			f.markStopped("stopped")
			return nil
		}
		err := f.runOnce(ctx)
		switch {
		case err == nil:
			backoff = 50 * time.Millisecond // clean stream end: reconnect at once
			continue
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			f.markStopped("stopped")
			return nil
		case isTerminal(err):
			f.markStopped("failed: " + err.Error())
			return err
		}
		f.setStatus("disconnected")
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			f.markStopped("stopped")
			return nil
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// terminalError marks conditions retrying cannot fix: the replica
// diverged or was fenced and must be wiped and re-seeded by an
// operator.
type terminalError struct{ err error }

func (t *terminalError) Error() string { return t.err.Error() }
func (t *terminalError) Unwrap() error { return t.err }

func isTerminal(err error) bool {
	var t *terminalError
	return errors.As(err, &t)
}

// empty reports whether the local database has no replicated history
// yet — the only state bootstrap may run in.
func (f *Follower) empty() bool {
	return f.local.WriteVersion() == 0 && len(f.local.Relations()) == 0
}

// runOnce performs one bootstrap-if-needed plus one stream session.
func (f *Follower) runOnce(ctx context.Context) error {
	if f.empty() {
		f.setStatus("bootstrapping")
		if err := f.bootstrap(ctx); err != nil {
			return err
		}
	}
	return f.stream(ctx)
}

// bootstrap fetches the primary's checkpoint image and seeds the
// local database through the strict recovery loader.
func (f *Follower) bootstrap(ctx context.Context) error {
	u := f.cfg.Primary + client.PathReplSnapshot + "?db=" + url.QueryEscape(f.name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: snapshot %s: HTTP %d", f.name, resp.StatusCode)
	}
	var snap client.ReplSnapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("replication: decoding snapshot: %w", err)
	}
	var ckpt wal.Checkpoint
	if err := json.Unmarshal(snap.Checkpoint, &ckpt); err != nil {
		return fmt.Errorf("replication: decoding snapshot checkpoint: %w", err)
	}
	f.schemaMu.Lock()
	err = f.local.ReplBootstrap(&ckpt)
	f.schemaMu.Unlock()
	if err != nil {
		return &terminalError{err}
	}
	f.touch(snap.Seq)
	f.signal()
	return nil
}

// stream opens one long-polled stream session from the watermark and
// applies frames until the primary closes the window, the connection
// drops, or the context ends. A nil return means "reconnect and
// continue"; a terminalError means the replica cannot continue.
func (f *Follower) stream(ctx context.Context) error {
	from := f.local.WriteVersion() + 1
	q := url.Values{}
	q.Set("db", f.name)
	q.Set("from_seq", strconv.FormatUint(from, 10))
	q.Set("epoch", strconv.FormatUint(f.local.Epoch(), 10))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+client.PathReplStream+"?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		// The primary refused our epoch: it is behind our lineage (a
		// resurrected pre-failover primary). Never apply from it.
		return fmt.Errorf("replication: %s: primary refused epoch %d (stale primary?)", f.name, f.local.Epoch())
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: stream %s: HTTP %d", f.name, resp.StatusCode)
	}
	f.setStatus("streaming")

	uncommitted := 0
	commit := func() error {
		if uncommitted == 0 {
			return nil
		}
		uncommitted = 0
		return f.local.ReplCommit(f.local.WriteVersion())
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var frame client.ReplFrame
		if err := json.Unmarshal(sc.Bytes(), &frame); err != nil {
			return fmt.Errorf("replication: bad stream frame: %w", err)
		}
		switch {
		case frame.Error == "compacted":
			// Our position fell behind the primary's checkpoint
			// horizon. An empty replica just re-bootstraps; one with
			// history must be wiped and re-seeded — silently skipping
			// records is never an option.
			_ = commit()
			if f.empty() {
				return nil
			}
			return &terminalError{fmt.Errorf("replication: %s: position %d compacted on the primary; wipe the replica and re-seed", f.name, f.local.WriteVersion()+1)}
		case frame.Error != "":
			_ = commit()
			return fmt.Errorf("replication: stream error: %s", frame.Error)
		case frame.Heartbeat:
			f.touch(frame.Seq)
			if err := commit(); err != nil {
				return err
			}
		case len(frame.Record) > 0:
			var rec wal.Record
			if err := json.Unmarshal(frame.Record, &rec); err != nil {
				return fmt.Errorf("replication: bad stream record: %w", err)
			}
			if err := f.apply(rec); err != nil {
				_ = commit()
				return &terminalError{err}
			}
			f.touch(rec.Seq)
			f.signal()
			if uncommitted++; uncommitted >= f.cfg.CommitEvery {
				if err := commit(); err != nil {
					return err
				}
			}
		}
	}
	if err := commit(); err != nil {
		return err
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil // window closed cleanly; reconnect
}

// apply feeds one record through the strict replay path under the
// host's schema lock: creation records reshape the relation registry
// readers iterate, so they take the write side.
func (f *Follower) apply(rec wal.Record) error {
	if rec.Op == wal.OpCreate {
		f.schemaMu.Lock()
		defer f.schemaMu.Unlock()
	} else {
		f.schemaMu.RLock()
		defer f.schemaMu.RUnlock()
	}
	return f.local.ReplApply(rec)
}
