package bitset

import (
	"math/rand"
	"testing"
)

func TestWordsBasics(t *testing.T) {
	k := 130 // spans three words
	w := make(Words, WordsLen(k))
	if !w.Empty() || w.Len() != 0 {
		t.Fatal("fresh Words should be empty")
	}
	for _, i := range []int{0, 63, 64, 65, 127, 128, 129} {
		w.Add(i)
		if !w.Has(i) {
			t.Fatalf("Has(%d) = false after Add", i)
		}
	}
	if w.Len() != 7 {
		t.Fatalf("Len = %d, want 7", w.Len())
	}
	w.Remove(64)
	if w.Has(64) {
		t.Fatal("Remove failed")
	}
	var got []int
	w.Range(func(i int) bool { got = append(got, i); return true })
	want := []int{0, 63, 65, 127, 128, 129}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	s := w.ToSet()
	for _, i := range want {
		if !s.Has(i) {
			t.Fatalf("ToSet missing %d", i)
		}
	}
	if s.Len() != len(want) {
		t.Fatalf("ToSet.Len = %d, want %d", s.Len(), len(want))
	}
	w.Clear()
	if !w.Empty() {
		t.Fatal("Clear failed")
	}
}

func TestWordsFill(t *testing.T) {
	for _, k := range []int{0, 1, 63, 64, 65, 128, 130} {
		w := make(Words, WordsLen(130))
		w.Fill(k)
		if w.Len() != k {
			t.Fatalf("Fill(%d).Len = %d", k, w.Len())
		}
		if k > 0 && (!w.Has(0) || !w.Has(k-1)) {
			t.Fatalf("Fill(%d) missing endpoints", k)
		}
		if k < 130 && w.Has(k) {
			t.Fatalf("Fill(%d) contains %d", k, k)
		}
	}
}

func TestWordsSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k := 190
	n := WordsLen(k)
	a, b := make(Words, n), make(Words, n)
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 0 {
			a.Add(i)
		}
		if rng.Intn(2) == 0 {
			b.Add(i)
		}
	}
	inter := make(Words, n)
	cnt := IntersectInto(inter, a, b)
	diff := make(Words, n)
	AndNotInto(diff, a, b)
	if cnt != inter.Len() {
		t.Fatalf("IntersectInto count %d != Len %d", cnt, inter.Len())
	}
	for i := 0; i < k; i++ {
		if inter.Has(i) != (a.Has(i) && b.Has(i)) {
			t.Fatalf("intersection wrong at %d", i)
		}
		if diff.Has(i) != (a.Has(i) && !b.Has(i)) {
			t.Fatalf("difference wrong at %d", i)
		}
	}
	c := make(Words, n)
	c.Copy(a)
	for i := 0; i < k; i++ {
		if c.Has(i) != a.Has(i) {
			t.Fatalf("copy wrong at %d", i)
		}
	}
}
