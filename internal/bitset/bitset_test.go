package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValue(t *testing.T) {
	var s Set
	if !s.Empty() {
		t.Fatal("zero value should be empty")
	}
	if s.Has(0) || s.Has(1000) {
		t.Fatal("zero value should contain nothing")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if s.Min() != -1 {
		t.Fatalf("Min = %d, want -1", s.Min())
	}
	s.Add(5)
	if !s.Has(5) {
		t.Fatal("Add on zero value failed")
	}
}

func TestAddRemoveHas(t *testing.T) {
	s := New(10)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) = false after Add", i)
		}
	}
	if got := s.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Fatal("Has(64) after Remove")
	}
	s.Remove(64) // idempotent
	s.Remove(-3) // no-op
	if got := s.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7", got)
	}
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) should panic")
		}
	}()
	var s Set
	s.Add(-1)
}

func TestHasNegative(t *testing.T) {
	s := FromSlice([]int{0, 1, 2})
	if s.Has(-1) {
		t.Fatal("Has(-1) = true")
	}
}

func TestFromSliceAndSlice(t *testing.T) {
	in := []int{9, 3, 3, 120, 0}
	s := FromSlice(in)
	want := []int{0, 3, 9, 120}
	got := s.Slice()
	if len(got) != len(want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestFull(t *testing.T) {
	s := Full(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for i := 0; i < 130; i++ {
		if !s.Has(i) {
			t.Fatalf("Full(130) missing %d", i)
		}
	}
	if s.Has(130) {
		t.Fatal("Full(130) contains 130")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 64})
	b := FromSlice([]int{3, 4, 64, 200})

	if got := Union(a, b).Slice(); !equalInts(got, []int{1, 2, 3, 4, 64, 200}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b).Slice(); !equalInts(got, []int{3, 64}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Difference(a, b).Slice(); !equalInts(got, []int{1, 2}) {
		t.Errorf("Difference = %v", got)
	}
	if got := Difference(b, a).Slice(); !equalInts(got, []int{4, 200}) {
		t.Errorf("Difference = %v", got)
	}
	// Operands must be unchanged.
	if !equalInts(a.Slice(), []int{1, 2, 3, 64}) {
		t.Error("Union/Intersect/Difference mutated operand a")
	}
}

func TestIntersectWithShorter(t *testing.T) {
	a := FromSlice([]int{1, 500})
	b := FromSlice([]int{1})
	a.IntersectWith(b)
	if !equalInts(a.Slice(), []int{1}) {
		t.Fatalf("IntersectWith = %v, want [1]", a.Slice())
	}
}

func TestSubsetIntersectsEqual(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{1, 2, 3})
	c := FromSlice([]int{7, 400})

	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	// Equal must ignore capacity differences.
	big := New(1000)
	big.Add(1)
	big.Add(2)
	if !big.Equal(a) || !a.Equal(big) {
		t.Error("Equal should ignore trailing zero words")
	}
	if a.Equal(b) {
		t.Error("a should not equal b")
	}
	var empty Set
	if !empty.SubsetOf(a) {
		t.Error("empty set should be subset of anything")
	}
}

func TestMin(t *testing.T) {
	s := FromSlice([]int{130, 70, 890})
	if got := s.Min(); got != 70 {
		t.Fatalf("Min = %d, want 70", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5})
	var seen []int
	s.Range(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if !equalInts(seen, []int{1, 2, 3}) {
		t.Fatalf("early stop saw %v", seen)
	}
}

func TestKeyCanonical(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := New(4096)
	b.Add(1)
	b.Add(2)
	if a.Key() != b.Key() {
		t.Fatal("Key should not depend on capacity")
	}
	b.Add(3000)
	if a.Key() == b.Key() {
		t.Fatal("different sets should have different keys")
	}
}

func TestString(t *testing.T) {
	if got := FromSlice([]int{2, 0}).String(); got != "{0 2}" {
		t.Fatalf("String = %q", got)
	}
	var empty Set
	if got := empty.String(); got != "{}" {
		t.Fatalf("String = %q", got)
	}
}

func TestClear(t *testing.T) {
	s := FromSlice([]int{1, 99})
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear should empty the set")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := a.Clone()
	b.Add(3)
	if a.Has(3) {
		t.Fatal("Clone should be independent")
	}
}

// Property: set algebra agrees with a map-based reference model.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		s, sm := &Set{}, map[int]bool{}
		u, um := &Set{}, map[int]bool{}
		for _, x := range xs {
			s.Add(int(x))
			sm[int(x)] = true
		}
		for _, y := range ys {
			u.Add(int(y))
			um[int(y)] = true
		}
		if s.Len() != len(sm) {
			return false
		}
		inter := Intersect(s, u)
		union := Union(s, u)
		diff := Difference(s, u)
		for i := 0; i < 1<<16; i += 7 {
			if inter.Has(i) != (sm[i] && um[i]) {
				return false
			}
			if union.Has(i) != (sm[i] || um[i]) {
				return false
			}
			if diff.Has(i) != (sm[i] && !um[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Slice is sorted and duplicates-free, round-trips via FromSlice.
func TestQuickSliceRoundTrip(t *testing.T) {
	f := func(xs []uint16) bool {
		s := &Set{}
		for _, x := range xs {
			s.Add(int(x))
		}
		sl := s.Slice()
		if !sort.IntsAreSorted(sl) {
			return false
		}
		for i := 1; i < len(sl); i++ {
			if sl[i] == sl[i-1] {
				return false
			}
		}
		return FromSlice(sl).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: DeMorgan-ish identities on random sets.
func TestQuickIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		a, b := randSet(rng, 300), randSet(rng, 300)
		// a = (a∩b) ∪ (a\b)
		if !Union(Intersect(a, b), Difference(a, b)).Equal(a) {
			t.Fatal("identity a = (a∩b)∪(a\\b) failed")
		}
		// (a\b) ∩ b = ∅
		if Intersect(Difference(a, b), b).Len() != 0 {
			t.Fatal("identity (a\\b)∩b = ∅ failed")
		}
		// a ⊆ a∪b and a∩b ⊆ a
		if !a.SubsetOf(Union(a, b)) || !Intersect(a, b).SubsetOf(a) {
			t.Fatal("subset identities failed")
		}
		if a.Intersects(b) != (Intersect(a, b).Len() > 0) {
			t.Fatal("Intersects disagrees with Intersect")
		}
	}
}

func randSet(rng *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			s.Add(rng.Intn(n))
		}
	}
	return s
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkRange(b *testing.B) {
	s := Full(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Range(func(int) bool { n++; return true })
		if n != 4096 {
			b.Fatal("bad count")
		}
	}
}
