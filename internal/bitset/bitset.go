// Package bitset provides dense bit sets over small integer universes.
//
// Every algorithm in this module manipulates sets of tuple identifiers
// (repairs, neighborhoods, winnow results, candidate sets of the
// Bron–Kerbosch recursion). Tuple identifiers are dense, so a packed
// bit vector is both the fastest and the most memory-frugal
// representation. The zero value of Set is an empty set ready to use.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Set is a set of non-negative integers backed by a bit vector.
// The zero value is an empty set. Sets grow on demand when elements
// are added; querying beyond the current capacity reports absence.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity preallocated for elements
// in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given elements.
func FromSlice(elems []int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// Full returns the set {0, 1, ..., n-1}.
func Full(n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	w := make([]uint64, word+1)
	copy(w, s.words)
	s.words = w
}

// Add inserts i into the set. It panics if i is negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic("bitset: negative element " + strconv.Itoa(i))
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(i%wordBits)
	}
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(i%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith adds every element of t to s and returns s.
func (s *Set) UnionWith(t *Set) *Set {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
	return s
}

// IntersectWith removes from s every element not in t and returns s.
func (s *Set) IntersectWith(t *Set) *Set {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
	return s
}

// DifferenceWith removes every element of t from s and returns s.
func (s *Set) DifferenceWith(t *Set) *Set {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
	return s
}

// Union returns a new set with the elements of s and t.
func Union(s, t *Set) *Set { return s.Clone().UnionWith(t) }

// Intersect returns a new set with the elements common to s and t.
func Intersect(s, t *Set) *Set { return s.Clone().IntersectWith(t) }

// Difference returns a new set with the elements of s not in t.
func Difference(s, t *Set) *Set { return s.Clone().DifferenceWith(t) }

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same elements.
func (s *Set) Equal(t *Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var sw, tw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(t.words) {
			tw = t.words[i]
		}
		if sw != tw {
			return false
		}
	}
	return true
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Range calls yield for each element in increasing order. Iteration
// stops early if yield returns false.
func (s *Set) Range(yield func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !yield(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Slice returns the elements in increasing order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.Range(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Key returns a canonical string encoding of the set contents,
// suitable for use as a map key. Trailing zero words do not affect
// the key, so equal sets always produce equal keys.
func (s *Set) Key() string {
	end := len(s.words)
	for end > 0 && s.words[end-1] == 0 {
		end--
	}
	var b strings.Builder
	b.Grow(end * 17)
	for i := 0; i < end; i++ {
		b.WriteString(strconv.FormatUint(s.words[i], 16))
		b.WriteByte(',')
	}
	return b.String()
}

// Words is a fixed-capacity dense bit set over a small universe
// [0, k), backed by caller-provided storage (typically a slice of a
// shared scratch arena). Unlike Set, Words never grows and its
// operations never allocate: it is the currency of the
// component-local hot paths (Bron–Kerbosch, winnow simulation), where
// k is a component size rather than the instance size. All binary
// operations require operands of equal length.
type Words []uint64

// WordsLen returns the number of uint64 words needed to hold a
// universe of k elements.
func WordsLen(k int) int { return (k + wordBits - 1) / wordBits }

// Add inserts i. The caller must ensure i < len(w)*64.
func (w Words) Add(i int) { w[i/wordBits] |= 1 << uint(i%wordBits) }

// Remove deletes i.
func (w Words) Remove(i int) { w[i/wordBits] &^= 1 << uint(i%wordBits) }

// Has reports whether i is in the set.
func (w Words) Has(i int) bool { return w[i/wordBits]&(1<<uint(i%wordBits)) != 0 }

// Empty reports whether the set has no elements.
func (w Words) Empty() bool {
	for _, x := range w {
		if x != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of elements.
func (w Words) Len() int {
	n := 0
	for _, x := range w {
		n += bits.OnesCount64(x)
	}
	return n
}

// Clear removes all elements.
func (w Words) Clear() {
	for i := range w {
		w[i] = 0
	}
}

// Fill sets w to {0, ..., k-1}. k must not exceed the capacity.
func (w Words) Fill(k int) {
	w.Clear()
	for i := 0; i < k/wordBits; i++ {
		w[i] = ^uint64(0)
	}
	if r := k % wordBits; r != 0 {
		w[k/wordBits] = (1 << uint(r)) - 1
	}
}

// Copy overwrites w with src (equal lengths).
func (w Words) Copy(src Words) { copy(w, src) }

// IntersectInto sets dst = a ∩ b (equal lengths) and returns |dst|.
func IntersectInto(dst, a, b Words) int {
	n := 0
	for i := range dst {
		x := a[i] & b[i]
		dst[i] = x
		n += bits.OnesCount64(x)
	}
	return n
}

// AndNotInto sets dst = a \ b (equal lengths).
func AndNotInto(dst, a, b Words) {
	for i := range dst {
		dst[i] = a[i] &^ b[i]
	}
}

// Range calls yield for each element in increasing order, stopping
// early if yield returns false.
func (w Words) Range(yield func(i int) bool) {
	for wi, x := range w {
		for x != 0 {
			b := bits.TrailingZeros64(x)
			if !yield(wi*wordBits + b) {
				return
			}
			x &^= 1 << uint(b)
		}
	}
}

// ToSet copies the contents into a fresh growable Set.
func (w Words) ToSet() *Set {
	s := &Set{words: make([]uint64, len(w))}
	copy(s.words, w)
	return s
}

// String renders the set as "{e1 e2 ...}" in increasing order.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Range(func(i int) bool {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
