package relation

import (
	"sort"
	"sync"
)

// Secondary indexes.
//
// An attrIndex is the per-attribute hash index of one instance
// version chain: for every attribute position, a map from value key
// to the ascending list of tuple IDs carrying that value. The
// structure exploits the storage model of the chain — tuple IDs are
// dense, assigned in insertion order, never reused, and the cell
// data for an ID is immutable — so one shared, append-only index
// serves every version of the chain:
//
//   - A version with NumIDs() = n sees exactly the postings entries
//     with id < n, filtered by its own tombstone set. Older snapshots
//     therefore read the same postings as the mutable head and stay
//     consistent by construction; Delete needs no index maintenance
//     at all.
//   - Insert appends the new ID to the postings of each already-built
//     attribute (IDs arrive in ascending order, keeping postings
//     sorted); attributes nobody has probed yet cost nothing.
//   - Fork shares the index pointer with the child. Forking the same
//     frozen parent twice is NOT supported by the storage chain
//     itself (sibling forks append into one shared column arena and
//     clobber each other); the index defends itself anyway — a
//     non-monotone insert ID reveals the sibling and the younger
//     chain detaches onto a fresh index (see noteInsert) — so it
//     never compounds the storage hazard with stale postings.
//
// Postings for one attribute are built lazily, on the first probe of
// that attribute, by a single pass over the probing version's column;
// after that the index is maintained incrementally forever. All
// access goes through idx.mu because the facade mutates the head
// version while readers probe published snapshots concurrently.

// posting holds the ascending tuple IDs of one attribute value, plus
// a representative Value so DistinctValues can recover typed values
// from the map without decoding keys.
type posting struct {
	val Value
	ids []TupleID
}

// attrPostings is the index of a single attribute position. upto is
// the exclusive upper bound of indexed IDs: every live or dead tuple
// with id < upto appears in m.
type attrPostings struct {
	built bool
	upto  int
	m     map[string]*posting
	// sorted caches the distinct values of the attribute in ascending
	// Value.Order, rebuilt lazily whenever new distinct values appear
	// (sortedLen is len(m) at build time). See SortedDistinctValues.
	sorted    []Value
	sortedLen int
}

// attrIndex is the shared secondary index of a version chain.
type attrIndex struct {
	mu    sync.RWMutex
	attrs []attrPostings
	// lastID is the highest tuple ID ever inserted through this
	// index. On a linear version chain insert IDs strictly increase;
	// a repeated or smaller ID means a sibling fork shares the index
	// and must detach before anything is recorded.
	lastID TupleID
}

func newAttrIndex(arity int) *attrIndex {
	return &attrIndex{attrs: make([]attrPostings, arity), lastID: -1}
}

// keyOf returns the postings-map key of a value.
func keyOf(v Value) string { return string(v.appendKey(make([]byte, 0, 24))) }

// extendLocked indexes column cells [ap.upto, n) into attribute attr.
// Caller holds ix.mu for writing; col is the probing instance's
// column, so cells below n are immutable.
func (ix *attrIndex) extendLocked(attr int, col *column, n int) {
	ap := &ix.attrs[attr]
	if ap.m == nil {
		ap.m = make(map[string]*posting)
	}
	var buf [24]byte
	for id := ap.upto; id < n; id++ {
		v := col.value(id)
		k := v.appendKey(buf[:0])
		p := ap.m[string(k)]
		if p == nil {
			p = &posting{val: v}
			ap.m[string(k)] = p
		}
		p.ids = append(p.ids, id)
	}
	ap.upto = n
	ap.built = true
}

// noteInsert maintains the built attributes after tuple id was
// appended to the columns. diverged=true signals that a sibling fork
// of the same parent already claimed this (or a later) ID: nothing
// was recorded and the caller must detach onto a fresh index. The
// check runs before any attribute is touched, so a divergent insert
// never poisons the postings the first chain keeps using.
func (ix *attrIndex) noteInsert(id TupleID, cols []column) (diverged bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if id <= ix.lastID {
		return true
	}
	ix.lastID = id
	for attr := range ix.attrs {
		if ix.attrs[attr].built {
			ix.extendLocked(attr, &cols[attr], id+1)
		}
	}
	return false
}

// ensure returns the posting IDs of (attr, v) covering at least IDs
// [0, n), building or catching up the attribute index if needed. The
// slice header is captured under the lock; a concurrent writer may
// append past its length (never reallocating entries below it), so
// reading the returned prefix is race-free. Entries >= n belong to
// newer versions of the chain and must be skipped by the caller.
func (ix *attrIndex) ensure(attr int, v Value, col *column, n int) []TupleID {
	k := keyOf(v)
	ix.mu.RLock()
	ap := &ix.attrs[attr]
	if ap.built && ap.upto >= n {
		var ids []TupleID
		if p := ap.m[k]; p != nil {
			ids = p.ids
		}
		ix.mu.RUnlock()
		return ids
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if !ap.built || ap.upto < n {
		ix.extendLocked(attr, col, n)
	}
	if p := ap.m[k]; p != nil {
		return p.ids
	}
	return nil
}

// ensureBuilt forces the attribute index to cover IDs [0, n).
func (ix *attrIndex) ensureBuilt(attr int, col *column, n int) {
	ix.mu.RLock()
	ap := &ix.attrs[attr]
	ok := ap.built && ap.upto >= n
	ix.mu.RUnlock()
	if ok {
		return
	}
	ix.mu.Lock()
	if !ap.built || ap.upto < n {
		ix.extendLocked(attr, col, n)
	}
	ix.mu.Unlock()
}

// index returns the instance's index, which NewInstance always
// allocates; the accessor exists so zero-value-ish internal callers
// fail loudly rather than racing on lazy allocation.
func (r *Instance) index() *attrIndex {
	if r.idx == nil {
		panic("relation: instance has no index (not built by NewInstance?)")
	}
	return r.idx
}

// IndexScan iterates, in ascending ID order, the live tuples of r
// whose attribute attr equals v, using the chain's secondary index.
// The index is built for attr on first use (one pass over the
// column) and maintained incrementally across Insert, Delete and
// Fork afterwards; a probe on a snapshot observes exactly the
// snapshot's tuples. Each yielded row is materialized from the
// columns; ID-level consumers should use PostingIDs. Stop early by
// returning false.
func (r *Instance) IndexScan(attr int, v Value, yield func(id TupleID, t Tuple) bool) {
	n := r.n
	ids := r.index().ensure(attr, v, &r.cols[attr], n)
	for _, id := range ids {
		if id >= n {
			break // inserted by a newer version of the chain
		}
		if !r.Live(id) {
			continue
		}
		if !yield(id, r.Tuple(id)) {
			return
		}
	}
}

// PostingIDs returns the raw secondary-index posting of (attr, v):
// the ascending tuple IDs whose attribute attr equals v, built or
// caught up on first use. The slice is shared with the index and must
// not be mutated; it may contain IDs of newer chain versions (>=
// NumIDs()) and tombstoned IDs — the batch executor filters both
// against its own visibility, which is exactly why it wants the raw
// posting rather than the filtered iteration of IndexScan.
func (r *Instance) PostingIDs(attr int, v Value) []TupleID {
	return r.index().ensure(attr, v, &r.cols[attr], r.n)
}

// IndexEstimate returns an upper bound on the number of live tuples
// of r with attribute attr equal to v: the posting length including
// tombstoned and newer-version IDs. It is the planner's selectivity
// estimate — cheap, monotone, and exact on an unmutated instance.
func (r *Instance) IndexEstimate(attr int, v Value) int {
	n := r.n
	ids := r.index().ensure(attr, v, &r.cols[attr], n)
	// Count only the prefix visible to this version; the tail belongs
	// to newer forks.
	if k := len(ids); k > 0 && ids[k-1] >= n {
		lo, hi := 0, k
		for lo < hi {
			mid := (lo + hi) / 2
			if ids[mid] < n {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	return len(ids)
}

// DistinctEstimate returns the number of distinct values of attribute
// attr across the whole version chain — an upper bound on this
// version's distinct count, used by the planner to estimate the rows
// of a runtime-bound index probe (card / distinct). Building the
// attribute index on first use is the same cost the probe itself
// would pay.
func (r *Instance) DistinctEstimate(attr int) int {
	ix := r.index()
	ix.ensureBuilt(attr, &r.cols[attr], r.n)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.attrs[attr].m)
}

// DistinctValues appends the distinct values occurring in attribute
// attr of any tuple of r — live or tombstoned — to dst and returns
// it. Tombstoned values are a deliberate over-approximation for
// callers that only need a superset; DistinctValuesLive filters them.
// Order is unspecified; callers sort.
func (r *Instance) DistinctValues(attr int, dst []Value) []Value {
	n := r.n
	ix := r.index()
	ix.ensureBuilt(attr, &r.cols[attr], n)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, p := range ix.attrs[attr].m {
		if len(p.ids) > 0 && p.ids[0] < n {
			dst = append(dst, p.val)
		}
	}
	return dst
}

// DistinctValuesLive appends the distinct values occurring in
// attribute attr of a live tuple of r to dst and returns it — exact
// even when the instance carries tombstones, by skipping posting IDs
// that are dead or belong to newer chain versions. The cost is
// O(distinct values + tombstones inspected): each posting is walked
// only until its first live ID. Order is unspecified; callers sort.
func (r *Instance) DistinctValuesLive(attr int, dst []Value) []Value {
	n := r.n
	ix := r.index()
	ix.ensureBuilt(attr, &r.cols[attr], n)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for _, p := range ix.attrs[attr].m {
		for _, id := range p.ids {
			if id >= n {
				break
			}
			if r.dead == nil || !r.dead.Has(id) {
				dst = append(dst, p.val)
				break
			}
		}
	}
	return dst
}

// SortedDistinctValues returns the distinct values of attribute attr
// across the whole version chain — live or tombstoned, this version or
// newer — in ascending Value.Order. It is the sorted per-attribute
// value iterator of the worst-case-optimal join: a cheap superset of
// any version's distinct values, where each candidate value is
// confirmed or discarded by a single posting intersection. The slice
// is cached on the shared index (rebuilt only when new distinct values
// appear) and must not be mutated; once returned it is immutable —
// concurrent rebuilds allocate a fresh slice.
func (r *Instance) SortedDistinctValues(attr int) []Value {
	ix := r.index()
	ix.ensureBuilt(attr, &r.cols[attr], r.n)
	ix.mu.RLock()
	ap := &ix.attrs[attr]
	if ap.sortedLen == len(ap.m) {
		s := ap.sorted
		ix.mu.RUnlock()
		return s
	}
	ix.mu.RUnlock()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ap.sortedLen != len(ap.m) {
		s := make([]Value, 0, len(ap.m))
		for _, p := range ap.m {
			s = append(s, p.val)
		}
		sort.Slice(s, func(i, j int) bool { return s[i].Order(s[j]) < 0 })
		ap.sorted, ap.sortedLen = s, len(s)
	}
	return ap.sorted
}

// noteInsert is the Insert hook: keep built attribute indexes in
// step, detaching onto a private index if a sibling fork already
// claimed the ID.
func (r *Instance) noteInsert(id TupleID) {
	if r.idx.noteInsert(id, r.cols) {
		fresh := newAttrIndex(r.schema.Arity())
		r.idx = fresh
	}
}
