package relation

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// nastyNames are name constants chosen to break naive wire encodings:
// integers-as-text, quotes, commas, whitespace, empty, unicode.
var nastyNames = []string{
	"", " ", "x", "42", "-7", "'", "''", "a'b", "\"q\"", "a,b",
	"line\nbreak", "tab\tcell", "héllo", "名前", "null", "true",
	"0x10", " padded ", "trailing ", "{\"json\":1}",
}

// randomWireInstance builds a random instance over a random schema,
// optionally deleting a random subset of tuples (tombstones).
func randomWireInstance(rng *rand.Rand, tombstone bool) *Instance {
	arity := 1 + rng.Intn(4)
	attrs := make([]Attribute, arity)
	for i := range attrs {
		if rng.Intn(2) == 0 {
			attrs[i] = NameAttr(fmt.Sprintf("N%d", i))
		} else {
			attrs[i] = IntAttr(fmt.Sprintf("I%d", i))
		}
	}
	inst := NewInstance(MustSchema(fmt.Sprintf("R%d", rng.Intn(100)), attrs...))
	n := rng.Intn(30) // may be zero: empty relations must survive too
	for j := 0; j < n; j++ {
		t := make(Tuple, arity)
		for i := range t {
			if attrs[i].Kind == KindName {
				t[i] = Name(nastyNames[rng.Intn(len(nastyNames))])
			} else {
				t[i] = Int(rng.Int63n(2001) - 1000)
			}
		}
		inst.Insert(t) //nolint:errcheck // typed tuples cannot fail
	}
	if tombstone {
		for id := 0; id < inst.NumIDs(); id++ {
			if rng.Intn(3) == 0 {
				inst.Delete(id)
			}
		}
	}
	return inst
}

// sameLiveContent reports whether two instances have equal schemas and
// identical live tuple sets (IDs may differ: decode re-densifies).
func sameLiveContent(a, b *Instance) bool {
	if !a.Schema().Equal(b.Schema()) || a.Len() != b.Len() {
		return false
	}
	ok := true
	a.Range(func(_ TupleID, t Tuple) bool {
		if !b.Contains(t) {
			ok = false
		}
		return ok
	})
	return ok
}

// TestWireRoundTripProperty: decode(encode(inst)) preserves schema and
// live content for random instances covering every value kind, empty
// relations, and tombstoned instances — and survives an actual JSON
// marshal/unmarshal in the middle, like the server wire path.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		inst := randomWireInstance(rng, iter%2 == 1)
		w := EncodeWire(inst)
		blob, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("iter %d: marshal: %v", iter, err)
		}
		var w2 WireInstance
		if err := json.Unmarshal(blob, &w2); err != nil {
			t.Fatalf("iter %d: unmarshal: %v", iter, err)
		}
		got, err := DecodeWire(w2)
		if err != nil {
			t.Fatalf("iter %d: decode: %v\nwire: %s", iter, err, blob)
		}
		if !sameLiveContent(inst, got) {
			t.Fatalf("iter %d: round trip changed content\n in: %s\nout: %s", iter, inst, got)
		}
		// Encoding is deterministic: re-encoding the decoded instance
		// reproduces the wire form bit-for-bit.
		blob2, err := json.Marshal(EncodeWire(got))
		if err != nil {
			t.Fatalf("iter %d: re-marshal: %v", iter, err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("iter %d: re-encoding differs\n 1st: %s\n 2nd: %s", iter, blob, blob2)
		}
	}
}

// TestWireValueKinds: every value kind round-trips exactly, including
// names that masquerade as integers.
func TestWireValueKinds(t *testing.T) {
	cases := []Value{
		Int(0), Int(-1), Int(42), Int(1<<62 + 3),
		Name(""), Name("42"), Name("-7"), Name("it's"), Name("a''b"),
		Name("plain"), Name("with space"), Name("名"),
	}
	for _, v := range cases {
		cell := EncodeValue(v)
		got, err := DecodeValue(v.Kind(), cell)
		if err != nil {
			t.Fatalf("%v (cell %q): %v", v, cell, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %q -> %v", v, cell, got)
		}
	}
	// Kind mismatches are rejected, not coerced.
	if _, err := DecodeValue(KindInt, "'x'"); err == nil {
		t.Fatal("DecodeValue accepted a name cell for an int attribute")
	}
	if _, err := DecodeValue(KindName, "42"); err == nil {
		t.Fatal("DecodeValue accepted an int cell for a name attribute")
	}
}

// TestWireDecodeErrors: malformed wire forms fail loudly.
func TestWireDecodeErrors(t *testing.T) {
	good := EncodeWire(NewInstance(MustSchema("R", NameAttr("A"), IntAttr("B"))))
	bad := good
	bad.Attrs = []WireAttr{{Name: "A", Kind: "float"}}
	if _, err := DecodeWire(bad); err == nil {
		t.Fatal("unknown kind accepted")
	}
	bad = good
	bad.Rows = [][]string{{"'x'"}}
	if _, err := DecodeWire(bad); err == nil {
		t.Fatal("short row accepted")
	}
	bad = good
	bad.Rows = [][]string{{"'x'", "notanint"}}
	if _, err := DecodeWire(bad); err == nil {
		t.Fatal("kind-mismatched cell accepted")
	}
}
