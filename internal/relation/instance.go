package relation

import (
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/bitset"
)

// Tuple is one row of a relation. Tuples are compared by value; the
// instance enforces set semantics.
type Tuple []Value

// TupleID identifies a tuple inside one Instance. IDs are dense,
// starting at 0, in insertion order; they never change and are never
// reused — deleting a tuple tombstones its ID, and re-inserting an
// equal tuple later assigns a fresh ID.
type TupleID = int

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the tuple, used for
// set-semantics deduplication.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16*len(t))
	for _, v := range t {
		b = v.appendKey(b)
	}
	return string(b)
}

// Project returns the subtuple at the given attribute positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// String renders "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Instance is a finite set of tuples over one schema. Insertion
// assigns dense TupleIDs; duplicate inserts return the existing ID.
// Delete tombstones a tuple without disturbing the IDs of the others,
// so downstream structures (conflict graphs, priorities) can be
// patched instead of rebuilt.
//
// An Instance carries a monotone version counter (Version) that every
// successful mutation bumps, and supports cheap structural-sharing
// snapshots via Fork: the fork shares the tuple storage and the bulk
// of the key index with its parent, and the parent is frozen — all
// later mutations must go through the fork. This is the storage half
// of the engine's snapshot-isolated mutation model: published
// instance versions are immutable, and a writer advances the database
// by forking the latest version.
//
// Storage is columnar (column.go): one typed, append-only array per
// attribute, indexed by TupleID and shared along the version chain.
// Tuple(id) materializes a row on demand; hot paths read cells via
// Col/ValueAt instead.
type Instance struct {
	schema *Schema
	// cols holds one typed column per attribute; n is the size of this
	// version's ID universe (columns may be longer when a fork has
	// appended — ids >= n belong to newer versions).
	cols []column
	n    int
	// byKey is the base key index. Once the instance has been forked
	// it is shared with the fork and must not be written; overKey
	// holds this version's private additions.
	byKey   map[string]TupleID
	overKey map[string]TupleID // nil on an unforked instance
	dead    *bitset.Set        // tombstoned IDs; nil when none
	live    int                // number of live tuples
	version uint64
	frozen  bool // set by Fork: mutations must go through the fork
	// idx is the chain's shared secondary index (see index.go):
	// per-attribute value → tuple-ID postings, built lazily on first
	// probe and maintained through Insert/Delete/Fork without
	// rebuilds. Forks share the pointer; snapshot consistency comes
	// from filtering postings by the reading version's ID bound and
	// tombstones.
	idx *attrIndex
}

// NewInstance returns an empty instance of the schema.
func NewInstance(schema *Schema) *Instance {
	if schema == nil {
		panic("relation: nil schema")
	}
	return &Instance{
		schema: schema,
		cols:   newColumns(schema),
		byKey:  make(map[string]TupleID),
		idx:    newAttrIndex(schema.Arity()),
	}
}

// Schema returns the instance's schema.
func (r *Instance) Schema() *Schema { return r.schema }

// Len returns the number of live (distinct, non-deleted) tuples.
func (r *Instance) Len() int { return r.live }

// NumIDs returns the size of the TupleID universe [0, NumIDs()):
// live tuples plus tombstones. Structures indexed by TupleID (bit
// sets, conflict graphs) must be sized by NumIDs, not Len.
func (r *Instance) NumIDs() int { return r.n }

// Version returns the monotone mutation counter: every successful
// Insert, Delete or Union bumps it. Forks inherit the parent's
// counter and continue from there.
func (r *Instance) Version() uint64 { return r.version }

// Live reports whether id identifies a non-deleted tuple.
func (r *Instance) Live(id TupleID) bool {
	if id < 0 || id >= r.n {
		return false
	}
	return r.dead == nil || !r.dead.Has(id)
}

// DeadIDs returns an independent copy of the tombstone set, or nil
// when no tuple has been deleted.
func (r *Instance) DeadIDs() *bitset.Set {
	if r.dead == nil || r.dead.Empty() {
		return nil
	}
	return r.dead.Clone()
}

// Fork returns a mutable child version sharing storage with r, and
// freezes r: every later mutation must target the fork. Forking is
// O(overlay + tombstones), independent of the instance size, which is
// what makes point mutations under snapshot isolation cheap. Readers
// of r observe exactly the state at fork time.
func (r *Instance) Fork() *Instance {
	r.frozen = true
	child := &Instance{
		schema: r.schema,
		// Column headers are copied so the child's appends never move
		// the parent's bounds; the backing arrays are shared, and the
		// parent reads only ids below its own n.
		cols:    append([]column(nil), r.cols...),
		n:       r.n,
		byKey:   r.byKey,
		live:    r.live,
		version: r.version,
		idx:     r.idx, // shared: postings are valid for every version of the chain
	}
	// Fold an oversized overlay into a private base map; amortized the
	// fold is O(1) per mutation, and the bound keeps each fork's copy
	// small.
	if len(r.overKey) > 64+len(r.byKey)/64 {
		merged := make(map[string]TupleID, len(r.byKey)+len(r.overKey))
		for k, v := range r.byKey {
			merged[k] = v
		}
		for k, v := range r.overKey {
			merged[k] = v
		}
		child.byKey = merged
		child.overKey = make(map[string]TupleID)
	} else {
		child.overKey = make(map[string]TupleID, len(r.overKey)+1)
		for k, v := range r.overKey {
			child.overKey[k] = v
		}
	}
	if r.dead != nil {
		child.dead = r.dead.Clone()
	}
	return child
}

// lookupKey resolves a tuple key through the overlay, ignoring
// tombstones.
func (r *Instance) lookupKey(k string) (TupleID, bool) {
	if r.overKey != nil {
		if id, ok := r.overKey[k]; ok {
			return id, true
		}
	}
	id, ok := r.byKey[k]
	return id, ok
}

// setKey records k → id in this version's writable index layer.
func (r *Instance) setKey(k string, id TupleID) {
	if r.overKey != nil {
		r.overKey[k] = id
		return
	}
	r.byKey[k] = id
}

func (r *Instance) mutable() {
	if r.frozen {
		panic("relation: mutating a frozen (forked) instance")
	}
}

// typeCheck validates a tuple against the schema.
func (r *Instance) typeCheck(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation: %s expects %d values, got %d", r.schema.Name(), r.schema.Arity(), len(t))
	}
	for i, v := range t {
		if v.Kind() != r.schema.Attr(i).Kind {
			return fmt.Errorf("relation: %s.%s expects %s, got %s %s",
				r.schema.Name(), r.schema.Attr(i).Name, r.schema.Attr(i).Kind, v.Kind(), v)
		}
	}
	return nil
}

// TypeCheck validates a tuple against the schema without inserting
// it — the pre-validation step of write-ahead logging, which must
// know a row will apply before logging it.
func (r *Instance) TypeCheck(t Tuple) error { return r.typeCheck(t) }

// Insert adds a tuple. It returns the tuple's ID and whether the
// tuple was new; inserting a duplicate is not an error (set
// semantics) and returns the existing ID. Re-inserting a previously
// deleted tuple assigns a fresh ID.
func (r *Instance) Insert(t Tuple) (TupleID, bool, error) {
	r.mutable()
	if err := r.typeCheck(t); err != nil {
		return -1, false, err
	}
	k := t.Key()
	if id, ok := r.lookupKey(k); ok && r.Live(id) {
		return id, false, nil
	}
	id := TupleID(r.n)
	for a := range r.cols {
		r.cols[a].push(t[a])
	}
	r.n++
	r.setKey(k, id)
	r.noteInsert(id)
	r.live++
	r.version++
	return id, true, nil
}

// Delete tombstones the tuple with the given ID and reports whether
// it was live. IDs of other tuples are unchanged; the ID is never
// reused.
func (r *Instance) Delete(id TupleID) bool {
	r.mutable()
	if !r.Live(id) {
		return false
	}
	if r.dead == nil {
		r.dead = bitset.New(r.n)
	}
	r.dead.Add(id)
	r.live--
	r.version++
	return true
}

// CoerceTuple coerces native Go values (strings → names, integer
// types → ints) into a Tuple.
func CoerceTuple(vals ...any) (Tuple, error) {
	t := make(Tuple, len(vals))
	for i, x := range vals {
		v, err := CoerceValue(x)
		if err != nil {
			return nil, err
		}
		t[i] = v
	}
	return t, nil
}

// InsertValues coerces native Go values (strings → names, ints →
// integers) and inserts the resulting tuple.
func (r *Instance) InsertValues(vals ...any) (TupleID, error) {
	t, err := CoerceTuple(vals...)
	if err != nil {
		return -1, err
	}
	id, _, err := r.Insert(t)
	return id, err
}

// MustInsert is InsertValues that panics on error, for fixtures.
func (r *Instance) MustInsert(vals ...any) TupleID {
	id, err := r.InsertValues(vals...)
	if err != nil {
		panic(err)
	}
	return id
}

// Tuple materializes the tuple with the given ID from the columns
// (including tombstoned IDs — deleted tuples keep their data for
// explanation output). Each call allocates a fresh row; code touching
// individual cells in bulk should read the columns via Col or ValueAt
// instead.
func (r *Instance) Tuple(id TupleID) Tuple {
	t := make(Tuple, len(r.cols))
	for a := range r.cols {
		t[a] = r.cols[a].value(id)
	}
	return t
}

// Lookup returns the ID of an equal live tuple, if present. It is a
// hash lookup on the key index — O(1) in the instance size — and the
// membership primitive every query.Model and the cqa ground path
// build on.
func (r *Instance) Lookup(t Tuple) (TupleID, bool) {
	id, ok := r.lookupKey(t.Key())
	if !ok || !r.Live(id) {
		return 0, false
	}
	return id, true
}

// Contains reports whether an equal live tuple is present, in O(1)
// via Lookup. For equality lookups on a single attribute use
// IndexScan (the secondary indexes of index.go).
func (r *Instance) Contains(t Tuple) bool {
	_, ok := r.Lookup(t)
	return ok
}

// Range iterates live tuples in ID order, materializing each row from
// the columns; stop early by returning false. Code that only needs
// ids or individual cells should use RangeIDs/Col instead and skip
// the per-row materialization.
func (r *Instance) Range(yield func(id TupleID, t Tuple) bool) {
	for id := 0; id < r.n; id++ {
		if r.dead != nil && r.dead.Has(id) {
			continue
		}
		if !yield(id, r.Tuple(id)) {
			return
		}
	}
}

// RangeIDs iterates live tuple IDs in ascending order without
// touching the tuple data; stop early by returning false.
func (r *Instance) RangeIDs(yield func(id TupleID) bool) {
	for id := 0; id < r.n; id++ {
		if r.dead != nil && r.dead.Has(id) {
			continue
		}
		if !yield(id) {
			return
		}
	}
}

// AllIDs returns the set of all live tuple IDs.
func (r *Instance) AllIDs() *bitset.Set {
	s := bitset.Full(r.n)
	if r.dead != nil {
		s.DifferenceWith(r.dead)
	}
	return s
}

// Subset materializes the live tuples selected by the given ID set as
// a fresh Instance (same schema). Mostly for display; algorithms work
// on the ID sets directly.
func (r *Instance) Subset(ids *bitset.Set) *Instance {
	out := NewInstance(r.schema)
	ids.Range(func(id int) bool {
		if r.Live(id) {
			out.Insert(r.Tuple(id)) //nolint:errcheck // re-inserting typed tuples cannot fail
		}
		return true
	})
	return out
}

// Clone returns an independent copy holding the live tuples; IDs are
// reassigned densely in the original ID order.
func (r *Instance) Clone() *Instance {
	out := NewInstance(r.schema)
	r.Range(func(_ TupleID, t Tuple) bool {
		out.Insert(t) //nolint:errcheck // same schema
		return true
	})
	return out
}

// Union inserts every live tuple of other (same schema) into r. It is
// the source-integration operation of Example 1.
func (r *Instance) Union(other *Instance) error {
	if !r.schema.Equal(other.schema) {
		return fmt.Errorf("relation: union of different schemas %s and %s", r.schema, other.schema)
	}
	var err error
	other.Range(func(_ TupleID, t Tuple) bool {
		_, _, err = r.Insert(t)
		return err == nil
	})
	return err
}

// SortedIDs returns the live tuple IDs ordered by tuple value (Order),
// for deterministic rendering.
func (r *Instance) SortedIDs() []TupleID {
	ids := make([]TupleID, 0, r.live)
	r.Range(func(id TupleID, _ Tuple) bool {
		ids = append(ids, id)
		return true
	})
	sort.Slice(ids, func(a, b int) bool {
		return r.compareIDs(ids[a], ids[b]) < 0
	})
	return ids
}

// ActiveDomain appends every value occurring in the selected live
// tuples to dst and returns it. Pass nil ids for the whole instance.
func (r *Instance) ActiveDomain(ids *bitset.Set, dst []Value) []Value {
	appendRow := func(id TupleID) {
		for a := range r.cols {
			dst = append(dst, r.cols[a].value(id))
		}
	}
	if ids == nil {
		r.RangeIDs(func(id TupleID) bool {
			appendRow(id)
			return true
		})
		return dst
	}
	ids.Range(func(id int) bool {
		if r.Live(id) {
			appendRow(id)
		}
		return true
	})
	return dst
}

// String renders the instance as a deterministic multi-line listing.
func (r *Instance) String() string {
	var b strings.Builder
	b.WriteString(r.schema.String())
	b.WriteString(" {")
	for i, id := range r.SortedIDs() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(' ')
		b.WriteString(r.Tuple(id).String())
	}
	b.WriteString(" }")
	return b.String()
}
