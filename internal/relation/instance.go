package relation

import (
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/bitset"
)

// Tuple is one row of a relation. Tuples are compared by value; the
// instance enforces set semantics.
type Tuple []Value

// TupleID identifies a tuple inside one Instance. IDs are dense,
// starting at 0, in insertion order; they never change once assigned.
type TupleID = int

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding of the tuple, used for
// set-semantics deduplication.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16*len(t))
	for _, v := range t {
		b = v.appendKey(b)
	}
	return string(b)
}

// Project returns the subtuple at the given attribute positions.
func (t Tuple) Project(idx []int) Tuple {
	out := make(Tuple, len(idx))
	for i, j := range idx {
		out[i] = t[j]
	}
	return out
}

// String renders "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Instance is a finite set of tuples over one schema. Insertion
// assigns dense TupleIDs; duplicate inserts return the existing ID.
type Instance struct {
	schema *Schema
	tuples []Tuple
	byKey  map[string]TupleID
}

// NewInstance returns an empty instance of the schema.
func NewInstance(schema *Schema) *Instance {
	if schema == nil {
		panic("relation: nil schema")
	}
	return &Instance{schema: schema, byKey: make(map[string]TupleID)}
}

// Schema returns the instance's schema.
func (r *Instance) Schema() *Schema { return r.schema }

// Len returns the number of (distinct) tuples.
func (r *Instance) Len() int { return len(r.tuples) }

// typeCheck validates a tuple against the schema.
func (r *Instance) typeCheck(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation: %s expects %d values, got %d", r.schema.Name(), r.schema.Arity(), len(t))
	}
	for i, v := range t {
		if v.Kind() != r.schema.Attr(i).Kind {
			return fmt.Errorf("relation: %s.%s expects %s, got %s %s",
				r.schema.Name(), r.schema.Attr(i).Name, r.schema.Attr(i).Kind, v.Kind(), v)
		}
	}
	return nil
}

// Insert adds a tuple. It returns the tuple's ID and whether the
// tuple was new; inserting a duplicate is not an error (set
// semantics) and returns the existing ID.
func (r *Instance) Insert(t Tuple) (TupleID, bool, error) {
	if err := r.typeCheck(t); err != nil {
		return -1, false, err
	}
	k := t.Key()
	if id, ok := r.byKey[k]; ok {
		return id, false, nil
	}
	id := TupleID(len(r.tuples))
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples = append(r.tuples, cp)
	r.byKey[k] = id
	return id, true, nil
}

// InsertValues coerces native Go values (strings → names, ints →
// integers) and inserts the resulting tuple.
func (r *Instance) InsertValues(vals ...any) (TupleID, error) {
	t := make(Tuple, len(vals))
	for i, x := range vals {
		v, err := CoerceValue(x)
		if err != nil {
			return -1, err
		}
		t[i] = v
	}
	id, _, err := r.Insert(t)
	return id, err
}

// MustInsert is InsertValues that panics on error, for fixtures.
func (r *Instance) MustInsert(vals ...any) TupleID {
	id, err := r.InsertValues(vals...)
	if err != nil {
		panic(err)
	}
	return id
}

// Tuple returns the tuple with the given ID. The caller must not
// mutate the result.
func (r *Instance) Tuple(id TupleID) Tuple {
	return r.tuples[id]
}

// Lookup returns the ID of an equal tuple, if present.
func (r *Instance) Lookup(t Tuple) (TupleID, bool) {
	id, ok := r.byKey[t.Key()]
	return id, ok
}

// Contains reports whether an equal tuple is present.
func (r *Instance) Contains(t Tuple) bool {
	_, ok := r.Lookup(t)
	return ok
}

// Range iterates tuples in ID order; stop early by returning false.
func (r *Instance) Range(yield func(id TupleID, t Tuple) bool) {
	for id, t := range r.tuples {
		if !yield(TupleID(id), t) {
			return
		}
	}
}

// AllIDs returns the set of all tuple IDs.
func (r *Instance) AllIDs() *bitset.Set {
	return bitset.Full(len(r.tuples))
}

// Subset materializes the tuples selected by the given ID set as a
// fresh Instance (same schema). Mostly for display; algorithms work on
// the ID sets directly.
func (r *Instance) Subset(ids *bitset.Set) *Instance {
	out := NewInstance(r.schema)
	ids.Range(func(id int) bool {
		if id < len(r.tuples) {
			out.Insert(r.tuples[id]) //nolint:errcheck // re-inserting typed tuples cannot fail
		}
		return true
	})
	return out
}

// Clone returns an independent copy of the instance.
func (r *Instance) Clone() *Instance {
	out := NewInstance(r.schema)
	for _, t := range r.tuples {
		out.Insert(t) //nolint:errcheck // same schema
	}
	return out
}

// Union inserts every tuple of other (same schema) into r. It is the
// source-integration operation of Example 1.
func (r *Instance) Union(other *Instance) error {
	if !r.schema.Equal(other.schema) {
		return fmt.Errorf("relation: union of different schemas %s and %s", r.schema, other.schema)
	}
	for _, t := range other.tuples {
		if _, _, err := r.Insert(t); err != nil {
			return err
		}
	}
	return nil
}

// SortedIDs returns all tuple IDs ordered by tuple value (Order), for
// deterministic rendering.
func (r *Instance) SortedIDs() []TupleID {
	ids := make([]TupleID, len(r.tuples))
	for i := range ids {
		ids[i] = TupleID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		return tupleLess(r.tuples[ids[a]], r.tuples[ids[b]])
	})
	return ids
}

func tupleLess(a, b Tuple) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if c := a[i].Order(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// ActiveDomain appends every value occurring in the selected tuples to
// dst and returns it. Pass nil ids for the whole instance.
func (r *Instance) ActiveDomain(ids *bitset.Set, dst []Value) []Value {
	add := func(t Tuple) {
		dst = append(dst, t...)
	}
	if ids == nil {
		for _, t := range r.tuples {
			add(t)
		}
	} else {
		ids.Range(func(id int) bool {
			if id < len(r.tuples) {
				add(r.tuples[id])
			}
			return true
		})
	}
	return dst
}

// String renders the instance as a deterministic multi-line listing.
func (r *Instance) String() string {
	var b strings.Builder
	b.WriteString(r.schema.String())
	b.WriteString(" {")
	for i, id := range r.SortedIDs() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(' ')
		b.WriteString(r.tuples[id].String())
	}
	b.WriteString(" }")
	return b.String()
}
