package relation

import (
	"strings"
	"testing"

	"prefcqa/internal/bitset"
)

func mgrSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("Mgr", NameAttr("Name"), NameAttr("Dept"), IntAttr("Salary"), IntAttr("Reports"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty relation name should fail")
	}
	if _, err := NewSchema("R"); err == nil {
		t.Error("schema without attributes should fail")
	}
	if _, err := NewSchema("R", NameAttr("A"), NameAttr("A")); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := NewSchema("R", NameAttr("bad name")); err == nil {
		t.Error("attribute with space should fail")
	}
	if _, err := NewSchema("1R", NameAttr("A")); err == nil {
		t.Error("relation name starting with digit should fail")
	}
	if _, err := NewSchema("R-S", NameAttr("A")); err == nil {
		t.Error("relation name with dash should fail")
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := mgrSchema(t)
	if s.Name() != "Mgr" || s.Arity() != 4 {
		t.Fatalf("Name/Arity = %s/%d", s.Name(), s.Arity())
	}
	if i, ok := s.Index("Salary"); !ok || i != 2 {
		t.Fatalf("Index(Salary) = %d,%v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Fatal("Index of unknown attribute should fail")
	}
	idx, err := s.Indexes([]string{"Dept", "Name"})
	if err != nil || idx[0] != 1 || idx[1] != 0 {
		t.Fatalf("Indexes = %v, %v", idx, err)
	}
	if _, err := s.Indexes([]string{"Dept", "Dept"}); err == nil {
		t.Fatal("duplicate names in Indexes should fail")
	}
	if _, err := s.Indexes([]string{"Zzz"}); err == nil {
		t.Fatal("unknown name in Indexes should fail")
	}
	attrs := s.Attrs()
	attrs[0].Name = "Mutated"
	if s.Attr(0).Name != "Name" {
		t.Fatal("Attrs should return a copy")
	}
	want := "Mgr(Name:name, Dept:name, Salary:int, Reports:int)"
	if s.String() != want {
		t.Fatalf("String = %q, want %q", s.String(), want)
	}
}

func TestSchemaEqual(t *testing.T) {
	a := mgrSchema(t)
	b := mgrSchema(t)
	if !a.Equal(b) {
		t.Fatal("identical schemas should be equal")
	}
	c := MustSchema("Mgr", NameAttr("Name"), NameAttr("Dept"), IntAttr("Salary"), NameAttr("Reports"))
	if a.Equal(c) {
		t.Fatal("different kinds should not be equal")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) should be false")
	}
}

func TestInsertSetSemantics(t *testing.T) {
	inst := NewInstance(mgrSchema(t))
	id1, err := inst.InsertValues("Mary", "R&D", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := inst.InsertValues("Mary", "R&D", 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("duplicate insert returned new ID %d != %d", id2, id1)
	}
	if inst.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (set semantics)", inst.Len())
	}
	id3 := inst.MustInsert("John", "R&D", 10, 2)
	if id3 != 1 || inst.Len() != 2 {
		t.Fatalf("second tuple: id=%d len=%d", id3, inst.Len())
	}
}

func TestInsertTypeErrors(t *testing.T) {
	inst := NewInstance(mgrSchema(t))
	if _, err := inst.InsertValues("Mary", "R&D", 40); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := inst.InsertValues("Mary", "R&D", "forty", 3); err == nil {
		t.Error("name in int column should fail")
	}
	if _, err := inst.InsertValues(1, "R&D", 40, 3); err == nil {
		t.Error("int in name column should fail")
	}
	if _, err := inst.InsertValues("Mary", "R&D", 3.5, 3); err == nil {
		t.Error("uncoercible value should fail")
	}
	if inst.Len() != 0 {
		t.Errorf("failed inserts must not modify the instance, Len = %d", inst.Len())
	}
}

func TestLookupContains(t *testing.T) {
	inst := NewInstance(mgrSchema(t))
	inst.MustInsert("Mary", "R&D", 40, 3)
	tup := Tuple{Name("Mary"), Name("R&D"), Int(40), Int(3)}
	if id, ok := inst.Lookup(tup); !ok || id != 0 {
		t.Fatalf("Lookup = %d, %v", id, ok)
	}
	if !inst.Contains(tup) {
		t.Fatal("Contains should be true")
	}
	if inst.Contains(Tuple{Name("Bob"), Name("IT"), Int(1), Int(1)}) {
		t.Fatal("Contains of absent tuple should be false")
	}
}

func TestInsertCopiesTuple(t *testing.T) {
	inst := NewInstance(MustSchema("R", IntAttr("A")))
	tup := Tuple{Int(1)}
	id, _, err := inst.Insert(tup)
	if err != nil {
		t.Fatal(err)
	}
	tup[0] = Int(99)
	if got := inst.Tuple(id)[0]; !got.Equal(Int(1)) {
		t.Fatalf("Insert must copy the tuple; got %v", got)
	}
}

func TestProjectAndKey(t *testing.T) {
	tup := Tuple{Name("a"), Int(1), Name("b")}
	p := tup.Project([]int{2, 0})
	if !p.Equal(Tuple{Name("b"), Name("a")}) {
		t.Fatalf("Project = %v", p)
	}
	// Keys must distinguish values that print similarly.
	a := Tuple{Name("1")}
	b := Tuple{Int(1)}
	if a.Key() == b.Key() {
		t.Fatal("name '1' and int 1 must have different keys")
	}
	// Concatenation ambiguity: ("ab","c") vs ("a","bc").
	x := Tuple{Name("ab"), Name("c")}
	y := Tuple{Name("a"), Name("bc")}
	if x.Key() == y.Key() {
		t.Fatal("keys must be concatenation-unambiguous")
	}
}

func TestSubsetAndClone(t *testing.T) {
	inst := NewInstance(mgrSchema(t))
	inst.MustInsert("Mary", "R&D", 40, 3)
	inst.MustInsert("John", "R&D", 10, 2)
	inst.MustInsert("Mary", "IT", 20, 1)

	sub := inst.Subset(bitset.FromSlice([]int{0, 2}))
	if sub.Len() != 2 {
		t.Fatalf("Subset Len = %d", sub.Len())
	}
	if !sub.Contains(Tuple{Name("Mary"), Name("IT"), Int(20), Int(1)}) {
		t.Fatal("Subset lost a tuple")
	}
	cl := inst.Clone()
	cl.MustInsert("Ann", "PR", 5, 5)
	if inst.Len() != 3 || cl.Len() != 4 {
		t.Fatal("Clone should be independent")
	}
}

func TestUnionIntegration(t *testing.T) {
	// Example 1: r = s1 ∪ s2 ∪ s3.
	s1 := NewInstance(mgrSchema(t))
	s1.MustInsert("Mary", "R&D", 40, 3)
	s2 := NewInstance(mgrSchema(t))
	s2.MustInsert("John", "R&D", 10, 2)
	s3 := NewInstance(mgrSchema(t))
	s3.MustInsert("Mary", "IT", 20, 1)
	s3.MustInsert("John", "PR", 30, 4)

	r := NewInstance(mgrSchema(t))
	for _, s := range []*Instance{s1, s2, s3} {
		if err := r.Union(s); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("integrated instance Len = %d, want 4", r.Len())
	}
	other := NewInstance(MustSchema("Other", NameAttr("X")))
	if err := r.Union(other); err == nil {
		t.Fatal("union across schemas should fail")
	}
}

func TestSortedIDsDeterministic(t *testing.T) {
	inst := NewInstance(MustSchema("R", IntAttr("A"), NameAttr("B")))
	inst.MustInsert(3, "c")
	inst.MustInsert(1, "z")
	inst.MustInsert(1, "a")
	ids := inst.SortedIDs()
	var got []Tuple
	for _, id := range ids {
		got = append(got, inst.Tuple(id))
	}
	want := []Tuple{{Int(1), Name("a")}, {Int(1), Name("z")}, {Int(3), Name("c")}}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("SortedIDs order = %v", got)
		}
	}
}

func TestActiveDomain(t *testing.T) {
	inst := NewInstance(MustSchema("R", IntAttr("A"), NameAttr("B")))
	inst.MustInsert(1, "x")
	inst.MustInsert(2, "y")
	all := inst.ActiveDomain(nil, nil)
	if len(all) != 4 {
		t.Fatalf("ActiveDomain(all) = %v", all)
	}
	some := inst.ActiveDomain(bitset.FromSlice([]int{1}), nil)
	if len(some) != 2 || !some[0].Equal(Int(2)) || !some[1].Equal(Name("y")) {
		t.Fatalf("ActiveDomain(subset) = %v", some)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	inst := NewInstance(MustSchema("R", IntAttr("A")))
	for i := 0; i < 5; i++ {
		inst.MustInsert(i)
	}
	n := 0
	inst.Range(func(TupleID, Tuple) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Range visited %d, want 2", n)
	}
}

func TestInstanceString(t *testing.T) {
	inst := NewInstance(MustSchema("R", IntAttr("A")))
	inst.MustInsert(2)
	inst.MustInsert(1)
	got := inst.String()
	if !strings.Contains(got, "(1), (2)") {
		t.Fatalf("String = %q", got)
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	mgr, err := db.AddRelation(mgrSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	mgr.MustInsert("Mary", "R&D", 40, 3)
	if _, err := db.AddRelation(mgrSchema(t)); err == nil {
		t.Fatal("duplicate relation should fail")
	}
	dept := NewInstance(MustSchema("Dept", NameAttr("DName")))
	if err := db.AddInstance(dept); err != nil {
		t.Fatal(err)
	}
	if err := db.AddInstance(dept); err == nil {
		t.Fatal("duplicate AddInstance should fail")
	}
	if got, ok := db.Relation("Mgr"); !ok || got != mgr {
		t.Fatal("Relation lookup failed")
	}
	if _, ok := db.Relation("Nope"); ok {
		t.Fatal("unknown relation lookup should fail")
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "Mgr" || names[1] != "Dept" {
		t.Fatalf("Names = %v", names)
	}
	if db.Len() != 2 || db.TotalTuples() != 1 {
		t.Fatalf("Len/TotalTuples = %d/%d", db.Len(), db.TotalTuples())
	}
	if db.String() == "" {
		t.Fatal("String should render")
	}
}
