package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// The codec reads and writes instances as CSV with a typed header:
//
//	Name:name,Dept:name,Salary:int,Reports:int
//	Mary,R&D,40000,3
//	John,R&D,10000,2
//
// Header cells are "attr:kind" where kind is "name" or "int". Values
// in name columns are taken verbatim; values in int columns must parse
// as decimal integers. This is the on-disk format of the cmd/ tools.

// ReadCSV parses an instance for the named relation from CSV with a
// typed header row.
func ReadCSV(relName string, src io.Reader) (*Instance, error) {
	cr := csv.NewReader(src)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	for i, cell := range header {
		name, kindStr, ok := strings.Cut(strings.TrimSpace(cell), ":")
		if !ok {
			return nil, fmt.Errorf("relation: header cell %q must be attr:kind", cell)
		}
		kind, err := ParseKind(strings.TrimSpace(kindStr))
		if err != nil {
			return nil, fmt.Errorf("relation: header cell %q: %w", cell, err)
		}
		attrs[i] = Attribute{Name: strings.TrimSpace(name), Kind: kind}
	}
	schema, err := NewSchema(relName, attrs...)
	if err != nil {
		return nil, err
	}
	inst := NewInstance(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(attrs) {
			return nil, fmt.Errorf("relation: line %d has %d fields, want %d", line, len(rec), len(attrs))
		}
		t := make(Tuple, len(rec))
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if attrs[i].Kind == KindName {
				t[i] = Name(cell)
				continue
			}
			v, err := ParseValue(cell)
			if err != nil || v.Kind() != KindInt {
				return nil, fmt.Errorf("relation: line %d field %s: %q is not an integer", line, attrs[i].Name, cell)
			}
			t[i] = v
		}
		if _, _, err := inst.Insert(t); err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", line, err)
		}
	}
	return inst, nil
}

// ParseKind parses "name" or "int" — the textual attribute kinds of
// the CSV header and the JSON wire schema.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "name":
		return KindName, nil
	case "int":
		return KindInt, nil
	default:
		return 0, fmt.Errorf("relation: unknown kind %q (want name or int)", s)
	}
}

// WriteCSV writes the instance in the format accepted by ReadCSV,
// tuples in deterministic value order.
func WriteCSV(dst io.Writer, inst *Instance) error {
	cw := csv.NewWriter(dst)
	s := inst.Schema()
	header := make([]string, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		header[i] = s.Attr(i).Name + ":" + s.Attr(i).Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, s.Arity())
	for _, id := range inst.SortedIDs() {
		t := inst.Tuple(id)
		for i, v := range t {
			if v.Kind() == KindName {
				rec[i] = v.AsName()
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// The JSON wire codec below is the value- and instance-level encoding
// of the prefserve protocol: schemas as {name, kind} attribute lists,
// cells in the textual constant syntax of Value.String / ParseValue
// (integers bare, names single-quoted with '' escaping), so every
// value round-trips exactly — including names that look like integers
// or contain quotes. Only live tuples are encoded: a tombstoned
// instance wires to its live content, and decoding re-densifies the
// tuple IDs.

// WireAttr is one attribute of a wire-encoded schema.
type WireAttr struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "name" or "int"
}

// WireInstance is the JSON wire form of a relation instance.
type WireInstance struct {
	Relation string     `json:"relation"`
	Attrs    []WireAttr `json:"attrs"`
	// Rows holds the live tuples in deterministic value order, one
	// cell per attribute, encoded by EncodeValue.
	Rows [][]string `json:"rows"`
}

// EncodeValue renders a value in the wire cell syntax (Value.String).
func EncodeValue(v Value) string { return v.String() }

// DecodeValue parses a wire cell against an attribute kind. Unlike
// the bare ParseValue convenience (which falls back to names for
// unquoted non-integers), the expected kind disambiguates, so decode
// is the exact inverse of EncodeValue.
func DecodeValue(kind Kind, cell string) (Value, error) {
	v, err := ParseValue(cell)
	if err != nil {
		return Value{}, err
	}
	if v.Kind() != kind {
		return Value{}, fmt.Errorf("relation: wire cell %q is a %s, want %s", cell, v.Kind(), kind)
	}
	return v, nil
}

// EncodeWire encodes the instance's schema and live tuples for the
// wire. The inverse is DecodeWire.
func EncodeWire(inst *Instance) WireInstance {
	s := inst.Schema()
	w := WireInstance{
		Relation: s.Name(),
		Attrs:    make([]WireAttr, s.Arity()),
		Rows:     make([][]string, 0, inst.Len()),
	}
	for i := 0; i < s.Arity(); i++ {
		w.Attrs[i] = WireAttr{Name: s.Attr(i).Name, Kind: s.Attr(i).Kind.String()}
	}
	for _, id := range inst.SortedIDs() {
		t := inst.Tuple(id)
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = EncodeValue(v)
		}
		w.Rows = append(w.Rows, row)
	}
	return w
}

// DecodeWire rebuilds an instance from its wire form. Tuple IDs are
// assigned densely in row order; the live tuple set and schema equal
// the encoded instance's.
func DecodeWire(w WireInstance) (*Instance, error) {
	attrs := make([]Attribute, len(w.Attrs))
	for i, a := range w.Attrs {
		kind, err := ParseKind(a.Kind)
		if err != nil {
			return nil, fmt.Errorf("relation: wire attr %q: %w", a.Name, err)
		}
		attrs[i] = Attribute{Name: a.Name, Kind: kind}
	}
	schema, err := NewSchema(w.Relation, attrs...)
	if err != nil {
		return nil, err
	}
	inst := NewInstance(schema)
	for ri, row := range w.Rows {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("relation: wire row %d has %d cells, want %d", ri, len(row), len(attrs))
		}
		t := make(Tuple, len(row))
		for i, cell := range row {
			v, err := DecodeValue(attrs[i].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("relation: wire row %d, attr %s: %w", ri, attrs[i].Name, err)
			}
			t[i] = v
		}
		if _, _, err := inst.Insert(t); err != nil {
			return nil, fmt.Errorf("relation: wire row %d: %w", ri, err)
		}
	}
	return inst, nil
}
