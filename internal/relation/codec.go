package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// The codec reads and writes instances as CSV with a typed header:
//
//	Name:name,Dept:name,Salary:int,Reports:int
//	Mary,R&D,40000,3
//	John,R&D,10000,2
//
// Header cells are "attr:kind" where kind is "name" or "int". Values
// in name columns are taken verbatim; values in int columns must parse
// as decimal integers. This is the on-disk format of the cmd/ tools.

// ReadCSV parses an instance for the named relation from CSV with a
// typed header row.
func ReadCSV(relName string, src io.Reader) (*Instance, error) {
	cr := csv.NewReader(src)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	attrs := make([]Attribute, len(header))
	for i, cell := range header {
		name, kindStr, ok := strings.Cut(strings.TrimSpace(cell), ":")
		if !ok {
			return nil, fmt.Errorf("relation: header cell %q must be attr:kind", cell)
		}
		var kind Kind
		switch strings.TrimSpace(kindStr) {
		case "name":
			kind = KindName
		case "int":
			kind = KindInt
		default:
			return nil, fmt.Errorf("relation: unknown kind %q in header cell %q (want name or int)", kindStr, cell)
		}
		attrs[i] = Attribute{Name: strings.TrimSpace(name), Kind: kind}
	}
	schema, err := NewSchema(relName, attrs...)
	if err != nil {
		return nil, err
	}
	inst := NewInstance(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		if len(rec) != len(attrs) {
			return nil, fmt.Errorf("relation: line %d has %d fields, want %d", line, len(rec), len(attrs))
		}
		t := make(Tuple, len(rec))
		for i, cell := range rec {
			cell = strings.TrimSpace(cell)
			if attrs[i].Kind == KindName {
				t[i] = Name(cell)
				continue
			}
			v, err := ParseValue(cell)
			if err != nil || v.Kind() != KindInt {
				return nil, fmt.Errorf("relation: line %d field %s: %q is not an integer", line, attrs[i].Name, cell)
			}
			t[i] = v
		}
		if _, _, err := inst.Insert(t); err != nil {
			return nil, fmt.Errorf("relation: line %d: %w", line, err)
		}
	}
	return inst, nil
}

// WriteCSV writes the instance in the format accepted by ReadCSV,
// tuples in deterministic value order.
func WriteCSV(dst io.Writer, inst *Instance) error {
	cw := csv.NewWriter(dst)
	s := inst.Schema()
	header := make([]string, s.Arity())
	for i := 0; i < s.Arity(); i++ {
		header[i] = s.Attr(i).Name + ":" + s.Attr(i).Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, s.Arity())
	for _, id := range inst.SortedIDs() {
		t := inst.Tuple(id)
		for i, v := range t {
			if v.Kind() == KindName {
				rec[i] = v.AsName()
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
