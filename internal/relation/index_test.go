package relation

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// indexScanIDs collects the IDs IndexScan yields.
func indexScanIDs(r *Instance, attr int, v Value) []TupleID {
	var out []TupleID
	r.IndexScan(attr, v, func(id TupleID, t Tuple) bool {
		if !t[attr].Equal(v) {
			panic(fmt.Sprintf("IndexScan yielded %s for %s", t[attr], v))
		}
		out = append(out, id)
		return true
	})
	return out
}

// naiveScanIDs is the reference: a full Range filter.
func naiveScanIDs(r *Instance, attr int, v Value) []TupleID {
	var out []TupleID
	r.Range(func(id TupleID, t Tuple) bool {
		if t[attr].Equal(v) {
			out = append(out, id)
		}
		return true
	})
	return out
}

func sameIDs(a, b []TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexScanMatchesRange(t *testing.T) {
	s := MustSchema("R", IntAttr("K"), NameAttr("V"))
	inst := NewInstance(s)
	for i := 0; i < 200; i++ {
		inst.MustInsert(i%17, fmt.Sprintf("v%d", i%5))
	}
	for k := 0; k < 20; k++ {
		v := Int(int64(k))
		if got, want := indexScanIDs(inst, 0, v), naiveScanIDs(inst, 0, v); !sameIDs(got, want) {
			t.Fatalf("K=%d: index %v != scan %v", k, got, want)
		}
	}
	for n := 0; n < 7; n++ {
		v := Name(fmt.Sprintf("v%d", n))
		if got, want := indexScanIDs(inst, 1, v), naiveScanIDs(inst, 1, v); !sameIDs(got, want) {
			t.Fatalf("V=v%d: index %v != scan %v", n, got, want)
		}
	}
}

// TestIndexMaintainedThroughMutation probes the index early, then
// keeps mutating: postings must be maintained incrementally, with
// deletes filtered by liveness and re-inserts getting fresh IDs.
func TestIndexMaintainedThroughMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := MustSchema("R", IntAttr("K"), IntAttr("V"))
	inst := NewInstance(s)
	var live []TupleID
	for i := 0; i < 50; i++ {
		live = append(live, inst.MustInsert(i%7, i))
	}
	indexScanIDs(inst, 0, Int(3)) // build the index before mutating
	for step := 0; step < 400; step++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(live))
			inst.Delete(live[i])
			live = append(live[:i], live[i+1:]...)
		} else {
			live = append(live, inst.MustInsert(rng.Intn(7), rng.Intn(1000)))
		}
		k := Int(int64(rng.Intn(7)))
		if got, want := indexScanIDs(inst, 0, k), naiveScanIDs(inst, 0, k); !sameIDs(got, want) {
			t.Fatalf("step %d K=%s: index %v != scan %v", step, k, got, want)
		}
	}
	// Estimates are upper bounds on the live count.
	for k := 0; k < 7; k++ {
		v := Int(int64(k))
		if est, liveN := inst.IndexEstimate(0, v), len(naiveScanIDs(inst, 0, v)); est < liveN {
			t.Fatalf("K=%d: estimate %d < live %d", k, est, liveN)
		}
	}
}

// TestIndexSnapshotConsistency: a frozen parent probed after the fork
// has moved on must see exactly its own tuples, whether the index was
// built before or after forking.
func TestIndexSnapshotConsistency(t *testing.T) {
	for _, buildBefore := range []bool{false, true} {
		s := MustSchema("R", IntAttr("K"), IntAttr("V"))
		parent := NewInstance(s)
		for i := 0; i < 30; i++ {
			parent.MustInsert(i%3, i)
		}
		wantParent := naiveScanIDs(parent, 0, Int(1))
		if buildBefore {
			indexScanIDs(parent, 0, Int(1))
		}
		child := parent.Fork()
		// Mutate the child: delete one match, add two more.
		child.Delete(wantParent[0])
		child.MustInsert(1, 1000)
		child.MustInsert(1, 1001)
		if got := indexScanIDs(parent, 0, Int(1)); !sameIDs(got, wantParent) {
			t.Fatalf("buildBefore=%v: parent sees %v, want %v", buildBefore, got, wantParent)
		}
		if got, want := indexScanIDs(child, 0, Int(1)), naiveScanIDs(child, 0, Int(1)); !sameIDs(got, want) {
			t.Fatalf("buildBefore=%v: child index %v != scan %v", buildBefore, got, want)
		}
		// A second-generation fork keeps the chain consistent too.
		grand := child.Fork()
		grand.MustInsert(1, 2000)
		if got, want := indexScanIDs(grand, 0, Int(1)), naiveScanIDs(grand, 0, Int(1)); !sameIDs(got, want) {
			t.Fatalf("buildBefore=%v: grandchild index %v != scan %v", buildBefore, got, want)
		}
	}
}

// TestIndexSiblingForkDetaches: forking one frozen parent twice is
// unsupported by the storage chain, but the shared index must still
// notice the sibling (a non-monotone insert ID) and detach before
// recording anything, so each chain's IndexScan keeps agreeing with
// its own Range whichever sibling probes first.
func TestIndexSiblingForkDetaches(t *testing.T) {
	for _, probeFirst := range []string{"a", "b"} {
		s := MustSchema("R", IntAttr("K"), IntAttr("V"))
		parent := NewInstance(s)
		for i := 0; i < 5; i++ {
			parent.MustInsert(i, i)
		}
		a := parent.Fork()
		b := parent.Fork()
		a.MustInsert(7, 100) // id 5 on chain a
		b.MustInsert(8, 200) // id 5 again: b must detach
		first, second := a, b
		if probeFirst == "b" {
			first, second = b, a
		}
		for _, inst := range []*Instance{first, second, parent} {
			for k := 0; k < 9; k++ {
				v := Int(int64(k))
				if got, want := indexScanIDs(inst, 0, v), naiveScanIDs(inst, 0, v); !sameIDs(got, want) {
					t.Fatalf("probeFirst=%s K=%d: index %v != scan %v", probeFirst, k, got, want)
				}
			}
		}
	}
}

// TestIndexConcurrentReadersAndWriter mirrors the facade's snapshot
// model: readers probe frozen versions while the head keeps mutating.
// Run under -race.
func TestIndexConcurrentReadersAndWriter(t *testing.T) {
	s := MustSchema("R", IntAttr("K"), IntAttr("V"))
	head := NewInstance(s)
	for i := 0; i < 500; i++ {
		head.MustInsert(i%11, i)
	}
	var wg sync.WaitGroup
	for gen := 0; gen < 20; gen++ {
		frozen := head
		head = head.Fork()
		wg.Add(1)
		go func(snap *Instance, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				k := Int(int64(rng.Intn(11)))
				ids := indexScanIDs(snap, 0, k)
				if est := snap.IndexEstimate(0, k); est < len(ids) {
					panic(fmt.Sprintf("estimate %d < live %d", est, len(ids)))
				}
			}
		}(frozen, int64(gen))
		for i := 0; i < 30; i++ {
			head.MustInsert(i%11, 1000*gen+i)
			if i%3 == 0 {
				head.Delete(TupleID(i * gen % head.NumIDs()))
			}
		}
	}
	wg.Wait()
	for k := 0; k < 11; k++ {
		v := Int(int64(k))
		if got, want := indexScanIDs(head, 0, v), naiveScanIDs(head, 0, v); !sameIDs(got, want) {
			t.Fatalf("head K=%d: index %v != scan %v", k, got, want)
		}
	}
}

func TestDistinctValues(t *testing.T) {
	s := MustSchema("R", IntAttr("K"), NameAttr("V"))
	inst := NewInstance(s)
	ids := make([]TupleID, 0)
	for i := 0; i < 40; i++ {
		ids = append(ids, inst.MustInsert(i%6, fmt.Sprintf("v%d", i%4)))
	}
	got := inst.DistinctValues(0, nil)
	if len(got) != 6 {
		t.Fatalf("DistinctValues(K) = %v, want 6 values", got)
	}
	got = inst.DistinctValues(1, nil)
	if len(got) != 4 {
		t.Fatalf("DistinctValues(V) = %v, want 4 values", got)
	}
	// Tombstoned values remain (documented over-approximation); values
	// first occurring in a newer fork do not leak into the snapshot.
	inst.Delete(ids[0])
	if got := inst.DistinctValues(0, nil); len(got) != 6 {
		t.Fatalf("after delete: DistinctValues(K) = %v, want 6", got)
	}
	child := inst.Fork()
	child.MustInsert(99, "fresh")
	if got := inst.DistinctValues(0, nil); len(got) != 6 {
		t.Fatalf("parent sees fork's value: %v", got)
	}
	if got := child.DistinctValues(0, nil); len(got) != 7 {
		t.Fatalf("child DistinctValues(K) = %v, want 7", got)
	}
}

func BenchmarkIndexScanVsRange(b *testing.B) {
	s := MustSchema("R", IntAttr("K"), IntAttr("V"))
	inst := NewInstance(s)
	n := 100_000
	for i := 0; i < n; i++ {
		inst.MustInsert(i%(n/10), i) // ~10 tuples per key
	}
	v := Int(7)
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cnt := 0
			inst.IndexScan(0, v, func(TupleID, Tuple) bool { cnt++; return true })
			if cnt != 10 {
				b.Fatal(cnt)
			}
		}
	})
	b.Run("range", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cnt := 0
			inst.Range(func(_ TupleID, t Tuple) bool {
				if t[0].Equal(v) {
					cnt++
				}
				return true
			})
			if cnt != 10 {
				b.Fatal(cnt)
			}
		}
	})
}
