package relation

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	n := Name("Mary")
	i := Int(42)
	if n.Kind() != KindName || i.Kind() != KindInt {
		t.Fatal("Kind mismatch")
	}
	if n.AsName() != "Mary" {
		t.Fatalf("AsName = %q", n.AsName())
	}
	if i.AsInt() != 42 {
		t.Fatalf("AsInt = %d", i.AsInt())
	}
}

func TestValueAccessorPanics(t *testing.T) {
	assertPanics(t, func() { Name("x").AsInt() })
	assertPanics(t, func() { Int(1).AsName() })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Name("a"), Name("a"), true},
		{Name("a"), Name("b"), false},
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		// Domains are disjoint: the name "1" is not the integer 1.
		{Name("1"), Int(1), false},
		{Value{}, Name(""), true}, // zero value is empty name
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if c, err := Int(1).Compare(Int(2)); err != nil || c != -1 {
		t.Errorf("1 vs 2: %d, %v", c, err)
	}
	if c, err := Int(5).Compare(Int(5)); err != nil || c != 0 {
		t.Errorf("5 vs 5: %d, %v", c, err)
	}
	if c, err := Int(9).Compare(Int(2)); err != nil || c != 1 {
		t.Errorf("9 vs 2: %d, %v", c, err)
	}
	// The paper only interprets <,> over N; names are uninterpreted.
	if _, err := Name("a").Compare(Name("b")); err == nil {
		t.Error("comparing names should fail")
	}
	if _, err := Int(1).Compare(Name("b")); err == nil {
		t.Error("comparing int to name should fail")
	}
}

func TestValueOrderTotal(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := Int(a), Int(b)
		return x.Order(y) == -y.Order(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		x, y := Name(a), Name(b)
		return x.Order(y) == -y.Order(x)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// Ints sort before names.
	if Int(999).Order(Name("")) != -1 {
		t.Error("ints should order before names")
	}
}

func TestValueString(t *testing.T) {
	if got := Int(-7).String(); got != "-7" {
		t.Errorf("Int String = %q", got)
	}
	if got := Name("R&D").String(); got != "'R&D'" {
		t.Errorf("Name String = %q", got)
	}
	if got := Name("it's").String(); got != "'it''s'" {
		t.Errorf("Name with quote String = %q", got)
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want Value
	}{
		{"42", Int(42)},
		{" -3 ", Int(-3)},
		{"'Mary'", Name("Mary")},
		{`"John"`, Name("John")},
		{"'it''s'", Name("it's")},
		{"R&D", Name("R&D")}, // bare non-integer token
		{"'42'", Name("42")}, // quoted integer is a name
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseValue("  "); err == nil {
		t.Error("ParseValue of blank should fail")
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	f := func(i int64, s string) bool {
		vi, err1 := ParseValue(Int(i).String())
		vn, err2 := ParseValue(Name(s).String())
		return err1 == nil && err2 == nil && vi.Equal(Int(i)) && vn.Equal(Name(s))
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCoerceValue(t *testing.T) {
	for _, x := range []any{int(1), int8(1), int16(1), int32(1), int64(1), uint8(1), uint16(1), uint32(1)} {
		v, err := CoerceValue(x)
		if err != nil || !v.Equal(Int(1)) {
			t.Errorf("CoerceValue(%T) = %v, %v", x, v, err)
		}
	}
	if v, err := CoerceValue("x"); err != nil || !v.Equal(Name("x")) {
		t.Errorf("CoerceValue(string) = %v, %v", v, err)
	}
	if v, err := CoerceValue(Int(9)); err != nil || !v.Equal(Int(9)) {
		t.Errorf("CoerceValue(Value) = %v, %v", v, err)
	}
	if _, err := CoerceValue(3.14); err == nil {
		t.Error("CoerceValue(float64) should fail")
	}
}

func TestKindString(t *testing.T) {
	if KindName.String() != "name" || KindInt.String() != "int" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}
