package relation

import (
	"strings"
	"testing"
)

const mgrCSV = `Name:name,Dept:name,Salary:int,Reports:int
Mary,R&D,40,3
John,R&D,10,2
Mary,IT,20,1
John,PR,30,4
`

func TestReadCSV(t *testing.T) {
	inst, err := ReadCSV("Mgr", strings.NewReader(mgrCSV))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Schema().Name() != "Mgr" || inst.Schema().Arity() != 4 {
		t.Fatalf("schema = %s", inst.Schema())
	}
	if inst.Len() != 4 {
		t.Fatalf("Len = %d, want 4", inst.Len())
	}
	if !inst.Contains(Tuple{Name("Mary"), Name("IT"), Int(20), Int(1)}) {
		t.Fatal("missing tuple")
	}
	if inst.Schema().Attr(2).Kind != KindInt {
		t.Fatal("Salary should be int")
	}
}

func TestReadCSVDeduplicates(t *testing.T) {
	src := "A:int\n1\n1\n2\n"
	inst, err := ReadCSV("R", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (set semantics)", inst.Len())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing kind", "A,B:int\n"},
		{"bad kind", "A:float\n"},
		{"bad int", "A:int\nxyz\n"},
		{"empty", ""},
		{"bad relation name", ""},
	}
	for _, c := range cases[:4] {
		if _, err := ReadCSV("R", strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := ReadCSV("bad name", strings.NewReader("A:int\n")); err == nil {
		t.Error("invalid relation name should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	inst, err := ReadCSV("Mgr", strings.NewReader(mgrCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("Mgr", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("re-reading written CSV: %v\n%s", err, buf.String())
	}
	if back.Len() != inst.Len() {
		t.Fatalf("round trip lost tuples: %d != %d", back.Len(), inst.Len())
	}
	inst.Range(func(_ TupleID, tup Tuple) bool {
		if !back.Contains(tup) {
			t.Errorf("round trip lost %v", tup)
		}
		return true
	})
}

func TestCSVCommaInName(t *testing.T) {
	inst := NewInstance(MustSchema("R", NameAttr("A")))
	inst.MustInsert("x,y")
	var buf strings.Builder
	if err := WriteCSV(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("R", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Contains(Tuple{Name("x,y")}) {
		t.Fatalf("comma-containing name lost: %s", buf.String())
	}
}
