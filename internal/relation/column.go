package relation

// Columnar storage.
//
// An Instance stores its tuples as one typed column per attribute:
// a dense []int64 for KindInt attributes, a dense []string for
// KindName attributes, both indexed by TupleID. The schema fixes each
// attribute's kind, so a column never mixes payloads and carries no
// per-cell tag — half the memory of the previous []Tuple row storage
// and the natural layout for the vectorized executor, which touches
// one or two attributes of many tuples rather than all attributes of
// one.
//
// Columns are append-only and shared along the version chain exactly
// like the row arena they replace: Fork copies the slice headers,
// the child appends, and every published version reads only ids below
// its own NumIDs(). Tuple values for an existing id are immutable.

// column is the internal storage of one attribute.
type column struct {
	kind Kind
	ints []int64  // KindInt payloads, dense by TupleID
	strs []string // KindName payloads, dense by TupleID
}

func newColumns(s *Schema) []column {
	cols := make([]column, s.Arity())
	for i := range cols {
		cols[i].kind = s.Attr(i).Kind
	}
	return cols
}

// push appends v, which the caller has already type-checked against
// the column's kind.
func (c *column) push(v Value) {
	if c.kind == KindInt {
		c.ints = append(c.ints, v.i)
	} else {
		c.strs = append(c.strs, v.s)
	}
}

// value rebuilds the Value at id. Values are two words plus a kind
// tag, so materialization is allocation-free.
func (c *column) value(id TupleID) Value {
	if c.kind == KindInt {
		return Value{kind: KindInt, i: c.ints[id]}
	}
	return Value{kind: KindName, s: c.strs[id]}
}

// equals reports whether the cell at id equals v without
// materializing a Value.
func (c *column) equals(id TupleID, v Value) bool {
	if c.kind != v.kind {
		return false
	}
	if c.kind == KindInt {
		return c.ints[id] == v.i
	}
	return c.strs[id] == v.s
}

// Col is a read-only view of one attribute column of one instance
// version, bounded to the version's ID universe [0, NumIDs()).
// It is the storage currency of the vectorized executor: batch
// operators read cells by tuple ID without materializing tuples.
// Liveness (tombstones) and subset visibility are the caller's
// concern — a Col sees every id of the version, dead or alive.
type Col struct {
	kind Kind
	ints []int64
	strs []string
}

// Col returns the column view of attribute attr.
func (r *Instance) Col(attr int) Col {
	c := &r.cols[attr]
	if c.kind == KindInt {
		return Col{kind: KindInt, ints: c.ints[:r.n]}
	}
	return Col{kind: KindName, strs: c.strs[:r.n]}
}

// Kind reports the column's domain.
func (c Col) Kind() Kind { return c.kind }

// Len returns the size of the column's ID universe.
func (c Col) Len() int {
	if c.kind == KindInt {
		return len(c.ints)
	}
	return len(c.strs)
}

// Value materializes the cell at id.
func (c Col) Value(id TupleID) Value {
	if c.kind == KindInt {
		return Value{kind: KindInt, i: c.ints[id]}
	}
	return Value{kind: KindName, s: c.strs[id]}
}

// Int returns the integer cell at id; the column must be KindInt.
func (c Col) Int(id TupleID) int64 { return c.ints[id] }

// Name returns the name cell at id; the column must be KindName.
func (c Col) Name(id TupleID) string { return c.strs[id] }

// Equals reports whether the cell at id equals v.
func (c Col) Equals(id TupleID, v Value) bool {
	if c.kind != v.kind {
		return false
	}
	if c.kind == KindInt {
		return c.ints[id] == v.i
	}
	return c.strs[id] == v.s
}

// EqualsCell reports whether the cell at id equals d's cell at id2.
func (c Col) EqualsCell(id TupleID, d Col, id2 TupleID) bool {
	if c.kind != d.kind {
		return false
	}
	if c.kind == KindInt {
		return c.ints[id] == d.ints[id2]
	}
	return c.strs[id] == d.strs[id2]
}

// AppendKey appends the canonical key encoding of the cell at id —
// the building block of vectorized join keys, compatible with
// Value.AppendKey.
func (c Col) AppendKey(b []byte, id TupleID) []byte {
	return c.Value(id).appendKey(b)
}

// ValueAt returns the value of attribute attr of tuple id without
// materializing the tuple. It is the point-access companion of Col
// for code that touches a handful of cells (conflict partner checks,
// FD projections) rather than whole columns.
func (r *Instance) ValueAt(id TupleID, attr int) Value {
	return r.cols[attr].value(id)
}

// appendTupleKey appends the canonical Tuple.Key encoding of tuple id
// to b, reading the columns directly.
func (r *Instance) appendTupleKey(b []byte, id TupleID) []byte {
	for a := range r.cols {
		b = r.cols[a].value(id).appendKey(b)
	}
	return b
}

// AppendProjectionKey appends the canonical key of tuple id projected
// onto the given attribute positions — Tuple.Project(attrs).Key()
// without materializing either tuple. It is the hash-bucket primitive
// of FD violation detection and the conflict partner index.
func (r *Instance) AppendProjectionKey(b []byte, id TupleID, attrs []int) []byte {
	for _, a := range attrs {
		b = r.cols[a].value(id).appendKey(b)
	}
	return b
}

// compareIDs orders two tuples of r by value (the Tuple.Order
// ordering), reading columns directly.
func (r *Instance) compareIDs(a, b TupleID) int {
	for i := range r.cols {
		if c := r.cols[i].value(a).Order(r.cols[i].value(b)); c != 0 {
			return c
		}
	}
	return 0
}
