package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Database is a named collection of relation instances. The paper
// presents the framework over a single relation for clarity and notes
// it extends to multiple relations along the lines of [7]; Database is
// that extension: constraints and priorities stay intra-relation,
// queries may span relations.
type Database struct {
	rels  map[string]*Instance
	order []string
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*Instance)}
}

// AddRelation creates an empty instance of the schema and registers it
// under the schema's name.
func (db *Database) AddRelation(schema *Schema) (*Instance, error) {
	if _, dup := db.rels[schema.Name()]; dup {
		return nil, fmt.Errorf("relation: database already has relation %q", schema.Name())
	}
	inst := NewInstance(schema)
	db.rels[schema.Name()] = inst
	db.order = append(db.order, schema.Name())
	return inst, nil
}

// AddInstance registers an existing instance under its schema name.
func (db *Database) AddInstance(inst *Instance) error {
	name := inst.Schema().Name()
	if _, dup := db.rels[name]; dup {
		return fmt.Errorf("relation: database already has relation %q", name)
	}
	db.rels[name] = inst
	db.order = append(db.order, name)
	return nil
}

// Relation returns the named instance.
func (db *Database) Relation(name string) (*Instance, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Names returns the relation names in registration order.
func (db *Database) Names() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// Len returns the number of relations.
func (db *Database) Len() int { return len(db.order) }

// TotalTuples returns the number of tuples across all relations.
func (db *Database) TotalTuples() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// String lists relations in name order.
func (db *Database) String() string {
	names := db.Names()
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = db.rels[n].String()
	}
	return strings.Join(parts, "\n")
}
