package relation

import (
	"fmt"
	"strings"
)

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name string
	Kind Kind
}

// NameAttr is shorthand for an attribute over the name domain D.
func NameAttr(name string) Attribute { return Attribute{Name: name, Kind: KindName} }

// IntAttr is shorthand for an attribute over the integer domain N.
func IntAttr(name string) Attribute { return Attribute{Name: name, Kind: KindInt} }

// Schema describes one relation: its name and its typed attributes.
// Schemas are immutable after construction.
type Schema struct {
	name  string
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema. Attribute names must be non-empty and
// unique; the relation name must be a non-empty identifier.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if !validIdent(name) {
		return nil, fmt.Errorf("relation: invalid relation name %q", name)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: schema %s needs at least one attribute", name)
	}
	s := &Schema{name: name, attrs: make([]Attribute, len(attrs)), index: make(map[string]int, len(attrs))}
	copy(s.attrs, attrs)
	for i, a := range attrs {
		if !validIdent(a.Name) {
			return nil, fmt.Errorf("relation: invalid attribute name %q in schema %s", a.Name, name)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q in schema %s", a.Name, name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for fixtures and
// examples.
func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the relation name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute {
	out := make([]Attribute, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Indexes resolves a list of attribute names to positions, rejecting
// unknown names and duplicates.
func (s *Schema) Indexes(names []string) ([]int, error) {
	out := make([]int, 0, len(names))
	seen := make(map[int]bool, len(names))
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return nil, fmt.Errorf("relation: schema %s has no attribute %q", s.name, n)
		}
		if seen[i] {
			return nil, fmt.Errorf("relation: duplicate attribute %q", n)
		}
		seen[i] = true
		out = append(out, i)
	}
	return out, nil
}

// Equal reports whether two schemas have the same name and the same
// attributes in the same order.
func (s *Schema) Equal(t *Schema) bool {
	if s == t {
		return true
	}
	if s == nil || t == nil || s.name != t.name || len(s.attrs) != len(t.attrs) {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != t.attrs[i] {
			return false
		}
	}
	return true
}

// String renders e.g. "Mgr(Name:name, Dept:name, Salary:int)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, a := range s.attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(':')
		b.WriteString(a.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
