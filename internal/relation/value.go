// Package relation implements the typed relational data model of the
// paper: relations over two disjoint domains — uninterpreted names D
// and natural numbers N (§2). Instances have set semantics and assign
// each tuple a dense TupleID so the combinatorial machinery (conflict
// graphs, repairs, priorities) can operate on bit sets.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the domain of an attribute or value.
type Kind uint8

const (
	// KindName is the domain D of uninterpreted constants: only
	// equality and inequality are defined on names.
	KindName Kind = iota
	// KindInt is the domain N: =, ≠, <, > have their natural
	// interpretation (§2).
	KindInt
)

// String returns "name" or "int".
func (k Kind) String() string {
	switch k {
	case KindName:
		return "name"
	case KindInt:
		return "int"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a single database constant: either a name from D or an
// integer from N. The zero value is the empty name.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Name returns the name constant v ∈ D.
func Name(s string) Value { return Value{kind: KindName, s: s} }

// Int returns the integer constant v ∈ N.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Kind reports which domain the value belongs to.
func (v Value) Kind() Kind { return v.kind }

// AsName returns the name content. It panics on integer values; use
// Kind to discriminate first.
func (v Value) AsName() string {
	if v.kind != KindName {
		panic("relation: AsName on int value")
	}
	return v.s
}

// AsInt returns the integer content. It panics on name values; use
// Kind to discriminate first.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic("relation: AsInt on name value")
	}
	return v.i
}

// Equal reports whether two values are the same constant. Constants
// with different names are different, and the domains are disjoint, so
// a name never equals an integer.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	if v.kind == KindInt {
		return v.i == w.i
	}
	return v.s == w.s
}

// Order totally orders values for deterministic output: integers
// before names, integers by <, names lexicographically. It is NOT the
// query-language comparison (which is only defined on integers); use
// Compare for that.
func (v Value) Order(w Value) int {
	if v.kind != w.kind {
		if v.kind == KindInt {
			return -1
		}
		return 1
	}
	if v.kind == KindInt {
		switch {
		case v.i < w.i:
			return -1
		case v.i > w.i:
			return 1
		}
		return 0
	}
	return strings.Compare(v.s, w.s)
}

// Compare implements the query-language order comparison, which the
// paper defines only on the integer domain N. It returns -1, 0 or 1,
// or an error when either operand is a name.
func (v Value) Compare(w Value) (int, error) {
	if v.kind != KindInt || w.kind != KindInt {
		return 0, fmt.Errorf("relation: order comparison needs two int values, got %s and %s", v.kind, w.kind)
	}
	switch {
	case v.i < w.i:
		return -1, nil
	case v.i > w.i:
		return 1, nil
	}
	return 0, nil
}

// String renders integers bare and names single-quoted, matching the
// query-language constant syntax.
func (v Value) String() string {
	if v.kind == KindInt {
		return strconv.FormatInt(v.i, 10)
	}
	return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
}

// AppendKey appends an unambiguous encoding of v to b — the building
// block of tuple and projection map keys (Tuple.Key uses it per
// component).
func (v Value) AppendKey(b []byte) []byte { return v.appendKey(b) }

// appendKey appends an unambiguous encoding of v, used to build map
// keys for tuples and projections.
func (v Value) appendKey(b []byte) []byte {
	if v.kind == KindInt {
		b = append(b, 'i')
		b = strconv.AppendInt(b, v.i, 10)
	} else {
		b = append(b, 'n')
		b = strconv.AppendInt(b, int64(len(v.s)), 10)
		b = append(b, ':')
		b = append(b, v.s...)
	}
	return append(b, ';')
}

// ParseValue parses the textual form produced by Value.String:
// a decimal integer, or a single- or double-quoted name. As a
// convenience for data files, an unquoted token that does not parse as
// an integer is accepted as a name.
func ParseValue(s string) (Value, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return Value{}, fmt.Errorf("relation: empty value")
	}
	if (t[0] == '\'' || t[0] == '"') && len(t) >= 2 && t[len(t)-1] == t[0] {
		inner := t[1 : len(t)-1]
		quote := string(t[0])
		return Name(strings.ReplaceAll(inner, quote+quote, quote)), nil
	}
	if i, err := strconv.ParseInt(t, 10, 64); err == nil {
		return Int(i), nil
	}
	return Name(t), nil
}

// CoerceValue converts native Go values to a Value: Value itself,
// string → name, and the integer types → int. It is the bridge used by
// the convenience insertion APIs.
func CoerceValue(x any) (Value, error) {
	switch v := x.(type) {
	case Value:
		return v, nil
	case string:
		return Name(v), nil
	case int:
		return Int(int64(v)), nil
	case int8:
		return Int(int64(v)), nil
	case int16:
		return Int(int64(v)), nil
	case int32:
		return Int(int64(v)), nil
	case int64:
		return Int(v), nil
	case uint8:
		return Int(int64(v)), nil
	case uint16:
		return Int(int64(v)), nil
	case uint32:
		return Int(int64(v)), nil
	default:
		return Value{}, fmt.Errorf("relation: cannot coerce %T to a value", x)
	}
}
