package relation

import (
	"testing"
)

func pairSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("R", IntAttr("A"), IntAttr("B"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeleteTombstones(t *testing.T) {
	inst := NewInstance(pairSchema(t))
	a := inst.MustInsert(1, 1)
	b := inst.MustInsert(2, 2)
	v0 := inst.Version()
	if !inst.Delete(a) {
		t.Fatal("Delete(a) = false")
	}
	if inst.Delete(a) {
		t.Fatal("double delete reported true")
	}
	if inst.Version() == v0 {
		t.Fatal("Delete did not bump the version")
	}
	if inst.Len() != 1 || inst.NumIDs() != 2 {
		t.Fatalf("Len/NumIDs = %d/%d, want 1/2", inst.Len(), inst.NumIDs())
	}
	if inst.Live(a) || !inst.Live(b) {
		t.Fatal("liveness wrong after delete")
	}
	if inst.Contains(Tuple{Int(1), Int(1)}) {
		t.Fatal("deleted tuple still Contains")
	}
	// Range, AllIDs, SortedIDs skip tombstones.
	seen := 0
	inst.Range(func(id TupleID, _ Tuple) bool {
		if id == a {
			t.Fatal("Range yielded a tombstone")
		}
		seen++
		return true
	})
	if seen != 1 {
		t.Fatalf("Range yielded %d tuples", seen)
	}
	if ids := inst.AllIDs(); ids.Has(a) || !ids.Has(b) || ids.Len() != 1 {
		t.Fatalf("AllIDs = %v", ids)
	}
	if got := inst.SortedIDs(); len(got) != 1 || got[0] != b {
		t.Fatalf("SortedIDs = %v", got)
	}
	// The tombstoned tuple's data stays readable.
	if inst.Tuple(a)[0].String() != "1" {
		t.Fatal("tombstoned tuple data lost")
	}
}

func TestReinsertAfterDeleteGetsFreshID(t *testing.T) {
	inst := NewInstance(pairSchema(t))
	a := inst.MustInsert(1, 1)
	inst.Delete(a)
	a2 := inst.MustInsert(1, 1)
	if a2 == a {
		t.Fatalf("ID %d reused", a)
	}
	if id, ok := inst.Lookup(Tuple{Int(1), Int(1)}); !ok || id != a2 {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", id, ok, a2)
	}
	if inst.Len() != 1 || inst.NumIDs() != 2 {
		t.Fatalf("Len/NumIDs = %d/%d", inst.Len(), inst.NumIDs())
	}
}

func TestForkIsolation(t *testing.T) {
	parent := NewInstance(pairSchema(t))
	a := parent.MustInsert(1, 1)
	b := parent.MustInsert(2, 2)
	child := parent.Fork()

	// Parent is frozen.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mutating a frozen parent did not panic")
			}
		}()
		parent.MustInsert(9, 9)
	}()

	// Child mutations are invisible to the parent.
	child.Delete(a)
	c := child.MustInsert(3, 3)
	if !parent.Live(a) || parent.NumIDs() != 2 || parent.Len() != 2 {
		t.Fatal("parent observed child mutations")
	}
	if parent.Contains(Tuple{Int(3), Int(3)}) {
		t.Fatal("parent sees child insert")
	}
	if child.Live(a) || !child.Live(b) || !child.Live(c) {
		t.Fatal("child state wrong")
	}
	if child.Len() != 2 || child.NumIDs() != 3 {
		t.Fatalf("child Len/NumIDs = %d/%d", child.Len(), child.NumIDs())
	}
	// Chained forks: overlay and tombstones accumulate correctly.
	grand := child.Fork()
	grand.Delete(b)
	d := grand.MustInsert(1, 1) // re-insert of the tuple deleted in child
	if d == a {
		t.Fatal("grandchild reused a tombstoned ID")
	}
	if id, ok := grand.Lookup(Tuple{Int(1), Int(1)}); !ok || id != d {
		t.Fatalf("grandchild Lookup = (%d, %v)", id, ok)
	}
	if _, ok := child.Lookup(Tuple{Int(1), Int(1)}); ok {
		t.Fatal("child sees grandchild re-insert")
	}
	if !child.Live(b) {
		t.Fatal("child lost b to grandchild delete")
	}
}

func TestForkOverlayFold(t *testing.T) {
	// Push enough inserts through chained forks to trigger the overlay
	// fold, then verify lookups across the whole key space.
	inst := NewInstance(pairSchema(t))
	for i := 0; i < 10; i++ {
		inst.MustInsert(int64(i), 0)
	}
	cur := inst
	for i := 10; i < 400; i++ {
		cur = cur.Fork()
		cur.MustInsert(int64(i), 0)
	}
	if cur.Len() != 400 {
		t.Fatalf("Len = %d", cur.Len())
	}
	for i := 0; i < 400; i++ {
		if id, ok := cur.Lookup(Tuple{Int(int64(i)), Int(0)}); !ok || id != i {
			t.Fatalf("Lookup(%d) = (%d, %v)", i, id, ok)
		}
	}
	// The root is untouched.
	if inst.Len() != 10 {
		t.Fatalf("root Len = %d", inst.Len())
	}
}

func TestVersionMonotone(t *testing.T) {
	inst := NewInstance(pairSchema(t))
	v := inst.Version()
	id := inst.MustInsert(1, 1)
	if inst.Version() <= v {
		t.Fatal("Insert did not bump version")
	}
	v = inst.Version()
	inst.MustInsert(1, 1) // duplicate: no state change
	if inst.Version() != v {
		t.Fatal("duplicate insert bumped version")
	}
	child := inst.Fork()
	if child.Version() != v {
		t.Fatal("fork changed version")
	}
	child.Delete(id)
	if child.Version() <= v {
		t.Fatal("Delete did not bump version")
	}
}
