// Package axioms turns the paper's desirable properties of preferred
// repair families (§1, P1–P4) into executable checks:
//
//	P1 non-emptiness      X-Rep ≠ ∅
//	P2 monotonicity       Φ ⊆ Ψ ⇒ X-Rep(Ψ) ⊆ X-Rep(Φ)
//	P3 non-discrimination X-Rep(∅) = Rep
//	P4 categoricity       Φ total ⇒ |X-Rep(Φ)| = 1
//
// A family is abstracted as a function from priorities to repair
// sets, so the checks apply both to the paper's families and to
// user-defined ones (e.g. the trivial families of Examples 6 and 10
// the paper uses as counterexamples).
package axioms

import (
	"fmt"
	"math/rand"

	"prefcqa/internal/bitset"
	"prefcqa/internal/core"
	"prefcqa/internal/priority"
	"prefcqa/internal/repair"
)

// FamilyFunc materializes the preferred repairs of a family for a
// given priority.
type FamilyFunc func(p *priority.Priority) []*bitset.Set

// FromCore adapts one of the paper's families.
func FromCore(f core.Family) FamilyFunc {
	return func(p *priority.Priority) []*bitset.Set { return core.All(f, p) }
}

// Report is the outcome of checking the axioms on one priority.
type Report struct {
	P1, P2, P3, P4 Verdict
}

// Verdict is the outcome of a single axiom check.
type Verdict int

const (
	// Holds: the axiom held on every probe.
	Holds Verdict = iota
	// Violated: a counterexample was found.
	Violated
	// NotApplicable: the axiom's precondition never arose (e.g. P4 on
	// a priority with no total extension probes).
	NotApplicable
)

// String renders "holds", "violated" or "n/a".
func (v Verdict) String() string {
	switch v {
	case Holds:
		return "holds"
	case Violated:
		return "violated"
	case NotApplicable:
		return "n/a"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Options control the randomized probing of P2 and P4.
type Options struct {
	// Extensions is the number of random extensions probed for P2 and
	// P4 (default 8).
	Extensions int
	// Rng drives the probes; nil uses a fixed seed.
	Rng *rand.Rand
}

func (o Options) normalize() Options {
	if o.Extensions == 0 {
		o.Extensions = 8
	}
	if o.Rng == nil {
		o.Rng = rand.New(rand.NewSource(1))
	}
	return o
}

// Check probes all four axioms for the family on the given priority.
// P1 and P3 are decided exactly; P2 and P4 are probed on random
// total extensions of the priority (a Violated verdict is always a
// genuine counterexample; Holds means no counterexample was found).
func Check(f FamilyFunc, p *priority.Priority, opts Options) Report {
	opts = opts.normalize()
	var rep Report
	rep.P1 = checkP1(f, p)
	rep.P2 = checkP2(f, p, opts)
	rep.P3 = checkP3(f, p)
	rep.P4 = checkP4(f, p, opts)
	return rep
}

func checkP1(f FamilyFunc, p *priority.Priority) Verdict {
	if len(f(p)) == 0 {
		return Violated
	}
	return Holds
}

func checkP2(f FamilyFunc, p *priority.Priority, opts Options) Verdict {
	if p.IsTotal() {
		return NotApplicable
	}
	base := keySet(f(p))
	for i := 0; i < opts.Extensions; i++ {
		ext := p.TotalExtension(opts.Rng)
		for _, r := range f(ext) {
			if !base[r.Key()] {
				return Violated
			}
		}
	}
	return Holds
}

func checkP3(f FamilyFunc, p *priority.Priority) Verdict {
	empty := priority.New(p.Graph())
	got := keySet(f(empty))
	want := keySet(repair.All(p.Graph()))
	if len(got) != len(want) {
		return Violated
	}
	for k := range want {
		if !got[k] {
			return Violated
		}
	}
	return Holds
}

func checkP4(f FamilyFunc, p *priority.Priority, opts Options) Verdict {
	probes := 0
	if p.IsTotal() {
		probes++
		if len(f(p)) != 1 {
			return Violated
		}
	}
	for i := 0; i < opts.Extensions; i++ {
		ext := p.TotalExtension(opts.Rng)
		probes++
		if len(f(ext)) != 1 {
			return Violated
		}
	}
	if probes == 0 {
		return NotApplicable
	}
	return Holds
}

func keySet(repairs []*bitset.Set) map[string]bool {
	m := make(map[string]bool, len(repairs))
	for _, r := range repairs {
		m[r.Key()] = true
	}
	return m
}
