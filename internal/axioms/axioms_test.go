package axioms

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/core"
	"prefcqa/internal/priority"
	"prefcqa/internal/repair"
	"prefcqa/internal/workload"
)

// TestPaperAxiomTable verifies the axiom profile the paper assigns to
// each family (Props. 2, 3, 4, 6; plus the derived S-categoricity
// deviation documented in internal/core):
//
//	family   P1      P2      P3      P4
//	Rep      holds   holds   holds   violated (Example 8 instance)
//	L-Rep    holds   holds   holds   violated (Example 8)
//	S-Rep    holds   holds   holds   holds (derived; paper says no)
//	G-Rep    holds   holds   holds   holds
//	C-Rep    holds   —       holds   holds
func TestPaperAxiomTable(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	scenarios := []*workload.Scenario{
		workload.Example7(), workload.Example9(), workload.Example9Mutual(),
		workload.Clusters(2, 3), workload.Random(rng, 8, 3, 0.4),
	}
	for _, sc := range scenarios {
		for _, f := range []core.Family{core.Local, core.SemiGlobal, core.Global, core.Common} {
			rep := Check(FromCore(f), sc.Pri, Options{Rng: rng})
			if rep.P1 != Holds {
				t.Errorf("%s/%v: P1 = %v", sc.Name, f, rep.P1)
			}
			if rep.P3 != Holds {
				t.Errorf("%s/%v: P3 = %v", sc.Name, f, rep.P3)
			}
			if f != core.Common && rep.P2 == Violated {
				t.Errorf("%s/%v: P2 = %v", sc.Name, f, rep.P2)
			}
			if f != core.Local && rep.P4 == Violated {
				t.Errorf("%s/%v: P4 = %v", sc.Name, f, rep.P4)
			}
		}
	}
}

func TestP4ViolatedForLocalOnExample8(t *testing.T) {
	sc := workload.Example8()
	rep := Check(FromCore(core.Local), sc.Pri, Options{})
	if rep.P4 != Violated {
		t.Fatalf("L-Rep P4 on Example 8 = %v, want violated", rep.P4)
	}
	// Rep itself also fails categoricity there.
	rep = Check(FromCore(core.Rep), sc.Pri, Options{})
	if rep.P4 != Violated {
		t.Fatalf("Rep P4 on Example 8 = %v, want violated", rep.P4)
	}
}

// trivialFamily reproduces Example 6: all repairs unless the priority
// is total, in which case only the Algorithm 1 repair. It satisfies
// P1-P4 yet makes almost no use of the priority.
func trivialFamily(p *priority.Priority) []*bitset.Set {
	if p.IsTotal() {
		return []*bitset.Set{clean.Deterministic(p)}
	}
	return repair.All(p.Graph())
}

func TestExample6TrivialFamilySatisfiesAxioms(t *testing.T) {
	sc := workload.Example9Mutual() // partial priority
	rep := Check(trivialFamily, sc.Pri, Options{})
	if rep.P1 != Holds || rep.P2 != Holds || rep.P3 != Holds || rep.P4 != Holds {
		t.Fatalf("Example 6 family should satisfy P1-P4, got %+v", rep)
	}
	// ... which is exactly the paper's point in §3: the axioms alone
	// do not force the priority to be used; optimality notions do.
	if got := len(trivialFamily(sc.Pri)); got != 2 {
		t.Fatalf("trivial family uses no priority: %d members", got)
	}
	if got := len(core.All(core.Global, sc.Pri)); got != 1 {
		t.Fatalf("G-Rep uses the priority: %d members", got)
	}
}

// pickyFamily violates P1 by returning nothing for partial
// priorities, and P3 by dropping repairs under the empty priority.
func pickyFamily(p *priority.Priority) []*bitset.Set {
	if !p.IsTotal() {
		return nil
	}
	return []*bitset.Set{clean.Deterministic(p)}
}

func TestViolationsDetected(t *testing.T) {
	sc := workload.Example9Mutual()
	rep := Check(pickyFamily, sc.Pri, Options{})
	if rep.P1 != Violated {
		t.Fatalf("P1 = %v, want violated", rep.P1)
	}
	if rep.P3 != Violated {
		t.Fatalf("P3 = %v, want violated", rep.P3)
	}
}

// antiMonotone violates P2: under a total priority it returns a
// repair that the partial priority's family does not contain.
func antiMonotone(p *priority.Priority) []*bitset.Set {
	all := repair.All(p.Graph())
	if !p.IsTotal() {
		return all[:1]
	}
	return all
}

func TestP2ViolationDetected(t *testing.T) {
	sc := workload.Example9Mutual()
	rep := Check(antiMonotone, sc.Pri, Options{})
	if rep.P2 != Violated {
		t.Fatalf("P2 = %v, want violated", rep.P2)
	}
}

func TestP2NotApplicableOnTotal(t *testing.T) {
	sc := workload.Chain(4) // total chain priority
	rep := Check(FromCore(core.Global), sc.Pri, Options{})
	if rep.P2 != NotApplicable {
		t.Fatalf("P2 on total priority = %v, want n/a", rep.P2)
	}
}

func TestVerdictString(t *testing.T) {
	if Holds.String() != "holds" || Violated.String() != "violated" || NotApplicable.String() != "n/a" {
		t.Fatal("Verdict.String broken")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict should render")
	}
}
