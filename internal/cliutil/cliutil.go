// Package cliutil holds the plumbing shared by the cmd/ tools: the
// standard main wrapper, the common flag surface (-data, -rel,
// -prefs, -fd, -family), loading a CSV instance, declaring
// dependencies, and parsing preference files.
package cliutil

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"prefcqa"
	"prefcqa/internal/relation"
)

// Main runs a command body and reports an error in the standard
// "name: error" form on stderr with exit code 1 — the shared main()
// of every cmd/ tool.
func Main(name string, run func() error) {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, name+":", err)
		os.Exit(1)
	}
}

// DataFlags is the flag surface shared by the tools that load one CSV
// relation: -data, -rel, -prefs and repeatable -fd.
type DataFlags struct {
	Data  string
	Rel   string
	Prefs string
	FDs   StringList
}

// RegisterDataFlags declares the shared relation-loading flags on the
// default flag set. Call before flag.Parse.
func RegisterDataFlags() *DataFlags {
	d := &DataFlags{}
	flag.StringVar(&d.Data, "data", "", "CSV file with a typed header")
	flag.StringVar(&d.Rel, "rel", "R", "relation name")
	flag.StringVar(&d.Prefs, "prefs", "", "preference file (tuple > tuple per line)")
	flag.Var(&d.FDs, "fd", "functional dependency 'X -> Y' (repeatable)")
	return d
}

// Load builds a database from the parsed flags. A missing -data
// prints usage and errors.
func (d *DataFlags) Load() (*prefcqa.DB, *prefcqa.Relation, error) {
	if d.Data == "" {
		flag.Usage()
		return nil, nil, fmt.Errorf("-data is required")
	}
	return LoadDB(d.Data, d.Rel, d.FDs, d.Prefs)
}

// RegisterFamilyFlag declares the shared -family flag on the default
// flag set. Call before flag.Parse; parse the value with
// prefcqa.ParseFamily.
func RegisterFamilyFlag() *string {
	return flag.String("family", "rep", "repair family: rep, local, semiglobal, global, common")
}

// StringList is a repeatable string flag.
type StringList []string

// String implements flag.Value.
func (s *StringList) String() string { return strings.Join(*s, "; ") }

// Set implements flag.Value.
func (s *StringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// LoadDB reads a CSV instance, declares its dependencies, and applies
// a preference file (may be empty). It returns the database and the
// loaded relation.
func LoadDB(dataPath, relName string, fds []string, prefsPath string) (*prefcqa.DB, *prefcqa.Relation, error) {
	db := prefcqa.New()
	rel, err := LoadInto(db, dataPath, relName, fds, prefsPath)
	if err != nil {
		return nil, nil, err
	}
	return db, rel, nil
}

// LoadInto loads a CSV instance, its dependencies and preferences
// into an existing database — used by prefserve to preload a served
// database at boot.
func LoadInto(db *prefcqa.DB, dataPath, relName string, fds []string, prefsPath string) (*prefcqa.Relation, error) {
	f, err := os.Open(dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	inst, err := prefcqa.ReadCSV(relName, f)
	if err != nil {
		return nil, err
	}
	rel, err := db.AddInstance(inst)
	if err != nil {
		return nil, err
	}
	for _, spec := range fds {
		if err := rel.AddFD(spec); err != nil {
			return nil, err
		}
	}
	if prefsPath != "" {
		pf, err := os.Open(prefsPath)
		if err != nil {
			return nil, err
		}
		defer pf.Close()
		if err := ApplyPrefs(rel, pf); err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// ApplyPrefs reads preference lines "v1,v2,... > w1,w2,..." (the
// left tuple dominates the right one; both must be rows of the
// relation) and records them. Blank lines and lines starting with
// '#' are skipped.
func ApplyPrefs(rel *prefcqa.Relation, src io.Reader) error {
	sc := bufio.NewScanner(src)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		left, right, ok := strings.Cut(line, ">")
		if !ok {
			return fmt.Errorf("prefs line %d: missing '>'", lineNo)
		}
		x, err := lookupTuple(rel, left)
		if err != nil {
			return fmt.Errorf("prefs line %d: %w", lineNo, err)
		}
		y, err := lookupTuple(rel, right)
		if err != nil {
			return fmt.Errorf("prefs line %d: %w", lineNo, err)
		}
		if err := rel.Prefer(x, y); err != nil {
			return fmt.Errorf("prefs line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// lookupTuple parses a comma-separated value list against the
// relation's schema and resolves it to a tuple ID.
func lookupTuple(rel *prefcqa.Relation, src string) (prefcqa.TupleID, error) {
	schema := rel.Schema()
	cells := strings.Split(strings.TrimSpace(src), ",")
	if len(cells) != schema.Arity() {
		return 0, fmt.Errorf("tuple %q has %d values, schema %s needs %d",
			src, len(cells), schema.Name(), schema.Arity())
	}
	tup := make(prefcqa.Tuple, len(cells))
	for i, cell := range cells {
		cell = strings.TrimSpace(cell)
		if schema.Attr(i).Kind == relation.KindName {
			tup[i] = prefcqa.Name(cell)
			continue
		}
		n, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("tuple %q: %q is not an integer", src, cell)
		}
		tup[i] = prefcqa.Int(n)
	}
	id, ok := rel.Instance().Lookup(tup)
	if !ok {
		return 0, fmt.Errorf("tuple %q is not in relation %s", src, schema.Name())
	}
	return id, nil
}
