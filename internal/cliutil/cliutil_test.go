package cliutil

import (
	"strings"
	"testing"

	"prefcqa"
)

var mgrFDs = []string{"Dept -> Name,Salary,Reports", "Name -> Dept,Salary,Reports"}

func TestLoadDBWithPrefs(t *testing.T) {
	db, rel, err := LoadDB("../../testdata/mgr.csv", "Mgr", mgrFDs, "../../testdata/mgr_prefs.txt")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Instance().Len() != 4 {
		t.Fatalf("loaded %d tuples", rel.Instance().Len())
	}
	n, err := rel.Conflicts()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("conflicts = %d", n)
	}
	c, err := db.CountRepairs(prefcqa.Global, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if c != 2 {
		t.Fatalf("preferred repairs = %d, want 2 (prefs applied)", c)
	}
	// The paper's Q2 is certainly true over the preferred repairs.
	ok, err := db.Certain(prefcqa.Global, `EXISTS x1,y1,z1,x2,y2,z2 .
		Mgr('Mary',x1,y1,z1) AND Mgr('John',x2,y2,z2) AND y1 > y2 AND z1 < z2`)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Q2 should be certain over G-Rep")
	}
}

func TestLoadDBWithoutPrefs(t *testing.T) {
	db, _, err := LoadDB("../../testdata/mgr.csv", "Mgr", mgrFDs, "")
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CountRepairs(prefcqa.Rep, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if c != 3 {
		t.Fatalf("repairs = %d", c)
	}
}

func TestLoadDBErrors(t *testing.T) {
	if _, _, err := LoadDB("no-such-file.csv", "Mgr", nil, ""); err == nil {
		t.Error("missing data file should fail")
	}
	if _, _, err := LoadDB("../../testdata/mgr.csv", "Mgr", []string{"Nope -> Name"}, ""); err == nil {
		t.Error("bad FD should fail")
	}
	if _, _, err := LoadDB("../../testdata/mgr.csv", "Mgr", mgrFDs, "no-such-prefs.txt"); err == nil {
		t.Error("missing prefs file should fail")
	}
}

func TestApplyPrefsParsing(t *testing.T) {
	_, rel, err := LoadDB("../../testdata/mgr.csv", "Mgr", mgrFDs, "")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		ok   bool
		name string
	}{
		{"# comment only\n\n", true, "comments and blanks"},
		{"Mary,R&D,40,3 > John,R&D,10,2", true, "valid line"},
		{"Mary,R&D,40,3 John,R&D,10,2", false, "missing >"},
		{"Mary,R&D,40 > John,R&D,10,2", false, "wrong arity"},
		{"Mary,R&D,41,3 > John,R&D,10,2", false, "unknown tuple"},
		{"Mary,R&D,xx,3 > John,R&D,10,2", false, "bad integer"},
	}
	for _, c := range cases {
		err := ApplyPrefs(rel, strings.NewReader(c.src))
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestStringList(t *testing.T) {
	var l StringList
	l.Set("a") //nolint:errcheck
	l.Set("b") //nolint:errcheck
	if l.String() != "a; b" || len(l) != 2 {
		t.Fatalf("StringList = %v", l)
	}
}
