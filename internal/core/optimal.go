package core

import (
	"prefcqa/internal/bitset"
	"prefcqa/internal/priority"
	"prefcqa/internal/repair"
)

// The exported checkers decide the repair-checking problem B_F^X of
// §4.1 on whole repairs. The unexported *Cond functions evaluate the
// bare optimality conditions on global TupleIDs and are shared with
// the whole-repair checkers; the per-component enumerators use the
// component-local ports in local.go — every condition only relates
// tuples to their conflict neighborhoods, so it decomposes over
// connected components.

// IsLocallyOptimal reports whether r' is a locally optimal repair:
// no tuple x ∈ r' can be replaced with a tuple y ≻ x such that
// (r' \ {x}) ∪ {y} is consistent (§3.1). Polynomial time (Thm. 4).
func IsLocallyOptimal(p *priority.Priority, rp *bitset.Set) bool {
	return repair.IsRepair(p.Graph(), rp) && locallyOptimalCond(p, rp)
}

func locallyOptimalCond(p *priority.Priority, rp *bitset.Set) bool {
	optimal := true
	rp.Range(func(x int) bool {
		for _, y := range p.Dominators(x) {
			// (r'\{x}) ∪ {y} is consistent iff y's only neighbor
			// inside r' is x. (y ≻ x implies y conflicts x, so y ∉ r'.)
			if neighborsWithin(p, int(y), rp, x) {
				optimal = false
				return false
			}
		}
		return optimal
	})
	return optimal
}

// neighborsWithin reports whether n(y) ∩ r' ⊆ {exclude}.
func neighborsWithin(p *priority.Priority, y int, rp *bitset.Set, exclude int) bool {
	for _, z := range p.Graph().Neighbors(y) {
		if int(z) != exclude && rp.Has(int(z)) {
			return false
		}
	}
	return true
}

// IsSemiGloballyOptimal reports whether r' is a semi-globally optimal
// repair: no nonempty X ⊆ r' can be replaced with a single tuple y
// dominating every member of X such that (r' \ X) ∪ {y} is consistent
// (§3.2). Equivalently (§4.2): there is no tuple y ∉ r' whose
// neighbors in r' are all dominated by y. Polynomial time (Cor. 1).
func IsSemiGloballyOptimal(p *priority.Priority, rp *bitset.Set) bool {
	g := p.Graph()
	if !repair.IsRepair(g, rp) {
		return false
	}
	universe := g.LiveSet()
	return semiGloballyOptimalCond(p, rp, universe)
}

// semiGloballyOptimalCond checks the S-condition with candidate
// replacements y drawn from universe \ r'. The minimal replaceable
// set for y is X = n(y) ∩ r'; the paper requires X nonempty.
func semiGloballyOptimalCond(p *priority.Priority, rp, universe *bitset.Set) bool {
	g := p.Graph()
	optimal := true
	universe.Range(func(y int) bool {
		if rp.Has(y) {
			return true
		}
		hasNeighbor := false
		dominatesAll := true
		for _, x := range g.Neighbors(y) {
			if !rp.Has(int(x)) {
				continue
			}
			hasNeighbor = true
			if !p.Dominates(y, int(x)) {
				dominatesAll = false
				break
			}
		}
		if hasNeighbor && dominatesAll {
			optimal = false
			return false
		}
		return true
	})
	return optimal
}

// PreferredOver reports r1 ≪ r2 (Proposition 5): the repairs differ
// and every tuple of r1 \ r2 is dominated by some tuple of r2 \ r1.
func PreferredOver(p *priority.Priority, r1, r2 *bitset.Set) bool {
	if r1.Equal(r2) {
		return false
	}
	diff1 := bitset.Difference(r1, r2)
	diff2 := bitset.Difference(r2, r1)
	ok := true
	diff1.Range(func(x int) bool {
		dominated := false
		for _, y := range p.Dominators(x) {
			if diff2.Has(int(y)) {
				dominated = true
				break
			}
		}
		if !dominated {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsGloballyOptimal reports whether r' is a globally optimal repair.
// By Proposition 5 this holds iff r' is ≪-maximal. Domination is
// witnessed componentwise (a dominating tuple conflicts the tuple it
// replaces, hence shares its component), so r' is globally optimal
// iff each component restriction is ≪-maximal among the component's
// repairs; the check enumerates per-component repairs — exponential
// only in component size, as expected for a co-NP-complete problem
// (Thm. 5).
func IsGloballyOptimal(p *priority.Priority, rp *bitset.Set) bool {
	g := p.Graph()
	if !repair.IsRepair(g, rp) {
		return false
	}
	for _, comp := range g.Components() {
		rc := repair.Restrict(rp, comp)
		if !globallyOptimalComponentCond(p, rc, comp) {
			return false
		}
	}
	return true
}

// globallyOptimalComponentCond reports whether rc (a maximal
// independent set of comp) is ≪-maximal among comp's maximal
// independent sets.
func globallyOptimalComponentCond(p *priority.Priority, rc *bitset.Set, comp []int) bool {
	dominated := false
	err := repair.EnumerateComponent(p.Graph(), comp, func(s *bitset.Set) bool {
		if PreferredOver(p, rc, s) {
			dominated = true
			return false
		}
		return true
	})
	if err != nil && err != repair.ErrStopped {
		return false
	}
	return !dominated
}

// IsCommon reports whether r' ∈ C-Rep by simulating Algorithm 1 with
// choices restricted to ω≻(rest) ∩ r' (Proposition 7). The greedy
// simulation is confluent — picks of r'-tuples commute and remain
// available as rest shrinks — so a single pass decides membership in
// polynomial time (Cor. 2).
func IsCommon(p *priority.Priority, rp *bitset.Set) bool {
	g := p.Graph()
	if !repair.IsRepair(g, rp) {
		return false
	}
	return commonCond(p, rp, g.LiveSet())
}

// commonCond simulates Algorithm 1 over the given universe (the whole
// instance or one component) with choices restricted to r'.
func commonCond(p *priority.Priority, rp, universe *bitset.Set) bool {
	g := p.Graph()
	rest := universe.Clone()
	for !rest.Empty() {
		w := p.Winnow(rest)
		w.IntersectWith(rp)
		if w.Empty() {
			// ω≻(rest) is nonempty (acyclicity) but disjoint from r':
			// no choice sequence can produce r'.
			return false
		}
		// All currently pickable r'-tuples commute; take them all.
		w.Range(func(x int) bool {
			rest.Remove(x)
			for _, u := range g.Neighbors(x) {
				rest.Remove(int(u))
			}
			return true
		})
	}
	// Every pick was in r'; the outcome is a maximal independent
	// subset of r' within the universe, hence equals r' there.
	return true
}

// Check dispatches the repair-checking problem B_F^X for the family:
// is r' a preferred repair of the instance underlying p's graph?
func Check(f Family, p *priority.Priority, rp *bitset.Set) bool {
	switch f {
	case Rep:
		return repair.IsRepair(p.Graph(), rp)
	case Local:
		return IsLocallyOptimal(p, rp)
	case SemiGlobal:
		return IsSemiGloballyOptimal(p, rp)
	case Global:
		return IsGloballyOptimal(p, rp)
	case Common:
		return IsCommon(p, rp)
	default:
		return false
	}
}
