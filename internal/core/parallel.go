package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"prefcqa/internal/bitset"
	"prefcqa/internal/priority"
)

// effectiveWorkers resolves the configured worker count against the
// machine and the number of work items.
func (e *Engine) effectiveWorkers(items int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pendingChoices is the streaming hand-off between the component
// workers and a consumer. Workers produce choice sets in component-
// local index space — local[i] becomes valid once ready[i] is closed;
// done receives each index exactly once, in completion order. Lifting
// to global TupleIDs happens lazily on the consumer side (wait):
// counting consumers never pay for it, and enumerating consumers pay
// once per component regardless of how often the cross-product walk
// revisits it.
type pendingChoices struct {
	comps   [][]int
	local   [][]*bitset.Set // worker-filled, component-local indices
	lifted  [][]*bitset.Set // consumer-side cache of global liftings
	ready   []chan struct{}
	done    chan int
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// startChoices computes the choice sets of the given components on
// the engine's worker pool. With one worker (or one component) the
// computation runs inline on the calling goroutine, making the
// sequential path allocation- and scheduling-free.
//
// Cancellation granularity is one component: once ctx is cancelled no
// further component is started (inline or on a worker), but an
// in-flight component runs to completion. A cancelled run may leave
// ready channels that never close; consumers must use the ctx-aware
// waits (waitCtx / the done channel paired with ctx.Done()).
func (e *Engine) startChoices(ctx context.Context, f Family, p *priority.Priority, comps [][]int) *pendingChoices {
	n := len(comps)
	pend := &pendingChoices{
		comps:  comps,
		local:  make([][]*bitset.Set, n),
		lifted: make([][]*bitset.Set, n),
		ready:  make([]chan struct{}, n),
		done:   make(chan int, n),
	}
	for i := range pend.ready {
		pend.ready[i] = make(chan struct{})
	}
	workers := e.effectiveWorkers(n)
	if workers <= 1 {
		for i, comp := range comps {
			if ctx.Err() != nil {
				pend.stopped.Store(true)
				return pend
			}
			pend.local[i] = e.componentLocalChoices(f, p, comp)
			close(pend.ready[i])
			pend.done <- i
		}
		return pend
	}
	// Components() is memoized inside the graph; touching it here (the
	// caller already did, to build comps) keeps workers read-only.
	var next atomic.Int64
	pend.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer pend.wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || pend.stopped.Load() || ctx.Err() != nil {
					return
				}
				pend.local[i] = e.componentLocalChoices(f, p, comps[i])
				close(pend.ready[i])
				pend.done <- i
			}
		}()
	}
	return pend
}

// count blocks until component i's choices are available and returns
// how many there are (no lifting).
func (p *pendingChoices) count(i int) int {
	<-p.ready[i]
	return len(p.local[i])
}

// countCtx is count with cancellation: it returns ctx.Err() once the
// context is cancelled instead of waiting for component i.
func (p *pendingChoices) countCtx(ctx context.Context, i int) (int64, error) {
	select {
	case <-p.ready[i]:
		return int64(len(p.local[i])), nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// wait blocks until component i's choices are available and returns
// them lifted to global TupleIDs. Must be called from a single
// consumer goroutine (the lifted cache is unsynchronized).
func (p *pendingChoices) wait(i int) []*bitset.Set {
	<-p.ready[i]
	return p.lift(i)
}

// waitCtx is wait with cancellation: it returns ctx.Err() once the
// context is cancelled, without waiting for component i to finish.
// Same single-consumer requirement as wait.
func (p *pendingChoices) waitCtx(ctx context.Context, i int) ([]*bitset.Set, error) {
	select {
	case <-p.ready[i]:
		return p.lift(i), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *pendingChoices) lift(i int) []*bitset.Set {
	if p.lifted[i] == nil {
		if len(p.comps[i]) == 0 {
			p.lifted[i] = p.local[i]
		} else {
			p.lifted[i] = liftChoices(p.local[i], p.comps[i])
		}
	}
	return p.lifted[i]
}

// cancel tells the workers to stop after their in-flight component
// and waits for them to exit. Safe to call at any point, including
// after full consumption.
func (p *pendingChoices) cancel() {
	p.stopped.Store(true)
	p.wg.Wait()
}
