package core

import (
	"context"
	"math"
	"sync"

	"prefcqa/internal/priority"
	"prefcqa/internal/repair"
)

// This file is the engine's side of the delta-maintenance model: the
// signature-keyed memo (engine.go) already survives mutations — an
// untouched component hashes to the same (signature, orientation) key
// after any number of instance mutations, so its cached choice sets
// are reused without any invalidation protocol. What a mutating
// workload still pays per Count is re-deriving every component's
// signature, O(n) over the instance. CountCache removes that: counts
// are keyed by (era, component ID, family), both issued by the
// conflict graph's delta machinery as immutable value identities — a
// mutation retires the IDs of the components it touches, so cached
// entries are invalidated by construction, never by bookkeeping, and
// entries for old IDs keep serving snapshot readers of old versions.

// countKey identifies one component's choice-set count: the graph
// base generation, the component's immutable ID, and the family.
type countKey struct {
	era  uint64
	comp int32
	f    Family
}

// countCacheMax bounds the cache; when full it is cleared rather than
// evicted — the cache is an optimization, never load-bearing.
const countCacheMax = 1 << 19

// CountCache memoizes per-component preferred-repair counts across
// graph versions. It is safe for concurrent use and shared between a
// live DB and all of its snapshots: entries can never go stale
// because a (era, component ID) pair is never reused for different
// content.
type CountCache struct {
	mu sync.Mutex
	m  map[countKey]int64
}

// NewCountCache returns an empty count cache.
func NewCountCache() *CountCache {
	return &CountCache{m: make(map[countKey]int64)}
}

func (c *CountCache) get(k countKey) (int64, bool) {
	c.mu.Lock()
	v, ok := c.m[k]
	c.mu.Unlock()
	return v, ok
}

func (c *CountCache) put(k countKey, v int64) {
	c.mu.Lock()
	if len(c.m) >= countCacheMax {
		c.m = make(map[countKey]int64)
	}
	c.m[k] = v
	c.mu.Unlock()
}

// Len returns the number of cached component counts.
func (c *CountCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// CountCached returns |X-Rep| like Count, but reuses per-component
// counts cached under the graph's (era, component ID) identities:
// after a point mutation only the components the mutation dirtied
// (whose IDs are fresh) are re-evaluated, so a Count in a mutation
// workload costs O(#components) multiplications plus O(touched)
// evaluation instead of O(instance) signature hashing. The cache is
// consulted under one lock per call; misses (the dirtied components)
// are evaluated outside it.
//
// Counts of every family are non-negative and multiplication is
// commutative, so folding the cache misses in after the hits cannot
// change the result, the zero short-circuit, or the overflow verdict.
func (e *Engine) CountCached(f Family, p *priority.Priority, cc *CountCache) (int64, error) {
	return e.CountCachedCtx(context.Background(), f, p, cc)
}

// CountCachedCtx is CountCached with cancellation, checked per
// cache-missed component: once ctx is cancelled the merge stops and
// ctx.Err() is returned. Counts already folded in are discarded;
// per-component entries cached before the abort are kept (they are
// valid values, only the fold was abandoned).
func (e *Engine) CountCachedCtx(ctx context.Context, f Family, p *priority.Priority, cc *CountCache) (int64, error) {
	if cc == nil {
		return e.CountCtx(ctx, f, p)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	g := p.Graph()
	comps, ids := g.ComponentsWithIDs()
	era := g.Era()
	total := int64(1)
	var missIdx []int
	cc.mu.Lock()
	for i := range comps {
		c, ok := cc.m[countKey{era: era, comp: ids[i], f: f}]
		if !ok {
			missIdx = append(missIdx, i)
			continue
		}
		if c == 0 {
			cc.mu.Unlock()
			return 0, nil
		}
		if total > math.MaxInt64/c {
			cc.mu.Unlock()
			return 0, repair.ErrOverflow
		}
		total *= c
	}
	cc.mu.Unlock()
	if len(missIdx) == 0 {
		return total, nil
	}
	// Evaluate the dirtied components on the engine's worker pool —
	// a cold cache (first count, post-compaction, WithMemo(false)
	// rebuild baselines) keeps the same parallelism Count has.
	missComps := make([][]int, len(missIdx))
	for k, i := range missIdx {
		missComps[k] = comps[i]
	}
	pend := e.startChoices(ctx, f, p, missComps)
	defer pend.cancel()
	for k, i := range missIdx {
		c, err := pend.countCtx(ctx, k)
		if err != nil {
			return 0, err
		}
		cc.put(countKey{era: era, comp: ids[i], f: f}, c)
		if c == 0 {
			return 0, nil
		}
		if total > math.MaxInt64/c {
			return 0, repair.ErrOverflow
		}
		total *= c
	}
	return total, nil
}
