package core

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
)

// randomInstance builds a small random instance over R(A,B,C) with
// the given FDs, sized so exhaustive checks stay fast.
func randomInstance(rng *rand.Rand, n int, fdSpecs ...string) *priority.Priority {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(3))
	}
	g := conflict.MustBuild(inst, fd.MustParseSet(s, fdSpecs...))
	return priority.Random(g, 0.6, rng)
}

// workloads produces a mix of priorities for property tests: one key,
// one non-key FD, two FDs with mutual conflicts.
func workloads(rng *rand.Rand, iters int) []*priority.Priority {
	var out []*priority.Priority
	for i := 0; i < iters; i++ {
		out = append(out,
			randomInstance(rng, 5+rng.Intn(4), "A -> B,C"),
			randomInstance(rng, 5+rng.Intn(4), "A -> B"),
			randomInstance(rng, 5+rng.Intn(4), "A -> B", "B -> C"),
		)
	}
	return out
}

// TestCheckersAgreeWithEnumeration verifies, for every family, that
// the membership checkers and the per-component enumerators select
// exactly the same repairs.
func TestCheckersAgreeWithEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for wi, p := range workloads(rng, 12) {
		allReps := repair.All(p.Graph())
		for _, f := range Families {
			enum := keys(All(f, p))
			for _, r := range allReps {
				if got, want := Check(f, p, r), enum[r.Key()]; got != want {
					t.Fatalf("workload %d, %v: checker=%v enum=%v for %v\npriority %v\n%s",
						wi, f, got, want, r, p, p.Graph().ASCII())
				}
			}
			// Enumeration must only produce repairs.
			for _, r := range All(f, p) {
				if !repair.IsRepair(p.Graph(), r) {
					t.Fatalf("workload %d, %v: enumerated non-repair %v", wi, f, r)
				}
			}
		}
	}
}

// TestContainmentChain verifies C ⊆ G ⊆ S ⊆ L ⊆ Rep (Props. 3, 4, 6).
func TestContainmentChain(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for wi, p := range workloads(rng, 12) {
		rep := keys(All(Rep, p))
		l := keys(All(Local, p))
		s := keys(All(SemiGlobal, p))
		g := keys(All(Global, p))
		c := keys(All(Common, p))
		within := func(sub, super map[string]bool, name string) {
			for k := range sub {
				if !super[k] {
					t.Fatalf("workload %d: containment %s violated\npriority %v\n%s",
						wi, name, p, p.Graph().ASCII())
				}
			}
		}
		within(l, rep, "L ⊆ Rep")
		within(s, l, "S ⊆ L")
		within(g, s, "G ⊆ S")
		within(c, g, "C ⊆ G")
		// P1 for all families (Thm. 1 for C).
		for _, m := range []map[string]bool{rep, l, s, g, c} {
			if len(m) == 0 {
				t.Fatalf("workload %d: some family is empty (P1 violated)", wi)
			}
		}
	}
}

// TestProposition3OneKeyLEqualsS: for one key dependency L-Rep
// coincides with S-Rep.
func TestProposition3OneKeyLEqualsS(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for i := 0; i < 40; i++ {
		p := randomInstance(rng, 5+rng.Intn(5), "A -> B,C")
		l := keys(All(Local, p))
		s := keys(All(SemiGlobal, p))
		if len(l) != len(s) {
			t.Fatalf("one key: |L|=%d |S|=%d for %v\n%s", len(l), len(s), p, p.Graph().ASCII())
		}
		for k := range l {
			if !s[k] {
				t.Fatal("one key: L ≠ S")
			}
		}
	}
}

// TestProposition4OneFDGEqualsS: for one functional dependency G-Rep
// coincides with S-Rep.
func TestProposition4OneFDGEqualsS(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for i := 0; i < 40; i++ {
		p := randomInstance(rng, 5+rng.Intn(5), "A -> B")
		g := keys(All(Global, p))
		s := keys(All(SemiGlobal, p))
		if len(g) != len(s) {
			t.Fatalf("one FD: |G|=%d |S|=%d for %v\n%s", len(g), len(s), p, p.Graph().ASCII())
		}
		for k := range g {
			if !s[k] {
				t.Fatal("one FD: G ≠ S")
			}
		}
	}
}

// TestProposition5DirectDefinition cross-checks the ≪-maximality
// implementation of global optimality against the direct replacement
// definition of §3: no nonempty X ⊆ r' can be replaced by Y ⊆ r with
// every x ∈ X dominated by some y ∈ Y, keeping consistency.
func TestProposition5DirectDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for i := 0; i < 25; i++ {
		p := randomInstance(rng, 5+rng.Intn(3), "A -> B", "B -> C")
		for _, r := range repair.All(p.Graph()) {
			want := gloOptDirect(p, r)
			if got := IsGloballyOptimal(p, r); got != want {
				t.Fatalf("Prop 5 mismatch: ≪-maximality=%v direct=%v for %v\npriority %v\n%s",
					got, want, r, p, p.Graph().ASCII())
			}
		}
	}
}

// gloOptDirect brute-forces the replacement definition of global
// optimality. Exponential; test-only.
func gloOptDirect(p *priority.Priority, rp *bitset.Set) bool {
	g := p.Graph()
	n := g.Len()
	rElems := rp.Slice()
	for xm := 1; xm < 1<<uint(len(rElems)); xm++ {
		x := bitset.New(n)
		for i, e := range rElems {
			if xm&(1<<uint(i)) != 0 {
				x.Add(e)
			}
		}
		base := bitset.Difference(rp, x)
		for ym := 0; ym < 1<<uint(n); ym++ {
			y := bitset.New(n)
			for v := 0; v < n; v++ {
				if ym&(1<<uint(v)) != 0 {
					y.Add(v)
				}
			}
			// Every x ∈ X dominated by some y ∈ Y.
			okDom := true
			x.Range(func(xe int) bool {
				dominated := false
				for _, ye := range p.Dominators(xe) {
					if y.Has(int(ye)) {
						dominated = true
						break
					}
				}
				if !dominated {
					okDom = false
					return false
				}
				return true
			})
			if !okDom {
				continue
			}
			if g.IsIndependent(bitset.Union(base, y)) {
				return false
			}
		}
	}
	return true
}

// TestProposition7CommonEqualsAlgorithmOutcomes: C-Rep is exactly the
// set of Algorithm 1 outcomes.
func TestProposition7CommonEqualsAlgorithmOutcomes(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for wi, p := range workloads(rng, 10) {
		got := keys(All(Common, p))
		want := keys(clean.AllOutcomes(p))
		if len(got) != len(want) {
			t.Fatalf("workload %d: |C-Rep|=%d, |outcomes|=%d", wi, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("workload %d: C-Rep misses an Algorithm 1 outcome", wi)
			}
		}
	}
}

// TestCategoricityP4 verifies that total priorities give exactly one
// globally optimal repair and one common repair (P4 for G and C),
// which moreover coincide with the Algorithm 1 output (Prop. 1).
func TestCategoricityP4(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for i := 0; i < 30; i++ {
		base := randomInstance(rng, 6+rng.Intn(4), "A -> B", "B -> C")
		p := base.TotalExtension(rng)
		want := clean.Deterministic(p)
		for _, f := range []Family{Global, Common} {
			fam := All(f, p)
			if len(fam) != 1 {
				t.Fatalf("%v under total priority has %d members (P4)", f, len(fam))
			}
			if !fam[0].Equal(want) {
				t.Fatalf("%v under total priority differs from Algorithm 1 output", f)
			}
		}
	}
}

// TestMonotonicityP2 verifies that extending the priority never grows
// L-Rep, S-Rep or G-Rep (P2; Props. 2–4).
func TestMonotonicityP2(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for i := 0; i < 30; i++ {
		p := randomInstance(rng, 6+rng.Intn(3), "A -> B", "B -> C")
		q := p.TotalExtension(rng) // a (total) extension of p
		for _, f := range []Family{Local, SemiGlobal, Global} {
			before := keys(All(f, p))
			after := All(f, q)
			for _, r := range after {
				if !before[r.Key()] {
					t.Fatalf("%v: extension enlarged the family (P2)\nbase %v\next %v", f, p, q)
				}
			}
		}
	}
}

// TestNonDiscriminationP3 verifies that with the empty priority every
// family except C (for which the paper claims only P1+P4) equals Rep;
// C also equals Rep here because Algorithm 1 with no priorities can
// produce any repair.
func TestNonDiscriminationP3(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for i := 0; i < 20; i++ {
		p := randomInstance(rng, 6+rng.Intn(3), "A -> B", "B -> C")
		empty := priority.New(p.Graph())
		rep := keys(All(Rep, empty))
		for _, f := range []Family{Local, SemiGlobal, Global, Common} {
			fam := keys(All(f, empty))
			if len(fam) != len(rep) {
				t.Fatalf("%v with empty priority has %d members, Rep has %d (P3)", f, len(fam), len(rep))
			}
		}
	}
}

// TestTheorem2ForestImpliesCEqualsG: on priorities that cannot be
// extended to a cyclic orientation, C-Rep = G-Rep.
func TestTheorem2ForestImpliesCEqualsG(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	checked := 0
	for i := 0; i < 60 && checked < 25; i++ {
		p := randomInstance(rng, 5+rng.Intn(4), "A -> B", "B -> C")
		if priority.ExtendableToCyclic(p) {
			continue
		}
		checked++
		c := keys(All(Common, p))
		g := keys(All(Global, p))
		if len(c) != len(g) {
			t.Fatalf("Theorem 2: |C|=%d |G|=%d for non-cyclic-extendable %v\n%s",
				len(c), len(g), p, p.Graph().ASCII())
		}
		for k := range g {
			if !c[k] {
				t.Fatal("Theorem 2: C ≠ G")
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d non-cyclic-extendable priorities sampled; weak test", checked)
	}
}

// TestGloballyOptimalWholeGraphAgreement cross-checks the
// per-component G checker against whole-graph ≪-maximality.
func TestGloballyOptimalWholeGraphAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for i := 0; i < 20; i++ {
		p := randomInstance(rng, 6+rng.Intn(3), "A -> B", "B -> C")
		allReps := repair.All(p.Graph())
		for _, r := range allReps {
			want := true
			for _, other := range allReps {
				if PreferredOver(p, r, other) {
					want = false
					break
				}
			}
			if got := IsGloballyOptimal(p, r); got != want {
				t.Fatalf("per-component G=%v, whole-graph ≪-maximality=%v for %v", got, want, r)
			}
		}
	}
}

func BenchmarkIsCommonChain(b *testing.B) {
	p := example9(b)
	r1 := bitset.FromSlice([]int{0, 2, 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !IsCommon(p, r1) {
			b.Fatal("r1 should be common")
		}
	}
}
