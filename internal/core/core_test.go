package core

import (
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
)

// example7 builds Example 7: R(A,B) with key A -> B, instance
// {ta=(1,1), tb=(1,2), tc=(1,3)}, priority ta ≻ tc, ta ≻ tb.
func example7(t testing.TB) *priority.Priority {
	t.Helper()
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1) // ta = 0
	inst.MustInsert(1, 2) // tb = 1
	inst.MustInsert(1, 3) // tc = 2
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	p := priority.New(g)
	p.MustAdd(0, 2)
	p.MustAdd(0, 1)
	return p
}

// example8 builds Example 8: R(A,B,C) with A -> B, instance
// {ta=(1,1,1), tb=(1,1,2), tc=(1,2,3)}, total priority tc ≻ ta,
// tc ≻ tb.
func example8(t testing.TB) *priority.Priority {
	t.Helper()
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1, 1) // ta = 0
	inst.MustInsert(1, 1, 2) // tb = 1
	inst.MustInsert(1, 2, 3) // tc = 2
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	p := priority.New(g)
	p.MustAdd(2, 0)
	p.MustAdd(2, 1)
	return p
}

// example9 builds Example 9: R(A,B,C,D) with A -> B and C -> D, the
// conflict path ta-tb-tc-td-te, total priority along the path.
func example9(t testing.TB) *priority.Priority {
	t.Helper()
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1, 0, 0) // ta = 0
	inst.MustInsert(1, 2, 1, 1) // tb = 1
	inst.MustInsert(2, 1, 1, 2) // tc = 2
	inst.MustInsert(2, 2, 2, 1) // td = 3
	inst.MustInsert(0, 0, 2, 2) // te = 4
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "C -> D"))
	p := priority.New(g)
	p.MustAdd(0, 1)
	p.MustAdd(1, 2)
	p.MustAdd(2, 3)
	p.MustAdd(3, 4)
	return p
}

func keys(repairs []*bitset.Set) map[string]bool {
	m := make(map[string]bool, len(repairs))
	for _, r := range repairs {
		m[r.Key()] = true
	}
	return m
}

func TestExample7LocalSelects(t *testing.T) {
	p := example7(t)
	// Repairs: {ta}, {tb}, {tc}. Only r1 = {ta} is locally optimal.
	reps := All(Rep, p)
	if len(reps) != 3 {
		t.Fatalf("Rep = %d repairs, want 3", len(reps))
	}
	lreps := All(Local, p)
	if len(lreps) != 1 || !lreps[0].Equal(bitset.FromSlice([]int{0})) {
		t.Fatalf("L-Rep = %v, want [{0}]", lreps)
	}
	if !IsLocallyOptimal(p, bitset.FromSlice([]int{0})) {
		t.Error("r1 = {ta} should be locally optimal")
	}
	if IsLocallyOptimal(p, bitset.FromSlice([]int{1})) {
		t.Error("r2 = {tb} should not be locally optimal (ta ≻ tb)")
	}
	if IsLocallyOptimal(p, bitset.FromSlice([]int{2})) {
		t.Error("r3 = {tc} should not be locally optimal (ta ≻ tc)")
	}
}

func TestExample8LocalNotCategorical(t *testing.T) {
	p := example8(t)
	// Repairs: r1 = {ta,tb}, r2 = {tc}. Both are locally optimal even
	// though the priority is total — L-Rep violates P4.
	r1 := bitset.FromSlice([]int{0, 1})
	r2 := bitset.FromSlice([]int{2})
	if !p.IsTotal() {
		t.Fatal("Example 8 priority should be total")
	}
	lreps := All(Local, p)
	if len(lreps) != 2 {
		t.Fatalf("L-Rep = %v, want both repairs", lreps)
	}
	if !IsLocallyOptimal(p, r1) || !IsLocallyOptimal(p, r2) {
		t.Error("both repairs should be locally optimal")
	}
	// S-Rep fixes it: r1 is not semi-globally optimal, r2 is.
	if IsSemiGloballyOptimal(p, r1) {
		t.Error("r1 = {ta,tb} should NOT be semi-globally optimal")
	}
	if !IsSemiGloballyOptimal(p, r2) {
		t.Error("r2 = {tc} should be semi-globally optimal")
	}
	sreps := All(SemiGlobal, p)
	if len(sreps) != 1 || !sreps[0].Equal(r2) {
		t.Fatalf("S-Rep = %v, want [{2}]", sreps)
	}
}

// TestExample9Literal checks the instance exactly as printed in the
// paper. NOTE (paper deviation, see EXPERIMENTS.md): the printed
// instance's conflict graph is the path ta-tb-tc-td-te, which has FOUR
// repairs, not the two the paper lists — {ta,td} and {tb,te} are also
// maximal independent sets. Under the paper's own Definition of
// semi-global optimality, the total path priority then makes S-Rep
// categorical ({r1} only). The paper's intended illustration (S-Rep
// non-categorical, G-Rep selecting r1) is realized by the mutual-
// conflict variant below (TestExample9MutualConflicts).
func TestExample9Literal(t *testing.T) {
	p := example9(t)
	r1 := bitset.FromSlice([]int{0, 2, 4}) // {ta, tc, te}
	r2 := bitset.FromSlice([]int{1, 3})    // {tb, td}
	if !p.IsTotal() {
		t.Fatal("Example 9 priority should be total")
	}
	reps := All(Rep, p)
	if len(reps) != 4 {
		t.Fatalf("Rep = %v, want the four repairs of the path P5", reps)
	}
	// ≪: r2 ≪ r1 but not conversely — as the paper argues in §3.3.
	if !PreferredOver(p, r2, r1) {
		t.Error("r2 ≪ r1 should hold")
	}
	if PreferredOver(p, r1, r2) {
		t.Error("r1 ≪ r2 should not hold")
	}
	if !IsGloballyOptimal(p, r1) {
		t.Error("r1 should be globally optimal")
	}
	if IsGloballyOptimal(p, r2) {
		t.Error("r2 should not be globally optimal")
	}
	// Under the formal definitions the total path priority is
	// categorical for S, G and C alike.
	for _, f := range []Family{SemiGlobal, Global, Common} {
		fam := All(f, p)
		if len(fam) != 1 || !fam[0].Equal(r1) {
			t.Fatalf("%v = %v, want exactly [r1]", f, fam)
		}
	}
	if !IsCommon(p, r1) || IsCommon(p, r2) {
		t.Error("IsCommon disagrees with enumeration")
	}
}

// example9Mutual reconstructs the scenario §3.3 describes: two FDs
// with mutual conflicts (the conflict graph is K_{2,3}) and a priority
// given only for some of the conflicts. Repairs are exactly
// r1 = {t0,t2,t4} and r2 = {t1,t3}; the partial chain t0 ≻ t1 ≻ t2 ≻
// t3 ≻ t4 leaves both semi-globally optimal while only r1 is globally
// optimal — the paper's intended Figure 4 content.
func example9Mutual(t testing.TB) *priority.Priority {
	t.Helper()
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"), relation.IntAttr("E"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1, 0, 0, 0) // t0
	inst.MustInsert(1, 2, 3, 2, 0) // t1
	inst.MustInsert(1, 1, 3, 1, 0) // t2
	inst.MustInsert(1, 2, 3, 2, 1) // t3
	inst.MustInsert(2, 1, 3, 1, 1) // t4
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "C -> D"))
	p := priority.New(g)
	p.MustAdd(0, 1)
	p.MustAdd(1, 2)
	p.MustAdd(2, 3)
	p.MustAdd(3, 4)
	return p
}

func TestExample9MutualConflicts(t *testing.T) {
	p := example9Mutual(t)
	g := p.Graph()
	// The conflict graph is K_{2,3}: sides {0,2,4} and {1,3}.
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6 (K_{2,3})\n%s", g.NumEdges(), g.ASCII())
	}
	for _, u := range []int{1, 3} {
		for _, v := range []int{0, 2, 4} {
			if !g.Adjacent(u, v) {
				t.Fatalf("missing edge %d-%d", u, v)
			}
		}
	}
	if p.IsTotal() {
		t.Fatal("the priority must be partial (edges 0-3 and 1-4 unoriented)")
	}
	r1 := bitset.FromSlice([]int{0, 2, 4})
	r2 := bitset.FromSlice([]int{1, 3})
	reps := All(Rep, p)
	if len(reps) != 2 {
		t.Fatalf("Rep = %v, want exactly r1 and r2", reps)
	}
	// Both repairs are semi-globally optimal: S-Rep is non-categorical
	// in the presence of mutual conflicts with partial priorities.
	sreps := All(SemiGlobal, p)
	if len(sreps) != 2 {
		t.Fatalf("S-Rep = %v, want both repairs", sreps)
	}
	// G-Rep applies the priority aggressively: r2 ≪ r1.
	if !PreferredOver(p, r2, r1) {
		t.Error("r2 ≪ r1 should hold")
	}
	greps := All(Global, p)
	if len(greps) != 1 || !greps[0].Equal(r1) {
		t.Fatalf("G-Rep = %v, want [r1]", greps)
	}
	creps := All(Common, p)
	if len(creps) != 1 || !creps[0].Equal(r1) {
		t.Fatalf("C-Rep = %v, want [r1]", creps)
	}
}

func TestPreferredOverIrreflexive(t *testing.T) {
	p := example9(t)
	r1 := bitset.FromSlice([]int{0, 2, 4})
	if PreferredOver(p, r1, r1) {
		t.Fatal("≪ must be irreflexive")
	}
}

func TestCheckersRejectNonRepairs(t *testing.T) {
	p := example9(t)
	nonMaximal := bitset.FromSlice([]int{0})      // consistent, not maximal
	inconsistent := bitset.FromSlice([]int{0, 1}) // ta conflicts tb
	for _, f := range Families {
		if Check(f, p, nonMaximal) {
			t.Errorf("%v accepted a non-maximal set", f)
		}
		if Check(f, p, inconsistent) {
			t.Errorf("%v accepted an inconsistent set", f)
		}
	}
}

func TestFamilyString(t *testing.T) {
	want := map[Family]string{Rep: "Rep", Local: "L-Rep", SemiGlobal: "S-Rep", Global: "G-Rep", Common: "C-Rep"}
	for f, w := range want {
		if f.String() != w {
			t.Errorf("String(%d) = %q, want %q", int(f), f.String(), w)
		}
	}
	if Family(42).String() == "" {
		t.Error("unknown family should render")
	}
}

func TestParseFamily(t *testing.T) {
	cases := map[string]Family{
		"rep": Rep, "ALL": Rep,
		"l": Local, "L-Rep": Local, "local": Local,
		"s": SemiGlobal, "semi-global": SemiGlobal, "srep": SemiGlobal,
		"g": Global, "G-REP": Global, "global": Global,
		"c": Common, "common": Common, "crep": Common,
	}
	for in, want := range cases {
		got, err := ParseFamily(in)
		if err != nil || got != want {
			t.Errorf("ParseFamily(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFamily("bogus"); err == nil {
		t.Error("unknown family should fail to parse")
	}
}

func TestCountMatchesEnumeration(t *testing.T) {
	for _, build := range []func(testing.TB) *priority.Priority{example7, example8, example9} {
		p := build(t)
		for _, f := range Families {
			n, err := Count(f, p)
			if err != nil {
				t.Fatal(err)
			}
			if got := int64(len(All(f, p))); got != n {
				t.Errorf("%v: Count = %d, enumeration = %d", f, n, got)
			}
		}
	}
}

func TestOneReturnsMember(t *testing.T) {
	p := example9(t)
	for _, f := range Families {
		one := One(f, p)
		if one == nil {
			t.Fatalf("%v: One returned nil (P1 violated?)", f)
		}
		if !Check(f, p, one) {
			t.Errorf("%v: One returned a non-member %v", f, one)
		}
	}
}
