package core

import (
	"math/rand"
	"testing"

	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
)

// TestCountCachedMatchesCount checks the (era, component ID)-keyed
// count cache against the reference Count across a mutation stream,
// on the same cache instance throughout — stale entries for retired
// IDs must never be served for fresh components.
func TestCountCachedMatchesCount(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	rng := rand.New(rand.NewSource(3))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	for i := 0; i < 10; i++ {
		inst.MustInsert(rng.Intn(4), rng.Intn(3))
	}
	g := conflict.MustBuild(inst, fds)
	p := priority.New(g)
	eng := NewEngine(WithWorkers(1))
	cc := NewCountCache()

	for step := 0; step < 80; step++ {
		// Mutate: insert, delete, or orient an edge.
		switch rng.Intn(3) {
		case 0:
			inst = inst.Fork()
			before := inst.NumIDs()
			id, _ := inst.InsertValues(rng.Intn(4), rng.Intn(3))
			var d conflict.Delta
			if inst.NumIDs() > before {
				d.Inserts = append(d.Inserts, id)
			}
			ng, _, err := g.ApplyDelta(inst, d)
			if err != nil {
				t.Fatal(err)
			}
			g, p = ng, p.Rebase(ng)
		case 1:
			if inst.Len() == 0 {
				continue
			}
			live := inst.AllIDs().Slice()
			v := live[rng.Intn(len(live))]
			inst = inst.Fork()
			inst.Delete(v)
			ng, _, err := g.ApplyDelta(inst, conflict.Delta{Deletes: []int{v}})
			if err != nil {
				t.Fatal(err)
			}
			g, p = ng, p.Rebase(ng)
			p.DropVertex(v)
		default:
			es := g.Edges()
			if len(es) == 0 {
				continue
			}
			e := es[rng.Intn(len(es))]
			if p.Oriented(e.A, e.B) {
				continue
			}
			// Mimic the facade: fork graph + priority, orient, touch.
			ng, _, err := g.ApplyDelta(inst, conflict.Delta{})
			if err != nil {
				t.Fatal(err)
			}
			q := p.Rebase(ng)
			if err := q.Add(e.A, e.B); err != nil {
				continue
			}
			ng.Touch(e.A)
			g, p = ng, q
		}
		for _, f := range Families {
			want, err := eng.Count(f, p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.CountCached(f, p, cc)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("step %d %v: CountCached = %d, Count = %d", step, f, got, want)
			}
			// A second call must hit the cache and agree.
			again, err := eng.CountCached(f, p, cc)
			if err != nil || again != want {
				t.Fatalf("step %d %v: cached re-count = %d, %v", step, f, again, err)
			}
		}
	}
	if cc.Len() == 0 {
		t.Fatal("count cache never populated")
	}
}

// TestCountCachedNilCache falls back to the plain count.
func TestCountCachedNilCache(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(schema)
	fds := fd.MustParseSet(schema, "A -> B")
	inst.MustInsert(1, 0)
	inst.MustInsert(1, 1)
	p := priority.New(conflict.MustBuild(inst, fds))
	eng := NewEngine()
	got, err := eng.CountCached(Rep, p, nil)
	if err != nil || got != 2 {
		t.Fatalf("CountCached(nil) = %d, %v; want 2", got, err)
	}
}
