package core

import (
	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/priority"
	"prefcqa/internal/repair"
)

// This file evaluates the per-component choice sets in component-local
// index space: vertices renumbered 0..k-1, scratch sets k bits wide,
// adjacency and priority orientation read from the conflict.Local /
// priority.Local projections. The renumbering is order-preserving, so
// the local evaluation is bit-for-bit equivalent (after lifting local
// indices back to global TupleIDs) to the same computation on global
// IDs — and the local choice sets are exactly what the engine's memo
// cache stores, collapsing the former remap-to-local step into the
// projection itself.

// localChoices computes the family's choice sets for one component,
// as sets over local indices [0, k).
func localChoices(f Family, p *priority.Priority, comp []int) []*bitset.Set {
	l := p.Graph().Project(comp)
	if f == Rep {
		var list []*bitset.Set
		repair.EnumerateLocal(l, func(r bitset.Words) bool { //nolint:errcheck // yield never stops
			list = append(list, r.ToSet())
			return true
		})
		return list
	}
	pl := p.Localize(l)
	switch f {
	case Common:
		return clean.LocalOutcomes(pl)
	case Global:
		// ≪-maximality needs all of the component's repairs as
		// candidate dominators: materialize once, then filter.
		var all []*bitset.Set
		repair.EnumerateLocal(l, func(r bitset.Words) bool { //nolint:errcheck // yield never stops
			all = append(all, r.ToSet())
			return true
		})
		var list []*bitset.Set
		for _, rc := range all {
			maximal := true
			for _, s := range all {
				if preferredOverLocal(pl, rc, s) {
					maximal = false
					break
				}
			}
			if maximal {
				list = append(list, rc)
			}
		}
		return list
	}
	var list []*bitset.Set
	repair.EnumerateLocal(l, func(r bitset.Words) bool { //nolint:errcheck // yield never stops
		keep := true
		switch f {
		case Local:
			keep = locallyOptimalCondLocal(pl, r)
		case SemiGlobal:
			keep = semiGloballyOptimalCondLocal(pl, r)
		}
		if keep {
			list = append(list, r.ToSet())
		}
		return true
	})
	return list
}

// liftChoices translates local-index choice sets onto a concrete
// component's global tuple IDs. Because the renumbering is
// order-preserving, the result equals what direct computation on this
// component would produce, in the same order.
func liftChoices(choices []*bitset.Set, comp []int) []*bitset.Set {
	out := make([]*bitset.Set, len(choices))
	for ci, c := range choices {
		s := bitset.New(comp[len(comp)-1] + 1)
		c.Range(func(i int) bool {
			s.Add(comp[i])
			return true
		})
		out[ci] = s
	}
	return out
}

// locallyOptimalCondLocal is locallyOptimalCond in local index space:
// no tuple x ∈ r' can be swapped for a dominator y with
// (r' \ {x}) ∪ {y} consistent.
func locallyOptimalCondLocal(pl *priority.Local, rp bitset.Words) bool {
	l := pl.View()
	optimal := true
	rp.Range(func(x int) bool {
		pl.RangeNeighbors(x, func(y int, o int8) bool {
			if o != -1 {
				return true // not a dominator of x
			}
			// (r'\{x}) ∪ {y} is consistent iff y's only neighbor
			// inside r' is x. (y ≻ x implies y conflicts x, so y ∉ r'.)
			within := true
			for _, z := range l.Neighbors(y) {
				if int(z) != x && rp.Has(int(z)) {
					within = false
					break
				}
			}
			if within {
				optimal = false
				return false
			}
			return true
		})
		return optimal
	})
	return optimal
}

// semiGloballyOptimalCondLocal is semiGloballyOptimalCond in local
// index space, with candidate replacements y drawn from the whole
// component: no y ∉ r' may dominate all of its neighbors in r'
// (nonempty).
func semiGloballyOptimalCondLocal(pl *priority.Local, rp bitset.Words) bool {
	k := pl.View().Len()
	for y := 0; y < k; y++ {
		if rp.Has(y) {
			continue
		}
		hasNeighbor := false
		dominatesAll := true
		pl.RangeNeighbors(y, func(x int, o int8) bool {
			if !rp.Has(x) {
				return true
			}
			hasNeighbor = true
			if o != 1 { // y does not dominate x
				dominatesAll = false
				return false
			}
			return true
		})
		if hasNeighbor && dominatesAll {
			return false
		}
	}
	return true
}

// preferredOverLocal is PreferredOver in local index space: r1 ≪ r2
// iff they differ and every x ∈ r1 \ r2 is dominated by some tuple of
// r2 \ r1.
func preferredOverLocal(pl *priority.Local, r1, r2 *bitset.Set) bool {
	if r1.Equal(r2) {
		return false
	}
	ok := true
	r1.Range(func(x int) bool {
		if r2.Has(x) {
			return true
		}
		dominated := false
		pl.RangeNeighbors(x, func(y int, o int8) bool {
			if o == -1 && r2.Has(y) && !r1.Has(y) {
				dominated = true
				return false
			}
			return true
		})
		if !dominated {
			ok = false
			return false
		}
		return true
	})
	return ok
}
