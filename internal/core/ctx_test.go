package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"prefcqa/internal/bitset"
)

// TestPreCancelledContext: a context cancelled before the call returns
// promptly with context.Canceled from every ctx-aware entry point,
// without evaluating any component.
func TestPreCancelledContext(t *testing.T) {
	p := clustersPriority(t, 50, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, eng := range engineConfigs() {
		for _, f := range Families {
			start := time.Now()
			if _, err := eng.CountCtx(ctx, f, p); !errors.Is(err, context.Canceled) {
				t.Errorf("%s, %s: CountCtx err = %v, want context.Canceled", name, f, err)
			}
			if _, err := eng.CountCachedCtx(ctx, f, p, NewCountCache()); !errors.Is(err, context.Canceled) {
				t.Errorf("%s, %s: CountCachedCtx err = %v, want context.Canceled", name, f, err)
			}
			yielded := 0
			err := eng.EnumerateCtx(ctx, f, p, func(*bitset.Set) bool { yielded++; return true })
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s, %s: EnumerateCtx err = %v, want context.Canceled", name, f, err)
			}
			if yielded != 0 {
				t.Errorf("%s, %s: EnumerateCtx yielded %d repairs after cancellation", name, f, yielded)
			}
			if _, err := eng.ChoicesForCtx(ctx, f, p, p.Graph().Components()); !errors.Is(err, context.Canceled) {
				t.Errorf("%s, %s: ChoicesForCtx err = %v, want context.Canceled", name, f, err)
			}
			if d := time.Since(start); d > 2*time.Second {
				t.Errorf("%s, %s: cancelled calls took %v, want prompt return", name, f, d)
			}
		}
	}
}

// TestMidEnumerationCancel: cancelling while the cross-product walk is
// in flight stops it with the context error, not a completed result.
func TestMidEnumerationCancel(t *testing.T) {
	p := clustersPriority(t, 12, 3) // 4^12 Rep repairs: never completes in the budget
	ctx, cancel := context.WithCancel(context.Background())
	eng := NewEngine(WithWorkers(2), WithMemo(false))
	n := 0
	err := eng.EnumerateCtx(ctx, Rep, p, func(*bitset.Set) bool {
		n++
		if n == 100 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EnumerateCtx err = %v after %d repairs, want context.Canceled", err, n)
	}
	if want, _ := Count(Rep, p); int64(n) >= want {
		t.Fatalf("walk ran to completion (%d repairs) despite cancellation", n)
	}
}

// TestBackgroundContextUnchanged: the ctx-aware paths with a
// background context are the plain paths — identical results.
func TestBackgroundContextUnchanged(t *testing.T) {
	p := clustersPriority(t, 6, 3)
	ctx := context.Background()
	for _, f := range Families {
		want, wantErr := Count(f, p)
		eng := NewEngine(WithWorkers(4), WithMemo(true))
		got, gotErr := eng.CountCtx(ctx, f, p)
		if got != want || !errors.Is(gotErr, wantErr) {
			t.Fatalf("%s: CountCtx = %d, %v, want %d, %v", f, got, gotErr, want, wantErr)
		}
		var repairs []*bitset.Set
		if err := eng.EnumerateCtx(ctx, f, p, func(s *bitset.Set) bool {
			repairs = append(repairs, s.Clone())
			return true
		}); err != nil {
			t.Fatalf("%s: EnumerateCtx err = %v", f, err)
		}
		wantAll := All(f, p)
		if len(repairs) != len(wantAll) {
			t.Fatalf("%s: EnumerateCtx yielded %d repairs, want %d", f, len(repairs), len(wantAll))
		}
		for i := range repairs {
			if !repairs[i].Equal(wantAll[i]) {
				t.Fatalf("%s: repair %d differs from sequential reference", f, i)
			}
		}
	}
}
