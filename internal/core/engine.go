package core

import (
	"context"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"prefcqa/internal/bitset"
	"prefcqa/internal/priority"
	"prefcqa/internal/repair"
)

// Engine evaluates preferred-repair families over the connected
// components of the conflict graph with a configurable worker pool
// and an optional memoization cache.
//
// Every family decomposes componentwise (see ComponentChoices), so
// the per-component choice sets — the expensive part of enumeration,
// counting and CQA — are independent units of work. The engine shards
// them across workers and streams results to the consumer:
//
//   - Count multiplies per-component counts in completion order, so
//     it finishes as soon as the slowest component does;
//   - Enumerate walks the cross-product while later components are
//     still being computed, blocking only when the walk reaches a
//     component whose choices are not ready yet.
//
// With memoization enabled, choice sets are cached keyed by
// (family, component signature, priority orientation): structurally
// identical components — ubiquitous in practice (key-violation
// clusters, singleton components, repeated queries against the same
// instance) — are computed once and remapped, which is a large win
// even on a single CPU.
//
// All configurations produce bit-for-bit identical results to the
// sequential reference path (Sequential), in identical order. An
// Engine is safe for concurrent use.
type Engine struct {
	workers int   // <= 0: use GOMAXPROCS
	memo    *memo // nil: memoization disabled
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithWorkers sets the number of component workers. n <= 0 selects
// runtime.GOMAXPROCS(0); n == 1 evaluates components inline on the
// calling goroutine.
func WithWorkers(n int) EngineOption {
	return func(e *Engine) { e.workers = n }
}

// WithMemo enables or disables the per-component choice-set cache.
func WithMemo(on bool) EngineOption {
	return func(e *Engine) {
		if on {
			e.memo = newMemo()
		} else {
			e.memo = nil
		}
	}
}

// NewEngine returns an engine with the given options. The default is
// a GOMAXPROCS-sized worker pool with memoization enabled.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{workers: 0, memo: newMemo()}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// sequential is the shared reference engine behind the package-level
// functions: one worker, no cache.
var sequential = &Engine{workers: 1}

// Sequential returns the reference engine: single-threaded, no
// memoization. Every other configuration must produce identical
// results; the property tests assert this.
func Sequential() *Engine { return sequential }

// Workers returns the configured worker count (0 means GOMAXPROCS).
func (e *Engine) Workers() int { return e.workers }

// Memoizing reports whether the choice-set cache is enabled.
func (e *Engine) Memoizing() bool { return e.memo != nil }

// CacheStats returns the cumulative cache hit and miss counts (both
// zero when memoization is disabled).
func (e *Engine) CacheStats() (hits, misses int64) {
	if e.memo == nil {
		return 0, 0
	}
	return e.memo.hits.Load(), e.memo.misses.Load()
}

// ComponentChoices is Engine-level ComponentChoices: the choice sets
// of every component, computed by the worker pool (and served from
// the cache when possible), in component order.
func (e *Engine) ComponentChoices(f Family, p *priority.Priority) [][]*bitset.Set {
	return e.ChoicesFor(f, p, p.Graph().Components())
}

// ComponentChoicesCtx is ComponentChoices with cancellation: the
// choice sets of every component of p's graph, lifted to global
// tuple IDs, aborted with ctx.Err() once ctx is cancelled. It backs
// the CQA quantified-query pruning when a relation's support spans
// the whole relation (a constant-free atom touches every component).
func (e *Engine) ComponentChoicesCtx(ctx context.Context, f Family, p *priority.Priority) ([][]*bitset.Set, error) {
	return e.ChoicesForCtx(ctx, f, p, p.Graph().Components())
}

// ChoicesFor computes the choice sets of the given components only —
// the building block of the CQA component pruning, which restricts
// evaluation to the components a ground query touches.
func (e *Engine) ChoicesFor(f Family, p *priority.Priority, comps [][]int) [][]*bitset.Set {
	out, err := e.ChoicesForCtx(context.Background(), f, p, comps)
	if err != nil {
		panic("core: ChoicesFor cancelled without a context") // unreachable: Background never cancels
	}
	return out
}

// ChoicesForCtx is ChoicesFor with cancellation, checked per
// component: once ctx is cancelled no further component is evaluated
// and ctx.Err() is returned.
func (e *Engine) ChoicesForCtx(ctx context.Context, f Family, p *priority.Priority, comps [][]int) ([][]*bitset.Set, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pend := e.startChoices(ctx, f, p, comps)
	defer pend.cancel()
	out := make([][]*bitset.Set, len(comps))
	for i := range comps {
		cs, err := pend.waitCtx(ctx, i)
		if err != nil {
			return nil, err
		}
		out[i] = cs
	}
	return out, nil
}

// Enumerate yields every preferred repair of the family, identical in
// content and order to the sequential path. The yielded set is reused
// between calls; clone it to retain. Returns repair.ErrStopped if the
// callback stopped early. The cross-product walk overlaps with the
// per-component computation: the walk blocks only when it reaches a
// component whose choices are not ready yet.
func (e *Engine) Enumerate(f Family, p *priority.Priority, yield func(*bitset.Set) bool) error {
	return e.EnumerateCtx(context.Background(), f, p, yield)
}

// EnumerateCtx is Enumerate with cancellation, checked once per
// component of the cross-product walk: once ctx is cancelled the walk
// stops and ctx.Err() is returned (distinguishable from
// repair.ErrStopped, which still reports an early-stopping yield).
// A single component's choice-set computation is not interruptible;
// the abort granularity is one component.
func (e *Engine) EnumerateCtx(ctx context.Context, f Family, p *priority.Priority, yield func(*bitset.Set) bool) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	comps := p.Graph().Components()
	cur := bitset.New(p.Graph().Len())
	if len(comps) == 0 {
		if !yield(cur) {
			return repair.ErrStopped
		}
		return nil
	}
	pend := e.startChoices(ctx, f, p, comps)
	defer pend.cancel()
	var rec func(i int) error
	rec = func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if i == len(comps) {
			if !yield(cur) {
				return repair.ErrStopped
			}
			return nil
		}
		choices, err := pend.waitCtx(ctx, i)
		if err != nil {
			return err
		}
		for _, c := range choices {
			cur.UnionWith(c)
			if err := rec(i + 1); err != nil {
				return err
			}
			cur.DifferenceWith(c)
		}
		return nil
	}
	return rec(0)
}

// All materializes every preferred repair of the family, in the same
// order as the sequential path.
func (e *Engine) All(f Family, p *priority.Priority) []*bitset.Set {
	var out []*bitset.Set
	e.Enumerate(f, p, func(s *bitset.Set) bool { //nolint:errcheck // yield never stops
		out = append(out, s.Clone())
		return true
	})
	return out
}

// Count returns |X-Rep| as the product of per-component counts, or
// repair.ErrOverflow when it exceeds int64. Counts are merged in
// component completion order as workers finish, so Count never
// materializes or waits on the full cross-product.
func (e *Engine) Count(f Family, p *priority.Priority) (int64, error) {
	return e.CountCtx(context.Background(), f, p)
}

// CountCtx is Count with cancellation, checked per component as the
// per-component counts stream in: once ctx is cancelled the merge
// stops waiting and ctx.Err() is returned.
func (e *Engine) CountCtx(ctx context.Context, f Family, p *priority.Priority) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	comps := p.Graph().Components()
	if len(comps) == 0 {
		return 1, nil
	}
	pend := e.startChoices(ctx, f, p, comps)
	defer pend.cancel()
	total := int64(1)
	for range comps {
		var i int
		select {
		case i = <-pend.done:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		c := int64(pend.count(i))
		if c == 0 {
			return 0, nil
		}
		if total > math.MaxInt64/c {
			return 0, repair.ErrOverflow
		}
		total *= c
	}
	return total, nil
}

// One returns a single preferred repair of the family — the first in
// enumeration order. Every family is non-empty for every priority
// (P1 holds for Rep, L, S, G, C; Props. 2–4, 6), so One always
// succeeds on a well-formed priority.
func (e *Engine) One(f Family, p *priority.Priority) *bitset.Set {
	var out *bitset.Set
	e.Enumerate(f, p, func(s *bitset.Set) bool { //nolint:errcheck // stops after first
		out = s.Clone()
		return false
	})
	return out
}

// componentLocalChoices computes (or recalls) the choice sets of one
// component, in component-local index space — exactly the
// representation the memo cache stores, so a hit is returned as-is
// and a miss computes locally and caches. Lifting to global TupleIDs
// is the consumer's concern (pendingChoices.wait / ChoicesForComponent):
// counting paths never lift, and no remap-to-local step exists
// anymore. Callers must treat the result as immutable — it may be
// shared with the cache and other components.
func (e *Engine) componentLocalChoices(f Family, p *priority.Priority, comp []int) []*bitset.Set {
	if len(comp) == 0 {
		return []*bitset.Set{bitset.New(0)}
	}
	if e.memo == nil {
		return localChoices(f, p, comp)
	}
	key := componentKey(f, p, comp)
	if cached, ok := e.memo.get(key); ok {
		return cached
	}
	local := localChoices(f, p, comp)
	e.memo.put(key, local)
	return local
}

// componentKey builds the cache key of a component: the family, the
// canonical structure signature (conflict.ComponentSignature), and —
// for the priority-sensitive families — the orientation of each
// induced edge in the signature's edge order. Two components with
// equal keys have isomorphic induced subgraphs and priorities under
// the order-preserving renumbering, so their choice sets correspond
// elementwise and in order.
func componentKey(f Family, p *priority.Priority, comp []int) string {
	g := p.Graph()
	var b strings.Builder
	b.WriteByte(byte('0' + int(f)))
	b.WriteByte('|')
	b.WriteString(g.ComponentSignature(comp))
	if f == Rep {
		return b.String() // repairs ignore the priority
	}
	b.WriteByte('|')
	for i, v := range comp {
		for _, u32 := range g.Neighbors(v) {
			u := int(u32)
			j := sort.SearchInts(comp, u)
			if j < len(comp) && comp[j] == u && j > i {
				switch {
				case p.Dominates(v, u):
					b.WriteByte('>')
				case p.Dominates(u, v):
					b.WriteByte('<')
				default:
					b.WriteByte('.')
				}
			}
		}
	}
	return b.String()
}

// memoMaxEntries bounds the cache; beyond it new entries are dropped
// (the cache is an optimization, never load-bearing).
const memoMaxEntries = 1 << 16

// memo is the concurrency-safe (family, component signature) →
// choice-set cache. Values are stored in local index space so hits
// are shared between structurally identical components of any
// instance.
type memo struct {
	mu     sync.RWMutex
	m      map[string][]*bitset.Set
	hits   atomic.Int64
	misses atomic.Int64
}

func newMemo() *memo {
	return &memo{m: make(map[string][]*bitset.Set)}
}

func (c *memo) get(key string) ([]*bitset.Set, bool) {
	c.mu.RLock()
	v, ok := c.m[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

func (c *memo) put(key string, v []*bitset.Set) {
	c.mu.Lock()
	if len(c.m) < memoMaxEntries {
		c.m[key] = v
	}
	c.mu.Unlock()
}
