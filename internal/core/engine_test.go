package core

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
)

// engineConfigs returns the engine configurations whose results must
// be bit-for-bit identical to the sequential reference path.
func engineConfigs() map[string]*Engine {
	return map[string]*Engine{
		"workers=1,memo":    NewEngine(WithWorkers(1), WithMemo(true)),
		"workers=4":         NewEngine(WithWorkers(4), WithMemo(false)),
		"workers=8,memo":    NewEngine(WithWorkers(8), WithMemo(true)),
		"workers=auto,memo": NewEngine(),
	}
}

// TestEngineEquivalence: every engine configuration produces the same
// repairs, in the same order, with the same count, as the sequential
// reference path — for every family, on randomized instances.
func TestEngineEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for wi, p := range workloads(rng, 8) {
		for _, f := range Families {
			wantAll := All(f, p)
			wantCount, wantErr := Count(f, p)
			wantOne := One(f, p)
			for name, eng := range engineConfigs() {
				gotAll := eng.All(f, p)
				if len(gotAll) != len(wantAll) {
					t.Fatalf("workload %d, %s, %s: |All| = %d, want %d",
						wi, f, name, len(gotAll), len(wantAll))
				}
				for i := range gotAll {
					if !gotAll[i].Equal(wantAll[i]) {
						t.Fatalf("workload %d, %s, %s: All[%d] = %v, want %v (order must match)",
							wi, f, name, i, gotAll[i], wantAll[i])
					}
				}
				gotCount, gotErr := eng.Count(f, p)
				if gotCount != wantCount || gotErr != wantErr {
					t.Fatalf("workload %d, %s, %s: Count = %d, %v, want %d, %v",
						wi, f, name, gotCount, gotErr, wantCount, wantErr)
				}
				if gotOne := eng.One(f, p); !gotOne.Equal(wantOne) {
					t.Fatalf("workload %d, %s, %s: One = %v, want %v",
						wi, f, name, gotOne, wantOne)
				}
			}
		}
	}
}

// TestEngineMemoHitsAcrossIsomorphicComponents: structurally
// identical components are computed once and served from the cache.
func TestEngineMemoHitsAcrossIsomorphicComponents(t *testing.T) {
	p := clustersPriority(t, 20, 3) // 20 identical 3-cliques
	for _, f := range Families {
		// One worker: with concurrent workers two misses can race on
		// the same fresh key, making exact counts flaky.
		eng := NewEngine(WithWorkers(1), WithMemo(true))
		c, err := eng.Count(f, p)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		want, _ := Count(f, p)
		if c != want {
			t.Fatalf("%s: count = %d, want %d", f, c, want)
		}
		hits, misses := eng.CacheStats()
		if misses != 1 || hits != 19 {
			t.Errorf("%s: cache hits/misses = %d/%d, want 19/1", f, hits, misses)
		}
	}
}

// TestEngineMemoAcrossRepeatedQueries: a second evaluation against
// the same priority is served entirely from the cache.
func TestEngineMemoAcrossRepeatedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomInstance(rng, 9, "A -> B", "B -> C")
	eng := NewEngine(WithWorkers(4), WithMemo(true))
	first := eng.All(Global, p)
	_, missesAfterFirst := eng.CacheStats()
	second := eng.All(Global, p)
	_, missesAfterSecond := eng.CacheStats()
	if missesAfterSecond != missesAfterFirst {
		t.Errorf("second query missed the cache: %d -> %d misses",
			missesAfterFirst, missesAfterSecond)
	}
	if len(first) != len(second) {
		t.Fatalf("runs disagree: %d vs %d repairs", len(first), len(second))
	}
	for i := range first {
		if !first[i].Equal(second[i]) {
			t.Fatalf("repair %d differs between runs", i)
		}
	}
}

// TestEngineEnumerateEarlyStop: stopping the yield mid-stream returns
// ErrStopped and does not deadlock or leak blocked workers.
func TestEngineEnumerateEarlyStop(t *testing.T) {
	p := clustersPriority(t, 12, 3)
	eng := NewEngine(WithWorkers(4), WithMemo(false))
	n := 0
	err := eng.Enumerate(Rep, p, func(*bitset.Set) bool {
		n++
		return n < 5
	})
	if err != repair.ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 5 {
		t.Fatalf("yielded %d repairs, want 5", n)
	}
}

// TestEngineEmptyGraph: an instance with no tuples has exactly one
// (empty) repair under every configuration.
func TestEngineEmptyGraph(t *testing.T) {
	p := clustersPriority(t, 0, 0)
	for name, eng := range engineConfigs() {
		if c, err := eng.Count(Rep, p); err != nil || c != 1 {
			t.Errorf("%s: Count = %d, %v, want 1", name, c, err)
		}
		if got := len(eng.All(Rep, p)); got != 1 {
			t.Errorf("%s: |All| = %d, want 1", name, got)
		}
	}
}

// TestComponentKeyDistinguishesOrientation: flipping one preference
// must change the cache key (same structure, different priority).
func TestComponentKeyDistinguishesOrientation(t *testing.T) {
	mk := func(flip bool) (*priority.Priority, []int) {
		p := clustersPriority(t, 1, 2)
		if flip {
			p.MustAdd(1, 0)
		} else {
			p.MustAdd(0, 1)
		}
		return p, p.Graph().Components()[0]
	}
	pa, ca := mk(false)
	pb, cb := mk(true)
	for _, f := range []Family{Local, SemiGlobal, Global, Common} {
		if componentKey(f, pa, ca) == componentKey(f, pb, cb) {
			t.Errorf("%s: orientation flip did not change the key", f)
		}
	}
	// Rep ignores the priority: the keys must coincide.
	if componentKey(Rep, pa, ca) != componentKey(Rep, pb, cb) {
		t.Errorf("Rep: key depends on orientation but must not")
	}
}

// clustersPriority builds m disjoint k-cliques over R(K,V) with
// K -> V and an empty priority. (A local mirror of workload.Clusters;
// the workload package depends on core, not vice versa.)
func clustersPriority(t testing.TB, m, k int) *priority.Priority {
	t.Helper()
	return clustersPriorityB(m, k)
}

func clustersPriorityB(m, k int) *priority.Priority {
	s := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
	inst := relation.NewInstance(s)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			inst.MustInsert(i, j)
		}
	}
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "K -> V"))
	return priority.New(g)
}

func BenchmarkEngineClusters(b *testing.B) {
	// m identical 4-cliques: the component-sharded engine with
	// memoization computes one clique and reuses it m-1 times.
	// (31 cliques keep 4^31 preferred repairs within int64.)
	for _, cfg := range []struct {
		name string
		eng  *Engine
	}{
		{"sequential", Sequential()},
		{"parallel", NewEngine()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			p := clustersPriorityB(31, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.eng.Count(Global, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
