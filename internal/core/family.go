// Package core implements the paper's primary contribution: families
// of preferred repairs selected by a priority (§3). It provides the
// optimality checkers (locally / semi-globally / globally optimal,
// common), the repair preference relation ≪ (Proposition 5), and
// per-component enumerators and counters for each family:
//
//	Rep     all repairs                         (no priority used)
//	L-Rep   locally optimal repairs             (§3.1)
//	S-Rep   semi-globally optimal repairs       (§3.2)
//	G-Rep   globally optimal repairs            (§3.3)
//	C-Rep   common repairs = Algorithm 1 output (§3.5, Prop. 7)
//
// The families form a chain C ⊆ G ⊆ S ⊆ L ⊆ Rep (Props. 3, 4, 6).
//
// All evaluation decomposes over the connected components of the
// conflict graph. The package-level Enumerate/All/Count/One functions
// run on a sequential reference path; Engine evaluates the same
// decomposition on a worker pool with optional memoization of
// per-component choice sets, producing bit-for-bit identical results.
package core

import (
	"fmt"
	"strings"
)

// Family names one of the paper's preferred-repair families.
type Family int

const (
	// Rep is the family of all repairs — classic consistent query
	// answers with no preference input [1].
	Rep Family = iota
	// Local is L-Rep, the locally optimal repairs (§3.1).
	Local
	// SemiGlobal is S-Rep, the semi-globally optimal repairs (§3.2).
	SemiGlobal
	// Global is G-Rep, the globally optimal repairs (§3.3).
	Global
	// Common is C-Rep, the common repairs (§3.5).
	Common
)

// Families lists all families in containment order (largest first).
var Families = []Family{Rep, Local, SemiGlobal, Global, Common}

// String returns the paper's name for the family.
func (f Family) String() string {
	switch f {
	case Rep:
		return "Rep"
	case Local:
		return "L-Rep"
	case SemiGlobal:
		return "S-Rep"
	case Global:
		return "G-Rep"
	case Common:
		return "C-Rep"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// ParseFamily accepts "rep", "l", "local", "l-rep", "s", "semiglobal",
// "s-rep", "g", "global", "g-rep", "c", "common", "c-rep"
// (case-insensitive).
func ParseFamily(s string) (Family, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "rep", "all":
		return Rep, nil
	case "l", "local", "l-rep", "lrep":
		return Local, nil
	case "s", "semiglobal", "semi-global", "s-rep", "srep":
		return SemiGlobal, nil
	case "g", "global", "g-rep", "grep":
		return Global, nil
	case "c", "common", "c-rep", "crep":
		return Common, nil
	default:
		return 0, fmt.Errorf("core: unknown repair family %q", s)
	}
}
