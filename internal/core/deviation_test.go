package core

import (
	"math/rand"
	"testing"

	"prefcqa/internal/clean"
)

// TestSemiGlobalCategoricalUnderTotalPriority documents a deviation
// from the paper's §3.2 claim that S-Rep does not satisfy P4.
//
// Under the paper's own Definition of semi-global optimality, a TOTAL
// priority forces S-Rep = {Algorithm 1 result}: the winnow layer
// ω≻(rest) of each stage must be contained in every semi-globally
// optimal repair. (Take y ∈ ω≻(rest) \ r'. Tuples of rest have no
// neighbors among previously removed vicinities that could sit in r',
// so n(y) ∩ r' ⊆ rest; totality plus y ∈ ω≻(rest) means y dominates
// all of them — the S-condition is violated.) The paper's Example 9
// cannot exhibit non-categoricity of S-Rep with a total priority;
// see TestExample9MutualConflicts for the partial-priority variant
// that realizes the intended picture.
//
// This test verifies the derived fact on randomized instances: with a
// total priority, S-Rep (like G-Rep and C-Rep, and unlike L-Rep)
// contains exactly the Algorithm 1 repair.
func TestSemiGlobalCategoricalUnderTotalPriority(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for i := 0; i < 40; i++ {
		base := randomInstance(rng, 6+rng.Intn(4), "A -> B", "B -> C")
		p := base.TotalExtension(rng)
		want := clean.Deterministic(p)
		s := All(SemiGlobal, p)
		if len(s) != 1 || !s[0].Equal(want) {
			t.Fatalf("total priority: S-Rep = %v, want exactly {%v}\npriority %v",
				s, want, p)
		}
	}
}

// TestLocalNotCategoricalWitness re-verifies that L-Rep genuinely
// fails P4 (Example 8): the deviation above is specific to S.
func TestLocalNotCategoricalWitness(t *testing.T) {
	p := example8(t)
	if !p.IsTotal() {
		t.Fatal("Example 8 priority is total")
	}
	if n := len(All(Local, p)); n != 2 {
		t.Fatalf("L-Rep = %d members, want 2 (P4 failure witness)", n)
	}
}
