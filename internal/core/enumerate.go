package core

import (
	"math"

	"prefcqa/internal/bitset"
	"prefcqa/internal/clean"
	"prefcqa/internal/priority"
	"prefcqa/internal/repair"
)

// ComponentChoices returns, for every connected component of the
// conflict graph, the list of component restrictions of preferred
// repairs of the family. Every preferred repair is exactly one union
// of one choice per component:
//
//   - the optimality conditions of L, S and G only relate tuples to
//     their conflict neighborhoods, hence decompose componentwise;
//   - C-Rep decomposes because Algorithm 1's choices in different
//     components commute (clean.ComponentOutcomes).
func ComponentChoices(f Family, p *priority.Priority) [][]*bitset.Set {
	comps := p.Graph().Components()
	choices := make([][]*bitset.Set, len(comps))
	for i, comp := range comps {
		choices[i] = ChoicesForComponent(f, p, comp)
	}
	return choices
}

// ChoicesForComponent returns the component restrictions of the
// family's preferred repairs for a single connected component.
func ChoicesForComponent(f Family, p *priority.Priority, comp []int) []*bitset.Set {
	if f == Common {
		return clean.ComponentOutcomes(p, comp)
	}
	g := p.Graph()
	compSet := bitset.FromSlice(comp)
	var list []*bitset.Set
	repair.EnumerateComponent(g, comp, func(s *bitset.Set) bool { //nolint:errcheck // yield never stops
		keep := true
		switch f {
		case Rep:
		case Local:
			keep = locallyOptimalCond(p, s)
		case SemiGlobal:
			keep = semiGloballyOptimalCond(p, s, compSet)
		case Global:
			keep = globallyOptimalComponentCond(p, s, comp)
		}
		if keep {
			list = append(list, s.Clone())
		}
		return true
	})
	return list
}

// Enumerate yields every preferred repair of the family. The yielded
// set is reused between calls; clone it to retain. Returns
// repair.ErrStopped if the callback stopped early.
func Enumerate(f Family, p *priority.Priority, yield func(*bitset.Set) bool) error {
	return repair.Combine(p.Graph().Len(), ComponentChoices(f, p), yield)
}

// All materializes every preferred repair of the family. Use only
// when the count is known to be small; prefer Enumerate.
func All(f Family, p *priority.Priority) []*bitset.Set {
	var out []*bitset.Set
	Enumerate(f, p, func(s *bitset.Set) bool { //nolint:errcheck // yield never stops
		out = append(out, s.Clone())
		return true
	})
	return out
}

// Count returns |X-Rep| as the product of per-component counts, or
// repair.ErrOverflow when it exceeds int64.
func Count(f Family, p *priority.Priority) (int64, error) {
	total := int64(1)
	for _, list := range ComponentChoices(f, p) {
		c := int64(len(list))
		if c == 0 {
			return 0, nil
		}
		if total > math.MaxInt64/c {
			return 0, repair.ErrOverflow
		}
		total *= c
	}
	return total, nil
}

// One returns a single preferred repair of the family — the first in
// enumeration order. Every family is non-empty for every priority
// (P1 holds for Rep, L, S, G, C; Props. 2–4, 6), so One always
// succeeds on a well-formed priority.
func One(f Family, p *priority.Priority) *bitset.Set {
	var out *bitset.Set
	Enumerate(f, p, func(s *bitset.Set) bool { //nolint:errcheck // stops after first
		out = s.Clone()
		return false
	})
	return out
}
