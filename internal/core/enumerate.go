package core

import (
	"prefcqa/internal/bitset"
	"prefcqa/internal/priority"
)

// The package-level functions below evaluate on the sequential
// reference engine (one worker, no cache). They define the semantics
// every Engine configuration must reproduce bit-for-bit; use an
// Engine for parallelism and memoization.

// ComponentChoices returns, for every connected component of the
// conflict graph, the list of component restrictions of preferred
// repairs of the family. Every preferred repair is exactly one union
// of one choice per component:
//
//   - the optimality conditions of L, S and G only relate tuples to
//     their conflict neighborhoods, hence decompose componentwise;
//   - C-Rep decomposes because Algorithm 1's choices in different
//     components commute (clean.ComponentOutcomes).
func ComponentChoices(f Family, p *priority.Priority) [][]*bitset.Set {
	return sequential.ComponentChoices(f, p)
}

// ChoicesForComponent returns the component restrictions of the
// family's preferred repairs for a single connected component. The
// computation runs in component-local index space (local.go) and the
// results are lifted back to global TupleIDs here.
func ChoicesForComponent(f Family, p *priority.Priority, comp []int) []*bitset.Set {
	if len(comp) == 0 {
		// Degenerate input: the only "repair" of the empty subgraph is
		// the empty set, for every family.
		return []*bitset.Set{bitset.New(0)}
	}
	return liftChoices(localChoices(f, p, comp), comp)
}

// Enumerate yields every preferred repair of the family. The yielded
// set is reused between calls; clone it to retain. Returns
// repair.ErrStopped if the callback stopped early.
func Enumerate(f Family, p *priority.Priority, yield func(*bitset.Set) bool) error {
	return sequential.Enumerate(f, p, yield)
}

// All materializes every preferred repair of the family. Use only
// when the count is known to be small; prefer Enumerate.
func All(f Family, p *priority.Priority) []*bitset.Set {
	return sequential.All(f, p)
}

// Count returns |X-Rep| as the product of per-component counts, or
// repair.ErrOverflow when it exceeds int64.
func Count(f Family, p *priority.Priority) (int64, error) {
	return sequential.Count(f, p)
}

// One returns a single preferred repair of the family — the first in
// enumeration order. Every family is non-empty for every priority
// (P1 holds for Rep, L, S, G, C; Props. 2–4, 6), so One always
// succeeds on a well-formed priority.
func One(f Family, p *priority.Priority) *bitset.Set {
	return sequential.One(f, p)
}
