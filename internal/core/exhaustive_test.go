package core

import (
	"math/rand"
	"testing"

	"prefcqa/internal/priority"
)

// TestExhaustiveMonotonicity verifies P2 exactly on small instances:
// for EVERY total extension of the base priority, the family shrinks
// (L, S, G). Random probing (property_test.go) samples extensions;
// this test enumerates all of them.
func TestExhaustiveMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	checked := 0
	for iter := 0; iter < 30 && checked < 12; iter++ {
		p := randomInstance(rng, 5+rng.Intn(3), "A -> B", "B -> C")
		exts, err := priority.AllTotalExtensions(p, 10)
		if err != nil {
			continue // too many unoriented edges; skip
		}
		checked++
		for _, f := range []Family{Local, SemiGlobal, Global} {
			base := keys(All(f, p))
			for _, ext := range exts {
				for _, r := range All(f, ext) {
					if !base[r.Key()] {
						t.Fatalf("%v: total extension enlarged the family\nbase %v\next %v",
							f, p, ext)
					}
				}
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances fully checked; weak test", checked)
	}
}

// TestExhaustiveCategoricity verifies P4 exactly: every total
// extension yields exactly one G-, C- and S-repair.
func TestExhaustiveCategoricity(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	checked := 0
	for iter := 0; iter < 30 && checked < 12; iter++ {
		p := randomInstance(rng, 5+rng.Intn(3), "A -> B", "B -> C")
		exts, err := priority.AllTotalExtensions(p, 10)
		if err != nil {
			continue
		}
		checked++
		for _, ext := range exts {
			for _, f := range []Family{SemiGlobal, Global, Common} {
				if n := len(All(f, ext)); n != 1 {
					t.Fatalf("%v under total extension has %d members", f, n)
				}
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances fully checked; weak test", checked)
	}
}

// TestExhaustiveCommonIsIntersectionFlavor spot-checks the intent of
// Theorem 1 / §3.5: every C-repair stays globally optimal under every
// total extension that still admits it... more precisely, C-Rep is
// contained in G-Rep for the base priority AND each C-repair is the
// categorical choice of at least one total extension.
func TestExhaustiveCommonWitnessedByExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(913))
	checked := 0
	for iter := 0; iter < 40 && checked < 10; iter++ {
		p := randomInstance(rng, 5+rng.Intn(3), "A -> B", "B -> C")
		exts, err := priority.AllTotalExtensions(p, 10)
		if err != nil || len(exts) == 0 {
			continue
		}
		checked++
		// Collect the categorical repair of every total extension.
		witnessed := map[string]bool{}
		for _, ext := range exts {
			for _, r := range All(Common, ext) {
				witnessed[r.Key()] = true
			}
		}
		// Every C-repair of the base priority is one of them:
		// Algorithm 1's choice sequence can be read off as a total
		// extension ordering.
		for _, r := range All(Common, p) {
			if !witnessed[r.Key()] {
				t.Fatalf("C-repair %v not witnessed by any total extension of %v", r, p)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d instances fully checked; weak test", checked)
	}
}
