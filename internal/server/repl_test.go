package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"prefcqa"
	"prefcqa/client"
)

// replOptions are tight-interval settings so a test fleet converges in
// milliseconds instead of production defaults.
func replOptions(t *testing.T) Options {
	return Options{
		DataDir:           t.TempDir(),
		DBOptions:         []prefcqa.Option{prefcqa.WithSyncPolicy(prefcqa.SyncGroup)},
		DiscoverInterval:  25 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	}
}

// bootFollower boots a follower of the given primary URL and starts
// replication.
func bootFollower(t *testing.T, primaryURL string, extra func(*Options)) (*Server, *client.Client) {
	t.Helper()
	opts := replOptions(t)
	opts.FollowURL = primaryURL
	if extra != nil {
		extra(&opts)
	}
	srv, c := boot(t, opts)
	if err := srv.StartReplication(); err != nil {
		t.Fatal(err)
	}
	return srv, c
}

// seedCluster writes one two-tuple conflict cluster for key k through
// the client and returns the write-version of its completing prefer.
func seedCluster(t *testing.T, c *client.Client, db string, k int) uint64 {
	t.Helper()
	ctx := context.Background()
	ids, _, err := c.Insert(ctx, db, "R", row(t, k, 0))
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := c.Insert(ctx, db, "R", row(t, k, 1))
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Prefer(ctx, db, "R", [2]int{ids[0], ids2[0]})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

var allFamilies = []prefcqa.Family{prefcqa.Rep, prefcqa.Local, prefcqa.SemiGlobal, prefcqa.Global, prefcqa.Common}

// collectRepairs streams every repair and returns a canonical sorted
// serialization, for bit-for-bit comparison across servers.
func collectRepairs(t *testing.T, c *client.Client, db string, f prefcqa.Family, v uint64) []string {
	t.Helper()
	var out []string
	_, err := c.Repairs(context.Background(), db, f, "R", 0, func(inst *prefcqa.Instance) bool {
		w := prefcqa.EncodeWire(inst)
		b, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
		return true
	}, client.MinVersion(v))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

// TestReplicationEndToEnd is the tentpole integration test: concurrent
// writers churn the primary while readers on two followers demand
// read-your-writes at each write's version; then, quiesced, every
// server must answer every read shape — all five repair families,
// counts, open queries, streamed repair enumerations — bit for bit
// identically at the same watermark. Run under -race in CI.
func TestReplicationEndToEnd(t *testing.T) {
	_, pc := boot(t, replOptions(t))
	ctx := context.Background()
	if err := pc.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CreateRelation(ctx, "d", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.AddFD(ctx, "d", "R", "K -> V"); err != nil {
		t.Fatal(err)
	}

	_, f1 := bootFollower(t, pc.BaseURL(), nil)
	_, f2 := bootFollower(t, pc.BaseURL(), nil)
	followers := []*client.Client{f1, f2}

	// Writers on disjoint key ranges; each completed cluster's version
	// fans out to readers demanding it from both followers.
	const writers, perWriter = 2, 12
	type mark struct {
		k int
		v uint64
	}
	marks := make(chan mark, writers*perWriter)
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perWriter; i++ {
				k := w*perWriter + i
				marks <- mark{k: k, v: seedCluster(t, pc, "d", k)}
			}
		}(w)
	}
	go func() { wwg.Wait(); close(marks) }()

	var rwg sync.WaitGroup
	errCh := make(chan error, 64)
	for m := range marks {
		for fi, fc := range followers {
			rwg.Add(1)
			go func(m mark, fi int, fc *client.Client) {
				defer rwg.Done()
				// The primary's answer at the same watermark is the
				// reference; every family must agree bit for bit.
				for _, fam := range allFamilies {
					q := fmt.Sprintf("R(%d, 0)", m.k)
					want, err := pc.Query(ctx, "d", fam, q, client.MinVersion(m.v))
					if err != nil {
						errCh <- fmt.Errorf("primary %v %s: %w", fam, q, err)
						return
					}
					got, err := fc.Query(ctx, "d", fam, q, client.MinVersion(m.v))
					if err != nil {
						errCh <- fmt.Errorf("follower%d %v %s: %w", fi+1, fam, q, err)
						return
					}
					if got != want {
						errCh <- fmt.Errorf("follower%d %v %s = %v, primary says %v", fi+1, fam, q, got, want)
						return
					}
				}
			}(m, fi, fc)
		}
	}
	rwg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: the full read surface must be identical on all three
	// servers at the final watermark.
	st, err := pc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	final := st.DBs["d"].WriteVersion
	for fi, fc := range followers {
		for _, fam := range allFamilies {
			wantN, err := pc.CountRepairs(ctx, "d", fam, "R", client.MinVersion(final))
			if err != nil {
				t.Fatal(err)
			}
			gotN, err := fc.CountRepairs(ctx, "d", fam, "R", client.MinVersion(final))
			if err != nil {
				t.Fatal(err)
			}
			if gotN != wantN {
				t.Errorf("follower%d CountRepairs(%v) = %d, primary %d", fi+1, fam, gotN, wantN)
			}
			wantB, err := pc.QueryOpen(ctx, "d", fam, "EXISTS v . R(x, v)", client.MinVersion(final))
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := fc.QueryOpen(ctx, "d", fam, "EXISTS v . R(x, v)", client.MinVersion(final))
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(gotB) != fmt.Sprint(wantB) {
				t.Errorf("follower%d QueryOpen(%v) = %v, primary %v", fi+1, fam, gotB, wantB)
			}
		}
		want := collectRepairs(t, pc, "d", prefcqa.Global, final)
		got := collectRepairs(t, fc, "d", prefcqa.Global, final)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("follower%d streamed repairs differ from primary", fi+1)
		}
	}
}

func TestFollowerRefusesWritesWithRedirect(t *testing.T) {
	_, pc := boot(t, replOptions(t))
	ctx := context.Background()
	if err := pc.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CreateRelation(ctx, "d", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	v := seedClusterNoFD(t, pc, "d", 1)

	_, fc := bootFollower(t, pc.BaseURL(), nil)
	if _, err := fc.CountRepairs(ctx, "d", prefcqa.Global, "R", client.MinVersion(v)); err != nil {
		t.Fatalf("follower read never converged: %v", err)
	}

	// Every write shape is refused with 421 naming the primary.
	_, _, err := fc.Insert(ctx, "d", "R", row(t, 9, 9))
	mustStatus(t, err, http.StatusMisdirectedRequest)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Primary != pc.BaseURL() {
		t.Fatalf("421 Primary = %q, want %q", ae.Primary, pc.BaseURL())
	}
	err = fc.CreateDB(ctx, "other")
	mustStatus(t, err, http.StatusMisdirectedRequest)
	_, err = fc.Prefer(ctx, "d", "R", [2]int{0, 1})
	mustStatus(t, err, http.StatusMisdirectedRequest)

	// A ReplicaSet pointed at the follower self-corrects via the 421.
	rs := client.NewReplicaSet(fc.BaseURL(), []string{fc.BaseURL()})
	if _, _, err := rs.Insert(ctx, "d", "R", row(t, 10, 0)); err != nil {
		t.Fatalf("ReplicaSet write via follower: %v", err)
	}
	if got := rs.Primary().BaseURL(); got != pc.BaseURL() {
		t.Fatalf("ReplicaSet adopted %q, want %q", got, pc.BaseURL())
	}
}

// seedClusterNoFD inserts a cluster assuming the relation and FD are
// set up separately (used where the FD would conflict with reuse).
func seedClusterNoFD(t *testing.T, c *client.Client, db string, k int) uint64 {
	t.Helper()
	if _, err := c.AddFD(context.Background(), db, "R", "K -> V"); err != nil {
		t.Fatal(err)
	}
	return seedCluster(t, c, db, k)
}

func TestMinVersionWaitsOnFollower(t *testing.T) {
	_, pc := boot(t, replOptions(t))
	ctx := context.Background()
	if err := pc.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CreateRelation(ctx, "d", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	v := seedClusterNoFD(t, pc, "d", 1)
	_, fc := bootFollower(t, pc.BaseURL(), nil)
	if _, err := fc.CountRepairs(ctx, "d", prefcqa.Global, "R", client.MinVersion(v)); err != nil {
		t.Fatalf("converge: %v", err)
	}

	// A min_version nothing has written yet times out with 504 — the
	// follower parks the read rather than rejecting or lying.
	_, err := fc.Query(ctx, "d", prefcqa.Global, "R(1, 0)",
		client.MinVersion(v+100), client.Timeout(300*time.Millisecond))
	mustStatus(t, err, http.StatusGatewayTimeout)

	// Once the primary writes past it, the same read completes.
	done := make(chan error, 1)
	go func() {
		_, err := fc.Query(ctx, "d", prefcqa.Global, "R(1, 0)", client.MinVersion(v+3))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	seedCluster(t, pc, "d", 2)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked read failed after catch-up: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked read never completed after the primary wrote past its watermark")
	}
}

func TestPromotionContinuesHistoryAndFencesOldPrimary(t *testing.T) {
	psrv, pc := boot(t, replOptions(t))
	ctx := context.Background()
	if err := pc.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CreateRelation(ctx, "d", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	v := seedClusterNoFD(t, pc, "d", 1)

	fsrv, fc := bootFollower(t, pc.BaseURL(), nil)
	if _, err := fc.CountRepairs(ctx, "d", prefcqa.Global, "R", client.MinVersion(v)); err != nil {
		t.Fatalf("converge: %v", err)
	}

	// Take the primary away, then promote the follower.
	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	if err := psrv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp, err := fc.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Promoted) != 1 || resp.Promoted[0] != "d" {
		t.Fatalf("promoted = %v, want [d]", resp.Promoted)
	}
	if resp.Epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", resp.Epoch)
	}
	// Promotion is idempotent.
	if again, err := fc.Promote(ctx); err != nil || again.Epoch != 2 {
		t.Fatalf("second promote = %+v, %v; want epoch 2", again, err)
	}

	// Writes resume at the exact next sequence of the replicated
	// history, and the old history is intact.
	_, wv, err := fc.Insert(ctx, "d", "R", row(t, 2, 0))
	if err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if wv != v+1 {
		t.Fatalf("first post-promotion version = %d, want %d", wv, v+1)
	}
	if ans, err := fc.Query(ctx, "d", prefcqa.Global, "R(1, 0)"); err != nil || ans != prefcqa.True {
		t.Fatalf("pre-failover write lost: %v, %v", ans, err)
	}

	// The promoted server reports itself a primary now.
	st, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	repl := st.DBs["d"].Replication
	if repl == nil || repl.Role != "primary" || repl.Status != "promoted" {
		t.Fatalf("promoted stats = %+v, want role primary status promoted", repl)
	}
	if repl.Epoch != 2 {
		t.Fatalf("stats epoch = %d, want 2", repl.Epoch)
	}

	// Fencing: the promoted lineage refuses to serve a stream to an
	// epoch ahead of it (symmetric check), and — the critical
	// direction — a server still at epoch 1 refuses a follower that
	// has seen epoch 2.
	furl := strings.TrimPrefix(fc.BaseURL(), "http://")
	resp2, err := http.Get("http://" + furl + client.PathReplStream + "?db=d&from_seq=1&epoch=99")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("stream with future epoch = HTTP %d, want 409", resp2.StatusCode)
	}
	_ = fsrv
}

func TestAutoPromoteOnPrimarySilence(t *testing.T) {
	psrv, pc := boot(t, replOptions(t))
	ctx := context.Background()
	if err := pc.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CreateRelation(ctx, "d", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	v := seedClusterNoFD(t, pc, "d", 1)

	_, fc := bootFollower(t, pc.BaseURL(), func(o *Options) {
		o.AutoPromote = 300 * time.Millisecond
	})
	if _, err := fc.CountRepairs(ctx, "d", prefcqa.Global, "R", client.MinVersion(v)); err != nil {
		t.Fatalf("converge: %v", err)
	}
	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	if err := psrv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	cancel()

	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, _, err := fc.Insert(ctx, "d", "R", row(t, 2, 0)); err == nil {
			break // auto-promotion happened; writes accepted
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never auto-promoted after primary silence")
		}
		time.Sleep(50 * time.Millisecond)
	}
	st, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repl := st.DBs["d"].Replication; repl == nil || repl.Status != "promoted" {
		t.Fatalf("stats after auto-promote = %+v, want status promoted", repl)
	}
}

func TestStatsCarryWALAndReplication(t *testing.T) {
	_, pc := boot(t, replOptions(t))
	ctx := context.Background()
	if err := pc.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CreateRelation(ctx, "d", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	v := seedClusterNoFD(t, pc, "d", 1)

	st, err := pc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds := st.DBs["d"]
	if ds.WAL == nil {
		t.Fatal("durable database reported no WAL stats")
	}
	if ds.WAL.Seq != v {
		t.Errorf("wal.seq = %d, want %d", ds.WAL.Seq, v)
	}
	if ds.WAL.Epoch != 1 {
		t.Errorf("wal.epoch = %d, want 1", ds.WAL.Epoch)
	}
	if ds.WAL.Segments < 1 || ds.WAL.SegmentBytes <= 0 {
		t.Errorf("wal footprint = %d segments, %d bytes; want ≥1, >0", ds.WAL.Segments, ds.WAL.SegmentBytes)
	}
	if ds.WAL.Fsync != "group" {
		t.Errorf("wal.fsync = %q, want %q", ds.WAL.Fsync, "group")
	}
	if ds.Replication == nil || ds.Replication.Role != "primary" {
		t.Errorf("primary replication stats = %+v, want role primary", ds.Replication)
	}

	_, fc := bootFollower(t, pc.BaseURL(), nil)
	if _, err := fc.CountRepairs(ctx, "d", prefcqa.Global, "R", client.MinVersion(v)); err != nil {
		t.Fatalf("converge: %v", err)
	}
	fst, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fds := fst.DBs["d"]
	if fds.Replication == nil || fds.Replication.Role != "follower" {
		t.Fatalf("follower replication stats = %+v, want role follower", fds.Replication)
	}
	if fds.Replication.Primary != pc.BaseURL() {
		t.Errorf("follower primary = %q, want %q", fds.Replication.Primary, pc.BaseURL())
	}
	if fds.Replication.AppliedSeq != v {
		t.Errorf("follower applied_seq = %d, want %d", fds.Replication.AppliedSeq, v)
	}
	if s := fds.Replication.Status; s != "streaming" && s != "bootstrapping" {
		t.Errorf("follower status = %q, want streaming", s)
	}
	if fds.Replication.LastContactMS < 0 {
		t.Errorf("follower last_contact_ms = %d, want ≥ 0", fds.Replication.LastContactMS)
	}
}
