package server

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"prefcqa"
	"prefcqa/client"
)

// The concurrent integration test: ≥ 8 clients hammer one relation
// through real HTTP sockets with mixed reads (Query, QueryOpen,
// CountRepairs, streamed Repairs, Stats) and writes (Insert, Delete,
// Prefer), each writer verifying read-your-writes as it goes. After
// the hammer the accumulated write log is replayed into a fresh
// library-facade DB and every read surface is compared bit-for-bit:
// the server must be a transparent network skin over the engine.
//
// Determinism of the replay: writers own disjoint key classes (k mod
// numWriters) and never insert the same value tuple twice, so the
// server-assigned tuple IDs are reproduced exactly by replaying
// inserts in ID order, then preferences, then deletes.

const (
	hammerKeys   = 24
	numWriters   = 4
	numReaders   = 5
	writerRounds = 25
)

// writeOp is one logged mutation, keyed by server-assigned IDs.
type writeOp struct {
	insertID  int           // -1 unless insert
	insertRow prefcqa.Tuple // set on insert
	deleteID  int           // -1 unless delete
	prefer    [2]int        // {-1,-1} unless prefer
}

func TestConcurrentMixedWorkloadMatchesFacade(t *testing.T) {
	_, c := boot(t, Options{})
	ctx := context.Background()
	if err := c.CreateDB(ctx, "hammer"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation(ctx, "hammer", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFD(ctx, "hammer", "R", "K -> V"); err != nil {
		t.Fatal(err)
	}
	// Preload: every key starts as a resolved two-tuple conflict
	// cluster, anchor (k, 0) preferred over (k, 1).
	anchors := make([]int, hammerKeys)
	var log []writeOp
	for k := 0; k < hammerKeys; k++ {
		ids, _, err := c.Insert(ctx, "hammer", "R", row(t, k, 0), row(t, k, 1))
		if err != nil {
			t.Fatal(err)
		}
		anchors[k] = ids[0]
		log = append(log,
			writeOp{insertID: ids[0], insertRow: row(t, k, 0), deleteID: -1, prefer: [2]int{-1, -1}},
			writeOp{insertID: ids[1], insertRow: row(t, k, 1), deleteID: -1, prefer: [2]int{-1, -1}})
		if k%3 != 0 { // every third key stays unresolved: undetermined answers exist
			if _, err := c.Prefer(ctx, "hammer", "R", [2]int{ids[0], ids[1]}); err != nil {
				t.Fatal(err)
			}
			log = append(log, writeOp{insertID: -1, deleteID: -1, prefer: [2]int{ids[0], ids[1]}})
		}
	}

	var (
		mu      sync.Mutex // guards log
		wg      sync.WaitGroup
		stopErr = make(chan error, numWriters+numReaders)
	)
	record := func(ops ...writeOp) {
		mu.Lock()
		log = append(log, ops...)
		mu.Unlock()
	}

	// Writers: each owns the keys congruent to its index, so no two
	// writers ever touch the same conflict cluster (keeps preferences
	// consistent and the replay deterministic).
	for w := 0; w < numWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			prev := make(map[int]int) // key -> previous generation's tuple ID
			for i := 0; i < writerRounds; i++ {
				k := (rng.Intn(hammerKeys/numWriters))*numWriters + w
				val := 100 + (i*numWriters+w)*hammerKeys + k // globally unique value per insert
				ids, _, err := c.Insert(ctx, "hammer", "R", row(t, k, val))
				if err != nil {
					stopErr <- fmt.Errorf("writer %d: insert: %w", w, err)
					return
				}
				record(writeOp{insertID: ids[0], insertRow: row(t, k, val), deleteID: -1, prefer: [2]int{-1, -1}})
				wv, err := c.Prefer(ctx, "hammer", "R", [2]int{anchors[k], ids[0]})
				if err != nil {
					stopErr <- fmt.Errorf("writer %d: prefer: %w", w, err)
					return
				}
				record(writeOp{insertID: -1, deleteID: -1, prefer: [2]int{anchors[k], ids[0]}})
				// Read-your-writes: with min_version from the write, the
				// fresh tuple must be visible (it conflicts with the
				// anchor, so under Rep it is in some repair: not false).
				a, err := c.Query(ctx, "hammer", prefcqa.Rep,
					fmt.Sprintf("R(%d, %d)", k, val), client.MinVersion(wv))
				if err != nil {
					stopErr <- fmt.Errorf("writer %d: RYW query: %w", w, err)
					return
				}
				if a == prefcqa.False {
					stopErr <- fmt.Errorf("writer %d: read-your-writes violated: R(%d, %d) = false at min_version %d", w, k, val, wv)
					return
				}
				if old, ok := prev[k]; ok && rng.Intn(2) == 0 {
					if _, _, err := c.Delete(ctx, "hammer", "R", old); err != nil {
						stopErr <- fmt.Errorf("writer %d: delete: %w", w, err)
						return
					}
					record(writeOp{insertID: -1, deleteID: old, prefer: [2]int{-1, -1}})
				}
				prev[k] = ids[0]
			}
		}(w)
	}

	// Readers: mixed Query / QueryOpen / CountRepairs / streamed
	// Repairs / Stats against whatever snapshot is current. Answers
	// vary with timing; validity invariants must not.
	families := []prefcqa.Family{prefcqa.Rep, prefcqa.Local, prefcqa.SemiGlobal, prefcqa.Global, prefcqa.Common}
	for rd := 0; rd < numReaders; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + rd)))
			var lastVersion uint64
			for i := 0; i < 40; i++ {
				f := families[rng.Intn(len(families))]
				switch i % 5 {
				case 0:
					k := rng.Intn(hammerKeys)
					a, err := c.Query(ctx, "hammer", f, fmt.Sprintf("R(%d, 0)", k))
					if err != nil {
						stopErr <- fmt.Errorf("reader %d: query: %w", rd, err)
						return
					}
					if a != prefcqa.True && a != prefcqa.False && a != prefcqa.Undetermined {
						stopErr <- fmt.Errorf("reader %d: invalid answer %v", rd, a)
						return
					}
				case 1:
					if _, err := c.QueryOpen(ctx, "hammer", f, fmt.Sprintf("R(%d, v)", rng.Intn(hammerKeys))); err != nil {
						stopErr <- fmt.Errorf("reader %d: query-open: %w", rd, err)
						return
					}
				case 2:
					n, err := c.CountRepairs(ctx, "hammer", f, "R")
					if err != nil {
						stopErr <- fmt.Errorf("reader %d: count: %w", rd, err)
						return
					}
					if n < 1 {
						stopErr <- fmt.Errorf("reader %d: count = %d < 1 (P1 violated?)", rd, n)
						return
					}
				case 3:
					tuples := -1
					if _, err := c.Repairs(ctx, "hammer", f, "R", 4, func(inst *prefcqa.Instance) bool {
						// Every streamed repair of one snapshot has one
						// tuple per key cluster... at least keys many? A
						// repair keeps an independent set per component;
						// sizes vary. Just check decodability + schema.
						if inst.Schema().Arity() != 2 {
							return false
						}
						tuples = inst.Len()
						return true
					}); err != nil {
						stopErr <- fmt.Errorf("reader %d: repairs: %w", rd, err)
						return
					}
					if tuples < 0 {
						stopErr <- fmt.Errorf("reader %d: repairs stream yielded nothing", rd)
						return
					}
				case 4:
					st, err := c.Stats(ctx)
					if err != nil {
						stopErr <- fmt.Errorf("reader %d: stats: %w", rd, err)
						return
					}
					v := st.DBs["hammer"].WriteVersion
					if v < lastVersion {
						stopErr <- fmt.Errorf("reader %d: write-version went backwards: %d < %d", rd, v, lastVersion)
						return
					}
					lastVersion = v
				}
			}
		}(rd)
	}
	wg.Wait()
	select {
	case err := <-stopErr:
		t.Fatal(err)
	default:
	}

	// Quiesced. Replay the log into a library-facade DB: inserts in
	// server-ID order (reproducing the IDs exactly), then preferences,
	// then deletes.
	mirror := prefcqa.New()
	mrel, err := mirror.CreateRelation("R", prefcqa.IntAttr("K"), prefcqa.IntAttr("V"))
	if err != nil {
		t.Fatal(err)
	}
	if err := mrel.AddFD("K -> V"); err != nil {
		t.Fatal(err)
	}
	var inserts, deletes []writeOp
	var prefers [][2]int
	for _, op := range log {
		switch {
		case op.insertID >= 0:
			inserts = append(inserts, op)
		case op.deleteID >= 0:
			deletes = append(deletes, op)
		default:
			prefers = append(prefers, op.prefer)
		}
	}
	sort.Slice(inserts, func(i, j int) bool { return inserts[i].insertID < inserts[j].insertID })
	for i, op := range inserts {
		id, err := mrel.Insert([]any{op.insertRow[0], op.insertRow[1]}...)
		if err != nil {
			t.Fatal(err)
		}
		if id != op.insertID {
			t.Fatalf("replay insert %d: facade ID %d != server ID %d", i, id, op.insertID)
		}
	}
	for _, p := range prefers {
		if err := mrel.Prefer(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range deletes {
		if ok, err := mrel.Delete(op.deleteID); err != nil || !ok {
			t.Fatalf("replay delete %d: ok=%v err=%v", op.deleteID, ok, err)
		}
	}
	snap, err := mirror.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Bit-for-bit comparison of every read surface.
	for _, f := range families {
		wantCount, err := snap.CountRepairs(f, "R")
		if err != nil {
			t.Fatal(err)
		}
		gotCount, err := c.CountRepairs(ctx, "hammer", f, "R")
		if err != nil {
			t.Fatal(err)
		}
		if gotCount != wantCount {
			t.Fatalf("%v: server count %d != facade count %d", f, gotCount, wantCount)
		}
		for k := 0; k < hammerKeys; k += 5 {
			q := fmt.Sprintf("R(%d, 0)", k)
			want, err := snap.Query(f, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Query(ctx, "hammer", f, q)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%v %s: server %v != facade %v", f, q, got, want)
			}
		}
		// A compound ground query exercises the multi-tuple pruned
		// path. (Quantified queries over this instance are infeasible
		// for every implementation: full enumeration over ~24 clique
		// components. The server would answer 504; the comparison
		// sticks to what both sides can evaluate.)
		q := "R(1, 0) AND R(2, 0) OR R(3, 1)"
		want, err := snap.Query(f, q)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := c.Query(ctx, "hammer", f, q); err != nil || got != want {
			t.Fatalf("%v %s: server %v, %v != facade %v", f, q, got, err, want)
		}
		// Open query: identical bindings in identical order.
		open := "R(1, v)"
		wantB, err := snap.QueryOpen(f, open)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := c.QueryOpen(ctx, "hammer", f, open)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotB) != len(wantB) {
			t.Fatalf("%v %s: %d bindings != %d", f, open, len(gotB), len(wantB))
		}
		for i := range wantB {
			for name, v := range wantB[i] {
				if gotB[i][name] != prefcqa.EncodeValue(v) {
					t.Fatalf("%v %s: binding %d: %v != %v", f, open, i, gotB[i], wantB[i])
				}
			}
		}
		// Streamed repairs: identical instances in identical order.
		var want64 []string
		cnt := 0
		if err := snap.EnumerateRepairs(ctx, f, "R", func(inst *prefcqa.Instance) bool {
			want64 = append(want64, inst.String())
			cnt++
			return cnt < 64
		}); err != nil {
			t.Fatal(err)
		}
		var got64 []string
		if _, err := c.Repairs(ctx, "hammer", f, "R", 64, func(inst *prefcqa.Instance) bool {
			got64 = append(got64, inst.String())
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got64) != len(want64) {
			t.Fatalf("%v: server streamed %d repairs != facade %d", f, len(got64), len(want64))
		}
		for i := range want64 {
			if got64[i] != want64[i] {
				t.Fatalf("%v: repair %d differs\nserver: %s\nfacade: %s", f, i, got64[i], want64[i])
			}
		}
	}
}
