package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"prefcqa"
	"prefcqa/client"
	"prefcqa/internal/relation"
)

// routes wires every endpoint of the v1 protocol.
func (s *Server) routes() {
	s.mux.Handle(client.PathCreateDB, s.endpoint(http.MethodPost, s.writeGate(s.handleCreateDB)))
	s.mux.Handle(client.PathRelation, s.endpoint(http.MethodPost, s.writeGate(s.handleRelation)))
	s.mux.Handle(client.PathFD, s.endpoint(http.MethodPost, s.writeGate(s.handleFD)))
	s.mux.Handle(client.PathInsert, s.endpoint(http.MethodPost, s.writeGate(s.handleInsert)))
	s.mux.Handle(client.PathDelete, s.endpoint(http.MethodPost, s.writeGate(s.handleDelete)))
	s.mux.Handle(client.PathPrefer, s.endpoint(http.MethodPost, s.writeGate(s.handlePrefer)))
	s.mux.Handle(client.PathQuery, s.endpoint(http.MethodPost, s.handleQuery))
	s.mux.Handle(client.PathQueryOpen, s.endpoint(http.MethodPost, s.handleQueryOpen))
	s.mux.Handle(client.PathCount, s.endpoint(http.MethodPost, s.handleCount))
	s.mux.Handle(client.PathRepairs, s.endpoint(http.MethodPost, s.handleRepairs))
	s.mux.Handle(client.PathExplain, s.endpoint(http.MethodPost, s.handleExplain))
	s.mux.Handle(client.PathStats, s.endpoint(http.MethodGet, s.handleStats))
	s.mux.Handle(client.PathReplSnapshot, s.endpoint(http.MethodGet, s.handleReplSnapshot))
	s.mux.Handle(client.PathReplDBs, s.endpoint(http.MethodGet, s.handleReplDBs))
	s.mux.Handle(client.PathPromote, s.endpoint(http.MethodPost, s.handlePromote))
	// The stream bypasses admission control: a parked follower holding
	// a long-poll window is not load, and counting it against the
	// in-flight budget would let a handful of replicas starve reads.
	s.mux.HandleFunc(client.PathReplStream, s.handleReplStream)
	s.mux.HandleFunc(client.PathHealth, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n")) //nolint:errcheck // health probe
	})
}

// writeGate refuses every mutation while the server is a follower —
// before the handler touches any state, so even would-be no-ops (a
// replay of a preference the replica already carries) get the 421
// redirect instead of a misleading success from a replica.
func (s *Server) writeGate(h handlerFunc) handlerFunc {
	return func(w http.ResponseWriter, r *http.Request) error {
		if s.isFollower() {
			return prefcqa.ErrReadOnly
		}
		return h(w, r)
	}
}

func (s *Server) handleCreateDB(w http.ResponseWriter, r *http.Request) error {
	var req client.CreateDBRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	db, err := s.CreateDB(req.DB)
	if err != nil {
		return &httpError{code: http.StatusConflict, err: err}
	}
	// A fresh database reports version 0; a durable one whose
	// directory carried prior state reports the recovered version.
	return writeJSON(w, client.VersionResponse{Version: db.WriteVersion()})
}

func (s *Server) handleRelation(w http.ResponseWriter, r *http.Request) error {
	var req client.RelationRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	t, err := s.tenant(req.DB)
	if err != nil {
		return err
	}
	attrs := make([]prefcqa.Attribute, len(req.Attrs))
	for i, a := range req.Attrs {
		kind, err := relation.ParseKind(a.Kind)
		if err != nil {
			return err
		}
		attrs[i] = prefcqa.Attribute{Name: a.Name, Kind: kind}
	}
	// Schema changes take the tenant write lock: prefcqa.DB does not
	// synchronize relation creation with concurrent use.
	t.mu.Lock()
	_, err = t.db.CreateRelation(req.Relation, attrs...)
	t.mu.Unlock()
	if err != nil {
		return &httpError{code: http.StatusConflict, err: err}
	}
	return writeJSON(w, client.VersionResponse{Version: t.version()})
}

// withRelation resolves a tenant and relation and runs fn holding the
// tenant read lock (guarding against concurrent relation creation;
// tuple-level mutation is synchronized by the facade itself).
func (s *Server) withRelation(db, rel string, fn func(t *tenant, r *prefcqa.Relation) error) (*tenant, error) {
	t, err := s.tenant(db)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.db.Relation(rel)
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, err: fmt.Errorf("unknown relation %q in database %q", rel, db)}
	}
	return t, fn(t, r)
}

func (s *Server) handleFD(w http.ResponseWriter, r *http.Request) error {
	var req client.FDRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	t, err := s.withRelation(req.DB, req.Relation, func(t *tenant, rel *prefcqa.Relation) error {
		return rel.AddFD(req.FD)
	})
	if err != nil {
		return err
	}
	return writeJSON(w, client.VersionResponse{Version: t.version()})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req client.InsertRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	var ids []int
	t, err := s.withRelation(req.DB, req.Relation, func(t *tenant, rel *prefcqa.Relation) error {
		// Decode and type-check every row before inserting any, so a
		// malformed batch is rejected whole: no partial, unversioned
		// mutation can hide behind the cached snapshot and surface as
		// a phantom after an unrelated later write.
		schema := rel.Schema()
		tuples := make([]prefcqa.Tuple, len(req.Rows))
		for ri, row := range req.Rows {
			if len(row) != schema.Arity() {
				return fmt.Errorf("row %d has %d cells, schema %s needs %d", ri, len(row), schema.Name(), schema.Arity())
			}
			tup := make(prefcqa.Tuple, len(row))
			for i, cell := range row {
				v, err := prefcqa.DecodeValue(schema.Attr(i).Kind, cell)
				if err != nil {
					return fmt.Errorf("row %d: %w", ri, err)
				}
				tup[i] = v
			}
			tuples[ri] = tup
		}
		// One batch call: one lock acquisition, one log record, one
		// durability barrier — a bulk load costs one fsync, not one
		// per row.
		var err error
		ids, err = rel.InsertRows(tuples)
		return err
	})
	if err != nil {
		return err
	}
	return writeJSON(w, client.InsertResponse{IDs: ids, Version: t.version()})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	var req client.DeleteRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	deleted := 0
	t, err := s.withRelation(req.DB, req.Relation, func(t *tenant, rel *prefcqa.Relation) error {
		for i, id := range req.IDs {
			ok, err := rel.Delete(id)
			if err != nil {
				// A durability failure mid-batch: what applied before it
				// is logged and versioned per delete, so the partial
				// effect is recoverable and never hides behind the
				// cached snapshot.
				return fmt.Errorf("id %d (index %d): %w", id, i, err)
			}
			if ok {
				deleted++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return writeJSON(w, client.DeleteResponse{Deleted: deleted, Version: t.version()})
}

func (s *Server) handlePrefer(w http.ResponseWriter, r *http.Request) error {
	var req client.PreferRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	t, err := s.withRelation(req.DB, req.Relation, func(t *tenant, rel *prefcqa.Relation) error {
		for i, p := range req.Pairs {
			if err := rel.Prefer(p[0], p[1]); err != nil {
				// A later pair can fail after earlier ones applied (a
				// concurrent delete can invalidate an ID between any
				// pre-check and the apply, so the batch is inherently
				// non-atomic). Each applied pair was validated, logged
				// and versioned individually before this failure — the
				// partial batch is exactly what the write-version (and,
				// on a durable database, the log) says it is, so
				// nothing hides behind the cached snapshot and recovery
				// reproduces precisely the applied prefix.
				return fmt.Errorf("pair %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	return writeJSON(w, client.VersionResponse{Version: t.version()})
}

// pinned resolves a tenant and a snapshot satisfying the read
// options. On a follower, a min_version ahead of the replicated
// watermark waits (bounded by ctx) for replication to catch up —
// read-your-writes holds through any replica.
func (s *Server) pinned(ctx context.Context, db string, opts client.ReadOptions) (*prefcqa.Snapshot, uint64, error) {
	t, err := s.tenant(db)
	if err != nil && opts.MinVersion > 0 && s.isFollower() {
		// min_version asserts the database exists; on a follower the
		// 404 may just be a discovery race, so wait it out.
		t, err = s.waitTenant(ctx, db)
	}
	if err != nil {
		return nil, 0, err
	}
	if err := s.waitMin(ctx, t, opts.MinVersion); err != nil {
		return nil, 0, err
	}
	return t.snapshotAtLeast(opts.MinVersion)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) error {
	var req client.QueryRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	fam, err := prefcqa.ParseFamily(req.Family)
	if err != nil {
		return err
	}
	ctx, cancel := s.readCtx(r, req.ReadOptions)
	defer cancel()
	snap, wv, err := s.pinned(ctx, req.DB, req.ReadOptions)
	if err != nil {
		return err
	}
	ans, err := snap.QueryContext(ctx, fam, req.Query)
	if err != nil {
		return err
	}
	return writeJSON(w, client.QueryResponse{Answer: ans.String(), Version: wv, Versions: snap.Versions()})
}

func (s *Server) handleQueryOpen(w http.ResponseWriter, r *http.Request) error {
	var req client.QueryRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	fam, err := prefcqa.ParseFamily(req.Family)
	if err != nil {
		return err
	}
	ctx, cancel := s.readCtx(r, req.ReadOptions)
	defer cancel()
	snap, wv, err := s.pinned(ctx, req.DB, req.ReadOptions)
	if err != nil {
		return err
	}
	bindings, err := snap.QueryOpenContext(ctx, fam, req.Query)
	if err != nil {
		return err
	}
	resp := client.QueryOpenResponse{Bindings: make([]map[string]string, 0, len(bindings)), Version: wv}
	for _, b := range bindings {
		m := make(map[string]string, len(b))
		for name, v := range b {
			m[name] = prefcqa.EncodeValue(v)
		}
		resp.Bindings = append(resp.Bindings, m)
	}
	return writeJSON(w, resp)
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) error {
	var req client.CountRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	fam, err := prefcqa.ParseFamily(req.Family)
	if err != nil {
		return err
	}
	ctx, cancel := s.readCtx(r, req.ReadOptions)
	defer cancel()
	snap, wv, err := s.pinned(ctx, req.DB, req.ReadOptions)
	if err != nil {
		return err
	}
	n, err := snap.CountRepairsContext(ctx, fam, req.Relation)
	if err != nil {
		if _, ok := snap.Instance(req.Relation); !ok {
			return &httpError{code: http.StatusNotFound, err: err}
		}
		return err
	}
	return writeJSON(w, client.CountResponse{Count: n, Version: wv})
}

// handleRepairs streams the preferred repairs as NDJSON: one
// client.RepairsLine per repair, flushed as produced, then a terminal
// Done (or Error) line. Errors after the first line cannot change the
// status code; the terminal line carries them instead.
func (s *Server) handleRepairs(w http.ResponseWriter, r *http.Request) error {
	var req client.RepairsRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	fam, err := prefcqa.ParseFamily(req.Family)
	if err != nil {
		return err
	}
	ctx, cancel := s.readCtx(r, req.ReadOptions)
	defer cancel()
	snap, _, err := s.pinned(ctx, req.DB, req.ReadOptions)
	if err != nil {
		return err
	}
	if _, ok := snap.Instance(req.Relation); !ok {
		return &httpError{code: http.StatusNotFound, err: fmt.Errorf("unknown relation %q in database %q", req.Relation, req.DB)}
	}
	max := req.Max
	if max <= 0 {
		max = s.opts.MaxRepairs
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(line client.RepairsLine) bool {
		if err := enc.Encode(line); err != nil {
			return false // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	count, truncated := 0, false
	err = snap.EnumerateRepairs(ctx, fam, req.Relation, func(inst *prefcqa.Instance) bool {
		// Truncated is only true when a repair beyond the cap exists:
		// an enumeration of exactly max repairs is complete, not cut.
		if count >= max {
			truncated = true
			return false
		}
		wi := prefcqa.EncodeWire(inst)
		if !emit(client.RepairsLine{Repair: &wi}) {
			return false
		}
		count++
		return true
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Add(1)
		}
		emit(client.RepairsLine{Error: err.Error()})
		return nil // status already sent; the error travelled in-band
	}
	emit(client.RepairsLine{Done: true, Count: count, Truncated: truncated})
	return nil
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) error {
	var req client.ExplainRequest
	if err := decode(r, &req); err != nil {
		return err
	}
	ctx, cancel := s.readCtx(r, req.ReadOptions)
	defer cancel()
	snap, wv, err := s.pinned(ctx, req.DB, req.ReadOptions)
	if err != nil {
		return err
	}
	rep, err := snap.ExplainPlanContext(ctx, req.Query)
	if err != nil {
		return err
	}
	return writeJSON(w, client.ExplainResponse{
		Query: rep.Query, Indexed: rep.Indexed, Holds: rep.Holds, Plans: rep.Plans, Version: wv,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) error {
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	resp := client.StatsResponse{DBs: make(map[string]client.DBStats, len(tenants)), Server: s.Stats()}
	for _, t := range tenants {
		hits, misses := t.db.EngineStats()
		qs := t.db.QueryStats()
		ds := client.DBStats{
			WriteVersion: t.version(),
			CacheHits:    hits,
			CacheMisses:  misses,
			OpenDirect:   qs.OpenDirect,
			OpenFallback: qs.OpenFallback,
			WcojSpines:   qs.SpineWcoj,
			YanSpines:    qs.SpineYannakakis,
			GreedySpines: qs.SpineGreedy,
			ClosedPruned: qs.ClosedPruned,
			ClosedFull:   qs.ClosedFull,
			Relations:    map[string]client.RelationStats{},
		}
		if ws, durable := t.db.WALStats(); durable {
			ds.WAL = &client.WALStats{
				Seq:           ws.Seq,
				CheckpointSeq: ws.CheckpointSeq,
				Epoch:         ws.Epoch,
				Segments:      ws.Segments,
				SegmentBytes:  ws.SegmentBytes,
				Fsync:         ws.Policy.String(),
			}
		}
		ds.Replication = s.replicationStats(t)
		// Relation detail comes from the already-cached snapshot only:
		// stats is an observability endpoint and must never trigger a
		// fresh materialization (a monitoring poll against a
		// write-active database would otherwise force the heaviest
		// computation in the server on every scrape). A database with
		// no cached snapshot yet — or whose build currently fails —
		// reports its write-version without detail.
		if p := t.snap.Load(); p != nil {
			snap := p.snap
			for name, ver := range snap.Versions() {
				inst, _ := snap.Instance(name)
				conflicts, _ := snap.Conflicts(name)
				components, _ := snap.Components(name)
				ds.Relations[name] = client.RelationStats{
					Version:    ver,
					Tuples:     inst.Len(),
					Conflicts:  conflicts,
					Components: components,
				}
			}
		}
		resp.DBs[t.name] = ds
	}
	return writeJSON(w, resp)
}
