package server

import (
	"context"
	"net"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"prefcqa"
	"prefcqa/client"
)

// durableOpts returns server options rooting every database under a
// fresh DataDir, fsyncing on each write.
func durableOpts(t *testing.T) Options {
	t.Helper()
	return Options{
		DataDir:   filepath.Join(t.TempDir(), "data"),
		DBOptions: []prefcqa.Option{prefcqa.WithSyncPolicy(prefcqa.SyncAlways)},
	}
}

// TestDurableServerRestart drives writes over the wire, shuts the
// server down (Shutdown must drain the WAL), boots a fresh server on
// the same DataDir, and requires: the databases recover by name, the
// data answers identically, and the min_version read-your-writes
// contract carries the pre-restart acked version across the restart.
func TestDurableServerRestart(t *testing.T) {
	opts := durableOpts(t)
	ctx := context.Background()

	srv, c := boot(t, opts)
	for _, db := range []string{"alpha", "beta"} {
		if err := c.CreateDB(ctx, db); err != nil {
			t.Fatal(err)
		}
		if _, err := c.CreateRelation(ctx, db, "Mgr",
			client.NameAttr("Name"), client.NameAttr("Dept"), client.IntAttr("Salary")); err != nil {
			t.Fatal(err)
		}
	}
	ids, _, err := c.Insert(ctx, "alpha", "Mgr",
		row(t, "Mary", "R&D", 40),
		row(t, "John", "R&D", 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFD(ctx, "alpha", "Mgr", "Dept -> Name, Salary"); err != nil {
		t.Fatal(err)
	}
	wv, err := c.Prefer(ctx, "alpha", "Mgr", [2]int{ids[0], ids[1]})
	if err != nil {
		t.Fatal(err)
	}
	// Per-named-DB WAL directories: beta's log must not see alpha's
	// writes.
	if _, _, err := c.Insert(ctx, "beta", "Mgr", row(t, "Zoe", "IT", 7)); err != nil {
		t.Fatal(err)
	}
	// Shut down via the test cleanup path of a nested boot is not
	// possible; stop this instance explicitly so the next one can own
	// the directory state.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	srv2 := New(opts)
	names, err := srv2.RecoverDBs()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("recovered %v, want [alpha beta]", names)
	}

	// Serve the recovered state over a fresh socket.
	_, c2 := boot2(t, srv2)
	// min_version from before the restart must be honoured, not 412:
	// the recovered write version is at least every acked version.
	q := "EXISTS d, s . Mgr('Mary', d, s)"
	a, err := c2.Query(ctx, "alpha", prefcqa.Global, q, client.MinVersion(wv))
	if err != nil {
		t.Fatal(err)
	}
	if a != prefcqa.True {
		t.Fatalf("Query after restart = %v, want true (preference recovered)", a)
	}
	n, err := c2.CountRepairs(ctx, "alpha", prefcqa.Global, "Mgr")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("G-Rep count after restart = %d, want 1", n)
	}
	if a, err := c2.Query(ctx, "beta", prefcqa.Rep, "EXISTS d, s . Mgr('Zoe', d, s)"); err != nil || a != prefcqa.True {
		t.Fatalf("beta query after restart = %v, %v", a, err)
	}
	// A version the old server never reached is still a 412.
	_, err = c2.Query(ctx, "alpha", prefcqa.Global, q, client.MinVersion(wv+1000))
	mustStatus(t, err, 412)

	// Writes continue on the recovered log.
	if _, wv2, err := c2.Insert(ctx, "alpha", "Mgr", row(t, "Ann", "IT", 3)); err != nil || wv2 <= wv {
		t.Fatalf("post-restart insert: version %d (want > %d), err %v", wv2, wv, err)
	}
}

// boot2 serves an already-constructed server on a loopback socket,
// shutting it down with the test (boot always constructs its own).
func boot2(t *testing.T, srv *Server) (*Server, *client.Client) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, client.New("http://" + l.Addr().String())
}

// TestDBNameValidation: path-traversal database names must be
// rejected before they touch the filesystem.
func TestDBNameValidation(t *testing.T) {
	_, c := boot(t, durableOpts(t))
	ctx := context.Background()
	for _, name := range []string{"..", ".", "a/b", `a\b`} {
		if err := c.CreateDB(ctx, name); err == nil {
			t.Errorf("CreateDB(%q) accepted a path-escaping name", name)
		}
	}
}
