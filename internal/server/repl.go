package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"prefcqa"
	"prefcqa/client"
	"prefcqa/internal/replication"
	"prefcqa/internal/wal"
)

// This file is the server's replication surface: the primary side
// (checkpoint snapshot + long-polled WAL stream + database discovery),
// the follower side (the replication.Manager host plus min_version
// watermark waits) and promotion.

// StartReplication launches the follower role when Options.FollowURL
// is set: a replication.Manager that discovers the primary's databases
// and tails each one's log into a local read-only replica. Call after
// RecoverDBs and before the listener opens; a no-op on a primary.
func (s *Server) StartReplication() error {
	if s.opts.FollowURL == "" {
		return nil
	}
	m := replication.NewManager(s, replication.Options{
		Primary:          s.opts.FollowURL,
		AutoPromote:      s.opts.AutoPromote,
		DiscoverInterval: s.opts.DiscoverInterval,
	})
	s.repl = m
	m.Start()
	return nil
}

// isFollower reports whether writes must be redirected to a primary.
func (s *Server) isFollower() bool {
	return s.repl != nil && !s.repl.Promoted()
}

// Replica implements replication.Host: it returns (creating if
// needed) the local read-only database replicating name, plus the
// tenant lock that guards its relation registry against readers.
func (s *Server) Replica(name string) (*prefcqa.DB, *sync.RWMutex, error) {
	if err := validateDBName(name); err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		t.db.SetReadOnly(true)
		return t.db, &t.mu, nil
	}
	db, err := s.openDB(name)
	if err != nil {
		return nil, nil, err
	}
	db.SetReadOnly(true)
	t := &tenant{name: name, db: db}
	s.tenants[name] = t
	return t.db, &t.mu, nil
}

// Promote turns this follower into a primary: replication stops and
// every replicated database reopens for writes at the exact sequence
// where the stream stopped, under a bumped fencing epoch.
func (s *Server) Promote() (client.PromoteResponse, error) {
	if s.repl == nil {
		return client.PromoteResponse{}, &httpError{
			code: http.StatusConflict,
			err:  errors.New("not a follower (no -follow primary configured)"),
		}
	}
	return s.repl.Promote()
}

// waitTenant parks a follower read addressed to a database that has
// not been discovered from the primary yet: a min_version read
// asserts the database exists, so the 404 would be a lie about a
// discovery race. Bounded by ctx (→ 504).
func (s *Server) waitTenant(ctx context.Context, name string) (*tenant, error) {
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		t, err := s.tenant(name)
		if err == nil {
			return t, nil
		}
		if !s.isFollower() {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.stop:
			return nil, err
		case <-tick.C:
		}
	}
}

// waitMin parks a read whose min_version is ahead of the database
// until the replicated watermark catches up (bounded by the request
// deadline → 504). On a non-follower — or a follower that stopped
// replicating while still behind — an unsatisfiable min falls through
// to snapshotAtLeast's 412.
func (s *Server) waitMin(ctx context.Context, t *tenant, min uint64) error {
	if min <= t.version() {
		return nil
	}
	if s.repl == nil {
		return nil // snapshotAtLeast rejects with 412
	}
	f := s.repl.Follower(t.name)
	if f == nil {
		return nil
	}
	if err := f.WaitVersion(ctx, min); err != nil {
		if errors.Is(err, replication.ErrStopped) {
			return nil // fall through: 412 if the local version still lags
		}
		return err // context deadline → 504
	}
	return nil
}

func (s *Server) handleReplDBs(w http.ResponseWriter, r *http.Request) error {
	s.mu.RLock()
	names := make([]string, 0, len(s.tenants))
	for name := range s.tenants {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return writeJSON(w, client.ReplDBsResponse{DBs: names})
}

// handleReplSnapshot serves the bootstrap image: a checkpoint of the
// whole database at its current write-version, captured without
// touching the primary's own log.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) error {
	t, err := s.tenant(r.URL.Query().Get("db"))
	if err != nil {
		return err
	}
	if _, durable := t.db.WALStats(); !durable {
		return &httpError{
			code: http.StatusConflict,
			err:  fmt.Errorf("database %q is not durable; replication requires a write-ahead log", t.name),
		}
	}
	t.mu.RLock()
	ckpt, err := t.db.CaptureCheckpoint()
	t.mu.RUnlock()
	if err != nil {
		return err
	}
	raw, err := json.Marshal(ckpt)
	if err != nil {
		return err
	}
	return writeJSON(w, client.ReplSnapshotResponse{DB: t.name, Seq: ckpt.Seq, Epoch: ckpt.Epoch, Checkpoint: raw})
}

// handleReplStream serves one long-polled stream window as NDJSON:
// every log record from from_seq onward as it appears, heartbeats
// while idle, then a clean close so the follower reconnects. It is
// registered outside the admission semaphore — a parked follower is
// not load, and a slot held for the whole window would starve real
// requests.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	q := r.URL.Query()
	t, err := s.tenant(q.Get("db"))
	if err != nil {
		s.writeHandlerError(w, err)
		return
	}
	if _, durable := t.db.WALStats(); !durable {
		writeError(w, http.StatusConflict, fmt.Errorf("database %q is not durable; replication requires a write-ahead log", t.name))
		return
	}
	from, _ := strconv.ParseUint(q.Get("from_seq"), 10, 64)
	if from == 0 {
		from = t.version() + 1
	}
	if peer, _ := strconv.ParseUint(q.Get("epoch"), 10, 64); peer > t.db.Epoch() {
		// The follower's lineage is newer than ours: we are the stale
		// primary. Refuse rather than feed it pre-failover history.
		writeError(w, http.StatusConflict, fmt.Errorf("follower epoch %d is ahead of primary epoch %d (fenced)", peer, t.db.Epoch()))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(f client.ReplFrame) bool {
		if err := enc.Encode(f); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	heartbeat := func() bool {
		ws, _ := t.db.WALStats()
		return emit(client.ReplFrame{Heartbeat: true, Seq: ws.Seq, Epoch: ws.Epoch, CheckpointSeq: ws.CheckpointSeq})
	}
	if !heartbeat() { // first write commits the 200 and proves liveness
		return
	}

	window := time.NewTimer(s.opts.StreamWindow)
	defer window.Stop()
	pulse := time.NewTicker(s.opts.HeartbeatInterval)
	defer pulse.Stop()
	for {
		recs, err := t.db.ReplReadFrom(from, 256)
		if err != nil {
			if errors.Is(err, wal.ErrCompacted) {
				ws, _ := t.db.WALStats()
				emit(client.ReplFrame{Error: "compacted", Seq: ws.Seq, Epoch: ws.Epoch, CheckpointSeq: ws.CheckpointSeq})
			} else {
				emit(client.ReplFrame{Error: err.Error()})
			}
			return
		}
		for _, rec := range recs {
			raw, err := json.Marshal(rec)
			if err != nil {
				emit(client.ReplFrame{Error: err.Error()})
				return
			}
			if !emit(client.ReplFrame{Record: raw}) {
				return
			}
			from = rec.Seq + 1
		}
		select {
		case <-window.C:
			heartbeat() // a fresh position right before the clean close
			return
		case <-s.stop:
			return
		case <-r.Context().Done():
			return
		default:
		}
		if len(recs) > 0 {
			continue
		}
		// Idle: long-poll for the next append, waking periodically to
		// heartbeat and to notice the window's end, server shutdown, or
		// the client going away.
		waitCtx, cancel := context.WithTimeout(r.Context(), s.opts.HeartbeatInterval)
		err = t.db.ReplWaitAppend(waitCtx, from-1)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			if r.Context().Err() != nil {
				return // client gone
			}
			emit(client.ReplFrame{Error: err.Error()})
			return
		}
		select {
		case <-pulse.C:
			if !heartbeat() {
				return
			}
		default:
		}
	}
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) error {
	resp, err := s.Promote()
	if err != nil {
		return err
	}
	return writeJSON(w, resp)
}

// replicationStats reports the database's replication role for
// /v1/stats: the follower's live status when one exists, a plain
// primary row otherwise.
func (s *Server) replicationStats(t *tenant) *client.ReplicationStats {
	if s.repl != nil {
		if f := s.repl.Follower(t.name); f != nil {
			return f.Stats()
		}
	}
	return &client.ReplicationStats{
		Role:          "primary",
		AppliedSeq:    t.version(),
		Epoch:         t.db.Epoch(),
		Status:        "serving",
		LastContactMS: -1,
	}
}
