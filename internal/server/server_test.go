package server

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"prefcqa"
	"prefcqa/client"
)

// boot starts a server on a real loopback socket and returns a client
// for it. The server is shut down with the test.
func boot(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	srv := New(opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, client.New("http://" + l.Addr().String())
}

// mustStatus asserts err is an APIError with the given status.
func mustStatus(t *testing.T, err error, want int) {
	t.Helper()
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want APIError with status %d", err, want)
	}
	if ae.Status != want {
		t.Fatalf("status = %d (%s), want %d", ae.Status, ae.Message, want)
	}
}

func row(t *testing.T, vals ...any) prefcqa.Tuple {
	t.Helper()
	tup, err := prefcqa.MakeTuple(vals...)
	if err != nil {
		t.Fatal(err)
	}
	return tup
}

// TestEndToEnd drives every endpoint once through a real socket: the
// paper's running example served over the wire.
func TestEndToEnd(t *testing.T) {
	_, c := boot(t, Options{})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDB(ctx, "mgmt"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation(ctx, "mgmt", "Mgr",
		client.NameAttr("Name"), client.NameAttr("Dept"), client.IntAttr("Salary")); err != nil {
		t.Fatal(err)
	}
	ids, _, err := c.Insert(ctx, "mgmt", "Mgr",
		row(t, "Mary", "R&D", 40),
		row(t, "John", "R&D", 10),
		row(t, "Mary", "IT", 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	if _, err := c.AddFD(ctx, "mgmt", "Mgr", "Dept -> Name, Salary"); err != nil {
		t.Fatal(err)
	}
	// Unresolved conflict between Mary/R&D and John/R&D: undetermined.
	q := "EXISTS d, s . Mgr('Mary', d, s) AND s > 30"
	if a, err := c.Query(ctx, "mgmt", prefcqa.Global, q); err != nil || a != prefcqa.Undetermined {
		t.Fatalf("pre-preference answer = %v, %v", a, err)
	}
	wv, err := c.Prefer(ctx, "mgmt", "Mgr", [2]int{ids[0], ids[1]})
	if err != nil {
		t.Fatal(err)
	}
	if a, err := c.Query(ctx, "mgmt", prefcqa.Global, q, client.MinVersion(wv)); err != nil || a != prefcqa.True {
		t.Fatalf("post-preference answer = %v, %v", a, err)
	}
	// Open query: which departments certainly employ Mary?
	bindings, err := c.QueryOpen(ctx, "mgmt", prefcqa.Global, "EXISTS s . Mgr('Mary', d, s)")
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 { // d = 'R&D' (preferred) and d = 'IT' (clean)
		t.Fatalf("bindings = %v", bindings)
	}
	// Counts per family.
	if n, err := c.CountRepairs(ctx, "mgmt", prefcqa.Rep, "Mgr"); err != nil || n != 2 {
		t.Fatalf("Rep count = %d, %v", n, err)
	}
	if n, err := c.CountRepairs(ctx, "mgmt", prefcqa.Global, "Mgr"); err != nil || n != 1 {
		t.Fatalf("Global count = %d, %v", n, err)
	}
	// Streamed enumeration.
	var repairs []*prefcqa.Instance
	truncated, err := c.Repairs(ctx, "mgmt", prefcqa.Rep, "Mgr", 0, func(inst *prefcqa.Instance) bool {
		repairs = append(repairs, inst)
		return true
	})
	if err != nil || truncated || len(repairs) != 2 {
		t.Fatalf("repairs = %d instances, truncated %v, err %v", len(repairs), truncated, err)
	}
	for _, inst := range repairs {
		if inst.Len() != 2 {
			t.Fatalf("repair %s has %d tuples, want 2", inst, inst.Len())
		}
	}
	// Truncation at max — and no false truncation when the count
	// exactly meets the cap.
	var n int
	truncated, err = c.Repairs(ctx, "mgmt", prefcqa.Rep, "Mgr", 1, func(*prefcqa.Instance) bool { n++; return true })
	if err != nil || !truncated || n != 1 {
		t.Fatalf("max=1 repairs: n=%d truncated=%v err=%v", n, truncated, err)
	}
	n = 0
	truncated, err = c.Repairs(ctx, "mgmt", prefcqa.Rep, "Mgr", 2, func(*prefcqa.Instance) bool { n++; return true })
	if err != nil || truncated || n != 2 {
		t.Fatalf("max=2 repairs of exactly 2: n=%d truncated=%v err=%v", n, truncated, err)
	}
	// Plan explanation.
	exp, err := c.Explain(ctx, "mgmt", q)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Indexed || len(exp.Plans) == 0 {
		t.Fatalf("explain = %+v", exp)
	}
	// Delete John: the conflict disappears, every family agrees.
	if deleted, _, err := c.Delete(ctx, "mgmt", "Mgr", ids[1]); err != nil || deleted != 1 {
		t.Fatalf("deleted = %d, %v", deleted, err)
	}
	if n, err := c.CountRepairs(ctx, "mgmt", prefcqa.Rep, "Mgr"); err != nil || n != 1 {
		t.Fatalf("post-delete Rep count = %d, %v", n, err)
	}
	// Stats.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ds, ok := st.DBs["mgmt"]
	if !ok || ds.WriteVersion == 0 {
		t.Fatalf("stats = %+v", st)
	}
	rs, ok := ds.Relations["Mgr"]
	if !ok || rs.Tuples != 2 || rs.Conflicts != 0 {
		t.Fatalf("relation stats = %+v", rs)
	}
	if st.Server.Served == 0 || st.Server.MaxInflight != 64 {
		t.Fatalf("server stats = %+v", st.Server)
	}
}

// TestErrorMapping: protocol errors carry meaningful status codes.
func TestErrorMapping(t *testing.T) {
	_, c := boot(t, Options{})
	ctx := context.Background()
	_, err := c.Query(ctx, "nosuch", prefcqa.Rep, "R(1)")
	mustStatus(t, err, http.StatusNotFound)
	if err := c.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	mustStatus(t, c.CreateDB(ctx, "d"), http.StatusConflict)
	_, _, err = c.Insert(ctx, "d", "nosuch", row(t, 1))
	mustStatus(t, err, http.StatusNotFound)
	if _, err := c.CreateRelation(ctx, "d", "R", client.IntAttr("A"), client.IntAttr("B")); err != nil {
		t.Fatal(err)
	}
	_, err = c.CountRepairs(ctx, "d", prefcqa.Rep, "nosuch")
	mustStatus(t, err, http.StatusNotFound)
	// Bad family and bad query are 400s.
	var out client.QueryResponse
	err = clientDo(c, ctx, client.PathQuery, client.QueryRequest{DB: "d", Family: "bogus", Query: "R(1, 2)"}, &out)
	mustStatus(t, err, http.StatusBadRequest)
	_, err = c.Query(ctx, "d", prefcqa.Rep, "R(unclosed")
	mustStatus(t, err, http.StatusBadRequest)
	// Contradictory preferences surface as 409 on the next read.
	ids, _, err := c.Insert(ctx, "d", "R", row(t, 1, 10), row(t, 1, 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddFD(ctx, "d", "R", "A -> B"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Prefer(ctx, "d", "R", [2]int{ids[0], ids[1]}, [2]int{ids[1], ids[0]}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(ctx, "d", prefcqa.Global, "R(1, 10)")
	mustStatus(t, err, http.StatusConflict)
	// Unknown tuple IDs in a preference are a 400.
	_, err = c.Prefer(ctx, "d", "R", [2]int{404, 405})
	mustStatus(t, err, http.StatusBadRequest)
}

// TestInsertBatchAtomicity: a batch with a malformed row inserts
// nothing — no partial, unversioned mutation that would later
// surface as a phantom.
func TestInsertBatchAtomicity(t *testing.T) {
	_, c := boot(t, Options{})
	ctx := context.Background()
	if err := c.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation(ctx, "d", "R", client.IntAttr("A"), client.IntAttr("B")); err != nil {
		t.Fatal(err)
	}
	err := c.Do(ctx, client.PathInsert, client.InsertRequest{
		DB: "d", Relation: "R",
		Rows: [][]string{{"1", "2"}, {"3", "'notanint'"}},
	}, nil)
	mustStatus(t, err, http.StatusBadRequest)
	// The valid first row must not have been applied.
	if a, err := c.Query(ctx, "d", prefcqa.Rep, "R(1, 2)"); err != nil || a != prefcqa.False {
		t.Fatalf("phantom row visible: R(1, 2) = %v, %v", a, err)
	}
	// A subsequent write must not resurrect it either.
	if _, _, err := c.Insert(ctx, "d", "R", row(t, 7, 8)); err != nil {
		t.Fatal(err)
	}
	if a, err := c.Query(ctx, "d", prefcqa.Rep, "R(1, 2)"); err != nil || a != prefcqa.False {
		t.Fatalf("phantom row appeared after a later write: R(1, 2) = %v, %v", a, err)
	}
}

// clientDo sends a raw request through the typed client's transport —
// for protocol shapes the typed methods refuse to build.
func clientDo(c *client.Client, ctx context.Context, path string, in, out any) error {
	return c.Do(ctx, path, in, out)
}

// TestDeadline: a server whose default deadline is unmeetably small
// answers reads with 504 (and counts the timeout), while writes are
// unaffected.
func TestDeadline(t *testing.T) {
	srv, c := boot(t, Options{DefaultTimeout: time.Nanosecond})
	ctx := context.Background()
	if err := c.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation(ctx, "d", "R", client.IntAttr("A")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Insert(ctx, "d", "R", row(t, 1)); err != nil {
		t.Fatal(err) // writes take no evaluation deadline
	}
	_, err := c.Query(ctx, "d", prefcqa.Rep, "R(1)")
	mustStatus(t, err, http.StatusGatewayTimeout)
	if got := srv.Stats().Timeouts; got == 0 {
		t.Fatalf("timeouts = %d, want > 0", got)
	}
	// Explain honors the same deadline machinery as the other reads.
	_, err = c.Explain(ctx, "d", "R(1)")
	mustStatus(t, err, http.StatusGatewayTimeout)
	// A client-supplied budget overrides the tiny default.
	if a, err := c.Query(ctx, "d", prefcqa.Rep, "R(1)", client.Timeout(10*time.Second)); err != nil || a != prefcqa.True {
		t.Fatalf("budgeted query = %v, %v", a, err)
	}
}

// TestAdmissionControl: with every slot taken, requests wait out the
// default timeout and are rejected with 503.
func TestAdmissionControl(t *testing.T) {
	srv, c := boot(t, Options{MaxInflight: 2, DefaultTimeout: 30 * time.Millisecond})
	ctx := context.Background()
	if err := c.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	// Occupy both slots from inside (white-box: the handlers would
	// hold them while evaluating).
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	err := c.CreateDB(ctx, "d2")
	mustStatus(t, err, http.StatusServiceUnavailable)
	if got := srv.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// Freeing a slot lets the next request through.
	<-srv.sem
	if err := c.CreateDB(ctx, "d2"); err != nil {
		t.Fatal(err)
	}
	<-srv.sem
}

// TestReadYourWrites: a write's published version carried as
// min_version makes any later read observe it — and the default read
// already does.
func TestReadYourWrites(t *testing.T) {
	_, c := boot(t, Options{})
	ctx := context.Background()
	if err := c.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation(ctx, "d", "R", client.IntAttr("A")); err != nil {
		t.Fatal(err)
	}
	var last uint64
	for i := 0; i < 20; i++ {
		_, wv, err := c.Insert(ctx, "d", "R", row(t, i))
		if err != nil {
			t.Fatal(err)
		}
		last = wv
		a, err := c.Query(ctx, "d", prefcqa.Rep, "EXISTS x . R(x) AND x > "+itoa(i-1), client.MinVersion(wv))
		if err != nil || a != prefcqa.True {
			t.Fatalf("i=%d: read-your-write = %v, %v", i, a, err)
		}
	}
	// A min_version this database never issued (e.g. from another
	// database) is rejected, not silently served stale.
	_, err := c.Query(ctx, "d", prefcqa.Rep, "R(0)", client.MinVersion(last+1000))
	mustStatus(t, err, http.StatusPreconditionFailed)
}

func jsonDecode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

// TestSnapshotCacheReuse: reads between writes share one snapshot
// (the cached pin), and a write invalidates it.
func TestSnapshotCacheReuse(t *testing.T) {
	srv, c := boot(t, Options{})
	ctx := context.Background()
	if err := c.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation(ctx, "d", "R", client.IntAttr("A")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Insert(ctx, "d", "R", row(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CountRepairs(ctx, "d", prefcqa.Rep, "R"); err != nil {
		t.Fatal(err)
	}
	srv.mu.RLock()
	tn := srv.tenants["d"]
	srv.mu.RUnlock()
	p1 := tn.snap.Load()
	if p1 == nil {
		t.Fatal("no cached snapshot after a read")
	}
	if _, err := c.CountRepairs(ctx, "d", prefcqa.Rep, "R"); err != nil {
		t.Fatal(err)
	}
	if p2 := tn.snap.Load(); p2 != p1 {
		t.Fatal("second read did not reuse the cached snapshot")
	}
	if _, _, err := c.Insert(ctx, "d", "R", row(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CountRepairs(ctx, "d", prefcqa.Rep, "R"); err != nil {
		t.Fatal(err)
	}
	if p3 := tn.snap.Load(); p3 == p1 {
		t.Fatal("read after a write served the stale snapshot")
	}
}

// TestWireInteroperability: the protocol is plain HTTP/JSON — a raw
// request with no typed client gets a well-formed answer (the curl
// path of the README).
func TestWireInteroperability(t *testing.T) {
	_, c := boot(t, Options{})
	ctx := context.Background()
	if err := c.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelation(ctx, "d", "R", client.NameAttr("N"), client.IntAttr("A")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Insert(ctx, "d", "R", row(t, "it's", 42)); err != nil {
		t.Fatal(err)
	}
	base := c.BaseURL()
	resp, err := http.Post(base+client.PathQuery, "application/json",
		strings.NewReader(`{"db":"d","family":"rep","query":"R('it''s', 42)"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Answer string `json:"answer"`
	}
	if err := jsonDecode(resp, &out); err != nil {
		t.Fatal(err)
	}
	if out.Answer != "true" {
		t.Fatalf("answer = %q", out.Answer)
	}
}
