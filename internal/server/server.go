// Package server implements prefserve: a concurrent HTTP/JSON serving
// layer over the prefcqa engine. It hosts a registry of named
// databases (tenants), answers preferred-repair reads from pinned
// snapshots so they run lock-free and concurrently with writes,
// batches writes through the facade's incremental delta path, and
// protects itself with admission control (a bounded in-flight
// semaphore) and per-request deadlines plumbed down into the
// evaluation engine via context cancellation.
//
// The wire protocol — paths, request and response shapes — is defined
// in prefcqa/client, which doubles as the Go client.
//
// # Consistency model
//
// Every read pins one prefcqa.Snapshot: a point-in-time cut across
// the database's relations, immune to concurrent mutation. Writes
// return a monotone per-database write-version; a read carrying
// min_version is served from a snapshot at least that new. Reads
// default to "at least as new as the last completed write", so a
// client that writes then reads on one connection — or hands its
// write version to another client — always observes its write
// (read-your-writes). Snapshots are cached and reused between writes:
// a read burst against a quiet database takes one snapshot, not one
// per request.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"prefcqa"
	"prefcqa/client"
	"prefcqa/internal/replication"
)

// Options configure a Server.
type Options struct {
	// MaxInflight bounds the number of requests admitted at once;
	// excess requests wait for a slot until their deadline and are
	// rejected with 503 when none frees up. Zero selects 64.
	MaxInflight int
	// DefaultTimeout is the per-request evaluation deadline applied
	// when the request does not carry timeout_ms. Zero selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout_ms. Zero selects 5m.
	MaxTimeout time.Duration
	// MaxRepairs caps a repair enumeration stream when the request
	// does not set max. Zero selects 1024.
	MaxRepairs int
	// MaxBodyBytes bounds request bodies. Zero selects 32 MiB.
	MaxBodyBytes int64
	// DataDir, when set, makes every database durable: each named
	// database keeps a write-ahead log under DataDir/<name>, writes are
	// acknowledged under the configured sync policy (see
	// prefcqa.WithSyncPolicy in DBOptions), and RecoverDBs reopens
	// every database found there at boot. Empty means in-memory.
	DataDir string
	// DBOptions are applied to every database the server creates.
	DBOptions []prefcqa.Option
	// FollowURL, when set, runs this server as a replication follower
	// of the primary at that base URL: its databases are discovered
	// and replicated here read-only, reads are served snapshot-
	// isolated at the replicated watermark, and writes are refused
	// with 421 naming the primary. See StartReplication and Promote.
	FollowURL string
	// AutoPromote, when positive on a follower, promotes this server
	// after that long without any contact with the primary. Zero means
	// promotion is manual only (POST /v1/promote).
	AutoPromote time.Duration
	// StreamWindow bounds one long-polled replication stream response;
	// the follower reconnects after each window. Zero selects 25s.
	StreamWindow time.Duration
	// HeartbeatInterval is how often an idle replication stream emits
	// a heartbeat frame. Zero selects 1s.
	HeartbeatInterval time.Duration
	// DiscoverInterval is how often a follower re-polls the primary's
	// database list. Zero selects the replication default (2s).
	DiscoverInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	if o.MaxRepairs <= 0 {
		o.MaxRepairs = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.StreamWindow <= 0 {
		o.StreamWindow = 25 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	o.FollowURL = strings.TrimRight(o.FollowURL, "/")
	return o
}

// Server is the prefserve HTTP server. Create with New, expose with
// Serve (or use Handler under an existing http.Server), stop with
// Shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux
	http *http.Server

	mu      sync.RWMutex // guards tenants
	tenants map[string]*tenant

	sem      chan struct{} // admission-control slots
	served   atomic.Uint64
	rejected atomic.Uint64
	timeouts atomic.Uint64

	repl     *replication.Manager // follower role; nil on a primary
	stop     chan struct{}        // closed on Shutdown; ends stream windows
	stopOnce sync.Once
}

// tenant is one named database plus its serving state.
type tenant struct {
	name string
	// mu serializes registry-level schema changes (relation creation)
	// against every other use of db: prefcqa.DB does not synchronize
	// CreateRelation with concurrent queries. Reads and tuple-level
	// writes take the read side (the facade synchronizes those
	// itself), CreateRelation the write side.
	mu sync.RWMutex
	db *prefcqa.DB
	// snap caches the latest pinned snapshot with the write-version
	// it is known to cover, so read bursts between writes share one
	// snapshot instead of re-materializing per request.
	snap atomic.Pointer[pinnedSnap]
}

// version is the database's write-version: the facade bumps it once
// per applied mutation record, handlers return it to the client, and
// snapshotAtLeast accepts it back as min_version. On a durable
// database it is the write-ahead log sequence, so it survives restart
// and a version handed out before a crash remains satisfiable after
// recovery.
func (t *tenant) version() uint64 { return t.db.WriteVersion() }

type pinnedSnap struct {
	wv   uint64
	snap *prefcqa.Snapshot
}

// New returns a Server with an empty database registry.
func New(opts Options) *Server {
	s := &Server{
		opts:    opts.withDefaults(),
		tenants: make(map[string]*tenant),
		stop:    make(chan struct{}),
	}
	s.sem = make(chan struct{}, s.opts.MaxInflight)
	s.mux = http.NewServeMux()
	s.routes()
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the server's root handler, for embedding in an
// existing http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(l net.Listener) error { return s.http.Serve(l) }

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully stops the server: no new connections, in-flight
// requests drain until ctx expires, then every durable database is
// closed — flushing and fsyncing its write-ahead log — so a SIGTERM
// drain loses nothing even under the "group" and "never" sync
// policies.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stop) }) // end replication stream windows
	if s.repl != nil {
		s.repl.Stop()
	}
	err := s.http.Shutdown(ctx)
	s.mu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.RUnlock()
	for _, t := range tenants {
		if cerr := t.db.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// CreateDB registers a named database programmatically (the HTTP
// equivalent is POST /v1/db) — used by the daemon to preload data.
// With DataDir set the database is durable, rooted at DataDir/<name>.
func (s *Server) CreateDB(name string) (*prefcqa.DB, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty database name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[name]; dup {
		return nil, fmt.Errorf("server: database %q already exists", name)
	}
	db, err := s.openDB(name)
	if err != nil {
		return nil, err
	}
	t := &tenant{name: name, db: db}
	s.tenants[name] = t
	return t.db, nil
}

// openDB builds a tenant's database: durable under DataDir/<name>
// when a data directory is configured, in-memory otherwise.
func (s *Server) openDB(name string) (*prefcqa.DB, error) {
	if s.opts.DataDir == "" {
		return prefcqa.New(s.opts.DBOptions...), nil
	}
	if err := validateDBName(name); err != nil {
		return nil, err
	}
	return prefcqa.Open(filepath.Join(s.opts.DataDir, name), s.opts.DBOptions...)
}

// validateDBName rejects names that cannot double as a directory
// name under DataDir.
func validateDBName(name string) error {
	if name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("server: database name %q is not usable as a directory name", name)
	}
	return nil
}

// RecoverDBs reopens every database found under DataDir — loading
// each one's newest checkpoint and replaying its log tail — and
// registers them for serving, returning the recovered names. Called
// at boot, before the listener opens; a no-op without a DataDir. A
// database that fails recovery aborts the boot: serving a silently
// emptier registry would violate every version its clients hold.
func (s *Server) RecoverDBs() ([]string, error) {
	if s.opts.DataDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(s.opts.DataDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if _, dup := s.tenants[name]; dup {
			continue
		}
		db, err := prefcqa.Open(filepath.Join(s.opts.DataDir, name), s.opts.DBOptions...)
		if err != nil {
			return nil, fmt.Errorf("server: recovering database %q: %w", name, err)
		}
		if s.opts.FollowURL != "" {
			// A restarted follower resumes read-only; replication
			// re-attaches at the recovered watermark.
			db.SetReadOnly(true)
		}
		s.tenants[name] = &tenant{name: name, db: db}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// tenant resolves a named database.
func (s *Server) tenant(name string) (*tenant, error) {
	s.mu.RLock()
	t, ok := s.tenants[name]
	s.mu.RUnlock()
	if !ok {
		return nil, &httpError{code: http.StatusNotFound, err: fmt.Errorf("unknown database %q", name)}
	}
	return t, nil
}

// snapshotAtLeast returns a snapshot covering at least write-version
// min (and never older than the last completed write), plus the
// version it is labelled with. The cached snapshot is reused when new
// enough; otherwise a fresh cut is taken and published. The label is
// read before the cut, so it is a lower bound on what the snapshot
// contains.
//
// A min above the database's current write-version cannot be
// honored and is rejected (412): every version this database ever
// returned is covered by now (writes complete before their version
// is handed out), so an unsatisfiable min is a client mixing up
// versions across databases or servers — serving older data with a
// 200 would silently void the read-your-writes contract.
func (t *tenant) snapshotAtLeast(min uint64) (*prefcqa.Snapshot, uint64, error) {
	cur := t.version()
	if min > cur {
		return nil, 0, &httpError{
			code: http.StatusPreconditionFailed,
			err:  fmt.Errorf("min_version %d is beyond database %q's write-version %d (version from another database?)", min, t.name, cur),
		}
	}
	min = cur
	if p := t.snap.Load(); p != nil && p.wv >= min {
		return p.snap, p.wv, nil
	}
	wv := t.version()
	t.mu.RLock()
	snap, err := t.db.Snapshot()
	t.mu.RUnlock()
	if err != nil {
		// A failing build (e.g. contradictory preferences) is the
		// client's doing: surface as a conflict, not a server error.
		return nil, 0, &httpError{code: http.StatusConflict, err: err}
	}
	p := &pinnedSnap{wv: wv, snap: snap}
	for {
		old := t.snap.Load()
		if old != nil && old.wv >= p.wv {
			return snap, wv, nil // someone published a newer cut
		}
		if t.snap.CompareAndSwap(old, p) {
			return snap, wv, nil
		}
	}
}

// httpError carries a status code with an error.
type httpError struct {
	code int
	err  error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

// handlerFunc is an endpoint body: it returns an error to be mapped
// to a status code (httpError for a specific one, 400 otherwise).
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// endpoint wraps a handler with admission control and accounting.
// Admission: the request must win a semaphore slot before any work;
// when the server is saturated it waits until the client gives up or
// the request deadline passes, then is rejected with 503.
func (s *Server) endpoint(method string, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			// Saturated: wait for a slot, bounded by the default
			// timeout so a stuffed queue sheds load instead of piling
			// up goroutines forever.
			waitCtx, cancel := context.WithTimeout(r.Context(), s.opts.DefaultTimeout)
			select {
			case s.sem <- struct{}{}:
				cancel()
			case <-waitCtx.Done():
				cancel()
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, errors.New("server saturated (admission control)"))
				return
			}
		}
		defer func() { <-s.sem }()
		defer s.served.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
		if err := h(w, r); err != nil {
			s.writeHandlerError(w, err)
		}
	})
}

// readCtx derives the evaluation context of a read request from its
// timeout options: the requested timeout clamped to MaxTimeout, on
// top of the client connection's own cancellation.
func (s *Server) readCtx(r *http.Request, opts client.ReadOptions) (context.Context, context.CancelFunc) {
	d := s.opts.DefaultTimeout
	if opts.TimeoutMS > 0 {
		d = time.Duration(opts.TimeoutMS) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// writeHandlerError maps a handler error to a status code.
func (s *Server) writeHandlerError(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		writeError(w, he.code, he.err)
	case errors.Is(err, prefcqa.ErrReadOnly):
		// A write reached a follower. 421 plus the primary's URL lets a
		// follower-aware client re-route instead of failing.
		primary := ""
		if s.repl != nil {
			primary = s.repl.PrimaryURL()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusMisdirectedRequest)
		json.NewEncoder(w).Encode(client.ErrorResponse{ //nolint:errcheck // best effort on a failing request
			Error:   "read-only replica: writes go to the primary",
			Primary: primary,
		})
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, errors.New("deadline exceeded"))
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(client.ErrorResponse{Error: err.Error()}) //nolint:errcheck // best effort on a failing request
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body into dst.
func decode(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// Stats samples the server's counters (also served at /v1/stats).
func (s *Server) Stats() client.ServerStats {
	return client.ServerStats{
		Inflight:    len(s.sem),
		MaxInflight: s.opts.MaxInflight,
		Served:      s.served.Load(),
		Rejected:    s.rejected.Load(),
		Timeouts:    s.timeouts.Load(),
	}
}
