package server

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"prefcqa"
	"prefcqa/client"
)

// TestReplCrashPrimaryChild is not a test: it is the primary process
// SIGKILLed by TestPromotionAfterSIGKILL, re-executing this test
// binary. It serves a durable primary on a loopback socket and
// publishes its URL through a file; it never exits cleanly — the
// parent kills it.
func TestReplCrashPrimaryChild(t *testing.T) {
	dir := os.Getenv("PREFCQA_REPL_CRASH_DIR")
	if dir == "" {
		t.Skip("replication crash-test helper process; run via TestPromotionAfterSIGKILL")
	}
	srv := New(Options{
		DataDir:   dir,
		DBOptions: []prefcqa.Option{prefcqa.WithSyncPolicy(prefcqa.SyncAlways)},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the bound address atomically: write aside, then rename,
	// so the parent never reads a half-written URL.
	urlPath := os.Getenv("PREFCQA_REPL_CRASH_URL")
	tmp := urlPath + ".tmp"
	if err := os.WriteFile(tmp, []byte("http://"+l.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, urlPath); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	// The deadline only matters if the parent dies without killing us.
	select {
	case err := <-done:
		t.Fatal(err)
	case <-time.After(120 * time.Second):
		t.Fatal("parent never killed this primary")
	}
}

// TestPromotionAfterSIGKILL is the failover acceptance test: a primary
// process is SIGKILLed — no cleanup handler runs — after a follower
// has confirmed application of every acknowledged write; the follower
// is promoted and must (a) have lost none of those writes, (b) resume
// accepting writes at exactly the next sequence of the replicated
// history under a bumped epoch, and (c) answer reads over both old and
// new writes.
func TestPromotionAfterSIGKILL(t *testing.T) {
	if os.Getenv("PREFCQA_REPL_CRASH_DIR") != "" {
		t.Skip("already inside the helper process")
	}
	base := t.TempDir()
	urlPath := filepath.Join(base, "primary.url")
	cmd := exec.Command(os.Args[0], "-test.run=^TestReplCrashPrimaryChild$")
	cmd.Env = append(os.Environ(),
		"PREFCQA_REPL_CRASH_DIR="+filepath.Join(base, "primary"),
		"PREFCQA_REPL_CRASH_URL="+urlPath)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill() //nolint:errcheck // best-effort teardown
			cmd.Wait()         //nolint:errcheck // best-effort teardown
		}
	}()

	var primaryURL string
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(urlPath); err == nil {
			primaryURL = string(data)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("primary child never published its URL")
		}
		time.Sleep(5 * time.Millisecond)
	}
	pc := client.New(primaryURL)
	ctx := context.Background()
	if err := pc.CreateDB(ctx, "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.CreateRelation(ctx, "d", "R", client.IntAttr("K"), client.IntAttr("V")); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.AddFD(ctx, "d", "R", "K -> V"); err != nil {
		t.Fatal(err)
	}

	// Acknowledged writes: each version here came back in an HTTP
	// response, i.e. the primary fsynced it (SyncAlways) before we saw
	// it. Keys 0..n-1 each get a conflicting pair plus a preference.
	const n = 25
	var lastV uint64
	for k := 0; k < n; k++ {
		ids, _, err := pc.Insert(ctx, "d", "R", row(t, k, 0))
		if err != nil {
			t.Fatal(err)
		}
		ids2, _, err := pc.Insert(ctx, "d", "R", row(t, k, 1))
		if err != nil {
			t.Fatal(err)
		}
		lastV, err = pc.Prefer(ctx, "d", "R", [2]int{ids[0], ids2[0]})
		if err != nil {
			t.Fatal(err)
		}
	}

	// In-process follower; wait until it has applied every
	// acknowledged write, so the failover below can demand zero loss.
	fopts := replOptions(t)
	fopts.FollowURL = primaryURL
	fsrv, fc := boot(t, fopts)
	if err := fsrv.StartReplication(); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.CountRepairs(ctx, "d", prefcqa.Global, "R", client.MinVersion(lastV)); err != nil {
		t.Fatalf("follower never caught up to acked version %d: %v", lastV, err)
	}

	// SIGKILL: the primary gets no chance to flush, close or say
	// goodbye.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // the kill is the expected exit
	killed = true

	resp, err := fc.Promote(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 2 {
		t.Fatalf("promoted epoch = %d, want 2", resp.Epoch)
	}

	// (a) Zero acknowledged-write loss: every preference answers.
	for k := 0; k < n; k++ {
		q := fmt.Sprintf("R(%d, 0)", k)
		ans, err := fc.Query(ctx, "d", prefcqa.Global, q)
		if err != nil {
			t.Fatalf("acked write %d lost: %v", k, err)
		}
		if ans != prefcqa.True {
			t.Fatalf("acked preference for key %d lost: %s = %v, want true", k, q, ans)
		}
	}
	// (b) Writes resume at exactly the next sequence.
	_, wv, err := fc.Insert(ctx, "d", "R", row(t, n, 0))
	if err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if wv != lastV+1 {
		t.Fatalf("first post-failover version = %d, want %d (no gap, no overlap)", wv, lastV+1)
	}
	// (c) Old and new state serve together.
	if nRep, err := fc.CountRepairs(ctx, "d", prefcqa.Global, "R", client.MinVersion(wv)); err != nil || nRep != 1 {
		t.Fatalf("CountRepairs after failover = %d, %v; want 1", nRep, err)
	}
	st, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repl := st.DBs["d"].Replication; repl == nil || repl.Role != "primary" || repl.Epoch != 2 {
		t.Fatalf("failed-over stats = %+v, want primary at epoch 2", repl)
	}
}
