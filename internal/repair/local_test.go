package repair

import (
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// chainGraph builds a conflict path of n tuples (Chain workload shape,
// Fibonacci-many maximal independent sets).
func chainGraph(n int) *conflict.Graph {
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert((i+1)/2, i%2, i/2+1000, (i+1)%2)
	}
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "C -> D"))
}

// TestEnumerateLocalMatchesBruteForce checks the local enumeration
// against an independent ground truth: all maximal independent sets
// found by exhaustive subset enumeration. (EnumerateComponent is a
// wrapper over EnumerateLocal, so comparing the two would be
// circular.)
func TestEnumerateLocalMatchesBruteForce(t *testing.T) {
	g := chainGraph(9)
	comp := g.Components()[0]
	l := g.Project(comp)
	n := g.Len()

	got := map[string]bool{}
	count := 0
	err := EnumerateLocal(l, func(r bitset.Words) bool {
		s := bitset.New(n)
		r.Range(func(i int) bool { s.Add(l.Global(i)); return true })
		if !g.IsMaximalIndependent(s) {
			t.Fatalf("yielded set %v is not a maximal independent set", s)
		}
		got[s.Key()] = true
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != len(got) {
		t.Fatalf("enumeration yielded %d sets, only %d distinct", count, len(got))
	}
	// Ground truth: every subset of the component, kept iff maximal
	// independent.
	want := 0
	for mask := 0; mask < 1<<uint(len(comp)); mask++ {
		s := bitset.New(n)
		for i, v := range comp {
			if mask&(1<<uint(i)) != 0 {
				s.Add(v)
			}
		}
		if g.IsMaximalIndependent(s) {
			want++
			if !got[s.Key()] {
				t.Fatalf("maximal independent set %v not enumerated", s)
			}
		}
	}
	if count != want {
		t.Fatalf("enumerated %d sets, brute force finds %d", count, want)
	}
}

// TestEnumerationAllocationFree asserts the hot path promises: after
// the one-time arena setup, counting a component's maximal independent
// sets costs a small constant number of allocations no matter how many
// sets it enumerates (a 30-chain has ~1.3k of them, each reached
// through many recursion nodes).
func TestEnumerationAllocationFree(t *testing.T) {
	g := chainGraph(30)
	comp := g.Components()[0]
	g.Project(comp) // warm the component index memo
	allocs := testing.AllocsPerRun(10, func() {
		if n := CountComponent(g, comp); n < 1000 {
			t.Fatalf("count = %d", n)
		}
	})
	// Projection + arena + a few closures: setup only, nothing per
	// enumeration node.
	if allocs > 25 {
		t.Fatalf("CountComponent allocates %v objects per run; want setup-only (<= 25)", allocs)
	}
}

func TestEnumerateLocalEmpty(t *testing.T) {
	g := chainGraph(1) // single vertex, no edges
	l := g.Project(g.Components()[0])
	n := 0
	EnumerateLocal(l, func(r bitset.Words) bool { //nolint:errcheck // never stops
		if r.Len() != 1 || !r.Has(0) {
			t.Fatalf("singleton component should yield {0}, got %v", r)
		}
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("yielded %d sets, want 1", n)
	}
}
