package repair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

func graphFromSeed(seed int64, n int) *conflict.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(2))
	}
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "B -> C"))
}

// Property: every enumerated repair is a maximal independent set, the
// enumeration is duplicate-free, and Count agrees with it.
func TestQuickEnumerationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := graphFromSeed(seed, 8)
		seen := map[string]bool{}
		ok := true
		Enumerate(g, func(r *bitset.Set) bool { //nolint:errcheck
			if !IsRepair(g, r) || seen[r.Key()] {
				ok = false
				return false
			}
			seen[r.Key()] = true
			return true
		})
		if !ok {
			return false
		}
		c, err := Count(g)
		return err == nil && c == int64(len(seen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every tuple of the instance appears in at least one
// repair (no tuple is globally excluded under FD conflicts), and a
// tuple is in EVERY repair iff it is conflict-free.
func TestQuickTupleMembership(t *testing.T) {
	f := func(seed int64) bool {
		g := graphFromSeed(seed, 8)
		inAll := bitset.Full(g.Len())
		inSome := bitset.New(g.Len())
		Enumerate(g, func(r *bitset.Set) bool { //nolint:errcheck
			inAll.IntersectWith(r)
			inSome.UnionWith(r)
			return true
		})
		if !inSome.Equal(bitset.Full(g.Len())) {
			return false
		}
		for v := 0; v < g.Len(); v++ {
			if inAll.Has(v) != (g.Degree(v) == 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sample always returns a repair, for arbitrary seeds.
func TestQuickSample(t *testing.T) {
	f := func(seed, sampleSeed int64) bool {
		g := graphFromSeed(seed, 9)
		rng := rand.New(rand.NewSource(sampleSeed))
		return IsRepair(g, Sample(g, rng))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
