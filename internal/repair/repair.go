// Package repair implements Definition 1: a repair of r w.r.t. F is a
// maximal subset of r consistent with F — equivalently, a maximal
// independent set of the conflict graph. The package enumerates,
// counts, samples, and checks repairs. Enumeration runs per connected
// component (Bron–Kerbosch with pivoting on the complement graph) and
// composes componentwise, so instances like Example 4's r_n with 2^n
// repairs can be counted without enumeration.
package repair

import (
	"errors"
	"math"
	"math/rand"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
)

// ErrStopped is returned by enumeration functions when the yield
// callback asked to stop early.
var ErrStopped = errors.New("repair: enumeration stopped by caller")

// ErrOverflow is returned by Count when the number of repairs exceeds
// math.MaxInt64.
var ErrOverflow = errors.New("repair: repair count overflows int64")

// IsRepair reports whether s is a repair of the instance underlying g:
// an independent set such that every tuple outside s conflicts with
// some tuple of s. Runs in polynomial time (first row of Fig. 5).
func IsRepair(g *conflict.Graph, s *bitset.Set) bool {
	return g.IsMaximalIndependent(s)
}

// EnumerateComponent yields every maximal independent set of the
// subgraph induced by the vertices in comp. The yielded set is reused
// between calls; clone it to retain. Returns ErrStopped if the yield
// callback returned false.
func EnumerateComponent(g *conflict.Graph, comp []int, yield func(*bitset.Set) bool) error {
	compSet := bitset.FromSlice(comp)
	r := bitset.New(g.Len())
	p := compSet.Clone()
	x := bitset.New(g.Len())
	return bronKerbosch(g, r, p, x, yield)
}

// bronKerbosch enumerates maximal independent sets: maximal cliques of
// the complement graph. P and X hold candidate/excluded vertices;
// "neighbors in the complement" of v are the non-neighbors of v in g.
// Pivoting picks u ∈ P ∪ X minimizing the branching set P \ N̄(u) =
// P ∩ (n(u) ∪ {u}).
func bronKerbosch(g *conflict.Graph, r, p, x *bitset.Set, yield func(*bitset.Set) bool) error {
	if p.Empty() && x.Empty() {
		if !yield(r) {
			return ErrStopped
		}
		return nil
	}
	// Choose pivot u from P ∪ X with the smallest branch set
	// P ∩ v(u); branch on exactly those vertices.
	var branch *bitset.Set
	best := -1
	pick := func(u int) bool {
		b := bitset.Intersect(p, g.Vicinity(u))
		if best < 0 || b.Len() < best {
			best = b.Len()
			branch = b
		}
		return best > 0 // can't do better than 0
	}
	p.Range(pick)
	if best != 0 {
		x.Range(pick)
	}
	var err error
	branch.Range(func(v int) bool {
		// R ∪ {v}; new P and X lose v's vicinity (complement
		// neighborhood restriction).
		r.Add(v)
		np := bitset.Difference(p, g.Vicinity(v))
		nx := bitset.Difference(x, g.Vicinity(v))
		err = bronKerbosch(g, r, np, nx, yield)
		r.Remove(v)
		if err != nil {
			return false
		}
		p.Remove(v)
		x.Add(v)
		return true
	})
	return err
}

// Enumerate yields every repair of the instance underlying g. Repairs
// are produced as the componentwise union of per-component maximal
// independent sets. The yielded set is reused; clone to retain.
// Returns ErrStopped on early stop, nil otherwise.
func Enumerate(g *conflict.Graph, yield func(*bitset.Set) bool) error {
	comps := g.Components()
	// Pre-materialize per-component choices only for components, one
	// at a time, via nested recursion to avoid holding all choices of
	// all components at once — except that backtracking re-enumerates
	// inner components exponentially. Materializing per component is
	// the right trade: each component's repair list is small.
	choices := make([][]*bitset.Set, len(comps))
	for i, comp := range comps {
		err := EnumerateComponent(g, comp, func(s *bitset.Set) bool {
			choices[i] = append(choices[i], s.Clone())
			return true
		})
		if err != nil {
			return err
		}
	}
	return Combine(g.Len(), choices, yield)
}

// Combine yields every union of one choice per component. The yielded
// set is reused; clone to retain.
func Combine(n int, choices [][]*bitset.Set, yield func(*bitset.Set) bool) error {
	cur := bitset.New(n)
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(choices) {
			if !yield(cur) {
				return ErrStopped
			}
			return nil
		}
		for _, c := range choices[i] {
			cur.UnionWith(c)
			if err := rec(i + 1); err != nil {
				return err
			}
			cur.DifferenceWith(c)
		}
		return nil
	}
	if len(choices) == 0 {
		if !yield(cur) {
			return ErrStopped
		}
		return nil
	}
	return rec(0)
}

// All materializes every repair. Use only when the repair count is
// known to be small; prefer Enumerate.
func All(g *conflict.Graph) []*bitset.Set {
	var out []*bitset.Set
	Enumerate(g, func(s *bitset.Set) bool { //nolint:errcheck // yield never stops
		out = append(out, s.Clone())
		return true
	})
	return out
}

// CountComponent returns the number of maximal independent sets of the
// component.
func CountComponent(g *conflict.Graph, comp []int) int64 {
	var n int64
	EnumerateComponent(g, comp, func(*bitset.Set) bool { //nolint:errcheck // never stops
		n++
		return true
	})
	return n
}

// Count returns the number of repairs as the product of per-component
// counts, or ErrOverflow if it exceeds int64.
func Count(g *conflict.Graph) (int64, error) {
	total := int64(1)
	for _, comp := range g.Components() {
		c := CountComponent(g, comp)
		if c == 0 {
			return 0, nil // cannot happen: every graph has a MIS
		}
		if total > math.MaxInt64/c {
			return 0, ErrOverflow
		}
		total *= c
	}
	return total, nil
}

// Sample returns a uniformly-greedy random repair: a random
// permutation of the tuples is scanned, adding each tuple that does
// not conflict with the chosen ones. (The distribution is not uniform
// over repairs; it is a cheap generator for tests and probes.)
func Sample(g *conflict.Graph, rng *rand.Rand) *bitset.Set {
	s := bitset.New(g.Len())
	for _, v := range rng.Perm(g.Len()) {
		if !g.Neighbors(v).Intersects(s) {
			s.Add(v)
		}
	}
	return s
}

// Restrict returns the intersection of a repair with a component's
// vertex set.
func Restrict(s *bitset.Set, comp []int) *bitset.Set {
	return bitset.Intersect(s, bitset.FromSlice(comp))
}
