// Package repair implements Definition 1: a repair of r w.r.t. F is a
// maximal subset of r consistent with F — equivalently, a maximal
// independent set of the conflict graph. The package enumerates,
// counts, samples, and checks repairs. Enumeration runs per connected
// component (Bron–Kerbosch with pivoting on the complement graph) in
// component-local index space — scratch sets are k-bit for a
// k-vertex component and live in one preallocated arena, so the
// recursion allocates nothing per node — and composes componentwise,
// so instances like Example 4's r_n with 2^n repairs can be counted
// without enumeration.
package repair

import (
	"errors"
	"math"
	"math/rand"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
)

// ErrStopped is returned by enumeration functions when the yield
// callback asked to stop early.
var ErrStopped = errors.New("repair: enumeration stopped by caller")

// ErrOverflow is returned by Count when the number of repairs exceeds
// math.MaxInt64.
var ErrOverflow = errors.New("repair: repair count overflows int64")

// IsRepair reports whether s is a repair of the instance underlying g:
// an independent set such that every tuple outside s conflicts with
// some tuple of s. Runs in polynomial time (first row of Fig. 5).
func IsRepair(g *conflict.Graph, s *bitset.Set) bool {
	return g.IsMaximalIndependent(s)
}

// EnumerateLocal yields every maximal independent set of the local
// view, as a bitset.Words over local indices [0, k). The yielded set
// is reused between calls; copy it to retain. Returns ErrStopped if
// the yield callback returned false.
//
// The enumeration is Bron–Kerbosch with pivoting on the complement
// graph. All scratch state — the per-depth candidate/excluded/branch
// sets and the per-vertex vicinity masks — is carved out of a single
// arena allocated up front, so the recursion itself is allocation-free.
func EnumerateLocal(l *conflict.Local, yield func(bitset.Words) bool) error {
	k := l.Len()
	w := bitset.WordsLen(k)
	if k == 0 {
		if !yield(nil) {
			return ErrStopped
		}
		return nil
	}
	// Vicinity masks v(i) = {i} ∪ n(i), one k-bit row per vertex.
	vic := make([]uint64, k*w)
	vicOf := func(i int) bitset.Words { return bitset.Words(vic[i*w : (i+1)*w]) }
	for i := 0; i < k; i++ {
		m := vicOf(i)
		m.Add(i)
		for _, j := range l.Neighbors(i) {
			m.Add(int(j))
		}
	}
	// Arena: per depth (≤ k+1) a candidate set P, an excluded set X and
	// a branch set; plus the growing result R and one shared temp.
	slab := make([]uint64, (3*(k+2)+2)*w)
	frame := func(d, which int) bitset.Words {
		base := (3*d + which) * w
		return bitset.Words(slab[base : base+w])
	}
	r := bitset.Words(slab[3*(k+2)*w : (3*(k+2)+1)*w])
	tmp := bitset.Words(slab[(3*(k+2)+1)*w:])

	var rec func(d int, p, x bitset.Words) error
	rec = func(d int, p, x bitset.Words) error {
		if p.Empty() && x.Empty() {
			if !yield(r) {
				return ErrStopped
			}
			return nil
		}
		// Choose pivot u from P ∪ X with the smallest branch set
		// P ∩ v(u); branch on exactly those vertices.
		branch := frame(d, 2)
		best := -1
		pick := func(u int) bool {
			n := bitset.IntersectInto(tmp, p, vicOf(u))
			if best < 0 || n < best {
				best = n
				branch.Copy(tmp)
			}
			return best > 0 // can't do better than 0
		}
		p.Range(pick)
		if best != 0 {
			x.Range(pick)
		}
		np, nx := frame(d+1, 0), frame(d+1, 1)
		var err error
		branch.Range(func(v int) bool {
			// R ∪ {v}; new P and X lose v's vicinity (complement
			// neighborhood restriction).
			r.Add(v)
			bitset.AndNotInto(np, p, vicOf(v))
			bitset.AndNotInto(nx, x, vicOf(v))
			err = rec(d+1, np, nx)
			r.Remove(v)
			if err != nil {
				return false
			}
			p.Remove(v)
			x.Add(v)
			return true
		})
		return err
	}
	p0, x0 := frame(0, 0), frame(0, 1)
	p0.Fill(k)
	return rec(0, p0, x0)
}

// EnumerateComponent yields every maximal independent set of the
// subgraph induced by the vertices in comp (a sorted vertex list),
// as a set of global TupleIDs. The yielded set is reused between
// calls; clone it to retain. Returns ErrStopped if the yield callback
// returned false.
func EnumerateComponent(g *conflict.Graph, comp []int, yield func(*bitset.Set) bool) error {
	l := g.Project(comp)
	out := bitset.New(g.Len())
	return EnumerateLocal(l, func(r bitset.Words) bool {
		out.Clear()
		r.Range(func(i int) bool {
			out.Add(l.Global(i))
			return true
		})
		return yield(out)
	})
}

// Enumerate yields every repair of the instance underlying g. Repairs
// are produced as the componentwise union of per-component maximal
// independent sets. The yielded set is reused; clone to retain.
// Returns ErrStopped on early stop, nil otherwise.
func Enumerate(g *conflict.Graph, yield func(*bitset.Set) bool) error {
	comps := g.Components()
	// Pre-materialize per-component choices only for components, one
	// at a time, via nested recursion to avoid holding all choices of
	// all components at once — except that backtracking re-enumerates
	// inner components exponentially. Materializing per component is
	// the right trade: each component's repair list is small.
	choices := make([][]*bitset.Set, len(comps))
	for i, comp := range comps {
		err := EnumerateComponent(g, comp, func(s *bitset.Set) bool {
			choices[i] = append(choices[i], s.Clone())
			return true
		})
		if err != nil {
			return err
		}
	}
	return Combine(g.Len(), choices, yield)
}

// Combine yields every union of one choice per component. The yielded
// set is reused; clone to retain.
func Combine(n int, choices [][]*bitset.Set, yield func(*bitset.Set) bool) error {
	cur := bitset.New(n)
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(choices) {
			if !yield(cur) {
				return ErrStopped
			}
			return nil
		}
		for _, c := range choices[i] {
			cur.UnionWith(c)
			if err := rec(i + 1); err != nil {
				return err
			}
			cur.DifferenceWith(c)
		}
		return nil
	}
	if len(choices) == 0 {
		if !yield(cur) {
			return ErrStopped
		}
		return nil
	}
	return rec(0)
}

// All materializes every repair. Use only when the repair count is
// known to be small; prefer Enumerate.
func All(g *conflict.Graph) []*bitset.Set {
	var out []*bitset.Set
	Enumerate(g, func(s *bitset.Set) bool { //nolint:errcheck // yield never stops
		out = append(out, s.Clone())
		return true
	})
	return out
}

// CountComponent returns the number of maximal independent sets of the
// component. The count runs entirely in local index space — no global
// sets are materialized.
func CountComponent(g *conflict.Graph, comp []int) int64 {
	var n int64
	EnumerateLocal(g.Project(comp), func(bitset.Words) bool { //nolint:errcheck // never stops
		n++
		return true
	})
	return n
}

// Count returns the number of repairs as the product of per-component
// counts, or ErrOverflow if it exceeds int64.
func Count(g *conflict.Graph) (int64, error) {
	total := int64(1)
	for _, comp := range g.Components() {
		c := CountComponent(g, comp)
		if c == 0 {
			return 0, nil // cannot happen: every graph has a MIS
		}
		if total > math.MaxInt64/c {
			return 0, ErrOverflow
		}
		total *= c
	}
	return total, nil
}

// Sample returns a uniformly-greedy random repair: a random
// permutation of the tuples is scanned, adding each tuple that does
// not conflict with the chosen ones. (The distribution is not uniform
// over repairs; it is a cheap generator for tests and probes.)
func Sample(g *conflict.Graph, rng *rand.Rand) *bitset.Set {
	s := bitset.New(g.Len())
	for _, v := range rng.Perm(g.Len()) {
		if !g.Live(v) {
			continue
		}
		free := true
		for _, u := range g.Neighbors(v) {
			if s.Has(int(u)) {
				free = false
				break
			}
		}
		if free {
			s.Add(v)
		}
	}
	return s
}

// Restrict returns the intersection of a repair with a component's
// vertex set.
func Restrict(s *bitset.Set, comp []int) *bitset.Set {
	out := bitset.New(0)
	for _, v := range comp {
		if s.Has(v) {
			out.Add(v)
		}
	}
	return out
}
