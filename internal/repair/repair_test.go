package repair

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

func pairsGraph(t *testing.T, n int) *conflict.Graph {
	t.Helper()
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(i, 0)
		inst.MustInsert(i, 1)
	}
	return conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
}

func mgrGraph(t *testing.T) (*conflict.Graph, map[string]relation.TupleID) {
	t.Helper()
	s := relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
	fds := fd.MustParseSet(s, "Dept -> Name,Salary,Reports", "Name -> Dept,Salary,Reports")
	r := relation.NewInstance(s)
	ids := map[string]relation.TupleID{
		"mary":   r.MustInsert("Mary", "R&D", 40, 3),
		"john":   r.MustInsert("John", "R&D", 10, 2),
		"maryIT": r.MustInsert("Mary", "IT", 20, 1),
		"johnPR": r.MustInsert("John", "PR", 30, 4),
	}
	return conflict.MustBuild(r, fds), ids
}

func TestExample2MgrRepairs(t *testing.T) {
	// Example 2: exactly three repairs r1, r2, r3.
	g, ids := mgrGraph(t)
	repairs := All(g)
	if len(repairs) != 3 {
		t.Fatalf("repairs = %d, want 3", len(repairs))
	}
	want := []*bitset.Set{
		bitset.FromSlice([]int{ids["mary"], ids["johnPR"]}),   // r1
		bitset.FromSlice([]int{ids["john"], ids["maryIT"]}),   // r2
		bitset.FromSlice([]int{ids["maryIT"], ids["johnPR"]}), // r3
	}
	for _, w := range want {
		found := false
		for _, r := range repairs {
			if r.Equal(w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing repair %v", w)
		}
	}
	for _, r := range repairs {
		if !IsRepair(g, r) {
			t.Errorf("enumerated set %v is not a repair", r)
		}
	}
}

func TestExample4PairsCount(t *testing.T) {
	// Example 4: r_n has exactly 2^n repairs.
	for _, n := range []int{1, 2, 5, 10, 20, 62} {
		g := pairsGraph(t, n)
		c, err := Count(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := int64(1) << uint(n); c != want {
			t.Fatalf("n=%d: Count = %d, want %d", n, c, want)
		}
	}
	// n=63: 2^63 overflows int64.
	if _, err := Count(pairsGraph(t, 63)); err != ErrOverflow {
		t.Fatalf("n=63 should overflow, got %v", err)
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	// Cross-check Bron–Kerbosch against subset brute force on random
	// small graphs.
	rng := rand.New(rand.NewSource(17))
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	for iter := 0; iter < 50; iter++ {
		inst := relation.NewInstance(s)
		for i := 0; i < 8; i++ {
			inst.MustInsert(rng.Intn(3), rng.Intn(2), rng.Intn(2))
		}
		g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B", "B -> C"))

		got := map[string]bool{}
		if err := Enumerate(g, func(r *bitset.Set) bool {
			got[r.Key()] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}

		want := map[string]bool{}
		n := g.Len()
		for mask := 0; mask < 1<<uint(n); mask++ {
			set := bitset.New(n)
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					set.Add(v)
				}
			}
			if g.IsMaximalIndependent(set) {
				want[set.Key()] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: enumerated %d repairs, brute force %d\n%s", iter, len(got), len(want), g.ASCII())
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("iter %d: missing repair", iter)
			}
		}
	}
}

func TestEnumerateNoDuplicates(t *testing.T) {
	g := pairsGraph(t, 6)
	seen := map[string]bool{}
	if err := Enumerate(g, func(r *bitset.Set) bool {
		k := r.Key()
		if seen[k] {
			t.Fatalf("duplicate repair %v", r)
		}
		seen[k] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 64 {
		t.Fatalf("enumerated %d repairs, want 64", len(seen))
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := pairsGraph(t, 10)
	n := 0
	err := Enumerate(g, func(*bitset.Set) bool {
		n++
		return n < 5
	})
	if err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if n != 5 {
		t.Fatalf("visited %d, want 5", n)
	}
}

func TestConsistentInstanceSingleRepair(t *testing.T) {
	// The set of repairs of a consistent relation contains only r.
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1)
	inst.MustInsert(2, 2)
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	repairs := All(g)
	if len(repairs) != 1 || !repairs[0].Equal(inst.AllIDs()) {
		t.Fatalf("repairs of a consistent instance = %v", repairs)
	}
	if c, _ := Count(g); c != 1 {
		t.Fatalf("Count = %d, want 1", c)
	}
}

func TestEmptyInstance(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	repairs := All(g)
	if len(repairs) != 1 || !repairs[0].Empty() {
		t.Fatalf("repairs of empty instance = %v", repairs)
	}
}

func TestIsRepair(t *testing.T) {
	g, ids := mgrGraph(t)
	if !IsRepair(g, bitset.FromSlice([]int{ids["mary"], ids["johnPR"]})) {
		t.Error("r1 should be a repair")
	}
	// Consistent but not maximal.
	if IsRepair(g, bitset.FromSlice([]int{ids["mary"]})) {
		t.Error("{mary} is not maximal")
	}
	// Inconsistent.
	if IsRepair(g, bitset.FromSlice([]int{ids["mary"], ids["john"]})) {
		t.Error("{mary,john} conflicts")
	}
}

func TestSampleIsRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, _ := mgrGraph(t)
	for i := 0; i < 100; i++ {
		if s := Sample(g, rng); !IsRepair(g, s) {
			t.Fatalf("Sample returned non-repair %v", s)
		}
	}
	// Sampling should be able to reach every repair of the Mgr
	// instance (3 repairs, 100 draws).
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Sample(g, rng).Key()] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Sample reached %d distinct repairs, want 3", len(seen))
	}
}

func TestCombineEmptyChoices(t *testing.T) {
	n := 0
	if err := Combine(4, nil, func(s *bitset.Set) bool {
		if !s.Empty() {
			t.Fatal("empty combine should yield empty set")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("yielded %d, want 1", n)
	}
}

func TestRestrict(t *testing.T) {
	s := bitset.FromSlice([]int{0, 2, 5})
	got := Restrict(s, []int{2, 3, 5, 7})
	if !got.Equal(bitset.FromSlice([]int{2, 5})) {
		t.Fatalf("Restrict = %v", got)
	}
}

func TestCountComponentTriangle(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1)
	inst.MustInsert(1, 2)
	inst.MustInsert(1, 3)
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	comps := g.Components()
	if len(comps) != 1 {
		t.Fatalf("components = %v", comps)
	}
	if c := CountComponent(g, comps[0]); c != 3 {
		t.Fatalf("triangle has %d MIS, want 3", c)
	}
}

func BenchmarkEnumeratePairs12(b *testing.B) {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	for i := 0; i < 12; i++ {
		inst.MustInsert(i, 0)
		inst.MustInsert(i, 1)
	}
	g := conflict.MustBuild(inst, fd.MustParseSet(s, "A -> B"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		Enumerate(g, func(*bitset.Set) bool { n++; return true }) //nolint:errcheck
		if n != 4096 {
			b.Fatalf("n = %d", n)
		}
	}
}
