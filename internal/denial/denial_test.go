package denial

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

func abSchema() *relation.Schema {
	return relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
}

func TestParseConstraint(t *testing.T) {
	s := abSchema()
	c, err := Parse(s, "R(x1, y1) AND R(x2, y2) AND x1 = x2 AND y1 != y2")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Atoms) != 2 || c.Cond == nil {
		t.Fatalf("parsed constraint: %+v", c)
	}
	if c.String() == "" {
		t.Fatal("String should render")
	}
}

func TestParseConstraintErrors(t *testing.T) {
	s := abSchema()
	bad := []string{
		"x1 = x2",            // no atoms
		"S(x, y)",            // wrong relation
		"R(x)",               // arity
		"R(x, y) OR R(a, b)", // not a conjunction
		"EXISTS x . R(x, x)", // quantified
		"NOT R(x, y)",        // negation
	}
	for _, src := range bad {
		if _, err := Parse(s, src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestFDEncodingMatchesConflictGraph(t *testing.T) {
	// The hypergraph of the FD encoding must have exactly the
	// conflict-graph edges (all binary).
	rng := rand.New(rand.NewSource(3))
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	fds := fd.MustParseSet(s, "A -> B", "B -> C")
	for iter := 0; iter < 20; iter++ {
		inst := relation.NewInstance(s)
		for i := 0; i < 7; i++ {
			inst.MustInsert(rng.Intn(3), rng.Intn(3), rng.Intn(2))
		}
		var cs []Constraint
		for _, f := range fds.All() {
			cs = append(cs, FromFD(f)...)
		}
		h, err := Build(inst, cs)
		if err != nil {
			t.Fatal(err)
		}
		g := conflict.MustBuild(inst, fds)
		if h.NumEdges() != g.NumEdges() {
			t.Fatalf("hypergraph has %d edges, conflict graph %d\n%s", h.NumEdges(), g.NumEdges(), g.ASCII())
		}
		for _, e := range h.Edges() {
			vs := e.Slice()
			if len(vs) != 2 || !g.Adjacent(vs[0], vs[1]) {
				t.Fatalf("hyperedge %v is not a conflict edge", vs)
			}
		}
	}
}

// ternary builds the 3-ary constraint "no three tuples with the same
// A sum... simpler: no three distinct tuples share the same A value"
// — a genuine hyperedge of size 3.
func ternaryScenario(t *testing.T) (*Hypergraph, *relation.Instance) {
	t.Helper()
	s := abSchema()
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1) // 0
	inst.MustInsert(1, 2) // 1
	inst.MustInsert(1, 3) // 2
	inst.MustInsert(2, 4) // 3
	c := MustParse(s, `R(x1,y1) AND R(x2,y2) AND R(x3,y3)
		AND x1 = x2 AND x2 = x3 AND y1 < y2 AND y2 < y3`)
	h, err := Build(inst, []Constraint{c})
	if err != nil {
		t.Fatal(err)
	}
	return h, inst
}

func TestTernaryHyperedge(t *testing.T) {
	h, _ := ternaryScenario(t)
	if h.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", h.NumEdges())
	}
	if !h.Edges()[0].Equal(bitset.FromSlice([]int{0, 1, 2})) {
		t.Fatalf("edge = %v", h.Edges()[0])
	}
	// Repairs: drop any one of {0,1,2}; tuple 3 always stays.
	reps := All(h)
	if len(reps) != 3 {
		t.Fatalf("repairs = %v, want 3", reps)
	}
	for _, r := range reps {
		if !r.Has(3) || r.Len() != 3 {
			t.Fatalf("unexpected repair %v", r)
		}
		if !h.IsRepair(r) {
			t.Fatalf("enumerated non-repair %v", r)
		}
	}
	if c, err := Count(h); err != nil || c != 3 {
		t.Fatalf("Count = %d, %v", c, err)
	}
}

func TestEnumerateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := abSchema()
	c2 := MustParse(s, "R(x1,y1) AND R(x2,y2) AND x1 = x2 AND y1 != y2")
	c3 := MustParse(s, `R(x1,y1) AND R(x2,y2) AND R(x3,y3)
		AND y1 = y2 AND y2 = y3 AND x1 < x2 AND x2 < x3`)
	for iter := 0; iter < 25; iter++ {
		inst := relation.NewInstance(s)
		for i := 0; i < 6; i++ {
			inst.MustInsert(rng.Intn(4), rng.Intn(3))
		}
		h, err := Build(inst, []Constraint{c2, c3})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		Enumerate(h, func(r *bitset.Set) bool {
			got[r.Key()] = true
			return true
		})
		want := map[string]bool{}
		n := h.Len()
		for mask := 0; mask < 1<<uint(n); mask++ {
			set := bitset.New(n)
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					set.Add(v)
				}
			}
			if h.IsRepair(set) {
				want[set.Key()] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: enumerated %d repairs, brute force %d", iter, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("iter %d: missing repair", iter)
			}
		}
	}
}

func TestSelfConflictingTuple(t *testing.T) {
	// A unary denial constraint: no tuple with negative B.
	s := abSchema()
	inst := relation.NewInstance(s)
	inst.MustInsert(1, -5) // 0: violates alone
	inst.MustInsert(2, 3)  // 1
	c := MustParse(s, "R(x, y) AND y < 0")
	h, err := Build(inst, []Constraint{c})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 1 || h.Edges()[0].Len() != 1 {
		t.Fatalf("expected one unary edge, got %v", h.Edges())
	}
	reps := All(h)
	if len(reps) != 1 || !reps[0].Equal(bitset.FromSlice([]int{1})) {
		t.Fatalf("repairs = %v", reps)
	}
	// The self-conflicting tuple is certainly absent.
	ok, err := GroundQFCertain(h, query.MustParse("NOT R(1, -5)"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("self-conflicting tuple should be certainly absent")
	}
}

func TestMinimalEdgesOnly(t *testing.T) {
	// Constraint pair where one violation set contains another: only
	// the minimal one is kept.
	s := abSchema()
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1) // 0
	inst.MustInsert(1, 2) // 1
	c2 := MustParse(s, "R(x1,y1) AND R(x2,y2) AND x1 = x2 AND y1 != y2")
	c1 := MustParse(s, "R(x, y) AND y > 50") // no violations
	h, err := Build(inst, []Constraint{c2, c1})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 1 {
		t.Fatalf("edges = %d", h.NumEdges())
	}
}

func TestGroundQFCertainAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := abSchema()
	c2 := MustParse(s, "R(x1,y1) AND R(x2,y2) AND x1 = x2 AND y1 != y2")
	c3 := MustParse(s, `R(x1,y1) AND R(x2,y2) AND R(x3,y3)
		AND y1 = y2 AND y2 = y3 AND x1 < x2 AND x2 < x3`)
	for iter := 0; iter < 60; iter++ {
		inst := relation.NewInstance(s)
		for i := 0; i < 6; i++ {
			inst.MustInsert(rng.Intn(3), rng.Intn(3))
		}
		h, err := Build(inst, []Constraint{c2, c3})
		if err != nil {
			t.Fatal(err)
		}
		q := randomGroundQuery(rng, inst, 2)
		fast, err := GroundQFCertain(h, q)
		if err != nil {
			t.Fatal(err)
		}
		// Naive: evaluate on every repair.
		naive := true
		Enumerate(h, func(r *bitset.Set) bool {
			v, err2 := query.Eval(q, query.SubsetModel{Inst: inst, IDs: r})
			if err2 != nil {
				t.Fatal(err2)
			}
			if !v {
				naive = false
				return false
			}
			return true
		})
		if fast != naive {
			t.Fatalf("iter %d: fast=%v naive=%v for %s", iter, fast, naive, q)
		}
	}
}

func randomGroundQuery(rng *rand.Rand, inst *relation.Instance, depth int) query.Expr {
	if depth == 0 || rng.Intn(3) == 0 {
		var tup relation.Tuple
		if inst.Len() > 0 && rng.Intn(4) != 0 {
			tup = inst.Tuple(rng.Intn(inst.Len()))
		} else {
			tup = relation.Tuple{relation.Int(int64(rng.Intn(4))), relation.Int(int64(rng.Intn(4)))}
		}
		args := make([]query.Term, len(tup))
		for i, v := range tup {
			args[i] = query.Const{Value: v}
		}
		a := query.Atom{Rel: inst.Schema().Name(), Args: args}
		if rng.Intn(2) == 0 {
			return query.Not{Body: a}
		}
		return a
	}
	l := randomGroundQuery(rng, inst, depth-1)
	r := randomGroundQuery(rng, inst, depth-1)
	if rng.Intn(2) == 0 {
		return query.And{L: l, R: r}
	}
	return query.Or{L: l, R: r}
}

func TestGroundQFCertainRejectsQuantified(t *testing.T) {
	h, _ := ternaryScenario(t)
	if _, err := GroundQFCertain(h, query.MustParse("EXISTS x . R(x, 1)")); err == nil {
		t.Fatal("quantified query should be rejected")
	}
}

func TestGroundQFComparisonShortCircuit(t *testing.T) {
	h, _ := ternaryScenario(t)
	ok, err := GroundQFCertain(h, query.MustParse("1 < 2"))
	if err != nil || !ok {
		t.Fatalf("tautology: %v, %v", ok, err)
	}
	ok, err = GroundQFCertain(h, query.MustParse("2 < 1"))
	if err != nil || ok {
		t.Fatalf("contradiction: %v, %v", ok, err)
	}
}

// TestBuildWithTombstones pins that the hypergraph handles instances
// with deleted tuples: the universe is sized by NumIDs, tombstones
// join no component, and repairs are subsets of the live instance.
func TestBuildWithTombstones(t *testing.T) {
	s := abSchema()
	inst := relation.NewInstance(s)
	a := inst.MustInsert(1, 1)
	b := inst.MustInsert(1, 2)
	c := inst.MustInsert(2, 5)
	cons, err := Parse(s, "R(x1, y1) AND R(x2, y2) AND x1 = x2 AND y1 != y2")
	if err != nil {
		t.Fatal(err)
	}
	inst.Delete(a)
	h, err := Build(inst, []Constraint{cons})
	if err != nil {
		t.Fatalf("Build on tombstoned instance: %v", err)
	}
	if h.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0 (the conflict partner is deleted)", h.NumEdges())
	}
	comps := h.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want two live singletons", comps)
	}
	for _, comp := range comps {
		for _, v := range comp {
			if v == a {
				t.Fatalf("tombstone %d appears in components %v", a, comps)
			}
		}
	}
	if h.IsRepair(bitset.FromSlice([]int{a, b, c})) {
		t.Fatal("set containing a tombstone accepted as repair")
	}
	if !h.IsRepair(bitset.FromSlice([]int{b, c})) {
		t.Fatal("live set rejected as repair")
	}
	n, err := Count(h)
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v; want 1", n, err)
	}
}
