// Package denial implements the generalization sketched in the
// paper's future work (§6, after [6, 7]): denial constraints compile
// into a conflict hypergraph whose hyperedges are minimal sets of
// tuples that jointly violate a constraint, and repairs are the
// maximal independent sets of the hypergraph. More than two tuples
// can participate in a single conflict, so the paper's binary
// priorities have no direct meaning here; the package provides the
// constraint language, the hypergraph, repair enumeration/checking,
// and ground quantifier-free consistent query answering, without
// preference families.
package denial

import (
	"fmt"

	"prefcqa/internal/bitset"
	"prefcqa/internal/fd"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// Constraint is a denial constraint over one relation:
//
//	¬∃ x̄ . R(x̄1) ∧ ... ∧ R(x̄k) ∧ φ(x̄)
//
// where φ is a conjunction of comparisons. A set of tuples violates
// the constraint if some assignment of (distinct) tuples to the atoms
// satisfies φ.
type Constraint struct {
	Atoms []query.Atom
	Cond  query.Expr // quantifier-free comparison formula; may be nil (TRUE)
}

// Parse reads a denial constraint body as a conjunction of atoms and
// comparisons, e.g. for "no two distinct tuples agree on A but differ
// on B":
//
//	R(x1, y1) AND R(x2, y2) AND x1 = x2 AND y1 != y2
func Parse(schema *relation.Schema, src string) (Constraint, error) {
	e, err := query.Parse(src)
	if err != nil {
		return Constraint{}, err
	}
	var c Constraint
	var split func(e query.Expr) error
	split = func(e query.Expr) error {
		switch n := e.(type) {
		case query.And:
			if err := split(n.L); err != nil {
				return err
			}
			return split(n.R)
		case query.Atom:
			if n.Rel != schema.Name() {
				return fmt.Errorf("denial: atom over %q, constraint is over %q", n.Rel, schema.Name())
			}
			if len(n.Args) != schema.Arity() {
				return fmt.Errorf("denial: atom %s has arity %d, want %d", n, len(n.Args), schema.Arity())
			}
			c.Atoms = append(c.Atoms, n)
			return nil
		case query.Cmp:
			if c.Cond == nil {
				c.Cond = n
			} else {
				c.Cond = query.And{L: c.Cond, R: n}
			}
			return nil
		default:
			return fmt.Errorf("denial: constraint bodies are conjunctions of atoms and comparisons, got %s", e)
		}
	}
	if err := split(e); err != nil {
		return Constraint{}, err
	}
	if len(c.Atoms) == 0 {
		return Constraint{}, fmt.Errorf("denial: constraint %q has no atoms", src)
	}
	return c, nil
}

// MustParse is Parse that panics on error, for fixtures.
func MustParse(schema *relation.Schema, src string) Constraint {
	c, err := Parse(schema, src)
	if err != nil {
		panic(err)
	}
	return c
}

// FromFD encodes a functional dependency X -> Y as denial
// constraints, one per RHS attribute: no two tuples agree on X and
// differ on B. Used to cross-validate the hypergraph against the
// binary conflict graph.
func FromFD(f fd.FD) []Constraint {
	schema := f.Schema()
	var out []Constraint
	for _, b := range f.RHS() {
		mk := func(suffix string) []query.Term {
			args := make([]query.Term, schema.Arity())
			for i := 0; i < schema.Arity(); i++ {
				args[i] = query.Var{Name: fmt.Sprintf("v%d%s", i, suffix)}
			}
			return args
		}
		a1 := query.Atom{Rel: schema.Name(), Args: mk("a")}
		a2 := query.Atom{Rel: schema.Name(), Args: mk("b")}
		var cond query.Expr
		for _, x := range f.LHS() {
			eq := query.Cmp{Op: query.EQ,
				L: query.Var{Name: fmt.Sprintf("v%da", x)},
				R: query.Var{Name: fmt.Sprintf("v%db", x)}}
			if cond == nil {
				cond = eq
			} else {
				cond = query.And{L: cond, R: eq}
			}
		}
		ne := query.Cmp{Op: query.NE,
			L: query.Var{Name: fmt.Sprintf("v%da", b)},
			R: query.Var{Name: fmt.Sprintf("v%db", b)}}
		if cond == nil {
			cond = query.Expr(ne)
		} else {
			cond = query.And{L: cond, R: ne}
		}
		out = append(out, Constraint{Atoms: []query.Atom{a1, a2}, Cond: cond})
	}
	return out
}

// String renders the constraint body.
func (c Constraint) String() string {
	var e query.Expr
	for _, a := range c.Atoms {
		if e == nil {
			e = a
		} else {
			e = query.And{L: e, R: a}
		}
	}
	if c.Cond != nil {
		e = query.And{L: e, R: c.Cond}
	}
	return e.String()
}

// Hypergraph is the conflict hypergraph of an instance with respect
// to denial constraints: hyperedges are minimal violating tuple sets.
type Hypergraph struct {
	inst  *relation.Instance
	edges []*bitset.Set
	// incident[v] lists indices of edges containing v.
	incident [][]int
}

// Build evaluates the constraints over the instance and collects
// minimal violation sets. Enumeration is by nested loops over the
// atoms — exponential in constraint arity (fixed), polynomial in the
// data.
func Build(inst *relation.Instance, constraints []Constraint) (*Hypergraph, error) {
	var raw []*bitset.Set
	for _, c := range constraints {
		sets, err := violations(inst, c)
		if err != nil {
			return nil, err
		}
		raw = append(raw, sets...)
	}
	h := &Hypergraph{inst: inst, incident: make([][]int, inst.NumIDs())}
	// Keep only minimal edges, deduplicated.
	seen := map[string]bool{}
	for _, e := range raw {
		minimal := true
		for _, f := range raw {
			if f != e && f.SubsetOf(e) && !f.Equal(e) {
				minimal = false
				break
			}
		}
		if !minimal || seen[e.Key()] {
			continue
		}
		seen[e.Key()] = true
		h.edges = append(h.edges, e)
	}
	for ei, e := range h.edges {
		e.Range(func(v int) bool {
			h.incident[v] = append(h.incident[v], ei)
			return true
		})
	}
	return h, nil
}

// violations enumerates assignments of instance tuples to the
// constraint's atoms satisfying the condition, returning the distinct
// tuple sets involved.
func violations(inst *relation.Instance, c Constraint) ([]*bitset.Set, error) {
	k := len(c.Atoms)
	ids := make([]relation.TupleID, k)
	var out []*bitset.Set
	var rec func(i int, env map[string]relation.Value) error
	rec = func(i int, env map[string]relation.Value) error {
		if i == k {
			holds := true
			if c.Cond != nil {
				v, err := evalCond(c.Cond, env)
				if err != nil {
					return err
				}
				holds = v
			}
			if holds {
				s := bitset.New(inst.NumIDs())
				for _, id := range ids {
					s.Add(id)
				}
				// An assignment reusing one tuple for all atoms of an
				// FD-style constraint cannot satisfy a ≠ condition,
				// but constraints without ≠ could "violate" with a
				// single tuple — that is legitimate (self-conflict).
				out = append(out, s)
			}
			return nil
		}
		var loopErr error
		inst.Range(func(id relation.TupleID, t relation.Tuple) bool {
			// Bind the atom's variables to the tuple's values;
			// constants must match.
			saved := map[string]*relation.Value{}
			ok := true
			for ai, term := range c.Atoms[i].Args {
				switch x := term.(type) {
				case query.Const:
					if !x.Value.Equal(t[ai]) {
						ok = false
					}
				case query.Var:
					if old, bound := env[x.Name]; bound {
						if !old.Equal(t[ai]) {
							ok = false
						}
					} else {
						v := t[ai]
						saved[x.Name] = nil
						env[x.Name] = v
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				ids[i] = id
				if err := rec(i+1, env); err != nil {
					loopErr = err
				}
			}
			for name := range saved {
				delete(env, name)
			}
			return loopErr == nil
		})
		return loopErr
	}
	if err := rec(0, map[string]relation.Value{}); err != nil {
		return nil, err
	}
	return out, nil
}

// evalCond evaluates a conjunction of comparisons under the binding
// env (all variables must be bound by the constraint's atoms).
func evalCond(e query.Expr, env map[string]relation.Value) (bool, error) {
	switch n := e.(type) {
	case query.And:
		l, err := evalCond(n.L, env)
		if err != nil || !l {
			return false, err
		}
		return evalCond(n.R, env)
	case query.Cmp:
		l, err := resolveTerm(n.L, env)
		if err != nil {
			return false, err
		}
		r, err := resolveTerm(n.R, env)
		if err != nil {
			return false, err
		}
		return evalCmpConst(n.Op, l, r)
	default:
		return false, fmt.Errorf("denial: unexpected condition node %T", e)
	}
}

func resolveTerm(t query.Term, env map[string]relation.Value) (relation.Value, error) {
	switch x := t.(type) {
	case query.Const:
		return x.Value, nil
	case query.Var:
		v, ok := env[x.Name]
		if !ok {
			return relation.Value{}, fmt.Errorf("denial: condition variable %s not bound by any atom", x.Name)
		}
		return v, nil
	default:
		return relation.Value{}, fmt.Errorf("denial: unknown term %T", t)
	}
}

// Instance returns the underlying instance.
func (h *Hypergraph) Instance() *relation.Instance { return h.inst }

// Len returns the size of the vertex universe (live tuple IDs plus
// tombstones); structures indexed by TupleID are sized by it.
func (h *Hypergraph) Len() int { return h.inst.NumIDs() }

// NumEdges returns the number of (minimal, distinct) hyperedges.
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// Edges returns the hyperedges. The caller must not mutate them.
func (h *Hypergraph) Edges() []*bitset.Set { return h.edges }

// IsIndependent reports whether no hyperedge is fully contained in s.
func (h *Hypergraph) IsIndependent(s *bitset.Set) bool {
	for _, e := range h.edges {
		if e.SubsetOf(s) {
			return false
		}
	}
	return true
}

// IsRepair reports whether s is a repair: a subset of the live
// instance, independent, and maximal — adding any live outside vertex
// would complete some hyperedge.
func (h *Hypergraph) IsRepair(s *bitset.Set) bool {
	live := true
	s.Range(func(v int) bool {
		live = h.inst.Live(v)
		return live
	})
	if !live || !h.IsIndependent(s) {
		return false
	}
	for v := 0; v < h.Len(); v++ {
		if s.Has(v) || !h.inst.Live(v) {
			continue
		}
		s.Add(v)
		extendable := h.IsIndependent(s)
		s.Remove(v)
		if extendable {
			return false
		}
	}
	return true
}
