package denial

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"prefcqa/internal/bitset"
	"prefcqa/internal/query"
	"prefcqa/internal/relation"
)

// ErrOverflow is returned by Count when the number of repairs exceeds
// int64.
var ErrOverflow = errors.New("denial: repair count overflows int64")

// Components returns the connected components of the hypergraph
// (vertices connected through shared hyperedges), as sorted vertex
// lists. Repair enumeration decomposes over them.
func (h *Hypergraph) Components() [][]int {
	n := h.Len()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range h.edges {
		first := -1
		e.Range(func(v int) bool {
			if first < 0 {
				first = v
			} else {
				union(first, v)
			}
			return true
		})
	}
	groups := map[int][]int{}
	for v := 0; v < n; v++ {
		if !h.inst.Live(v) {
			continue // tombstoned tuples belong to no component
		}
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	var roots []int
	for r := range groups {
		roots = append(roots, groups[r][0])
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(groups))
	for _, r := range roots {
		members := groups[find(r)]
		sort.Ints(members)
		out = append(out, members)
	}
	return out
}

// componentRepairs enumerates the maximal independent sets of one
// component: branch on the vertices of a contained hyperedge, filter
// candidate leaves for maximality within the component, deduplicate.
func (h *Hypergraph) componentRepairs(comp []int) []*bitset.Set {
	compSet := bitset.FromSlice(comp)
	// Edges fully inside this component (edges never span components).
	var edges []*bitset.Set
	for _, e := range h.edges {
		if e.Intersects(compSet) {
			edges = append(edges, e)
		}
	}
	seen := map[string]bool{}
	var out []*bitset.Set
	var rec func(s *bitset.Set)
	rec = func(s *bitset.Set) {
		var bad *bitset.Set
		for _, e := range edges {
			if e.SubsetOf(s) {
				bad = e
				break
			}
		}
		if bad == nil {
			if !h.isMaximalWithin(s, compSet, edges) {
				return
			}
			k := s.Key()
			if seen[k] {
				return
			}
			seen[k] = true
			out = append(out, s.Clone())
			return
		}
		bad.Range(func(v int) bool {
			s.Remove(v)
			rec(s)
			s.Add(v)
			return true
		})
	}
	rec(compSet.Clone())
	return out
}

// isMaximalWithin reports whether the independent set s cannot be
// extended by any component vertex without completing an edge.
func (h *Hypergraph) isMaximalWithin(s, compSet *bitset.Set, edges []*bitset.Set) bool {
	maximal := true
	compSet.Range(func(v int) bool {
		if s.Has(v) {
			return true
		}
		s.Add(v)
		extendable := true
		for _, e := range edges {
			if e.SubsetOf(s) {
				extendable = false
				break
			}
		}
		s.Remove(v)
		if extendable {
			maximal = false
			return false
		}
		return true
	})
	return maximal
}

// Enumerate yields every repair (maximal independent set) of the
// hypergraph as the componentwise union of per-component choices.
// The yielded sets are owned by the caller.
func Enumerate(h *Hypergraph, yield func(*bitset.Set) bool) {
	comps := h.Components()
	choices := make([][]*bitset.Set, len(comps))
	for i, comp := range comps {
		choices[i] = h.componentRepairs(comp)
	}
	cur := bitset.New(h.Len())
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(choices) {
			return yield(cur.Clone())
		}
		for _, c := range choices[i] {
			cur.UnionWith(c)
			if !rec(i + 1) {
				return false
			}
			cur.DifferenceWith(c)
		}
		return true
	}
	rec(0)
}

// All materializes every repair. Use Count first; the result can be
// exponential.
func All(h *Hypergraph) []*bitset.Set {
	var out []*bitset.Set
	Enumerate(h, func(s *bitset.Set) bool {
		out = append(out, s)
		return true
	})
	return out
}

// Count returns the number of repairs as the product of per-component
// counts.
func Count(h *Hypergraph) (int64, error) {
	total := int64(1)
	for _, comp := range h.Components() {
		c := int64(len(h.componentRepairs(comp)))
		if c == 0 {
			return 0, nil
		}
		if total > math.MaxInt64/c {
			return 0, ErrOverflow
		}
		total *= c
	}
	return total, nil
}

// GroundQFCertain decides whether true is the consistent answer to a
// ground quantifier-free query over the hypergraph's repairs,
// generalizing the conflict-graph algorithm of internal/cqa: a
// negated fact f is excluded from a repair extension iff some
// hyperedge containing f has all its other vertices chosen.
func GroundQFCertain(h *Hypergraph, q query.Expr) (bool, error) {
	if !query.IsGround(q) {
		return false, fmt.Errorf("denial: GroundQFCertain needs a ground quantifier-free query, got %s", q)
	}
	dnf, err := query.ToDNF(query.Negate(q))
	if err != nil {
		return false, err
	}
	for _, disj := range dnf {
		sat, err := disjunctSatisfiable(h, disj)
		if err != nil {
			return false, err
		}
		if sat {
			return false, nil
		}
	}
	return true, nil
}

func disjunctSatisfiable(h *Hypergraph, disj []query.Literal) (bool, error) {
	inst := h.inst
	chosen := bitset.New(h.Len())
	negSet := bitset.New(h.Len())
	var negPresent []relation.TupleID
	for _, lit := range disj {
		if lit.IsCmp {
			lc, ok1 := lit.Cmp.L.(query.Const)
			rc, ok2 := lit.Cmp.R.(query.Const)
			if !ok1 || !ok2 {
				return false, fmt.Errorf("denial: non-ground comparison %s", lit.Cmp)
			}
			holds, err := evalCmpConst(lit.Cmp.Op, lc.Value, rc.Value)
			if err != nil {
				return false, err
			}
			if lit.Negated {
				holds = !holds
			}
			if !holds {
				return false, nil
			}
			continue
		}
		if lit.Atom.Rel != inst.Schema().Name() {
			return false, fmt.Errorf("denial: unknown relation %q", lit.Atom.Rel)
		}
		tup := make(relation.Tuple, len(lit.Atom.Args))
		ok := true
		for i, t := range lit.Atom.Args {
			c, isConst := t.(query.Const)
			if !isConst {
				return false, fmt.Errorf("denial: atom %s is not ground", lit.Atom)
			}
			if c.Value.Kind() != inst.Schema().Attr(i).Kind {
				ok = false
				break
			}
			tup[i] = c.Value
		}
		var id relation.TupleID
		present := false
		if ok {
			id, present = inst.Lookup(tup)
		}
		if lit.Negated {
			if present {
				negSet.Add(id)
				negPresent = append(negPresent, id)
			}
			continue
		}
		if !present {
			return false, nil
		}
		chosen.Add(id)
	}
	if chosen.Intersects(negSet) {
		return false, nil
	}
	if !h.IsIndependent(chosen) {
		return false, nil
	}
	return coverNegated(h, negPresent, chosen, negSet), nil
}

// coverNegated extends chosen so every negated fact f completes some
// hyperedge (all other vertices of the edge chosen), keeping chosen
// independent and disjoint from negSet. Such a family extends to a
// repair avoiding the negated facts.
func coverNegated(h *Hypergraph, negPresent []relation.TupleID, chosen, negSet *bitset.Set) bool {
	if len(negPresent) == 0 {
		return true
	}
	f := negPresent[0]
	// Already excluded?
	for _, ei := range h.incident[f] {
		e := h.edges[ei]
		if restSubset(e, f, chosen) {
			return coverNegated(h, negPresent[1:], chosen, negSet)
		}
	}
	for _, ei := range h.incident[f] {
		e := h.edges[ei]
		// Candidate witness: choose all of e \ {f}.
		ok := true
		var added []int
		e.Range(func(v int) bool {
			if v == f {
				return true
			}
			if negSet.Has(v) {
				ok = false
				return false
			}
			if !chosen.Has(v) {
				chosen.Add(v)
				added = append(added, v)
			}
			return true
		})
		if ok && h.IsIndependent(chosen) && coverNegated(h, negPresent[1:], chosen, negSet) {
			for _, v := range added {
				chosen.Remove(v)
			}
			return true
		}
		for _, v := range added {
			chosen.Remove(v)
		}
	}
	return false
}

// restSubset reports whether e \ {f} ⊆ chosen.
func restSubset(e *bitset.Set, f int, chosen *bitset.Set) bool {
	ok := true
	e.Range(func(v int) bool {
		if v != f && !chosen.Has(v) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func evalCmpConst(op query.CmpOp, l, r relation.Value) (bool, error) {
	switch op {
	case query.EQ:
		return l.Equal(r), nil
	case query.NE:
		return !l.Equal(r), nil
	}
	if l.Kind() != relation.KindInt || r.Kind() != relation.KindInt {
		return false, nil
	}
	c, err := l.Compare(r)
	if err != nil {
		return false, err
	}
	switch op {
	case query.LT:
		return c < 0, nil
	case query.LE:
		return c <= 0, nil
	case query.GT:
		return c > 0, nil
	case query.GE:
		return c >= 0, nil
	}
	return false, fmt.Errorf("denial: unknown operator %v", op)
}
