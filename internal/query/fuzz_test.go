package query

import (
	"testing"

	"prefcqa/internal/relation"
)

// FuzzParse checks that the parser never panics on arbitrary input
// and that accepted formulas round-trip through the printer. Run with
// `go test -fuzz=FuzzParse ./internal/query` to explore; the seed
// corpus runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"TRUE",
		"R(1, 'a')",
		"EXISTS x, y . R(x, y) AND x < y",
		"FORALL v . NOT Mgr(v, 'R&D', 40, 3) OR v = v",
		"((R(1)))",
		"NOT NOT x != -3",
		"'it''s' = \"q\"",
		"EXISTS x . (R(x) OR S(x)) AND x >= 0",
		"R(1) AND",
		")(",
		"EXISTS . R(1)",
		"'unterminated",
		"x <> y",
		"R(1,2,3,4,5,6,7,8)",
		"exists and or not",
		"R(𝛼)", // non-ASCII letters are identifiers
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := e.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not re-parse: %v", printed, src, err)
		}
		if back.String() != printed {
			t.Fatalf("round trip unstable: %q -> %q", printed, back.String())
		}
	})
}

// fuzzPlanModel is the fixed two-relation model FuzzPlanEquivalence
// evaluates against: small enough that naive domain iteration stays
// cheap, shaped so index probes, runtime-bound probes and subset-free
// scans all occur.
func fuzzPlanModel() Model {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B")))
	for i := 0; i < 6; i++ {
		r.MustInsert(i%3, (i*2)%3)
	}
	r.Delete(1) // postings must filter a tombstone
	s := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("C"), relation.NameAttr("D")))
	s.MustInsert(0, "n0")
	s.MustInsert(1, "n1")
	s.MustInsert(2, "n0")
	// T makes three-atom acyclic chains and stars expressible, so the
	// Yannakakis executor has multi-atom spines to compete on.
	tr := relation.NewInstance(relation.MustSchema("T", relation.IntAttr("E"), relation.IntAttr("F")))
	for i := 0; i < 4; i++ {
		tr.MustInsert(i%2, i)
	}
	tr.Delete(2)
	for _, inst := range []*relation.Instance{r, s, tr} {
		if err := db.AddInstance(inst); err != nil {
			panic(err)
		}
	}
	return DBModel{DB: db}
}

// FuzzPlanEquivalence parses arbitrary query text and, for every
// accepted closed formula, requires the cost-based planner — with
// index access paths and in scan-only mode — to agree bit-for-bit
// with naive active-domain iteration. The seed corpus exercises
// index-backed atoms: constant probes, runtime-bound join probes,
// shadowed variables, negated atoms in residuals, and kind
// mismatches. Run `go test -fuzz=FuzzPlanEquivalence ./internal/query`
// to explore.
func FuzzPlanEquivalence(f *testing.F) {
	seeds := []string{
		"EXISTS x . R(0, x)",                               // constant index probe
		"EXISTS x, y . R(0, x) AND S(x, y)",                // runtime-bound join probe
		"EXISTS x, y . S(x, 'n0') AND R(x, y) AND x < y",   // probe + residual comparison
		"EXISTS x . R(x, x)",                               // repeated variable
		"EXISTS x . R(x, x) AND NOT S(x, 'n1')",            // negated atom residual
		"FORALL a, b . NOT R(a, b) OR a <= 2",              // guarded universal via NNF
		"EXISTS x . R('name', x)",                          // kind mismatch: est 0
		"FORALL x . (NOT R(x, x)) OR (EXISTS x . R(x, 0))", // shadowing
		"EXISTS x, y . R(x, y) AND (S(y, 'n0') OR x = y)",  // disjunctive residual
		"EXISTS x . x = 1 AND R(1, x)",                     // comparison + atom coverage
		"EXISTS x, y . R(x, y) AND R(y, x) AND R(0, 0)",    // ground atom in the spine
		// Acyclic shapes: the Yannakakis executor must agree too.
		"EXISTS a, b, c . R(a, b) AND T(b, c)",                          // two-atom chain
		"EXISTS a, b, c, d . R(a, b) AND T(b, c) AND S(c, d)",           // three-atom chain
		"EXISTS h, a, b . R(h, a) AND T(h, b) AND R(h, h)",              // star on hub h
		"EXISTS a, b, c, d . R(a, b) AND T(b, c) AND T(b, d) AND d > 0", // tree + residual
		"EXISTS a, b . R(a, b) AND T(b, a)",                             // cyclic pair: generic join
		"EXISTS a, b . R(a, b) AND T(a, b) AND a < b",                   // shared pair
		// Cyclic shapes: the generic-join (WCOJ) executor must agree too.
		"EXISTS a, b, c . R(a, b) AND T(b, c) AND R(c, a)",                                           // triangle
		"EXISTS a, b, c . R(a, b) AND T(b, c) AND R(c, a) AND a > b",                                 // triangle + residual
		"EXISTS a, b, c . R(a, b) AND S(b, c) AND T(c, a)",                                           // kind-mismatched triangle
		"EXISTS a, b, c, d . R(a, b) AND R(a, c) AND R(a, d) AND T(b, c) AND T(b, d) AND R(c, d)",    // 4-clique
		"EXISTS a, b, c, d, e . R(a, b) AND T(b, c) AND R(c, a) AND T(a, d) AND R(d, e) AND T(e, a)", // bowtie
		// Quantified closed skeletons: boolean combinations of
		// quantifiers and ground leaves — the shapes the CQA layer
		// compiles once via PrepareClosed and re-runs per repair.
		"(EXISTS x . R(0, x)) AND NOT (EXISTS y . S(y, 'n1'))",
		"(FORALL a, b . NOT R(a, b) OR a <= 1) OR (EXISTS x . T(x, 0))",
		"R(0, 0) AND (EXISTS v . T(1, v) AND v > 0)",
		"NOT ((EXISTS x . R(x, x)) AND (FORALL y . NOT T(y, 2) OR y = 1))",
		"EXISTS x . R(x, 0) AND NOT (EXISTS y . S(y, 'n0') AND y = x)", // nested quantifier residual
	}
	for _, s := range seeds {
		f.Add(s)
	}
	m := fuzzPlanModel()
	schemas := map[string]*relation.Schema{}
	for _, rel := range m.Relations() {
		s, _ := m.Schema(rel)
		schemas[rel] = s
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(FreeVars(q)) != 0 {
			return
		}
		// Production evaluation is always preceded by Validate; an
		// invalid formula (unknown relation inside a residual, say)
		// may error under one strategy and short-circuit under
		// another, which is not a disagreement worth chasing.
		if Validate(q, schemas) != nil {
			return
		}
		planned, errP := Eval(q, m)
		greedy, errG := EvalGreedy(q, m)
		scan, errS := EvalScan(q, m)
		naive, errN := EvalNaive(q, m)
		if (errP == nil) != (errN == nil) || (errS == nil) != (errN == nil) || (errG == nil) != (errN == nil) {
			t.Fatalf("error mismatch planned=%v greedy=%v scan=%v naive=%v for %s", errP, errG, errS, errN, q)
		}
		if errN == nil && (planned != naive || greedy != naive || scan != naive) {
			t.Fatalf("planned=%v greedy=%v scan=%v naive=%v for %s", planned, greedy, scan, naive, q)
		}
	})
}
