package query

import "testing"

// FuzzParse checks that the parser never panics on arbitrary input
// and that accepted formulas round-trip through the printer. Run with
// `go test -fuzz=FuzzParse ./internal/query` to explore; the seed
// corpus runs as part of the normal test suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"TRUE",
		"R(1, 'a')",
		"EXISTS x, y . R(x, y) AND x < y",
		"FORALL v . NOT Mgr(v, 'R&D', 40, 3) OR v = v",
		"((R(1)))",
		"NOT NOT x != -3",
		"'it''s' = \"q\"",
		"EXISTS x . (R(x) OR S(x)) AND x >= 0",
		"R(1) AND",
		")(",
		"EXISTS . R(1)",
		"'unterminated",
		"x <> y",
		"R(1,2,3,4,5,6,7,8)",
		"exists and or not",
		"R(𝛼)", // non-ASCII letters are identifiers
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := e.String()
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form %q of %q does not re-parse: %v", printed, src, err)
		}
		if back.String() != printed {
			t.Fatalf("round trip unstable: %q -> %q", printed, back.String())
		}
	})
}
