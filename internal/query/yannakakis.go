package query

import (
	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// Yannakakis execution for acyclic multi-atom queries.
//
// A conjunctive query whose hypergraph (one hyperedge per atom, the
// atom's quantified variables) is α-acyclic admits a join tree, and
// Yannakakis' algorithm answers it without ever forming an
// intermediate join: a bottom-up pass semijoin-reduces each parent by
// its children, after which the boolean EXISTS answer is simply
// "every relation still has candidates". Only when residual
// comparisons span atoms (or a residual needs the tree-walking
// evaluator) does the executor complete the reduction with a top-down
// pass and enumerate — over the reduced candidate sets, where every
// partial binding is guaranteed to extend to at least one full match.
//
// The machinery runs entirely on the batch currency of vector.go:
// candidate sets are bitset.Words masks over the instance's tuple-ID
// universe (carved from the pooled scratch arena), semijoins hash the
// join-key cells straight out of the columns, and enumeration binds
// into the flat value array. Acyclicity is decided by GYO ear
// removal, which also yields the join forest and the bottom-up
// reduction order; disconnected queries need no special casing — an
// atom sharing no variables attaches with an empty join key, making
// its semijoin the "is it non-empty" test a cross product requires.

// yanEdge is one parent←child semijoin of the join forest, with the
// shared variables resolved to column positions on both sides
// (aligned by index).
type yanEdge struct {
	child, parent       int
	childPos, parentPos []int
}

// yanNode is one atom in enumeration preorder: parents before
// children, so a node's shared variables are always bound when its
// group lookup runs.
type yanNode struct {
	atom    int
	keyVars []int    // shared vars with parent (empty at a root)
	keyPos  []int    // their first-occurrence positions in this atom
	binds   []vecOp  // vars first bound here
	cmps    []vecCmp // cross-atom comparisons checkable after binds
}

// yanPlan is the compiled join forest of an acyclic query.
type yanPlan struct {
	parent []int
	edges  []yanEdge // GYO removal order = bottom-up reduction order
	nodes  []yanNode // enumeration preorder
	// pushedOnly: every residual was pushed into a single atom's base
	// selection, so the bottom-up pass alone decides the answer.
	pushedOnly bool
}

// compileYan runs GYO ear removal over the atoms' variable sets and,
// if the query is acyclic with at least two atoms, attaches a yanPlan:
// join forest, semijoin edges, enumeration schedule, and residual
// pushdown (comparisons local to one atom move into its base
// selection; the rest are scheduled on the enumeration preorder).
func (v *vecPlan) compileYan(cross []vecCmp) {
	m := len(v.atoms)
	if m < 2 {
		return
	}
	contains := func(atom int, varIdx int) bool {
		for _, x := range v.atoms[atom].vars {
			if x == varIdx {
				return true
			}
		}
		return false
	}
	posOf := func(atom int, varIdx int) int {
		a := &v.atoms[atom]
		for k, x := range a.vars {
			if x == varIdx {
				return a.varPos[k]
			}
		}
		return -1
	}

	// GYO: repeatedly remove an ear — an edge whose variables shared
	// with any other live edge all fit inside a single live host. The
	// removal order doubles as the bottom-up semijoin order.
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	var order []int
	aliveCount := m
	for aliveCount > 1 {
		removed := false
		for i := 0; i < m && aliveCount > 1; i++ {
			if !alive[i] {
				continue
			}
			var shared []int
			for _, x := range v.atoms[i].vars {
				for j := 0; j < m; j++ {
					if j != i && alive[j] && contains(j, x) {
						shared = append(shared, x)
						break
					}
				}
			}
			host := -1
			for j := 0; j < m && host < 0; j++ {
				if j == i || !alive[j] {
					continue
				}
				all := true
				for _, x := range shared {
					if !contains(j, x) {
						all = false
						break
					}
				}
				if all {
					host = j
				}
			}
			if host >= 0 {
				parent[i] = host
				alive[i] = false
				aliveCount--
				order = append(order, i)
				removed = true
			}
		}
		if !removed {
			return // cyclic: no ear left — wcoj.go's generic join takes over
		}
	}

	y := &yanPlan{parent: parent}
	for _, i := range order {
		e := yanEdge{child: i, parent: parent[i]}
		for k, x := range v.atoms[i].vars {
			if pp := posOf(parent[i], x); pp >= 0 {
				e.childPos = append(e.childPos, v.atoms[i].varPos[k])
				e.parentPos = append(e.parentPos, pp)
			}
		}
		y.edges = append(y.edges, e)
	}

	// Enumeration preorder: root first, then children as discovered.
	root := -1
	for i := range alive {
		if alive[i] {
			root = i
		}
	}
	children := make([][]int, m)
	for _, i := range order {
		children[parent[i]] = append(children[parent[i]], i)
	}
	preAtoms := []int{root}
	for k := 0; k < len(preAtoms); k++ {
		preAtoms = append(preAtoms, children[preAtoms[k]]...)
	}

	bound := make([]int, len(v.vars)) // var → preorder node binding it
	for i := range bound {
		bound[i] = -1
	}
	y.nodes = make([]yanNode, len(preAtoms))
	for k, ai := range preAtoms {
		a := &v.atoms[ai]
		node := yanNode{atom: ai}
		for vi, x := range a.vars {
			if bound[x] < 0 {
				bound[x] = k
				node.binds = append(node.binds, vecOp{pos: a.varPos[vi], varIdx: x, bind: true})
			} else if parent[ai] >= 0 && contains(parent[ai], x) {
				node.keyVars = append(node.keyVars, x)
				node.keyPos = append(node.keyPos, a.varPos[vi])
			}
			// A var bound by an ancestor is, by the running
			// intersection property, shared with the parent and thus
			// covered by the key; intra-atom repeats are enforced by
			// the base selection (intraEq).
		}
		y.nodes[k] = node
	}

	// Residual placement: a comparison whose variables all occur in one
	// atom filters that atom's base candidates; anything spanning atoms
	// waits for enumeration, at the first node where all operands are
	// bound.
	y.pushedOnly = len(v.complex) == 0
	for _, c := range cross {
		home := -1
		for i := 0; i < m && home < 0; i++ {
			ok := true
			for _, o := range []vecOperand{c.l, c.r} {
				if o.varIdx >= 0 && !contains(i, o.varIdx) {
					ok = false
				}
			}
			if ok {
				home = i
			}
		}
		if home >= 0 {
			pc := vecCmpPos{op: c.op, lPos: -1, rPos: -1, lVal: c.l.val, rVal: c.r.val}
			if c.l.varIdx >= 0 {
				pc.lPos = posOf(home, c.l.varIdx)
			}
			if c.r.varIdx >= 0 {
				pc.rPos = posOf(home, c.r.varIdx)
			}
			v.atoms[home].pushed = append(v.atoms[home].pushed, pc)
			continue
		}
		at := 0
		for _, o := range []vecOperand{c.l, c.r} {
			if o.varIdx >= 0 && bound[o.varIdx] > at {
				at = bound[o.varIdx]
			}
		}
		y.nodes[at].cmps = append(y.nodes[at].cmps, c)
		y.pushedOnly = false
	}
	v.yan = y
}

// yanBase fills the atom's candidate mask from the shared base scan
// (wcoj.go's scanBase): every visible ID passing the compile-known
// equality selections, intra-atom variable repeats, and pushed-down
// comparisons.
func (v *vecPlan) yanBase(ai int, mask bitset.Words, exec *PlanExec) int {
	cnt := 0
	v.scanBase(ai, exec, func(id relation.TupleID) {
		mask.Add(id)
		cnt++
	})
	if exec != nil {
		exec.Batch[ai].Base = cnt
	}
	return cnt
}

// semijoinInto filters dst's candidate mask to the IDs whose join key
// appears among src's candidates. Returns dst's new candidate count.
// Single-int-column keys — the overwhelmingly common join shape — hash
// the raw cells into an int64 set; everything else falls back to the
// encoded byte-key set (whose inserts copy the key).
func (v *vecPlan) semijoinInto(sc *vecScratch, masks []bitset.Words, counts []int,
	src int, srcPos []int, dst int, dstPos []int, exec *PlanExec) int {
	sa, da := &v.atoms[src], &v.atoms[dst]
	removed := 0
	if len(srcPos) == 1 && len(dstPos) == 1 &&
		sa.cols[srcPos[0]].Kind() == relation.KindInt &&
		da.cols[dstPos[0]].Kind() == relation.KindInt {
		sCol, dCol := sa.cols[srcPos[0]], da.cols[dstPos[0]]
		set := make(map[int64]struct{}, counts[src])
		masks[src].Range(func(id int) bool {
			set[sCol.Int(id)] = struct{}{}
			return true
		})
		masks[dst].Range(func(id int) bool {
			if _, ok := set[dCol.Int(id)]; !ok {
				masks[dst].Remove(id)
				removed++
			}
			return true
		})
	} else {
		set := make(map[string]struct{}, counts[src])
		masks[src].Range(func(id int) bool {
			sc.key = sc.key[:0]
			for _, p := range srcPos {
				sc.key = sa.cols[p].AppendKey(sc.key, id)
			}
			if _, ok := set[string(sc.key)]; !ok {
				set[string(sc.key)] = struct{}{}
			}
			return true
		})
		masks[dst].Range(func(id int) bool {
			sc.key = sc.key[:0]
			for _, p := range dstPos {
				sc.key = da.cols[p].AppendKey(sc.key, id)
			}
			if _, ok := set[string(sc.key)]; !ok {
				masks[dst].Remove(id)
				removed++
			}
			return true
		})
	}
	counts[dst] -= removed
	if exec != nil {
		exec.Batch[dst].Batches++
	}
	return counts[dst]
}

// runYan executes the Yannakakis plan: base masks, bottom-up semijoin
// reduction, and — only if residuals demand it — a top-down completion
// pass and enumeration over the fully reduced candidates.
func (v *vecPlan) runYan(sc *vecScratch, exec *PlanExec, vals []relation.Value, env map[string]relation.Value) (bool, error) {
	y := v.yan
	m := len(v.atoms)
	sizes := make([]int, m)
	for i := range sizes {
		sizes[i] = v.atoms[i].n
	}
	masks := sc.masks(sizes)
	counts := make([]int, m)
	setOut := func() {
		if exec != nil {
			for i := range counts {
				exec.Batch[i].Out = counts[i]
			}
		}
	}
	for i := range v.atoms {
		if err := v.ev.tick(); err != nil {
			return false, err
		}
		counts[i] = v.yanBase(i, masks[i], exec)
		if counts[i] == 0 {
			setOut()
			return false, nil
		}
	}
	for _, e := range y.edges {
		if err := v.ev.tick(); err != nil {
			return false, err
		}
		if v.semijoinInto(sc, masks, counts, e.child, e.childPos, e.parent, e.parentPos, exec) == 0 {
			setOut()
			return false, nil
		}
	}
	if y.pushedOnly && v.emit == nil {
		// Bottom-up reduction succeeded everywhere: the root's
		// surviving candidates each extend to a full match. (With an
		// emit hook attached the caller wants the bindings themselves,
		// so fall through to the completion pass and enumerate.)
		setOut()
		return true, nil
	}
	for k := len(y.edges) - 1; k >= 0; k-- {
		e := y.edges[k]
		if err := v.ev.tick(); err != nil {
			return false, err
		}
		if v.semijoinInto(sc, masks, counts, e.parent, e.parentPos, e.child, e.childPos, exec) == 0 {
			setOut()
			return false, nil
		}
	}
	setOut()

	// Group each non-root node's reduced candidates by its join key.
	groups := make([]map[string][]relation.TupleID, len(y.nodes))
	for k := 1; k < len(y.nodes); k++ {
		node := &y.nodes[k]
		a := &v.atoms[node.atom]
		g := make(map[string][]relation.TupleID, counts[node.atom])
		masks[node.atom].Range(func(id int) bool {
			sc.key = sc.key[:0]
			for _, p := range node.keyPos {
				sc.key = a.cols[p].AppendKey(sc.key, id)
			}
			g[string(sc.key)] = append(g[string(sc.key)], id)
			return true
		})
		groups[k] = g
	}
	return v.yanEnum(0, masks, groups, sc, vals, env)
}

// yanEnum backtracks over the reduced candidates in preorder. Every
// lookup hits a non-empty group unless a cross-atom comparison or
// complex residual rejected the partial binding, so the search space
// is the reduced relations, not the original ones.
func (v *vecPlan) yanEnum(k int, masks []bitset.Words, groups []map[string][]relation.TupleID,
	sc *vecScratch, vals []relation.Value, env map[string]relation.Value) (bool, error) {
	if k == len(v.yan.nodes) {
		return v.finish(vals, env)
	}
	node := &v.yan.nodes[k]
	a := &v.atoms[node.atom]
	try := func(id relation.TupleID) (bool, error) {
		if err := v.ev.tick(); err != nil {
			return false, err
		}
		for i := range node.binds {
			vals[node.binds[i].varIdx] = a.cols[node.binds[i].pos].Value(id)
		}
		for _, c := range node.cmps {
			if !c.holds(vals) {
				return false, nil
			}
		}
		return v.yanEnum(k+1, masks, groups, sc, vals, env)
	}
	if k == 0 {
		found := false
		var err error
		masks[node.atom].Range(func(id int) bool {
			found, err = try(id)
			return err == nil && !found
		})
		return found, err
	}
	sc.key = sc.key[:0]
	for _, vi := range node.keyVars {
		sc.key = vals[vi].AppendKey(sc.key)
	}
	for _, id := range groups[k][string(sc.key)] {
		found, err := try(id)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}
