package query

import (
	"context"

	"prefcqa/internal/relation"
)

// Prepared is a closed query compiled once against a columnar model
// and re-evaluated many times while only the model's visibility
// changes — the vectorized half of the CQA repair sweep. The boolean
// skeleton (conjunctions, disjunctions, negations, ground leaves) is
// lowered to a small node tree; every quantifier is planned and
// vector-compiled exactly once (compileExists + compileVec, including
// the Yannakakis / WCOJ executor choice); each Eval then re-syncs the
// compiled atoms' visibility bitsets from the model's Backing and
// re-runs the executors over pooled scratch. Nothing per-repair is
// recompiled: a repair swap is a handful of pointer updates.
//
// The caller owns the visibility channel: a DBModel whose Subsets map
// is retained and mutated between Eval calls (the per-repair subsets
// the CQA walk unions in place), or any ColumnarModel whose Backing
// reflects its current state. Prepared is not safe for concurrent
// use; evaluations share one environment and one scratch state.
type Prepared struct {
	ev       *evaluator
	m        ColumnarModel
	root     pnode
	env      map[string]relation.Value
	vecAtoms []*vecAtom // every compiled atom, for visibility re-sync
}

// pnode is one node of the compiled boolean skeleton.
type pnode interface {
	eval(p *Prepared) (bool, error)
}

type pBool struct{ v bool }

func (n pBool) eval(*Prepared) (bool, error) { return n.v, nil }

type pNot struct{ b pnode }

func (n pNot) eval(p *Prepared) (bool, error) {
	v, err := n.b.eval(p)
	return !v, err
}

type pAnd struct{ l, r pnode }

func (n pAnd) eval(p *Prepared) (bool, error) {
	l, err := n.l.eval(p)
	if err != nil || !l {
		return false, err
	}
	return n.r.eval(p)
}

type pOr struct{ l, r pnode }

func (n pOr) eval(p *Prepared) (bool, error) {
	l, err := n.l.eval(p)
	if err != nil || l {
		return l, err
	}
	return n.r.eval(p)
}

// pGround is a ground atom or comparison leaf, evaluated through the
// shared evaluator (an O(1) key-index lookup against the current
// subsets for atoms, a constant fold for comparisons).
type pGround struct{ e Expr }

func (n pGround) eval(p *Prepared) (bool, error) { return p.ev.eval(n.e, p.env) }

// pQuant is one quantifier compiled to a physical plan. neg marks a
// universal rewritten ∀x̄.φ ⇒ ¬∃x̄.¬φ. vp is the vectorized lowering
// (nil: unsatisfiable plan or no columnar lowering; runPlan handles
// both).
type pQuant struct {
	neg  bool
	plan *Plan
	vp   *vecPlan
}

func (n *pQuant) eval(p *Prepared) (bool, error) {
	var res bool
	var err error
	if n.vp != nil {
		res, err = p.ev.runVec(n.vp, nil, p.env)
	} else {
		res, err = p.ev.runPlan(n.plan, nil, p.env)
	}
	if n.neg {
		res = !res
	}
	return res, err
}

// PrepareClosed compiles the closed query q against m. ok=false means
// some quantifier cannot be planned (compileExists declined: no
// positive atom conjunct, or a variable occurring only in residuals)
// and the caller must evaluate through Eval/EvalCtx instead. Queries
// accepted by AnalyzeSupport always prepare.
func PrepareClosed(m ColumnarModel, q Expr) (*Prepared, bool) {
	p := &Prepared{
		m:   m,
		env: make(map[string]relation.Value),
		ev:  &evaluator{m: m, root: q, join: true},
	}
	root, ok := p.compile(q)
	if !ok {
		return nil, false
	}
	p.root = root
	return p, true
}

func (p *Prepared) compile(e Expr) (pnode, bool) {
	switch n := e.(type) {
	case Bool:
		return pBool{n.Value}, true
	case Atom:
		return pGround{n}, true
	case Cmp:
		return pGround{n}, true
	case Not:
		b, ok := p.compile(n.Body)
		if !ok {
			return nil, false
		}
		return pNot{b}, true
	case And:
		l, ok := p.compile(n.L)
		if !ok {
			return nil, false
		}
		r, ok := p.compile(n.R)
		if !ok {
			return nil, false
		}
		return pAnd{l, r}, true
	case Or:
		l, ok := p.compile(n.L)
		if !ok {
			return nil, false
		}
		r, ok := p.compile(n.R)
		if !ok {
			return nil, false
		}
		return pOr{l, r}, true
	case Quant:
		q := n
		neg := false
		if n.All {
			// Mirror evalQuant: ∀x̄.φ ≡ ¬∃x̄.¬φ.
			q = Quant{Vars: n.Vars, Body: NNF(Not{Body: n.Body})}
			neg = true
		}
		plan, ok, err := p.ev.compileExists(q, p.env)
		if err != nil || !ok {
			return nil, false
		}
		pq := &pQuant{neg: neg, plan: plan}
		if !plan.Unsat {
			if vp := p.ev.compileVec(p.m, plan, p.env); vp != nil {
				pq.vp = vp
				for i := range vp.atoms {
					p.vecAtoms = append(p.vecAtoms, &vp.atoms[i])
				}
			}
		}
		return pq, true
	default:
		return nil, false
	}
}

// Eval evaluates the prepared query against the model's current
// visibility. The compiled atoms re-read their visible subsets from
// the model's Backing (the instance and its ID universe are fixed by
// the version), the evaluator's cached active domain is dropped (a
// residual falling back to domain iteration must see the current
// view), and the executors run over pooled scratch — no plan or
// vector compilation happens per call.
func (p *Prepared) Eval(ctx context.Context) (bool, error) {
	p.ev.ctx = ctx
	p.ev.domain, p.ev.domainOK = nil, false
	for _, a := range p.vecAtoms {
		if _, vis, ok := p.m.Backing(a.rel); ok {
			a.visible = vis
		}
	}
	return p.root.eval(p)
}
