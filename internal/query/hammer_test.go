package query

import (
	"math/rand"
	"testing"

	"prefcqa/internal/relation"
)

func TestHammerNNFAndSimplify(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1)
	inst.MustInsert(2)
	m := InstanceModel{Inst: inst}
	for seed := int64(0); seed < 40000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := randAST(rng, nil, 2)
		n := NNF(e)
		if NNF(n).String() != n.String() {
			t.Fatalf("seed %d: NNF not stable for %s", seed, e)
		}
		if len(FreeVars(e)) != 0 {
			continue
		}
		a, err1 := Eval(e, m)
		simplified := Simplify(e)
		if len(Constants(simplified)) == len(Constants(e)) {
			b, err2 := Eval(simplified, m)
			if err1 == nil && err2 == nil && a != b {
				t.Fatalf("seed %d: Simplify changed %s: %v -> %v", seed, e, a, b)
			}
			if err1 == nil && err2 != nil {
				t.Fatalf("seed %d: Simplify introduced error for %s: %v", seed, e, err2)
			}
		}
		c, err3 := Eval(NNF(e), m)
		if err1 == nil && err3 == nil && a != c {
			t.Fatalf("seed %d: NNF changed %s: %v -> %v", seed, e, a, c)
		}
	}
}
