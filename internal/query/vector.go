package query

import (
	"sync"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// Vectorized batch execution.
//
// The legacy executor (runPlan/runStep) interprets a plan
// tuple-at-a-time: every candidate row materializes a relation.Tuple,
// and every binding mutates a map[string]Value environment — two maps
// and an allocation per row, which BENCH_6 showed to be the bottleneck
// on selective workloads (indexes bought only 1.35x on lowsel at
// ~100k allocs/op). This file replaces the inner loop for models that
// expose their columnar backing (ColumnarModel):
//
//   - Candidates are tuple IDs, never tuples. Operators read cells
//     straight from the instance's typed columns (relation.Col) and
//     probe the secondary index's raw postings (PostingIDs), filtering
//     visibility (version prefix, tombstones, repair subset) per ID.
//   - Bindings live in a flat []relation.Value indexed by the
//     quantifier's variable positions — no map operations on the hot
//     path, no per-row allocation.
//   - Residual comparisons over constants and quantified variables are
//     compiled to vecCmp checks evaluated as soon as their operands
//     are bound; only residuals the vector runtime cannot express
//     (negations, disjunctions, nested quantifiers) fall back to the
//     tree-walking evaluator, and only for rows that survived
//     everything else.
//   - Scratch (the flat binding array, key buffers, the bitset.Words
//     mask arena used by the Yannakakis reducer) is pooled and reused
//     across evaluations, so a steady-state Eval allocates only the
//     small compile-time plan structures.
//
// On top of the batch runtime, yannakakis.go adds a semijoin-reduction
// executor for acyclic multi-atom queries; compileVec decides between
// it and the greedy nested-loop order by cost (see chooseExecutor).
// The legacy interpreter remains the oracle: scan-only models
// (ScanOnly, facade WithIndexes(false)) never take this path, and the
// differential tests pin both executors bit-for-bit against it.

// ColumnarModel is an IndexedModel whose relations expose their
// columnar backing: the instance (columns + postings) and the visible
// tuple-ID subset (nil = every live tuple). The vectorized executor
// requires it; models that cannot expose a backing stay on the
// tuple-at-a-time path.
type ColumnarModel interface {
	IndexedModel
	// Backing returns the instance holding rel's storage and the
	// visible ID subset. ok=false means the relation is absent (or the
	// model cannot expose it), and the caller falls back.
	Backing(rel string) (inst *relation.Instance, visible *bitset.Set, ok bool)
}

// vecProbe is one atom position with a value available for an index
// probe or an equality check when the step runs: a compile-time
// constant or environment binding (varIdx < 0, use val), or a
// quantified variable bound by an earlier step (read vals[varIdx]).
type vecProbe struct {
	pos    int
	varIdx int
	val    relation.Value
}

// vecOp is one quantified-variable position of an atom, in argument
// order: bind writes the column cell into the flat binding array, a
// non-bind op checks the cell against the already-bound value.
type vecOp struct {
	pos    int
	varIdx int
	bind   bool
}

// vecOperand is one side of a compiled residual comparison.
type vecOperand struct {
	varIdx int // >= 0: read vals[varIdx]; < 0: literal
	val    relation.Value
}

func (o vecOperand) value(vals []relation.Value) relation.Value {
	if o.varIdx >= 0 {
		return vals[o.varIdx]
	}
	return o.val
}

// vecCmp is a residual comparison whose operands are constants,
// environment values, or quantified variables — checkable from the
// flat binding array the moment its last operand is bound.
type vecCmp struct {
	op   CmpOp
	l, r vecOperand
}

func (c vecCmp) holds(vals []relation.Value) bool {
	return cmpHolds(c.op, c.l.value(vals), c.r.value(vals))
}

// cmpHolds mirrors evalCmp exactly: EQ/NE on any kinds, order
// comparisons defined only on integers (a name is simply false).
func cmpHolds(op CmpOp, l, r relation.Value) bool {
	switch op {
	case EQ:
		return l.Equal(r)
	case NE:
		return !l.Equal(r)
	}
	if l.Kind() != relation.KindInt || r.Kind() != relation.KindInt {
		return false
	}
	cv, err := l.Compare(r)
	if err != nil {
		return false
	}
	switch op {
	case LT:
		return cv < 0
	case LE:
		return cv <= 0
	case GT:
		return cv > 0
	case GE:
		return cv >= 0
	}
	return false
}

// vecCmpPos is a comparison pushed down to a single atom: operands
// resolved to column positions of that atom (pos < 0: literal). The
// Yannakakis base build applies these before any join work.
type vecCmpPos struct {
	op         CmpOp
	lPos, rPos int
	lVal, rVal relation.Value
}

func (c vecCmpPos) holds(a *vecAtom, id relation.TupleID) bool {
	l, r := c.lVal, c.rVal
	if c.lPos >= 0 {
		l = a.cols[c.lPos].Value(id)
	}
	if c.rPos >= 0 {
		r = a.cols[c.rPos].Value(id)
	}
	return cmpHolds(c.op, l, r)
}

// vecAtom is one plan step compiled against its columnar backing.
type vecAtom struct {
	rel     string
	inst    *relation.Instance
	visible *bitset.Set
	n       int // inst.NumIDs(): the version's ID universe
	cols    []relation.Col

	// probes: positions usable as index probes when this step runs in
	// greedy order (compile-known values and vars bound earlier).
	probes []vecProbe
	// sel: the compile-known subset of probes — the only selections
	// available to the order-free Yannakakis base build.
	sel []vecProbe
	// ops: quantified-var positions in argument order (greedy path).
	ops []vecOp
	// intraEq: (pos, firstPos) pairs for a variable repeated within
	// this atom (order-free form of the ops check).
	intraEq [][2]int
	// pushed: residual comparisons local to this atom.
	pushed []vecCmpPos

	vars    []int // distinct quantified vars, first-occurrence order
	varPos  []int // first occurrence position per vars entry
	card    int
	estBase int // estimated base candidates after compile-known selections
}

// visibleID reports whether id is visible to this atom's model view:
// inside the version prefix, not tombstoned, and in the repair subset
// when one is attached.
func (a *vecAtom) visibleID(id relation.TupleID) bool {
	if !a.inst.Live(id) {
		return false
	}
	return a.visible == nil || a.visible.Has(id)
}

// vecPlan is the vectorized compilation of one existential plan.
type vecPlan struct {
	ev      *evaluator
	plan    *Plan
	atoms   []vecAtom
	vars    []string
	cmpsAt  [][]vecCmp // greedy: cmps checkable after step i's binds
	complex []Expr     // residuals needing the tree-walking evaluator
	// constFalse: a residual over compile-known values already failed.
	constFalse bool

	// Yannakakis data (nil/empty when the query is not acyclic or has
	// fewer than two atoms).
	yan        *yanPlan
	useYan     bool
	yanCost    int
	greedyCost int

	// Generic-join data (nil unless the spine is cyclic: compileWcoj
	// only runs when compileYan declined).
	wcoj     *wcojPlan
	useWcoj  bool
	wcojCost int

	// emit, when set, turns the boolean EXISTS run into an enumeration:
	// finish calls it with every satisfying flat binding instead of
	// returning true on the first. Returning true stops the search
	// (propagated as the run's result); false asks for more bindings.
	emit func(vals []relation.Value) (bool, error)
}

// vecScratch is the pooled per-evaluation scratch: the flat binding
// array, the join-key buffer, and the word arena backing the
// Yannakakis candidate masks. Reused across evaluations so the
// steady-state hot path does not allocate.
type vecScratch struct {
	vals  []relation.Value
	key   []byte
	arena []uint64
}

var vecScratchPool = sync.Pool{New: func() any { return new(vecScratch) }}

func (sc *vecScratch) bindings(n int) []relation.Value {
	if cap(sc.vals) < n {
		sc.vals = make([]relation.Value, n)
	}
	sc.vals = sc.vals[:n]
	for i := range sc.vals {
		sc.vals[i] = relation.Value{}
	}
	return sc.vals
}

// masks carves one cleared bitset.Words mask per requested universe
// size out of the shared arena.
func (sc *vecScratch) masks(sizes []int) []bitset.Words {
	total := 0
	for _, n := range sizes {
		total += bitset.WordsLen(n)
	}
	if cap(sc.arena) < total {
		sc.arena = make([]uint64, total)
	}
	sc.arena = sc.arena[:total]
	out := make([]bitset.Words, len(sizes))
	off := 0
	for i, n := range sizes {
		w := bitset.WordsLen(n)
		out[i] = bitset.Words(sc.arena[off : off+w])
		out[i].Clear()
		off += w
	}
	return out
}

// compileVec lowers a compiled plan onto the model's columnar
// backing. nil means some part of the shape could not be lowered and
// the caller must run the tuple-at-a-time interpreter (which also
// owns the error reporting for malformed residuals).
func (ev *evaluator) compileVec(cm ColumnarModel, p *Plan, env map[string]relation.Value) *vecPlan {
	v := &vecPlan{ev: ev, plan: p, vars: p.Vars}
	varIdx := make(map[string]int, len(p.Vars))
	for i, name := range p.Vars {
		varIdx[name] = i
	}
	firstBind := make([]int, len(p.Vars)) // step that first binds each var
	for i := range firstBind {
		firstBind[i] = -1
	}
	v.atoms = make([]vecAtom, len(p.Steps))
	for si := range p.Steps {
		a := &v.atoms[si]
		atom := p.Steps[si].Atom
		inst, visible, ok := cm.Backing(atom.Rel)
		if !ok || inst == nil {
			return nil
		}
		a.rel = atom.Rel
		a.inst, a.visible, a.n = inst, visible, inst.NumIDs()
		a.card = cm.Card(atom.Rel)
		a.cols = make([]relation.Col, len(atom.Args))
		for i := range atom.Args {
			a.cols[i] = inst.Col(i)
		}
		firstPosHere := make(map[int]int, len(atom.Args))
		for i, t := range atom.Args {
			switch x := t.(type) {
			case Const:
				a.probes = append(a.probes, vecProbe{pos: i, varIdx: -1, val: x.Value})
				a.sel = append(a.sel, vecProbe{pos: i, varIdx: -1, val: x.Value})
			case Var:
				vi, quantified := varIdx[x.Name]
				if !quantified {
					val, bound := env[x.Name]
					if !bound {
						// The interpreter owns the unbound-variable
						// error semantics; don't replicate them here.
						return nil
					}
					a.probes = append(a.probes, vecProbe{pos: i, varIdx: -1, val: val})
					a.sel = append(a.sel, vecProbe{pos: i, varIdx: -1, val: val})
					continue
				}
				if fp, repeat := firstPosHere[vi]; repeat {
					a.ops = append(a.ops, vecOp{pos: i, varIdx: vi})
					a.intraEq = append(a.intraEq, [2]int{i, fp})
					continue
				}
				firstPosHere[vi] = i
				if firstBind[vi] >= 0 {
					// Bound by an earlier step: a runtime probe and an
					// equality check in greedy order, a semijoin
					// constraint for Yannakakis.
					a.probes = append(a.probes, vecProbe{pos: i, varIdx: vi})
					a.ops = append(a.ops, vecOp{pos: i, varIdx: vi})
				} else {
					firstBind[vi] = si
					a.ops = append(a.ops, vecOp{pos: i, varIdx: vi, bind: true})
				}
				a.vars = append(a.vars, vi)
				a.varPos = append(a.varPos, i)
			default:
				return nil
			}
		}
		a.estBase = a.card
		for _, s := range a.sel {
			if est := a.inst.IndexEstimate(s.pos, s.val); est < a.estBase {
				a.estBase = est
			}
		}
	}

	// Residual classification.
	v.cmpsAt = make([][]vecCmp, len(v.atoms))
	var cross []vecCmp // all compiled cmps, for the Yannakakis planner
	for _, r := range p.Residual {
		c, ok := r.(Cmp)
		if !ok {
			v.complex = append(v.complex, r)
			continue
		}
		operand := func(t Term) (vecOperand, int, bool) {
			switch x := t.(type) {
			case Const:
				return vecOperand{varIdx: -1, val: x.Value}, -1, true
			case Var:
				if vi, quantified := varIdx[x.Name]; quantified {
					return vecOperand{varIdx: vi}, firstBind[vi], true
				}
				if val, bound := env[x.Name]; bound {
					return vecOperand{varIdx: -1, val: val}, -1, true
				}
				return vecOperand{}, 0, false
			}
			return vecOperand{}, 0, false
		}
		l, ls, lok := operand(c.L)
		r2, rs, rok := operand(c.R)
		if !lok || !rok {
			// An unbound non-quantified variable: the interpreter's
			// residual evaluation reports it.
			v.complex = append(v.complex, r)
			continue
		}
		step := ls
		if rs > step {
			step = rs
		}
		vc := vecCmp{op: c.Op, l: l, r: r2}
		if step < 0 {
			// Fully known now: fold.
			if !cmpHolds(vc.op, vc.l.val, vc.r.val) {
				v.constFalse = true
			}
			continue
		}
		v.cmpsAt[step] = append(v.cmpsAt[step], vc)
		cross = append(cross, vc)
	}

	v.compileYan(cross)
	v.compileWcoj(cross)
	v.chooseExecutor()
	return v
}

// chooseExecutor compares the cost of the two vectorized executors.
// Greedy cost models the nested-loop product: each step runs once per
// surviving outer binding and yields EstRows candidates. Yannakakis
// cost is linear in the base candidates of each atom (every reduction
// pass re-walks them). Ties go to Yannakakis: its passes are tight
// column loops with no per-binding bookkeeping.
func (v *vecPlan) chooseExecutor() {
	const costCap = 1 << 40
	prod, gCost := 1, 0
	for _, s := range v.plan.Steps {
		gCost += prod * s.EstRows
		if gCost > costCap {
			gCost = costCap
			break
		}
		if s.EstRows > 0 {
			prod *= s.EstRows
		}
		if prod > costCap {
			prod = costCap
		}
	}
	yCost := 0
	for i := range v.atoms {
		yCost += v.atoms[i].estBase
		if yCost > costCap {
			yCost = costCap
			break
		}
	}
	v.greedyCost, v.yanCost = gCost, yCost
	v.useYan = v.yan != nil && !v.ev.greedyOnly && yCost <= gCost
	// The generic join's work is likewise dominated by the per-atom base
	// candidates (each level's intersections only shrink them), so it
	// shares the linear cost estimate. compileWcoj only attaches a plan
	// when compileYan declined, so the two never compete.
	v.wcojCost = yCost
	v.useWcoj = v.wcoj != nil && !v.ev.greedyOnly && yCost <= gCost
}

// runVec executes the vectorized plan, mirroring runPlan's shadowing
// of outer bindings. exec may be nil (no stats collection).
func (ev *evaluator) runVec(v *vecPlan, exec *PlanExec, env map[string]relation.Value) (bool, error) {
	if v.constFalse {
		if exec != nil {
			exec.Executor = ExecGreedyVec
		}
		return false, nil
	}
	shadowed := shadowVars(env, v.vars)
	sc := vecScratchPool.Get().(*vecScratch)
	vals := sc.bindings(len(v.vars))
	var res bool
	var err error
	if v.useYan {
		if exec != nil {
			exec.Executor = ExecYannakakis
			exec.YanCost, exec.GreedyCost = v.yanCost, v.greedyCost
			exec.Batch = make([]BatchStat, len(v.atoms))
		}
		res, err = v.runYan(sc, exec, vals, env)
	} else if v.useWcoj {
		if exec != nil {
			exec.Executor = ExecWCOJ
			exec.WcojCost, exec.GreedyCost = v.wcojCost, v.greedyCost
			exec.Batch = make([]BatchStat, len(v.atoms))
		}
		res, err = v.runWcoj(sc, exec, vals, env)
	} else {
		if exec != nil {
			exec.Executor = ExecGreedyVec
			exec.YanCost, exec.GreedyCost = v.yanCost, v.greedyCost
			exec.Batch = make([]BatchStat, len(v.atoms))
		}
		res, err = v.stepGreedy(0, sc, exec, vals, env)
	}
	vecScratchPool.Put(sc)
	unshadowVars(env, shadowed)
	return res, err
}

// stepGreedy is the vectorized nested-loop join: the plan's step
// order, candidate IDs from raw index postings (or a full ID range),
// bindings in the flat array, comparisons checked the moment their
// operands are bound. Short-circuits on the first satisfying binding.
func (v *vecPlan) stepGreedy(si int, sc *vecScratch, exec *PlanExec, vals []relation.Value, env map[string]relation.Value) (bool, error) {
	if si == len(v.atoms) {
		return v.finish(vals, env)
	}
	a := &v.atoms[si]
	cmps := v.cmpsAt[si]

	// Pick the shortest posting among the positions with a value in
	// hand; fall back to the full ID range when none exist.
	probeIdx := -1
	var posting []relation.TupleID
	for k := range a.probes {
		pr := &a.probes[k]
		val := pr.val
		if pr.varIdx >= 0 {
			val = vals[pr.varIdx]
		}
		ids := a.inst.PostingIDs(pr.pos, val)
		if probeIdx < 0 || len(ids) < len(posting) {
			probeIdx, posting = k, ids
		}
	}
	if exec != nil {
		exec.Batch[si].Batches++
	}

	tryID := func(id relation.TupleID) (bool, error) {
		if err := v.ev.tick(); err != nil {
			return false, err
		}
		if exec != nil {
			exec.ActRows[si]++
			exec.Batch[si].IDs++
		}
		for k := range a.probes {
			if k == probeIdx {
				continue // the posting already guarantees equality
			}
			pr := &a.probes[k]
			val := pr.val
			if pr.varIdx >= 0 {
				val = vals[pr.varIdx]
			}
			if !a.cols[pr.pos].Equals(id, val) {
				return false, nil
			}
		}
		for k := range a.ops {
			op := &a.ops[k]
			if op.bind {
				vals[op.varIdx] = a.cols[op.pos].Value(id)
			} else if !a.cols[op.pos].Equals(id, vals[op.varIdx]) {
				return false, nil
			}
		}
		for _, c := range cmps {
			if !c.holds(vals) {
				return false, nil
			}
		}
		if exec != nil {
			exec.Batch[si].Out++
		}
		return v.stepGreedy(si+1, sc, exec, vals, env)
	}

	if probeIdx >= 0 {
		for _, id := range posting {
			if id >= a.n {
				break // appended by a newer version of the chain
			}
			if !a.visibleID(id) {
				continue
			}
			found, err := tryID(id)
			if err != nil || found {
				return found, err
			}
		}
		return false, nil
	}
	for id := 0; id < a.n; id++ {
		if !a.visibleID(id) {
			continue
		}
		found, err := tryID(id)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

// finish runs the residuals the vector runtime cannot express, under
// a real environment built from the flat bindings — only for rows
// that survived every vectorized check. With an emit hook attached,
// a surviving binding is handed to the hook instead of ending the
// search: the hook's result decides whether to stop.
func (v *vecPlan) finish(vals []relation.Value, env map[string]relation.Value) (bool, error) {
	if len(v.complex) > 0 {
		for i, name := range v.vars {
			env[name] = vals[i]
		}
		res := true
		var err error
		for _, c := range v.complex {
			var ok bool
			ok, err = v.ev.eval(c, env)
			if err != nil || !ok {
				res = false
				break
			}
		}
		for _, name := range v.vars {
			delete(env, name)
		}
		if err != nil || !res {
			return false, err
		}
	}
	if v.emit != nil {
		return v.emit(vals)
	}
	return true, nil
}

// shadowVars hides the quantifier's variables from the environment
// for the duration of a plan run, returning the saved outer bindings.
func shadowVars(env map[string]relation.Value, vars []string) []savedBinding {
	var shadowed []savedBinding
	for _, v := range vars {
		if val, ok := env[v]; ok {
			shadowed = append(shadowed, savedBinding{v, val})
			delete(env, v)
		}
	}
	return shadowed
}

func unshadowVars(env map[string]relation.Value, shadowed []savedBinding) {
	for _, s := range shadowed {
		env[s.name] = s.val
	}
}

type savedBinding struct {
	name string
	val  relation.Value
}
