package query

import (
	"fmt"
	"math/rand"
	"testing"

	"prefcqa/internal/relation"
)

// randModel builds a random two-relation database model.
func randModel(rng *rand.Rand) Model {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B")))
	for i := 0; i < 2+rng.Intn(6); i++ {
		r.MustInsert(rng.Intn(3), rng.Intn(3))
	}
	s := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("C"), relation.NameAttr("D")))
	for i := 0; i < 2+rng.Intn(4); i++ {
		s.MustInsert(rng.Intn(3), fmt.Sprintf("n%d", rng.Intn(2)))
	}
	if err := db.AddInstance(r); err != nil {
		panic(err)
	}
	if err := db.AddInstance(s); err != nil {
		panic(err)
	}
	return DBModel{DB: db}
}

// randFormula generates closed random formulas exercising the join
// path: quantified conjunctions over R and S with comparisons,
// negated atoms, disjunctive residuals and nested quantifiers.
func randFormula(rng *rand.Rand, vars []string, depth int) Expr {
	mkTerm := func() Term {
		if len(vars) > 0 && rng.Intn(3) != 0 {
			return Var{Name: vars[rng.Intn(len(vars))]}
		}
		return Const{Value: relation.Int(int64(rng.Intn(3)))}
	}
	mkAtom := func() Expr {
		if rng.Intn(2) == 0 {
			return Atom{Rel: "R", Args: []Term{mkTerm(), mkTerm()}}
		}
		// S's second column is a name; use a name constant or var.
		var second Term
		if len(vars) > 0 && rng.Intn(2) == 0 {
			second = Var{Name: vars[rng.Intn(len(vars))]}
		} else {
			second = Const{Value: relation.Name(fmt.Sprintf("n%d", rng.Intn(2)))}
		}
		return Atom{Rel: "S", Args: []Term{mkTerm(), second}}
	}
	switch {
	case depth == 0:
		switch rng.Intn(3) {
		case 0:
			return mkAtom()
		case 1:
			ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
			return Cmp{Op: ops[rng.Intn(len(ops))], L: mkTerm(), R: mkTerm()}
		default:
			return Not{Body: mkAtom()}
		}
	case rng.Intn(4) == 0:
		// Quantifier introducing 1-2 fresh variables.
		k := 1 + rng.Intn(2)
		fresh := make([]string, k)
		for i := range fresh {
			fresh[i] = fmt.Sprintf("v%d_%d", depth, i)
		}
		inner := append(append([]string(nil), vars...), fresh...)
		// Bias the body toward conjunctions containing atoms over the
		// fresh variables so the join path triggers.
		var body Expr = Atom{Rel: "R", Args: []Term{
			Var{Name: fresh[0]},
			Var{Name: fresh[len(fresh)-1]},
		}}
		body = And{L: body, R: randFormula(rng, inner, depth-1)}
		return Quant{All: rng.Intn(4) == 0, Vars: fresh, Body: body}
	case rng.Intn(3) == 0:
		return Or{L: randFormula(rng, vars, depth-1), R: randFormula(rng, vars, depth-1)}
	case rng.Intn(2) == 0:
		return And{L: randFormula(rng, vars, depth-1), R: randFormula(rng, vars, depth-1)}
	default:
		return Not{Body: randFormula(rng, vars, depth-1)}
	}
}

// closeFormula existentially quantifies any free variables.
func closeFormula(e Expr) Expr {
	fv := FreeVars(e)
	if len(fv) == 0 {
		return e
	}
	return Quant{Vars: fv, Body: e}
}

// TestJoinAgainstNaive differentially tests the join evaluator
// against pure active-domain iteration on random formulas and random
// models.
func TestJoinAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for iter := 0; iter < 400; iter++ {
		m := randModel(rng)
		q := closeFormula(randFormula(rng, nil, 3))
		fast, errFast := Eval(q, m)
		slow, errSlow := EvalNaive(q, m)
		if (errFast == nil) != (errSlow == nil) {
			t.Fatalf("iter %d: error mismatch fast=%v slow=%v for %s", iter, errFast, errSlow, q)
		}
		if errFast != nil {
			continue
		}
		if fast != slow {
			t.Fatalf("iter %d: join=%v naive=%v for %s", iter, fast, slow, q)
		}
	}
}

func TestJoinPaperQueries(t *testing.T) {
	inst := mgrInstance(t)
	m := InstanceModel{Inst: inst}
	queries := []struct {
		src  string
		want bool
	}{
		{`EXISTS x1, y1, z1, x2, y2, z2 .
			Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`, true},
		{`EXISTS x1, y1, z1, x2, y2, z2 .
			Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`, true},
		{"FORALL n, d, s, r . NOT Mgr(n, d, s, r) OR s >= 10", true},
		{"FORALL n, d, s, r . NOT Mgr(n, d, s, r) OR s >= 20", false},
		// Residual disjunction and negated atom inside the spine.
		{`EXISTS n, d, s, r . Mgr(n, d, s, r) AND (s > 35 OR r > 3) AND NOT Mgr('Bob', d, s, r)`, true},
	}
	for _, c := range queries {
		got, err := Eval(MustParse(c.src), m)
		if err != nil {
			t.Fatalf("Eval(%q): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
		naive, err := EvalNaive(MustParse(c.src), m)
		if err != nil || naive != got {
			t.Errorf("naive disagrees on %q: %v vs %v (%v)", c.src, naive, got, err)
		}
	}
}

// TestJoinFallbackVariableOnlyInResidual: variables appearing only in
// comparisons must still be quantified over the domain.
func TestJoinFallbackVariableOnlyInResidual(t *testing.T) {
	inst := mgrInstance(t)
	m := InstanceModel{Inst: inst}
	// x occurs only in a comparison; the join path must decline.
	got, err := Eval(MustParse("EXISTS x . x = 40"), m)
	if err != nil || !got {
		t.Fatalf("Eval = %v, %v", got, err)
	}
	// Mixed: n bound by atom, x only in comparison.
	got, err = Eval(MustParse("EXISTS n, d, s, r, x . Mgr(n, d, s, r) AND x > s AND x < 21"), m)
	if err != nil || !got {
		t.Fatalf("Eval = %v, %v (20 > s=10 exists)", got, err)
	}
}

func TestJoinSharedVariableInAtom(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 2)
	inst.MustInsert(3, 3)
	m := InstanceModel{Inst: inst}
	// R(x, x) must match only (3,3).
	got, err := Eval(MustParse("EXISTS x . R(x, x)"), m)
	if err != nil || !got {
		t.Fatalf("R(x,x) = %v, %v", got, err)
	}
	got, err = Eval(MustParse("EXISTS x . R(x, x) AND x = 1"), m)
	if err != nil || got {
		t.Fatalf("R(x,x) AND x=1 = %v, %v", got, err)
	}
}

func TestJoinErrors(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	if _, err := Eval(MustParse("EXISTS a, b, c, d . Nope(a, b, c, d)"), m); err == nil {
		t.Fatal("unknown relation through join path should error")
	}
	if _, err := Eval(MustParse("EXISTS x . Mgr(x)"), m); err == nil {
		t.Fatal("arity mismatch through join path should error")
	}
}

func BenchmarkEvalJoinVsNaive(b *testing.B) {
	inst := mgrInstanceB(b)
	m := InstanceModel{Inst: inst}
	q := MustParse(`EXISTS x1, y1, z1, x2, y2, z2 .
		Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`)
	b.Run("join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v, err := Eval(q, m); err != nil || !v {
				b.Fatal(v, err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v, err := EvalNaive(q, m); err != nil || !v {
				b.Fatal(v, err)
			}
		}
	})
}

func mgrInstanceB(b *testing.B) *relation.Instance {
	b.Helper()
	s := relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
	inst := relation.NewInstance(s)
	inst.MustInsert("Mary", "R&D", 40, 3)
	inst.MustInsert("John", "R&D", 10, 2)
	inst.MustInsert("Mary", "IT", 20, 1)
	inst.MustInsert("John", "PR", 30, 4)
	return inst
}
