package query

import (
	"fmt"
	"strings"

	"prefcqa/internal/relation"
)

// Cost-based planning for existential quantifiers.
//
// An EXISTS whose body flattens into a conjunction with relational
// atoms covering every quantified variable is answered by embedding
// the atoms into the model's tuples: each satisfying assignment must
// match the atoms, so enumerating matching tuples enumerates exactly
// the candidate bindings — no |domain|^k iteration. This file turns
// that observation into a physical plan:
//
//   - Access-path selection. An atom argument whose value is known
//     when the atom runs (a constant, or a variable bound by the
//     environment or an earlier step) can be answered by an equality
//     probe of the relation's secondary index instead of a scan,
//     when the model supports it (IndexedModel).
//   - Join ordering. Steps are ordered greedily by estimated
//     candidate rows — exact posting lengths for values known at
//     plan time, heuristic fractions of the relation cardinality
//     for values bound at run time — so selective atoms run first
//     and shrink the backtracking product.
//   - Residual placement. Conjuncts that are not positive relational
//     atoms (comparisons, negated atoms, disjunctions, nested
//     quantifiers) are evaluated once under the completed binding.
//
// Plans compile against the live environment, so estimates use the
// actual probe values; the executor re-picks the cheapest probe
// attribute per step invocation from the values bound at that moment.
// Evaluation results are identical to pure active-domain iteration
// (EvalNaive) — pinned by differential and property tests.

// AccessPath says how a plan step locates its candidate tuples.
type AccessPath int

const (
	// AccessScan iterates every visible tuple of the relation.
	AccessScan AccessPath = iota
	// AccessIndex probes a secondary index with an equality value.
	AccessIndex
)

// String renders "scan" or "index".
func (a AccessPath) String() string {
	if a == AccessIndex {
		return "index"
	}
	return "scan"
}

// PlanStep is one atom of the join in execution order.
type PlanStep struct {
	Atom Atom
	// Access is the access path chosen at plan time. AccessIndex with
	// Attr >= 0 probes that attribute with a value known at plan
	// time; Attr < 0 defers the probe-attribute choice to run time
	// (the value comes from a variable bound by an earlier step).
	Access AccessPath
	Attr   int
	// AttrName is the schema name of Attr, for rendering.
	AttrName string
	// EstRows is the planner's estimate of candidate rows per
	// invocation: a posting length when the probe value is known, a
	// cardinality fraction otherwise.
	EstRows int
	// Binds lists the quantified variables first bound by this step.
	Binds []string
}

// Plan is the compiled physical plan of one existential quantifier.
type Plan struct {
	Vars     []string
	Steps    []PlanStep
	Residual []Expr
	// Indexed records whether the model offered index access paths
	// (false means every step scans regardless of Access hints).
	Indexed bool
	// Unsat marks a plan proven empty at compile time: some atom
	// carries a value of the wrong domain (a name where the schema
	// says int, or vice versa), so no tuple can ever match. The
	// executor returns false without touching the model.
	Unsat bool
}

// Executor names, recorded per executed plan so ExplainPlan shows
// which runtime answered the quantifier.
const (
	// ExecTuple is the tuple-at-a-time interpreter: per-row binding
	// maps and materialized tuples (scan-only models, and shapes the
	// vector compiler cannot lower).
	ExecTuple = "tuple-at-a-time"
	// ExecGreedyVec is the vectorized nested-loop join in greedy
	// selectivity order: tuple-ID batches from index postings, flat
	// binding arrays, no per-row allocation.
	ExecGreedyVec = "vectorized-greedy"
	// ExecYannakakis is the semijoin-reduction executor for acyclic
	// multi-atom queries.
	ExecYannakakis = "yannakakis"
	// ExecWCOJ is the worst-case-optimal (generic) join for cyclic
	// multi-atom spines: one variable at a time, each candidate value
	// confirmed by intersecting sorted per-attribute postings across
	// every atom containing the variable.
	ExecWCOJ = "wcoj"
)

// BatchStat is the operator-level accounting of one plan step under a
// vectorized executor. Batches counts access-path invocations (probe
// batches, or reduction passes touching the atom under Yannakakis);
// IDs counts candidate tuple IDs inspected after visibility
// filtering; Out counts rows surviving the step's selections (greedy)
// or the full semijoin reduction (Yannakakis); Base is the
// Yannakakis base-candidate count before reduction, so Out/Base is
// the semijoin reduction ratio.
type BatchStat struct {
	Batches int
	IDs     int
	Base    int
	Out     int
}

// WcojVarStat is the per-variable accounting of one generic-join
// execution, in variable resolution order: Atoms is how many atoms
// constrain the variable, Values how many candidate values the seed
// atom proposed, Probes how many posting lookups the multiway
// intersection issued, and Matches how many values survived every
// intersection. Values >> Matches means the intersection is doing the
// pruning a binary join plan would have paid for with intermediate
// results.
type WcojVarStat struct {
	Var     string
	Atoms   int
	Values  int
	Probes  int
	Matches int
}

// PlanExec pairs a plan with its runtime row counts: ActRows[i] is
// the total number of candidate tuples step i's access path yielded,
// summed over every invocation (inner steps run once per outer
// binding). Counts reflect the executed portion only — an EXISTS
// short-circuits on its first satisfying binding, so actual rows can
// undershoot an accurate estimate. Executor records which runtime
// ran; Batch carries the per-step operator stats of the vectorized
// executors (nil on the tuple-at-a-time path), and YanCost/GreedyCost
// the planner's cost estimates behind the executor choice.
type PlanExec struct {
	Plan       *Plan
	ActRows    []int
	Executor   string
	Batch      []BatchStat
	YanCost    int
	GreedyCost int
	// WcojCost is the generic join's cost estimate (base candidates,
	// like YanCost) and Wcoj its per-variable intersection stats — both
	// populated only when Executor is ExecWCOJ.
	WcojCost int
	Wcoj     []WcojVarStat
}

// Trace collects the executed plans of one evaluation, in the order
// the planner ran them, for EXPLAIN-style diagnostics.
type Trace struct {
	Execs []*PlanExec
}

// String renders the plan, one step per line.
func (p *Plan) String() string { return p.describe(nil) }

// Describe renders the plan with actual row counts next to the
// estimates, the executor that ran it, and — for the vectorized
// executors — per-step batch stats and semijoin reduction ratios.
func (e *PlanExec) Describe() string { return e.Plan.describeExec(e.ActRows, e) }

func (p *Plan) describe(act []int) string { return p.describeExec(act, nil) }

func (p *Plan) describeExec(act []int, exec *PlanExec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXISTS %s", strings.Join(p.Vars, ", "))
	if !p.Indexed {
		b.WriteString(" [scan-only model]")
	}
	if p.Unsat {
		b.WriteString(" [unsatisfiable: kind mismatch]")
	}
	if exec != nil && exec.Executor != "" {
		fmt.Fprintf(&b, " [exec %s", exec.Executor)
		switch exec.Executor {
		case ExecGreedyVec, ExecYannakakis:
			fmt.Fprintf(&b, "; cost yannakakis %d vs greedy %d", exec.YanCost, exec.GreedyCost)
		case ExecWCOJ:
			fmt.Fprintf(&b, "; cost wcoj %d vs greedy %d", exec.WcojCost, exec.GreedyCost)
		}
		b.WriteString("]")
	}
	for i, s := range p.Steps {
		fmt.Fprintf(&b, "\n  %d. %s  ", i+1, s.Atom)
		switch {
		case s.Access == AccessIndex && s.Attr >= 0:
			fmt.Fprintf(&b, "index(%s=%s)", s.AttrName, s.Atom.Args[s.Attr])
		case s.Access == AccessIndex:
			b.WriteString("index(runtime-bound)")
		default:
			b.WriteString("scan")
		}
		fmt.Fprintf(&b, "  est %d", s.EstRows)
		if act != nil {
			fmt.Fprintf(&b, " act %d", act[i])
		}
		if exec != nil && exec.Batch != nil && i < len(exec.Batch) {
			bs := exec.Batch[i]
			fmt.Fprintf(&b, "  [batches %d ids %d", bs.Batches, bs.IDs)
			switch exec.Executor {
			case ExecYannakakis:
				fmt.Fprintf(&b, " base %d semijoin→%d", bs.Base, bs.Out)
				if bs.Base > 0 {
					fmt.Fprintf(&b, " (%.0f%%)", 100*float64(bs.Out)/float64(bs.Base))
				}
			case ExecWCOJ:
				fmt.Fprintf(&b, " base %d", bs.Base)
			default:
				fmt.Fprintf(&b, " out %d", bs.Out)
			}
			b.WriteString("]")
		}
		if len(s.Binds) > 0 {
			fmt.Fprintf(&b, "  binds %s", strings.Join(s.Binds, ", "))
		}
	}
	if exec != nil {
		for _, ws := range exec.Wcoj {
			fmt.Fprintf(&b, "\n  wcoj %s: atoms %d values %d probes %d matches %d",
				ws.Var, ws.Atoms, ws.Values, ws.Probes, ws.Matches)
		}
	}
	for _, r := range p.Residual {
		fmt.Fprintf(&b, "\n  residual: %s", r)
	}
	return b.String()
}

// flattenAnd returns the conjuncts of an And-tree.
func flattenAnd(e Expr) []Expr {
	if a, ok := e.(And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []Expr{e}
}

// unknownCard stands in for the cardinality of a relation when the
// model cannot report one; only relative order matters.
const unknownCard = 1 << 20

// compileExists builds the physical plan for an existential
// quantifier. ok=false means the shape is unsupported (no positive
// atoms, or a quantified variable occurs only in residual conjuncts)
// and the caller must fall back to active-domain iteration.
func (ev *evaluator) compileExists(q Quant, env map[string]relation.Value) (*Plan, bool, error) {
	conjs := flattenAnd(q.Body)
	quantified := make(map[string]bool, len(q.Vars))
	for _, v := range q.Vars {
		quantified[v] = true
	}
	var atoms []Atom
	var residual []Expr
	covered := map[string]bool{}
	for _, c := range conjs {
		a, ok := c.(Atom)
		if !ok {
			residual = append(residual, c)
			continue
		}
		atoms = append(atoms, a)
		for _, t := range a.Args {
			if v, isVar := t.(Var); isVar && quantified[v.Name] {
				covered[v.Name] = true
			}
		}
	}
	if len(atoms) == 0 {
		return nil, false, nil
	}
	for _, v := range q.Vars {
		if !covered[v] {
			// A variable occurring only in residual conjuncts needs
			// domain iteration.
			return nil, false, nil
		}
	}
	im, indexed := ev.m.(IndexedModel)
	plan := &Plan{Vars: q.Vars, Residual: residual, Indexed: indexed}
	for _, a := range atoms {
		schema, ok := ev.m.Schema(a.Rel)
		if !ok {
			return nil, false, errUnknownRelation(a.Rel)
		}
		if len(a.Args) != schema.Arity() {
			return nil, false, errArity(a.Rel, schema.Arity(), len(a.Args))
		}
		// A value of the wrong domain — a constant, or an outer
		// binding of a non-quantified variable — proves the whole
		// conjunction empty at compile time.
		for i, t := range a.Args {
			var val relation.Value
			switch x := t.(type) {
			case Const:
				val = x.Value
			case Var:
				if quantified[x.Name] {
					continue
				}
				v, ok := env[x.Name]
				if !ok {
					continue
				}
				val = v
			default:
				continue
			}
			if val.Kind() != schema.Attr(i).Kind {
				plan.Unsat = true
				plan.Steps = append(plan.Steps, PlanStep{Atom: a, Access: AccessScan, Attr: -1})
				return plan, true, nil
			}
		}
	}
	bound := make(map[string]bool) // quantified vars bound by chosen steps
	remaining := atoms
	for len(remaining) > 0 {
		best := 0
		var bestStep PlanStep
		for i, a := range remaining {
			step := ev.estimateStep(a, env, quantified, bound, im)
			if i == 0 || step.EstRows < bestStep.EstRows {
				best, bestStep = i, step
			}
		}
		for _, t := range bestStep.Atom.Args {
			if v, isVar := t.(Var); isVar && quantified[v.Name] && !bound[v.Name] {
				bound[v.Name] = true
				bestStep.Binds = append(bestStep.Binds, v.Name)
			}
		}
		plan.Steps = append(plan.Steps, bestStep)
		remaining = append(remaining[:best:best], remaining[best+1:]...)
	}
	return plan, true, nil
}

// estimateStep picks an access path and row estimate for one atom
// given the variables bound so far. Values known at plan time
// (constants and environment bindings) yield exact index estimates;
// variables bound by earlier steps probe at run time and get a
// heuristic fraction of the relation's cardinality; anything else
// scans.
func (ev *evaluator) estimateStep(a Atom, env map[string]relation.Value, quantified, bound map[string]bool, im IndexedModel) PlanStep {
	card := unknownCard
	if im != nil {
		card = im.Card(a.Rel)
	}
	step := PlanStep{Atom: a, Access: AccessScan, Attr: -1, EstRows: card}
	schema, _ := ev.m.Schema(a.Rel)
	var runtimePos []int
	for i, t := range a.Args {
		var val relation.Value
		known := false
		switch x := t.(type) {
		case Const:
			val, known = x.Value, true
		case Var:
			// A quantified variable shadows any outer env binding:
			// its value is only known once an earlier step binds it.
			if quantified[x.Name] {
				if bound[x.Name] {
					runtimePos = append(runtimePos, i)
				}
			} else if v, ok := env[x.Name]; ok {
				val, known = v, true
			}
		}
		if !known {
			continue
		}
		// Kind-mismatched known values were rejected at compile time
		// (Plan.Unsat), so val matches the attribute's domain here.
		if im == nil {
			// No index: a known value still filters the scan's output;
			// reward it so selective atoms run early.
			if est := card/4 + 1; est < step.EstRows {
				step.EstRows = est
			}
			continue
		}
		if est := im.EstimateEq(a.Rel, i, val); step.Access != AccessIndex || est < step.EstRows {
			step.Access, step.Attr, step.AttrName, step.EstRows = AccessIndex, i, schema.Attr(i).Name, est
		}
	}
	if step.Access == AccessScan && len(runtimePos) > 0 {
		// The probe value arrives when an earlier step binds the
		// variable; the executor picks the attribute then. With a
		// columnar backing, the distinct-value count of the probe
		// attribute turns the guess into card/distinct — the average
		// posting length — which is what the Yannakakis-vs-greedy cost
		// choice needs to be sharp about.
		est := card/2 + 1
		if im != nil {
			step.Access = AccessIndex
			if cm, ok := im.(ColumnarModel); ok {
				if inst, _, ok := cm.Backing(a.Rel); ok && inst != nil {
					for _, i := range runtimePos {
						if d := inst.DistinctEstimate(i); d > 0 {
							if e := card/d + 1; e < est {
								est = e
							}
						}
					}
				}
			}
		}
		if est < step.EstRows {
			step.EstRows = est
		}
	}
	return step
}

// runPlan executes the plan under env, extending it with bindings for
// the quantified variables. Outer bindings shadowed by the quantifier
// are hidden for the duration of the run, matching active-domain
// quantifier semantics. exec may be nil (no stats collection).
func (ev *evaluator) runPlan(p *Plan, exec *PlanExec, env map[string]relation.Value) (bool, error) {
	if p.Unsat {
		return false, nil
	}
	shadowed := shadowVars(env, p.Vars)
	res, err := ev.runStep(p, exec, 0, env)
	unshadowVars(env, shadowed)
	return res, err
}

func (ev *evaluator) runStep(p *Plan, exec *PlanExec, si int, env map[string]relation.Value) (bool, error) {
	if si == len(p.Steps) {
		for _, c := range p.Residual {
			v, err := ev.eval(c, env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	}
	a := p.Steps[si].Atom
	found := false
	var loopErr error
	visit := func(t relation.Tuple) bool {
		if err := ev.tick(); err != nil {
			loopErr = err
			return false
		}
		if exec != nil {
			exec.ActRows[si]++
		}
		var boundNames []string
		match := true
		for i, term := range a.Args {
			switch x := term.(type) {
			case Const:
				if !x.Value.Equal(t[i]) {
					match = false
				}
			case Var:
				if val, has := env[x.Name]; has {
					if !val.Equal(t[i]) {
						match = false
					}
				} else if containsVar(p.Vars, x.Name) {
					env[x.Name] = t[i]
					boundNames = append(boundNames, x.Name)
				} else {
					// A variable that is neither bound nor quantified
					// here cannot occur in a well-formed evaluation.
					loopErr = errUnbound(x.Name)
					match = false
				}
			}
			if !match || loopErr != nil {
				break
			}
		}
		if match && loopErr == nil {
			res, err := ev.runStep(p, exec, si+1, env)
			if err != nil {
				loopErr = err
			} else if res {
				found = true
			}
		}
		for _, name := range boundNames {
			delete(env, name)
		}
		return !found && loopErr == nil
	}
	ev.iterateCandidates(p, si, env, visit)
	return found, loopErr
}

// iterateCandidates drives the step's access path: an index probe on
// the cheapest attribute whose value is bound right now, or a scan.
func (ev *evaluator) iterateCandidates(p *Plan, si int, env map[string]relation.Value, visit func(relation.Tuple) bool) {
	step := p.Steps[si]
	a := step.Atom
	if p.Indexed && step.Access == AccessIndex {
		im := ev.m.(IndexedModel)
		probeAttr, probeEst := -1, 0
		var probeVal relation.Value
		for i, term := range a.Args {
			var val relation.Value
			switch x := term.(type) {
			case Const:
				val = x.Value
			case Var:
				v, ok := env[x.Name]
				if !ok {
					continue
				}
				val = v
			}
			est := im.EstimateEq(a.Rel, i, val)
			if probeAttr < 0 || est < probeEst {
				probeAttr, probeEst, probeVal = i, est, val
			}
		}
		if probeAttr >= 0 && im.TuplesEq(a.Rel, probeAttr, probeVal, visit) {
			return
		}
	}
	ev.m.Tuples(a.Rel, visit)
}

func containsVar(vars []string, name string) bool {
	for _, v := range vars {
		if v == name {
			return true
		}
	}
	return false
}

// Error helpers shared with the naive evaluator.

func errUnknownRelation(rel string) error {
	return fmt.Errorf("query: unknown relation %q", rel)
}

func errArity(rel string, want, got int) error {
	return fmt.Errorf("query: %s expects %d arguments, got %d", rel, want, got)
}

func errUnbound(name string) error {
	return fmt.Errorf("query: unbound variable %s", name)
}
