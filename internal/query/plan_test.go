package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// TestPlanAccessPathSelection pins the planner's choices on a model
// where the right answer is unambiguous: a constant on a selective
// attribute must become an index probe, and the selective atom must
// run before the broad one.
func TestPlanAccessPathSelection(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V")))
	for i := 0; i < 100; i++ {
		r.MustInsert(i, i%4) // K unique, V dense
	}
	s := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("W"), relation.IntAttr("X")))
	for i := 0; i < 100; i++ {
		s.MustInsert(i%4, i)
	}
	if err := db.AddInstance(r); err != nil {
		t.Fatal(err)
	}
	if err := db.AddInstance(s); err != nil {
		t.Fatal(err)
	}
	m := DBModel{DB: db}

	// S(w, x) alone would scan; R(7, v) probes K=7 (1 row). The
	// planner must run R first and serve S's join attribute at run
	// time from the index.
	q := MustParse("EXISTS v, w, x . S(w, x) AND R(7, v) AND x = v")
	res, tr, err := EvalTrace(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if !res {
		t.Fatal("query should hold")
	}
	if len(tr.Execs) != 1 {
		t.Fatalf("want 1 executed plan, got %d", len(tr.Execs))
	}
	p := tr.Execs[0].Plan
	if len(p.Steps) != 2 {
		t.Fatalf("want 2 steps, got %d:\n%s", len(p.Steps), p)
	}
	if p.Steps[0].Atom.Rel != "R" {
		t.Errorf("selective atom R must run first:\n%s", p)
	}
	if p.Steps[0].Access != AccessIndex || p.Steps[0].Attr != 0 || p.Steps[0].EstRows != 1 {
		t.Errorf("step 1 should probe R.K with est 1:\n%s", p)
	}
	if p.Steps[0].AttrName != "K" {
		t.Errorf("step 1 attr name = %q, want K", p.Steps[0].AttrName)
	}
	// S has no plan-time value, but x is runtime-bound via the
	// residual... x appears only in a comparison, so S is scanned or
	// index-deferred depending on coverage; w and x are covered by S
	// itself. S's est must be its cardinality bound (scan) since no
	// S argument is bound before it runs.
	if p.Steps[1].Atom.Rel != "S" {
		t.Errorf("broad atom S must run second:\n%s", p)
	}
	// The residual comparison survives.
	if len(p.Residual) != 1 {
		t.Errorf("want 1 residual conjunct, got %v", p.Residual)
	}
	act := tr.Execs[0].ActRows
	if act[0] != 1 {
		t.Errorf("R probe yielded %d rows, want 1:\n%s", act[0], tr.Execs[0].Describe())
	}
}

// TestPlanJoinVariableProbe: a variable bound by the first step must
// turn the second step into a runtime index probe, not a scan.
func TestPlanJoinVariableProbe(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V")))
	r.MustInsert(7, 42)
	s := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("W"), relation.IntAttr("X")))
	for i := 0; i < 1000; i++ {
		s.MustInsert(i, i)
	}
	if err := db.AddInstance(r); err != nil {
		t.Fatal(err)
	}
	if err := db.AddInstance(s); err != nil {
		t.Fatal(err)
	}
	q := MustParse("EXISTS v, x . R(7, v) AND S(v, x)")
	res, tr, err := EvalTrace(q, DBModel{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !res {
		t.Fatal("query should hold: R(7,42), S(42,42)")
	}
	p := tr.Execs[0]
	if p.Plan.Steps[1].Access != AccessIndex {
		t.Errorf("S step should be a runtime index probe:\n%s", p.Describe())
	}
	// The probe on S.W = 42 must touch ~1 row, not 1000.
	if p.ActRows[1] > 2 {
		t.Errorf("S probe yielded %d rows, want <= 2:\n%s", p.ActRows[1], p.Describe())
	}
}

// planRandInstance builds a mutable random instance pair for the
// differential tests.
func planRandInstances(rng *rand.Rand) (*relation.Instance, *relation.Instance) {
	r := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B")))
	for i := 0; i < 2+rng.Intn(8); i++ {
		r.MustInsert(rng.Intn(3), rng.Intn(3))
	}
	s := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("C"), relation.NameAttr("D")))
	for i := 0; i < 2+rng.Intn(5); i++ {
		s.MustInsert(rng.Intn(3), fmt.Sprintf("n%d", rng.Intn(2)))
	}
	return r, s
}

func modelOf(r, s *relation.Instance) Model {
	db := relation.NewDatabase()
	if err := db.AddInstance(r); err != nil {
		panic(err)
	}
	if err := db.AddInstance(s); err != nil {
		panic(err)
	}
	return DBModel{DB: db}
}

// checkAgree evaluates the formula on all three evaluator modes and
// fails on any disagreement.
func checkAgree(t *testing.T, tag string, q Expr, m Model) {
	t.Helper()
	planned, errP := Eval(q, m)
	scan, errS := EvalScan(q, m)
	naive, errN := EvalNaive(q, m)
	if (errP == nil) != (errN == nil) || (errS == nil) != (errN == nil) {
		t.Fatalf("%s: error mismatch planned=%v scan=%v naive=%v for %s", tag, errP, errS, errN, q)
	}
	if errP != nil {
		return
	}
	if planned != naive || scan != naive {
		t.Fatalf("%s: planned=%v scan=%v naive=%v for %s", tag, planned, scan, naive, q)
	}
}

// TestPlannedAgainstNaiveUnderMutation differentially tests the
// planner — indexed and scan-only — against active-domain iteration,
// on random formulas over instances that keep mutating (so postings
// carry tombstones and stale entries) and across snapshot forks.
func TestPlannedAgainstNaiveUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1202))
	for iter := 0; iter < 120; iter++ {
		r, s := planRandInstances(rng)
		m := modelOf(r, s)
		q := closeFormula(randFormula(rng, nil, 3))
		checkAgree(t, "fresh", q, m)

		// A mutation batch: random deletes and inserts, with the index
		// warm from the evaluation above.
		for j := 0; j < 4; j++ {
			if rng.Intn(2) == 0 && r.NumIDs() > 0 {
				r.Delete(relation.TupleID(rng.Intn(r.NumIDs())))
			} else {
				r.MustInsert(rng.Intn(3), rng.Intn(3))
			}
			if rng.Intn(3) == 0 {
				s.MustInsert(rng.Intn(3), fmt.Sprintf("n%d", rng.Intn(2)))
			}
		}
		checkAgree(t, "mutated", q, m)

		// Snapshot semantics: fork both relations, mutate the children,
		// and require the frozen parents to answer as before while the
		// children answer like their own naive evaluation.
		wantParent, errParent := EvalNaive(q, m)
		r2, s2 := r.Fork(), s.Fork()
		m2 := modelOf(r2, s2)
		for j := 0; j < 3; j++ {
			r2.MustInsert(rng.Intn(3), rng.Intn(3))
			if r2.NumIDs() > 0 && rng.Intn(2) == 0 {
				r2.Delete(relation.TupleID(rng.Intn(r2.NumIDs())))
			}
		}
		checkAgree(t, "fork-child", q, m2)
		if errParent == nil {
			gotParent, err := Eval(q, m)
			if err != nil || gotParent != wantParent {
				t.Fatalf("snapshot drift: parent=%v (err %v), want %v for %s", gotParent, err, wantParent, q)
			}
		}
	}
}

// TestPlannedOnSubsetModels runs the differential check on repair-like
// views: random subsets of a shared instance, where index candidates
// must be filtered by subset membership.
func TestPlannedOnSubsetModels(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 80; iter++ {
		inst := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B")))
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			inst.MustInsert(rng.Intn(4), rng.Intn(4))
		}
		ids := bitset.New(inst.NumIDs())
		inst.Range(func(id relation.TupleID, _ relation.Tuple) bool {
			if rng.Intn(2) == 0 {
				ids.Add(id)
			}
			return true
		})
		m := SubsetModel{Inst: inst, IDs: ids}
		q := closeFormula(randFormula(rng, nil, 2))
		// The generator also emits S atoms; the single-relation model
		// would answer them with an unknown-relation error whose
		// timing legitimately differs between evaluation strategies.
		mentionsS := false
		for _, a := range Atoms(q) {
			if a.Rel == "S" {
				mentionsS = true
				break
			}
		}
		if mentionsS {
			continue
		}
		checkAgree(t, "subset", q, m)
	}
}

// TestScanOnlyHidesIndexes: the wrapper must strip the IndexedModel
// capability and be idempotent.
func TestScanOnlyHidesIndexes(t *testing.T) {
	inst := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A")))
	inst.MustInsert(1)
	var m Model = InstanceModel{Inst: inst}
	if _, ok := m.(IndexedModel); !ok {
		t.Fatal("InstanceModel should be an IndexedModel")
	}
	w := ScanOnly(m)
	if _, ok := w.(IndexedModel); ok {
		t.Fatal("ScanOnly wrapper must not be an IndexedModel")
	}
	if ScanOnly(w) != w {
		t.Fatal("ScanOnly should be idempotent")
	}
	res, tr, err := EvalTrace(MustParse("EXISTS x . R(x)"), w)
	if err != nil || !res {
		t.Fatalf("Eval on scan-only model = %v, %v", res, err)
	}
	if len(tr.Execs) != 1 || tr.Execs[0].Plan.Indexed {
		t.Fatalf("plan should record a scan-only model: %+v", tr.Execs)
	}
}

// TestPlanShadowedVariable: a quantified variable shadowing an outer
// binding must not be treated as bound by the planner.
func TestPlanShadowedVariable(t *testing.T) {
	inst := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A")))
	inst.MustInsert(1)
	inst.MustInsert(2)
	m := InstanceModel{Inst: inst}
	// Outer x ranges over the domain; inner EXISTS x shadows it and
	// must hold for every outer choice (R(2) exists).
	q := MustParse("FORALL x . (NOT R(x)) OR (EXISTS x . R(x) AND x = 2)")
	checkAgree(t, "shadow", q, m)
}

// TestPlanKindMismatchShortCircuits: a constant of the wrong domain
// proves the conjunction empty at compile time; the plan is marked
// unsatisfiable and the executor returns false without iterating a
// single tuple.
func TestPlanKindMismatchShortCircuits(t *testing.T) {
	inst := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B")))
	for i := 0; i < 10; i++ {
		inst.MustInsert(i, i)
	}
	m := InstanceModel{Inst: inst}
	q := MustParse("EXISTS x . R('name', x)")
	res, tr, err := EvalTrace(q, m)
	if err != nil || res {
		t.Fatalf("kind-mismatched atom = %v, %v; want false, nil", res, err)
	}
	e := tr.Execs[0]
	if !e.Plan.Unsat {
		t.Errorf("plan should be unsatisfiable:\n%s", e.Plan)
	}
	for i, act := range e.ActRows {
		if act != 0 {
			t.Errorf("step %d touched %d rows; unsat plans must not touch the model:\n%s", i, act, e.Describe())
		}
	}
	if !strings.Contains(e.Plan.String(), "unsatisfiable") {
		t.Errorf("rendering should flag the unsat plan:\n%s", e.Plan)
	}
}
