package query

import (
	"strings"
	"testing"

	"prefcqa/internal/relation"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"TRUE",
		"FALSE",
		"R(1, 2)",
		"R('Mary', x)",
		"x = y",
		"x != y",
		"x < 3",
		"x <= 3",
		"x > 3",
		"x >= 3",
		"NOT R(1)",
		"R(1) AND S(2)",
		"R(1) OR S(2)",
		"EXISTS x . R(x)",
		"FORALL x, y . R(x) OR NOT S(y)",
		"EXISTS x . (R(x) AND (S(x) OR T(x)))",
		"R(-5)",
	}
	for _, src := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		// Re-parsing the rendering must give the same rendering.
		e2, err := Parse(e.String())
		if err != nil {
			t.Errorf("re-Parse(%q): %v", e.String(), err)
			continue
		}
		if e.String() != e2.String() {
			t.Errorf("round trip %q -> %q -> %q", src, e.String(), e2.String())
		}
	}
}

func TestParsePaperQueries(t *testing.T) {
	// Q1 (Example 1): does John earn more than Mary?
	q1 := `EXISTS x1, y1, z1, x2, y2, z2 .
	        Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`
	e, err := Parse(q1)
	if err != nil {
		t.Fatal(err)
	}
	if !IsClosed(e) {
		t.Error("Q1 should be closed")
	}
	if IsQuantifierFree(e) {
		t.Error("Q1 is quantified")
	}
	q, ok := e.(Quant)
	if !ok || q.All || len(q.Vars) != 6 {
		t.Fatalf("Q1 parse shape wrong: %#v", e)
	}
	// Q2 (Example 3): Mary earns more and writes fewer reports.
	q2 := `EXISTS x1, y1, z1, x2, y2, z2 .
	        Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`
	if _, err := Parse(q2); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrecedence(t *testing.T) {
	// AND binds tighter than OR.
	e := MustParse("R(1) OR S(2) AND T(3)")
	or, ok := e.(Or)
	if !ok {
		t.Fatalf("top node = %T, want Or", e)
	}
	if _, ok := or.R.(And); !ok {
		t.Fatalf("right of OR = %T, want And", or.R)
	}
	// NOT binds tighter than AND.
	e = MustParse("NOT R(1) AND S(2)")
	and, ok := e.(And)
	if !ok {
		t.Fatalf("top node = %T, want And", e)
	}
	if _, ok := and.L.(Not); !ok {
		t.Fatalf("left of AND = %T, want Not", and.L)
	}
	// Quantifier body extends to the right.
	e = MustParse("EXISTS x . R(x) AND S(x)")
	if q, ok := e.(Quant); !ok {
		t.Fatalf("top = %T, want Quant", e)
	} else if _, ok := q.Body.(And); !ok {
		t.Fatalf("quantifier body = %T, want And", q.Body)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	for _, src := range []string{
		"exists x . r(x) and not s(x) or true",
		"Exists x . R(x) And Not S(x) Or True",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseStrings(t *testing.T) {
	e := MustParse(`R('it''s', "R&D")`)
	a := e.(Atom)
	if c := a.Args[0].(Const); !c.Value.Equal(relation.Name("it's")) {
		t.Errorf("arg0 = %v", c.Value)
	}
	if c := a.Args[1].(Const); !c.Value.Equal(relation.Name("R&D")) {
		t.Errorf("arg1 = %v", c.Value)
	}
}

func TestParseDiamondNotEquals(t *testing.T) {
	e := MustParse("x <> y")
	if c, ok := e.(Cmp); !ok || c.Op != NE {
		t.Fatalf("x <> y parsed as %#v", e)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"R(",
		"R()",
		"R(1",
		"EXISTS . R(1)",
		"EXISTS x R(x)",
		"EXISTS and . R(1)",
		"R(1) AND",
		"x =",
		"= x",
		"R(1) extra",
		"(R(1)",
		"'unterminated",
		"x ! y",
		"x - y",
		"NOT",
		"R(1) AND AND S(2)",
		"R(NOT)",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseErrorsMentionPosition(t *testing.T) {
	_, err := Parse("R(1) AND %")
	if err == nil || !strings.Contains(err.Error(), "position") {
		t.Fatalf("error should mention position: %v", err)
	}
}

func TestFreeVarsAndClosed(t *testing.T) {
	e := MustParse("EXISTS x . R(x, y) AND x < z")
	fv := FreeVars(e)
	if len(fv) != 2 || fv[0] != "y" || fv[1] != "z" {
		t.Fatalf("FreeVars = %v, want [y z]", fv)
	}
	if IsClosed(e) {
		t.Error("formula with free vars is not closed")
	}
	if !IsClosed(MustParse("EXISTS x, y, z . R(x, y) AND x < z")) {
		t.Error("fully quantified formula is closed")
	}
	// Shadowing: inner quantifier rebinds x.
	e = MustParse("EXISTS x . R(x) AND (EXISTS x . S(x))")
	if len(FreeVars(e)) != 0 {
		t.Errorf("shadowed formula FreeVars = %v", FreeVars(e))
	}
}

func TestIsGroundAndQuantifierFree(t *testing.T) {
	if !IsGround(MustParse("R(1, 'a') AND NOT S(2)")) {
		t.Error("constant formula should be ground")
	}
	if IsGround(MustParse("R(x)")) {
		t.Error("formula with variable is not ground")
	}
	if IsQuantifierFree(MustParse("EXISTS x . R(x)")) {
		t.Error("EXISTS is not quantifier-free")
	}
	if !IsQuantifierFree(MustParse("R(1) AND (S(2) OR NOT T(3))")) {
		t.Error("connectives only should be quantifier-free")
	}
}

func TestConstantsAndAtoms(t *testing.T) {
	e := MustParse("EXISTS x . R(x, 'a', 3) AND x > 7")
	consts := Constants(e)
	if len(consts) != 3 {
		t.Fatalf("Constants = %v", consts)
	}
	atoms := Atoms(e)
	if len(atoms) != 1 || atoms[0].Rel != "R" {
		t.Fatalf("Atoms = %v", atoms)
	}
}

func TestValidate(t *testing.T) {
	mgr := relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
	schemas := map[string]*relation.Schema{"Mgr": mgr}

	ok := MustParse("EXISTS d, s, r . Mgr('Mary', d, s, r) AND s > 10")
	if err := Validate(ok, schemas); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	bad := []string{
		"EXISTS x . Nope(x)",                              // unknown relation
		"EXISTS x . Mgr(x)",                               // arity
		"EXISTS d, s, r . Mgr(3, d, s, r)",                // int in name column
		"EXISTS n, d, r . Mgr(n, d, 'ten', r)",            // name in int column
		"EXISTS n, d, s, r . Mgr(n,d,s,r) AND n < 'Mary'", // order on name
	}
	for _, src := range bad {
		if err := Validate(MustParse(src), schemas); err == nil {
			t.Errorf("Validate(%q): expected error", src)
		}
	}
}
