package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"prefcqa/internal/relation"
)

// randAST generates a random formula AST directly (bypassing the
// parser) to round-trip through String() and Parse().
func randAST(rng *rand.Rand, vars []string, depth int) Expr {
	mkTerm := func() Term {
		switch rng.Intn(3) {
		case 0:
			if len(vars) > 0 {
				return Var{Name: vars[rng.Intn(len(vars))]}
			}
			fallthrough
		case 1:
			return Const{Value: relation.Int(int64(rng.Intn(20) - 10))}
		default:
			names := []string{"Mary", "R&D", "it's", `a"b`, "x y"}
			return Const{Value: relation.Name(names[rng.Intn(len(names))])}
		}
	}
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return Bool{Value: rng.Intn(2) == 0}
		case 1:
			k := 1 + rng.Intn(3)
			args := make([]Term, k)
			for i := range args {
				args[i] = mkTerm()
			}
			rels := []string{"R", "Emp", "T2"}
			return Atom{Rel: rels[rng.Intn(len(rels))], Args: args}
		default:
			ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
			return Cmp{Op: ops[rng.Intn(len(ops))], L: mkTerm(), R: mkTerm()}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return Not{Body: randAST(rng, vars, depth-1)}
	case 1:
		return And{L: randAST(rng, vars, depth-1), R: randAST(rng, vars, depth-1)}
	case 2:
		return Or{L: randAST(rng, vars, depth-1), R: randAST(rng, vars, depth-1)}
	default:
		k := 1 + rng.Intn(2)
		fresh := make([]string, k)
		base := []string{"x", "y", "z", "w"}
		for i := range fresh {
			fresh[i] = base[rng.Intn(len(base))] + "_q"
		}
		return Quant{All: rng.Intn(2) == 0, Vars: fresh,
			Body: randAST(rng, append(append([]string(nil), vars...), fresh...), depth-1)}
	}
}

// Property: parse(print(ast)) prints identically — the printer and
// parser agree on every generated formula, including quoting edge
// cases.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randAST(rng, []string{"a", "b"}, 3)
		src := e.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("parse error for %q: %v", src, err)
			return false
		}
		return parsed.String() == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: NNF is involution-stable (NNF(NNF(e)) = NNF(e)) and never
// contains negations above atoms.
func TestQuickNNFNormalForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randAST(rng, []string{"a"}, 3)
		n := NNF(e)
		if NNF(n).String() != n.String() {
			return false
		}
		ok := true
		Walk(n, func(x Expr) {
			if not, isNot := x.(Not); isNot {
				switch b := not.Body.(type) {
				case Atom:
				case Cmp:
					// Order comparisons stay under negation (partial
					// predicates); equality must have been flipped.
					if b.Op == EQ || b.Op == NE {
						ok = false
					}
				default:
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Simplify preserves semantics on closed formulas whose
// constant set it does not shrink (dropping constants legitimately
// changes active-domain quantification; see the Simplify doc).
func TestQuickSimplifySemantics(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1)
	inst.MustInsert(2)
	m := InstanceModel{Inst: inst}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randAST(rng, nil, 2)
		if len(FreeVars(e)) != 0 {
			return true // only closed formulas evaluate
		}
		simplified := Simplify(e)
		if len(Constants(simplified)) != len(Constants(e)) {
			return true // active domain changed by design
		}
		a, err1 := Eval(e, m)
		b, err2 := Eval(simplified, m)
		if (err1 == nil) != (err2 == nil) {
			// Simplify may remove an erroneous subformula (e.g.
			// FALSE AND unknown-relation); that is acceptable, but an
			// error appearing only after simplification is not.
			return err2 == nil
		}
		if err1 != nil {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NNF preserves active-domain semantics exactly — it never
// adds or removes constants or atoms.
func TestQuickNNFSemantics(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1)
	inst.MustInsert(2)
	m := InstanceModel{Inst: inst}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randAST(rng, nil, 2)
		if len(FreeVars(e)) != 0 {
			return true
		}
		a, err1 := Eval(e, m)
		b, err2 := Eval(NNF(e), m)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
