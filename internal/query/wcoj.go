package query

import (
	"sort"

	"prefcqa/internal/relation"
)

// Worst-case-optimal (generic) join execution for cyclic spines.
//
// When GYO ear removal finds no join tree (triangles, cliques,
// bowties), any plan built from binary joins can materialize
// intermediate results polynomially larger than the final output —
// the AGM bound is attainable only by joining all atoms at once, one
// variable at a time. This file adds that operator on the batch
// currency of vector.go:
//
//   - Per-atom candidate sets are ascending tuple-ID slices, seeded by
//     the same base selections the Yannakakis executor uses
//     (visibility, compile-known equality probes, intra-atom repeats,
//     pushed-down comparisons).
//   - Variables are resolved one at a time, most-constrained first.
//     The candidate values of a variable come from the smallest
//     containing atom — the relation's cached sorted distinct-value
//     iterator when that atom's base is the unfiltered relation, a
//     sort-dedup pass over its candidates otherwise — and each value
//     is confirmed by intersecting every containing atom's candidates
//     with the posting of that value. Intersections are sorted-list
//     merges with binary-search galloping, cheapest posting first, so
//     a value absent from any atom dies in one lookup without
//     touching the rest.
//   - Cross-atom residual comparisons run the moment their last
//     variable binds; complex residuals (negation, disjunction,
//     nested quantifiers) run under the completed binding via finish.
//
// The planner considers the operator only for cyclic multi-atom
// spines (compileYan declined) and takes it when its base-candidates
// cost beats the greedy nested-loop estimate; EvalGreedy forces the
// greedy baseline, which the differential tests pin bit-for-bit
// against this path.

// wcojLevel is one variable of the generic join, in resolution order.
type wcojLevel struct {
	varIdx int      // index into vecPlan.vars / the flat binding array
	atoms  []int    // atoms containing the variable
	pos    []int    // the variable's first-occurrence position per atom
	cmps   []vecCmp // residual comparisons checkable once this binds
}

// wcojPlan is the compiled generic join of a cyclic spine.
type wcojPlan struct {
	levels []wcojLevel
}

// compileWcoj attaches a generic-join plan when the spine is cyclic
// (compileYan declined) with at least two atoms. Variable order is
// most-constrained first (occurrence count descending, first
// occurrence breaking ties). Residual comparisons local to a single
// atom are pushed into that atom's base selection, exactly like the
// Yannakakis pushdown; the rest are scheduled at the level binding
// their last operand.
func (v *vecPlan) compileWcoj(cross []vecCmp) {
	if v.yan != nil || len(v.atoms) < 2 || len(v.vars) == 0 {
		return
	}
	m := len(v.atoms)
	contains := func(atom, varIdx int) bool {
		for _, x := range v.atoms[atom].vars {
			if x == varIdx {
				return true
			}
		}
		return false
	}
	posOf := func(atom, varIdx int) int {
		a := &v.atoms[atom]
		for k, x := range a.vars {
			if x == varIdx {
				return a.varPos[k]
			}
		}
		return -1
	}

	occ := make([]int, len(v.vars))
	for i := range v.atoms {
		for _, x := range v.atoms[i].vars {
			occ[x]++
		}
	}
	order := make([]int, len(v.vars))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return occ[order[a]] > occ[order[b]] })

	w := &wcojPlan{levels: make([]wcojLevel, len(order))}
	levelOf := make([]int, len(v.vars))
	for k, x := range order {
		lv := wcojLevel{varIdx: x}
		for ai := 0; ai < m; ai++ {
			if p := posOf(ai, x); p >= 0 {
				lv.atoms = append(lv.atoms, ai)
				lv.pos = append(lv.pos, p)
			}
		}
		levelOf[x] = k
		w.levels[k] = lv
	}

	// Residual placement: a comparison whose variables all occur in one
	// atom filters that atom's base candidates; anything spanning atoms
	// waits for the level binding its last operand.
	for _, c := range cross {
		home := -1
		for i := 0; i < m && home < 0; i++ {
			ok := true
			for _, o := range []vecOperand{c.l, c.r} {
				if o.varIdx >= 0 && !contains(i, o.varIdx) {
					ok = false
				}
			}
			if ok {
				home = i
			}
		}
		if home >= 0 {
			pc := vecCmpPos{op: c.op, lPos: -1, rPos: -1, lVal: c.l.val, rVal: c.r.val}
			if c.l.varIdx >= 0 {
				pc.lPos = posOf(home, c.l.varIdx)
			}
			if c.r.varIdx >= 0 {
				pc.rPos = posOf(home, c.r.varIdx)
			}
			v.atoms[home].pushed = append(v.atoms[home].pushed, pc)
			continue
		}
		at := 0
		for _, o := range []vecOperand{c.l, c.r} {
			if o.varIdx >= 0 && levelOf[o.varIdx] > at {
				at = levelOf[o.varIdx]
			}
		}
		w.levels[at].cmps = append(w.levels[at].cmps, c)
	}
	v.wcoj = w
}

// scanBase iterates the atom's base candidates in ascending ID order:
// every visible ID passing the compile-known equality selections,
// intra-atom variable repeats, and pushed-down comparisons — probed
// through the shortest posting when a known value exists, a column
// sweep otherwise. Shared by the Yannakakis and generic-join base
// builds.
func (v *vecPlan) scanBase(ai int, exec *PlanExec, admit func(id relation.TupleID)) {
	a := &v.atoms[ai]
	selIdx := -1
	var posting []relation.TupleID
	for k := range a.sel {
		ids := a.inst.PostingIDs(a.sel[k].pos, a.sel[k].val)
		if selIdx < 0 || len(ids) < len(posting) {
			selIdx, posting = k, ids
		}
	}
	check := func(id relation.TupleID) {
		if exec != nil {
			exec.ActRows[ai]++
			exec.Batch[ai].IDs++
		}
		for k := range a.sel {
			if k == selIdx {
				continue
			}
			if !a.cols[a.sel[k].pos].Equals(id, a.sel[k].val) {
				return
			}
		}
		for _, eq := range a.intraEq {
			if !a.cols[eq[0]].EqualsCell(id, a.cols[eq[1]], id) {
				return
			}
		}
		for _, c := range a.pushed {
			if !c.holds(a, id) {
				return
			}
		}
		admit(id)
	}
	if exec != nil {
		exec.Batch[ai].Batches++
	}
	if selIdx >= 0 {
		for _, id := range posting {
			if id >= a.n {
				break
			}
			if a.visibleID(id) {
				check(id)
			}
		}
		return
	}
	for id := 0; id < a.n; id++ {
		if a.visibleID(id) {
			check(id)
		}
	}
}

// intersectSorted writes the intersection of two ascending TupleID
// slices into dst (overwritten from the start) and returns it. When
// the lengths are lopsided it gallops: walk the shorter side, binary
// search the longer, and drop the consumed prefix — O(small · log big)
// instead of O(small + big).
func intersectSorted(dst, a, b []relation.TupleID) []relation.TupleID {
	dst = dst[:0]
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return dst
	}
	if len(b) >= 8*len(a) {
		for _, id := range a {
			lo, hi := 0, len(b)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if b[mid] < id {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo == len(b) {
				break
			}
			if b[lo] == id {
				dst = append(dst, id)
				lo++
			}
			b = b[lo:]
		}
		return dst
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// runWcoj executes the generic join: per-atom base candidate lists,
// then one variable per level, each candidate value confirmed by a
// multiway posting intersection across the atoms containing the
// variable. exec may be nil (no stats collection).
func (v *vecPlan) runWcoj(sc *vecScratch, exec *PlanExec, vals []relation.Value, env map[string]relation.Value) (bool, error) {
	w := v.wcoj
	m := len(v.atoms)
	cands := make([][]relation.TupleID, m)
	baseLen := make([]int, m)
	for i := 0; i < m; i++ {
		if err := v.ev.tick(); err != nil {
			return false, err
		}
		var base []relation.TupleID
		v.scanBase(i, exec, func(id relation.TupleID) { base = append(base, id) })
		if exec != nil {
			exec.Batch[i].Base = len(base)
		}
		if len(base) == 0 {
			return false, nil
		}
		cands[i] = base
		baseLen[i] = len(base)
	}

	var stats []WcojVarStat
	if exec != nil {
		stats = make([]WcojVarStat, len(w.levels))
		for k := range w.levels {
			stats[k] = WcojVarStat{Var: v.vars[w.levels[k].varIdx], Atoms: len(w.levels[k].atoms)}
		}
		exec.Wcoj = stats
	}

	// Per-level scratch, reused across sibling values of the level:
	// posting holders, the intersection order, narrowed-candidate
	// output buffers, saved candidate lists, and the seed value buffer.
	type levelScratch struct {
		post   [][]relation.TupleID
		ord    []int
		narrow [][]relation.TupleID
		saved  [][]relation.TupleID
		vbuf   []relation.Value
	}
	lsc := make([]levelScratch, len(w.levels))
	for k := range lsc {
		na := len(w.levels[k].atoms)
		lsc[k] = levelScratch{
			post:   make([][]relation.TupleID, na),
			ord:    make([]int, na),
			narrow: make([][]relation.TupleID, na),
			saved:  make([][]relation.TupleID, na),
		}
	}

	var step func(k int) (bool, error)
	step = func(k int) (bool, error) {
		if k == len(w.levels) {
			return v.finish(vals, env)
		}
		lv := &w.levels[k]
		ls := &lsc[k]

		// Seed: the containing atom with the fewest candidates.
		seed := 0
		for i := 1; i < len(lv.atoms); i++ {
			if len(cands[lv.atoms[i]]) < len(cands[lv.atoms[seed]]) {
				seed = i
			}
		}
		sa := &v.atoms[lv.atoms[seed]]

		// Candidate values in ascending Value.Order: the relation's
		// cached sorted distinct values when the seed atom's candidates
		// are still its unfiltered base (a chain-wide superset — a stale
		// value simply dies in its first posting intersection), a
		// sort-dedup pass over the candidate cells once upper levels
		// have narrowed it.
		var values []relation.Value
		if len(sa.sel) == 0 && len(sa.pushed) == 0 && len(sa.intraEq) == 0 && sa.visible == nil &&
			len(cands[lv.atoms[seed]]) == baseLen[lv.atoms[seed]] {
			values = sa.inst.SortedDistinctValues(lv.pos[seed])
		} else {
			buf := ls.vbuf[:0]
			col := sa.cols[lv.pos[seed]]
			for _, id := range cands[lv.atoms[seed]] {
				buf = append(buf, col.Value(id))
			}
			sort.Slice(buf, func(i, j int) bool { return buf[i].Order(buf[j]) < 0 })
			uniq := buf[:0]
			for i, val := range buf {
				if i == 0 || !val.Equal(uniq[len(uniq)-1]) {
					uniq = append(uniq, val)
				}
			}
			ls.vbuf = buf
			values = uniq
		}

		for _, val := range values {
			if err := v.ev.tick(); err != nil {
				return false, err
			}
			if stats != nil {
				stats[k].Values++
			}
			// Gather the postings; an empty one kills the value before
			// any intersection work.
			ok := true
			for i := range lv.atoms {
				if stats != nil {
					stats[k].Probes++
				}
				ls.post[i] = v.atoms[lv.atoms[i]].inst.PostingIDs(lv.pos[i], val)
				if len(ls.post[i]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Intersect cheapest posting first: the narrowed set only
			// shrinks, so a miss surfaces as early as possible.
			for i := range lv.atoms {
				ls.ord[i] = i
			}
			sort.Slice(ls.ord, func(x, y int) bool { return len(ls.post[ls.ord[x]]) < len(ls.post[ls.ord[y]]) })
			for _, i := range ls.ord {
				nw := intersectSorted(ls.narrow[i], cands[lv.atoms[i]], ls.post[i])
				ls.narrow[i] = nw
				if len(nw) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if stats != nil {
				stats[k].Matches++
			}
			vals[lv.varIdx] = val
			ok = true
			for _, c := range lv.cmps {
				if !c.holds(vals) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i, ai := range lv.atoms {
				ls.saved[i] = cands[ai]
				cands[ai] = ls.narrow[i]
			}
			found, err := step(k + 1)
			for i, ai := range lv.atoms {
				cands[ai] = ls.saved[i]
			}
			if err != nil || found {
				return found, err
			}
		}
		return false, nil
	}
	return step(0)
}
