package query

import (
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

func mgrInstance(t *testing.T) *relation.Instance {
	t.Helper()
	s := relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
	inst := relation.NewInstance(s)
	inst.MustInsert("Mary", "R&D", 40, 3) // 0
	inst.MustInsert("John", "R&D", 10, 2) // 1
	inst.MustInsert("Mary", "IT", 20, 1)  // 2
	inst.MustInsert("John", "PR", 30, 4)  // 3
	return inst
}

func evalOn(t *testing.T, m Model, src string) bool {
	t.Helper()
	got, err := Eval(MustParse(src), m)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return got
}

func TestEvalGroundAtoms(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	if !evalOn(t, m, "Mgr('Mary', 'R&D', 40, 3)") {
		t.Error("present tuple should evaluate true")
	}
	if evalOn(t, m, "Mgr('Mary', 'R&D', 41, 3)") {
		t.Error("absent tuple should evaluate false")
	}
	if !evalOn(t, m, "NOT Mgr('Bob', 'IT', 1, 1)") {
		t.Error("negated absent tuple should be true")
	}
}

func TestEvalConnectives(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	if !evalOn(t, m, "TRUE") || evalOn(t, m, "FALSE") {
		t.Error("boolean constants broken")
	}
	if !evalOn(t, m, "Mgr('Mary','R&D',40,3) AND Mgr('John','PR',30,4)") {
		t.Error("AND of two present tuples")
	}
	if evalOn(t, m, "Mgr('Mary','R&D',40,3) AND FALSE") {
		t.Error("AND FALSE")
	}
	if !evalOn(t, m, "FALSE OR Mgr('Mary','IT',20,1)") {
		t.Error("OR")
	}
}

func TestEvalExample1Q1(t *testing.T) {
	// Q1: is there an assignment where John earns more than Mary?
	// In the full (inconsistent) instance the answer is true —
	// the paper calls this misleading.
	m := InstanceModel{Inst: mgrInstance(t)}
	q1 := `EXISTS x1, y1, z1, x2, y2, z2 .
	        Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`
	if !evalOn(t, m, q1) {
		t.Fatal("Q1 should be true in r (Mary/IT 20 < John/PR 30)")
	}
}

func TestEvalOnRepairViews(t *testing.T) {
	inst := mgrInstance(t)
	q1 := `EXISTS x1, y1, z1, x2, y2, z2 .
	        Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`
	// Example 2: Q1 false in r1={mary,johnPR} (40 > 30) and in
	// r2={john,maryIT} (20 > 10), true in r3={maryIT,johnPR}.
	cases := []struct {
		ids  []int
		want bool
	}{
		{[]int{0, 3}, false},
		{[]int{1, 2}, false},
		{[]int{2, 3}, true},
	}
	for _, c := range cases {
		m := SubsetModel{Inst: inst, IDs: bitset.FromSlice(c.ids)}
		if got := evalOn(t, m, q1); got != c.want {
			t.Errorf("Q1 on repair %v = %v, want %v", c.ids, got, c.want)
		}
	}
}

func TestEvalExample3Q2(t *testing.T) {
	inst := mgrInstance(t)
	q2 := `EXISTS x1, y1, z1, x2, y2, z2 .
	        Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`
	// Q2 is true in r1 (40>30... wait: Mary R&D 40 reports 3; John PR
	// 30 reports 4: 40 > 30 and 3 < 4) — true; true in r2 (20 > 10 and
	// 1 < 2); false in r3 (20 < 30).
	cases := []struct {
		ids  []int
		want bool
	}{
		{[]int{0, 3}, true},
		{[]int{1, 2}, true},
		{[]int{2, 3}, false},
	}
	for _, c := range cases {
		m := SubsetModel{Inst: inst, IDs: bitset.FromSlice(c.ids)}
		if got := evalOn(t, m, q2); got != c.want {
			t.Errorf("Q2 on repair %v = %v, want %v", c.ids, got, c.want)
		}
	}
}

func TestEvalForall(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	// Every manager tuple has salary at least 10.
	if !evalOn(t, m, "FORALL n, d, s, r . NOT Mgr(n, d, s, r) OR s >= 10") {
		t.Error("all salaries are >= 10")
	}
	if evalOn(t, m, "FORALL n, d, s, r . NOT Mgr(n, d, s, r) OR s >= 20") {
		t.Error("John/R&D earns 10 < 20")
	}
}

func TestEvalQuantifierOverActiveDomain(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	// The active domain includes names and integers; equality works on
	// both, order silently fails on names (no error).
	if !evalOn(t, m, "EXISTS x . x = 'Mary'") {
		t.Error("constant extends the domain")
	}
	if !evalOn(t, m, "EXISTS x . x = 99") {
		t.Error("query constants are part of the domain")
	}
	if evalOn(t, m, "EXISTS x . x < 0") {
		t.Error("no negative values in domain")
	}
}

func TestEvalComparisonSemantics(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 < 1", false},
		{"2 <= 2", true},
		{"3 > 2", true},
		{"2 >= 3", false},
		{"'a' = 'a'", true},
		{"'a' != 'b'", true},
		{"'a' = 'b'", false},
		{"1 = 1", true},
		{"1 != 1", false},
		// Cross-domain equality is false, not an error.
		{"'1' = 1", false},
		// Order on names is false, not an error (quantifiers range
		// over the mixed domain).
		{"'a' < 'b'", false},
	}
	for _, c := range cases {
		if got := evalOn(t, m, c.src); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	if _, err := Eval(MustParse("R(x)"), m); err == nil {
		t.Error("free variable should error")
	}
	if _, err := Eval(MustParse("Nope(1)"), m); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := Eval(MustParse("Mgr(1)"), m); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestEvalWrongKindAtomIsFalse(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	// An integer in a name column can never match.
	if evalOn(t, m, "EXISTS s . Mgr(40, 'R&D', s, 3)") {
		t.Error("kind mismatch in atom should be false")
	}
}

func TestEvalEmptyModel(t *testing.T) {
	s := relation.MustSchema("R", relation.IntAttr("A"))
	m := InstanceModel{Inst: relation.NewInstance(s)}
	if evalOn(t, m, "EXISTS x . R(x)") {
		t.Error("empty model has no witnesses")
	}
	if !evalOn(t, m, "FORALL x . R(x)") {
		t.Error("FORALL over empty domain is vacuously true")
	}
	if !evalOn(t, m, "FORALL x . NOT R(x)") {
		t.Error("vacuous FORALL")
	}
}

func TestDBModel(t *testing.T) {
	db := relation.NewDatabase()
	mgr := mgrInstance(t)
	if err := db.AddInstance(mgr); err != nil {
		t.Fatal(err)
	}
	dept, err := db.AddRelation(relation.MustSchema("Dept", relation.NameAttr("DName"), relation.IntAttr("Budget")))
	if err != nil {
		t.Fatal(err)
	}
	dept.MustInsert("R&D", 100)
	dept.MustInsert("IT", 50)

	m := DBModel{DB: db}
	// Join across relations: some manager works in a department with
	// budget over 60.
	q := `EXISTS n, d, s, r, b . Mgr(n, d, s, r) AND Dept(d, b) AND b > 60`
	if !evalOn(t, m, q) {
		t.Error("join query should hold (R&D budget 100)")
	}
	// Restrict Mgr to the subset without R&D managers.
	m2 := DBModel{DB: db, Subsets: map[string]*bitset.Set{"Mgr": bitset.FromSlice([]int{2, 3})}}
	if evalOn(t, m2, q) {
		t.Error("restricted model should not satisfy the join")
	}
	if got := len(m.Relations()); got != 2 {
		t.Errorf("Relations = %d", got)
	}
	if m.Contains("Nope", relation.Tuple{}) {
		t.Error("Contains on unknown relation")
	}
}

func TestNNF(t *testing.T) {
	e := MustParse("NOT (R(1) AND (EXISTS x . S(x)))")
	n := NNF(e)
	want := "NOT R(1) OR (FORALL x . NOT S(x))"
	if n.String() != want {
		t.Fatalf("NNF = %q, want %q", n.String(), want)
	}
	// Double negation.
	if NNF(MustParse("NOT NOT R(1)")).String() != "R(1)" {
		t.Error("double negation should vanish")
	}
	// Equality flips soundly (total on both domains).
	if NNF(MustParse("NOT x = 3")).String() != "x != 3" {
		t.Errorf("NNF(NOT x=3) = %q", NNF(MustParse("NOT x = 3")).String())
	}
	// Order comparisons must NOT flip: the order predicates are
	// partial (undefined on names), so ¬(x < 3) is kept as a negated
	// literal rather than rewritten to x >= 3.
	if NNF(MustParse("NOT x < 3")).String() != "NOT x < 3" {
		t.Errorf("NNF(NOT x<3) = %q", NNF(MustParse("NOT x < 3")).String())
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	queries := []string{
		"NOT (Mgr('Mary','R&D',40,3) AND Mgr('Bob','IT',1,1))",
		"NOT (EXISTS n, d, s, r . Mgr(n, d, s, r) AND s > 35)",
		"NOT (FORALL n, d, s, r . NOT Mgr(n, d, s, r) OR s > 15)",
		"NOT NOT (TRUE AND NOT FALSE)",
	}
	for _, src := range queries {
		e := MustParse(src)
		a, err := Eval(e, m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Eval(NNF(e), m)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("NNF changed semantics of %q: %v vs %v", src, a, b)
		}
	}
}

func TestNegate(t *testing.T) {
	m := InstanceModel{Inst: mgrInstance(t)}
	for _, src := range []string{
		"Mgr('Mary','R&D',40,3)",
		"EXISTS n, d, s, r . Mgr(n,d,s,r) AND s > 35",
		"FORALL n, d, s, r . NOT Mgr(n,d,s,r) OR s >= 10",
	} {
		e := MustParse(src)
		a, _ := Eval(e, m)
		b, err := Eval(Negate(e), m)
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			t.Errorf("Negate(%q) evaluated equal", src)
		}
	}
}

func TestSimplify(t *testing.T) {
	cases := map[string]string{
		"R(1) AND TRUE":            "R(1)",
		"R(1) AND FALSE":           "FALSE",
		"TRUE AND R(1)":            "R(1)",
		"R(1) OR TRUE":             "TRUE",
		"FALSE OR R(1)":            "R(1)",
		"NOT TRUE":                 "FALSE",
		"NOT NOT R(1)":             "R(1)",
		"EXISTS x . TRUE":          "TRUE",
		"EXISTS x . R(x) AND TRUE": "EXISTS x . R(x)",
	}
	for in, want := range cases {
		if got := Simplify(MustParse(in)).String(); got != want {
			t.Errorf("Simplify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSubstitute(t *testing.T) {
	e := MustParse("R(x, y) AND (EXISTS x . S(x, y))")
	env := map[string]relation.Value{"x": relation.Int(1), "y": relation.Name("a")}
	got := Substitute(e, env).String()
	want := "R(1, 'a') AND (EXISTS x . S(x, 'a'))"
	if got != want {
		t.Fatalf("Substitute = %q, want %q", got, want)
	}
}

func TestToDNF(t *testing.T) {
	e := MustParse("(R(1) OR S(2)) AND NOT T(3)")
	dnf, err := ToDNF(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(dnf) != 2 {
		t.Fatalf("DNF has %d disjuncts, want 2", len(dnf))
	}
	for _, d := range dnf {
		if len(d) != 2 {
			t.Fatalf("disjunct %v should have 2 literals", d)
		}
	}
	// Quantified formulas are rejected.
	if _, err := ToDNF(MustParse("EXISTS x . R(x)")); err == nil {
		t.Error("ToDNF of quantified formula should fail")
	}
	// TRUE has one empty disjunct; FALSE none.
	if d, _ := ToDNF(MustParse("TRUE")); len(d) != 1 || len(d[0]) != 0 {
		t.Errorf("DNF(TRUE) = %v", d)
	}
	if d, _ := ToDNF(MustParse("FALSE")); len(d) != 0 {
		t.Errorf("DNF(FALSE) = %v", d)
	}
}

func TestToDNFSemanticAgreement(t *testing.T) {
	// Evaluate DNF literal-by-literal and compare with direct Eval on
	// ground formulas.
	m := InstanceModel{Inst: mgrInstance(t)}
	queries := []string{
		"(Mgr('Mary','R&D',40,3) OR Mgr('Nobody','X',1,1)) AND NOT Mgr('John','R&D',10,2)",
		"NOT (Mgr('Mary','R&D',40,3) AND Mgr('John','R&D',10,2))",
		"Mgr('Mary','R&D',40,3) AND 1 < 2",
		"NOT (1 < 2) OR Mgr('John','PR',30,4)",
	}
	for _, src := range queries {
		e := MustParse(src)
		direct, err := Eval(e, m)
		if err != nil {
			t.Fatal(err)
		}
		dnf, err := ToDNF(e)
		if err != nil {
			t.Fatal(err)
		}
		viaDNF := false
		for _, disj := range dnf {
			all := true
			for _, lit := range disj {
				var le Expr
				if lit.IsCmp {
					le = lit.Cmp
				} else {
					le = lit.Atom
				}
				v, err := Eval(le, m)
				if err != nil {
					t.Fatal(err)
				}
				if lit.Negated {
					v = !v
				}
				if !v {
					all = false
					break
				}
			}
			if all {
				viaDNF = true
				break
			}
		}
		if viaDNF != direct {
			t.Errorf("DNF evaluation of %q = %v, direct = %v", src, viaDNF, direct)
		}
	}
}

func TestLiteralString(t *testing.T) {
	dnf, err := ToDNF(MustParse("NOT R(1) AND x < 2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := dnf[0][0].String(); got != "NOT R(1)" {
		t.Errorf("literal = %q", got)
	}
	if got := dnf[0][1].String(); got != "x < 2" {
		t.Errorf("literal = %q", got)
	}
}
