package query

import (
	"fmt"

	"prefcqa/internal/relation"
)

// Negate returns the logical negation of the formula in negation
// normal form (negations pushed to atoms, comparisons flipped).
func Negate(e Expr) Expr { return NNF(Not{Body: e}) }

// NNF converts the formula to negation normal form: negations apply
// only to relational atoms and order comparisons, equality operators
// are complemented, double negations vanish, and ¬∃/¬∀ become ∀¬/∃¬.
//
// Order comparisons (<, <=, >, >=) are NOT complemented into each
// other: the paper interprets order only on the integer domain, so
// the predicates are partial — ¬(a <= b) is not equivalent to a > b
// when a or b is a name (both are false). Equality is total on both
// domains, so = and != flip soundly.
func NNF(e Expr) Expr { return nnf(e, false) }

func nnf(e Expr, neg bool) Expr {
	switch n := e.(type) {
	case Bool:
		return Bool{Value: n.Value != neg}
	case Atom:
		if neg {
			return Not{Body: n}
		}
		return n
	case Cmp:
		if neg {
			if n.Op == EQ || n.Op == NE {
				return Cmp{Op: n.Op.Negate(), L: n.L, R: n.R}
			}
			return Not{Body: n}
		}
		return n
	case Not:
		return nnf(n.Body, !neg)
	case And:
		if neg {
			return Or{L: nnf(n.L, true), R: nnf(n.R, true)}
		}
		return And{L: nnf(n.L, false), R: nnf(n.R, false)}
	case Or:
		if neg {
			return And{L: nnf(n.L, true), R: nnf(n.R, true)}
		}
		return Or{L: nnf(n.L, false), R: nnf(n.R, false)}
	case Quant:
		return Quant{All: n.All != neg, Vars: n.Vars, Body: nnf(n.Body, neg)}
	default:
		return e
	}
}

// Simplify performs constant folding: TRUE/FALSE absorb or vanish in
// connectives, double negations collapse, quantifiers over constant
// bodies disappear.
//
// Simplify preserves logical equivalence but NOT necessarily
// active-domain equivalence: dropping a dead branch removes its
// constants from the formula, and quantifiers range over the model's
// values plus the formula's constants, so a query whose truth depends
// on a dropped constant being in the domain (e.g. FALSE AND R('x')
// OR FORALL v . v <= 5) can change value. The evaluation engine never
// applies Simplify implicitly for exactly this reason.
func Simplify(e Expr) Expr {
	switch n := e.(type) {
	case Not:
		b := Simplify(n.Body)
		if bb, ok := b.(Bool); ok {
			return Bool{Value: !bb.Value}
		}
		if nn, ok := b.(Not); ok {
			return nn.Body
		}
		return Not{Body: b}
	case And:
		l, r := Simplify(n.L), Simplify(n.R)
		if lb, ok := l.(Bool); ok {
			if !lb.Value {
				return Bool{Value: false}
			}
			return r
		}
		if rb, ok := r.(Bool); ok {
			if !rb.Value {
				return Bool{Value: false}
			}
			return l
		}
		return And{L: l, R: r}
	case Or:
		l, r := Simplify(n.L), Simplify(n.R)
		if lb, ok := l.(Bool); ok {
			if lb.Value {
				return Bool{Value: true}
			}
			return r
		}
		if rb, ok := r.(Bool); ok {
			if rb.Value {
				return Bool{Value: true}
			}
			return l
		}
		return Or{L: l, R: r}
	case Quant:
		b := Simplify(n.Body)
		if bb, ok := b.(Bool); ok {
			return bb
		}
		return Quant{All: n.All, Vars: n.Vars, Body: b}
	default:
		return e
	}
}

// Substitute replaces free occurrences of variables by constants.
func Substitute(e Expr, env map[string]relation.Value) Expr {
	subTerm := func(t Term, bound map[string]bool) Term {
		if v, ok := t.(Var); ok && !bound[v.Name] {
			if val, ok := env[v.Name]; ok {
				return Const{Value: val}
			}
		}
		return t
	}
	var rec func(e Expr, bound map[string]bool) Expr
	rec = func(e Expr, bound map[string]bool) Expr {
		switch n := e.(type) {
		case Bool:
			return n
		case Atom:
			args := make([]Term, len(n.Args))
			for i, t := range n.Args {
				args[i] = subTerm(t, bound)
			}
			return Atom{Rel: n.Rel, Args: args}
		case Cmp:
			return Cmp{Op: n.Op, L: subTerm(n.L, bound), R: subTerm(n.R, bound)}
		case Not:
			return Not{Body: rec(n.Body, bound)}
		case And:
			return And{L: rec(n.L, bound), R: rec(n.R, bound)}
		case Or:
			return Or{L: rec(n.L, bound), R: rec(n.R, bound)}
		case Quant:
			inner := make(map[string]bool, len(bound)+len(n.Vars))
			for k := range bound {
				inner[k] = true
			}
			for _, v := range n.Vars {
				inner[v] = true
			}
			return Quant{All: n.All, Vars: n.Vars, Body: rec(n.Body, inner)}
		default:
			return e
		}
	}
	return rec(e, map[string]bool{})
}

// Literal is an atomic formula or its negation within a DNF disjunct.
type Literal struct {
	Negated bool
	// Exactly one of Atom and Cmp is meaningful, selected by IsCmp.
	IsCmp bool
	Atom  Atom
	Cmp   Cmp
}

// String renders the literal.
func (l Literal) String() string {
	var inner string
	if l.IsCmp {
		inner = l.Cmp.String()
	} else {
		inner = l.Atom.String()
	}
	if l.Negated {
		return "NOT " + inner
	}
	return inner
}

// ToDNF converts a quantifier-free formula into disjunctive normal
// form: a list of disjuncts, each a list of literals. It fails on
// quantified formulas. Exponential in formula size (acceptable: data
// complexity treats the query as fixed, cf. §4.1).
func ToDNF(e Expr) ([][]Literal, error) {
	if !IsQuantifierFree(e) {
		return nil, fmt.Errorf("query: ToDNF needs a quantifier-free formula, got %s", e)
	}
	n := NNF(e)
	return dnf(n)
}

func dnf(e Expr) ([][]Literal, error) {
	switch x := e.(type) {
	case Bool:
		if x.Value {
			return [][]Literal{{}}, nil // one empty (always-true) disjunct
		}
		return nil, nil // no disjuncts: unsatisfiable
	case Atom:
		return [][]Literal{{{Atom: x}}}, nil
	case Cmp:
		return [][]Literal{{{IsCmp: true, Cmp: x}}}, nil
	case Not:
		// NNF guarantees the body is an atom or an order comparison.
		switch b := x.Body.(type) {
		case Atom:
			return [][]Literal{{{Negated: true, Atom: b}}}, nil
		case Cmp:
			return [][]Literal{{{Negated: true, IsCmp: true, Cmp: b}}}, nil
		default:
			return nil, fmt.Errorf("query: non-NNF negation of %s", x.Body)
		}
	case Or:
		l, err := dnf(x.L)
		if err != nil {
			return nil, err
		}
		r, err := dnf(x.R)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	case And:
		l, err := dnf(x.L)
		if err != nil {
			return nil, err
		}
		r, err := dnf(x.R)
		if err != nil {
			return nil, err
		}
		var out [][]Literal
		for _, dl := range l {
			for _, dr := range r {
				d := make([]Literal, 0, len(dl)+len(dr))
				d = append(d, dl...)
				d = append(d, dr...)
				out = append(out, d)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("query: unexpected node %T in DNF conversion", e)
	}
}
