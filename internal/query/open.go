package query

import (
	"context"
	"sort"

	"prefcqa/internal/relation"
)

// Direct open-query enumeration.
//
// An open query (free variables x̄) asks for the bindings that make it
// true. The substitution strategy — try every active-domain
// combination, evaluate the closed instance — pays |domain|^k closed
// evaluations. EnumerateOpen instead compiles the query ONCE, as the
// existential closure ∃x̄.φ, and enumerates the satisfying bindings of
// the positive conjunctive spine straight off the columnar data: the
// vectorized executors (Yannakakis reduction, generic join, greedy
// nested loop) run with an emit hook attached, so every spine match
// surfaces its free-variable values instead of short-circuiting the
// EXISTS.
//
// The enumeration is a SUPERSET of the query's satisfying bindings:
// residual conjuncts the vectorized runtime cannot express
// (negations, disjunctions, nested quantifiers) are dropped during
// candidate generation, because they are not monotone in the visible
// instance and the caller typically re-checks candidates under
// different sub-instances anyway (the CQA layer verifies each
// candidate with a full certain-answer check). Comparison residuals
// ARE checked — they depend only on the binding, never on the data.
// Callers that need exact satisfaction must verify each yielded
// binding.

// OpenUnsupportedError reports why a query has no direct
// open-enumeration path and the caller must fall back to
// active-domain substitution.
type OpenUnsupportedError struct {
	Reason string
}

func (e *OpenUnsupportedError) Error() string {
	return "query: direct open enumeration unavailable: " + e.Reason
}

// OpenSpine describes a completed enumeration: the free variables in
// yield order, the executor that ran the spine, and how many spine
// matches were emitted (before any caller-side dedup).
type OpenSpine struct {
	Vars     []string
	Executor string
	Matches  int
}

// EnumerateOpen enumerates candidate free-variable bindings of the
// open query q over m. yield receives the values aligned with
// OpenSpine.Vars (sorted free-variable order); the slice is reused
// across calls and must be copied to retain. Returning false stops
// the enumeration. Duplicate bindings may be yielded (one per spine
// match); callers dedupe.
//
// The error is *OpenUnsupportedError when the query's shape has no
// direct path — free variables not covered by positive atoms, a
// non-conjunctive top level, or a model without a columnar backing —
// in which case nothing was yielded.
func EnumerateOpen(ctx context.Context, m Model, q Expr, yield func(vals []relation.Value) bool) (*OpenSpine, error) {
	free := FreeVars(q)
	if len(free) == 0 {
		return nil, &OpenUnsupportedError{Reason: "query is closed (no free variables)"}
	}
	sort.Strings(free)

	// Peel top-level existential prefixes into the closure, so
	// EXISTS b . R(x, b) compiles as one spine over {x, b} rather than
	// a nested quantifier residual.
	body := q
	vars := append([]string{}, free...)
	have := make(map[string]bool, len(free))
	for _, v := range free {
		have[v] = true
	}
	for {
		qq, ok := body.(Quant)
		if !ok || qq.All {
			break
		}
		for _, v := range qq.Vars {
			if !have[v] {
				have[v] = true
				vars = append(vars, v)
			}
		}
		body = qq.Body
	}
	closure := Quant{Vars: vars, Body: body}

	ev := &evaluator{m: m, root: closure, join: true, ctx: ctx}
	env := map[string]relation.Value{}
	p, ok, err := ev.compileExists(closure, env)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, &OpenUnsupportedError{Reason: "spine is not a positive conjunctive cover of the free variables"}
	}
	spine := &OpenSpine{Vars: free}
	if p.Unsat {
		// A compile-known kind mismatch: the spine is empty for every
		// binding, so the enumeration succeeds with zero candidates.
		spine.Executor = "unsat"
		return spine, nil
	}
	cm, columnar := m.(ColumnarModel)
	if !columnar {
		return nil, &OpenUnsupportedError{Reason: "model does not expose a columnar backing"}
	}
	vp := ev.compileVec(cm, p, env)
	if vp == nil {
		return nil, &OpenUnsupportedError{Reason: "spine could not be lowered onto the columnar backing"}
	}
	// Drop the residuals the vector runtime cannot express: they are
	// not monotone, so checking them here would make the candidate set
	// unsound rather than merely loose (see the package comment above).
	vp.complex = nil
	vp.emit = func(vals []relation.Value) (bool, error) {
		spine.Matches++
		// Stopping the search is signaled as "found": runVec's boolean
		// result is meaningless in enumeration mode either way.
		return !yield(vals[:len(free)]), nil
	}
	exec := &PlanExec{Plan: p, ActRows: make([]int, len(p.Steps))}
	if _, err := ev.runVec(vp, exec, env); err != nil {
		return nil, err
	}
	spine.Executor = exec.Executor
	return spine, nil
}
