package query

import (
	"context"
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// supportModel is fuzzPlanModel exposed as a DBModel whose Subsets
// map the tests own: R(A,B) with a tombstone at id 1, S(C,D) with a
// name column, T(E,F) with a tombstone at id 2.
func supportModel() DBModel {
	return fuzzPlanModel().(DBModel)
}

// TestAnalyzeSupportCoverage pins the domain-freedom gate: a query is
// prunable iff every quantifier (after the ∀ ⇒ ¬∃¬ rewrite) is
// spine-covered, recursively through residual conjuncts.
func TestAnalyzeSupportCoverage(t *testing.T) {
	m := supportModel()
	cases := []struct {
		src string
		ok  bool
	}{
		{"TRUE", true},
		{"R(0, 0)", true},
		{"EXISTS x . R(0, x)", true},
		{"EXISTS x, y . R(x, y)", true},
		{"EXISTS x . x = 1 AND R(1, x)", true},
		{"FORALL a, b . NOT R(a, b) OR a <= 2", true}, // rewrite: ∃a,b. R(a,b) ∧ a > 2
		{"EXISTS x . R(x, 0) AND NOT (EXISTS y . S(y, 'n1') AND y = x)", true},
		{"(EXISTS x . R(0, x)) AND NOT (EXISTS y . T(y, y))", true},
		// The canonical counterexample: x occurs in no positive atom,
		// so evaluation falls back to active-domain iteration and the
		// verdict can depend on tuples no atom mentions.
		{"EXISTS x . x = 1 AND NOT S(x, 'n0')", false},
		{"EXISTS x . x = 1", false},                          // no atom at all
		{"FORALL x . R(x, 0)", false},                        // rewrite: ∃x. ¬R(x,0) — negative only
		{"EXISTS x . NOT R(x, x)", false},                    // negative atom only
		{"EXISTS x, y . R(x, 0) AND y = x", false},           // y uncovered
		{"EXISTS x . R(x, 0) AND (EXISTS u . u = x)", false}, // uncovered residual quantifier
		{"EXISTS x . Nope(x)", false},                        // no backing
	}
	for _, c := range cases {
		sup, ok := AnalyzeSupport(MustParse(c.src), m)
		if ok != c.ok {
			t.Errorf("AnalyzeSupport(%q) ok = %v, want %v", c.src, ok, c.ok)
		}
		if ok && sup == nil {
			t.Errorf("AnalyzeSupport(%q): ok with nil support", c.src)
		}
	}
}

// TestAnalyzeSupportTouchedIDs pins the per-relation touched sets:
// posting intersections over constant positions, tombstone filtering,
// the whole-relation escalation for const-free atoms, and untouched
// relations staying absent.
func TestAnalyzeSupportTouchedIDs(t *testing.T) {
	m := supportModel()
	// R's tuples are (0,0) (1,2)† (2,1), † = tombstoned (id 1). The
	// A = 2 posting is the single live id 2.
	sup, ok := AnalyzeSupport(MustParse("EXISTS x . R(2, x)"), m)
	if !ok {
		t.Fatal("support declined")
	}
	ids, all := sup.TouchedIDs("R")
	if all || ids == nil || ids.Len() != 1 || !ids.Has(2) {
		t.Fatalf("R touched = (%v, all=%v), want {2}", ids, all)
	}
	if got := sup.Relations(); len(got) != 1 || got[0] != "R" {
		t.Fatalf("Relations() = %v, want [R]", got)
	}
	if ids, all := sup.TouchedIDs("S"); all || ids != nil {
		t.Fatalf("untouched S reported (%v, all=%v)", ids, all)
	}

	// Tombstone filtering: the A = 1 posting holds only the dead id 1,
	// so the touched set is empty — the verdict cannot depend on R.
	sup, _ = AnalyzeSupport(MustParse("EXISTS x . R(1, x)"), m)
	ids, all = sup.TouchedIDs("R")
	if all || ids == nil || !ids.Empty() {
		t.Fatalf("dead posting should touch nothing, got (%v, all=%v)", ids, all)
	}

	// Two constant positions intersect: R(0, 1) matches nothing (the
	// A = 0 tuple has B = 0), R(0, 0) matches exactly id 0.
	sup, _ = AnalyzeSupport(MustParse("R(0, 1) OR R(0, 0)"), m)
	ids, all = sup.TouchedIDs("R")
	if all || ids.Len() != 1 || !ids.Has(0) {
		t.Fatalf("R touched = (%v, all=%v), want {0}", ids, all)
	}

	// A const-free atom anywhere escalates the relation to All, even
	// when another atom is constant-constrained.
	sup, _ = AnalyzeSupport(MustParse("EXISTS x, y . R(x, y) AND R(0, y)"), m)
	if ids, all := sup.TouchedIDs("R"); !all || ids != nil {
		t.Fatalf("const-free atom should touch all of R, got (%v, all=%v)", ids, all)
	}

	// Atoms under negation and inside quantifier bodies count too.
	sup, _ = AnalyzeSupport(MustParse("EXISTS x . R(0, x) AND NOT T(1, x)"), m)
	ids, all = sup.TouchedIDs("T")
	if all || ids == nil || ids.Empty() {
		t.Fatalf("negated T atom not touched: (%v, all=%v)", ids, all)
	}
}

// preparedCorpus is the closed-query mix the Prepared differential
// pins: ground leaves, single and multi-atom spines, negation,
// universals, disjunctive skeletons, unsatisfiable plans (kind
// mismatch) and nested quantifiers in residuals.
var preparedCorpus = []string{
	"TRUE",
	"R(0, 0) AND NOT R(2, 2)",
	"EXISTS x . R(0, x)",
	"EXISTS x, y . R(x, y) AND S(y, 'n0')",
	"EXISTS x . R(x, x) AND NOT S(x, 'n1')",
	"FORALL a, b . NOT R(a, b) OR a <= 2",
	"(EXISTS x . R(0, x)) OR (EXISTS y . T(y, 3))",
	"(EXISTS x . R(2, x)) AND NOT (EXISTS y, z . T(y, z) AND y > z)",
	"EXISTS x . R('name', x)", // kind mismatch: unsatisfiable plan
	"EXISTS a, b, c . R(a, b) AND T(b, c)",
	"EXISTS a, b, c . R(a, b) AND T(b, c) AND R(c, a)", // triangle: WCOJ executor
	"EXISTS x . R(x, 0) AND NOT (EXISTS y . S(y, 'n1') AND y = x)",
}

// TestPreparedEvalMatchesEvalCtx compiles each corpus query once and
// re-evaluates it under many random visibility subsets, requiring
// bit-for-bit agreement with the one-shot production path and the
// naive active-domain baseline — the exact contract the CQA repair
// sweep relies on when it swaps subsets between Eval calls.
func TestPreparedEvalMatchesEvalCtx(t *testing.T) {
	m := supportModel()
	subsets := make(map[string]*bitset.Set)
	m.Subsets = subsets
	rng := rand.New(rand.NewSource(61))
	ctx := context.Background()
	for _, src := range preparedCorpus {
		q := MustParse(src)
		prep, ok := PrepareClosed(m, q)
		if !ok {
			t.Fatalf("PrepareClosed declined %q", src)
		}
		for round := 0; round < 40; round++ {
			// Random visibility per relation; occasionally drop the
			// entry entirely (full visibility), as the CQA walk does
			// for untouched relations.
			for _, rel := range m.Relations() {
				if rng.Intn(5) == 0 {
					delete(subsets, rel)
					continue
				}
				inst, _ := m.DB.Relation(rel)
				sub := bitset.New(inst.NumIDs())
				inst.RangeIDs(func(id relation.TupleID) bool {
					if rng.Intn(2) == 0 {
						sub.Add(id)
					}
					return true
				})
				subsets[rel] = sub
			}
			got, err := prep.Eval(ctx)
			if err != nil {
				t.Fatalf("%q round %d: Prepared.Eval: %v", src, round, err)
			}
			want, err := EvalCtx(ctx, q, m)
			if err != nil {
				t.Fatalf("%q round %d: EvalCtx: %v", src, round, err)
			}
			naive, err := EvalNaive(q, m)
			if err != nil {
				t.Fatalf("%q round %d: EvalNaive: %v", src, round, err)
			}
			if got != want || got != naive {
				t.Fatalf("%q round %d: prepared=%v planned=%v naive=%v (subsets %v)",
					src, round, got, want, naive, subsets)
			}
		}
	}
}

// TestPrepareClosedDeclines pins that uncoverable quantifiers decline
// preparation (the caller falls back to EvalCtx) instead of compiling
// something unsound.
func TestPrepareClosedDeclines(t *testing.T) {
	m := supportModel()
	for _, src := range []string{
		"EXISTS x . x = 1 AND NOT S(x, 'n0')",
		"FORALL x . R(x, 0)",
		"EXISTS x . NOT R(x, x)",
	} {
		if prep, ok := PrepareClosed(m, MustParse(src)); ok || prep != nil {
			t.Errorf("PrepareClosed(%q) = (%v, %v), want decline", src, prep, ok)
		}
	}
}

// TestAnalyzeSupportImpliesPrepares pins the layering contract
// documented on PrepareClosed: every query the support analysis
// accepts must also prepare, so the CQA walk never computes a pruned
// component product it then cannot evaluate vectorized.
func TestAnalyzeSupportImpliesPrepares(t *testing.T) {
	m := supportModel()
	for _, src := range preparedCorpus {
		q := MustParse(src)
		if _, ok := AnalyzeSupport(q, m); !ok {
			continue
		}
		if _, ok := PrepareClosed(m, q); !ok {
			t.Errorf("%q: accepted by AnalyzeSupport but declined by PrepareClosed", src)
		}
	}
}
