package query

import (
	"sort"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// Support analysis: which tuples can a closed query's verdict depend
// on?
//
// The CQA layer enumerates preferred repairs — per-relation visible
// subsets — and asks the same closed query against each. Whole-
// database enumeration is exponential in the number of conflict
// components, but a query whose evaluation never consults the active
// domain can only observe the tuples its atoms are able to bind:
// every candidate an executor considers, and every membership probe a
// residual issues, matches the atom's constant argument positions.
// The union of those per-atom constant-match sets — the touched IDs —
// is therefore a sound support: two repairs agreeing on the touched
// IDs of every relation give the query the same verdict, and the
// repair walk may fix every untouched component arbitrarily (or leave
// it invisible, which is observationally identical).
//
// The active-domain caveat is what makes the ground case generalize:
// a quantifier that falls back to domain iteration (evalQuant's slow
// path) observes the domain of the *whole* visible instance, so a
// tuple no atom mentions can still flip the verdict — e.g.
// ∃x.(x = 1 ∧ ¬S(x)) depends on whether 1 is in the domain at all.
// AnalyzeSupport refuses such queries: it requires every quantifier,
// after the same ∀ ⇒ ¬∃¬ rewrite evalQuant performs, to be
// spine-covered exactly as compileExists requires (at least one
// positive atom conjunct, every quantified variable occurring in
// one), recursively through residual conjuncts.

// RelTouched is one relation's share of a query support: either the
// whole relation (an atom with no constant arguments can bind any
// tuple) or the explicit set of live tuple IDs matching some atom's
// constant positions.
type RelTouched struct {
	// All marks the whole relation touched; IDs is nil.
	All bool
	// IDs holds the touched live tuple IDs when All is false.
	IDs *bitset.Set
}

// Support is the result of AnalyzeSupport: per relation, the tuple
// IDs the query's verdict can depend on. Relations absent from the
// map are untouched (no atom mentions them, or no live tuple matches
// any mentioning atom's constants).
type Support struct {
	rels map[string]*RelTouched
}

// TouchedIDs reports rel's touched set: all=true means every tuple,
// otherwise ids (nil or empty when the relation is untouched).
func (s *Support) TouchedIDs(rel string) (ids *bitset.Set, all bool) {
	t, ok := s.rels[rel]
	if !ok {
		return nil, false
	}
	return t.IDs, t.All
}

// Relations lists the touched relations in sorted order.
func (s *Support) Relations() []string {
	out := make([]string, 0, len(s.rels))
	for name := range s.rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AnalyzeSupport computes the touched tuple IDs of a closed query
// against the model's columnar backing. ok=false means the query's
// verdict may depend on tuples outside any atom's reach — some
// quantifier would fall back to active-domain iteration, or a
// relation's backing is unavailable — and the caller must keep the
// full repair enumeration.
func AnalyzeSupport(q Expr, m ColumnarModel) (*Support, bool) {
	if !domainFree(q) {
		return nil, false
	}
	s := &Support{rels: make(map[string]*RelTouched)}
	okAll := true
	Walk(q, func(e Expr) {
		a, isAtom := e.(Atom)
		if !isAtom || !okAll {
			return
		}
		if !s.touchAtom(a, m) {
			okAll = false
		}
	})
	if !okAll {
		return nil, false
	}
	return s, true
}

// touchAtom adds the live tuple IDs matching a's constant argument
// positions to the support. An atom with no constant arguments can
// bind any tuple of the relation, so the whole relation is touched.
func (s *Support) touchAtom(a Atom, m ColumnarModel) bool {
	inst, _, ok := m.Backing(a.Rel)
	if !ok || inst == nil {
		return false
	}
	if len(a.Args) != inst.Schema().Arity() {
		return false // Validate reports this; just decline to prune
	}
	type constPos struct {
		pos int
		val relation.Value
	}
	var consts []constPos
	for i, t := range a.Args {
		if c, isConst := t.(Const); isConst {
			consts = append(consts, constPos{pos: i, val: c.Value})
		}
	}
	rt := s.rels[a.Rel]
	if rt == nil {
		rt = &RelTouched{}
		s.rels[a.Rel] = rt
	}
	if len(consts) == 0 {
		rt.All, rt.IDs = true, nil
		return true
	}
	if rt.All {
		return true
	}
	// Seed from the most selective constant's posting, then check the
	// remaining constant positions column-wise per candidate. The
	// postings span the version chain, so each candidate is filtered
	// through Live (version prefix + tombstones).
	seed := 0
	if len(consts) > 1 {
		best := inst.IndexEstimate(consts[0].pos, consts[0].val)
		for i := 1; i < len(consts); i++ {
			if est := inst.IndexEstimate(consts[i].pos, consts[i].val); est < best {
				seed, best = i, est
			}
		}
	}
	if rt.IDs == nil {
		rt.IDs = bitset.New(inst.NumIDs())
	}
	for _, id := range inst.PostingIDs(consts[seed].pos, consts[seed].val) {
		if !inst.Live(id) {
			continue
		}
		match := true
		for i, c := range consts {
			if i == seed {
				continue
			}
			if !inst.Col(c.pos).Value(id).Equal(c.val) {
				match = false
				break
			}
		}
		if match {
			rt.IDs.Add(id)
		}
	}
	return true
}

// domainFree reports whether evaluating e can never consult the
// active domain: every quantifier — after the ∀ ⇒ ¬∃¬ NNF rewrite
// evalQuant performs — satisfies compileExists's coverage rule (at
// least one positive atom conjunct, every quantified variable
// occurring in one), recursively through residual conjuncts. Only
// then is the verdict a function of the visible touched tuples alone.
func domainFree(e Expr) bool {
	switch n := e.(type) {
	case Bool, Atom, Cmp:
		return true
	case Not:
		return domainFree(n.Body)
	case And:
		return domainFree(n.L) && domainFree(n.R)
	case Or:
		return domainFree(n.L) && domainFree(n.R)
	case Quant:
		body := n.Body
		if n.All {
			body = NNF(Not{Body: n.Body})
		}
		quantified := make(map[string]bool, len(n.Vars))
		for _, v := range n.Vars {
			quantified[v] = true
		}
		covered := make(map[string]bool, len(n.Vars))
		hasAtom := false
		for _, c := range flattenAnd(body) {
			if a, isAtom := c.(Atom); isAtom {
				hasAtom = true
				for _, t := range a.Args {
					if v, isVar := t.(Var); isVar && quantified[v.Name] {
						covered[v.Name] = true
					}
				}
				continue
			}
			if !domainFree(c) {
				return false
			}
		}
		if !hasAtom {
			return false
		}
		for _, v := range n.Vars {
			if !covered[v] {
				return false
			}
		}
		return true
	default:
		return false
	}
}
