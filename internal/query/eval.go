package query

import (
	"context"
	"fmt"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// Model is a finite first-order structure a formula is evaluated
// against: a set of visible tuples per relation. Repairs are
// evaluated as views — an instance plus a tuple-ID subset — without
// materializing the repair.
type Model interface {
	// Schema returns the schema of a relation, if present.
	Schema(rel string) (*relation.Schema, bool)
	// Relations lists the relation names in the model.
	Relations() []string
	// Tuples iterates the visible tuples of rel; stop early by
	// returning false.
	Tuples(rel string, yield func(relation.Tuple) bool)
	// Contains reports whether the visible part of rel has the tuple.
	Contains(rel string, t relation.Tuple) bool
}

// IndexedModel is a Model whose relations can answer equality
// lookups from secondary indexes. The planner (plan.go) uses it for
// access-path selection; models that cannot serve a particular
// lookup return ok=false from TuplesEq and the executor falls back
// to a scan. Estimates are upper bounds, used only to order work.
type IndexedModel interface {
	Model
	// TuplesEq iterates the visible tuples of rel whose attribute
	// attr equals v, in instance ID order; stop early by returning
	// false from yield. ok=false means no index is available for the
	// lookup and nothing was iterated.
	TuplesEq(rel string, attr int, v relation.Value, yield func(relation.Tuple) bool) (ok bool)
	// EstimateEq returns an upper bound on the number of visible
	// tuples of rel with attribute attr equal to v.
	EstimateEq(rel string, attr int, v relation.Value) int
	// Card returns an upper bound on the number of visible tuples of
	// rel.
	Card(rel string) int
}

// scanModel hides a model's index capability, forcing every atom onto
// the scan path. The evaluation result is identical; only access
// paths change.
type scanModel struct{ m Model }

func (s scanModel) Schema(rel string) (*relation.Schema, bool) { return s.m.Schema(rel) }
func (s scanModel) Relations() []string                        { return s.m.Relations() }
func (s scanModel) Tuples(rel string, yield func(relation.Tuple) bool) {
	s.m.Tuples(rel, yield)
}
func (s scanModel) Contains(rel string, t relation.Tuple) bool { return s.m.Contains(rel, t) }

// ScanOnly wraps a model so the planner sees no indexes: every atom
// is answered by iterating the visible tuples. It is the ablation
// hook for the indexed-vs-scan benchmarks and the facade's
// WithIndexes(false) mode.
func ScanOnly(m Model) Model {
	if _, already := m.(scanModel); already {
		return m
	}
	return scanModel{m: m}
}

// InstanceModel exposes a whole instance as a single-relation model.
type InstanceModel struct{ Inst *relation.Instance }

// Schema implements Model.
func (m InstanceModel) Schema(rel string) (*relation.Schema, bool) {
	if rel == m.Inst.Schema().Name() {
		return m.Inst.Schema(), true
	}
	return nil, false
}

// Relations implements Model.
func (m InstanceModel) Relations() []string { return []string{m.Inst.Schema().Name()} }

// Tuples implements Model.
func (m InstanceModel) Tuples(rel string, yield func(relation.Tuple) bool) {
	if rel != m.Inst.Schema().Name() {
		return
	}
	m.Inst.Range(func(_ relation.TupleID, t relation.Tuple) bool { return yield(t) })
}

// Contains implements Model in O(1) via the instance's key index.
func (m InstanceModel) Contains(rel string, t relation.Tuple) bool {
	return rel == m.Inst.Schema().Name() && m.Inst.Contains(t)
}

// TuplesEq implements IndexedModel on the instance's secondary index.
func (m InstanceModel) TuplesEq(rel string, attr int, v relation.Value, yield func(relation.Tuple) bool) bool {
	if rel != m.Inst.Schema().Name() {
		return true // no such relation: zero visible tuples
	}
	m.Inst.IndexScan(attr, v, func(_ relation.TupleID, t relation.Tuple) bool { return yield(t) })
	return true
}

// EstimateEq implements IndexedModel.
func (m InstanceModel) EstimateEq(rel string, attr int, v relation.Value) int {
	if rel != m.Inst.Schema().Name() {
		return 0
	}
	return m.Inst.IndexEstimate(attr, v)
}

// Card implements IndexedModel.
func (m InstanceModel) Card(rel string) int {
	if rel != m.Inst.Schema().Name() {
		return 0
	}
	return m.Inst.Len()
}

// Backing implements ColumnarModel: the whole instance is visible.
func (m InstanceModel) Backing(rel string) (*relation.Instance, *bitset.Set, bool) {
	if rel != m.Inst.Schema().Name() {
		return nil, nil, false
	}
	return m.Inst, nil, true
}

// SubsetModel exposes a subset of an instance (e.g. a repair) as a
// single-relation model.
type SubsetModel struct {
	Inst *relation.Instance
	IDs  *bitset.Set
}

// Schema implements Model.
func (m SubsetModel) Schema(rel string) (*relation.Schema, bool) {
	if rel == m.Inst.Schema().Name() {
		return m.Inst.Schema(), true
	}
	return nil, false
}

// Relations implements Model.
func (m SubsetModel) Relations() []string { return []string{m.Inst.Schema().Name()} }

// Tuples implements Model.
func (m SubsetModel) Tuples(rel string, yield func(relation.Tuple) bool) {
	if rel != m.Inst.Schema().Name() {
		return
	}
	m.IDs.Range(func(id int) bool {
		if id < m.Inst.NumIDs() {
			return yield(m.Inst.Tuple(id))
		}
		return true
	})
}

// Contains implements Model in O(1): a key-index lookup plus a bit
// test on the subset.
func (m SubsetModel) Contains(rel string, t relation.Tuple) bool {
	if rel != m.Inst.Schema().Name() {
		return false
	}
	id, ok := m.Inst.Lookup(t)
	return ok && m.IDs.Has(id)
}

// TuplesEq implements IndexedModel: the instance-level index narrows
// to the matching IDs and the subset filters membership per
// candidate.
func (m SubsetModel) TuplesEq(rel string, attr int, v relation.Value, yield func(relation.Tuple) bool) bool {
	if rel != m.Inst.Schema().Name() {
		return true
	}
	m.Inst.IndexScan(attr, v, func(id relation.TupleID, t relation.Tuple) bool {
		if !m.IDs.Has(id) {
			return true
		}
		return yield(t)
	})
	return true
}

// EstimateEq implements IndexedModel. The instance-level posting
// length bounds the subset count from above.
func (m SubsetModel) EstimateEq(rel string, attr int, v relation.Value) int {
	if rel != m.Inst.Schema().Name() {
		return 0
	}
	return m.Inst.IndexEstimate(attr, v)
}

// Card implements IndexedModel.
func (m SubsetModel) Card(rel string) int {
	if rel != m.Inst.Schema().Name() {
		return 0
	}
	return m.IDs.Len()
}

// Backing implements ColumnarModel: the subset is the visible view.
func (m SubsetModel) Backing(rel string) (*relation.Instance, *bitset.Set, bool) {
	if rel != m.Inst.Schema().Name() {
		return nil, nil, false
	}
	return m.Inst, m.IDs, true
}

// DBModel exposes a multi-relation database with one visible subset
// per relation. A nil subset means the whole relation is visible.
type DBModel struct {
	DB      *relation.Database
	Subsets map[string]*bitset.Set
}

// Schema implements Model.
func (m DBModel) Schema(rel string) (*relation.Schema, bool) {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return nil, false
	}
	return inst.Schema(), true
}

// Relations implements Model.
func (m DBModel) Relations() []string { return m.DB.Names() }

// Tuples implements Model.
func (m DBModel) Tuples(rel string, yield func(relation.Tuple) bool) {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return
	}
	sub := m.Subsets[rel]
	if sub == nil {
		inst.Range(func(_ relation.TupleID, t relation.Tuple) bool { return yield(t) })
		return
	}
	sub.Range(func(id int) bool {
		if id < inst.NumIDs() {
			return yield(inst.Tuple(id))
		}
		return true
	})
}

// Contains implements Model in O(1): a key-index lookup plus a bit
// test on the visible subset.
func (m DBModel) Contains(rel string, t relation.Tuple) bool {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return false
	}
	id, ok := inst.Lookup(t)
	if !ok {
		return false
	}
	sub := m.Subsets[rel]
	return sub == nil || sub.Has(id)
}

// TuplesEq implements IndexedModel; a per-relation subset (a repair
// view) filters the index candidates per ID.
func (m DBModel) TuplesEq(rel string, attr int, v relation.Value, yield func(relation.Tuple) bool) bool {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return true
	}
	sub := m.Subsets[rel]
	inst.IndexScan(attr, v, func(id relation.TupleID, t relation.Tuple) bool {
		if sub != nil && !sub.Has(id) {
			return true
		}
		return yield(t)
	})
	return true
}

// EstimateEq implements IndexedModel.
func (m DBModel) EstimateEq(rel string, attr int, v relation.Value) int {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return 0
	}
	return inst.IndexEstimate(attr, v)
}

// Card implements IndexedModel.
func (m DBModel) Card(rel string) int {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return 0
	}
	if sub := m.Subsets[rel]; sub != nil {
		return sub.Len()
	}
	return inst.Len()
}

// Backing implements ColumnarModel; a nil subset means every live
// tuple of the relation is visible.
func (m DBModel) Backing(rel string) (*relation.Instance, *bitset.Set, bool) {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return nil, nil, false
	}
	return inst, m.Subsets[rel], true
}

// Eval evaluates a closed formula over the model in the standard
// model-theoretic sense (r' |= Q), with quantifiers ranging over the
// active domain of the model extended with the formula's constants.
// It returns an error on free variables, unknown relations, arity
// mismatches, or order comparisons over names.
//
// Existential quantifiers whose body is a conjunction with relational
// atoms covering all quantified variables are compiled into a
// physical plan (see plan.go): per-atom access-path selection (index
// probe on bound attributes when the model is an IndexedModel, scan
// otherwise), selectivity-ordered join ordering, and residual
// conjuncts evaluated under the completed binding. This is sound for
// active-domain semantics: a satisfying assignment must match the
// atoms, and matched tuples only carry active-domain values.
// Everything else falls back to domain iteration, with the active
// domain collected lazily — a query that never needs domain
// iteration (e.g. a ground query, or one fully answered by plans)
// never scans the model. EvalNaive skips the planner entirely;
// EvalScan plans but forbids index access paths.
func Eval(e Expr, m Model) (bool, error) {
	return EvalCtx(nil, e, m)
}

// EvalCtx is Eval with cancellation: a non-nil ctx is checked
// periodically as candidate rows and domain values are iterated, so
// a deadline aborts a long evaluation with ctx.Err() mid-join
// instead of running to completion. A nil ctx disables the checks.
func EvalCtx(ctx context.Context, e Expr, m Model) (bool, error) {
	if fv := FreeVars(e); len(fv) != 0 {
		return false, fmt.Errorf("query: formula is not closed, free variables %v", fv)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, err
		}
	}
	ev := &evaluator{m: m, root: e, join: true, ctx: ctx}
	return ev.eval(e, map[string]relation.Value{})
}

// EvalTrace is Eval, additionally returning the physical plans that
// were compiled and executed (with estimated and actual row counts)
// for EXPLAIN-style diagnostics.
func EvalTrace(e Expr, m Model) (bool, *Trace, error) {
	return EvalTraceCtx(nil, e, m)
}

// EvalTraceCtx is EvalTrace with the cancellation behavior of
// EvalCtx.
func EvalTraceCtx(ctx context.Context, e Expr, m Model) (bool, *Trace, error) {
	if fv := FreeVars(e); len(fv) != 0 {
		return false, nil, fmt.Errorf("query: formula is not closed, free variables %v", fv)
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return false, nil, err
		}
	}
	tr := &Trace{}
	ev := &evaluator{m: m, root: e, join: true, trace: tr, ctx: ctx}
	res, err := ev.eval(e, map[string]relation.Value{})
	return res, tr, err
}

// EvalNaive is Eval with the planner disabled: quantifiers always
// iterate the active domain. Exposed for differential testing and
// the evaluator ablation benchmarks.
func EvalNaive(e Expr, m Model) (bool, error) {
	if fv := FreeVars(e); len(fv) != 0 {
		return false, fmt.Errorf("query: formula is not closed, free variables %v", fv)
	}
	ev := &evaluator{m: m, root: e}
	return ev.eval(e, map[string]relation.Value{})
}

// EvalScan is Eval with index access paths disabled: the planner
// still orders the join, but every atom is answered by scanning the
// visible tuples. Exposed for the indexed-vs-scan ablation
// benchmarks; results are identical to Eval.
func EvalScan(e Expr, m Model) (bool, error) {
	return Eval(e, ScanOnly(m))
}

// EvalGreedy is Eval with the Yannakakis executor disabled: acyclic
// multi-atom queries run the greedy vectorized nested-loop order even
// when semijoin reduction would be cheaper. Exposed for differential
// testing and the Yannakakis-vs-greedy ablation benchmarks; results
// are identical to Eval.
func EvalGreedy(e Expr, m Model) (bool, error) {
	if fv := FreeVars(e); len(fv) != 0 {
		return false, fmt.Errorf("query: formula is not closed, free variables %v", fv)
	}
	ev := &evaluator{m: m, root: e, join: true, greedyOnly: true}
	return ev.eval(e, map[string]relation.Value{})
}

// activeDomain collects the distinct values of all visible tuples
// plus the formula's constants.
func activeDomain(m Model, e Expr) []relation.Value {
	seen := map[string]bool{}
	var out []relation.Value
	add := func(v relation.Value) {
		k := v.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	for _, rel := range m.Relations() {
		m.Tuples(rel, func(t relation.Tuple) bool {
			for _, v := range t {
				add(v)
			}
			return true
		})
	}
	for _, v := range Constants(e) {
		add(v)
	}
	return out
}

type evaluator struct {
	m    Model
	root Expr // the formula being evaluated, for domain constants
	// domain is the active domain, collected lazily by dom(): only a
	// quantifier that actually falls back to domain iteration pays
	// the full model scan. domainOK marks it collected (the domain of
	// an empty model is legitimately nil).
	domain   []relation.Value
	domainOK bool
	join     bool   // enable the plan-based fast path
	trace    *Trace // when non-nil, collect executed plans
	// greedyOnly disables the Yannakakis executor (vectorized greedy
	// and tuple-at-a-time paths still run), for ablation.
	greedyOnly bool
	// ctx, when non-nil, cancels the evaluation: tick() samples it
	// every few hundred iterated candidates (plan rows and domain
	// values), bounding how far past a deadline an evaluation runs.
	ctx   context.Context
	steps int
}

// tick reports the context's cancellation, sampled every 256 calls
// to keep the per-row overhead negligible.
func (ev *evaluator) tick() error {
	if ev.ctx == nil {
		return nil
	}
	ev.steps++
	if ev.steps&255 != 0 {
		return nil
	}
	return ev.ctx.Err()
}

// dom returns the active domain, collecting it on first use.
func (ev *evaluator) dom() []relation.Value {
	if !ev.domainOK {
		ev.domain = activeDomain(ev.m, ev.root)
		ev.domainOK = true
	}
	return ev.domain
}

func (ev *evaluator) eval(e Expr, env map[string]relation.Value) (bool, error) {
	switch n := e.(type) {
	case Bool:
		return n.Value, nil
	case Atom:
		return ev.evalAtom(n, env)
	case Cmp:
		return ev.evalCmp(n, env)
	case Not:
		v, err := ev.eval(n.Body, env)
		return !v, err
	case And:
		l, err := ev.eval(n.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.eval(n.R, env)
	case Or:
		l, err := ev.eval(n.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.eval(n.R, env)
	case Quant:
		return ev.evalQuant(n, env, 0)
	default:
		return false, fmt.Errorf("query: cannot evaluate node %T", e)
	}
}

func (ev *evaluator) evalQuant(q Quant, env map[string]relation.Value, i int) (bool, error) {
	if ev.join && i == 0 {
		if q.All {
			// ∀x̄.φ ≡ ¬∃x̄.¬φ, which the planner can often handle
			// (e.g. guarded universals NOT R(x̄) OR ψ).
			v, err := ev.eval(Quant{Vars: q.Vars, Body: NNF(Not{Body: q.Body})}, env)
			return !v, err
		}
		p, ok, err := ev.compileExists(q, env)
		if err != nil {
			return false, err
		}
		if ok {
			var exec *PlanExec
			if ev.trace != nil {
				exec = &PlanExec{Plan: p, ActRows: make([]int, len(p.Steps)), Executor: ExecTuple}
				ev.trace.Execs = append(ev.trace.Execs, exec)
			}
			if !p.Unsat {
				// Models exposing their columnar backing take the
				// vectorized path: batch execution over tuple-ID
				// candidates, with a Yannakakis semijoin reduction for
				// acyclic multi-atom queries when it wins on cost.
				if cm, columnar := ev.m.(ColumnarModel); columnar {
					if vp := ev.compileVec(cm, p, env); vp != nil {
						return ev.runVec(vp, exec, env)
					}
				}
			}
			return ev.runPlan(p, exec, env)
		}
	}
	if i == len(q.Vars) {
		return ev.eval(q.Body, env)
	}
	name := q.Vars[i]
	saved, had := env[name]
	defer func() {
		if had {
			env[name] = saved
		} else {
			delete(env, name)
		}
	}()
	for _, v := range ev.dom() {
		if err := ev.tick(); err != nil {
			return false, err
		}
		env[name] = v
		res, err := ev.evalQuant(q, env, i+1)
		if err != nil {
			return false, err
		}
		if q.All && !res {
			return false, nil
		}
		if !q.All && res {
			return true, nil
		}
	}
	return q.All, nil
}

func (ev *evaluator) resolve(t Term, env map[string]relation.Value) (relation.Value, error) {
	switch x := t.(type) {
	case Const:
		return x.Value, nil
	case Var:
		v, ok := env[x.Name]
		if !ok {
			return relation.Value{}, fmt.Errorf("query: unbound variable %s", x.Name)
		}
		return v, nil
	default:
		return relation.Value{}, fmt.Errorf("query: unknown term %T", t)
	}
}

func (ev *evaluator) evalAtom(a Atom, env map[string]relation.Value) (bool, error) {
	schema, ok := ev.m.Schema(a.Rel)
	if !ok {
		return false, fmt.Errorf("query: unknown relation %q", a.Rel)
	}
	if len(a.Args) != schema.Arity() {
		return false, fmt.Errorf("query: %s expects %d arguments, got %d", a.Rel, schema.Arity(), len(a.Args))
	}
	tup := make(relation.Tuple, len(a.Args))
	for i, t := range a.Args {
		v, err := ev.resolve(t, env)
		if err != nil {
			return false, err
		}
		// A value of the wrong kind cannot be in the relation.
		if v.Kind() != schema.Attr(i).Kind {
			return false, nil
		}
		tup[i] = v
	}
	return ev.m.Contains(a.Rel, tup), nil
}

func (ev *evaluator) evalCmp(c Cmp, env map[string]relation.Value) (bool, error) {
	l, err := ev.resolve(c.L, env)
	if err != nil {
		return false, err
	}
	r, err := ev.resolve(c.R, env)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case EQ:
		return l.Equal(r), nil
	case NE:
		return !l.Equal(r), nil
	}
	// Order comparisons are only defined on N (§2). Quantified
	// variables range over the whole active domain, so a name reaching
	// an order comparison is simply false rather than an error.
	if l.Kind() != relation.KindInt || r.Kind() != relation.KindInt {
		return false, nil
	}
	cv, err := l.Compare(r)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case LT:
		return cv < 0, nil
	case LE:
		return cv <= 0, nil
	case GT:
		return cv > 0, nil
	case GE:
		return cv >= 0, nil
	default:
		return false, fmt.Errorf("query: unknown comparison operator %v", c.Op)
	}
}
