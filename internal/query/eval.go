package query

import (
	"fmt"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// Model is a finite first-order structure a formula is evaluated
// against: a set of visible tuples per relation. Repairs are
// evaluated as views — an instance plus a tuple-ID subset — without
// materializing the repair.
type Model interface {
	// Schema returns the schema of a relation, if present.
	Schema(rel string) (*relation.Schema, bool)
	// Relations lists the relation names in the model.
	Relations() []string
	// Tuples iterates the visible tuples of rel; stop early by
	// returning false.
	Tuples(rel string, yield func(relation.Tuple) bool)
	// Contains reports whether the visible part of rel has the tuple.
	Contains(rel string, t relation.Tuple) bool
}

// InstanceModel exposes a whole instance as a single-relation model.
type InstanceModel struct{ Inst *relation.Instance }

// Schema implements Model.
func (m InstanceModel) Schema(rel string) (*relation.Schema, bool) {
	if rel == m.Inst.Schema().Name() {
		return m.Inst.Schema(), true
	}
	return nil, false
}

// Relations implements Model.
func (m InstanceModel) Relations() []string { return []string{m.Inst.Schema().Name()} }

// Tuples implements Model.
func (m InstanceModel) Tuples(rel string, yield func(relation.Tuple) bool) {
	if rel != m.Inst.Schema().Name() {
		return
	}
	m.Inst.Range(func(_ relation.TupleID, t relation.Tuple) bool { return yield(t) })
}

// Contains implements Model.
func (m InstanceModel) Contains(rel string, t relation.Tuple) bool {
	return rel == m.Inst.Schema().Name() && m.Inst.Contains(t)
}

// SubsetModel exposes a subset of an instance (e.g. a repair) as a
// single-relation model.
type SubsetModel struct {
	Inst *relation.Instance
	IDs  *bitset.Set
}

// Schema implements Model.
func (m SubsetModel) Schema(rel string) (*relation.Schema, bool) {
	if rel == m.Inst.Schema().Name() {
		return m.Inst.Schema(), true
	}
	return nil, false
}

// Relations implements Model.
func (m SubsetModel) Relations() []string { return []string{m.Inst.Schema().Name()} }

// Tuples implements Model.
func (m SubsetModel) Tuples(rel string, yield func(relation.Tuple) bool) {
	if rel != m.Inst.Schema().Name() {
		return
	}
	m.IDs.Range(func(id int) bool {
		if id < m.Inst.NumIDs() {
			return yield(m.Inst.Tuple(id))
		}
		return true
	})
}

// Contains implements Model.
func (m SubsetModel) Contains(rel string, t relation.Tuple) bool {
	if rel != m.Inst.Schema().Name() {
		return false
	}
	id, ok := m.Inst.Lookup(t)
	return ok && m.IDs.Has(id)
}

// DBModel exposes a multi-relation database with one visible subset
// per relation. A nil subset means the whole relation is visible.
type DBModel struct {
	DB      *relation.Database
	Subsets map[string]*bitset.Set
}

// Schema implements Model.
func (m DBModel) Schema(rel string) (*relation.Schema, bool) {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return nil, false
	}
	return inst.Schema(), true
}

// Relations implements Model.
func (m DBModel) Relations() []string { return m.DB.Names() }

// Tuples implements Model.
func (m DBModel) Tuples(rel string, yield func(relation.Tuple) bool) {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return
	}
	sub := m.Subsets[rel]
	if sub == nil {
		inst.Range(func(_ relation.TupleID, t relation.Tuple) bool { return yield(t) })
		return
	}
	sub.Range(func(id int) bool {
		if id < inst.NumIDs() {
			return yield(inst.Tuple(id))
		}
		return true
	})
}

// Contains implements Model.
func (m DBModel) Contains(rel string, t relation.Tuple) bool {
	inst, ok := m.DB.Relation(rel)
	if !ok {
		return false
	}
	id, ok := inst.Lookup(t)
	if !ok {
		return false
	}
	sub := m.Subsets[rel]
	return sub == nil || sub.Has(id)
}

// Eval evaluates a closed formula over the model in the standard
// model-theoretic sense (r' |= Q), with quantifiers ranging over the
// active domain of the model extended with the formula's constants.
// It returns an error on free variables, unknown relations, arity
// mismatches, or order comparisons over names.
//
// Existential quantifiers whose body is a conjunction with relational
// atoms covering all quantified variables are evaluated by a
// backtracking join over the atoms (sound for active-domain
// semantics: a satisfying assignment must match the atoms, and
// matched tuples only carry active-domain values); everything else
// falls back to domain iteration. EvalNaive skips the join path.
func Eval(e Expr, m Model) (bool, error) {
	if fv := FreeVars(e); len(fv) != 0 {
		return false, fmt.Errorf("query: formula is not closed, free variables %v", fv)
	}
	ev := &evaluator{m: m, domain: activeDomain(m, e), join: true}
	return ev.eval(e, map[string]relation.Value{})
}

// EvalNaive is Eval with the join optimization disabled: quantifiers
// always iterate the active domain. Exposed for differential testing
// and the evaluator ablation benchmarks.
func EvalNaive(e Expr, m Model) (bool, error) {
	if fv := FreeVars(e); len(fv) != 0 {
		return false, fmt.Errorf("query: formula is not closed, free variables %v", fv)
	}
	ev := &evaluator{m: m, domain: activeDomain(m, e)}
	return ev.eval(e, map[string]relation.Value{})
}

// activeDomain collects the distinct values of all visible tuples
// plus the formula's constants.
func activeDomain(m Model, e Expr) []relation.Value {
	seen := map[string]bool{}
	var out []relation.Value
	add := func(v relation.Value) {
		k := v.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	for _, rel := range m.Relations() {
		m.Tuples(rel, func(t relation.Tuple) bool {
			for _, v := range t {
				add(v)
			}
			return true
		})
	}
	for _, v := range Constants(e) {
		add(v)
	}
	return out
}

type evaluator struct {
	m      Model
	domain []relation.Value
	join   bool // enable the backtracking-join fast path
}

func (ev *evaluator) eval(e Expr, env map[string]relation.Value) (bool, error) {
	switch n := e.(type) {
	case Bool:
		return n.Value, nil
	case Atom:
		return ev.evalAtom(n, env)
	case Cmp:
		return ev.evalCmp(n, env)
	case Not:
		v, err := ev.eval(n.Body, env)
		return !v, err
	case And:
		l, err := ev.eval(n.L, env)
		if err != nil || !l {
			return false, err
		}
		return ev.eval(n.R, env)
	case Or:
		l, err := ev.eval(n.L, env)
		if err != nil || l {
			return l, err
		}
		return ev.eval(n.R, env)
	case Quant:
		return ev.evalQuant(n, env, 0)
	default:
		return false, fmt.Errorf("query: cannot evaluate node %T", e)
	}
}

func (ev *evaluator) evalQuant(q Quant, env map[string]relation.Value, i int) (bool, error) {
	if ev.join && i == 0 {
		if q.All {
			// ∀x̄.φ ≡ ¬∃x̄.¬φ, which the join path can often handle
			// (e.g. guarded universals NOT R(x̄) OR ψ).
			v, err := ev.eval(Quant{Vars: q.Vars, Body: NNF(Not{Body: q.Body})}, env)
			return !v, err
		}
		if done, res, err := ev.evalExistsJoin(q, env); done {
			return res, err
		}
	}
	if i == len(q.Vars) {
		return ev.eval(q.Body, env)
	}
	name := q.Vars[i]
	saved, had := env[name]
	defer func() {
		if had {
			env[name] = saved
		} else {
			delete(env, name)
		}
	}()
	for _, v := range ev.domain {
		env[name] = v
		res, err := ev.evalQuant(q, env, i+1)
		if err != nil {
			return false, err
		}
		if q.All && !res {
			return false, nil
		}
		if !q.All && res {
			return true, nil
		}
	}
	return q.All, nil
}

func (ev *evaluator) resolve(t Term, env map[string]relation.Value) (relation.Value, error) {
	switch x := t.(type) {
	case Const:
		return x.Value, nil
	case Var:
		v, ok := env[x.Name]
		if !ok {
			return relation.Value{}, fmt.Errorf("query: unbound variable %s", x.Name)
		}
		return v, nil
	default:
		return relation.Value{}, fmt.Errorf("query: unknown term %T", t)
	}
}

func (ev *evaluator) evalAtom(a Atom, env map[string]relation.Value) (bool, error) {
	schema, ok := ev.m.Schema(a.Rel)
	if !ok {
		return false, fmt.Errorf("query: unknown relation %q", a.Rel)
	}
	if len(a.Args) != schema.Arity() {
		return false, fmt.Errorf("query: %s expects %d arguments, got %d", a.Rel, schema.Arity(), len(a.Args))
	}
	tup := make(relation.Tuple, len(a.Args))
	for i, t := range a.Args {
		v, err := ev.resolve(t, env)
		if err != nil {
			return false, err
		}
		// A value of the wrong kind cannot be in the relation.
		if v.Kind() != schema.Attr(i).Kind {
			return false, nil
		}
		tup[i] = v
	}
	return ev.m.Contains(a.Rel, tup), nil
}

func (ev *evaluator) evalCmp(c Cmp, env map[string]relation.Value) (bool, error) {
	l, err := ev.resolve(c.L, env)
	if err != nil {
		return false, err
	}
	r, err := ev.resolve(c.R, env)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case EQ:
		return l.Equal(r), nil
	case NE:
		return !l.Equal(r), nil
	}
	// Order comparisons are only defined on N (§2). Quantified
	// variables range over the whole active domain, so a name reaching
	// an order comparison is simply false rather than an error.
	if l.Kind() != relation.KindInt || r.Kind() != relation.KindInt {
		return false, nil
	}
	cv, err := l.Compare(r)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case LT:
		return cv < 0, nil
	case LE:
		return cv <= 0, nil
	case GT:
		return cv > 0, nil
	case GE:
		return cv >= 0, nil
	default:
		return false, fmt.Errorf("query: unknown comparison operator %v", c.Op)
	}
}
