package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"prefcqa/internal/relation"
)

// Parse parses a formula in the concrete syntax described in the
// package documentation.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %q after end of formula", p.peek().text)
	}
	return e, nil
}

// MustParse is Parse that panics on error, for fixtures and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokOp // one of = != <> < <= > >=
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: position %d: unexpected '!'", i)
			}
		case c == '<':
			switch {
			case i+1 < len(src) && src[i+1] == '=':
				toks = append(toks, token{tokOp, "<=", i})
				i += 2
			case i+1 < len(src) && src[i+1] == '>':
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			default:
				toks = append(toks, token{tokOp, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokOp, ">", i})
				i++
			}
		case c == '\'' || c == '"':
			quote := byte(c)
			j := i + 1
			var b strings.Builder
			closed := false
			for j < len(src) {
				if src[j] == quote {
					if j+1 < len(src) && src[j+1] == quote { // doubled quote
						b.WriteByte(quote)
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				b.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("query: position %d: unterminated string", i)
			}
			toks = append(toks, token{tokString, b.String(), i})
			i = j
		case c == '-' || unicode.IsDigit(c):
			j := i + 1
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			if j == i+1 && c == '-' {
				return nil, fmt.Errorf("query: position %d: unexpected '-'", i)
			}
			toks = append(toks, token{tokInt, src[i:j], i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < len(src) {
				r := rune(src[j])
				if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
					j++
				} else {
					break
				}
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("query: position %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("query: position %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword() string {
	t := p.peek()
	if t.kind != tokIdent {
		return ""
	}
	return strings.ToUpper(t.text)
}

// formula := quantified | or
func (p *parser) formula() (Expr, error) {
	if kw := p.keyword(); kw == "EXISTS" || kw == "FORALL" {
		p.next()
		var vars []string
		for {
			t := p.peek()
			if t.kind != tokIdent {
				return nil, p.errorf("expected variable name, got %q", t.text)
			}
			if isKeyword(strings.ToUpper(t.text)) {
				return nil, p.errorf("keyword %q cannot be a variable", t.text)
			}
			vars = append(vars, t.text)
			p.next()
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokDot {
			return nil, p.errorf("expected '.' after quantified variables, got %q", p.peek().text)
		}
		p.next()
		body, err := p.formula()
		if err != nil {
			return nil, err
		}
		return Quant{All: kw == "FORALL", Vars: vars, Body: body}, nil
	}
	return p.or()
}

// or := and { OR and }
func (p *parser) or() (Expr, error) {
	left, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.keyword() == "OR" {
		p.next()
		right, err := p.and()
		if err != nil {
			return nil, err
		}
		left = Or{L: left, R: right}
	}
	return left, nil
}

// and := unary { AND unary }
func (p *parser) and() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.keyword() == "AND" {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = And{L: left, R: right}
	}
	return left, nil
}

// unary := NOT unary | primary
func (p *parser) unary() (Expr, error) {
	if p.keyword() == "NOT" {
		p.next()
		body, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Not{Body: body}, nil
	}
	return p.primary()
}

// primary := '(' formula ')' | TRUE | FALSE | quantified | atom | cmp
func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		e, err := p.formula()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errorf("expected ')', got %q", p.peek().text)
		}
		p.next()
		return e, nil
	case p.keyword() == "TRUE":
		p.next()
		return Bool{Value: true}, nil
	case p.keyword() == "FALSE":
		p.next()
		return Bool{Value: false}, nil
	case p.keyword() == "EXISTS" || p.keyword() == "FORALL":
		return p.formula()
	case t.kind == tokIdent && p.toks[p.i+1].kind == tokLParen:
		return p.atom()
	default:
		return p.comparison()
	}
}

// atom := ident '(' term {',' term} ')'
func (p *parser) atom() (Expr, error) {
	rel := p.next().text
	p.next() // '('
	var args []Term
	if p.peek().kind == tokRParen {
		return nil, p.errorf("relation %s needs at least one argument", rel)
	}
	for {
		tm, err := p.term()
		if err != nil {
			return nil, err
		}
		args = append(args, tm)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.peek().kind != tokRParen {
		return nil, p.errorf("expected ')' in %s atom, got %q", rel, p.peek().text)
	}
	p.next()
	return Atom{Rel: rel, Args: args}, nil
}

// comparison := term op term
func (p *parser) comparison() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, p.errorf("expected comparison operator, got %q", t.text)
	}
	p.next()
	var op CmpOp
	switch t.text {
	case "=":
		op = EQ
	case "!=":
		op = NE
	case "<":
		op = LT
	case "<=":
		op = LE
	case ">":
		op = GT
	case ">=":
		op = GE
	}
	r, err := p.term()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: op, L: l, R: r}, nil
}

// term := ident | int | string
func (p *parser) term() (Term, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		if isKeyword(strings.ToUpper(t.text)) {
			return nil, p.errorf("keyword %q cannot be a term", t.text)
		}
		p.next()
		return Var{Name: t.text}, nil
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %q: %v", t.text, err)
		}
		return Const{Value: relation.Int(n)}, nil
	case tokString:
		p.next()
		return Const{Value: relation.Name(t.text)}, nil
	default:
		return nil, p.errorf("expected term, got %q", t.text)
	}
}

func isKeyword(up string) bool {
	switch up {
	case "AND", "OR", "NOT", "EXISTS", "FORALL", "TRUE", "FALSE":
		return true
	}
	return false
}
