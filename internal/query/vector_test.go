package query

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/relation"
)

// acyclicCorpus is the query mix the vectorized differential tests
// pin: chains, stars, trees (Yannakakis-eligible), cyclic spines —
// shared pair, triangle, 4-clique, bowtie (generic-join-eligible) —
// plus residual comparisons and negation that force env
// materialization.
var acyclicCorpus = []string{
	"EXISTS a, b . R(a, b)",
	"EXISTS a, b, c . R(a, b) AND T(b, c)",
	"EXISTS a, b, c, d . R(a, b) AND T(b, c) AND S(c, d)",
	"EXISTS h, a, b . R(h, a) AND T(h, b)",
	"EXISTS h, a, b, c . R(h, a) AND T(h, b) AND T(b, c)",
	"EXISTS a, b, c, d . R(a, b) AND T(b, c) AND T(b, d) AND c < d",
	"EXISTS a, b . R(a, b) AND T(b, a)",
	"EXISTS a, b . R(a, b) AND T(a, b) AND a <= b",
	"EXISTS a, b, c . R(a, b) AND T(b, c) AND NOT S(c, 'n0')",
	"EXISTS a, b, c . R(0, a) AND T(a, b) AND S(b, c)",
	"FORALL a, b . NOT R(a, b) OR (EXISTS c . T(b, c))",
	"EXISTS a . R(a, a) AND T(a, a)",
	// Cyclic spines: triangle, triangle with a residual and with a
	// selective constant, kind-mismatched triangle through the name
	// column, 4-clique, bowtie (two triangles sharing vertex a).
	"EXISTS a, b, c . R(a, b) AND T(b, c) AND R(c, a)",
	"EXISTS a, b, c . R(a, b) AND T(b, c) AND R(c, a) AND a < c",
	"EXISTS a, b, c . R(a, b) AND T(b, c) AND R(c, a) AND R(1, a)",
	"EXISTS a, b, c . R(a, b) AND S(b, c) AND T(c, a)",
	"EXISTS a, b, c, d . R(a, b) AND R(a, c) AND R(a, d) AND T(b, c) AND T(b, d) AND R(c, d)",
	"EXISTS a, b, c, d, e . R(a, b) AND T(b, c) AND R(c, a) AND T(a, d) AND R(d, e) AND T(e, a)",
}

// mutableTriple is a three-relation database the differential tests
// mutate in place: R(A,B) and T(E,F) join on ints, S(C,D) carries a
// name column so kind mismatches occur.
type mutableTriple struct {
	db      *relation.Database
	r, s, t *relation.Instance
}

func newMutableTriple() *mutableTriple {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B")))
	s := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("C"), relation.NameAttr("D")))
	tr := relation.NewInstance(relation.MustSchema("T", relation.IntAttr("E"), relation.IntAttr("F")))
	for _, inst := range []*relation.Instance{r, s, tr} {
		if err := db.AddInstance(inst); err != nil {
			panic(err)
		}
	}
	return &mutableTriple{db: db, r: r, s: s, t: tr}
}

// fork freezes the current head and redirects future mutations to a
// fresh version chain layer, returning the new head database.
func (m *mutableTriple) fork() {
	db := relation.NewDatabase()
	m.r = m.r.Fork()
	m.s = m.s.Fork()
	m.t = m.t.Fork()
	for _, inst := range []*relation.Instance{m.r, m.s, m.t} {
		if err := db.AddInstance(inst); err != nil {
			panic(err)
		}
	}
	m.db = db
}

func (m *mutableTriple) mutate(rng *rand.Rand) {
	for i := 0; i < 3+rng.Intn(5); i++ {
		switch rng.Intn(4) {
		case 0:
			m.r.MustInsert(rng.Intn(4), rng.Intn(4))
		case 1:
			m.t.MustInsert(rng.Intn(4), rng.Intn(4))
		case 2:
			m.s.MustInsert(rng.Intn(4), fmt.Sprintf("n%d", rng.Intn(2)))
		default:
			// Tombstone a random live tuple of a random relation: the
			// vectorized path must skip dead IDs in every posting.
			insts := []*relation.Instance{m.r, m.s, m.t}
			inst := insts[rng.Intn(len(insts))]
			if n := inst.NumIDs(); n > 0 {
				inst.Delete(rng.Intn(n))
			}
		}
	}
}

// checkCorpus requires the four strategies to agree bit-for-bit on
// every corpus query over m.
func checkCorpus(t *testing.T, tag string, m Model) {
	t.Helper()
	for _, src := range acyclicCorpus {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: parse %q: %v", tag, src, err)
		}
		planned, errP := Eval(q, m)
		greedy, errG := EvalGreedy(q, m)
		scan, errS := EvalScan(q, m)
		naive, errN := EvalNaive(q, m)
		for _, e := range []error{errP, errG, errS} {
			if (e == nil) != (errN == nil) {
				t.Fatalf("%s %q: error mismatch planned=%v greedy=%v scan=%v naive=%v", tag, src, errP, errG, errS, errN)
			}
		}
		if errN == nil && (planned != naive || greedy != naive || scan != naive) {
			t.Fatalf("%s %q: planned=%v greedy=%v scan=%v naive=%v", tag, src, planned, greedy, scan, naive)
		}
	}
}

// TestVectorizedDifferentialMutations pins Yannakakis, vectorized
// greedy and scan-only evaluation bit-for-bit against naive
// active-domain iteration across batches of random inserts and
// deletes, both over the full database and over random visible
// subsets (the repair-checking shape).
func TestVectorizedDifferentialMutations(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := newMutableTriple()
		for batch := 0; batch < 6; batch++ {
			m.mutate(rng)
			tag := fmt.Sprintf("seed %d batch %d", seed, batch)
			checkCorpus(t, tag, DBModel{DB: m.db})

			// Random subsets simulate repairs: visibility masks must
			// compose with tombstones and index postings.
			subs := map[string]*bitset.Set{}
			for _, inst := range []*relation.Instance{m.r, m.s, m.t} {
				sub := bitset.New(inst.NumIDs())
				inst.RangeIDs(func(id relation.TupleID) bool {
					if rng.Intn(3) != 0 {
						sub.Add(id)
					}
					return true
				})
				subs[inst.Schema().Name()] = sub
			}
			checkCorpus(t, tag+" subset", DBModel{DB: m.db, Subsets: subs})
		}
	}
}

// TestVectorizedDifferentialSnapshots forks a version chain and
// requires every pinned version to keep answering exactly as it did
// when it was the head, under all four strategies, while younger
// forks diverge.
func TestVectorizedDifferentialSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := newMutableTriple()
	type pinned struct {
		db  *relation.Database
		ans map[string]bool
	}
	var pins []pinned
	record := func(db *relation.Database) map[string]bool {
		ans := map[string]bool{}
		for _, src := range acyclicCorpus {
			q, err := Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EvalNaive(q, DBModel{DB: db})
			if err != nil {
				t.Fatal(err)
			}
			ans[src] = got
		}
		return ans
	}
	for round := 0; round < 5; round++ {
		m.mutate(rng)
		pins = append(pins, pinned{db: m.db, ans: record(m.db)})
		// Freeze the head and continue mutating the fork.
		m.fork()
	}
	for i, p := range pins {
		model := DBModel{DB: p.db}
		checkCorpus(t, fmt.Sprintf("pin %d", i), model)
		for _, src := range acyclicCorpus {
			q, _ := Parse(src)
			got, err := Eval(q, model)
			if err != nil {
				t.Fatal(err)
			}
			if got != p.ans[src] {
				t.Fatalf("pin %d %q: answer drifted to %v after later forks", i, src, got)
			}
		}
	}
}

// TestVectorizedConcurrentSnapshotReads evaluates the corpus over a
// pinned version from many goroutines while the head fork keeps
// mutating (and lazily building shared index postings). Run under
// -race this pins the snapshot-consistency contract of the columnar
// store and the shared secondary indexes.
func TestVectorizedConcurrentSnapshotReads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := newMutableTriple()
	for i := 0; i < 4; i++ {
		m.mutate(rng)
	}
	pinnedDB := m.db
	want := map[string]bool{}
	for _, src := range acyclicCorpus {
		q, _ := Parse(src)
		got, err := EvalNaive(q, DBModel{DB: pinnedDB})
		if err != nil {
			t.Fatal(err)
		}
		want[src] = got
	}
	m.fork()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			model := DBModel{DB: pinnedDB}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				src := acyclicCorpus[(g+i)%len(acyclicCorpus)]
				q, _ := Parse(src)
				eval := Eval
				if i%2 == 1 {
					eval = EvalGreedy
				}
				got, err := eval(q, model)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d %q: %v", g, src, err)
					return
				}
				if got != want[src] {
					errs <- fmt.Errorf("goroutine %d %q: got %v want %v under concurrent mutation", g, src, got, want[src])
					return
				}
			}
		}(g)
	}
	wrng := rand.New(rand.NewSource(8))
	for i := 0; i < 40; i++ {
		m.mutate(wrng)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestYannakakisFiresOnAcyclicChain pins the executor choice and the
// EXPLAIN surface: a selective three-atom chain must run under the
// Yannakakis executor and Describe must carry per-step batch and
// semijoin stats, while a cyclic triangle must fall back to the
// vectorized greedy executor.
func TestYannakakisFiresOnAcyclicChain(t *testing.T) {
	db := relation.NewDatabase()
	r := relation.NewInstance(relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B")))
	s := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("C"), relation.IntAttr("D")))
	u := relation.NewInstance(relation.MustSchema("U", relation.IntAttr("E"), relation.IntAttr("F")))
	for i := 0; i < 64; i++ {
		r.MustInsert(i, i)
		s.MustInsert(i, i)
		u.MustInsert(i+64, i) // S and U share no join values
	}
	for _, inst := range []*relation.Instance{r, s, u} {
		if err := db.AddInstance(inst); err != nil {
			t.Fatal(err)
		}
	}
	m := DBModel{DB: db}

	chain := "EXISTS a, b, c, d . R(a, b) AND S(b, c) AND U(c, d)"
	q, err := Parse(chain)
	if err != nil {
		t.Fatal(err)
	}
	got, tr, err := EvalTrace(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatalf("chain %q should be empty (S and U share no values)", chain)
	}
	if len(tr.Execs) == 0 {
		t.Fatal("no executed plans traced")
	}
	exec := tr.Execs[0]
	if exec.Executor != ExecYannakakis {
		t.Fatalf("executor = %q, want %q\n%s", exec.Executor, ExecYannakakis, exec.Describe())
	}
	desc := exec.Describe()
	for _, want := range []string{ExecYannakakis, "batches", "semijoin", "cost yannakakis"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}

	triangle := "EXISTS a, b, c . R(a, b) AND S(b, c) AND U(c, a)"
	q, err = Parse(triangle)
	if err != nil {
		t.Fatal(err)
	}
	got, tr, err = EvalTrace(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatalf("triangle %q should be empty (U's first column is disjoint from R's)", triangle)
	}
	exec = tr.Execs[0]
	if exec.Executor != ExecWCOJ {
		t.Fatalf("triangle executor = %q, want %q\n%s", exec.Executor, ExecWCOJ, exec.Describe())
	}
	desc = exec.Describe()
	for _, want := range []string{ExecWCOJ, "cost wcoj", "wcoj a:", "values", "probes", "matches"} {
		if !strings.Contains(desc, want) {
			t.Fatalf("Describe missing %q:\n%s", want, desc)
		}
	}

	// The greedy baseline must stay reachable for the cyclic shape.
	forced, err := EvalGreedy(q, m)
	if err != nil {
		t.Fatal(err)
	}
	if forced != got {
		t.Fatalf("EvalGreedy disagrees with WCOJ on %q: %v vs %v", triangle, forced, got)
	}
}
