// Package query implements the paper's query language: first-order
// formulas over the database relations and the binary predicates
// =, ≠, <, > (plus ≤, ≥ sugar), with < and > interpreted on the
// integer domain N only (§2). It provides a parser, standard formula
// transformations (NNF, DNF, substitution), and a model-theoretic
// evaluator with active-domain quantifier semantics, evaluating
// repairs as views (instance + tuple subset) without materializing
// them.
//
// Concrete syntax (case-insensitive keywords):
//
//	EXISTS d1, s1, r1, d2, s2, r2 .
//	    Mgr('Mary', d1, s1, r1) AND Mgr('John', d2, s2, r2) AND s1 < s2
//
// Identifiers are variables; constants are single- or double-quoted
// names ('Mary') or integer literals. Operators: = != <> < <= > >=,
// connectives AND OR NOT, quantifiers EXISTS/FORALL v1, v2 . body,
// constants TRUE/FALSE, parentheses for grouping.
package query

import (
	"fmt"
	"sort"
	"strings"

	"prefcqa/internal/relation"
)

// Term is a variable or a constant.
type Term interface {
	fmt.Stringer
	isTerm()
}

// Var is a variable term.
type Var struct{ Name string }

func (Var) isTerm() {}

// String returns the variable name.
func (v Var) String() string { return v.Name }

// Const is a constant term (a name from D or an integer from N).
type Const struct{ Value relation.Value }

func (Const) isTerm() {}

// String renders the constant in query syntax.
func (c Const) String() string { return c.Value.String() }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators. EQ and NE apply to both domains; LT, LE, GT
// and GE only to integers.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the concrete syntax of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Negate returns the complementary operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case EQ:
		return NE
	case NE:
		return EQ
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	default:
		return op
	}
}

// Expr is a first-order formula node.
type Expr interface {
	fmt.Stringer
	isExpr()
}

// Bool is the constant TRUE or FALSE.
type Bool struct{ Value bool }

// Atom is a relational atom R(t1, ..., tk).
type Atom struct {
	Rel  string
	Args []Term
}

// Cmp is a comparison t1 op t2.
type Cmp struct {
	Op   CmpOp
	L, R Term
}

// Not is negation.
type Not struct{ Body Expr }

// And is binary conjunction.
type And struct{ L, R Expr }

// Or is binary disjunction.
type Or struct{ L, R Expr }

// Quant is EXISTS (All=false) or FORALL (All=true) over one or more
// variables.
type Quant struct {
	All  bool
	Vars []string
	Body Expr
}

func (Bool) isExpr()  {}
func (Atom) isExpr()  {}
func (Cmp) isExpr()   {}
func (Not) isExpr()   {}
func (And) isExpr()   {}
func (Or) isExpr()    {}
func (Quant) isExpr() {}

// String renders TRUE or FALSE.
func (b Bool) String() string {
	if b.Value {
		return "TRUE"
	}
	return "FALSE"
}

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// String renders the comparison.
func (c Cmp) String() string { return c.L.String() + " " + c.Op.String() + " " + c.R.String() }

// String renders the negation.
func (n Not) String() string { return "NOT " + parenthesize(n.Body) }

// String renders the conjunction.
func (a And) String() string { return parenthesize(a.L) + " AND " + parenthesize(a.R) }

// String renders the disjunction.
func (o Or) String() string { return parenthesize(o.L) + " OR " + parenthesize(o.R) }

// String renders the quantifier.
func (q Quant) String() string {
	kw := "EXISTS"
	if q.All {
		kw = "FORALL"
	}
	return kw + " " + strings.Join(q.Vars, ", ") + " . " + q.Body.String()
}

func parenthesize(e Expr) string {
	switch e.(type) {
	case Bool, Atom, Cmp, Not:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// FreeVars returns the free variables of the formula in sorted order.
func FreeVars(e Expr) []string {
	set := map[string]bool{}
	collectFree(e, map[string]bool{}, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFree(e Expr, bound, out map[string]bool) {
	switch n := e.(type) {
	case Bool:
	case Atom:
		for _, t := range n.Args {
			if v, ok := t.(Var); ok && !bound[v.Name] {
				out[v.Name] = true
			}
		}
	case Cmp:
		for _, t := range []Term{n.L, n.R} {
			if v, ok := t.(Var); ok && !bound[v.Name] {
				out[v.Name] = true
			}
		}
	case Not:
		collectFree(n.Body, bound, out)
	case And:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case Or:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case Quant:
		inner := make(map[string]bool, len(bound)+len(n.Vars))
		for k := range bound {
			inner[k] = true
		}
		for _, v := range n.Vars {
			inner[v] = true
		}
		collectFree(n.Body, inner, out)
	}
}

// IsClosed reports whether the formula has no free variables.
func IsClosed(e Expr) bool { return len(FreeVars(e)) == 0 }

// IsQuantifierFree reports whether the formula contains no
// quantifiers ({∀,∃}-free in Fig. 5).
func IsQuantifierFree(e Expr) bool {
	switch n := e.(type) {
	case Bool, Atom, Cmp:
		return true
	case Not:
		return IsQuantifierFree(n.Body)
	case And:
		return IsQuantifierFree(n.L) && IsQuantifierFree(n.R)
	case Or:
		return IsQuantifierFree(n.L) && IsQuantifierFree(n.R)
	default:
		return false
	}
}

// IsGround reports whether the formula has no variables at all.
func IsGround(e Expr) bool {
	return IsQuantifierFree(e) && len(FreeVars(e)) == 0
}

// Constants returns every constant value mentioned in the formula.
func Constants(e Expr) []relation.Value {
	var out []relation.Value
	var walkTerm func(t Term)
	walkTerm = func(t Term) {
		if c, ok := t.(Const); ok {
			out = append(out, c.Value)
		}
	}
	Walk(e, func(x Expr) {
		switch n := x.(type) {
		case Atom:
			for _, t := range n.Args {
				walkTerm(t)
			}
		case Cmp:
			walkTerm(n.L)
			walkTerm(n.R)
		}
	})
	return out
}

// Atoms returns every relational atom in the formula.
func Atoms(e Expr) []Atom {
	var out []Atom
	Walk(e, func(x Expr) {
		if a, ok := x.(Atom); ok {
			out = append(out, a)
		}
	})
	return out
}

// Walk calls fn on every node of the formula in prefix order.
func Walk(e Expr, fn func(Expr)) {
	fn(e)
	switch n := e.(type) {
	case Not:
		Walk(n.Body, fn)
	case And:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case Or:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case Quant:
		Walk(n.Body, fn)
	}
}

// Validate checks the formula against the database schemas: every
// atom's relation must exist with matching arity, constants must
// match attribute kinds, and order comparisons must not involve
// name-typed constants.
func Validate(e Expr, schemas map[string]*relation.Schema) error {
	var err error
	Walk(e, func(x Expr) {
		if err != nil {
			return
		}
		switch n := x.(type) {
		case Atom:
			s, ok := schemas[n.Rel]
			if !ok {
				err = fmt.Errorf("query: unknown relation %q", n.Rel)
				return
			}
			if len(n.Args) != s.Arity() {
				err = fmt.Errorf("query: %s expects %d arguments, got %d", n.Rel, s.Arity(), len(n.Args))
				return
			}
			for i, t := range n.Args {
				if c, ok := t.(Const); ok && c.Value.Kind() != s.Attr(i).Kind {
					err = fmt.Errorf("query: %s.%s expects %s, got %s",
						n.Rel, s.Attr(i).Name, s.Attr(i).Kind, c.Value)
					return
				}
			}
		case Cmp:
			if n.Op == EQ || n.Op == NE {
				return
			}
			for _, t := range []Term{n.L, n.R} {
				if c, ok := t.(Const); ok && c.Value.Kind() != relation.KindInt {
					err = fmt.Errorf("query: order comparison %s on name constant %s", n.Op, c.Value)
					return
				}
			}
		}
	})
	return err
}
