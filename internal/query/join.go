package query

import (
	"fmt"

	"prefcqa/internal/relation"
)

// The backtracking-join fast path for existential quantifiers.
//
// An EXISTS whose body flattens into a conjunction can be answered by
// joining its positive relational atoms: every satisfying assignment
// must embed the atoms into the model's tuples, so iterating matching
// tuples enumerates exactly the candidate bindings — no |domain|^k
// scan. Residual conjuncts (comparisons, negated atoms, disjunctions,
// nested quantifiers) are evaluated under the completed binding. The
// path applies only when the positive atoms cover every quantified
// variable; otherwise the caller falls back to domain iteration.

// evalExistsJoin attempts the join path. done=false means the shape
// is unsupported and the naive path must run.
func (ev *evaluator) evalExistsJoin(q Quant, env map[string]relation.Value) (done, result bool, err error) {
	conjs := flattenAnd(q.Body)
	quantified := make(map[string]bool, len(q.Vars))
	for _, v := range q.Vars {
		quantified[v] = true
	}
	var atoms []Atom
	var residual []Expr
	covered := map[string]bool{}
	for _, c := range conjs {
		a, ok := c.(Atom)
		if !ok {
			residual = append(residual, c)
			continue
		}
		atoms = append(atoms, a)
		for _, t := range a.Args {
			if v, isVar := t.(Var); isVar && quantified[v.Name] {
				covered[v.Name] = true
			}
		}
	}
	if len(atoms) == 0 {
		return false, false, nil
	}
	for _, v := range q.Vars {
		if !covered[v] {
			// A variable occurring only in residual conjuncts needs
			// domain iteration.
			return false, false, nil
		}
	}
	res, err := ev.joinAtoms(atoms, residual, env, quantified)
	return true, res, err
}

// flattenAnd returns the conjuncts of an And-tree.
func flattenAnd(e Expr) []Expr {
	if a, ok := e.(And); ok {
		return append(flattenAnd(a.L), flattenAnd(a.R)...)
	}
	return []Expr{e}
}

// joinAtoms backtracks over the atoms, extending env with bindings
// for the quantified variables, and evaluates the residual conjuncts
// once all atoms are embedded.
func (ev *evaluator) joinAtoms(atoms []Atom, residual []Expr, env map[string]relation.Value, quantified map[string]bool) (bool, error) {
	if len(atoms) == 0 {
		for _, c := range residual {
			v, err := ev.eval(c, env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	}
	a := atoms[0]
	schema, ok := ev.m.Schema(a.Rel)
	if !ok {
		return false, errUnknownRelation(a.Rel)
	}
	if len(a.Args) != schema.Arity() {
		return false, errArity(a.Rel, schema.Arity(), len(a.Args))
	}
	found := false
	var loopErr error
	ev.m.Tuples(a.Rel, func(t relation.Tuple) bool {
		var bound []string
		match := true
		for i, term := range a.Args {
			switch x := term.(type) {
			case Const:
				if !x.Value.Equal(t[i]) {
					match = false
				}
			case Var:
				if val, has := env[x.Name]; has {
					if !val.Equal(t[i]) {
						match = false
					}
				} else if quantified[x.Name] {
					env[x.Name] = t[i]
					bound = append(bound, x.Name)
				} else {
					// A variable that is neither bound nor quantified
					// here cannot occur in a well-formed evaluation.
					loopErr = errUnbound(x.Name)
					match = false
				}
			}
			if !match || loopErr != nil {
				break
			}
		}
		if match && loopErr == nil {
			res, err := ev.joinAtoms(atoms[1:], residual, env, quantified)
			if err != nil {
				loopErr = err
			} else if res {
				found = true
			}
		}
		for _, name := range bound {
			delete(env, name)
		}
		return !found && loopErr == nil
	})
	return found, loopErr
}

// Error helpers shared with the naive evaluator.

func errUnknownRelation(rel string) error {
	return fmt.Errorf("query: unknown relation %q", rel)
}

func errArity(rel string, want, got int) error {
	return fmt.Errorf("query: %s expects %d arguments, got %d", rel, want, got)
}

func errUnbound(name string) error {
	return fmt.Errorf("query: unbound variable %s", name)
}
