// Package workload generates the instances, dependencies and
// priorities used by tests, examples and the experiment harness. It
// contains the paper's examples verbatim (Examples 1/3, 4, 7, 8, 9)
// and parametric families whose conflict-graph shapes scale them up:
//
//	Pairs(n)        Example 4: n disjoint conflict edges, 2^n repairs
//	Chain(n)        Example 9: a conflict path of n tuples (two FDs)
//	Clusters(m, k)  m independent key-violation cliques of size k
//	Bipartite(m, k) K_{m,k} mutual-conflict components (§3.3 shape)
//	Integration(..) multi-source union with reliability ranks (§1)
//	Random(...)     random instances over R(A,B,C) with two FDs
package workload

import (
	"fmt"
	"math/rand"

	"prefcqa/internal/conflict"
	"prefcqa/internal/fd"
	"prefcqa/internal/priority"
	"prefcqa/internal/relation"
)

// Scenario bundles a generated instance with its dependencies,
// conflict graph and priority.
type Scenario struct {
	Name string
	Desc string
	Inst *relation.Instance
	FDs  *fd.Set
	Pri  *priority.Priority
}

// Graph returns the scenario's conflict graph.
func (s *Scenario) Graph() *conflict.Graph { return s.Pri.Graph() }

func build(name, desc string, inst *relation.Instance, fds *fd.Set) *Scenario {
	g := conflict.MustBuild(inst, fds)
	return &Scenario{Name: name, Desc: desc, Inst: inst, FDs: fds, Pri: priority.New(g)}
}

// Pairs builds Example 4's instance r_n = {(0,0),(0,1),...,(n-1,0),
// (n-1,1)} over R(A,B) with A -> B: n independent conflict pairs and
// 2^n repairs. Figure 1 shows n = 4.
func Pairs(n int) *Scenario {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(i, 0)
		inst.MustInsert(i, 1)
	}
	return build(fmt.Sprintf("pairs(%d)", n),
		"Example 4: n disjoint conflict edges, 2^n repairs",
		inst, fd.MustParseSet(s, "A -> B"))
}

// Chain builds a conflict path of n tuples over R(A,B,C,D) with
// F = {A -> B, C -> D}, generalizing Example 9: tuple i conflicts
// tuple i+1, alternating between the two dependencies. The returned
// priority orients every edge i ≻ i+1 (the paper's chain priority).
func Chain(n int) *Scenario {
	if n < 1 {
		panic("workload: Chain needs n >= 1")
	}
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
	inst := relation.NewInstance(s)
	// Tuple i: A-group pairs (2i, 2i+1) share A value; C-group pairs
	// (2i+1, 2i+2) share C value. Values chosen so exactly the path
	// edges appear.
	for i := 0; i < n; i++ {
		a := (i + 1) / 2 // tuples 2k-1, 2k share a-group k
		c := i / 2       // tuples 2k, 2k+1 share c-group k
		b := i % 2       // alternate to create the A->B conflict
		d := (i + 1) % 2 // alternate to create the C->D conflict
		inst.MustInsert(a, b, c+1000, d)
	}
	sc := build(fmt.Sprintf("chain(%d)", n),
		"Example 9 generalized: a conflict path under two FDs",
		inst, fd.MustParseSet(s, "A -> B", "C -> D"))
	for i := 0; i+1 < n; i++ {
		sc.Pri.MustAdd(i, i+1)
	}
	return sc
}

// Clusters builds m independent clusters of k mutually conflicting
// tuples (key violations: same key, k distinct values) over R(K,V)
// with K -> V. Each cluster is a k-clique, so there are k^m repairs.
func Clusters(m, k int) *Scenario {
	s := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
	inst := relation.NewInstance(s)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			inst.MustInsert(i, j)
		}
	}
	return build(fmt.Sprintf("clusters(%d,%d)", m, k),
		"m independent key-violation cliques of size k",
		inst, fd.MustParseSet(s, "K -> V"))
}

// Bipartite builds one complete bipartite mutual-conflict component
// of n tuples over R(A,B,C,D,E) with F = {A -> B, C -> D}: even-ID
// tuples form one side, odd-ID tuples the other, and every cross-side
// pair conflicts — the §3.3 shape where tuples are involved in
// conflicts from more than one dependency. The two repairs are the
// sides; consecutive IDs are always adjacent, so chain priorities
// (i ≻ i+1) can be added directly. Bipartite(5) with the chain
// priority is the reconstruction of the paper's Example 9 (Fig. 4).
func Bipartite(n int) *Scenario {
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"),
		relation.IntAttr("E"))
	inst := relation.NewInstance(s)
	// All tuples share the A-group and the C-group; the B and D
	// values are constant per side, so conflicts (under both FDs) are
	// exactly the cross-side pairs.
	for i := 0; i < n; i++ {
		side := i%2 + 1
		inst.MustInsert(1, side, 1, side, i)
	}
	return build(fmt.Sprintf("bipartite(%d)", n),
		"complete bipartite mutual-conflict component under two FDs",
		inst, fd.MustParseSet(s, "A -> B", "C -> D"))
}

// ChainBipartite is Bipartite(n) with the chain priority
// t0 ≻ t1 ≻ ... ≻ t(n-1); for n = 5 it reconstructs the intended
// content of the paper's Example 9: S-Rep keeps both sides, G-Rep and
// C-Rep keep only the even side.
func ChainBipartite(n int) *Scenario {
	sc := Bipartite(n)
	for i := 0; i+1 < n; i++ {
		sc.Pri.MustAdd(i, i+1)
	}
	sc.Name = fmt.Sprintf("chain-bipartite(%d)", n)
	return sc
}

// Source is one input of the Integration scenario: a consistent
// relation with a reliability rank (0 = most reliable).
type Source struct {
	Inst *relation.Instance
	Rank int
}

// Integration unions the sources (Example 1) and derives the
// reliability priority of Example 3: a tuple from a more reliable
// source dominates conflicting tuples from less reliable ones.
func Integration(fds *fd.Set, sources ...Source) (*Scenario, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("workload: Integration needs at least one source")
	}
	merged := relation.NewInstance(sources[0].Inst.Schema())
	rank := map[relation.TupleID]int{}
	for _, src := range sources {
		ok := true
		src.Inst.Range(func(_ relation.TupleID, t relation.Tuple) bool {
			id, fresh, err := merged.Insert(t)
			if err != nil {
				ok = false
				return false
			}
			if !fresh {
				// The same tuple contributed twice keeps its best
				// (smallest) rank.
				if src.Rank < rank[id] {
					rank[id] = src.Rank
				}
				return true
			}
			rank[id] = src.Rank
			return true
		})
		if !ok {
			return nil, fmt.Errorf("workload: source schema mismatch")
		}
	}
	g, err := conflict.Build(merged, fds)
	if err != nil {
		return nil, err
	}
	pri := priority.FromRanks(g, func(t relation.TupleID) int { return rank[t] })
	return &Scenario{
		Name: fmt.Sprintf("integration(%d sources)", len(sources)),
		Desc: "Example 1/3: union of sources with reliability priority",
		Inst: merged, FDs: fds, Pri: pri,
	}, nil
}

// Random builds a random instance of n tuples over R(A,B,C) with
// F = {A -> B, B -> C} and attribute values drawn from [0, vals),
// plus a random acyclic priority of the given density.
func Random(rng *rand.Rand, n, vals int, density float64) *Scenario {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	for i := 0; i < n; i++ {
		inst.MustInsert(rng.Intn(vals), rng.Intn(vals), rng.Intn(vals))
	}
	fds := fd.MustParseSet(s, "A -> B", "B -> C")
	g := conflict.MustBuild(inst, fds)
	return &Scenario{
		Name: fmt.Sprintf("random(%d,%d,%.2f)", n, vals, density),
		Desc: "random two-FD instance with random priority",
		Inst: inst, FDs: fds,
		Pri: priority.Random(g, density, rng),
	}
}
