package workload

import (
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
)

// MgrSchema is the schema of the running example (Example 1):
// Mgr(Name, Dept, Salary, Reports).
func MgrSchema() *relation.Schema {
	return relation.MustSchema("Mgr",
		relation.NameAttr("Name"), relation.NameAttr("Dept"),
		relation.IntAttr("Salary"), relation.IntAttr("Reports"))
}

// MgrFDs returns fd1: Dept -> Name,Salary,Reports and fd2:
// Name -> Dept,Salary,Reports.
func MgrFDs() *fd.Set {
	return fd.MustParseSet(MgrSchema(),
		"Dept -> Name,Salary,Reports",
		"Name -> Dept,Salary,Reports")
}

// Example1 builds the integrated instance r = s1 ∪ s2 ∪ s3 of
// Example 1 with the reliability priority of Example 3 (s3 less
// reliable than s1 and s2; s1 vs s2 unknown). Salaries are in
// thousands.
func Example1() *Scenario {
	schema := MgrSchema()
	s1 := relation.NewInstance(schema)
	s1.MustInsert("Mary", "R&D", 40, 3)
	s2 := relation.NewInstance(schema)
	s2.MustInsert("John", "R&D", 10, 2)
	s3 := relation.NewInstance(schema)
	s3.MustInsert("Mary", "IT", 20, 1)
	s3.MustInsert("John", "PR", 30, 4)

	sc, err := Integration(MgrFDs(),
		Source{Inst: s1, Rank: 0},
		Source{Inst: s2, Rank: 0},
		Source{Inst: s3, Rank: 1})
	if err != nil {
		panic(err) // fixed fixture cannot fail
	}
	sc.Name = "example1"
	sc.Desc = "Examples 1-3: Mgr integration with source reliability"
	return sc
}

// Q1 is Example 1's query: does John earn more than Mary?
const Q1 = `EXISTS x1, y1, z1, x2, y2, z2 .
	Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 < y2`

// Q2 is Example 3's query: does Mary earn more and write fewer
// reports than John?
const Q2 = `EXISTS x1, y1, z1, x2, y2, z2 .
	Mgr('Mary', x1, y1, z1) AND Mgr('John', x2, y2, z2) AND y1 > y2 AND z1 < z2`

// Example7 builds Example 7: R(A,B) with key A -> B, instance
// {ta=(1,1), tb=(1,2), tc=(1,3)}, priority ta ≻ tc, ta ≻ tb
// (Figure 2). L-Rep selects only {ta}.
func Example7() *Scenario {
	s := relation.MustSchema("R", relation.IntAttr("A"), relation.IntAttr("B"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1) // ta
	inst.MustInsert(1, 2) // tb
	inst.MustInsert(1, 3) // tc
	sc := build("example7", "Example 7 / Figure 2: L-Rep with one key",
		inst, fd.MustParseSet(s, "A -> B"))
	sc.Pri.MustAdd(0, 2)
	sc.Pri.MustAdd(0, 1)
	return sc
}

// Example8 builds Example 8: R(A,B,C) with A -> B, instance
// {ta=(1,1,1), tb=(1,1,2), tc=(1,2,3)}, total priority tc ≻ ta,
// tc ≻ tb (Figure 3). L-Rep keeps both repairs (non-categorical);
// S-Rep keeps only {tc}.
func Example8() *Scenario {
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"), relation.IntAttr("C"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1, 1) // ta
	inst.MustInsert(1, 1, 2) // tb
	inst.MustInsert(1, 2, 3) // tc
	sc := build("example8", "Example 8 / Figure 3: non-categoricity of L-Rep",
		inst, fd.MustParseSet(s, "A -> B"))
	sc.Pri.MustAdd(2, 0)
	sc.Pri.MustAdd(2, 1)
	return sc
}

// Example9 builds Example 9 exactly as printed (Figure 4): the
// conflict path ta-tb-tc-td-te under A -> B and C -> D with the total
// chain priority. NOTE: as printed, the instance has four repairs
// (the paper lists two) and the chain priority is categorical for
// S-Rep under the formal definitions; Example9Mutual reconstructs the
// intended non-categoricity scenario. See EXPERIMENTS.md.
func Example9() *Scenario {
	s := relation.MustSchema("R",
		relation.IntAttr("A"), relation.IntAttr("B"),
		relation.IntAttr("C"), relation.IntAttr("D"))
	inst := relation.NewInstance(s)
	inst.MustInsert(1, 1, 0, 0) // ta
	inst.MustInsert(1, 2, 1, 1) // tb
	inst.MustInsert(2, 1, 1, 2) // tc
	inst.MustInsert(2, 2, 2, 1) // td
	inst.MustInsert(0, 0, 2, 2) // te
	sc := build("example9", "Example 9 / Figure 4 as printed: conflict path",
		inst, fd.MustParseSet(s, "A -> B", "C -> D"))
	sc.Pri.MustAdd(0, 1)
	sc.Pri.MustAdd(1, 2)
	sc.Pri.MustAdd(2, 3)
	sc.Pri.MustAdd(3, 4)
	return sc
}

// Example9Mutual reconstructs the scenario §3.3 describes around
// Example 9: a K_{2,3} mutual-conflict component with the partial
// chain priority. Repairs are exactly the two sides; S-Rep keeps
// both, G-Rep and C-Rep keep only {t0, t2, t4}.
func Example9Mutual() *Scenario {
	sc := ChainBipartite(5)
	sc.Name = "example9-mutual"
	sc.Desc = "Example 9 reconstructed: mutual conflicts, partial priority"
	return sc
}
