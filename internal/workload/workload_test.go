package workload

import (
	"math/rand"
	"testing"

	"prefcqa/internal/bitset"
	"prefcqa/internal/core"
	"prefcqa/internal/fd"
	"prefcqa/internal/relation"
	"prefcqa/internal/repair"
)

func TestPairsShape(t *testing.T) {
	for _, n := range []int{1, 4, 10} {
		sc := Pairs(n)
		g := sc.Graph()
		if g.Len() != 2*n || g.NumEdges() != n {
			t.Fatalf("Pairs(%d): %d vertices, %d edges", n, g.Len(), g.NumEdges())
		}
		if got := len(g.Components()); got != n {
			t.Fatalf("Pairs(%d): %d components", n, got)
		}
		c, err := repair.Count(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(1) << uint(n); c != want {
			t.Fatalf("Pairs(%d): %d repairs, want %d", n, c, want)
		}
	}
}

func TestChainShape(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		sc := Chain(n)
		g := sc.Graph()
		if g.Len() != n || g.NumEdges() != n-1 {
			t.Fatalf("Chain(%d): %d vertices, %d edges\n%s", n, g.Len(), g.NumEdges(), g.ASCII())
		}
		// Exactly the path edges.
		for i := 0; i+1 < n; i++ {
			if !g.Adjacent(i, i+1) {
				t.Fatalf("Chain(%d): missing edge %d-%d", n, i, i+1)
			}
		}
		for i := 0; i+2 < n; i++ {
			if g.Adjacent(i, i+2) {
				t.Fatalf("Chain(%d): chord %d-%d", n, i, i+2)
			}
		}
		if n > 1 && !sc.Pri.IsTotal() {
			t.Fatalf("Chain(%d): chain priority should be total", n)
		}
	}
}

func TestChainMatchesExample9Families(t *testing.T) {
	// Chain(5) behaves like the printed Example 9: categorical for
	// S, G, C with the odd-position repair {0,2,4}.
	sc := Chain(5)
	want := bitset.FromSlice([]int{0, 2, 4})
	for _, f := range []core.Family{core.SemiGlobal, core.Global, core.Common} {
		fam := core.All(f, sc.Pri)
		if len(fam) != 1 || !fam[0].Equal(want) {
			t.Fatalf("Chain(5) %v = %v, want [{0 2 4}]", f, fam)
		}
	}
}

func TestClustersShape(t *testing.T) {
	sc := Clusters(3, 4)
	g := sc.Graph()
	if g.Len() != 12 {
		t.Fatalf("vertices = %d", g.Len())
	}
	if got := len(g.Components()); got != 3 {
		t.Fatalf("components = %d", got)
	}
	// Each component is a 4-clique: 6 edges each.
	if g.NumEdges() != 18 {
		t.Fatalf("edges = %d, want 18", g.NumEdges())
	}
	c, err := repair.Count(g)
	if err != nil {
		t.Fatal(err)
	}
	if c != 64 { // 4^3
		t.Fatalf("repairs = %d, want 64", c)
	}
}

func TestBipartiteShape(t *testing.T) {
	sc := Bipartite(5)
	g := sc.Graph()
	if g.NumEdges() != 6 {
		t.Fatalf("K_{2,3} should have 6 edges, got %d\n%s", g.NumEdges(), g.ASCII())
	}
	reps := repair.All(g)
	if len(reps) != 2 {
		t.Fatalf("repairs = %v, want the two sides", reps)
	}
	evens := bitset.FromSlice([]int{0, 2, 4})
	odds := bitset.FromSlice([]int{1, 3})
	for _, r := range reps {
		if !r.Equal(evens) && !r.Equal(odds) {
			t.Fatalf("unexpected repair %v", r)
		}
	}
}

func TestChainBipartiteReconstructsExample9(t *testing.T) {
	sc := Example9Mutual()
	evens := bitset.FromSlice([]int{0, 2, 4})
	s := core.All(core.SemiGlobal, sc.Pri)
	if len(s) != 2 {
		t.Fatalf("S-Rep = %v, want both sides (non-categorical)", s)
	}
	for _, f := range []core.Family{core.Global, core.Common} {
		fam := core.All(f, sc.Pri)
		if len(fam) != 1 || !fam[0].Equal(evens) {
			t.Fatalf("%v = %v, want [{0 2 4}]", f, fam)
		}
	}
}

func TestExample1Scenario(t *testing.T) {
	sc := Example1()
	if sc.Inst.Len() != 4 {
		t.Fatalf("instance size = %d", sc.Inst.Len())
	}
	if sc.Graph().NumEdges() != 3 {
		t.Fatalf("conflicts = %d, want 3", sc.Graph().NumEdges())
	}
	// Priority: mary ≻ maryIT, john ≻ johnPR; mary vs john unoriented.
	if sc.Pri.Len() != 2 {
		t.Fatalf("priority edges = %d, want 2", sc.Pri.Len())
	}
	// Three repairs; two preferred under G.
	if got := len(core.All(core.Rep, sc.Pri)); got != 3 {
		t.Fatalf("repairs = %d", got)
	}
	if got := len(core.All(core.Global, sc.Pri)); got != 2 {
		t.Fatalf("G-repairs = %d", got)
	}
}

func TestExample7And8Scenarios(t *testing.T) {
	e7 := Example7()
	if got := len(core.All(core.Local, e7.Pri)); got != 1 {
		t.Fatalf("Example7 L-Rep = %d, want 1", got)
	}
	e8 := Example8()
	if got := len(core.All(core.Local, e8.Pri)); got != 2 {
		t.Fatalf("Example8 L-Rep = %d, want 2", got)
	}
	if got := len(core.All(core.SemiGlobal, e8.Pri)); got != 1 {
		t.Fatalf("Example8 S-Rep = %d, want 1", got)
	}
}

func TestExample9Scenario(t *testing.T) {
	sc := Example9()
	if got := len(core.All(core.Rep, sc.Pri)); got != 4 {
		t.Fatalf("Example9 as printed has %d repairs, want 4", got)
	}
	if !sc.Pri.IsTotal() {
		t.Fatal("Example9 priority should be total")
	}
}

func TestIntegrationRanks(t *testing.T) {
	schema := relation.MustSchema("R", relation.IntAttr("K"), relation.IntAttr("V"))
	fds := fd.MustParseSet(schema, "K -> V")
	a := relation.NewInstance(schema)
	a.MustInsert(1, 10)
	b := relation.NewInstance(schema)
	b.MustInsert(1, 20)
	// Duplicate of a's tuple contributed by the worse source keeps the
	// better rank.
	c := relation.NewInstance(schema)
	c.MustInsert(1, 10)

	sc, err := Integration(fds, Source{a, 0}, Source{b, 1}, Source{c, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Inst.Len() != 2 {
		t.Fatalf("merged size = %d", sc.Inst.Len())
	}
	id10, _ := sc.Inst.Lookup(relation.Tuple{relation.Int(1), relation.Int(10)})
	id20, _ := sc.Inst.Lookup(relation.Tuple{relation.Int(1), relation.Int(20)})
	if !sc.Pri.Dominates(id10, id20) {
		t.Fatal("rank 0 tuple should dominate rank 1 tuple")
	}
	if _, err := Integration(fds); err == nil {
		t.Fatal("Integration with no sources should fail")
	}
	// Schema mismatch.
	other := relation.NewInstance(relation.MustSchema("S", relation.IntAttr("X")))
	other.MustInsert(1)
	if _, err := Integration(fds, Source{a, 0}, Source{other, 1}); err == nil {
		t.Fatal("schema mismatch should fail")
	}
}

func TestRandomScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := Random(rng, 20, 3, 0.5)
	if sc.Inst.Len() == 0 || sc.Inst.Len() > 20 {
		t.Fatalf("size = %d", sc.Inst.Len())
	}
	if sc.Graph().Len() != sc.Inst.Len() {
		t.Fatal("graph/instance size mismatch")
	}
}

func TestChainPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Chain(0) should panic")
		}
	}()
	Chain(0)
}
