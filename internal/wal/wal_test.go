package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Checkpoint, []Record) {
	t.Helper()
	l, c, tail, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, c, tail
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, c, tail := mustOpen(t, dir, Options{Policy: SyncNever})
	if c != nil || len(tail) != 0 {
		t.Fatalf("fresh log returned ckpt=%v tail=%v", c, tail)
	}
	want := []Record{
		{Op: OpCreate, Rel: "r", Attrs: nil},
		{Op: OpInsert, Rel: "r", Rows: [][]string{{"a", "1"}, {"b", "2"}}},
		{Op: OpDelete, Rel: "r", IDs: []int{0}},
		{Op: OpPrefer, Rel: "r", Pairs: [][2]int{{1, 0}}},
		{Op: OpFD, Rel: "r", FD: "A -> B"},
	}
	for i := range want {
		seq, err := l.Append(want[i])
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append seq = %d, want %d", seq, i+1)
		}
		want[i].Seq = seq
		want[i].Epoch = 1
		if err := l.Sync(seq); err != nil {
			t.Fatalf("Sync: %v", err)
		}
	}
	if l.Seq() != 5 {
		t.Fatalf("Seq = %d", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, c2, tail2 := mustOpen(t, dir, Options{Policy: SyncAlways})
	defer l2.Close()
	if c2 != nil {
		t.Fatalf("unexpected checkpoint: %+v", c2)
	}
	if !reflect.DeepEqual(tail2, want) {
		t.Fatalf("tail after reopen = %+v, want %+v", tail2, want)
	}
	if l2.Seq() != 5 {
		t.Fatalf("Seq after reopen = %d", l2.Seq())
	}
	// Appending continues the sequence.
	seq, err := l2.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"c", "3"}}})
	if err != nil || seq != 6 {
		t.Fatalf("Append after reopen = %d, %v", seq, err)
	}
	if err := l2.Sync(seq); err != nil {
		t.Fatalf("Sync after reopen: %v", err)
	}
}

func TestConcurrentCommittersSyncAlways(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncAlways})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seq, err := l.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"x"}}})
			if err == nil {
				err = l.Sync(seq)
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent commit: %v", err)
		}
	}
	if l.Seq() != 32 {
		t.Fatalf("Seq = %d, want 32", l.Seq())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, _, tail := mustOpen(t, dir, Options{})
	defer l2.Close()
	if len(tail) != 32 {
		t.Fatalf("tail after concurrent commits = %d records", len(tail))
	}
}

func TestGroupCommitFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncGroup, FlushInterval: time.Millisecond})
	seq, err := l.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"x"}}})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(seq); err != nil { // no-op barrier under group policy
		t.Fatalf("Sync: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		l.mu.Lock()
		synced := l.syncedSeq
		l.mu.Unlock()
		if synced >= seq {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never synced seq %d", seq)
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"x"}}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	ck := &Checkpoint{Seq: 3, Relations: []CheckpointRelation{{
		Name:  "r",
		Attrs: nil,
		Rows:  [][]string{{"x"}, {"x"}, {"x"}},
	}}}
	if err := l.WriteCheckpoint(ck); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	// Records after the checkpoint land in the fresh segment.
	if seq, err := l.Append(Record{Op: OpDelete, Rel: "r", IDs: []int{0}}); err != nil || seq != 4 {
		t.Fatalf("Append after checkpoint = %d, %v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Exactly one checkpoint and one segment remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Fatalf("dir after checkpoint = %v", names)
	}

	l2, c2, tail := mustOpen(t, dir, Options{})
	defer l2.Close()
	if c2 == nil || c2.Seq != 3 || len(c2.Relations) != 1 {
		t.Fatalf("recovered checkpoint = %+v", c2)
	}
	if len(tail) != 1 || tail[0].Seq != 4 || tail[0].Op != OpDelete {
		t.Fatalf("recovered tail = %+v", tail)
	}
	if l2.Seq() != 4 {
		t.Fatalf("Seq after recovery = %d", l2.Seq())
	}
}

func TestCheckpointSeqMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	defer l.Close()
	if _, err := l.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"x"}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(&Checkpoint{Seq: 7}); err == nil {
		t.Fatal("checkpoint at wrong seq accepted")
	}
}

func TestNeedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncNever, CheckpointBytes: 64})
	defer l.Close()
	if l.NeedCheckpoint() {
		t.Fatal("fresh log wants a checkpoint")
	}
	for i := 0; i < 8; i++ {
		if _, err := l.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"some-longish-value"}}}); err != nil {
			t.Fatal(err)
		}
	}
	if !l.NeedCheckpoint() {
		t.Fatal("log past threshold does not want a checkpoint")
	}

	ldis, _, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncNever, CheckpointBytes: -1})
	defer ldis.Close()
	for i := 0; i < 8; i++ {
		if _, err := ldis.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"some-longish-value"}}}); err != nil {
			t.Fatal(err)
		}
	}
	if ldis.NeedCheckpoint() {
		t.Fatal("disabled auto-checkpoint still reports need")
	}
}

func TestRecoveryRejectsGapAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	for i := 0; i < 2; i++ {
		if _, err := l.Append(Record{Op: OpInsert, Rel: "r", Rows: [][]string{{"x"}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	frame, err := encodeCheckpointFile(&Checkpoint{Seq: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ckptName(5)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	// Records 1..2 are subsumed (seq <= 5): recovery succeeds with an
	// empty tail and continues from 5.
	l2, c2, tail := mustOpen(t, dir, Options{})
	if c2 == nil || c2.Seq != 5 || len(tail) != 0 {
		t.Fatalf("ckpt=%+v tail=%+v", c2, tail)
	}
	if l2.Seq() != 5 {
		t.Fatalf("Seq = %d, want 5", l2.Seq())
	}
	l2.Close()

	// A checkpoint at seq 1 with a segment whose first record is seq 3
	// leaves record 2 unaccounted for — a gap — and must fail loudly.
	dir2 := t.TempDir()
	rec3, err := EncodeRecord(Record{Seq: 3, Op: OpInsert, Rel: "r", Rows: [][]string{{"x"}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, segName(3)), rec3, 0o644); err != nil {
		t.Fatal(err)
	}
	frame1, err := encodeCheckpointFile(&Checkpoint{Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, ckptName(1)), frame1, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(dir2, Options{}); err == nil {
		t.Fatal("gap after checkpoint accepted")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"group", SyncGroup, true},
		{"never", SyncNever, true},
		{"off", SyncNever, true}, // alias
		{"sometimes", 0, false},
		{"", 0, false},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && tc.in != "off" && got.String() != tc.in {
			t.Errorf("SyncPolicy.String() = %q, want %q", got.String(), tc.in)
		}
	}
}
