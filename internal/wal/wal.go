package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SyncPolicy selects the durability barrier applied before a logged
// mutation is acknowledged.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every acknowledgement. Concurrent
	// committers are batched into shared fsyncs by the flusher
	// goroutine (group commit), so the cost is one fsync per batch of
	// concurrent writers, not one per write. A write acknowledged
	// under SyncAlways survives SIGKILL and power loss.
	SyncAlways SyncPolicy = iota
	// SyncGroup acknowledges immediately after the record reaches the
	// OS; a background flusher fsyncs on a bounded interval
	// (Options.FlushInterval). A crash can lose at most the writes of
	// the last interval; process death without power loss loses
	// nothing (the records are already in the page cache).
	SyncGroup
	// SyncNever performs no fsyncs while serving (records still reach
	// the OS on every append; a clean Close syncs once). Process death
	// loses nothing, power loss may lose anything since the OS last
	// wrote back.
	SyncNever
)

// ParseSyncPolicy parses "always", "group" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "never", "off":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, group or never)", s)
	}
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// Options configure a Log.
type Options struct {
	// Policy is the durability barrier (default SyncAlways).
	Policy SyncPolicy
	// FlushInterval bounds how long a SyncGroup record may sit
	// unsynced. Zero selects 2ms.
	FlushInterval time.Duration
	// CheckpointBytes is the log growth after which NeedCheckpoint
	// reports true. Zero selects 8 MiB; negative disables automatic
	// checkpoints.
	CheckpointBytes int64
}

func (o Options) withDefaults() Options {
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Millisecond
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 8 << 20
	}
	return o
}

// Log is an append-only write-ahead log bound to one directory. The
// directory holds at most one checkpoint file plus the log segments
// written since; Append adds records to the active segment,
// WriteCheckpoint atomically replaces everything with a fresh
// checkpoint and an empty segment.
//
// Append is safe for concurrent use; callers serialize per-relation
// ordering themselves (the facade appends under its relation lock).
type Log struct {
	dir  string
	opts Options

	seq   atomic.Uint64 // last assigned record sequence
	epoch atomic.Uint64 // current replication epoch (≥ 1)

	mu             sync.Mutex
	cond           *sync.Cond    // broadcast when syncedSeq or err advances
	appendCh       chan struct{} // closed and replaced on every append (tail notification)
	f              *os.File      // active segment
	segStart       uint64        // first sequence the active segment may hold
	ckptSeq        uint64        // sequence of the newest durable checkpoint
	ckptEpoch      uint64        // epoch recorded in that checkpoint (0 = none)
	syncedSeq      uint64        // highest sequence known durable
	bytesSinceCkpt int64
	err            error // sticky I/O failure
	closed         bool

	flushCh chan struct{} // wakes the flusher (SyncAlways)
	quit    chan struct{}
	done    chan struct{}
}

func segName(start uint64) string { return fmt.Sprintf("wal-%016x.log", start) }
func ckptName(seq uint64) string  { return fmt.Sprintf("checkpoint-%016x.ckpt", seq) }
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	var n uint64
	if _, err := fmt.Sscanf(mid, "%x", &n); err != nil || len(mid) != 16 {
		return 0, false
	}
	return n, true
}

// Open opens (or creates) the log directory, recovers its state and
// readies the log for appending. It returns the newest checkpoint (nil
// if none) and the tail records beyond it, in sequence order; the
// caller replays checkpoint then tail to rebuild the database. A torn
// final record — a crash mid-append — is truncated silently; any other
// inconsistency is a loud error.
func Open(dir string, opts Options) (*Log, *Checkpoint, []Record, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var segStarts, ckptSeqs []uint64
	for _, e := range entries {
		if s, ok := parseSeqName(e.Name(), "wal-", ".log"); ok {
			segStarts = append(segStarts, s)
		}
		if s, ok := parseSeqName(e.Name(), "checkpoint-", ".ckpt"); ok {
			ckptSeqs = append(ckptSeqs, s)
		}
	}
	sort.Slice(segStarts, func(i, j int) bool { return segStarts[i] < segStarts[j] })
	sort.Slice(ckptSeqs, func(i, j int) bool { return ckptSeqs[i] < ckptSeqs[j] })
	os.Remove(filepath.Join(dir, "checkpoint.tmp")) // leftover of an interrupted checkpoint

	var ckpt *Checkpoint
	base := uint64(0)
	if len(ckptSeqs) > 0 {
		newest := ckptSeqs[len(ckptSeqs)-1]
		data, err := os.ReadFile(filepath.Join(dir, ckptName(newest)))
		if err != nil {
			return nil, nil, nil, err
		}
		ckpt, err = decodeCheckpoint(data)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", ckptName(newest), err)
		}
		if ckpt.Seq != newest {
			return nil, nil, nil, fmt.Errorf("wal: checkpoint %s declares seq %d", ckptName(newest), ckpt.Seq)
		}
		base = newest
	}

	var tail []Record
	prev := uint64(0)
	for i, start := range segStarts {
		name := filepath.Join(dir, segName(start))
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, nil, nil, err
		}
		recs, validLen, torn, err := DecodeSegment(data)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", segName(start), err)
		}
		if torn && i != len(segStarts)-1 {
			return nil, nil, nil, fmt.Errorf("wal: %s: torn record in a non-final segment", segName(start))
		}
		if len(recs) > 0 {
			if recs[0].Seq != start {
				return nil, nil, nil, fmt.Errorf("wal: %s: first record has seq %d", segName(start), recs[0].Seq)
			}
			if prev != 0 && recs[0].Seq != prev+1 {
				return nil, nil, nil, fmt.Errorf("wal: %s: seq %d does not follow %d", segName(start), recs[0].Seq, prev)
			}
			prev = recs[len(recs)-1].Seq
		}
		for _, r := range recs {
			if r.Seq > base {
				tail = append(tail, r)
			}
		}
		if torn && validLen < len(data) {
			if err := os.Truncate(name, int64(validLen)); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	if len(tail) > 0 && tail[0].Seq != base+1 {
		return nil, nil, nil, fmt.Errorf("wal: gap after checkpoint: first tail record has seq %d, checkpoint covers %d", tail[0].Seq, base)
	}
	last := base
	if len(tail) > 0 {
		last = tail[len(tail)-1].Seq
	}
	// Recover the replication epoch: the newest of the checkpoint's and
	// the tail records' epochs (pre-epoch logs carry 0, normalized to
	// the initial epoch 1). Epochs are non-decreasing within a log, so
	// the maximum is the current one.
	epoch := uint64(1)
	if ckpt != nil && ckpt.Epoch > epoch {
		epoch = ckpt.Epoch
	}
	for _, r := range tail {
		if r.Epoch > epoch {
			epoch = r.Epoch
		}
	}

	l := &Log{
		dir:       dir,
		opts:      opts,
		segStart:  base + 1,
		ckptSeq:   base,
		syncedSeq: last,
		appendCh:  make(chan struct{}),
		flushCh:   make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	l.seq.Store(last)
	l.epoch.Store(epoch)
	if ckpt != nil {
		l.ckptEpoch = ckpt.Epoch
	}
	if len(segStarts) > 0 {
		l.segStart = segStarts[len(segStarts)-1]
		f, err := os.OpenFile(filepath.Join(dir, segName(l.segStart)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, nil, err
		}
		l.f = f
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		l.bytesSinceCkpt = fi.Size()
	} else {
		f, err := os.OpenFile(filepath.Join(dir, segName(l.segStart)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, nil, err
		}
		l.f = f
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, nil, nil, err
		}
	}
	switch opts.Policy {
	case SyncAlways, SyncGroup:
		go l.flusher()
	default:
		close(l.done)
	}
	return l, ckpt, tail, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Seq returns the last assigned record sequence — the write-version of
// the logged history.
func (l *Log) Seq() uint64 { return l.seq.Load() }

// SyncPolicy returns the configured durability policy.
func (l *Log) SyncPolicy() SyncPolicy { return l.opts.Policy }

// NeedCheckpoint reports whether the log has grown past the
// checkpoint threshold since the last checkpoint.
func (l *Log) NeedCheckpoint() bool {
	if l.opts.CheckpointBytes < 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytesSinceCkpt > l.opts.CheckpointBytes
}

// fail records a sticky I/O error and wakes every waiter. Caller
// holds l.mu.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
	}
	l.cond.Broadcast()
	l.notifyAppendLocked()
}

// Append assigns the next sequence to rec, writes its frame to the
// active segment and returns the sequence. The record is in the OS
// when Append returns; call Sync to apply the durability barrier
// before acknowledging the mutation to a client.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	seq := l.seq.Load() + 1
	rec.Seq = seq
	rec.Epoch = l.epoch.Load()
	frame, err := EncodeRecord(rec)
	if err != nil {
		return 0, err
	}
	if _, err := l.f.Write(frame); err != nil {
		l.fail(err)
		return 0, l.err
	}
	l.seq.Store(seq)
	l.bytesSinceCkpt += int64(len(frame))
	l.notifyAppendLocked()
	return seq, nil
}

// notifyAppendLocked wakes every WaitAppend waiter by closing the
// current notification channel and installing a fresh one. Caller
// holds l.mu.
func (l *Log) notifyAppendLocked() {
	close(l.appendCh)
	l.appendCh = make(chan struct{})
}

// Sync blocks until the record with the given sequence is durable
// under the configured policy: for SyncAlways it waits for an fsync
// covering seq (sharing the fsync with concurrent committers); for
// SyncGroup and SyncNever it returns immediately.
func (l *Log) Sync(seq uint64) error {
	if l.opts.Policy != SyncAlways {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncedSeq < seq && l.err == nil && !l.closed {
		select {
		case l.flushCh <- struct{}{}:
		default:
		}
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.syncedSeq < seq {
		return fmt.Errorf("wal: closed before seq %d was synced", seq)
	}
	return nil
}

// flusher batches fsyncs: it wakes on demand (SyncAlways committers)
// or on the flush interval (SyncGroup) and syncs everything appended
// so far, waking all committers the sync covers.
func (l *Log) flusher() {
	defer close(l.done)
	var tick *time.Ticker
	var tickCh <-chan time.Time
	if l.opts.Policy == SyncGroup {
		tick = time.NewTicker(l.opts.FlushInterval)
		tickCh = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-l.flushCh:
		case <-tickCh:
		case <-l.quit:
			l.flushOnce()
			return
		}
		l.flushOnce()
	}
}

// flushOnce fsyncs the active segment up to the current sequence.
func (l *Log) flushOnce() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil || l.closed {
		return
	}
	target := l.seq.Load()
	if l.syncedSeq >= target {
		return
	}
	if err := l.f.Sync(); err != nil {
		l.fail(err)
		return
	}
	l.syncedSeq = target
	l.cond.Broadcast()
}

// WriteCheckpoint durably installs a checkpoint covering the whole
// logged history (c.Seq must equal the last assigned sequence; the
// facade guarantees quiescence by holding its snapshot gate) and
// truncates the log: a fresh empty segment becomes active and every
// older segment and checkpoint file is removed. Once the checkpoint
// file is durable it subsumes all logged records, so waiting
// committers are released by it.
func (l *Log) WriteCheckpoint(c *Checkpoint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if c.Seq != l.seq.Load() {
		return fmt.Errorf("wal: checkpoint at seq %d, log is at %d", c.Seq, l.seq.Load())
	}
	if c.Epoch == 0 {
		c.Epoch = l.epoch.Load()
	}
	if c.Seq == l.ckptSeq && l.bytesSinceCkpt == 0 && c.Epoch == l.ckptEpoch {
		return nil // nothing logged (and no epoch change) since the last checkpoint
	}
	if err := l.installCheckpointLocked(c); err != nil {
		return err
	}
	l.syncedSeq = c.Seq
	l.cond.Broadcast()
	return nil
}

// installCheckpointLocked durably writes the checkpoint file, rotates
// to a fresh empty segment at c.Seq+1 and removes every file the
// checkpoint subsumes. Caller holds l.mu and has validated c.Seq.
func (l *Log) installCheckpointLocked(c *Checkpoint) error {
	frame, err := encodeCheckpointFile(c)
	if err != nil {
		return err
	}
	tmp := filepath.Join(l.dir, "checkpoint.tmp")
	if err := writeFileSync(tmp, frame); err != nil {
		l.fail(err)
		return l.err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, ckptName(c.Seq))); err != nil {
		l.fail(err)
		return l.err
	}
	if err := syncDir(l.dir); err != nil {
		l.fail(err)
		return l.err
	}
	// The checkpoint is durable: rotate to a fresh segment and drop
	// everything it subsumes. When the active segment already starts
	// right after the checkpoint (an epoch-only re-checkpoint at the
	// same seq, e.g. promotion right after bootstrap), it is kept:
	// every record it could hold is > c.Seq by construction.
	newStart := c.Seq + 1
	if l.segStart != newStart {
		nf, err := os.OpenFile(filepath.Join(l.dir, segName(newStart)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			l.fail(err)
			return l.err
		}
		old := l.f
		l.f, l.segStart = nf, newStart
		old.Close()
	}
	entries, err := os.ReadDir(l.dir)
	if err == nil {
		for _, e := range entries {
			if s, ok := parseSeqName(e.Name(), "wal-", ".log"); ok && s != newStart {
				os.Remove(filepath.Join(l.dir, e.Name()))
			}
			if s, ok := parseSeqName(e.Name(), "checkpoint-", ".ckpt"); ok && s != c.Seq {
				os.Remove(filepath.Join(l.dir, e.Name()))
			}
		}
	}
	syncDir(l.dir) //nolint:errcheck // removals are cleanup, not correctness
	l.ckptSeq = c.Seq
	l.ckptEpoch = c.Epoch
	l.bytesSinceCkpt = 0
	return nil
}

// Close flushes and fsyncs the active segment (a clean shutdown is
// durable under every policy), stops the flusher and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		<-l.done
		return nil
	}
	var err error
	if l.err == nil && l.syncedSeq < l.seq.Load() {
		if err = l.f.Sync(); err == nil {
			l.syncedSeq = l.seq.Load()
		}
	}
	l.closed = true
	l.cond.Broadcast()
	l.notifyAppendLocked()
	l.mu.Unlock()
	close(l.quit)
	<-l.done
	l.mu.Lock()
	cerr := l.f.Close()
	l.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}

func encodeCheckpointFile(c *Checkpoint) ([]byte, error) {
	payload, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	return appendFrame(nil, payload), nil
}

func writeFileSync(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
