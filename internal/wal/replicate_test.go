package wal

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// rec builds an insert record whose single cell encodes seq, so a
// reader can verify it got exactly the record the position claims.
func rec(seq uint64) Record {
	return Record{Op: OpInsert, Rel: "r", Rows: [][]string{{strconv.FormatUint(seq, 10)}}}
}

func TestReadFromRanges(t *testing.T) {
	l, _, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()
	const n = 20
	for i := uint64(1); i <= n; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, from := range []uint64{1, 7, n} {
		recs, err := l.ReadFrom(from, 0)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", from, err)
		}
		if len(recs) != int(n-from+1) {
			t.Fatalf("ReadFrom(%d) returned %d records, want %d", from, len(recs), n-from+1)
		}
		for i, r := range recs {
			if want := from + uint64(i); r.Seq != want || r.Rows[0][0] != strconv.FormatUint(want, 10) {
				t.Fatalf("ReadFrom(%d)[%d] = seq %d rows %v, want seq %d", from, i, r.Seq, r.Rows, want)
			}
		}
	}
	// max caps the batch.
	if recs, err := l.ReadFrom(1, 5); err != nil || len(recs) != 5 || recs[4].Seq != 5 {
		t.Fatalf("ReadFrom(1, 5) = %d records, err %v", len(recs), err)
	}
	// Past the head: empty, not an error (the caller long-polls).
	if recs, err := l.ReadFrom(n+1, 0); err != nil || len(recs) != 0 {
		t.Fatalf("ReadFrom(past head) = %v, %v; want empty", recs, err)
	}
	if _, err := l.ReadFrom(0, 0); err == nil {
		t.Fatal("ReadFrom(0) did not reject; sequences start at 1")
	}
}

func TestReadFromCompacted(t *testing.T) {
	l, _, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()
	for i := uint64(1); i <= 10; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteCheckpoint(&Checkpoint{Seq: 10}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(11); i <= 14; i++ {
		if _, err := l.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	// At or below the checkpoint horizon the history is gone.
	for _, from := range []uint64{1, 10} {
		if _, err := l.ReadFrom(from, 0); !errors.Is(err, ErrCompacted) {
			t.Fatalf("ReadFrom(%d) after checkpoint at 10: err = %v, want ErrCompacted", from, err)
		}
	}
	recs, err := l.ReadFrom(11, 0)
	if err != nil || len(recs) != 4 || recs[0].Seq != 11 {
		t.Fatalf("ReadFrom(11) = %d records (err %v), want 4 from seq 11", len(recs), err)
	}
}

func TestAppendExactFencingAndAdoption(t *testing.T) {
	l, _, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()
	r1 := rec(1)
	r1.Seq, r1.Epoch = 1, 1
	if err := l.AppendExact(r1); err != nil {
		t.Fatal(err)
	}
	// Wrong next sequence: both a gap and a replay are refused.
	for _, seq := range []uint64{1, 3} {
		bad := rec(seq)
		bad.Seq, bad.Epoch = seq, 1
		if err := l.AppendExact(bad); err == nil {
			t.Fatalf("AppendExact(seq %d) after seq 1 did not fail", seq)
		}
	}
	// A newer epoch is adopted.
	r2 := rec(2)
	r2.Seq, r2.Epoch = 2, 3
	if err := l.AppendExact(r2); err != nil {
		t.Fatal(err)
	}
	if got := l.Epoch(); got != 3 {
		t.Fatalf("Epoch after adopting record = %d, want 3", got)
	}
	// An older epoch is fenced: a resurrected primary's records must
	// never extend the promoted history.
	r3 := rec(3)
	r3.Seq, r3.Epoch = 3, 2
	if err := l.AppendExact(r3); err == nil {
		t.Fatal("AppendExact with regressed epoch did not fail")
	}
}

func TestAdvanceEpochStampsAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	if _, err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AdvanceEpoch(1); err == nil {
		t.Fatal("AdvanceEpoch(1) at epoch 1 did not fail; epochs must increase")
	}
	if err := l.AdvanceEpoch(4); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append(rec(2))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadFrom(seq, 0)
	if err != nil || len(recs) != 1 || recs[0].Epoch != 4 {
		t.Fatalf("record after AdvanceEpoch(4) = %+v (err %v), want epoch 4", recs, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	defer l2.Close()
	if got := l2.Epoch(); got != 4 {
		t.Fatalf("Epoch after reopen = %d, want 4 (recovered from tail records)", got)
	}
}

func TestInstallCheckpointBootstrap(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := mustOpen(t, dir, Options{Policy: SyncNever})
	c := &Checkpoint{Seq: 42, Epoch: 2, Relations: []CheckpointRelation{{Name: "r", Rows: [][]string{{"x"}}}}}
	if err := l.InstallCheckpoint(&Checkpoint{}); err == nil {
		t.Fatal("InstallCheckpoint at seq 0 did not fail")
	}
	if err := l.InstallCheckpoint(c); err != nil {
		t.Fatal(err)
	}
	if got := l.Seq(); got != 42 {
		t.Fatalf("Seq after install = %d, want 42", got)
	}
	if got := l.Epoch(); got != 2 {
		t.Fatalf("Epoch after install = %d, want 2", got)
	}
	// The log continues exactly after the image.
	r := rec(43)
	r.Seq, r.Epoch = 43, 2
	if err := l.AppendExact(r); err != nil {
		t.Fatal(err)
	}
	// A log with history is not pristine: install must refuse.
	if err := l.InstallCheckpoint(c); err == nil {
		t.Fatal("InstallCheckpoint on a non-pristine log did not fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A restart recovers the installed image plus the tail.
	l2, c2, tail := mustOpen(t, dir, Options{Policy: SyncNever})
	defer l2.Close()
	if c2 == nil || c2.Seq != 42 || c2.Epoch != 2 {
		t.Fatalf("reopened checkpoint = %+v, want seq 42 epoch 2", c2)
	}
	if len(tail) != 1 || tail[0].Seq != 43 {
		t.Fatalf("reopened tail = %+v, want the one record at seq 43", tail)
	}
}

func TestWaitAppend(t *testing.T) {
	l, _, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()
	if _, err := l.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	// Already satisfied: returns immediately.
	if err := l.WaitAppend(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	// Parked waiter wakes on the next append.
	done := make(chan error, 1)
	go func() { done <- l.WaitAppend(context.Background(), 1) }()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("WaitAppend(1) returned %v before an append", err)
	default:
	}
	if _, err := l.Append(rec(2)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitAppend(1) did not wake on append")
	}
	// Context cancellation unparks too.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.WaitAppend(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitAppend past head = %v, want DeadlineExceeded", err)
	}
}

// TestConcurrentReadWhileWrite is the live-tail safety property: a
// reader following the log while a writer appends and checkpoints
// rotate segments must never see a torn frame, a wrong payload, or a
// sequence gap — the only legal jump is forward to a checkpoint
// horizon (ErrCompacted → resume past the new checkpoint). Run with
// -race this also proves the reader needs no writer lock.
func TestConcurrentReadWhileWrite(t *testing.T) {
	const (
		total   = 1500
		ckEvery = 400
		readers = 3
	)
	l, _, _ := mustOpen(t, t.TempDir(), Options{Policy: SyncNever})
	defer l.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= total; i++ {
			if _, err := l.Append(rec(i)); err != nil {
				errCh <- err
				return
			}
			if i%ckEvery == 0 {
				if err := l.WriteCheckpoint(&Checkpoint{Seq: i}); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()

	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			from := uint64(1)
			for from <= total {
				recs, err := l.ReadFrom(from, 64)
				if errors.Is(err, ErrCompacted) {
					// Fell behind a checkpoint rotation: the only legal
					// jump, and only ever forward.
					ck, cerr := l.LatestCheckpoint()
					if cerr != nil || ck == nil {
						errCh <- fmt.Errorf("LatestCheckpoint after ErrCompacted: %v", cerr)
						return
					}
					if ck.Seq < from {
						errCh <- fmt.Errorf("compacted at %d but checkpoint covers only %d", from, ck.Seq)
						return
					}
					from = ck.Seq + 1
					continue
				}
				if err != nil {
					errCh <- fmt.Errorf("ReadFrom(%d): %w", from, err)
					return
				}
				for _, r := range recs {
					if r.Seq != from {
						errCh <- fmt.Errorf("sequence gap: got %d, want %d", r.Seq, from)
						return
					}
					if len(r.Rows) != 1 || r.Rows[0][0] != strconv.FormatUint(from, 10) {
						errCh <- fmt.Errorf("torn or wrong payload at seq %d: %v", from, r.Rows)
						return
					}
					from++
				}
				if len(recs) == 0 {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := l.WaitAppend(ctx, from-1)
					cancel()
					if err != nil {
						errCh <- fmt.Errorf("WaitAppend(%d): %w", from-1, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
